package ivm

// Process-cluster smoke: real worker processes (cmd/ivmworker) spawned
// over os/exec, a driver engine connected through ivm.Remote, and a
// bitwise-parity check against the in-process simulated cluster. Gated
// on IVM_WORKER_BIN (set by `make proc-smoke` and the CI job) so plain
// `go test` stays hermetic.

import (
	"bufio"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/tpch"
)

func TestProcessClusterSmoke(t *testing.T) {
	bin := os.Getenv("IVM_WORKER_BIN")
	if bin == "" {
		t.Skip("IVM_WORKER_BIN not set; run via `make proc-smoke`")
	}
	const workers = 4
	addrs := make([]string, workers)
	for i := range addrs {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		line := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(out)
			if sc.Scan() {
				line <- sc.Text()
			}
			close(line)
		}()
		select {
		case l, ok := <-line:
			if !ok || !strings.HasPrefix(l, "LISTEN ") {
				t.Fatalf("worker %d: unexpected startup line %q", i, l)
			}
			addrs[i] = strings.TrimPrefix(l, "LISTEN ")
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d: no LISTEN line within 10s", i)
		}
	}

	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	oracle, err := New(q.Name, q.Def, bases, Distributed(workers), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(q.Name, q.Def, bases, Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	goldenStream(t, q, func(table string, b *Batch) {
		if err := oracle.ApplyBatch(table, b); err != nil {
			t.Fatal(err)
		}
		if err := remote.ApplyBatch(table, b); err != nil {
			t.Fatal(err)
		}
	})
	requireBitwiseEqual(t, "cross-process result", remote.Result().rel, oracle.Result().rel)
}
