package ivm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/mring"
	inet "repro/internal/net"
)

// Feed wire protocol, carried over the same length-prefixed frames as
// the cluster protocol (internal/net). One subscribe request per
// connection, then a one-way delta stream until either side closes.
const (
	feedOpSub   byte = 0x10 // client → server: gob feedSubReq
	feedOpOK    byte = 0x11 // server → client: subscription accepted
	feedOpErr   byte = 0x12 // server → client: error text, then close
	feedOpDelta byte = 0x13 // server → client: gob feedDeltaMsg
)

// feedQueueCap bounds the per-connection delta queue. A subscriber that
// cannot keep up never blocks Apply: once the queue is full, new deltas
// coalesce into the newest queued entry (deltas are additive, so the
// merged delta replays to the same result; only per-transaction
// granularity is lost on that connection).
const feedQueueCap = 64

type feedSubReq struct {
	// View is the registered view name; empty selects an Engine's single
	// query.
	View string
	// Key restricts the stream like OnKey.
	Key []mring.Value
}

type feedDeltaMsg struct {
	Seq    int64
	Schema mring.Schema
	// Payload is the delta relation in the lossless wire payload format;
	// empty for an empty delta.
	Payload []byte
}

func feedEncode(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func feedDecode(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// FeedServer streams changefeed deltas to remote subscribers over the
// framed transport. Each accepted connection sends one subscribe
// request, is registered as an ordinary (possibly keyed) subscriber on
// the serving engine or registry, and then receives every matching
// delta as a frame. Delivery is decoupled from Apply by a bounded
// per-connection queue with coalescing overflow, so one slow or stalled
// subscriber cannot stall transactions or other subscribers.
type FeedServer struct {
	l inet.Listener
	// resolve registers a subscription for one connection; it is the
	// engine's or registry's internal subscribe path (returns errors, as
	// the remote peer cannot be helped by a panic).
	resolve func(view string, fn func(Delta), opts ...SubOption) (func(), error)

	mu     sync.Mutex
	conns  map[*feedConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeFeed starts a changefeed server for this engine's query on addr
// (TCP; port 0 picks a free port, read it back with Addr). Remote
// subscribers connect with DialFeed. Close the server before closing
// the engine.
func (e *Engine) ServeFeed(addr string) (*FeedServer, error) {
	return newFeedServer(addr, func(view string, fn func(Delta), opts ...SubOption) (func(), error) {
		return e.subscribe(e.prog.QueryName, fn, opts...)
	})
}

// ServeFeed starts a changefeed server for this registry's views on
// addr. Remote subscribers name the registered view they want in
// DialFeed.
func (r *Registry) ServeFeed(addr string) (*FeedServer, error) {
	return newFeedServer(addr, func(view string, fn func(Delta), opts ...SubOption) (func(), error) {
		if err := r.ensure(); err != nil {
			return nil, err
		}
		top, err := r.top(view)
		if err != nil {
			return nil, err
		}
		return r.subscribe(top, fn, opts...)
	})
}

func newFeedServer(addr string, resolve func(string, func(Delta), ...SubOption) (func(), error)) (*FeedServer, error) {
	l, err := inet.TCP{}.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &FeedServer{l: l, resolve: resolve, conns: make(map[*feedConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *FeedServer) Addr() string { return s.l.Addr() }

func (s *FeedServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, severs every subscriber connection, and
// unregisters their subscriptions. Safe to call more than once.
func (s *FeedServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*feedConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.l.Close()
	for _, c := range conns {
		c.teardown()
	}
	s.wg.Wait()
	return err
}

func (s *FeedServer) serveConn(conn inet.Conn) {
	op, body, err := conn.Recv()
	if err != nil || op != feedOpSub {
		conn.Close()
		return
	}
	var req feedSubReq
	if err := feedDecode(body, &req); err != nil {
		conn.Send(feedOpErr, []byte(fmt.Sprintf("ivm: bad subscribe request: %v", err)))
		conn.Close()
		return
	}
	fc := &feedConn{conn: conn}
	fc.wake = sync.NewCond(&fc.mu)
	var opts []SubOption
	if len(req.Key) > 0 {
		opts = append(opts, OnKey(req.Key...))
	}
	cancel, err := s.resolve(req.View, fc.push, opts...)
	if err != nil {
		conn.Send(feedOpErr, []byte(err.Error()))
		conn.Close()
		return
	}
	fc.cancel = cancel
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fc.teardown()
		return
	}
	s.conns[fc] = struct{}{}
	s.mu.Unlock()
	if err := conn.Send(feedOpOK, nil); err != nil {
		s.dropConn(fc)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fc.writeLoop()
		s.dropConn(fc)
	}()
	// Drain the connection until the client goes away; its only valid
	// traffic after the subscribe request is EOF.
	for {
		if _, _, err := conn.Recv(); err != nil {
			break
		}
	}
	s.dropConn(fc)
}

func (s *FeedServer) dropConn(fc *feedConn) {
	s.mu.Lock()
	delete(s.conns, fc)
	s.mu.Unlock()
	fc.teardown()
}

// feedConn is one subscriber connection: a bounded delta queue filled
// synchronously by the engine's delivery path and drained by a writer
// goroutine.
type feedConn struct {
	conn   inet.Conn
	cancel func()

	mu     sync.Mutex
	wake   *sync.Cond
	queue  []queuedDelta
	closed bool
}

type queuedDelta struct {
	seq int64
	rel *mring.Relation
}

// push enqueues one delta; it runs on the applying goroutine and never
// blocks. On overflow the newest queued entry absorbs the new delta:
// the replacement is a fresh relation (queued relations are shared with
// other subscribers and must never be mutated).
func (fc *feedConn) push(d Delta) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.closed {
		return
	}
	if len(fc.queue) >= feedQueueCap {
		last := &fc.queue[len(fc.queue)-1]
		merged := mring.NewRelation(last.rel.Schema())
		merged.Merge(last.rel)
		merged.Merge(d.rel)
		*last = queuedDelta{seq: d.Seq, rel: merged}
	} else {
		fc.queue = append(fc.queue, queuedDelta{seq: d.Seq, rel: d.rel})
	}
	fc.wake.Signal()
}

func (fc *feedConn) writeLoop() {
	for {
		fc.mu.Lock()
		for len(fc.queue) == 0 && !fc.closed {
			fc.wake.Wait()
		}
		if fc.closed {
			fc.mu.Unlock()
			return
		}
		q := fc.queue[0]
		fc.queue = fc.queue[1:]
		fc.mu.Unlock()
		msg := feedDeltaMsg{Seq: q.seq, Schema: q.rel.Schema(), Payload: inet.EncodeRelationPlain(q.rel)}
		body, err := feedEncode(msg)
		if err != nil {
			return
		}
		if err := fc.conn.Send(feedOpDelta, body); err != nil {
			return
		}
	}
}

// teardown unregisters the subscription and severs the connection; safe
// to call more than once and from any goroutine.
func (fc *feedConn) teardown() {
	fc.mu.Lock()
	if fc.closed {
		fc.mu.Unlock()
		return
	}
	fc.closed = true
	fc.queue = nil
	fc.wake.Broadcast()
	fc.mu.Unlock()
	if fc.cancel != nil {
		fc.cancel()
	}
	fc.conn.Close()
}

// FeedSub is a remote changefeed subscription created by DialFeed:
// Recv returns each delta the server's engine delivered, in order.
type FeedSub struct {
	conn inet.Conn
}

// DialFeed connects to a FeedServer and subscribes to one view's
// changefeed. view names a registered view on a registry server and is
// ignored ("" is conventional) on an engine server. OnKey restricts the
// stream server-side, so only matching deltas cross the wire.
//
// The stream is ordered but, under backpressure, adjacent deltas may
// arrive merged into one (Delta.Seq is then the newest transaction the
// merge covers); replaying the stream still reconstructs the result
// exactly.
func DialFeed(addr, view string, opts ...SubOption) (*FeedSub, error) {
	var cfg subConfig
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := inet.TCP{}.Dial(addr)
	if err != nil {
		return nil, err
	}
	body, err := feedEncode(feedSubReq{View: view, Key: cfg.key})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.Send(feedOpSub, body); err != nil {
		conn.Close()
		return nil, err
	}
	op, rbody, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch op {
	case feedOpOK:
		return &FeedSub{conn: conn}, nil
	case feedOpErr:
		conn.Close()
		return nil, fmt.Errorf("ivm: feed subscribe rejected: %s", rbody)
	default:
		conn.Close()
		return nil, fmt.Errorf("ivm: feed subscribe: unexpected frame type 0x%02x", op)
	}
}

// Recv blocks for the next delta. It returns io.EOF when the server
// closed the stream. Received payloads go through the hardened wire
// decoders; a corrupt frame returns an error.
func (s *FeedSub) Recv() (Delta, error) {
	op, body, err := s.conn.Recv()
	if err != nil {
		return Delta{}, err
	}
	switch op {
	case feedOpDelta:
		var msg feedDeltaMsg
		if err := feedDecode(body, &msg); err != nil {
			return Delta{}, fmt.Errorf("ivm: feed: corrupt delta frame: %w", err)
		}
		rel := mring.NewRelation(msg.Schema)
		if len(msg.Payload) > 0 {
			p, err := inet.DecodePayload(msg.Payload)
			if err != nil {
				return Delta{}, fmt.Errorf("ivm: feed: corrupt delta payload: %w", err)
			}
			p.Foreach(rel.Add)
		}
		return Delta{Seq: msg.Seq, rel: rel}, nil
	case feedOpErr:
		return Delta{}, fmt.Errorf("ivm: feed error: %s", body)
	default:
		return Delta{}, fmt.Errorf("ivm: feed: unexpected frame type 0x%02x", op)
	}
}

// Close terminates the subscription; the server unregisters it when the
// close is observed.
func (s *FeedSub) Close() error { return s.conn.Close() }
