package ivm

// Crash smoke: a real child process (cmd/ivmcrash) streaming into a
// durable engine is SIGKILLed at a randomized committed transaction;
// the harness reopens its directory in-process and asserts the
// recovered Result and the continued changefeed are bitwise-equal to an
// uninterrupted oracle at the recovered prefix. Gated on IVM_CRASH_BIN
// (set by `make crash-smoke` and the CI job) so plain `go test` stays
// hermetic.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/tpch"
)

// These must match the ivmcrash flag defaults: the oracle regenerates
// the child's exact transaction sequence from them.
const (
	crashQuery     = "Q3"
	crashSF        = 0.1
	crashSeed      = 5
	crashRows      = 50
	crashCkptEvery = 5
)

func crashRounds(t *testing.T) (tpch.Query, [][]tpch.Event) {
	t.Helper()
	q, err := tpch.QueryByName(crashQuery)
	if err != nil {
		t.Fatal(err)
	}
	stream := tpch.NewStream(tpch.NewGenerator(crashSF, crashSeed), q.Tables)
	var rounds [][]tpch.Event
	for {
		var round []tpch.Event
		for len(round) < crashRows {
			ev, ok := stream.Next()
			if !ok {
				break
			}
			round = append(round, ev)
		}
		if len(round) == 0 {
			return q, rounds
		}
		rounds = append(rounds, round)
	}
}

func applyEvents(t *testing.T, e *Engine, round []tpch.Event) {
	t.Helper()
	tx := e.NewTx()
	for _, ev := range round {
		if err := tx.Insert(ev.Table, ev.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Apply(tx); err != nil {
		t.Fatal(err)
	}
}

func TestCrashSmoke(t *testing.T) {
	bin := os.Getenv("IVM_CRASH_BIN")
	if bin == "" {
		t.Skip("IVM_CRASH_BIN not set; run via `make crash-smoke`")
	}
	q, rounds := crashRounds(t)
	if len(rounds) < 4 {
		t.Fatalf("stream too short: %d rounds", len(rounds))
	}

	// The kill point is randomized on purpose — recovery must be exact
	// at EVERY commit boundary, not at a hand-picked one. The seed is
	// logged so a failure reproduces.
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	killAt := 1 + rng.Intn(len(rounds)-2)
	t.Logf("rng seed %d: SIGKILL after APPLIED %d of %d", seed, killAt, len(rounds))

	dir := t.TempDir()
	cmd := exec.Command(bin, "-dir", dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	watchdog := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()

	lastAcked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		var n int
		if _, err := fmt.Sscanf(sc.Text(), "APPLIED %d", &n); err != nil {
			if strings.HasPrefix(sc.Text(), "DONE") {
				t.Fatalf("child finished before the kill point: %q", sc.Text())
			}
			t.Fatalf("unexpected child output %q", sc.Text())
		}
		lastAcked = n
		if n >= killAt {
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	cmd.Wait()
	if lastAcked < killAt {
		t.Fatalf("child died early: last acked %d, wanted to reach %d", lastAcked, killAt)
	}

	// Reopen the crashed directory. Sync-every-commit means every acked
	// line is durable; the child may additionally have committed (but
	// not printed) transactions the kill raced with, so the recovered
	// count is bounded below by the acked count and above by the stream.
	recovered, err := New(q.Name, q.Def, q.BaseSchemas(),
		Durable(dir, CheckpointEvery(crashCkptEvery)))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	ds := recovered.Stats().Durability
	applied := int(ds.Applied)
	if applied < lastAcked || applied > len(rounds) {
		t.Fatalf("recovered %d transactions; acked %d of %d — an acked commit was lost",
			applied, lastAcked, len(rounds))
	}
	rec := ds.Recovery
	if !rec.Recovered {
		t.Fatalf("reopen did not recover: %+v", rec)
	}
	// Checkpointing must bound replay: only the WAL tail since the last
	// auto-checkpoint replays, never the whole history.
	if rec.ReplayedRecords > crashCkptEvery {
		t.Fatalf("replayed %d records; CheckpointEvery(%d) should bound the tail", rec.ReplayedRecords, crashCkptEvery)
	}
	if applied >= crashCkptEvery && !rec.HasCheckpoint {
		t.Fatalf("no checkpoint restored after %d transactions: %+v", applied, rec)
	}

	// Oracle at the recovered prefix, then both continue the stream with
	// changefeeds attached: results and deltas must stay bitwise-equal.
	oracle, err := New(q.Name, q.Def, q.BaseSchemas())
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range rounds[:applied] {
		applyEvents(t, oracle, round)
	}
	requireBitwiseEqual(t, "recovered result", recovered.Result().rel, oracle.Result().rel)

	oracleDeltas := collectDeltas(t, oracle)
	recDeltas := collectDeltas(t, recovered)
	for _, round := range rounds[applied:] {
		applyEvents(t, oracle, round)
		applyEvents(t, recovered, round)
	}
	requireBitwiseEqual(t, "final result", recovered.Result().rel, oracle.Result().rel)
	if len(*recDeltas) != len(*oracleDeltas) {
		t.Fatalf("recovered feed has %d deltas, oracle has %d", len(*recDeltas), len(*oracleDeltas))
	}
	for i := range *oracleDeltas {
		if (*recDeltas)[i] != (*oracleDeltas)[i] {
			t.Fatalf("delta %d diverged after crash recovery\n got %s\nwant %s",
				i, (*recDeltas)[i], (*oracleDeltas)[i])
		}
	}
}
