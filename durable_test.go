package ivm

// Crash-recovery goldens for the durability subsystem: an engine killed
// at an arbitrary committed transaction and reopened from its directory
// must serve a Result — and continue its subscriber delta stream —
// bitwise-identical to an engine that never crashed, on the local
// backend, the simulated cluster, and the process cluster (where the
// workers themselves restart empty and re-warm from recovered state).

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/tpch"
)

// txRounds pre-generates the query's update stream as multi-table
// transaction rounds, so the same logical stream can replay into any
// number of engines (each gets its own clone of the batch relations).
func txRounds(t *testing.T, q tpch.Query, sf float64, rows int) [][]tpch.Batch {
	t.Helper()
	gen := tpch.NewGenerator(sf, 5)
	stream := tpch.NewStream(gen, q.Tables)
	var rounds [][]tpch.Batch
	for {
		bs := stream.NextBatches(rows)
		if len(bs) == 0 {
			return rounds
		}
		rounds = append(rounds, bs)
	}
}

// applyRound folds one round as a single transaction.
func applyRound(t *testing.T, e *Engine, round []tpch.Batch) {
	t.Helper()
	tx := NewTx()
	for _, b := range round {
		if err := tx.Put(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Apply(tx); err != nil {
		t.Fatal(err)
	}
}

// collectDeltas subscribes a plain feed that renders every delivered
// delta (Seq included) into the returned slice.
func collectDeltas(t *testing.T, e *Engine) *[]string {
	t.Helper()
	var got []string
	if _, err := e.Subscribe(func(d Delta) { got = append(got, d.String()) }); err != nil {
		t.Fatal(err)
	}
	return &got
}

// TestDurableRecoveryGolden is the PR's acceptance golden: for Q1, Q3,
// and Q6 on the local and the 1- and 8-worker simulated cluster
// backends, kill a durable engine (no Close — the directory is exactly
// what a crash leaves) two thirds into the stream with a checkpoint
// forced one third in, reopen it, and require (a) recovery restored the
// checkpoint and replayed exactly the WAL tail after it, and (b) the
// recovered engine's Result and its changefeed over the remaining
// stream are bitwise-equal to a never-crashed engine's.
func TestDurableRecoveryGolden(t *testing.T) {
	backends := []struct {
		name string
		opts []Option
	}{
		{"local", nil},
		{"distributed1", []Option{Distributed(1), KeyRanks(tpch.PrimaryKeyRanks)}},
		{"distributed8", []Option{Distributed(8), KeyRanks(tpch.PrimaryKeyRanks)}},
	}
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		q, err := tpch.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rounds := txRounds(t, q, 0.1, 50)
		if len(rounds) < 6 {
			t.Fatalf("stream too short for a meaningful crash point: %d rounds", len(rounds))
		}
		ckptAt, killAt := len(rounds)/3, 2*len(rounds)/3
		for _, be := range backends {
			t.Run(name+"/"+be.name, func(t *testing.T) {
				bases := q.BaseSchemas()

				// The never-crashed oracle observes the whole stream, with
				// a changefeed attached from the start.
				oracle, err := New(q.Name, q.Def, bases, be.opts...)
				if err != nil {
					t.Fatal(err)
				}
				oracleDeltas := collectDeltas(t, oracle)
				for _, round := range rounds {
					applyRound(t, oracle, round)
				}

				// The victim logs every transaction, checkpoints at
				// ckptAt, and is abandoned un-Closed at killAt.
				dir := t.TempDir()
				victim, err := New(q.Name, q.Def, bases, append([]Option{Durable(dir)}, be.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < killAt; i++ {
					applyRound(t, victim, rounds[i])
					if i+1 == ckptAt {
						if err := victim.Checkpoint(); err != nil {
							t.Fatal(err)
						}
					}
				}

				// Crash: no Close, no final checkpoint, no WAL flush
				// beyond the per-commit syncs.
				recovered, err := New(q.Name, q.Def, bases, append([]Option{Durable(dir)}, be.opts...)...)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer recovered.Close()

				rec := recovered.Stats().Durability.Recovery
				if !rec.Recovered || !rec.HasCheckpoint {
					t.Fatalf("recovery did not use the checkpoint: %+v", rec)
				}
				if rec.CheckpointSeq != int64(ckptAt) {
					t.Fatalf("checkpoint covered %d transactions, want %d", rec.CheckpointSeq, ckptAt)
				}
				// Tail-only replay: everything up to the checkpoint came
				// from the snapshot, never from re-evaluating base tables.
				if rec.ReplayedRecords != killAt-ckptAt {
					t.Fatalf("replayed %d records, want exactly the WAL tail %d", rec.ReplayedRecords, killAt-ckptAt)
				}

				// The surviving stream: both engines process the rest;
				// the recovered feed must continue bitwise-identical,
				// sequence numbers included.
				recDeltas := collectDeltas(t, recovered)
				for i := killAt; i < len(rounds); i++ {
					applyRound(t, recovered, rounds[i])
				}
				requireBitwiseEqual(t, "recovered result", recovered.Result().rel, oracle.Result().rel)
				tail := (*oracleDeltas)[killAt:]
				if len(*recDeltas) != len(tail) {
					t.Fatalf("recovered feed has %d deltas, oracle tail has %d", len(*recDeltas), len(tail))
				}
				for i := range tail {
					if (*recDeltas)[i] != tail[i] {
						t.Fatalf("delta %d diverged after recovery\n got %s\nwant %s", i, (*recDeltas)[i], tail[i])
					}
				}
			})
		}
	}
}

// TestDurableCleanShutdownZeroReplay pins satellite 2: Close flushes
// the WAL and writes a final checkpoint, so reopening the directory
// recovers from the checkpoint alone — zero replayed records — and
// still serves a bitwise-identical Result.
func TestDurableCleanShutdownZeroReplay(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	rounds := txRounds(t, q, 0.1, 50)

	oracle, err := New(q.Name, q.Def, bases)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	first, err := New(q.Name, q.Def, bases, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range rounds {
		applyRound(t, oracle, round)
		applyRound(t, first, round)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := New(q.Name, q.Def, bases, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	rec := reopened.Stats().Durability.Recovery
	if !rec.HasCheckpoint || rec.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown should recover with zero replay, got %+v", rec)
	}
	if rec.CheckpointSeq != int64(len(rounds)) {
		t.Fatalf("final checkpoint covered %d transactions, want %d", rec.CheckpointSeq, len(rounds))
	}
	requireBitwiseEqual(t, "reopened result", reopened.Result().rel, oracle.Result().rel)
}

// TestDurableWarmRecovery pins the RecWarm replay path: a warm start is
// logged like a transaction, and a crash right after it (plus a few
// streamed transactions, no checkpoint at all) recovers by replaying
// the whole log from an empty backend.
func TestDurableWarmRecovery(t *testing.T) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	rounds := txRounds(t, q, 0.1, 100)
	warm := map[string]*Batch{}
	for _, b := range rounds[0] {
		warm[b.Table] = &Batch{rel: b.Rel.Clone()}
	}

	oracle, err := New(q.Name, q.Def, bases)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	victim, err := New(q.Name, q.Def, bases, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	warmOracle := map[string]*Batch{}
	for tbl, b := range warm {
		warmOracle[tbl] = &Batch{rel: b.rel.Clone()}
	}
	if err := oracle.Warm(warmOracle); err != nil {
		t.Fatal(err)
	}
	if err := victim.Warm(warm); err != nil {
		t.Fatal(err)
	}
	for _, round := range rounds[1:4] {
		applyRound(t, oracle, round)
		applyRound(t, victim, round)
	}

	recovered, err := New(q.Name, q.Def, bases, Durable(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	rec := recovered.Stats().Durability.Recovery
	if rec.HasCheckpoint || rec.ReplayedRecords != 4 {
		t.Fatalf("want checkpoint-less replay of warm+3 txs, got %+v", rec)
	}
	requireBitwiseEqual(t, "recovered result", recovered.Result().rel, oracle.Result().rel)
}

// TestDurableRemoteRecovery pins the process-cluster recovery model:
// the WAL and checkpoints live on the driver, so when the engine dies
// AND every worker process dies with their state, reopening the
// directory against fresh empty workers re-warms them from the
// recovered checkpoint (opRestore) and replays the tail through them.
func TestDurableRemoteRecovery(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	rounds := txRounds(t, q, 0.1, 50)
	if len(rounds) < 4 {
		t.Fatalf("stream too short: %d rounds", len(rounds))
	}
	ckptAt, killAt := len(rounds)/4, len(rounds)/2
	const workers = 2

	// The never-crashed oracle: the simulated cluster at the same
	// worker count (process-cluster parity is bitwise, pinned by
	// TestGoldenProcessClusterParity).
	oracle, err := New(q.Name, q.Def, bases, Distributed(workers), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	oracleDeltas := collectDeltas(t, oracle)
	for _, round := range rounds {
		applyRound(t, oracle, round)
	}

	dir := t.TempDir()
	addrs, srvs := startWorkers(t, workers)
	victim, err := New(q.Name, q.Def, bases,
		Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks), Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < killAt; i++ {
		applyRound(t, victim, rounds[i])
		if i+1 == ckptAt {
			if err := victim.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash the whole deployment: driver abandoned, workers killed with
	// all their in-memory fragments.
	for _, s := range srvs {
		s.Close()
	}

	addrs2, _ := startWorkers(t, workers)
	recovered, err := New(q.Name, q.Def, bases,
		Remote(addrs2...), KeyRanks(tpch.PrimaryKeyRanks), Durable(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	rec := recovered.Stats().Durability.Recovery
	if !rec.HasCheckpoint || rec.ReplayedRecords != killAt-ckptAt {
		t.Fatalf("want checkpoint + %d-record tail replay, got %+v", killAt-ckptAt, rec)
	}
	recDeltas := collectDeltas(t, recovered)
	for i := killAt; i < len(rounds); i++ {
		applyRound(t, recovered, rounds[i])
	}
	requireBitwiseEqual(t, "recovered remote result", recovered.Result().rel, oracle.Result().rel)
	tail := (*oracleDeltas)[killAt:]
	if len(*recDeltas) != len(tail) {
		t.Fatalf("recovered feed has %d deltas, oracle tail has %d", len(*recDeltas), len(tail))
	}
	for i := range tail {
		if (*recDeltas)[i] != tail[i] {
			t.Fatalf("delta %d diverged after remote recovery\n got %s\nwant %s", i, (*recDeltas)[i], tail[i])
		}
	}
}

// TestDurableRegistryRecovery runs the multi-view serving path through
// a crash: two registered views over one shared program, killed
// mid-stream, must both recover bitwise.
func TestDurableRegistryRecovery(t *testing.T) {
	q1, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := map[string]Schema{}
	for n, s := range q1.BaseSchemas() {
		bases[n] = s
	}
	for n, s := range q6.BaseSchemas() {
		bases[n] = s
	}
	rounds := txRounds(t, q1, 0.1, 50) // lineitem stream feeds both queries
	killAt := len(rounds) / 2

	build := func(opts ...Option) *Registry {
		r, err := NewRegistry(bases, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Register("pricing", q1.Def); err != nil {
			t.Fatal(err)
		}
		if err := r.Register("discount", q6.Def); err != nil {
			t.Fatal(err)
		}
		return r
	}
	applyRegRound := func(r *Registry, round []tpch.Batch) {
		tx := r.NewTx()
		for _, b := range round {
			if err := tx.Put(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Apply(tx); err != nil {
			t.Fatal(err)
		}
	}

	oracle := build()
	for _, round := range rounds {
		applyRegRound(oracle, round)
	}

	dir := t.TempDir()
	victim := build(Durable(dir, CheckpointEvery(3)))
	for i := 0; i < killAt; i++ {
		applyRegRound(victim, rounds[i])
	}

	recovered := build(Durable(dir, CheckpointEvery(3)))
	defer recovered.Close()
	for i := killAt; i < len(rounds); i++ {
		applyRegRound(recovered, rounds[i])
	}
	st, err := recovered.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durability.Recovery.Recovered {
		t.Fatalf("registry did not recover: %+v", st.Durability.Recovery)
	}
	if got := st.Durability.Recovery.ReplayedRecords; got >= killAt {
		t.Fatalf("CheckpointEvery(3) should bound replay below %d, replayed %d", killAt, got)
	}
	for _, view := range []string{"pricing", "discount"} {
		got, err := recovered.Result(view)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Result(view)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, "registry view "+view, got.rel, want.rel)
	}
}

// TestDurableMisuse pins the construction and runtime error surface.
func TestDurableMisuse(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	if _, err := New(q.Name, q.Def, bases, Durable("")); err == nil {
		t.Fatal("Durable(\"\") should be rejected")
	}
	e, err := New(q.Name, q.Def, bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err == nil || !strings.Contains(err.Error(), "Durable") {
		t.Fatalf("Checkpoint on a non-durable engine: %v", err)
	}

	// A directory written under one program must not silently restore
	// into a different one.
	dir := t.TempDir()
	d, err := New(q.Name, q.Def, bases, Durable(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, round := range txRounds(t, q, 0.03, 80)[:2] {
		applyRound(t, d, round)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	q1, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(q1.Name, q1.Def, q1.BaseSchemas(), Durable(dir)); err == nil {
		t.Fatal("recovering a Q6 directory into a Q1 engine should fail")
	} else if !strings.Contains(err.Error(), "view") && !strings.Contains(err.Error(), "table") {
		t.Fatalf("want a program-mismatch error, got: %v", err)
	}
}

// TestDurableGroupCommitStats pins the relaxed sync policies at the
// engine surface: group commit issues fewer fsyncs than appends, and
// the stats expose both counters.
func TestDurableGroupCommitStats(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	rounds := txRounds(t, q, 0.1, 50)
	if len(rounds) < 8 {
		t.Fatalf("stream too short: %d rounds", len(rounds))
	}
	e, err := New(q.Name, q.Def, bases, Durable(t.TempDir(), GroupCommit(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, round := range rounds[:8] {
		applyRound(t, e, round)
	}
	ds := e.Stats().Durability
	if !ds.Enabled {
		t.Fatal("Durability.Enabled false on a durable engine")
	}
	if ds.Records != 8 || ds.Applied != 8 {
		t.Fatalf("want 8 records applied, got %+v", ds)
	}
	if ds.Syncs != 2 {
		t.Fatalf("GroupCommit(4) over 8 appends wants 2 syncs, got %d", ds.Syncs)
	}
	if ds.Bytes <= 0 {
		t.Fatalf("WAL bytes not counted: %+v", ds)
	}
	// Sanity: the stats stringer-free struct renders (no stale fields).
	_ = fmt.Sprintf("%+v", ds)
}
