package ivm

// Keyed changefeed routing gate: an OnKey subscription must observe
// exactly the plain feed filtered to its key prefix, skipping
// transactions that did not touch a matching group, on both backends.
// The capture-teardown contract rides along: cancelling the last
// subscriber returns the engine — including the cluster watch — to zero
// capture overhead immediately.

import (
	"math/rand"
	"testing"

	"repro/internal/mring"
)

// keyedCase drives one engine with a plain subscriber and keyed
// subscribers on every group, then checks the routed streams.
func testKeyedRouting(t *testing.T, opts ...Option) {
	t.Helper()
	query := Sum([]string{"k"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	e, err := New("QK", query, bases, opts...)
	if err != nil {
		t.Fatal(err)
	}

	const groups = 6
	var plain []Delta
	e.Subscribe(func(d Delta) { plain = append(plain, d) })
	keyed := make([][]Delta, groups)
	for k := 0; k < groups; k++ {
		k := k
		e.Subscribe(func(d Delta) { keyed[k] = append(keyed[k], d) }, OnKey(Int(int64(k))))
	}

	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 10; round++ {
		br := NewBatch(Schema{"a", "k"})
		bs := NewBatch(Schema{"k", "c"})
		// Rounds touch a shifting subset of groups so some keyed
		// subscribers are skipped in most rounds.
		lo, hi := round%groups, round%groups+2
		for i := 0; i < 30; i++ {
			g := lo + rng.Intn(hi-lo+1)
			if g >= groups {
				g = groups - 1
			}
			br.Insert(Row(rng.Intn(500), g))
			bs.Insert(Row(g, rng.Intn(40)))
		}
		tx := e.NewTx()
		tx.Put("R", &Batch{rel: br.rel.Clone()})
		tx.Put("S", &Batch{rel: bs.rel.Clone()})
		if err := e.Apply(tx); err != nil {
			t.Fatal(err)
		}
	}

	for k := 0; k < groups; k++ {
		// Expected: the plain feed filtered to group k, empty deltas
		// dropped.
		var want []Delta
		for _, d := range plain {
			f := mring.NewRelation(d.rel.Schema())
			d.Foreach(func(tp Tuple, m float64) {
				if tp[0].Equal(Int(int64(k))) {
					f.Add(tp, m)
				}
			})
			if f.Len() > 0 {
				want = append(want, Delta{Seq: d.Seq, rel: f})
			}
		}
		got := keyed[k]
		if len(got) != len(want) {
			t.Fatalf("key %d: %d deltas delivered, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq {
				t.Fatalf("key %d delta %d: seq %d, want %d", k, i, got[i].Seq, want[i].Seq)
			}
			if got[i].String() != want[i].String() {
				t.Fatalf("key %d delta %d not the filtered plain delta\n got %s\nwant %s",
					k, i, got[i], want[i])
			}
		}
		if len(got) == len(plain) {
			t.Fatalf("key %d was never skipped: %d deltas for %d transactions", k, len(got), len(plain))
		}
	}
}

func TestSubscribeOnKeyLocal(t *testing.T) { testKeyedRouting(t) }

func TestSubscribeOnKeyDistributed(t *testing.T) {
	for _, w := range []int{1, 8, 16} {
		testKeyedRouting(t, Distributed(w), KeyRanks(map[string]int{"a": 3, "k": 2}))
	}
}

// TestSubscribeOnKeyMultiColumn pins prefix routing on a composite
// group key: a one-column key matches every group sharing the leading
// column, a two-column key matches exactly one group.
func TestSubscribeOnKeyMultiColumn(t *testing.T) {
	query := Sum([]string{"k", "c"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	e, err := New("QM", query, bases)
	if err != nil {
		t.Fatal(err)
	}
	var wide, narrow []Delta
	e.Subscribe(func(d Delta) { wide = append(wide, d) }, OnKey(Int(1)))
	e.Subscribe(func(d Delta) { narrow = append(narrow, d) }, OnKey(Int(1), Int(7)))

	br := NewBatch(Schema{"a", "k"})
	bs := NewBatch(Schema{"k", "c"})
	for i := 0; i < 8; i++ {
		br.Insert(Row(i, i%2))
		bs.Insert(Row(i%2, 7))
		bs.Insert(Row(i%2, 8))
	}
	tx := e.NewTx()
	tx.Put("R", &Batch{rel: br.rel})
	tx.Put("S", &Batch{rel: bs.rel})
	if err := e.Apply(tx); err != nil {
		t.Fatal(err)
	}

	if len(wide) != 1 || wide[0].Len() != 2 {
		t.Fatalf("one-column key: want 1 delta with groups (1,7),(1,8), got %v", wide)
	}
	if len(narrow) != 1 || narrow[0].Len() != 1 {
		t.Fatalf("two-column key: want 1 delta with group (1,7), got %v", narrow)
	}
	narrow[0].Foreach(func(tp Tuple, _ float64) {
		if !tp[0].Equal(Int(1)) || !tp[1].Equal(Int(7)) {
			t.Fatalf("two-column key routed wrong group %v", tp)
		}
	})

	// A key longer than the result schema is a subscription bug:
	// Engine.Subscribe panics, Registry.Subscribe errors.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Subscribe with over-long key did not panic")
			}
		}()
		e.Subscribe(func(Delta) {}, OnKey(Int(1), Int(2), Int(3)))
	}()
}

// TestSubscribeCancelStopsCapture pins the zero-overhead teardown: when
// the last subscriber cancels, the distributed backend drops its
// cluster watch immediately — no per-batch delta accumulation survives
// an unsubscribed engine — and a later re-subscribe starts a clean feed
// covering only new transactions.
func TestSubscribeCancelStopsCapture(t *testing.T) {
	query := Sum([]string{"k"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	e, err := New("QC", query, bases, Distributed(8), KeyRanks(map[string]int{"a": 3, "k": 2}))
	if err != nil {
		t.Fatal(err)
	}
	db := e.be.(*distBackend)
	apply := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		br := NewBatch(Schema{"a", "k"})
		bs := NewBatch(Schema{"k", "c"})
		for i := 0; i < 20; i++ {
			br.Insert(Row(rng.Intn(100), rng.Intn(5)))
			bs.Insert(Row(rng.Intn(5), rng.Intn(30)))
		}
		tx := e.NewTx()
		tx.Put("R", &Batch{rel: br.rel})
		tx.Put("S", &Batch{rel: bs.rel})
		if err := e.Apply(tx); err != nil {
			t.Fatal(err)
		}
	}

	n := 0
	cancelA, _ := e.Subscribe(func(Delta) { n++ })
	cancelB, _ := e.Subscribe(func(Delta) { n++ })
	apply(1)
	if n != 2 {
		t.Fatalf("delivered %d calls, want 2", n)
	}
	if len(db.watching) != 1 {
		t.Fatalf("backend watches %d views while subscribed, want 1", len(db.watching))
	}

	cancelA()
	cancelA() // cancel is idempotent
	if len(db.watching) != 1 {
		t.Fatalf("backend dropped watch with a subscriber remaining")
	}
	cancelB()
	if len(db.watching) != 0 {
		t.Fatalf("backend still watches %d views after last cancel, want 0", len(db.watching))
	}
	if d := db.cl.TakeWatchDelta(e.prog.QueryName); d != nil {
		t.Fatalf("cluster still holds a watch accumulator after last cancel")
	}

	// Transactions between cancel and re-subscribe must not leak into
	// the next feed.
	apply(2)
	var deltas []Delta
	e.Subscribe(func(d Delta) { deltas = append(deltas, d) })
	apply(3)
	if len(deltas) != 1 {
		t.Fatalf("re-subscribed feed delivered %d deltas, want 1", len(deltas))
	}

	// The fresh delta covers exactly the last transaction: replaying
	// feed-covered transactions on a shadow engine reproduces the delta.
	shadow, err := New("QC", query, bases, Distributed(8), KeyRanks(map[string]int{"a": 3, "k": 2}))
	if err != nil {
		t.Fatal(err)
	}
	e2 := shadow
	var shadowDeltas []Delta
	applyTo := func(eng *Engine, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		br := NewBatch(Schema{"a", "k"})
		bs := NewBatch(Schema{"k", "c"})
		for i := 0; i < 20; i++ {
			br.Insert(Row(rng.Intn(100), rng.Intn(5)))
			bs.Insert(Row(rng.Intn(5), rng.Intn(30)))
		}
		tx := eng.NewTx()
		tx.Put("R", &Batch{rel: br.rel})
		tx.Put("S", &Batch{rel: bs.rel})
		if err := eng.Apply(tx); err != nil {
			t.Fatal(err)
		}
	}
	applyTo(e2, 1)
	applyTo(e2, 2)
	e2.Subscribe(func(d Delta) { shadowDeltas = append(shadowDeltas, d) })
	applyTo(e2, 3)
	if len(shadowDeltas) != 1 || shadowDeltas[0].rel.String() != deltas[0].rel.String() {
		t.Fatalf("re-subscribed delta polluted by unsubscribed transactions\n got %v\nwant %v",
			deltas, shadowDeltas)
	}
}

// TestRegistryOnKeyRouting pins keyed routing through the Registry
// path, where two aliased views share one feed.
func TestRegistryOnKeyRouting(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	q := Sum([]string{"k"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("v", q); err != nil {
		t.Fatal(err)
	}
	var hits []Delta
	if _, err := reg.Subscribe("v", func(d Delta) { hits = append(hits, d) }, OnKey(Int(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Subscribe("v", func(Delta) {}, OnKey(Int(1), Int(2), Int(3))); err == nil {
		t.Fatal("Registry.Subscribe with over-long key succeeded, want error")
	}

	br := NewBatch(Schema{"a", "k"})
	bs := NewBatch(Schema{"k", "c"})
	br.Insert(Row(10, 2))
	bs.Insert(Row(2, 5))
	br.Insert(Row(11, 3))
	bs.Insert(Row(3, 6))
	tx := reg.NewTx()
	tx.Put("R", &Batch{rel: br.rel})
	tx.Put("S", &Batch{rel: bs.rel})
	if err := reg.Apply(tx); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Len() != 1 {
		t.Fatalf("registry keyed feed delivered %v, want one single-group delta", hits)
	}
	hits[0].Foreach(func(tp Tuple, _ float64) {
		if !tp[0].Equal(Int(2)) {
			t.Fatalf("registry keyed feed routed group %v, want key 2", tp)
		}
	})
}
