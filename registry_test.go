package ivm

// Multi-view registry gate: a Registry serving several queries from one
// shared program must be indistinguishable — bitwise — from running one
// independent Engine per query, on the local backend and the
// distributed backend at 1/8/16 workers. Run under -race (make test)
// this also certifies the shared program's per-worker state shares
// nothing. The sharing machinery itself (shape aliasing, sub-plan
// dedup, plan-cache hits) is pinned structurally.

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/mring"
	"repro/internal/tpch"
)

// bitwiseEqual fails the test unless got and want hold exactly the same
// groups with exactly the same float values.
func bitwiseEqual(t *testing.T, label string, got, want *mring.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d groups, want %d\n got %v\nwant %v", label, got.Len(), want.Len(), got, want)
	}
	want.Foreach(func(tp mring.Tuple, m float64) {
		if g := got.Get(tp); g != m {
			t.Fatalf("%s: group %v = %g, want bitwise %g", label, tp, g, m)
		}
	})
}

// TestRegistryGoldenTPCH is the multi-view golden gate: Q1, Q3, and Q6
// registered in one Registry over the shared TPC-H base tables must
// produce results bitwise identical to three independent engines fed
// the same stream, on the local backend and at 1/8/16 workers.
func TestRegistryGoldenTPCH(t *testing.T) {
	names := []string{"Q1", "Q3", "Q6"}
	queries := map[string]tpch.Query{}
	union := map[string]Schema{}
	tables := []string{}
	seen := map[string]bool{}
	for _, n := range names {
		q, err := tpch.QueryByName(n)
		if err != nil {
			t.Fatal(err)
		}
		queries[n] = q
		for tbl, sch := range q.BaseSchemas() {
			union[tbl] = sch
		}
		for _, tbl := range q.Tables {
			if !seen[tbl] {
				seen[tbl] = true
				tables = append(tables, tbl)
			}
		}
	}

	backends := []struct {
		name string
		opts []Option
	}{
		{"local", nil},
		{"w=1", []Option{Distributed(1), KeyRanks(tpch.PrimaryKeyRanks)}},
		{"w=8", []Option{Distributed(8), KeyRanks(tpch.PrimaryKeyRanks)}},
		{"w=16", []Option{Distributed(16), KeyRanks(tpch.PrimaryKeyRanks)}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			reg, err := NewRegistry(union, be.opts...)
			if err != nil {
				t.Fatal(err)
			}
			engines := map[string]*Engine{}
			for _, n := range names {
				if err := reg.Register(n, queries[n].Def); err != nil {
					t.Fatal(err)
				}
				// The independent engine compiles over the same union of
				// base schemas, so both planes deploy the identical program
				// shape per query.
				if engines[n], err = New(n, queries[n].Def, union, be.opts...); err != nil {
					t.Fatal(err)
				}
			}

			gen := tpch.NewGenerator(0.03, 5)
			stream := tpch.NewStream(gen, tables)
			for {
				bs := stream.NextBatches(250)
				if len(bs) == 0 {
					break
				}
				for _, b := range bs {
					if err := reg.ApplyBatch(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
						t.Fatal(err)
					}
					for _, n := range names {
						if err := engines[n].ApplyBatch(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			for _, n := range names {
				res, err := reg.Result(n)
				if err != nil {
					t.Fatal(err)
				}
				bitwiseEqual(t, fmt.Sprintf("%s/%s", be.name, n), res.rel, engines[n].Result().rel)
			}
		})
	}
}

// TestRegistryAliasSharesShape pins shape aliasing: registering a
// structurally identical query (renamed variables, reordered join
// factors) compiles nothing new and serves from the same maintained top
// view, and both names observe identical changefeed deltas.
func TestRegistryAliasSharesShape(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	qA := Sum([]string{"k"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	// Same plan: factors reordered, variables renamed.
	qB := Sum([]string{"y"}, Join(Table("S", "y", "z"), Table("R", "x", "y")))

	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range map[string]Expr{"revenue": qA, "revenue-copy": qB} {
		if err := reg.Register(name, q); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Shapes(); got != 1 {
		t.Fatalf("structurally identical queries compiled to %d shapes, want 1", got)
	}

	var feedA, feedB []string
	if _, err := reg.Subscribe("revenue", func(d Delta) { feedA = append(feedA, d.String()) }); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Subscribe("revenue-copy", func(d Delta) { feedB = append(feedB, d.String()) }); err != nil {
		t.Fatal(err)
	}

	b := NewBatch(Schema{"a", "k"})
	for i := 0; i < 20; i++ {
		b.Insert(Row(i, i%4))
	}
	s := NewBatch(Schema{"k", "c"})
	for i := 0; i < 12; i++ {
		s.Insert(Row(i%4, i))
	}
	if err := reg.ApplyBatch("R", b); err != nil {
		t.Fatal(err)
	}
	if err := reg.ApplyBatch("S", s); err != nil {
		t.Fatal(err)
	}

	if len(feedA) != 2 || len(feedB) != 2 {
		t.Fatalf("alias feeds delivered %d/%d deltas, want 2/2", len(feedA), len(feedB))
	}
	for i := range feedA {
		if feedA[i] != feedB[i] {
			t.Fatalf("aliased views observed different deltas:\n A %s\n B %s", feedA[i], feedB[i])
		}
	}
	ra, err := reg.Result("revenue")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := reg.Result("revenue-copy")
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "alias", rb.rel, ra.rel)
}

// TestRegistrySharedSubPlans pins cross-shape sub-plan dedup: two
// distinct query shapes over the same join maintain the shared join
// component once — the registry's view count is strictly below the sum
// of the two independent programs' — while both results stay bitwise
// identical to independent engines.
func TestRegistrySharedSubPlans(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	join := Join(Table("R", "a", "k"), Table("S", "k", "c"))
	qGrouped := Sum([]string{"k"}, join)
	qTotal := Sum(nil, join)

	independent := 0
	for name, q := range map[string]Expr{"G": qGrouped, "T": qTotal} {
		prog, err := compile.Compile(name, q, bases, compile.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		independent += len(prog.Views)
	}

	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]*Engine{}
	for name, q := range map[string]Expr{"grouped": qGrouped, "total": qTotal} {
		if err := reg.Register(name, q); err != nil {
			t.Fatal(err)
		}
		if engines[name], err = New(name, q, bases); err != nil {
			t.Fatal(err)
		}
	}
	if reg.SharedViews() >= independent {
		t.Fatalf("no sub-plan sharing: registry maintains %d views, independent programs %d",
			reg.SharedViews(), independent)
	}

	for round := 0; round < 5; round++ {
		br := NewBatch(Schema{"a", "k"})
		bs := NewBatch(Schema{"k", "c"})
		for i := 0; i < 15; i++ {
			br.Insert(Row(round*100+i, i%6))
			bs.Insert(Row(i%6, round*10+i))
		}
		tx := reg.NewTx()
		tx.Put("R", &Batch{rel: br.rel.Clone()})
		tx.Put("S", &Batch{rel: bs.rel.Clone()})
		if err := reg.Apply(tx); err != nil {
			t.Fatal(err)
		}
		for _, e := range engines {
			etx := e.NewTx()
			etx.Put("R", &Batch{rel: br.rel.Clone()})
			etx.Put("S", &Batch{rel: bs.rel.Clone()})
			if err := e.Apply(etx); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, e := range engines {
		res, err := reg.Result(name)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, name, res.rel, e.Result().rel)
	}
}

// TestRegistryPlanCache pins the O(1)-compile property: after the first
// registration of a shape, every further structurally identical
// registration — in the same registry or a fresh one — hits the plan
// cache instead of recompiling.
func TestRegistryPlanCache(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	shape := func(i int) Expr {
		// Same shape every time, written with per-view variable names, so
		// a hit proves canonicalization (not string identity) keys the
		// cache.
		a, k, c := fmt.Sprintf("a%d", i), fmt.Sprintf("k%d", i), fmt.Sprintf("c%d", i)
		return Sum([]string{k}, Join(Table("R", a, k), Table("S", k, c)))
	}
	h0, m0 := compile.SharedPlans.Stats()
	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := reg.Register(fmt.Sprintf("view-%d", i), shape(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Shapes(); got != 1 {
		t.Fatalf("one shape registered %d times compiled to %d shapes", n, got)
	}
	// A second registry over the same schemas: its first registration of
	// the shape must hit the shared cache.
	reg2, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg2.Register("other", shape(99)); err != nil {
		t.Fatal(err)
	}
	h1, m1 := compile.SharedPlans.Stats()
	if hits := h1 - h0; hits < 1 {
		t.Fatalf("cross-registry registration missed the plan cache (hits %d)", hits)
	}
	if misses := m1 - m0; misses > 1 {
		t.Fatalf("one query shape compiled %d times, want 1", misses)
	}
}

// TestRegistryRegisterAfterBuild pins the build boundary: once the
// shared program is serving, further registrations are rejected with an
// error (not a silent no-op).
func TestRegistryRegisterAfterBuild(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "k"}}
	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("q", Sum([]string{"k"}, Table("R", "a", "k"))); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(Schema{"a", "k"})
	b.Insert(Row(1, 2))
	if err := reg.ApplyBatch("R", b); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("late", Sum(nil, Table("R", "a", "k"))); err == nil {
		t.Fatal("Register after first transaction succeeded, want error")
	}
	if _, err := reg.Result("nosuch"); err == nil {
		t.Fatal("Result on unknown view succeeded, want error")
	}
}
