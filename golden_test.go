package ivm

// Golden-result gate for the unified engine API: the TPC-H aggregate
// queries (Q1-style group-bys) must produce identical results through
// every execution plane — ivm.New's local backend, its distributed
// backend at 1, 8, and 16 workers, and a fresh-rebuild oracle that
// recomputes the query from the accumulated base tables. Run under
// -race (make test) this also certifies the group tables built on
// worker goroutines share nothing.

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/mring"
	"repro/internal/tpch"
)

// goldenStream drives one query's stream through a set of engines in
// lockstep and returns the accumulated base tables for the oracle.
func goldenStream(t *testing.T, q tpch.Query, apply func(table string, b *Batch)) map[string]*mring.Relation {
	t.Helper()
	gen := tpch.NewGenerator(0.03, 5)
	accum := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			accum[tbl] = gen.Static(tbl)
		} else {
			accum[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	stream := tpch.NewStream(gen, q.Tables)
	for {
		bs := stream.NextBatches(250)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			apply(b.Table, &Batch{rel: b.Rel})
			accum[b.Table].Merge(b.Rel)
		}
	}
	return accum
}

// rebuildOracle recomputes the query from scratch over accumulated base
// tables.
func rebuildOracle(q tpch.Query, accum map[string]*mring.Relation) *mring.Relation {
	env := eval.NewEnv()
	for n, r := range accum {
		env.Bind(n, r)
	}
	return eval.NewCtx(env).Materialize(q.Def)
}

func TestGoldenAggregatesAcrossEngines(t *testing.T) {
	workerCounts := []int{1, 8, 16}
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		t.Run(name, func(t *testing.T) {
			q, err := tpch.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			bases := q.BaseSchemas()

			// One constructor path for both backends.
			local, err := New(q.Name, q.Def, bases)
			if err != nil {
				t.Fatal(err)
			}
			dists := map[int]*Engine{}
			for _, w := range workerCounts {
				if dists[w], err = New(q.Name, q.Def, bases,
					Distributed(w), KeyRanks(tpch.PrimaryKeyRanks)); err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
			}

			// Static dimensions load the same way everywhere; the stream
			// then feeds every engine the identical batch sequence.
			accum := goldenStream(t, q, func(table string, b *Batch) {
				if err := local.ApplyBatch(table, b); err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts {
					if err := dists[w].ApplyBatch(table, b); err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
				}
			})

			oracle := rebuildOracle(q, accum)
			want := local.Result().rel
			if !want.EqualApprox(oracle, 1e-6) {
				t.Fatalf("Engine diverges from rebuild oracle\n got (%d groups) %v\nwant (%d groups) %v",
					want.Len(), want, oracle.Len(), oracle)
			}
			for _, w := range workerCounts {
				got := dists[w].Result().rel
				if got.Len() != want.Len() {
					t.Fatalf("workers=%d: %d groups, Engine has %d", w, got.Len(), want.Len())
				}
				if !got.EqualApprox(want, 1e-6) {
					t.Fatalf("workers=%d diverged from Engine\n got %v\nwant %v", w, got, want)
				}
			}
		})
	}
}

// TestGoldenTxEqualsSequential pins the transaction semantics: folding
// one Apply(tx) over several tables produces exactly the same state as
// applying the same per-table batches as sequential single-table
// batches (in tx order), and both equal the rebuild oracle. Checked on
// both backends.
func TestGoldenTxEqualsSequential(t *testing.T) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	newEngines := func(opts ...Option) (txEng, seqEng *Engine) {
		txEng, err := New(q.Name, q.Def, bases, opts...)
		if err != nil {
			t.Fatal(err)
		}
		seqEng, err = New(q.Name, q.Def, bases, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return txEng, seqEng
	}
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"local", nil},
		{"distributed8", []Option{Distributed(8), KeyRanks(tpch.PrimaryKeyRanks)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			txEng, seqEng := newEngines(tc.opts...)

			// Group the stream into multi-table transactions: all batches
			// of one stream round form one Tx.
			gen := tpch.NewGenerator(0.03, 7)
			accum := map[string]*mring.Relation{}
			for _, tbl := range q.Tables {
				accum[tbl] = mring.NewRelation(tpch.Schemas[tbl])
			}
			stream := tpch.NewStream(gen, q.Tables)
			for {
				bs := stream.NextBatches(300)
				if len(bs) == 0 {
					break
				}
				tx := txEng.NewTx()
				for _, b := range bs {
					tx.Put(b.Table, &Batch{rel: b.Rel.Clone()})
					if err := seqEng.ApplyBatch(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
						t.Fatal(err)
					}
					accum[b.Table].Merge(b.Rel)
				}
				if err := txEng.Apply(tx); err != nil {
					t.Fatal(err)
				}
			}

			got, want := txEng.Result().rel, seqEng.Result().rel
			if !got.Equal(want) {
				t.Fatalf("Apply(tx) diverged from sequential batches\n got %v\nwant %v", got, want)
			}
			oracle := rebuildOracle(q, accum)
			if !got.EqualApprox(oracle, 1e-6) {
				t.Fatalf("Apply(tx) diverged from rebuild oracle\n got %v\nwant %v", got, oracle)
			}
		})
	}
}

// TestGoldenDistributedDeterminism pins the merge-order guarantee: two
// distributed deployments fed the identical stream produce bitwise-equal
// group values, because per-worker group tables always merge in
// worker-index order (goroutine completion order never influences the
// result).
func TestGoldenDistributedDeterminism(t *testing.T) {
	q, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	run := func() *mring.Relation {
		d, err := New(q.Name, q.Def, bases, Distributed(8), KeyRanks(tpch.PrimaryKeyRanks))
		if err != nil {
			t.Fatal(err)
		}
		goldenStream(t, q, func(table string, b *Batch) {
			if err := d.ApplyBatch(table, b); err != nil {
				t.Fatal(err)
			}
		})
		return d.Result().rel
	}
	a, b := run(), run()
	if a.Len() != b.Len() {
		t.Fatalf("runs differ in group count: %d vs %d", a.Len(), b.Len())
	}
	a.Foreach(func(tp mring.Tuple, m float64) {
		if got := b.Get(tp); got != m {
			t.Fatalf("distributed result not bitwise reproducible: %v -> %g vs %g", tp, m, got)
		}
	})
}

// TestGoldenQ1GroupDomain is the literal golden check for the Q1-style
// aggregate: the pricing-summary group domain is the cross product of
// return flags and line statuses the generator emits, and every group
// value must be strictly positive (sums of quantities).
func TestGoldenQ1GroupDomain(t *testing.T) {
	q, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	local, err := New(q.Name, q.Def, q.BaseSchemas())
	if err != nil {
		t.Fatal(err)
	}
	goldenStream(t, q, func(table string, b *Batch) {
		if err := local.ApplyBatch(table, b); err != nil {
			t.Fatal(err)
		}
	})
	res := local.Result()
	if res.Len() == 0 {
		t.Fatal("Q1 produced no groups")
	}
	res.Foreach(func(tp Tuple, agg float64) {
		if len(tp) != 2 {
			t.Fatalf("Q1 group arity %d, want 2 (returnflag, linestatus): %v", len(tp), tp)
		}
		if agg <= 0 {
			t.Errorf("Q1 group %v has non-positive quantity sum %g", tp, agg)
		}
	})
}
