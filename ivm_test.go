package ivm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tpch"
)

func TestEngineQuickstart(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	eng, err := New("Q", q, map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatch(Schema{"a", "b"})
	br.Insert(Row(1, 10))
	br.Insert(Row(2, 10))
	if err := eng.ApplyBatch("R", br); err != nil {
		t.Fatal(err)
	}
	bs := NewBatch(Schema{"b", "c"})
	bs.Insert(Row(10, 7))
	if err := eng.ApplyBatch("S", bs); err != nil {
		t.Fatal(err)
	}
	if got := eng.Result().Get(Row(10)); got != 2 {
		t.Fatalf("result = %g, want 2", got)
	}
	// Deletion retracts.
	del := NewBatch(Schema{"a", "b"})
	del.Delete(Row(1, 10))
	if err := eng.ApplyBatch("R", del); err != nil {
		t.Fatal(err)
	}
	if got := eng.Result().Get(Row(10)); got != 1 {
		t.Fatalf("after delete = %g, want 1", got)
	}
}

func TestEngineMultiTableTx(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	eng, err := New("Q", q, map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.NewTx()
	for _, err := range []error{
		tx.Insert("R", Row(1, 10)),
		tx.Insert("R", Row(2, 10)),
		tx.Insert("S", Row(10, 7)),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := tx.Len(); got != 3 {
		t.Fatalf("tx.Len = %d, want 3", got)
	}
	if got := tx.Tables(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("tx.Tables = %v, want [R S]", got)
	}
	if err := eng.Apply(tx); err != nil {
		t.Fatal(err)
	}
	if got := eng.Result().Get(Row(10)); got != 2 {
		t.Fatalf("result after tx = %g, want 2", got)
	}
}

func TestEngineNestedAndOptions(t *testing.T) {
	inner := Sum(nil, Join(Table("S", "b2", "c"), Cond(Eq, Col("b"), Col("b2"))))
	q := Sum(nil, Join(
		Table("R", "a", "b"),
		Lift("x", inner),
		Cond(Lt, Col("a"), Col("x"))))
	eng, err := New("QN", q,
		map[string]Schema{"R": {"a", "b"}, "S": {"b2", "c"}},
		CompileOptions(Options{DomainExtraction: true}))
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatch(Schema{"a", "b"})
	br.Insert(Row(0, 5))
	eng.ApplyBatch("R", br)
	bs := NewBatch(Schema{"b2", "c"})
	bs.Insert(Row(5, 1))
	eng.ApplyBatch("S", bs)
	if got := eng.Result().Get(Row()); got != 1 {
		t.Fatalf("nested result = %g, want 1", got)
	}
	if eng.Program().String() == "" {
		t.Fatal("program rendering empty")
	}
	if eng.TriggerProgram("R") == "" {
		t.Fatal("local trigger rendering empty")
	}
}

func TestEngineWarm(t *testing.T) {
	q := Sum(nil, Join(Table("R", "a"), Val(Col("a"))))
	eng, err := New("QL", q, map[string]Schema{"R": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	init := NewBatch(Schema{"a"})
	init.Insert(Row(4))
	if err := eng.Warm(map[string]*Batch{"R": init}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Result().Get(Row()); got != 4 {
		t.Fatalf("warm start = %g, want 4", got)
	}
	if err := eng.Warm(map[string]*Batch{"X": init}); err == nil ||
		!strings.Contains(err.Error(), `unknown table "X"`) {
		t.Fatalf("Warm(unknown table) = %v, want descriptive error", err)
	}
	if err := eng.Warm(map[string]*Batch{"R": nil}); err == nil ||
		!strings.Contains(err.Error(), "nil initial batch") {
		t.Fatalf("Warm(nil batch) = %v, want descriptive error", err)
	}
}

func TestEngineSingleTupleMode(t *testing.T) {
	q := Sum([]string{"a"}, Table("R", "a", "b"))
	eng, err := New("QS", q, map[string]Schema{"R": {"a", "b"}}, SingleTuple())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(Schema{"a", "b"})
	b.Insert(Row(1, 2))
	b.Insert(Row(1, 3))
	eng.ApplyBatch("R", b)
	if got := eng.Result().Get(Row(1)); got != 2 {
		t.Fatalf("single-tuple mode = %g, want 2", got)
	}
}

func TestNewOptionValidation(t *testing.T) {
	q := Sum([]string{"a"}, Table("R", "a"))
	bases := map[string]Schema{"R": {"a"}}
	if _, err := New("Q", q, bases, Distributed(0)); err == nil {
		t.Fatal("Distributed(0) accepted, want error")
	}
	if _, err := New("Q", q, bases, Distributed(2), SingleTuple()); err == nil {
		t.Fatal("Distributed+SingleTuple accepted, want error")
	}
}

func TestApplyUnknownTableErrors(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	for _, opts := range [][]Option{nil, {Distributed(2), KeyRanks(map[string]int{"b": 2})}} {
		eng, err := New("Q", q, bases, opts...)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatch(Schema{"x"})
		err = eng.ApplyBatch("nope", b)
		if err == nil {
			t.Fatal("ApplyBatch on unknown table accepted, want error")
		}
		if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "R, S") {
			t.Fatalf("unknown-table error not descriptive: %v", err)
		}
		// Arity mismatch between batch and table schema.
		bad := NewBatch(Schema{"a"})
		bad.Insert(Row(1))
		if err := eng.ApplyBatch("R", bad); err == nil ||
			!strings.Contains(err.Error(), "arity") {
			t.Fatalf("arity-mismatched batch accepted: %v", err)
		}
	}
}

func TestBatchArityValidation(t *testing.T) {
	b := NewBatch(Schema{"a", "b"})
	if err := b.Insert(Row(1)); err == nil {
		t.Fatal("short tuple accepted")
	}
	if err := b.Change(Row(1, 2, 3), 2); err == nil {
		t.Fatal("long tuple accepted")
	}
	if err := b.Delete(Row(1, 2)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("rejected tuples were stored: Len = %d, want 1", b.Len())
	}
}

func TestTxUnknownTable(t *testing.T) {
	q := Sum([]string{"a"}, Table("R", "a"))
	eng, err := New("Q", q, map[string]Schema{"R": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.NewTx()
	if err := tx.Insert("S", Row(1)); err == nil ||
		!strings.Contains(err.Error(), `unknown table "S"`) {
		t.Fatalf("engine-bound tx accepted unknown table: %v", err)
	}
	standalone := NewTx()
	if err := standalone.Insert("R", Row(1)); err == nil {
		t.Fatal("standalone tx materialized a batch without a schema")
	}
	// Apply rejects a tx carrying a table the engine does not have.
	foreign := NewTx()
	foreign.Put("S", NewBatch(Schema{"x"}))
	if err := eng.Apply(foreign); err == nil {
		t.Fatal("Apply accepted tx with unknown table")
	}
}

func TestTxPutValidation(t *testing.T) {
	tx := NewTx()
	if err := tx.Put("R", nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	good := NewBatch(Schema{"a", "b"})
	good.Insert(Row(1, 2))
	if err := tx.Put("R", good); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("R", NewBatch(Schema{"x"})); err == nil {
		t.Fatal("schema-mismatched merge accepted")
	}
	more := NewBatch(Schema{"a", "b"})
	more.Insert(Row(3, 4))
	if err := tx.Put("R", more); err != nil {
		t.Fatal(err)
	}
	if got := tx.Len(); got != 2 {
		t.Fatalf("tx.Len after merge = %d, want 2", got)
	}
}

// TestSubscribeMidStream pins the lazy-capture contract: an engine with
// no subscribers pays no capture work and the feed covers exactly the
// transactions applied while subscribed.
func TestSubscribeMidStream(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	for _, opts := range [][]Option{nil, {Distributed(4), KeyRanks(map[string]int{"b": 2})}} {
		eng, err := New("Q", q, bases, opts...)
		if err != nil {
			t.Fatal(err)
		}
		apply := func(vals ...int) {
			tx := eng.NewTx()
			for _, v := range vals {
				if err := tx.Insert("R", Row(v, 10)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Insert("S", Row(10, 7)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Apply(tx); err != nil {
				t.Fatal(err)
			}
		}
		apply(1, 2) // unsubscribed: no capture
		var got []string
		cancel, _ := eng.Subscribe(func(d Delta) { got = append(got, d.String()) })
		apply(3) // subscribed: captured
		cancel()
		apply(4) // unsubscribed again
		if len(got) != 1 {
			t.Fatalf("feed delivered %d deltas, want 1 (only the subscribed tx): %v", len(got), got)
		}
		// Delta #3 covers only the third transaction's change (+1 from
		// the new R row; the S row re-inserted each tx adds one join
		// partner per prior R row too).
		if want := eng.Result().Get(Row(10)); want == 0 {
			t.Fatal("result empty after four transactions")
		}
	}
}

func TestRowE(t *testing.T) {
	tup, err := RowE(int32(1), float32(2.5), uint(3), int64(-4), "x", Int(7))
	if err != nil {
		t.Fatal(err)
	}
	want := Tuple{Int(1), Float(2.5), Int(3), Int(-4), Str("x"), Int(7)}
	if len(tup) != len(want) {
		t.Fatalf("arity %d, want %d", len(tup), len(want))
	}
	for i := range want {
		if !tup[i].Equal(want[i]) {
			t.Fatalf("position %d: %v, want %v", i, tup[i], want[i])
		}
	}
	if _, err := RowE(struct{}{}); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if _, err := RowE(uint64(math.MaxUint64)); err == nil {
		t.Fatal("overflowing uint64 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Row did not panic on unsupported type")
		}
	}()
	Row(struct{}{})
}

// TestDeprecatedWrappers pins the pre-unification constructors: they
// must keep compiling and behaving like the unified engine.
func TestDeprecatedWrappers(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	local, err := NewEngine("Q", q, bases)
	if err != nil {
		t.Fatal(err)
	}
	local.SetSingleTuple(true)
	local.SetSingleTuple(false)
	distEng, err := NewDistributedEngine("Q", q, bases, 4, map[string]int{"b": 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		br := NewBatch(Schema{"a", "b"})
		bs := NewBatch(Schema{"b", "c"})
		for j := 0; j < 10; j++ {
			br.Insert(Row(i*10+j, j%3))
			bs.Insert(Row(j%3, j))
		}
		local.ApplyBatch("R", cloneBatch(br))
		local.ApplyBatch("S", cloneBatch(bs))
		if _, err := distEng.ApplyBatch("R", br); err != nil {
			t.Fatal(err)
		}
		if _, err := distEng.ApplyBatch("S", bs); err != nil {
			t.Fatal(err)
		}
	}
	want := local.Result()
	got := distEng.Result()
	if got.Len() != want.Len() {
		t.Fatalf("distributed diverged: %s vs %s", got, want)
	}
	want.Foreach(func(tp Tuple, m float64) {
		if got.Get(tp) != m {
			t.Fatalf("group %v: %g vs %g", tp, got.Get(tp), m)
		}
	})
	if distEng.Metrics.Latency <= 0 {
		t.Fatal("metrics not accumulated")
	}
	if distEng.TriggerProgram("R") == "" {
		t.Fatal("trigger program rendering empty")
	}
	// LoadTable forwards to Warm.
	warmed, err := NewEngine("QL", Sum(nil, Join(Table("R", "a"), Val(Col("a")))),
		map[string]Schema{"R": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	init := NewBatch(Schema{"a"})
	init.Insert(Row(4))
	// Unknown entries are ignored, as the pre-unification LoadTable did.
	warmed.LoadTable(map[string]*Batch{"R": init, "unrelated": NewBatch(Schema{"x"})})
	if got := warmed.Result().Get(Row()); got != 4 {
		t.Fatalf("LoadTable warm start = %g, want 4", got)
	}
}

func cloneBatch(b *Batch) *Batch {
	c := NewBatch(b.rel.Schema())
	b.rel.Foreach(func(t Tuple, m float64) { c.Change(t, m) })
	return c
}

func TestDistributedTPCHKeyRanks(t *testing.T) {
	// The exported workload key ranks drive partitioning without panics.
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New("Q3", q.Def, q.BaseSchemas(), Distributed(3), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(tpch.Schemas[tpch.Customer])
	b.Insert(Row(1, 1, 2, 100.0, 13))
	if err := eng.ApplyBatch(tpch.Customer, b); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().Latency <= 0 {
		t.Fatal("platform metrics not accumulated")
	}
	if eng.LastMetrics().Latency <= 0 {
		t.Fatal("last-transaction metrics empty")
	}
}
