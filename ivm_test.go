package ivm

import (
	"testing"

	"repro/internal/tpch"
)

func TestEngineQuickstart(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	eng, err := NewEngine("Q", q, map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatch(Schema{"a", "b"})
	br.Insert(Row(1, 10))
	br.Insert(Row(2, 10))
	eng.ApplyBatch("R", br)
	bs := NewBatch(Schema{"b", "c"})
	bs.Insert(Row(10, 7))
	eng.ApplyBatch("S", bs)
	if got := eng.Result().Get(Row(10)); got != 2 {
		t.Fatalf("result = %g, want 2", got)
	}
	// Deletion retracts.
	del := NewBatch(Schema{"a", "b"})
	del.Delete(Row(1, 10))
	eng.ApplyBatch("R", del)
	if got := eng.Result().Get(Row(10)); got != 1 {
		t.Fatalf("after delete = %g, want 1", got)
	}
}

func TestEngineNestedAndOptions(t *testing.T) {
	inner := Sum(nil, Join(Table("S", "b2", "c"), Cond(Eq, Col("b"), Col("b2"))))
	q := Sum(nil, Join(
		Table("R", "a", "b"),
		Lift("x", inner),
		Cond(Lt, Col("a"), Col("x"))))
	eng, err := NewEngineWithOptions("QN", q,
		map[string]Schema{"R": {"a", "b"}, "S": {"b2", "c"}},
		Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	br := NewBatch(Schema{"a", "b"})
	br.Insert(Row(0, 5))
	eng.ApplyBatch("R", br)
	bs := NewBatch(Schema{"b2", "c"})
	bs.Insert(Row(5, 1))
	eng.ApplyBatch("S", bs)
	if got := eng.Result().Get(Row()); got != 1 {
		t.Fatalf("nested result = %g, want 1", got)
	}
	if eng.Program().String() == "" {
		t.Fatal("program rendering empty")
	}
}

func TestEngineLoadTable(t *testing.T) {
	q := Sum(nil, Join(Table("R", "a"), Val(Col("a"))))
	eng, err := NewEngine("QL", q, map[string]Schema{"R": {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	init := NewBatch(Schema{"a"})
	init.Insert(Row(4))
	eng.LoadTable(map[string]*Batch{"R": init})
	if got := eng.Result().Get(Row()); got != 4 {
		t.Fatalf("warm start = %g, want 4", got)
	}
}

func TestEngineSingleTupleMode(t *testing.T) {
	q := Sum([]string{"a"}, Table("R", "a", "b"))
	eng, _ := NewEngine("QS", q, map[string]Schema{"R": {"a", "b"}})
	eng.SetSingleTuple(true)
	b := NewBatch(Schema{"a", "b"})
	b.Insert(Row(1, 2))
	b.Insert(Row(1, 3))
	eng.ApplyBatch("R", b)
	if got := eng.Result().Get(Row(1)); got != 2 {
		t.Fatalf("single-tuple mode = %g, want 2", got)
	}
}

func TestDistributedEngineMatchesLocal(t *testing.T) {
	q := Sum([]string{"b"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	local, err := NewEngine("Q", q, bases)
	if err != nil {
		t.Fatal(err)
	}
	distEng, err := NewDistributedEngine("Q", q, bases, 4, map[string]int{"b": 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		br := NewBatch(Schema{"a", "b"})
		bs := NewBatch(Schema{"b", "c"})
		for j := 0; j < 10; j++ {
			br.Insert(Row(i*10+j, j%3))
			bs.Insert(Row(j%3, j))
		}
		local.ApplyBatch("R", cloneBatch(br))
		local.ApplyBatch("S", cloneBatch(bs))
		if _, err := distEng.ApplyBatch("R", br); err != nil {
			t.Fatal(err)
		}
		if _, err := distEng.ApplyBatch("S", bs); err != nil {
			t.Fatal(err)
		}
	}
	want := local.Result()
	got := distEng.Result()
	if got.Len() != want.Len() {
		t.Fatalf("distributed diverged: %s vs %s", got, want)
	}
	want.Foreach(func(tp Tuple, m float64) {
		if got.Get(tp) != m {
			t.Fatalf("group %v: %g vs %g", tp, got.Get(tp), m)
		}
	})
	if distEng.Metrics.Latency <= 0 {
		t.Fatal("metrics not accumulated")
	}
	if distEng.TriggerProgram("R") == "" {
		t.Fatal("trigger program rendering empty")
	}
}

func cloneBatch(b *Batch) *Batch {
	c := NewBatch(b.rel.Schema())
	b.rel.Foreach(func(t Tuple, m float64) { c.Change(t, m) })
	return c
}

func TestDistributedEngineTPCHKeyRanks(t *testing.T) {
	// The exported workload key ranks drive partitioning without panics.
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDistributedEngine("Q3", q.Def, q.BaseSchemas(), 3, tpch.PrimaryKeyRanks)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(tpch.Schemas[tpch.Customer])
	b.Insert(Row(1, 1, 2, 100.0, 13))
	if _, err := eng.ApplyBatch(tpch.Customer, b); err != nil {
		t.Fatal(err)
	}
}
