// Package ivm is the public API of this repository: distributed
// incremental view maintenance with batch updates, reproducing Nikolic,
// Dashti, and Koch, "How to Win a Hot Dog Eating Contest" (SIGMOD 2016).
//
// The library compiles queries over generalized multiset relations into
// recursively incremental maintenance programs (DBToaster-style), with
// batched delta processing, domain extraction for nested aggregates, and
// a compiler that turns local trigger programs into distributed programs
// for a synchronous driver/worker platform.
//
// Quick start:
//
//	q := ivm.Sum([]string{"b"}, ivm.Join(
//	        ivm.Table("R", "a", "b"), ivm.Table("S", "b", "c")))
//	eng, err := ivm.NewEngine("Q", q, map[string]ivm.Schema{
//	        "R": {"a", "b"}, "S": {"b", "c"},
//	})
//	batch := ivm.NewBatch(ivm.Schema{"a", "b"})
//	batch.Insert(ivm.Row(1, 10))
//	eng.ApplyBatch("R", batch)
//	result := eng.Result() // always fresh
package ivm

import (
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Re-exported core types.
type (
	// Expr is a query expression over generalized multiset relations.
	Expr = expr.Expr
	// VExpr is an interpreted value expression over bound variables.
	VExpr = expr.VExpr
	// Schema is an ordered list of column names.
	Schema = mring.Schema
	// Tuple is one row of column values.
	Tuple = mring.Tuple
	// Value is one typed column value.
	Value = mring.Value
	// Options control compilation (domain extraction, batch
	// pre-aggregation, re-evaluation policy).
	Options = compile.Options
	// Program is a compiled recursive maintenance program.
	Program = compile.Program
	// Stats counts evaluation operations (lookups, scans, emits, index
	// builds) accumulated while maintaining views.
	Stats = eval.Stats
)

// Query construction (the algebra of Sec. 3.1).
var (
	// Table references a base table binding its columns to variables.
	Table = expr.Base
	// Join is the natural join of its operands (variables flow left to
	// right).
	Join = expr.Join
	// Union is bag union.
	Union = expr.Add
	// Sum is the multiplicity-preserving projection Sum_[groupBy].
	Sum = expr.Sum
	// Lift is variable assignment var := Q (nested aggregates).
	Lift = expr.LiftQ
	// LetV binds a variable to a computed value.
	LetV = expr.LiftV
	// Exists normalizes non-zero multiplicities to 1 (DISTINCT).
	Exists = expr.ExistsE
	// Cond builds a comparison predicate term.
	Cond = expr.CmpE
	// Val embeds a computed value as the tuple's aggregate contribution.
	Val = expr.ValE
	// Col references a bound column variable inside value expressions.
	Col = expr.V
	// ConstI, ConstF, ConstS build literals.
	ConstI = expr.LitI
	ConstF = expr.LitF
	ConstS = expr.LitS
	// Arithmetic over value expressions.
	Add2 = expr.AddV
	Sub  = expr.SubV
	Mul2 = expr.MulV
	Div  = expr.DivV
)

// Comparison operators.
const (
	Eq = expr.CEq
	Ne = expr.CNe
	Lt = expr.CLt
	Le = expr.CLe
	Gt = expr.CGt
	Ge = expr.CGe
)

// Int, Float, and Str build typed values.
var (
	Int   = mring.Int
	Float = mring.Float
	Str   = mring.Str
)

// Row builds a tuple from ints, floats, and strings.
func Row(vs ...any) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = mring.Int(int64(x))
		case int64:
			t[i] = mring.Int(x)
		case float64:
			t[i] = mring.Float(x)
		case string:
			t[i] = mring.Str(x)
		default:
			panic("ivm: Row accepts int, int64, float64, string")
		}
	}
	return t
}

// Batch is an update batch: inserted and deleted tuples for one base
// table (deletions carry negative multiplicities).
type Batch struct{ rel *mring.Relation }

// NewBatch creates an empty batch with the given schema.
func NewBatch(schema Schema) *Batch {
	return &Batch{rel: mring.NewRelation(schema)}
}

// Insert adds one insertion.
func (b *Batch) Insert(t Tuple) { b.rel.Add(t, 1) }

// Delete adds one deletion.
func (b *Batch) Delete(t Tuple) { b.rel.Add(t, -1) }

// Change adds a tuple with an explicit multiplicity delta.
func (b *Batch) Change(t Tuple, delta float64) { b.rel.Add(t, delta) }

// Len returns the number of distinct changed tuples.
func (b *Batch) Len() int { return b.rel.Len() }

// Engine maintains one query incrementally on a single node.
type Engine struct {
	prog *compile.Program
	ex   *compile.Executor
}

// NewEngine compiles the query with the paper's default options
// (domain extraction, batch pre-aggregation, re-evaluation for
// uncorrelated nesting) and returns an engine over empty tables.
func NewEngine(name string, query Expr, bases map[string]Schema) (*Engine, error) {
	return NewEngineWithOptions(name, query, bases, compile.DefaultOptions())
}

// NewEngineWithOptions compiles with explicit options.
func NewEngineWithOptions(name string, query Expr, bases map[string]Schema, opts Options) (*Engine, error) {
	prog, err := compile.Compile(name, query, bases, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{prog: prog, ex: compile.NewExecutor(prog)}, nil
}

// Program returns the compiled maintenance program (its String method
// renders the view hierarchy and triggers).
func (e *Engine) Program() *Program { return e.prog }

// SetSingleTuple switches to tuple-at-a-time processing (the comparison
// mode of Sec. 3.3).
func (e *Engine) SetSingleTuple(on bool) { e.ex.SingleTuple = on }

// ApplyBatch folds one update batch into all maintained views.
func (e *Engine) ApplyBatch(table string, b *Batch) {
	e.ex.ApplyBatch(table, b.rel)
}

// Stats returns the evaluation statistics accumulated across batches.
func (e *Engine) Stats() Stats { return e.ex.Stats }

// LoadTable initializes a base table before streaming (static
// dimensions); call before any ApplyBatch.
func (e *Engine) LoadTable(tables map[string]*Batch) {
	init := map[string]*mring.Relation{}
	for n, s := range e.prog.Bases {
		if b, ok := tables[n]; ok {
			init[n] = b.rel
		} else {
			init[n] = mring.NewRelation(s)
		}
	}
	e.ex.InitFromBases(init)
}

// Result returns the maintained query result. Iterate with Foreach.
func (e *Engine) Result() *Result { return &Result{rel: e.ex.Result()} }

// Result is a read view over maintained contents.
type Result struct{ rel *mring.Relation }

// Foreach visits every result tuple with its aggregate value.
func (r *Result) Foreach(f func(t Tuple, agg float64)) { r.rel.ForeachSorted(f) }

// Get returns the aggregate value for one group.
func (r *Result) Get(t Tuple) float64 { return r.rel.Get(t) }

// Len returns the number of result groups.
func (r *Result) Len() int { return r.rel.Len() }

// String renders the result deterministically.
func (r *Result) String() string { return r.rel.String() }

// DistributedEngine runs the same program on the simulated synchronous
// cluster (Sec. 4): views are partitioned by the paper's heuristic and
// batches are processed through compiled distributed trigger programs.
type DistributedEngine struct {
	prog   *compile.Program
	parts  dist.PartInfo
	dprogs map[string]*dist.DistProgram
	cl     *cluster.Cluster
	name   string
	// Metrics accumulates virtual platform costs across batches.
	Metrics cluster.Metrics
}

// NewDistributedEngine compiles and deploys the query across the given
// number of simulated workers. keyRanks ranks partition-key columns by
// table cardinality (see tpch.PrimaryKeyRanks for the benchmark's).
func NewDistributedEngine(name string, query Expr, bases map[string]Schema, workers int, keyRanks map[string]int) (*DistributedEngine, error) {
	prog, err := compile.Compile(name, query, bases, compile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	parts := dist.ChoosePartitioning(prog, keyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	return &DistributedEngine{prog: prog, parts: parts, dprogs: dprogs, cl: cl, name: name}, nil
}

// ApplyBatch spreads the batch over the workers and runs the distributed
// trigger; the returned metrics describe this batch's virtual cost.
func (e *DistributedEngine) ApplyBatch(table string, b *Batch) (cluster.Metrics, error) {
	workers := e.cl.Workers()
	frags := make([]*mring.Relation, workers)
	for i := range frags {
		frags[i] = mring.NewRelation(b.rel.Schema())
	}
	i := 0
	b.rel.Foreach(func(t Tuple, m float64) {
		frags[i%workers].Add(t, m)
		i++
	})
	m, err := e.cl.RunPartitioned(e.dprogs[table], frags)
	if err != nil {
		return m, err
	}
	e.Metrics.Add(m)
	return m, nil
}

// Result merges the distributed view fragments into the full result.
func (e *DistributedEngine) Result() *Result {
	return &Result{rel: e.cl.ViewContents(e.name)}
}

// Stats returns the evaluation statistics accumulated across all nodes
// (per-worker contributions are merged deterministically after each
// stage barrier, so the totals are reproducible despite the workers
// running on concurrent goroutines).
func (e *DistributedEngine) Stats() Stats { return e.cl.Stats }

// TriggerProgram renders the distributed program for one base table.
func (e *DistributedEngine) TriggerProgram(table string) string {
	return e.dprogs[table].String()
}
