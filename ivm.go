// Package ivm is the public API of this repository: distributed
// incremental view maintenance with batch updates, reproducing Nikolic,
// Dashti, and Koch, "How to Win a Hot Dog Eating Contest" (SIGMOD 2016).
//
// The library compiles queries over generalized multiset relations into
// recursively incremental maintenance programs (DBToaster-style), with
// batched delta processing, domain extraction for nested aggregates, and
// a compiler that turns local trigger programs into distributed programs
// for a synchronous driver/worker platform.
//
// One Engine type fronts both execution planes; functional options pick
// and configure the backend:
//
//	q := ivm.Sum([]string{"b"}, ivm.Join(
//	        ivm.Table("R", "a", "b"), ivm.Table("S", "b", "c")))
//	bases := map[string]ivm.Schema{"R": {"a", "b"}, "S": {"b", "c"}}
//
//	eng, err := ivm.New("Q", q, bases)                        // single node
//	eng, err = ivm.New("Q", q, bases,
//	        ivm.Distributed(16), ivm.KeyRanks(ranks))         // simulated cluster
//
// Updates apply either as single-table batches or as atomic multi-table
// transactions, and a changefeed delivers the per-transaction result
// deltas:
//
//	eng.Subscribe(func(d ivm.Delta) {
//	        d.Foreach(func(group ivm.Tuple, change float64) { ... })
//	})
//	tx := eng.NewTx()
//	tx.Insert("R", ivm.Row(1, 10))
//	tx.Insert("S", ivm.Row(10, 7))
//	err = eng.Apply(tx)        // both deltas fold in one maintenance step
//	result := eng.Result()     // always fresh
package ivm

import (
	"fmt"
	"math"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Re-exported core types.
type (
	// Expr is a query expression over generalized multiset relations.
	Expr = expr.Expr
	// VExpr is an interpreted value expression over bound variables.
	VExpr = expr.VExpr
	// Schema is an ordered list of column names.
	Schema = mring.Schema
	// Tuple is one row of column values.
	Tuple = mring.Tuple
	// Value is one typed column value.
	Value = mring.Value
	// Options control compilation (domain extraction, batch
	// pre-aggregation, re-evaluation policy).
	Options = compile.Options
	// Program is a compiled recursive maintenance program.
	Program = compile.Program
)

// Query construction (the algebra of Sec. 3.1).
var (
	// Table references a base table binding its columns to variables.
	Table = expr.Base
	// Join is the natural join of its operands (variables flow left to
	// right).
	Join = expr.Join
	// Union is bag union.
	Union = expr.Add
	// Sum is the multiplicity-preserving projection Sum_[groupBy].
	Sum = expr.Sum
	// Lift is variable assignment var := Q (nested aggregates).
	Lift = expr.LiftQ
	// LetV binds a variable to a computed value.
	LetV = expr.LiftV
	// Exists normalizes non-zero multiplicities to 1 (DISTINCT).
	Exists = expr.ExistsE
	// Cond builds a comparison predicate term.
	Cond = expr.CmpE
	// Val embeds a computed value as the tuple's aggregate contribution.
	Val = expr.ValE
	// Col references a bound column variable inside value expressions.
	Col = expr.V
	// ConstI, ConstF, ConstS build literals.
	ConstI = expr.LitI
	ConstF = expr.LitF
	ConstS = expr.LitS
	// Arithmetic over value expressions.
	Add2 = expr.AddV
	Sub  = expr.SubV
	Mul2 = expr.MulV
	Div  = expr.DivV
)

// Comparison operators.
const (
	Eq = expr.CEq
	Ne = expr.CNe
	Lt = expr.CLt
	Le = expr.CLe
	Gt = expr.CGt
	Ge = expr.CGe
)

// Int, Float, and Str build typed values.
var (
	Int   = mring.Int
	Float = mring.Float
	Str   = mring.Str
)

// RowE builds a tuple from Go scalars, returning an error on an
// unsupported type (so data loaders can surface bad input instead of
// crashing). Accepted: every signed and unsigned integer type (uint and
// uint64 must fit in int64), float32, float64, string, and Value.
func RowE(vs ...any) (Tuple, error) {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = mring.Int(int64(x))
		case int8:
			t[i] = mring.Int(int64(x))
		case int16:
			t[i] = mring.Int(int64(x))
		case int32:
			t[i] = mring.Int(int64(x))
		case int64:
			t[i] = mring.Int(x)
		case uint:
			if uint64(x) > math.MaxInt64 {
				return nil, fmt.Errorf("ivm: Row value %d at position %d overflows int64", x, i)
			}
			t[i] = mring.Int(int64(x))
		case uint8:
			t[i] = mring.Int(int64(x))
		case uint16:
			t[i] = mring.Int(int64(x))
		case uint32:
			t[i] = mring.Int(int64(x))
		case uint64:
			if x > math.MaxInt64 {
				return nil, fmt.Errorf("ivm: Row value %d at position %d overflows int64", x, i)
			}
			t[i] = mring.Int(int64(x))
		case float32:
			t[i] = mring.Float(float64(x))
		case float64:
			t[i] = mring.Float(x)
		case string:
			t[i] = mring.Str(x)
		case mring.Value:
			t[i] = x
		default:
			return nil, fmt.Errorf("ivm: Row does not accept %T (position %d)", v, i)
		}
	}
	return t, nil
}

// Row builds a tuple from Go scalars (integers, floats, strings, and
// Values); it panics on an unsupported type. Use RowE to get an error
// instead.
func Row(vs ...any) Tuple {
	t, err := RowE(vs...)
	if err != nil {
		panic(err)
	}
	return t
}

// Batch is an update batch: inserted and deleted tuples for one base
// table (deletions carry negative multiplicities).
type Batch struct{ rel *mring.Relation }

// NewBatch creates an empty batch with the given schema.
func NewBatch(schema Schema) *Batch {
	return &Batch{rel: mring.NewRelation(schema)}
}

// arityCheck rejects tuples that do not match the batch schema, instead
// of corrupting downstream evaluation.
func (b *Batch) arityCheck(t Tuple) error {
	if len(t) != len(b.rel.Schema()) {
		return fmt.Errorf("ivm: tuple %v has arity %d, batch schema %v wants %d",
			t, len(t), []string(b.rel.Schema()), len(b.rel.Schema()))
	}
	return nil
}

// Insert adds one insertion. Tuples whose arity mismatches the batch
// schema are rejected with an error.
func (b *Batch) Insert(t Tuple) error {
	if err := b.arityCheck(t); err != nil {
		return err
	}
	b.rel.Add(t, 1)
	return nil
}

// Delete adds one deletion (arity-checked like Insert).
func (b *Batch) Delete(t Tuple) error {
	if err := b.arityCheck(t); err != nil {
		return err
	}
	b.rel.Add(t, -1)
	return nil
}

// Change adds a tuple with an explicit multiplicity delta (arity-checked
// like Insert).
func (b *Batch) Change(t Tuple, delta float64) error {
	if err := b.arityCheck(t); err != nil {
		return err
	}
	b.rel.Add(t, delta)
	return nil
}

// Len returns the number of distinct changed tuples.
func (b *Batch) Len() int { return b.rel.Len() }

// Schema returns the batch's column names.
func (b *Batch) Schema() Schema { return b.rel.Schema() }

// Result is a read view over the maintained query result.
type Result struct{ rel *mring.Relation }

// Foreach visits every result tuple with its aggregate value, in the
// deterministic sorted tuple order.
func (r *Result) Foreach(f func(t Tuple, agg float64)) { r.rel.ForeachSorted(f) }

// Get returns the aggregate value for one group.
func (r *Result) Get(t Tuple) float64 { return r.rel.Get(t) }

// Len returns the number of result groups.
func (r *Result) Len() int { return r.rel.Len() }

// String renders the result deterministically.
func (r *Result) String() string { return r.rel.String() }
