package ivm

// Parallel-worker equivalence: the cluster executes distributed stages on
// real goroutines, and the merged distributed result must equal the
// single-node engine's after every batch. Run under -race this also
// certifies the shared-nothing worker execution is data-race free.

import (
	"fmt"
	"testing"

	"repro/internal/mring"
	"repro/internal/tpch"
)

func TestParallelWorkersMatchSingleNode(t *testing.T) {
	const workers = 8
	for _, name := range []string{"Q3", "Q6", "Q1"} {
		t.Run(name, func(t *testing.T) {
			q, err := tpch.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			bases := map[string]Schema{}
			for tbl, s := range q.BaseSchemas() {
				bases[tbl] = s
			}
			local, err := New(q.Name, q.Def, bases)
			if err != nil {
				t.Fatal(err)
			}
			distd, err := New(q.Name, q.Def, bases, Distributed(workers), KeyRanks(tpch.PrimaryKeyRanks))
			if err != nil {
				t.Fatal(err)
			}
			gen := tpch.NewGenerator(0.05, 1)
			stream := tpch.NewStream(gen, q.Tables)
			batches := 0
			for {
				bs := stream.NextBatches(500)
				if len(bs) == 0 {
					break
				}
				for _, b := range bs {
					batch := &Batch{rel: b.Rel}
					if err := local.ApplyBatch(b.Table, batch); err != nil {
						t.Fatal(err)
					}
					if err := distd.ApplyBatch(b.Table, batch); err != nil {
						t.Fatal(err)
					}
					batches++
					want := local.Result().rel
					got := distd.Result().rel
					if !got.EqualApprox(want, 1e-6) {
						t.Fatalf("batch %d: distributed result diverged\n got %v\nwant %v",
							batches, got, want)
					}
				}
			}
			if batches == 0 {
				t.Fatal("stream produced no batches")
			}
		})
	}
}

// TestParallelWorkerScaling checks equivalence across worker counts,
// including more workers than distinct partition keys.
func TestParallelWorkerScaling(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := map[string]Schema{}
	for tbl, s := range q.BaseSchemas() {
		bases[tbl] = s
	}
	results := make([]*mring.Relation, 0, 3)
	for _, workers := range []int{1, 8, 16} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			eng, err := New(q.Name, q.Def, bases, Distributed(workers), KeyRanks(tpch.PrimaryKeyRanks))
			if err != nil {
				t.Fatal(err)
			}
			gen := tpch.NewGenerator(0.05, 2)
			stream := tpch.NewStream(gen, q.Tables)
			for {
				bs := stream.NextBatches(1000)
				if len(bs) == 0 {
					break
				}
				for _, b := range bs {
					if err := eng.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
						t.Fatal(err)
					}
				}
			}
			results = append(results, eng.Result().rel)
		})
	}
	for i := 1; i < len(results); i++ {
		if !results[i].EqualApprox(results[0], 1e-6) {
			t.Fatalf("worker-count run %d diverged:\n got %v\nwant %v", i, results[i], results[0])
		}
	}
}
