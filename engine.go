package ivm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	inet "repro/internal/net"
)

// ErrClosed is returned (wrapped, with context) by Apply, Warm, and
// Subscribe on an engine or registry that was Closed.
var ErrClosed = errors.New("ivm: engine is closed")

// Metrics reports the virtual platform cost of distributed processing
// (latency, compute, shuffled bytes, stage/job counts). Engines on the
// local backend report zero metrics.
type Metrics = cluster.Metrics

// engineConfig collects the functional options of New.
type engineConfig struct {
	distributed bool
	workers     int
	remote      bool
	remoteAddrs []string
	keyRanks    map[string]int
	copts       compile.Options
	singleTuple bool
	autoTune    bool
	tuneCfg     TuneConfig
	durSet      bool
	durDir      string
	dur         durConfig
}

// Option configures an Engine at construction.
type Option func(*engineConfig)

// Distributed deploys the engine on the simulated synchronous cluster
// (Sec. 4) with the given number of workers: views are partitioned by
// the paper's heuristic and batches run through compiled distributed
// trigger programs. Without this option the engine runs single-node.
func Distributed(workers int) Option {
	return func(c *engineConfig) {
		c.distributed = true
		c.workers = workers
	}
}

// Remote deploys the engine on a process cluster: one worker process
// (cmd/ivmworker) per address, reached over the length-prefixed framed
// TCP transport of internal/net. Everything else — partitioning,
// compiled distributed trigger programs, transactions, AutoTune, the
// keyed changefeed — works exactly as with Distributed, and results are
// bitwise-identical to the in-process cluster at the same worker count.
// A worker lost mid-transaction fails that transaction atomically: the
// engine reports the error, keeps serving the pre-transaction results,
// and rejects further transactions (reconnect by building a new engine
// and warm-starting it). Incompatible with Distributed and SingleTuple.
func Remote(addrs ...string) Option {
	return func(c *engineConfig) {
		c.remote = true
		c.remoteAddrs = addrs
	}
}

// KeyRanks ranks partition-key columns by the cardinality of their
// source table (higher rank = larger table; see tpch.PrimaryKeyRanks).
// It drives the distributed partitioning heuristic and is ignored on
// the local backend.
func KeyRanks(ranks map[string]int) Option {
	return func(c *engineConfig) { c.keyRanks = ranks }
}

// CompileOptions overrides the paper's default compilation options
// (domain extraction, batch pre-aggregation, re-evaluation for
// uncorrelated nesting).
func CompileOptions(o Options) Option {
	return func(c *engineConfig) { c.copts = o }
}

// SingleTuple switches the local executor to tuple-at-a-time processing
// (the comparison mode of Sec. 3.3). Incompatible with Distributed.
func SingleTuple() Option {
	return func(c *engineConfig) { c.singleTuple = true }
}

func (cfg *engineConfig) validate() error {
	if cfg.distributed && cfg.workers < 1 {
		return fmt.Errorf("ivm: Distributed needs at least one worker, got %d", cfg.workers)
	}
	if cfg.distributed && cfg.singleTuple {
		return fmt.Errorf("ivm: SingleTuple is a local execution mode; drop it or drop Distributed")
	}
	if cfg.remote {
		if cfg.distributed {
			return fmt.Errorf("ivm: Remote and Distributed are exclusive backends; pick one")
		}
		if cfg.singleTuple {
			return fmt.Errorf("ivm: SingleTuple is a local execution mode; drop it or drop Remote")
		}
		if len(cfg.remoteAddrs) == 0 {
			return fmt.Errorf("ivm: Remote needs at least one worker address")
		}
	}
	if cfg.durSet {
		if cfg.durDir == "" {
			return fmt.Errorf("ivm: Durable needs a directory")
		}
		if cfg.dur.ckptEvery < 0 {
			return fmt.Errorf("ivm: CheckpointEvery wants a positive transaction count, got %d", cfg.dur.ckptEvery)
		}
		if cfg.dur.retain < 0 {
			return fmt.Errorf("ivm: RetainCheckpoints wants a positive count, got %d", cfg.dur.retain)
		}
	}
	return nil
}

func (cfg *engineConfig) backend(prog *compile.Program) (backend, error) {
	switch {
	case cfg.remote:
		return newRemoteBackend(prog, cfg.remoteAddrs, cfg.keyRanks)
	case cfg.distributed:
		return newDistBackend(prog, cfg.workers, cfg.keyRanks), nil
	default:
		return newLocalBackend(prog, cfg.singleTuple), nil
	}
}

// backend is the execution plane behind an Engine or Registry: the
// local executor and the simulated cluster implement the same contract,
// so everything above (transactions, warm starts, the changefeed and
// its routing) is written once. All methods are multi-view: capture
// names the top views whose per-transaction deltas the caller wants.
type backend interface {
	// ApplyTx folds one multi-table transaction into all maintained
	// views and returns, for each captured view, its per-group delta.
	// An empty capture list skips all capture work and returns nil.
	ApplyTx(tx []compile.TableBatch, capture []string) (map[string]*mring.Relation, error)
	// Warm installs initial base-table contents before streaming and
	// returns, for each captured view, its initial contents as the
	// first delta.
	Warm(bases map[string]*mring.Relation, capture []string) (map[string]*mring.Relation, error)
	// ViewContents returns the maintained contents of one top view.
	ViewContents(name string) *mring.Relation
	// StopCapture releases any persistent capture state held for the
	// view (the cluster watch) as soon as its last subscriber is gone,
	// instead of waiting for the next transaction.
	StopCapture(view string)
	// Stats returns evaluation statistics accumulated across batches.
	Stats() eval.Stats
	// TriggerProgram renders the maintenance program for one base table.
	TriggerProgram(table string) string
	// Metrics returns the cumulative and last-transaction platform cost
	// (zero on the local backend).
	Metrics() (total, lastTx Metrics)
	// WorkerTimings returns each worker's accumulated stage compute in
	// worker-index order (nil on the local backend) — the skew signal.
	WorkerTimings() []cluster.WorkerTiming
	// ForEachRelation visits every maintained relation (every node's
	// fragments on the cluster backend) for index-admission sweeps and
	// per-index stats, in a deterministic order.
	ForEachRelation(f func(name string, r *mring.Relation))
	// Rebalance re-derives the partitioning from measured placement
	// skew and, when the choice changed, redeploys state and programs
	// under the new placement. Reports whether anything changed; always
	// (false, nil) on the local backend. Must only run between
	// transactions.
	Rebalance() (bool, error)
	// SnapshotState captures the backend's entire materialized state —
	// every relation's contents plus its physical bucket-table size — as
	// a checkpoint whose restore is layout-exact (same chains, same
	// iteration order, therefore bitwise-identical later float folds).
	SnapshotState() (*cluster.Checkpoint, error)
	// RestoreState installs a checkpoint into a freshly built backend
	// (the recovery path). The checkpoint must come from the same
	// program and deployment shape.
	RestoreState(cp *cluster.Checkpoint) error
	// Close releases backend resources (worker connections on the
	// process cluster). Reads may still be served afterwards.
	Close() error
}

// serving is the shared front half of Engine and Registry: transaction
// validation, warm starts, and the changefeed with its per-view
// subscriber routing.
type serving struct {
	prog *compile.Program

	// beMu serializes all backend access: transactions, warm starts,
	// stats/metrics/result snapshots, and the tuner's actuation, so
	// observation paths are safe to call concurrently with Apply. Lock
	// order is beMu before mu; subscriber callbacks run with neither
	// held.
	beMu sync.Mutex
	be   backend
	// tn is the self-tuning controller loop (nil without AutoTune).
	// Guarded by beMu.
	tn *tuner
	// dur is the durability runtime (nil without the Durable option):
	// the write-ahead log appended to before every ack and the
	// checkpoint cadence that truncates it. Guarded by beMu.
	dur *durable

	// closed is set by Close; write paths (Apply, Warm, Subscribe)
	// reject with ErrClosed afterwards, read paths keep serving the
	// final state. Guarded by beMu.
	closed bool

	mu    sync.Mutex
	next  int
	seq   int64
	feeds map[string]*feed // top-view name -> subscription state
}

// feed holds the subscribers of one served top view.
type feed struct {
	schema mring.Schema
	plain  []*subscriber
	// keyed buckets key-predicate subscribers by key length, then by
	// the placement shard of their key — the same hash the shuffles
	// place tuples with (dist.PlaceIndex) — so routing a delta touches
	// only the subscribers whose shard a changed group lands in.
	keyed map[int]map[int][]*subscriber
	n     int
}

type subscriber struct {
	id  int
	fn  func(Delta)
	key Tuple // nil for plain (full-feed) subscribers
	// pending accumulates the routed groups of the delta currently
	// being delivered; reset after each delivery. Guarded by serving.mu.
	pending *mring.Relation
}

// routeShards is the number of placement buckets subscriber keys hash
// into; it mirrors a worker count, but for delivery routing only.
const routeShards = 256

// Engine maintains one compiled query incrementally. The same type
// fronts both execution planes — construct with New, picking the
// backend with options:
//
//	local, _ := ivm.New("Q", q, bases)
//	dist8, _ := ivm.New("Q", q, bases, ivm.Distributed(8), ivm.KeyRanks(r))
//
// Updates apply through Apply (atomic multi-table transactions) or
// ApplyBatch (single-table sugar); Subscribe delivers each applied
// transaction's result delta. To serve many queries over one shared
// program, see Registry.
type Engine struct {
	serving
	name string
}

// New compiles the query over the given base relation schemas and
// returns an engine over empty tables. By default it compiles with the
// paper's default options and runs single-node; see Distributed,
// KeyRanks, CompileOptions, and SingleTuple.
func New(name string, query Expr, bases map[string]Schema, opts ...Option) (*Engine, error) {
	cfg := engineConfig{copts: compile.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	prog, err := compile.Compile(name, query, bases, cfg.copts)
	if err != nil {
		return nil, err
	}
	be, err := cfg.backend(prog)
	if err != nil {
		return nil, err
	}
	e := &Engine{name: name}
	// Recovery runs before init starts the tuner loop, so nothing else
	// can touch the backend while the checkpoint and WAL tail replay.
	e.prog, e.be = prog, be
	if err := e.attachDurability(&cfg); err != nil {
		be.Close()
		return nil, err
	}
	e.init(prog, be, newTuner(&cfg))
	return e, nil
}

func (s *serving) init(prog *compile.Program, be backend, tn *tuner) {
	s.prog = prog
	s.be = be
	s.tn = tn
	s.feeds = make(map[string]*feed)
	if tn != nil {
		tn.startLoop(s)
	}
}

// close shuts the serving half down: the tuner's idle-flush loop stops,
// the pending coalesce buffer drains (no accepted transaction is
// dropped), and the backend releases its resources. Idempotent; write
// paths return ErrClosed afterwards, reads keep serving the final state.
func (s *serving) close() error {
	s.beMu.Lock()
	if s.closed {
		s.beMu.Unlock()
		return nil
	}
	var err error
	if s.tn != nil {
		err = s.tn.takeErr()
		if derr := s.tn.drainLocked(s, true); err == nil {
			err = derr
		}
	}
	if s.dur != nil {
		// Clean shutdown ends with a final checkpoint, so reopening the
		// directory recovers with zero WAL replay. Skipped if durability
		// already failed or the pre-close flush did — a checkpoint must
		// only describe state every logged transaction reached.
		if err == nil && s.dur.err == nil {
			if cerr := s.checkpointLocked(); err == nil {
				err = cerr
			}
		}
		if cerr := s.dur.st.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	if s.be != nil {
		if cerr := s.be.Close(); err == nil {
			err = cerr
		}
	}
	tn := s.tn
	s.beMu.Unlock()
	// Stop the loop without beMu held: the loop goroutine takes beMu on
	// every tick, so joining it under the lock would deadlock.
	if tn != nil {
		tn.stopLoop()
	}
	return err
}

// Close shuts the engine down: the AutoTune controller loop (if any)
// stops, coalesced transactions flush, and the backend releases its
// resources — on a Remote engine the worker connections close. On a
// Durable engine the WAL flushes and a final checkpoint is written, so
// reopening the directory recovers with zero replay. After Close,
// Apply/Warm/Subscribe return ErrClosed while Result, Stats, and
// Metrics keep serving the final state. Close is idempotent; it returns
// the first error from the final flush or the backend teardown.
func (e *Engine) Close() error { return e.close() }

// Checkpoint forces a durability checkpoint now: pending coalesced
// transactions flush, the backend's entire state snapshots to a new
// versioned checkpoint file, and the WAL rolls to a fresh segment (old
// generations are garbage-collected past the retention window). A later
// recovery replays only transactions applied after this call. Returns
// an error on a non-durable engine.
func (e *Engine) Checkpoint() error { return e.forceCheckpoint() }

// Program returns the compiled maintenance program (its String method
// renders the view hierarchy and triggers).
func (e *Engine) Program() *Program { return e.prog }

// TriggerProgram renders the maintenance program run for batches of one
// base table: the local trigger or the compiled distributed program,
// depending on the backend. Empty for unknown tables.
func (e *Engine) TriggerProgram(table string) string { return e.triggerProgram(table) }

// Stats returns the engine's runtime statistics — evaluation counters
// (on the distributed backend merged deterministically across nodes),
// per-worker stage timings, per-index admission state, and the tuning
// controller's state. The snapshot is taken under the backend lock, so
// it is consistent even while another goroutine is applying
// transactions.
func (e *Engine) Stats() Stats { return e.statsSnapshot() }

// Metrics returns the cumulative virtual platform cost of all processed
// transactions. Zero on the local backend.
func (e *Engine) Metrics() Metrics { total, _ := e.metricsSnapshot(); return total }

// LastMetrics returns the platform cost of the most recently applied
// transaction. Zero on the local backend.
func (e *Engine) LastMetrics() Metrics { _, last := e.metricsSnapshot(); return last }

// Result returns the maintained query result. Iterate with Foreach.
func (e *Engine) Result() *Result { return e.result(e.prog.QueryName) }

// triggerProgram renders a trigger under the backend lock (the
// distributed programs can be swapped by a tuner repartition).
func (s *serving) triggerProgram(table string) string {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	return s.be.TriggerProgram(table)
}

// statsSnapshot flushes any coalesced transactions (statistics must
// reflect every accepted transaction) and assembles the full Stats
// under the backend lock.
func (s *serving) statsSnapshot() Stats {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	s.flushObservationLocked()
	st := Stats{Stats: s.be.Stats()}
	st.Workers = s.be.WorkerTimings()
	st.Indexes = s.indexStatsLocked()
	if s.tn != nil {
		st.Tuning = s.tn.snapshot()
	}
	st.Durability = s.durabilityStatsLocked()
	return st
}

// indexStatsLocked aggregates per-index admission state by (view,
// columns) across all fragments, sorted by view name then column mask.
func (s *serving) indexStatsLocked() []IndexStat {
	type ikey struct {
		view string
		mask uint64
	}
	agg := make(map[ikey]*IndexStat)
	var order []ikey
	s.be.ForEachRelation(func(name string, r *mring.Relation) {
		for _, h := range r.IndexHealthSnapshot() {
			k := ikey{name, mring.ColMask(h.Cols)}
			a := agg[k]
			if a == nil {
				a = &IndexStat{View: name, Cols: h.Cols}
				agg[k] = a
				order = append(order, k)
			}
			a.Probes += h.Probes
			a.Maintains += h.Maintains
			a.ScanProbes += h.ScanProbes
			if h.Demoted {
				a.Demoted = true
			}
		}
	})
	sort.Slice(order, func(i, j int) bool {
		if order[i].view != order[j].view {
			return order[i].view < order[j].view
		}
		return order[i].mask < order[j].mask
	})
	out := make([]IndexStat, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

func (s *serving) metricsSnapshot() (Metrics, Metrics) {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	s.flushObservationLocked()
	return s.be.Metrics()
}

func (s *serving) result(view string) *Result {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	s.flushObservationLocked()
	return &Result{rel: s.be.ViewContents(view)}
}

// flushObservationLocked drains coalesced transactions before engine
// state is observed, so tuning stays invisible to results. A flush
// error on a path that cannot return it is surfaced by the next Apply.
func (s *serving) flushObservationLocked() {
	if s.tn == nil {
		return
	}
	if err := s.tn.drainLocked(s, true); err != nil && s.tn.err == nil {
		s.tn.err = err
	}
}

// knownTables renders the engine's base tables for error messages.
func knownTables(bases map[string]Schema) string {
	names := make([]string, 0, len(bases))
	for n := range bases {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Apply folds one transaction — update batches for any set of base
// tables — into all maintained views in a single maintenance step:
// per-table triggers run in the transaction's table order, and the
// result observed by Result and the changefeed reflects either none or
// all of the transaction. Applying a transaction is equivalent to
// applying its batches as sequential single-table batches; the
// transaction boundary determines what one Delta covers. Unknown tables
// and arity-mismatched batches are rejected before anything is applied;
// an execution error from the backend itself (a programming or
// deployment error, not a data error) can leave a prefix of the
// transaction's tables applied.
func (e *Engine) Apply(tx *Tx) error { return e.applyTx(tx) }

func (s *serving) applyTx(tx *Tx) error {
	if tx == nil || len(tx.order) == 0 {
		return nil
	}
	batches := make([]compile.TableBatch, 0, len(tx.order))
	for _, table := range tx.order {
		schema, ok := s.prog.Bases[table]
		if !ok {
			return fmt.Errorf("ivm: unknown table %q (engine has: %s)", table, knownTables(s.prog.Bases))
		}
		b := tx.batches[table]
		if got := len(b.Schema()); got != len(schema) {
			return fmt.Errorf("ivm: batch for table %q has arity %d, schema %v wants %d",
				table, got, []string(schema), len(schema))
		}
		batches = append(batches, compile.TableBatch{Table: table, Batch: b.rel})
	}
	s.beMu.Lock()
	if s.closed {
		s.beMu.Unlock()
		return fmt.Errorf("ivm: Apply: %w", ErrClosed)
	}
	if s.tn != nil {
		if err := s.tn.takeErr(); err != nil {
			s.beMu.Unlock()
			return err
		}
	}
	if s.dur != nil {
		// Write-ahead: the transaction is in the log (and, per the sync
		// policy, on disk) before it folds or acks. A crash after this
		// point replays it; a WAL failure rejects it un-applied.
		if err := s.logTxLocked(batches); err != nil {
			s.beMu.Unlock()
			return err
		}
	}
	capture := s.captureList()
	var deltas map[string]*mring.Relation
	var err error
	if s.tn != nil {
		deltas, err = s.tn.applyLocked(s, batches, capture)
	} else {
		deltas, err = s.be.ApplyTx(batches, capture)
	}
	if err == nil && s.dur != nil {
		err = s.maybeCheckpointLocked()
	}
	s.beMu.Unlock()
	if err != nil {
		return err
	}
	// Deliver (or, with no subscribers, just advance the feed sequence)
	// outside the backend lock, so subscriber callbacks may re-enter the
	// engine (Stats, Result, cancel, even Apply) freely.
	s.deliver(deltas)
	return nil
}

// ApplyBatch folds one single-table update batch into all maintained
// views: sugar for a one-table transaction.
func (e *Engine) ApplyBatch(table string, b *Batch) error {
	tx := NewTx()
	if err := tx.Put(table, b); err != nil {
		return err
	}
	return e.Apply(tx)
}

// captureList returns the top views with at least one subscriber, in
// sorted order; the backends capture deltas only for these.
func (s *serving) captureList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.feeds) == 0 {
		return nil
	}
	views := make([]string, 0, len(s.feeds))
	for v := range s.feeds {
		views = append(views, v)
	}
	sort.Strings(views)
	return views
}

// Warm initializes base tables before streaming (static dimensions,
// checkpointed state): every maintained view is computed from the given
// contents, and on the distributed backend each view's contents are
// partitioned across the workers with the same placement function the
// shuffles use, so warm-started state is indistinguishable from
// streamed state. Call before the first transaction. The initial result
// contents are delivered to subscribers as one Delta, so a changefeed
// replay starting from empty still reconstructs Result exactly.
func (e *Engine) Warm(tables map[string]*Batch) error { return e.warm(tables) }

func (s *serving) warm(tables map[string]*Batch) error {
	for n, b := range tables {
		if _, ok := s.prog.Bases[n]; !ok {
			return fmt.Errorf("ivm: unknown table %q (engine has: %s)", n, knownTables(s.prog.Bases))
		}
		if b == nil {
			return fmt.Errorf("ivm: nil initial batch for table %q", n)
		}
	}
	init := make(map[string]*mring.Relation, len(s.prog.Bases))
	for n, schema := range s.prog.Bases {
		if b, ok := tables[n]; ok {
			if got := len(b.Schema()); got != len(schema) {
				return fmt.Errorf("ivm: initial table %q has arity %d, schema %v wants %d",
					n, got, []string(schema), len(schema))
			}
			init[n] = b.rel
		} else {
			init[n] = mring.NewRelation(schema)
		}
	}
	s.beMu.Lock()
	if s.closed {
		s.beMu.Unlock()
		return fmt.Errorf("ivm: Warm: %w", ErrClosed)
	}
	if s.tn != nil {
		if err := s.tn.drainLocked(s, true); err != nil {
			s.beMu.Unlock()
			return err
		}
	}
	if s.dur != nil {
		if err := s.logWarmLocked(init); err != nil {
			s.beMu.Unlock()
			return err
		}
	}
	deltas, err := s.be.Warm(init, s.captureList())
	if err == nil && s.dur != nil {
		err = s.maybeCheckpointLocked()
	}
	s.beMu.Unlock()
	if err != nil {
		return err
	}
	s.deliver(deltas)
	return nil
}

// Delta is the per-transaction change of the maintained result: a map
// from result groups to the change of their aggregate value (groups
// whose contributions canceled within the transaction do not appear).
// Iteration is deterministic, so two subscribers — or two engines fed
// the same stream — observe identical delta sequences. A key-predicate
// subscriber's Delta holds only its matching groups.
type Delta struct {
	// Seq is the 1-based sequence number of the transaction that
	// produced this delta (Warm counts as a transaction).
	Seq int64
	rel *mring.Relation
}

// Len returns the number of changed result groups.
func (d Delta) Len() int { return d.rel.Len() }

// Get returns the change of one group's aggregate value (zero when the
// group did not change).
func (d Delta) Get(t Tuple) float64 { return d.rel.Get(t) }

// Foreach visits every changed group with its value change, in the
// deterministic sorted tuple order. Replaying every delta of the feed
// into an empty relation reconstructs Result.
func (d Delta) Foreach(f func(t Tuple, change float64)) { d.rel.ForeachSorted(f) }

// String renders the delta deterministically.
func (d Delta) String() string { return fmt.Sprintf("#%d %s", d.Seq, d.rel.String()) }

// subConfig collects the functional options of Subscribe.
type subConfig struct {
	key Tuple
}

// SubOption configures one subscription.
type SubOption func(*subConfig)

// OnKey restricts a subscription to result groups whose leading columns
// equal key (a prefix of the result schema, e.g. the group-by columns a
// user's dashboard watches). Deltas route to key subscribers through
// the same placement hash the distributed shuffles use
// (dist.PlaceIndex), so fan-out work is proportional to the changed
// groups, not the subscriber count, and a keyed subscriber is invoked
// only for transactions that touched a matching group.
func OnKey(key ...Value) SubOption {
	return func(c *subConfig) { c.key = Tuple(key) }
}

// Subscribe registers a changefeed subscriber: fn is invoked once per
// applied transaction (Apply, ApplyBatch, Warm) with the exact result
// delta that transaction produced, after the engine state was updated.
// On the distributed backend the delta is gathered deterministically —
// per-worker contributions merge in worker-index order — so subscribers
// observe the same stream on every run. Subscribers run synchronously
// on the applying goroutine, in subscription order. With OnKey the
// subscriber receives only deltas of its matching groups, skipping
// transactions that did not touch them (the Seq numbers it observes are
// then a subsequence of the feed). The returned cancel function removes
// the subscription; when the last subscriber is gone the engine
// immediately returns to zero capture overhead. Capture is active only
// while at least one subscriber is attached, so subscribe before
// applying the transactions the feed should cover. Subscribe returns an
// error wrapping ErrClosed on a closed engine; it panics on an OnKey
// key longer than the result schema (a programming error —
// Registry.Subscribe reports the same misuse as an error).
func (e *Engine) Subscribe(fn func(Delta), opts ...SubOption) (cancel func(), err error) {
	cancel, err = e.subscribe(e.prog.QueryName, fn, opts...)
	if err != nil && !errors.Is(err, ErrClosed) {
		panic(err)
	}
	return cancel, err
}

func (s *serving) subscribe(view string, fn func(Delta), opts ...SubOption) (func(), error) {
	var cfg subConfig
	for _, o := range opts {
		o(&cfg)
	}
	schema := s.prog.View(view).Schema
	if len(cfg.key) > len(schema) {
		return nil, fmt.Errorf("ivm: subscription key has %d columns, result schema %v has %d",
			len(cfg.key), []string(schema), len(schema))
	}
	// Flush coalesced transactions and register under the backend lock:
	// from the subscriber's perspective everything before this call is
	// already folded, and every transaction after it is delivered
	// individually (coalescing turns off while subscribers exist).
	s.beMu.Lock()
	defer s.beMu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("ivm: Subscribe: %w", ErrClosed)
	}
	s.flushObservationLocked()
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.feeds[view]
	if f == nil {
		f = &feed{schema: schema}
		s.feeds[view] = f
	}
	id := s.next
	s.next++
	sub := &subscriber{id: id, fn: fn, key: cfg.key}
	if len(cfg.key) == 0 {
		f.plain = append(f.plain, sub)
	} else {
		kl := len(cfg.key)
		shard := keyShard(mring.Tuple(cfg.key), kl)
		if f.keyed == nil {
			f.keyed = make(map[int]map[int][]*subscriber)
		}
		if f.keyed[kl] == nil {
			f.keyed[kl] = make(map[int][]*subscriber)
		}
		f.keyed[kl][shard] = append(f.keyed[kl][shard], sub)
	}
	f.n++
	return func() { s.unsubscribe(view, sub) }, nil
}

func (s *serving) unsubscribe(view string, sub *subscriber) {
	// beMu is held because removing the last subscriber touches the
	// backend (StopCapture); lock order beMu before mu.
	s.beMu.Lock()
	defer s.beMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.feeds[view]
	if f == nil {
		return
	}
	remove := func(subs []*subscriber) ([]*subscriber, bool) {
		for i, x := range subs {
			if x == sub {
				return append(subs[:i], subs[i+1:]...), true
			}
		}
		return subs, false
	}
	removed := false
	if sub.key == nil {
		f.plain, removed = remove(f.plain)
	} else {
		kl := len(sub.key)
		shard := keyShard(mring.Tuple(sub.key), kl)
		if bucket := f.keyed[kl]; bucket != nil {
			bucket[shard], removed = remove(bucket[shard])
		}
	}
	if !removed {
		return
	}
	f.n--
	if f.n == 0 {
		// Last subscriber gone: drop the feed and release the backend's
		// capture state (the cluster watch) right away, so the engine is
		// back to zero capture overhead before the next transaction.
		delete(s.feeds, view)
		s.be.StopCapture(view)
	}
}

// keyShard places a key (or a tuple's leading columns) into a routing
// bucket with the platform placement hash.
func keyShard(t mring.Tuple, keyLen int) int {
	pos := make([]int, keyLen)
	for i := range pos {
		pos[i] = i
	}
	return dist.PlaceIndex(t, pos, routeShards)
}

// deliver hands one transaction's per-view deltas to the subscribers.
// Without subscribers it only advances the sequence number — no delta
// is materialized. Subscribers across all views are invoked in
// subscription order; keyed subscribers whose groups did not change are
// skipped.
func (s *serving) deliver(deltas map[string]*mring.Relation) {
	type call struct {
		id int
		fn func(Delta)
		d  Delta
	}
	s.mu.Lock()
	s.seq++
	seq := s.seq
	var calls []call
	for view, f := range s.feeds {
		rel := deltas[view]
		if rel == nil {
			rel = mring.NewRelation(f.schema)
		}
		d := Delta{Seq: seq, rel: rel}
		for _, sub := range f.plain {
			calls = append(calls, call{sub.id, sub.fn, d})
		}
		for _, sub := range routeDelta(f, rel) {
			calls = append(calls, call{sub.id, sub.fn, Delta{Seq: seq, rel: sub.pending}})
			sub.pending = nil
		}
	}
	s.mu.Unlock()
	if len(calls) == 0 {
		return
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].id < calls[j].id })
	for _, c := range calls {
		c.fn(c.d)
	}
}

// routeDelta routes one view delta to its keyed subscribers: every
// changed group hashes into a placement shard per subscribed key
// length, and only the subscribers in that shard are prefix-checked.
// Returns the subscribers that matched at least one group, each with
// its pending filtered delta populated.
func routeDelta(f *feed, rel *mring.Relation) []*subscriber {
	if len(f.keyed) == 0 || rel.Len() == 0 {
		return nil
	}
	var matched []*subscriber
	rel.Foreach(func(t mring.Tuple, m float64) {
		for kl, shards := range f.keyed {
			for _, sub := range shards[keyShard(t, kl)] {
				if !prefixEqual(t, sub.key) {
					continue
				}
				if sub.pending == nil {
					sub.pending = mring.NewRelation(f.schema)
					matched = append(matched, sub)
				}
				sub.pending.Add(t, m)
			}
		}
	})
	return matched
}

func prefixEqual(t mring.Tuple, key Tuple) bool {
	for i, v := range key {
		if !t[i].Equal(v) {
			return false
		}
	}
	return true
}

// localBackend runs the compiled program on the single-node executor.
type localBackend struct {
	prog *compile.Program
	ex   *compile.Executor
}

func newLocalBackend(prog *compile.Program, singleTuple bool) *localBackend {
	ex := compile.NewExecutor(prog)
	ex.SingleTuple = singleTuple
	return &localBackend{prog: prog, ex: ex}
}

func (lb *localBackend) ApplyTx(tx []compile.TableBatch, capture []string) (map[string]*mring.Relation, error) {
	if len(capture) == 0 {
		// No subscribers: fold without registering capture sinks (in
		// particular, OpSet folds skip their pre-statement clone).
		for _, tb := range tx {
			lb.ex.ApplyBatch(tb.Table, tb.Batch)
		}
		return nil, nil
	}
	sinks := make(map[string]*mring.Relation, len(capture))
	for _, v := range capture {
		sinks[v] = mring.NewRelation(lb.ex.View(v).Schema())
	}
	if err := lb.ex.ApplyTxCapture(tx, sinks); err != nil {
		return nil, err
	}
	return sinks, nil
}

func (lb *localBackend) Warm(bases map[string]*mring.Relation, capture []string) (map[string]*mring.Relation, error) {
	lb.ex.InitFromBases(bases)
	if len(capture) == 0 {
		return nil, nil
	}
	out := make(map[string]*mring.Relation, len(capture))
	for _, v := range capture {
		out[v] = lb.ex.View(v).Clone()
	}
	return out, nil
}

func (lb *localBackend) ViewContents(name string) *mring.Relation { return lb.ex.View(name) }

func (lb *localBackend) StopCapture(string) {}

func (lb *localBackend) Stats() eval.Stats { return lb.ex.Stats }

func (lb *localBackend) TriggerProgram(table string) string {
	trg := lb.prog.Triggers[table]
	if trg == nil {
		return ""
	}
	return trg.String()
}

func (lb *localBackend) Metrics() (Metrics, Metrics) { return Metrics{}, Metrics{} }

func (lb *localBackend) WorkerTimings() []cluster.WorkerTiming { return nil }

func (lb *localBackend) ForEachRelation(f func(name string, r *mring.Relation)) {
	lb.ex.ForEachView(f)
}

func (lb *localBackend) Rebalance() (bool, error) { return false, nil }

// SnapshotState captures every executor view — including transient
// ones, whose retained table capacity shapes later fold layouts — as a
// driver-only checkpoint. The local engine does not retain base tables,
// so the views are its complete recoverable state.
func (lb *localBackend) SnapshotState() (*cluster.Checkpoint, error) {
	cp := &cluster.Checkpoint{Driver: map[string]cluster.Frag{}}
	lb.ex.ForEachViewAll(func(name string, r *mring.Relation) {
		if r == nil || (r.Len() == 0 && r.TableSize() == 0) {
			return
		}
		f := cluster.Frag{Schema: r.Schema().Clone(), Buckets: r.TableSize(), Payload: inet.EncodeRelationPlain(r)}
		cp.Driver[name] = f
		cp.Bytes += int64(len(f.Payload))
	})
	return cp, nil
}

// RestoreState rebuilds the executor's views layout-exact from a
// checkpoint. The views already exist empty (bound into the evaluation
// environment at construction), so fragments restore into them in
// place; every name is validated against the program first.
func (lb *localBackend) RestoreState(cp *cluster.Checkpoint) error {
	if len(cp.Workers) > 0 {
		return fmt.Errorf("ivm: checkpoint holds %d worker states; it was taken on a distributed backend", len(cp.Workers))
	}
	for name := range cp.Driver {
		if lb.ex.LookupView(name) == nil {
			return fmt.Errorf("ivm: checkpoint names unknown view %q; the program changed since it was written", name)
		}
	}
	for name, f := range cp.Driver {
		if err := inet.RestoreIntoExact(lb.ex.LookupView(name), f.Payload, f.Buckets); err != nil {
			return fmt.Errorf("ivm: restore view %q: %w", name, err)
		}
	}
	return nil
}

func (lb *localBackend) Close() error { return nil }

// clusterRuntime is the cluster seam distBackend drives. The simulated
// in-process cluster and the process cluster over a real transport
// implement the same surface, so one backend serves both deployments.
type clusterRuntime interface {
	Workers() int
	RunPartitionedBatch(prog *dist.DistProgram, batch *mring.Relation) (cluster.Metrics, error)
	WarmViews(contents map[string]*mring.Relation) error
	ViewContents(name string) *mring.Relation
	WatchView(name string)
	UnwatchView(name string)
	TakeWatchDelta(name string) *mring.Relation
	EvalStats() eval.Stats
	WorkerTimings() []cluster.WorkerTiming
	ForEachRelation(f func(name string, r *mring.Relation))
	CheckpointState() (*cluster.Checkpoint, error)
	RestoreState(cp *cluster.Checkpoint) error
	Close() error
}

// repartitioner is the optional in-place rebalance surface: only the
// simulated cluster can move state between its workers directly; the
// process cluster does not implement it, so Rebalance is a no-op there.
type repartitioner interface {
	Repartition(parts dist.PartInfo, contents map[string]*mring.Relation, keep map[string]bool) error
}

// deltaNoter lets a runtime fold committed per-batch deltas into its
// last-committed read cache (the process cluster's poisoned-read
// fallback).
type deltaNoter interface {
	NoteDelta(name string, delta *mring.Relation)
}

// distBackend runs the compiled program on a cluster runtime: the
// simulated synchronous cluster (Distributed) or the process cluster
// over sockets (Remote). Views are partitioned by the paper's heuristic
// and batches are processed through compiled distributed trigger
// programs either way.
type distBackend struct {
	prog     *compile.Program
	parts    dist.PartInfo
	keyRanks map[string]int
	dprogs   map[string]*dist.DistProgram
	cl       clusterRuntime
	total    Metrics
	last     Metrics
	// watching mirrors the cluster's watch set (a view is in it only
	// while the engine has changefeed subscribers for it).
	watching map[string]bool
}

func newDistBackend(prog *compile.Program, workers int, keyRanks map[string]int) *distBackend {
	parts := dist.ChoosePartitioning(prog, keyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	return &distBackend{prog: prog, parts: parts, keyRanks: keyRanks, dprogs: dprogs, cl: cl, watching: make(map[string]bool)}
}

// newRemoteBackend connects the same distributed backend to worker
// processes: identical partitioning choice and compiled programs, with
// the process cluster as the runtime, so results are bitwise-equal to
// the simulated deployment at the same worker count.
func newRemoteBackend(prog *compile.Program, addrs []string, keyRanks map[string]int) (*distBackend, error) {
	parts := dist.ChoosePartitioning(prog, keyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	pc, err := cluster.Connect(inet.TCP{}, addrs, dist.ViewSchemas(prog), parts)
	if err != nil {
		return nil, err
	}
	return &distBackend{prog: prog, parts: parts, keyRanks: keyRanks, dprogs: dprogs, cl: pc, watching: make(map[string]bool)}, nil
}

// setCapture reconciles the cluster's watch set with the views that
// currently have subscribers, so unsubscribed views pay no per-batch
// sink or clone work.
func (db *distBackend) setCapture(capture []string) {
	want := make(map[string]bool, len(capture))
	for _, v := range capture {
		want[v] = true
	}
	for v := range db.watching {
		if !want[v] {
			db.cl.UnwatchView(v)
			delete(db.watching, v)
		}
	}
	for _, v := range capture {
		if !db.watching[v] {
			db.cl.WatchView(v)
			db.watching[v] = true
		}
	}
}

func (db *distBackend) ApplyTx(tx []compile.TableBatch, capture []string) (map[string]*mring.Relation, error) {
	db.setCapture(capture)
	var txm Metrics
	for _, tb := range tx {
		dp := db.dprogs[tb.Table]
		if dp == nil {
			return nil, fmt.Errorf("ivm: no distributed trigger for table %q", tb.Table)
		}
		// Workers ingest stream fragments directly (Sec. 6.2): the runtime
		// spreads the batch round-robin over the workers.
		m, err := db.cl.RunPartitionedBatch(dp, tb.Batch)
		if err != nil {
			// Discard whatever the failed transaction captured so the
			// next delivered delta is not polluted by its prefix.
			for _, v := range capture {
				db.cl.TakeWatchDelta(v)
			}
			return nil, err
		}
		txm.Add(m)
	}
	db.total.Add(txm)
	db.last = txm
	if len(capture) == 0 {
		return nil, nil
	}
	out := make(map[string]*mring.Relation, len(capture))
	nd, noting := db.cl.(deltaNoter)
	for _, v := range capture {
		d := db.cl.TakeWatchDelta(v)
		out[v] = d
		if noting && d != nil {
			// Keep the runtime's last-committed read cache current so a
			// later failure can freeze reads at this commit.
			nd.NoteDelta(v, d)
		}
	}
	return out, nil
}

func (db *distBackend) Warm(bases map[string]*mring.Relation, capture []string) (map[string]*mring.Relation, error) {
	// Evaluate every view definition from scratch on a throwaway local
	// executor, then install the contents across the cluster partitioned
	// by the deployed PartInfo.
	ex := compile.NewExecutor(db.prog)
	ex.InitFromBases(bases)
	contents := make(map[string]*mring.Relation)
	for _, v := range db.prog.Views {
		if v.Transient || expr.HasDelta(v.Def) {
			continue
		}
		contents[v.Name] = ex.View(v.Name)
	}
	if err := db.cl.WarmViews(contents); err != nil {
		return nil, err
	}
	out := make(map[string]*mring.Relation, len(capture))
	for _, v := range capture {
		db.cl.TakeWatchDelta(v) // warm installs bypass the fold capture
		out[v] = db.cl.ViewContents(v)
	}
	return out, nil
}

func (db *distBackend) ViewContents(name string) *mring.Relation {
	return db.cl.ViewContents(name)
}

func (db *distBackend) StopCapture(view string) {
	if db.watching[view] {
		db.cl.UnwatchView(view)
		delete(db.watching, view)
	}
}

func (db *distBackend) Stats() eval.Stats { return db.cl.EvalStats() }

func (db *distBackend) Close() error { return db.cl.Close() }

func (db *distBackend) TriggerProgram(table string) string {
	dp := db.dprogs[table]
	if dp == nil {
		return ""
	}
	return dp.String()
}

func (db *distBackend) Metrics() (Metrics, Metrics) { return db.total, db.last }

func (db *distBackend) WorkerTimings() []cluster.WorkerTiming { return db.cl.WorkerTimings() }

func (db *distBackend) ForEachRelation(f func(name string, r *mring.Relation)) {
	db.cl.ForEachRelation(f)
}

// SnapshotState captures every node's fragments (driver and workers)
// with the deployed partitioning, so a restore re-warms the same
// deployment shape even after a skew-feedback repartition.
func (db *distBackend) SnapshotState() (*cluster.Checkpoint, error) {
	cp, err := db.cl.CheckpointState()
	if err != nil {
		return nil, err
	}
	cp.Parts = db.parts.Clone()
	return cp, nil
}

// RestoreState installs the checkpoint across the cluster, then adopts
// its recorded partitioning: if the state was captured under a
// placement the tuner had moved to, the distributed trigger programs
// recompile against it so maintenance keeps matching the restored
// fragment placement.
func (db *distBackend) RestoreState(cp *cluster.Checkpoint) error {
	if err := db.cl.RestoreState(cp); err != nil {
		return err
	}
	if cp.Parts != nil && !cp.Parts.Equal(db.parts) {
		db.parts = cp.Parts
		db.dprogs = dist.CompileProgram(db.prog, cp.Parts, dist.O3)
	}
	return nil
}

// persistentViews visits the program's persistent (non-transient,
// non-delta) views — the ones that hold state across transactions and
// therefore must move in a repartition.
func (db *distBackend) persistentViews(f func(v *compile.ViewDef)) {
	for _, v := range db.prog.Views {
		if v.Transient || expr.HasDelta(v.Def) {
			continue
		}
		f(v)
	}
}

// measureSkew returns, per candidate partition column, the observed
// placement imbalance (max/mean fragment size) hash placement on that
// column would produce, aggregated tuple-count-weighted over the
// persistent distributed views whose schema holds the column. This is
// the measured replacement for the heuristic's uniform-skew assumption.
func (db *distBackend) measureSkew() map[string]float64 {
	n := db.cl.Workers()
	if n < 2 {
		return nil
	}
	num := make(map[string]float64)
	den := make(map[string]float64)
	db.persistentViews(func(v *compile.ViewDef) {
		if !db.parts[v.Name].Keyed() {
			return
		}
		rel := db.cl.ViewContents(v.Name)
		// Tiny views cannot produce a meaningful imbalance estimate.
		if rel.Len() < 64 {
			return
		}
		for _, col := range v.Schema {
			if db.keyRanks[col] < 2 {
				continue
			}
			sk := dist.KeySkew(rel, []int{v.Schema.Index(col)}, n)
			num[col] += sk * float64(rel.Len())
			den[col] += float64(rel.Len())
		}
	})
	w := make(map[string]float64, len(num))
	for col, s := range num {
		w[col] = s / den[col]
	}
	return w
}

// Rebalance re-runs the partitioning heuristic with measured skew
// weights and, when it picks a different placement, redeploys between
// transactions: moved views are gathered, the cluster drops all state
// compiled against the old placement (keeping unmoved persistent
// views in place), the moved contents re-install under their new keys,
// and the distributed trigger programs recompile against the new
// placement.
func (db *distBackend) Rebalance() (bool, error) {
	rp, ok := db.cl.(repartitioner)
	if !ok {
		// The process cluster cannot move state between live workers;
		// skew feedback stays a no-op there (DESIGN.md §11).
		return false, nil
	}
	weights := db.measureSkew()
	if len(weights) == 0 {
		return false, nil
	}
	parts := dist.ChoosePartitioningWeighted(db.prog, db.keyRanks, weights)
	if parts.Equal(db.parts) {
		return false, nil
	}
	moved := make(map[string]*mring.Relation)
	keep := make(map[string]bool)
	db.persistentViews(func(v *compile.ViewDef) {
		if db.parts[v.Name].Equal(parts[v.Name]) {
			keep[v.Name] = true
		} else {
			moved[v.Name] = db.cl.ViewContents(v.Name)
		}
	})
	if err := rp.Repartition(parts, moved, keep); err != nil {
		return false, err
	}
	db.parts = parts
	db.dprogs = dist.CompileProgram(db.prog, parts, dist.O3)
	return true, nil
}
