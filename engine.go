package ivm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Metrics reports the virtual platform cost of distributed processing
// (latency, compute, shuffled bytes, stage/job counts). Engines on the
// local backend report zero metrics.
type Metrics = cluster.Metrics

// engineConfig collects the functional options of New.
type engineConfig struct {
	distributed bool
	workers     int
	keyRanks    map[string]int
	copts       compile.Options
	singleTuple bool
}

// Option configures an Engine at construction.
type Option func(*engineConfig)

// Distributed deploys the engine on the simulated synchronous cluster
// (Sec. 4) with the given number of workers: views are partitioned by
// the paper's heuristic and batches run through compiled distributed
// trigger programs. Without this option the engine runs single-node.
func Distributed(workers int) Option {
	return func(c *engineConfig) {
		c.distributed = true
		c.workers = workers
	}
}

// KeyRanks ranks partition-key columns by the cardinality of their
// source table (higher rank = larger table; see tpch.PrimaryKeyRanks).
// It drives the distributed partitioning heuristic and is ignored on
// the local backend.
func KeyRanks(ranks map[string]int) Option {
	return func(c *engineConfig) { c.keyRanks = ranks }
}

// CompileOptions overrides the paper's default compilation options
// (domain extraction, batch pre-aggregation, re-evaluation for
// uncorrelated nesting).
func CompileOptions(o Options) Option {
	return func(c *engineConfig) { c.copts = o }
}

// SingleTuple switches the local executor to tuple-at-a-time processing
// (the comparison mode of Sec. 3.3). Incompatible with Distributed.
func SingleTuple() Option {
	return func(c *engineConfig) { c.singleTuple = true }
}

// backend is the execution plane behind an Engine: the local executor
// and the simulated cluster implement the same four-operation contract,
// so everything above (transactions, warm starts, the changefeed) is
// written once.
type backend interface {
	// ApplyTx folds one multi-table transaction into all maintained
	// views; with capture on it returns the result view's per-group
	// delta (nil otherwise, skipping all capture work).
	ApplyTx(tx []compile.TableBatch, capture bool) (*mring.Relation, error)
	// Warm installs initial base-table contents before streaming and
	// returns the initial result contents as the first delta.
	Warm(bases map[string]*mring.Relation) (*mring.Relation, error)
	// Result returns the maintained query result contents.
	Result() *mring.Relation
	// Stats returns evaluation statistics accumulated across batches.
	Stats() eval.Stats
	// TriggerProgram renders the maintenance program for one base table.
	TriggerProgram(table string) string
	// Metrics returns the cumulative and last-transaction platform cost
	// (zero on the local backend).
	Metrics() (total, lastTx Metrics)
}

// Engine maintains one compiled query incrementally. The same type
// fronts both execution planes — construct with New, picking the
// backend with options:
//
//	local, _ := ivm.New("Q", q, bases)
//	dist8, _ := ivm.New("Q", q, bases, ivm.Distributed(8), ivm.KeyRanks(r))
//
// Updates apply through Apply (atomic multi-table transactions) or
// ApplyBatch (single-table sugar); Subscribe delivers each applied
// transaction's result delta.
type Engine struct {
	name string
	prog *compile.Program
	be   backend

	mu   sync.Mutex
	subs []subscriber
	next int
	seq  int64
}

type subscriber struct {
	id int
	fn func(Delta)
}

// New compiles the query over the given base relation schemas and
// returns an engine over empty tables. By default it compiles with the
// paper's default options and runs single-node; see Distributed,
// KeyRanks, CompileOptions, and SingleTuple.
func New(name string, query Expr, bases map[string]Schema, opts ...Option) (*Engine, error) {
	cfg := engineConfig{copts: compile.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.distributed && cfg.workers < 1 {
		return nil, fmt.Errorf("ivm: Distributed needs at least one worker, got %d", cfg.workers)
	}
	if cfg.distributed && cfg.singleTuple {
		return nil, fmt.Errorf("ivm: SingleTuple is a local execution mode; drop it or drop Distributed")
	}
	prog, err := compile.Compile(name, query, bases, cfg.copts)
	if err != nil {
		return nil, err
	}
	var be backend
	if cfg.distributed {
		be = newDistBackend(prog, cfg.workers, cfg.keyRanks)
	} else {
		be = newLocalBackend(prog, cfg.singleTuple)
	}
	return &Engine{name: name, prog: prog, be: be}, nil
}

// Program returns the compiled maintenance program (its String method
// renders the view hierarchy and triggers).
func (e *Engine) Program() *Program { return e.prog }

// TriggerProgram renders the maintenance program run for batches of one
// base table: the local trigger or the compiled distributed program,
// depending on the backend. Empty for unknown tables.
func (e *Engine) TriggerProgram(table string) string { return e.be.TriggerProgram(table) }

// Stats returns the evaluation statistics accumulated across all
// transactions (on the distributed backend: across all nodes, merged
// deterministically).
func (e *Engine) Stats() Stats { return e.be.Stats() }

// Metrics returns the cumulative virtual platform cost of all processed
// transactions. Zero on the local backend.
func (e *Engine) Metrics() Metrics { total, _ := e.be.Metrics(); return total }

// LastMetrics returns the platform cost of the most recently applied
// transaction. Zero on the local backend.
func (e *Engine) LastMetrics() Metrics { _, last := e.be.Metrics(); return last }

// Result returns the maintained query result. Iterate with Foreach.
func (e *Engine) Result() *Result { return &Result{rel: e.be.Result()} }

// knownTables renders the engine's base tables for error messages.
func knownTables(bases map[string]Schema) string {
	names := make([]string, 0, len(bases))
	for n := range bases {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Apply folds one transaction — update batches for any set of base
// tables — into all maintained views in a single maintenance step:
// per-table triggers run in the transaction's table order, and the
// result observed by Result and the changefeed reflects either none or
// all of the transaction. Applying a transaction is equivalent to
// applying its batches as sequential single-table batches; the
// transaction boundary determines what one Delta covers. Unknown tables
// and arity-mismatched batches are rejected before anything is applied;
// an execution error from the backend itself (a programming or
// deployment error, not a data error) can leave a prefix of the
// transaction's tables applied.
func (e *Engine) Apply(tx *Tx) error {
	if tx == nil || len(tx.order) == 0 {
		return nil
	}
	batches := make([]compile.TableBatch, 0, len(tx.order))
	for _, table := range tx.order {
		schema, ok := e.prog.Bases[table]
		if !ok {
			return fmt.Errorf("ivm: unknown table %q (engine has: %s)", table, knownTables(e.prog.Bases))
		}
		b := tx.batches[table]
		if got := len(b.Schema()); got != len(schema) {
			return fmt.Errorf("ivm: batch for table %q has arity %d, schema %v wants %d",
				table, got, []string(schema), len(schema))
		}
		batches = append(batches, compile.TableBatch{Table: table, Batch: b.rel})
	}
	delta, err := e.be.ApplyTx(batches, e.capturing())
	if err != nil {
		return err
	}
	e.deliver(delta)
	return nil
}

// ApplyBatch folds one single-table update batch into all maintained
// views: sugar for a one-table transaction.
func (e *Engine) ApplyBatch(table string, b *Batch) error {
	tx := NewTx()
	if err := tx.Put(table, b); err != nil {
		return err
	}
	return e.Apply(tx)
}

// capturing reports whether any changefeed subscriber is attached;
// without one the backends skip all delta-capture work.
func (e *Engine) capturing() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.subs) > 0
}

// Warm initializes base tables before streaming (static dimensions,
// checkpointed state): every maintained view is computed from the given
// contents, and on the distributed backend each view's contents are
// partitioned across the workers with the same placement function the
// shuffles use, so warm-started state is indistinguishable from
// streamed state. Call before the first transaction. The initial result
// contents are delivered to subscribers as one Delta, so a changefeed
// replay starting from empty still reconstructs Result exactly.
func (e *Engine) Warm(tables map[string]*Batch) error {
	for n, b := range tables {
		if _, ok := e.prog.Bases[n]; !ok {
			return fmt.Errorf("ivm: unknown table %q (engine has: %s)", n, knownTables(e.prog.Bases))
		}
		if b == nil {
			return fmt.Errorf("ivm: nil initial batch for table %q", n)
		}
	}
	init := make(map[string]*mring.Relation, len(e.prog.Bases))
	for n, schema := range e.prog.Bases {
		if b, ok := tables[n]; ok {
			if got := len(b.Schema()); got != len(schema) {
				return fmt.Errorf("ivm: initial table %q has arity %d, schema %v wants %d",
					n, got, []string(schema), len(schema))
			}
			init[n] = b.rel
		} else {
			init[n] = mring.NewRelation(schema)
		}
	}
	delta, err := e.be.Warm(init)
	if err != nil {
		return err
	}
	e.deliver(delta)
	return nil
}

// Delta is the per-transaction change of the maintained result: a map
// from result groups to the change of their aggregate value (groups
// whose contributions canceled within the transaction do not appear).
// Iteration is deterministic, so two subscribers — or two engines fed
// the same stream — observe identical delta sequences.
type Delta struct {
	// Seq is the 1-based sequence number of the transaction that
	// produced this delta (Warm counts as a transaction).
	Seq int64
	rel *mring.Relation
}

// Len returns the number of changed result groups.
func (d Delta) Len() int { return d.rel.Len() }

// Get returns the change of one group's aggregate value (zero when the
// group did not change).
func (d Delta) Get(t Tuple) float64 { return d.rel.Get(t) }

// Foreach visits every changed group with its value change, in the
// deterministic sorted tuple order. Replaying every delta of the feed
// into an empty relation reconstructs Result.
func (d Delta) Foreach(f func(t Tuple, change float64)) { d.rel.ForeachSorted(f) }

// String renders the delta deterministically.
func (d Delta) String() string { return fmt.Sprintf("#%d %s", d.Seq, d.rel.String()) }

// Subscribe registers a changefeed subscriber: fn is invoked once per
// applied transaction (Apply, ApplyBatch, Warm) with the exact result
// delta that transaction produced, after the engine state was updated.
// On the distributed backend the delta is gathered deterministically —
// per-worker contributions merge in worker-index order — so subscribers
// observe the same stream on every run. Subscribers run synchronously
// on the applying goroutine, in subscription order. The returned cancel
// function removes the subscription. Capture is active only while at
// least one subscriber is attached — an unsubscribed engine pays no
// delta-capture overhead, so subscribe before applying the
// transactions the feed should cover.
func (e *Engine) Subscribe(fn func(Delta)) (cancel func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.next
	e.next++
	e.subs = append(e.subs, subscriber{id: id, fn: fn})
	return func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, s := range e.subs {
			if s.id == id {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				return
			}
		}
	}
}

// deliver hands one transaction's result delta to every subscriber.
// Without subscribers it only advances the sequence number — no delta
// is materialized.
func (e *Engine) deliver(rel *mring.Relation) {
	e.mu.Lock()
	e.seq++
	if len(e.subs) == 0 {
		e.mu.Unlock()
		return
	}
	if rel == nil {
		rel = mring.NewRelation(e.prog.TopView().Schema)
	}
	d := Delta{Seq: e.seq, rel: rel}
	subs := append([]subscriber(nil), e.subs...)
	e.mu.Unlock()
	for _, s := range subs {
		s.fn(d)
	}
}

// localBackend runs the compiled program on the single-node executor.
type localBackend struct {
	prog *compile.Program
	ex   *compile.Executor
}

func newLocalBackend(prog *compile.Program, singleTuple bool) *localBackend {
	ex := compile.NewExecutor(prog)
	ex.SingleTuple = singleTuple
	return &localBackend{prog: prog, ex: ex}
}

func (lb *localBackend) ApplyTx(tx []compile.TableBatch, capture bool) (*mring.Relation, error) {
	if !capture {
		// No subscribers: fold without registering the capture sink (in
		// particular, OpSet folds skip their pre-statement clone).
		for _, tb := range tx {
			lb.ex.ApplyBatch(tb.Table, tb.Batch)
		}
		return nil, nil
	}
	return lb.ex.ApplyTx(tx)
}

func (lb *localBackend) Warm(bases map[string]*mring.Relation) (*mring.Relation, error) {
	lb.ex.InitFromBases(bases)
	return lb.ex.Result().Clone(), nil
}

func (lb *localBackend) Result() *mring.Relation { return lb.ex.Result() }

func (lb *localBackend) Stats() eval.Stats { return lb.ex.Stats }

func (lb *localBackend) TriggerProgram(table string) string {
	trg := lb.prog.Triggers[table]
	if trg == nil {
		return ""
	}
	return trg.String()
}

func (lb *localBackend) Metrics() (Metrics, Metrics) { return Metrics{}, Metrics{} }

// distBackend runs the compiled program on the simulated synchronous
// cluster: views are partitioned by the paper's heuristic and batches
// are processed through compiled distributed trigger programs.
type distBackend struct {
	prog   *compile.Program
	parts  dist.PartInfo
	dprogs map[string]*dist.DistProgram
	cl     *cluster.Cluster
	total  Metrics
	last   Metrics
	// watching mirrors the cluster's watch state (on only while the
	// engine has changefeed subscribers).
	watching bool
}

func newDistBackend(prog *compile.Program, workers int, keyRanks map[string]int) *distBackend {
	parts := dist.ChoosePartitioning(prog, keyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	return &distBackend{prog: prog, parts: parts, dprogs: dprogs, cl: cl}
}

// setCapture toggles the cluster's watch on the top view so unsubscribed
// engines pay no per-batch sink or clone work.
func (db *distBackend) setCapture(on bool) {
	if on == db.watching {
		return
	}
	if on {
		db.cl.WatchView(db.prog.QueryName)
	} else {
		db.cl.UnwatchView()
	}
	db.watching = on
}

func (db *distBackend) ApplyTx(tx []compile.TableBatch, capture bool) (*mring.Relation, error) {
	db.setCapture(capture)
	var txm Metrics
	for _, tb := range tx {
		dp := db.dprogs[tb.Table]
		if dp == nil {
			return nil, fmt.Errorf("ivm: no distributed trigger for table %q", tb.Table)
		}
		// Workers ingest stream fragments directly (Sec. 6.2): the batch
		// spreads round-robin over the workers.
		workers := db.cl.Workers()
		frags := make([]*mring.Relation, workers)
		for i := range frags {
			frags[i] = mring.NewRelation(tb.Batch.Schema())
		}
		i := 0
		tb.Batch.Foreach(func(t mring.Tuple, m float64) {
			frags[i%workers].Add(t, m)
			i++
		})
		m, err := db.cl.RunPartitioned(dp, frags)
		if err != nil {
			// Discard whatever the failed transaction captured so the
			// next delivered delta is not polluted by its prefix.
			db.cl.TakeWatchDelta()
			return nil, err
		}
		txm.Add(m)
	}
	db.total.Add(txm)
	db.last = txm
	if !capture {
		return nil, nil
	}
	return db.cl.TakeWatchDelta(), nil
}

func (db *distBackend) Warm(bases map[string]*mring.Relation) (*mring.Relation, error) {
	// Evaluate every view definition from scratch on a throwaway local
	// executor, then install the contents across the cluster partitioned
	// by the deployed PartInfo.
	ex := compile.NewExecutor(db.prog)
	ex.InitFromBases(bases)
	contents := make(map[string]*mring.Relation)
	for _, v := range db.prog.Views {
		if v.Transient || expr.HasDelta(v.Def) {
			continue
		}
		contents[v.Name] = ex.View(v.Name)
	}
	if err := db.cl.WarmViews(contents); err != nil {
		return nil, err
	}
	db.cl.TakeWatchDelta() // warm installs bypass the fold capture
	return db.cl.ViewContents(db.prog.QueryName), nil
}

func (db *distBackend) Result() *mring.Relation {
	return db.cl.ViewContents(db.prog.QueryName)
}

func (db *distBackend) Stats() eval.Stats { return db.cl.Stats }

func (db *distBackend) TriggerProgram(table string) string {
	dp := db.dprogs[table]
	if dp == nil {
		return ""
	}
	return dp.String()
}

func (db *distBackend) Metrics() (Metrics, Metrics) { return db.total, db.last }
