package ivm

// Changefeed gate: Subscribe must deliver the exact per-transaction
// result deltas on both backends, gathered deterministically on the
// distributed path (per-worker contributions merge in worker-index
// order). Replaying the delta stream into an empty relation must
// reconstruct Result(); with integral data the streams are
// bitwise-identical across the local engine and 1/8/16 workers — every
// capture path (driver-maintained, replicated, worker-partitioned top
// views) is covered. Run under -race (make test) this also certifies
// the per-worker delta sinks share nothing.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mring"
	"repro/internal/tpch"
)

// replayer accumulates a delta stream and checks it reconstructs the
// engine result.
type replayer struct {
	rel     *mring.Relation
	stream  []string
	lastSeq int64
}

func subscribeReplay(t *testing.T, e *Engine) *replayer {
	t.Helper()
	rp := &replayer{rel: mring.NewRelation(e.Result().rel.Schema())}
	e.Subscribe(func(d Delta) {
		if d.Seq != rp.lastSeq+1 {
			t.Fatalf("delta sequence skipped: %d after %d", d.Seq, rp.lastSeq)
		}
		rp.lastSeq = d.Seq
		d.Foreach(func(tp Tuple, change float64) { rp.rel.Add(tp, change) })
		rp.stream = append(rp.stream, d.String())
	})
	return rp
}

// intStream feeds every engine an identical deterministic stream of
// integer-valued transactions over R(a,k), S(k,c) — inserts and
// deletes — so all aggregate arithmetic is exact and delta streams can
// be compared bitwise across backends and worker counts.
func intStream(t *testing.T, engines []*Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 12; round++ {
		br := NewBatch(Schema{"a", "k"})
		bs := NewBatch(Schema{"k", "c"})
		for i := 0; i < 40; i++ {
			if err := br.Insert(Row(rng.Intn(200), rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
			if err := bs.Insert(Row(rng.Intn(8), rng.Intn(50))); err != nil {
				t.Fatal(err)
			}
		}
		if round%3 == 2 {
			// Retract a slice of what round round-2 inserted (same rng
			// stream for every engine, so retractions line up).
			if err := br.Delete(Row(rng.Intn(200), rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range engines {
			tx := e.NewTx()
			tx.Put("R", &Batch{rel: br.rel.Clone()})
			tx.Put("S", &Batch{rel: bs.rel.Clone()})
			if err := e.Apply(tx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestChangefeedBitwiseAcrossWorkers drives one query shape per
// top-view placement (worker-partitioned, driver-local scalar,
// replicated) through the local backend and 1/8/16 workers: the
// subscribed delta streams must be bitwise identical everywhere, and
// replaying any stream must reconstruct that engine's Result exactly.
func TestChangefeedBitwiseAcrossWorkers(t *testing.T) {
	join := Join(Table("R", "a", "k"), Table("S", "k", "c"))
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	cases := []struct {
		name  string
		query Expr
		ranks map[string]int
	}{
		// Group key k ranked: the top view partitions across workers.
		{"partitioned", Sum([]string{"k"}, join), map[string]int{"a": 3, "k": 2}},
		// Scalar result: the top view lives at the driver.
		{"driver-local", Sum(nil, join), map[string]int{"a": 3, "k": 2}},
		// Group key unranked: the top view replicates on every worker.
		{"replicated", Sum([]string{"k"}, join), map[string]int{"a": 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local, err := New("Q", tc.query, bases)
			if err != nil {
				t.Fatal(err)
			}
			engines := []*Engine{local}
			for _, w := range []int{1, 8, 16} {
				d, err := New("Q", tc.query, bases, Distributed(w), KeyRanks(tc.ranks))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				engines = append(engines, d)
			}
			replays := make([]*replayer, len(engines))
			for i, e := range engines {
				replays[i] = subscribeReplay(t, e)
			}

			intStream(t, engines)

			want := replays[0]
			labels := []string{"local", "w=1", "w=8", "w=16"}
			for i, rp := range replays {
				if len(rp.stream) != len(want.stream) {
					t.Fatalf("%s delivered %d deltas, local delivered %d",
						labels[i], len(rp.stream), len(want.stream))
				}
				for j := range rp.stream {
					if rp.stream[j] != want.stream[j] {
						t.Fatalf("%s delta %d not bitwise identical to local\n got %s\nwant %s",
							labels[i], j, rp.stream[j], want.stream[j])
					}
				}
				// Replay reconstructs this engine's result exactly.
				res := engines[i].Result().rel
				if rp.rel.Len() != res.Len() {
					t.Fatalf("%s: replay has %d groups, result %d\nreplay %v\nresult %v",
						labels[i], rp.rel.Len(), res.Len(), rp.rel, res)
				}
				res.Foreach(func(tp mring.Tuple, m float64) {
					if got := rp.rel.Get(tp); got != m {
						t.Fatalf("%s: replayed %v -> %g, result has %g", labels[i], tp, got, m)
					}
				})
			}
		})
	}
}

// TestChangefeedReplayReconstructsTPCH replays the Q1/Q3/Q6 delta
// streams — float-valued aggregates through every top-view placement
// the TPC-H partitioning produces — and checks the replay matches
// Result within float tolerance for the Engine and the distributed
// backend at 1/8/16 workers.
func TestChangefeedReplayReconstructsTPCH(t *testing.T) {
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		t.Run(name, func(t *testing.T) {
			q, err := tpch.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			bases := q.BaseSchemas()
			engines := []*Engine{}
			labels := []string{}
			local, err := New(q.Name, q.Def, bases)
			if err != nil {
				t.Fatal(err)
			}
			engines, labels = append(engines, local), append(labels, "local")
			for _, w := range []int{1, 8, 16} {
				d, err := New(q.Name, q.Def, bases, Distributed(w), KeyRanks(tpch.PrimaryKeyRanks))
				if err != nil {
					t.Fatal(err)
				}
				engines, labels = append(engines, d), append(labels, fmt.Sprintf("w=%d", w))
			}
			replays := make([]*replayer, len(engines))
			for i, e := range engines {
				replays[i] = subscribeReplay(t, e)
			}

			goldenStream(t, q, func(table string, b *Batch) {
				for _, e := range engines {
					if err := e.ApplyBatch(table, b); err != nil {
						t.Fatal(err)
					}
				}
			})

			for i, rp := range replays {
				if rp.lastSeq == 0 {
					t.Fatalf("%s: no deltas delivered", labels[i])
				}
				if !rp.rel.EqualApprox(engines[i].Result().rel, 1e-6) {
					t.Fatalf("%s: replayed stream does not reconstruct Result\nreplay %v\nresult %v",
						labels[i], rp.rel, engines[i].Result().rel)
				}
			}
		})
	}
}

// TestChangefeedReEvaluationPolicy exercises delta capture on the
// re-evaluation path (OpSet top-view triggers from uncorrelated
// nesting), which installs results through transformer writes on the
// distributed backend.
func TestChangefeedReEvaluationPolicy(t *testing.T) {
	// x := COUNT(S) is uncorrelated with R, so updates to S recompute
	// the view (Sec. 3.2.3).
	inner := Sum(nil, Table("S", "c", "d"))
	q := Sum(nil, Join(
		Table("R", "a", "b"),
		Lift("x", inner),
		Cond(Lt, Col("a"), Col("x"))))
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"c", "d"}}

	local, err := New("QRE", q, bases)
	if err != nil {
		t.Fatal(err)
	}
	distEng, err := New("QRE", q, bases, Distributed(4), KeyRanks(map[string]int{"a": 2, "c": 2}))
	if err != nil {
		t.Fatal(err)
	}
	engines := []*Engine{local, distEng}
	replays := []*replayer{subscribeReplay(t, local), subscribeReplay(t, distEng)}

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 8; round++ {
		br := NewBatch(Schema{"a", "b"})
		bs := NewBatch(Schema{"c", "d"})
		for i := 0; i < 10; i++ {
			br.Insert(Row(rng.Intn(6), rng.Intn(30)))
		}
		if round%2 == 1 {
			bs.Insert(Row(rng.Intn(20), rng.Intn(20)))
		}
		for _, e := range engines {
			tx := e.NewTx()
			tx.Put("R", &Batch{rel: br.rel.Clone()})
			if bs.Len() > 0 {
				tx.Put("S", &Batch{rel: bs.rel.Clone()})
			}
			if err := e.Apply(tx); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, label := range []string{"local", "distributed"} {
		res := engines[i].Result().rel
		if !replays[i].rel.EqualApprox(res, 1e-9) {
			t.Fatalf("%s: replay does not reconstruct re-evaluated result\nreplay %v\nresult %v",
				label, replays[i].rel, res)
		}
	}
	if !engines[1].Result().rel.EqualApprox(engines[0].Result().rel, 1e-9) {
		t.Fatalf("distributed re-evaluation diverged from local")
	}
}

// TestChangefeedWarmDelta pins the warm-start contract: Warm delivers
// the initial result contents as the first delta on both backends, and
// the replay invariant holds across warm start plus streamed updates.
func TestChangefeedWarmDelta(t *testing.T) {
	query := Sum([]string{"k"}, Join(Table("R", "a", "k"), Table("S", "k", "c")))
	bases := map[string]Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	ranks := map[string]int{"a": 3, "k": 2}

	initR := NewBatch(Schema{"a", "k"})
	initS := NewBatch(Schema{"k", "c"})
	for i := 0; i < 60; i++ {
		initR.Insert(Row(i, i%5))
		initS.Insert(Row(i%5, i))
	}

	local, err := New("QW", query, bases)
	if err != nil {
		t.Fatal(err)
	}
	distEng, err := New("QW", query, bases, Distributed(8), KeyRanks(ranks))
	if err != nil {
		t.Fatal(err)
	}
	engines := []*Engine{local, distEng}
	replays := []*replayer{subscribeReplay(t, local), subscribeReplay(t, distEng)}

	for _, e := range engines {
		warm := map[string]*Batch{
			"R": {rel: initR.rel.Clone()},
			"S": {rel: initS.rel.Clone()},
		}
		if err := e.Warm(warm); err != nil {
			t.Fatal(err)
		}
	}
	for i, label := range []string{"local", "distributed"} {
		if replays[i].lastSeq != 1 {
			t.Fatalf("%s: warm start delivered %d deltas, want 1", label, replays[i].lastSeq)
		}
		if replays[i].rel.Len() == 0 {
			t.Fatalf("%s: warm delta empty", label)
		}
	}

	intStream(t, engines)

	for i, label := range []string{"local", "distributed"} {
		res := engines[i].Result().rel
		if !replays[i].rel.Equal(res) {
			t.Fatalf("%s: warm+stream replay does not reconstruct Result\nreplay %v\nresult %v",
				label, replays[i].rel, res)
		}
	}
	if !distEng.Result().rel.Equal(local.Result().rel) {
		t.Fatalf("warm-started distributed result diverged from local\n got %v\nwant %v",
			distEng.Result().rel, local.Result().rel)
	}
}
