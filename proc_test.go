package ivm

// Process-cluster gate: an engine on ivm.Remote — real TCP sockets, a
// worker server per worker — must be indistinguishable from the
// in-process simulated cluster at the same worker count. The goldens
// pin bitwise equality (exact float comparison, not approximate) of
// both the maintained results and the subscriber delta streams, because
// both deployments replay the identical mutation sequences in the
// identical orders. Run under -race (make test) this also exercises the
// connection fan-out paths for data races.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mring"
	inet "repro/internal/net"
	"repro/internal/tpch"
)

// startWorkers launches n in-process worker servers on loopback TCP and
// returns their addresses; the servers stop at test cleanup.
func startWorkers(t *testing.T, n int) ([]string, []*cluster.WorkerServer) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*cluster.WorkerServer, n)
	for i := range addrs {
		srv, err := cluster.ListenAndServeWorker(inet.TCP{}, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
		srvs[i] = srv
	}
	return addrs, srvs
}

// requireBitwiseEqual fails unless the two relations hold exactly the
// same tuples with exactly equal (==, bitwise for our merge orders)
// values.
func requireBitwiseEqual(t *testing.T, label string, got, want *mring.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d groups, want %d\n got %v\nwant %v", label, got.Len(), want.Len(), got, want)
	}
	want.Foreach(func(tp mring.Tuple, m float64) {
		if g := got.Get(tp); g != m {
			t.Fatalf("%s: group %v = %g, want exactly %g", label, tp, g, m)
		}
	})
}

func TestGoldenProcessClusterParity(t *testing.T) {
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		for _, workers := range []int{1, 8} {
			t.Run(name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				q, err := tpch.QueryByName(name)
				if err != nil {
					t.Fatal(err)
				}
				bases := q.BaseSchemas()

				oracle, err := New(q.Name, q.Def, bases,
					Distributed(workers), KeyRanks(tpch.PrimaryKeyRanks))
				if err != nil {
					t.Fatal(err)
				}
				addrs, _ := startWorkers(t, workers)
				remote, err := New(q.Name, q.Def, bases,
					Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks))
				if err != nil {
					t.Fatal(err)
				}
				defer remote.Close()

				// Both engines stream their per-transaction deltas; the
				// deterministic String render pins worker-index-ordered
				// merges across real sockets.
				var oracleFeed, remoteFeed []string
				if _, err := oracle.Subscribe(func(d Delta) {
					oracleFeed = append(oracleFeed, d.String())
				}); err != nil {
					t.Fatal(err)
				}
				if _, err := remote.Subscribe(func(d Delta) {
					remoteFeed = append(remoteFeed, d.String())
				}); err != nil {
					t.Fatal(err)
				}

				goldenStream(t, q, func(table string, b *Batch) {
					if err := oracle.ApplyBatch(table, b); err != nil {
						t.Fatal(err)
					}
					if err := remote.ApplyBatch(table, b); err != nil {
						t.Fatal(err)
					}
				})

				requireBitwiseEqual(t, "process cluster result",
					remote.Result().rel, oracle.Result().rel)
				if len(remoteFeed) != len(oracleFeed) {
					t.Fatalf("feed lengths differ: remote %d, oracle %d", len(remoteFeed), len(oracleFeed))
				}
				for i := range oracleFeed {
					if remoteFeed[i] != oracleFeed[i] {
						t.Fatalf("delta #%d differs across transports\n got %s\nwant %s",
							i, remoteFeed[i], oracleFeed[i])
					}
				}
			})
		}
	}
}

// TestProcessClusterWarmParity pins warm loads (reference-installed and
// keyed splits) across the wire.
func TestProcessClusterWarmParity(t *testing.T) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	oracle, err := New(q.Name, q.Def, bases, Distributed(4), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startWorkers(t, 4)
	remote, err := New(q.Name, q.Def, bases, Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	gen := tpch.NewGenerator(0.03, 11)
	warm := map[string]*Batch{}
	stream := tpch.NewStream(gen, q.Tables)
	for _, b := range stream.NextBatches(500) {
		if warm[b.Table] == nil {
			warm[b.Table] = &Batch{rel: mring.NewRelation(b.Rel.Schema())}
		}
		warm[b.Table].rel.Merge(b.Rel)
	}
	warmClone := map[string]*Batch{}
	for tbl, b := range warm {
		warmClone[tbl] = &Batch{rel: b.rel.Clone()}
	}
	if err := oracle.Warm(warm); err != nil {
		t.Fatal(err)
	}
	if err := remote.Warm(warmClone); err != nil {
		t.Fatal(err)
	}
	for _, b := range stream.NextBatches(500) {
		if err := oracle.ApplyBatch(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
			t.Fatal(err)
		}
		if err := remote.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
			t.Fatal(err)
		}
	}
	requireBitwiseEqual(t, "warm-started process cluster", remote.Result().rel, oracle.Result().rel)
}

// TestProcessClusterWorkerKill pins the mid-transaction failure
// semantics: severing a worker mid-stream fails the whole transaction
// atomically on the driver — the failed Apply's partial captures are
// discarded, Result stays at the last committed state, and every later
// operation reports the poisoned cluster.
func TestProcessClusterWorkerKill(t *testing.T) {
	q, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	oracle, err := New(q.Name, q.Def, bases, Distributed(2), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	addrs, srvs := startWorkers(t, 2)
	remote, err := New(q.Name, q.Def, bases, Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	var feed []string
	if _, err := remote.Subscribe(func(d Delta) { feed = append(feed, d.String()) }); err != nil {
		t.Fatal(err)
	}

	gen := tpch.NewGenerator(0.03, 5)
	stream := tpch.NewStream(gen, q.Tables)
	for r := 0; r < 3; r++ {
		for _, b := range stream.NextBatches(100) {
			if err := oracle.ApplyBatch(b.Table, &Batch{rel: b.Rel.Clone()}); err != nil {
				t.Fatal(err)
			}
			if err := remote.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Seed the last-committed read cache, and pin pre-kill parity.
	requireBitwiseEqual(t, "pre-kill", remote.Result().rel, oracle.Result().rel)
	preKill := remote.Result().rel.Clone()
	feedLen := len(feed)

	// Sever worker 1 mid-stream and apply the next batch (from a fresh
	// stream, in case the main one is exhausted).
	srvs[1].Close()
	bs := tpch.NewStream(tpch.NewGenerator(0.03, 9), q.Tables).NextBatches(200)
	if len(bs) == 0 {
		t.Fatal("no batch available for the kill transaction")
	}
	err = remote.ApplyBatch(bs[0].Table, &Batch{rel: bs[0].Rel})
	if err == nil {
		t.Fatal("Apply succeeded after worker kill")
	}
	if len(feed) != feedLen {
		t.Fatalf("failed transaction leaked %d delta(s) to the subscriber", len(feed)-feedLen)
	}
	// Result stays at the pre-transaction commit.
	requireBitwiseEqual(t, "post-kill result", remote.Result().rel, preKill)

	// Every later transaction reports the poisoned cluster descriptively.
	err = remote.ApplyBatch(bs[0].Table, &Batch{rel: bs[0].Rel.Clone()})
	if err == nil {
		t.Fatal("Apply succeeded on a poisoned cluster")
	}
	if !strings.Contains(err.Error(), "results frozen at last commit") {
		t.Fatalf("poisoned Apply error not descriptive: %v", err)
	}
	requireBitwiseEqual(t, "poisoned result", remote.Result().rel, preKill)
}

// TestRemoteOptionValidation pins the constructor contract.
func TestRemoteOptionValidation(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	if _, err := New(q.Name, q.Def, bases, Remote()); err == nil {
		t.Fatal("Remote() with no addresses accepted")
	}
	if _, err := New(q.Name, q.Def, bases, Remote("127.0.0.1:1"), Distributed(2)); err == nil {
		t.Fatal("Remote combined with Distributed accepted")
	}
	// Unreachable workers fail construction, not the first Apply.
	if _, err := New(q.Name, q.Def, bases, Remote("127.0.0.1:1")); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

// TestRemoteFeedStream runs the keyed changefeed over its own socket:
// a FeedServer on the remote-backed engine streams deltas to a DialFeed
// subscriber, which must observe the same delta stream an in-process
// subscriber sees.
func TestRemoteFeedStream(t *testing.T) {
	q, err := tpch.QueryByName("Q1")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	addrs, _ := startWorkers(t, 2)
	eng, err := New(q.Name, q.Def, bases, Remote(addrs...), KeyRanks(tpch.PrimaryKeyRanks))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	fs, err := eng.ServeFeed("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	var local []string
	if _, err := eng.Subscribe(func(d Delta) { local = append(local, d.String()) }); err != nil {
		t.Fatal(err)
	}
	sub, err := DialFeed(fs.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	gen := tpch.NewGenerator(0.03, 5)
	stream := tpch.NewStream(gen, q.Tables)
	n := 0
	for r := 0; r < 3; r++ {
		for _, b := range stream.NextBatches(200) {
			if err := eng.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	for i := 0; i < n; i++ {
		d, err := sub.Recv()
		if err != nil {
			t.Fatalf("delta #%d: %v", i, err)
		}
		if got := d.String(); got != local[i] {
			t.Fatalf("remote delta #%d differs\n got %s\nwant %s", i, got, local[i])
		}
	}
}

// TestDialFeedRejectsUnknownView pins the registry feed's error path.
func TestDialFeedRejectsUnknownView(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRegistry(q.BaseSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("q6", q.Def); err != nil {
		t.Fatal(err)
	}
	fs, err := r.ServeFeed("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := DialFeed(fs.Addr(), "nope"); err == nil {
		t.Fatal("unknown view subscription accepted")
	} else if !strings.Contains(err.Error(), "unknown registered view") {
		t.Fatalf("rejection not descriptive: %v", err)
	}
	sub, err := DialFeed(fs.Addr(), "q6")
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
}

// TestEngineClose pins the lifecycle contract: Close is idempotent,
// and Apply/Warm/Subscribe on a closed engine (or registry) return an
// error wrapping ErrClosed instead of touching freed backends.
func TestEngineClose(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	eng, err := New(q.Name, q.Def, bases)
	if err != nil {
		t.Fatal(err)
	}
	gen := tpch.NewGenerator(0.03, 5)
	stream := tpch.NewStream(gen, q.Tables)
	for _, b := range stream.NextBatches(200) {
		if err := eng.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	err = eng.ApplyBatch("lineitem", &Batch{rel: mring.NewRelation(tpch.Schemas[tpch.Lineitem])})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v, want ErrClosed", err)
	}
	if _, err := eng.Subscribe(func(Delta) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close: %v, want ErrClosed", err)
	}
	// Result still serves the frozen state.
	if eng.Result().Len() == 0 {
		t.Fatal("Result empty after Close")
	}

	reg, err := NewRegistry(bases)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("q6", q.Def); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Apply(NewTx()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Registry.Apply after Close: %v, want ErrClosed", err)
	}
	if _, err := reg.Subscribe("q6", func(Delta) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Registry.Subscribe after Close: %v, want ErrClosed", err)
	}
}

// TestCloseFlushesPendingCoalesce pins that Close drains the tuner's
// pending buffer: transactions coalesced but not yet folded must be
// applied (and observable through Result) rather than dropped.
func TestCloseFlushesPendingCoalesce(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q.Name, q.Def, q.BaseSchemas(), AutoTune(TuneConfig{InitialBatch: 1 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	gen := tpch.NewGenerator(0.03, 5)
	stream := tpch.NewStream(gen, q.Tables)
	want := mring.NewRelation(tpch.Schemas[tpch.Lineitem])
	for _, b := range stream.NextBatches(300) {
		want.Merge(b.Rel)
		if err := eng.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
			t.Fatal(err)
		}
	}
	// The batch target is far above what we applied, so everything is
	// still pending in the coalesce buffer.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if eng.Result().Len() == 0 {
		t.Fatal("coalesced transactions dropped by Close")
	}
}

// TestIdleFlushLoop pins the controller-loop fix: a coalesced partial
// fold left idle must be flushed by the background loop without any
// later engine call, and Close must stop the loop (the -race run fails
// if it keeps touching a closed engine).
func TestIdleFlushLoop(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q.Name, q.Def, q.BaseSchemas(),
		AutoTune(TuneConfig{InitialBatch: 1 << 20, IdleFlush: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	gen := tpch.NewGenerator(0.03, 5)
	stream := tpch.NewStream(gen, q.Tables)
	for _, b := range stream.NextBatches(100) {
		if err := eng.ApplyBatch(b.Table, &Batch{rel: b.Rel}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		eng.beMu.Lock()
		pending := eng.tn.pendingTuples
		eng.beMu.Unlock()
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle-flush loop never drained the pending buffer (%d tuples left)", pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
