// Trading: detect unusually small fills against a per-symbol average —
// the correlated-nested-aggregate class (TPC-H Q17's shape, Sec. 3.2).
//
// The view maintains, per venue, the notional value of fills whose size
// is below 20% of the running average fill size of the same symbol. The
// nested average is equality-correlated on symbol, so domain extraction
// restricts re-evaluation to symbols present in each incoming batch.
package main

import (
	"fmt"
	"math/rand"

	ivm "repro"
)

func main() {
	// fills(symbol, venue, size, price)
	avgNum := ivm.Lift("sym_size", ivm.Sum(nil, ivm.Join(
		ivm.Table("fills", "symbol2", "venue2", "size2", "price2"),
		ivm.Cond(ivm.Eq, ivm.Col("symbol2"), ivm.Col("symbol")),
		ivm.Val(ivm.Col("size2")))))
	avgDen := ivm.Lift("sym_cnt", ivm.Sum(nil, ivm.Join(
		ivm.Table("fills", "symbol3", "venue3", "size3", "price3"),
		ivm.Cond(ivm.Eq, ivm.Col("symbol3"), ivm.Col("symbol")))))
	query := ivm.Sum([]string{"venue"}, ivm.Join(
		ivm.Table("fills", "symbol", "venue", "size", "price"),
		avgNum, avgDen,
		// size < 0.2 * avg(size over same symbol)
		ivm.Cond(ivm.Lt, ivm.Col("size"),
			ivm.Mul2(ivm.ConstF(0.2), ivm.Div(ivm.Col("sym_size"), ivm.Col("sym_cnt")))),
		ivm.Val(ivm.Mul2(ivm.Col("size"), ivm.Col("price")))))

	eng, err := ivm.New("odd_lots", query, map[string]ivm.Schema{
		"fills": {"symbol", "venue", "size", "price"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("maintenance program:")
	fmt.Println(eng.Program())

	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 50; batch++ {
		b := ivm.NewBatch(ivm.Schema{"symbol", "venue", "size", "price"})
		for i := 0; i < 200; i++ {
			symbol := rng.Intn(20)
			size := float64(1 + rng.Intn(1000))
			if rng.Intn(10) == 0 {
				size = float64(1 + rng.Intn(20)) // occasional odd lot
			}
			b.Insert(ivm.Tuple{
				ivm.Int(int64(symbol)),
				ivm.Int(int64(rng.Intn(4))),
				ivm.Float(size),
				ivm.Float(10 + rng.Float64()*500),
			})
		}
		eng.ApplyBatch("fills", b)
	}

	fmt.Println("suspicious notional per venue (fresh after every batch):")
	eng.Result().Foreach(func(t ivm.Tuple, agg float64) {
		fmt.Printf("  venue %v: %.0f\n", t[0], agg)
	})
}
