// Changefeed: subscribe to the per-transaction result deltas of a
// maintained view.
//
// Callers of dynamic query evaluation usually want the change stream,
// not repeated snapshots (cf. Berkholz–Keppeler–Schweikardt, "Answering
// FO+MOD queries under updates"). Engine.Subscribe delivers, after each
// applied transaction, exactly how every result group changed — the
// same stream on the local and the distributed backend, gathered in
// worker-index order so it is reproducible run to run.
package main

import (
	"fmt"

	ivm "repro"
)

func main() {
	// Per-product revenue over orders joined with a price list.
	query := ivm.Sum([]string{"product"}, ivm.Join(
		ivm.Table("prices", "product", "price"),
		ivm.Table("orders", "order_id", "product", "qty"),
		ivm.Val(ivm.Mul2(ivm.Col("price"), ivm.Col("qty")))))
	bases := map[string]ivm.Schema{
		"prices": {"product", "price"},
		"orders": {"order_id", "product", "qty"},
	}

	eng, err := ivm.New("revenue", query, bases,
		ivm.Distributed(8), ivm.KeyRanks(map[string]int{"order_id": 2}))
	if err != nil {
		panic(err)
	}

	// The subscriber sees every transaction's result delta; replaying
	// the stream into an empty map reconstructs the result exactly.
	replay := map[string]float64{}
	cancel, _ := eng.Subscribe(func(d ivm.Delta) {
		fmt.Printf("tx %d changed %d group(s):\n", d.Seq, d.Len())
		d.Foreach(func(group ivm.Tuple, change float64) {
			fmt.Printf("  product %v: %+g\n", group[0], change)
			replay[group.Key()] += change
			if replay[group.Key()] == 0 {
				delete(replay, group.Key())
			}
		})
	})
	defer cancel()

	// Price list arrives as a warm start: the initial (empty) result is
	// delta #1.
	prices := ivm.NewBatch(bases["prices"])
	prices.Insert(ivm.Row("apple", 3))
	prices.Insert(ivm.Row("pear", 2))
	if err := eng.Warm(map[string]*ivm.Batch{"prices": prices}); err != nil {
		panic(err)
	}

	// A multi-table transaction: new product and its first orders fold
	// atomically — subscribers see one combined delta.
	tx := eng.NewTx()
	tx.Insert("prices", ivm.Row("plum", 5))
	tx.Insert("orders", ivm.Row(1, "plum", 10))
	tx.Insert("orders", ivm.Row(2, "apple", 4))
	if err := eng.Apply(tx); err != nil {
		panic(err)
	}

	// Retraction shows up as a negative change.
	undo := eng.NewTx()
	undo.Delete("orders", ivm.Row(1, "plum", 10))
	if err := eng.Apply(undo); err != nil {
		panic(err)
	}

	fmt.Println("\nfinal result:", eng.Result())
	fmt.Println("replayed groups:", len(replay))
}
