// Quickstart: maintain a grouped join aggregate incrementally.
//
// The query is Example 2.1 of the paper: COUNT(*) over the natural join
// of R(A,B), S(B,C), T(C,D), grouped by B. ivm.New compiles it into a
// recursive maintenance program (inspect it with Program()); every
// transaction refreshes the result in time proportional to the batch,
// not the data.
package main

import (
	"fmt"

	ivm "repro"
)

func main() {
	query := ivm.Sum([]string{"B"}, ivm.Join(
		ivm.Table("R", "A", "B"),
		ivm.Table("S", "B", "C"),
		ivm.Table("T", "C", "D")))

	eng, err := ivm.New("Q", query, map[string]ivm.Schema{
		"R": {"A", "B"}, "S": {"B", "C"}, "T": {"C", "D"},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("compiled maintenance program:")
	fmt.Println(eng.Program())

	// One atomic transaction touching all three tables: the result
	// reflects none or all of it.
	tx := eng.NewTx()
	tx.Insert("R", ivm.Row(1, 10))
	tx.Insert("R", ivm.Row(2, 10))
	tx.Insert("S", ivm.Row(10, 100))
	tx.Insert("T", ivm.Row(100, 7))
	tx.Insert("T", ivm.Row(100, 8))
	if err := eng.Apply(tx); err != nil {
		panic(err)
	}
	fmt.Println("result after the transaction:", eng.Result())

	// Deletions retract incrementally too (single-table sugar).
	del := ivm.NewBatch(ivm.Schema{"A", "B"})
	del.Delete(ivm.Row(1, 10))
	if err := eng.ApplyBatch("R", del); err != nil {
		panic(err)
	}
	fmt.Println("result after deleting R(1,10):", eng.Result())
}
