// Quickstart: maintain a grouped join aggregate incrementally.
//
// The query is Example 2.1 of the paper: COUNT(*) over the natural join
// of R(A,B), S(B,C), T(C,D), grouped by B. The engine compiles it into a
// recursive maintenance program (inspect it with Program()); every batch
// refreshes the result in time proportional to the batch, not the data.
package main

import (
	"fmt"

	ivm "repro"
)

func main() {
	query := ivm.Sum([]string{"B"}, ivm.Join(
		ivm.Table("R", "A", "B"),
		ivm.Table("S", "B", "C"),
		ivm.Table("T", "C", "D")))

	eng, err := ivm.NewEngine("Q", query, map[string]ivm.Schema{
		"R": {"A", "B"}, "S": {"B", "C"}, "T": {"C", "D"},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("compiled maintenance program:")
	fmt.Println(eng.Program())

	// Stream some updates.
	r := ivm.NewBatch(ivm.Schema{"A", "B"})
	r.Insert(ivm.Row(1, 10))
	r.Insert(ivm.Row(2, 10))
	eng.ApplyBatch("R", r)

	s := ivm.NewBatch(ivm.Schema{"B", "C"})
	s.Insert(ivm.Row(10, 100))
	eng.ApplyBatch("S", s)

	t := ivm.NewBatch(ivm.Schema{"C", "D"})
	t.Insert(ivm.Row(100, 7))
	t.Insert(ivm.Row(100, 8))
	eng.ApplyBatch("T", t)

	fmt.Println("result after inserts:", eng.Result())

	// Deletions retract incrementally too.
	del := ivm.NewBatch(ivm.Schema{"A", "B"})
	del.Delete(ivm.Row(1, 10))
	eng.ApplyBatch("R", del)
	fmt.Println("result after deleting R(1,10):", eng.Result())
}
