// Distributed: deploy an incremental view across a simulated synchronous
// cluster (Sec. 4) and watch the per-batch platform metrics.
//
// The engine is the same ivm.Engine as the local one — the Distributed
// option swaps the backend. The customer dimension loads through Warm
// (partitioned across the workers by the deployed placement), and the
// compiled trigger programs show the scatter/repartition rounds and
// fused statement blocks.
package main

import (
	"fmt"
	"math/rand"

	ivm "repro"
)

func main() {
	// revenue(region) over orders(order_id, cust_id, amount) joined with
	// customers(cust_id, region).
	query := ivm.Sum([]string{"region"}, ivm.Join(
		ivm.Table("customers", "cust_id", "region"),
		ivm.Table("orders", "order_id", "cust_id", "amount"),
		ivm.Val(ivm.Col("amount"))))

	bases := map[string]ivm.Schema{
		"orders":    {"order_id", "cust_id", "amount"},
		"customers": {"cust_id", "region"},
	}
	keyRanks := map[string]int{"order_id": 2, "cust_id": 1}

	eng, err := ivm.New("revenue", query, bases,
		ivm.Distributed(16), ivm.KeyRanks(keyRanks))
	if err != nil {
		panic(err)
	}
	fmt.Println("distributed trigger for orders batches:")
	fmt.Println(eng.TriggerProgram("orders"))

	// Warm-start the customer dimension: the initial table partitions
	// across the workers exactly like streamed data would.
	cust := ivm.NewBatch(bases["customers"])
	for c := 0; c < 500; c++ {
		cust.Insert(ivm.Row(c, c%5))
	}
	if err := eng.Warm(map[string]*ivm.Batch{"customers": cust}); err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(3))
	for batch := 0; batch < 5; batch++ {
		b := ivm.NewBatch(bases["orders"])
		for i := 0; i < 5000; i++ {
			b.Insert(ivm.Tuple{
				ivm.Int(int64(batch*5000 + i)),
				ivm.Int(int64(rng.Intn(500))),
				ivm.Float(rng.Float64() * 100),
			})
		}
		if err := eng.ApplyBatch("orders", b); err != nil {
			panic(err)
		}
		m := eng.LastMetrics()
		fmt.Printf("batch %d: virtual latency %v, shuffled %d KB over %d stages\n",
			batch, m.Latency.Round(1e6), m.ShuffledBytes/1024, m.Stages)
	}

	fmt.Println("\nrevenue per region:")
	eng.Result().Foreach(func(t ivm.Tuple, agg float64) {
		fmt.Printf("  region %v: %.0f\n", t[0], agg)
	})
}
