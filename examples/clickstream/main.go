// Clickstream: maintain DISTINCT-style analytics over a click stream.
//
// The query counts, per page, the number of distinct sessions that spent
// more than a threshold on the page — the duplicate-elimination class of
// Sec. 3.2.2 (Example 3.2). The delta of DISTINCT re-evaluates the query
// unless domain extraction restricts it to the sessions touched by the
// batch; the compiled program shows the extracted domain as the Exists
// prefix of the top statement.
package main

import (
	"fmt"
	"math/rand"

	ivm "repro"
)

func main() {
	// clicks(session, page, dwell_ms)
	// SELECT page, COUNT(DISTINCT session) FROM clicks WHERE dwell_ms > 800
	distinct := ivm.Exists(ivm.Sum([]string{"page", "session"},
		ivm.Join(
			ivm.Table("clicks", "session", "page", "dwell_ms"),
			ivm.Cond(ivm.Gt, ivm.Col("dwell_ms"), ivm.ConstI(800)))))
	query := ivm.Sum([]string{"page"}, distinct)

	eng, err := ivm.New("engaged_sessions", query, map[string]ivm.Schema{
		"clicks": {"session", "page", "dwell_ms"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("maintenance program (note the domain-extraction prefix):")
	fmt.Println(eng.Program())

	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 20; batch++ {
		b := ivm.NewBatch(ivm.Schema{"session", "page", "dwell_ms"})
		for i := 0; i < 500; i++ {
			b.Insert(ivm.Row(rng.Intn(200), rng.Intn(8), rng.Intn(2000)))
		}
		eng.ApplyBatch("clicks", b)
	}
	fmt.Println("\ndistinct engaged sessions per page:")
	eng.Result().Foreach(func(t ivm.Tuple, agg float64) {
		fmt.Printf("  page %v: %g sessions\n", t[0], agg)
	})

	// Sessions can be retracted (GDPR delete): replay a session's clicks
	// with negative multiplicity and the distinct counts stay exact.
	deleteSession := ivm.NewBatch(ivm.Schema{"session", "page", "dwell_ms"})
	rng2 := rand.New(rand.NewSource(1))
	for batch := 0; batch < 20; batch++ {
		for i := 0; i < 500; i++ {
			s, p, d := rng2.Intn(200), rng2.Intn(8), rng2.Intn(2000)
			if s == 42 {
				deleteSession.Delete(ivm.Row(s, p, d))
			}
		}
	}
	eng.ApplyBatch("clicks", deleteSession)
	fmt.Println("\nafter retracting session 42:")
	eng.Result().Foreach(func(t ivm.Tuple, agg float64) {
		fmt.Printf("  page %v: %g sessions\n", t[0], agg)
	})
}
