package ivm

import "fmt"

// Tx is an atomic multi-table transaction: per-table update batches
// that Engine.Apply folds into the maintained views in one maintenance
// step. Tables fold in first-touch order, which is also the order the
// per-table triggers run in, so two engines fed the same transactions
// stay bitwise in lockstep.
//
// Build one with NewTx (register batches with Put or Batch) or with
// Engine.NewTx, which knows the engine's base schemas and lets
// Insert/Delete/Change create batches on demand:
//
//	tx := eng.NewTx()
//	tx.Insert("R", ivm.Row(1, 10))
//	tx.Delete("S", ivm.Row(10, 7))
//	err := eng.Apply(tx)
type Tx struct {
	order   []string
	batches map[string]*Batch
	// bases supplies schemas for batches created on demand; nil on a
	// standalone Tx.
	bases map[string]Schema
}

// NewTx returns an empty standalone transaction. Batches must be
// registered explicitly (Put, Batch); prefer Engine.NewTx when an
// engine is at hand.
func NewTx() *Tx {
	return &Tx{batches: make(map[string]*Batch)}
}

// NewTx returns an empty transaction bound to the engine's base
// schemas, so Insert/Delete/Change can create per-table batches on
// demand and reject unknown tables immediately.
func (e *Engine) NewTx() *Tx {
	tx := NewTx()
	tx.bases = e.prog.Bases
	return tx
}

// Batch returns the transaction's update batch for table, creating an
// empty one with the given schema on first use.
func (tx *Tx) Batch(table string, schema Schema) *Batch {
	if b, ok := tx.batches[table]; ok {
		return b
	}
	b := NewBatch(schema)
	tx.batches[table] = b
	tx.order = append(tx.order, table)
	return b
}

// Put registers a prepared batch for table (the transaction owns it
// afterwards), merging when the transaction already holds one for the
// table. Nil and schema-mismatched batches are rejected.
func (tx *Tx) Put(table string, b *Batch) error {
	if b == nil {
		return fmt.Errorf("ivm: nil batch for table %q", table)
	}
	if have, ok := tx.batches[table]; ok {
		if !have.rel.Schema().Equal(b.rel.Schema()) {
			return fmt.Errorf("ivm: batch schema %v for table %q does not match the transaction's %v",
				[]string(b.rel.Schema()), table, []string(have.rel.Schema()))
		}
		have.rel.Merge(b.rel)
		return nil
	}
	tx.batches[table] = b
	tx.order = append(tx.order, table)
	return nil
}

// batchFor resolves (or creates, when schemas are known) the batch for
// table.
func (tx *Tx) batchFor(table string) (*Batch, error) {
	if b, ok := tx.batches[table]; ok {
		return b, nil
	}
	if tx.bases == nil {
		return nil, fmt.Errorf("ivm: table %q has no batch in this transaction; register one with Put/Batch, or build the Tx with Engine.NewTx", table)
	}
	schema, ok := tx.bases[table]
	if !ok {
		return nil, fmt.Errorf("ivm: unknown table %q (engine has: %s)", table, knownTables(tx.bases))
	}
	return tx.Batch(table, schema), nil
}

// Insert adds one insertion to the table's batch.
func (tx *Tx) Insert(table string, t Tuple) error {
	b, err := tx.batchFor(table)
	if err != nil {
		return err
	}
	return b.Insert(t)
}

// Delete adds one deletion to the table's batch.
func (tx *Tx) Delete(table string, t Tuple) error {
	b, err := tx.batchFor(table)
	if err != nil {
		return err
	}
	return b.Delete(t)
}

// Change adds a tuple with an explicit multiplicity delta to the
// table's batch.
func (tx *Tx) Change(table string, t Tuple, delta float64) error {
	b, err := tx.batchFor(table)
	if err != nil {
		return err
	}
	return b.Change(t, delta)
}

// Tables returns the updated tables in fold order (first touch).
func (tx *Tx) Tables() []string {
	return append([]string(nil), tx.order...)
}

// Len returns the total number of distinct changed tuples across all
// tables.
func (tx *Tx) Len() int {
	n := 0
	for _, b := range tx.batches {
		n += b.Len()
	}
	return n
}
