package ivm

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/mring"
	"repro/internal/tune"
)

// Stats reports an engine's (or registry's) accumulated runtime
// statistics: the embedded evaluation counters (lookups, scans, emits,
// index builds — merged deterministically across nodes on the
// distributed backend), per-worker stage timings, per-index admission
// state, and the self-tuning controller's state. Snapshots are taken
// under the backend lock, so they are safe to read concurrently with
// Apply.
type Stats struct {
	eval.Stats
	// Workers holds each worker's accumulated distributed-stage compute
	// in worker-index order (nil on the local backend). Compute is the
	// per-worker sum of virtual stage compute — the term whose per-stage
	// maximum is Metrics.ComputeMax — and Stages counts the distributed
	// stages the worker ran. A max/mean ratio over Compute far above 1
	// is partition skew; this is the signal AutoTune's repartitioning
	// feedback consumes, exported so users can see it too.
	Workers []WorkerTiming
	// Indexes holds the per-index probe/maintenance counters driving
	// index admission, aggregated per (view, columns) across fragments
	// and sorted by view name then column mask. Populated on both
	// backends whether or not AutoTune is enabled.
	Indexes []IndexStat
	// Tuning is the adaptive controller's state; Enabled is false (and
	// the rest zero) without the AutoTune option.
	Tuning TuningStats
	// Durability is the WAL/checkpoint subsystem's state; Enabled is
	// false (and the rest zero) without the Durable option.
	Durability DurabilityStats
}

// WorkerTiming is one worker's accumulated stage timing (see
// Stats.Workers).
type WorkerTiming = cluster.WorkerTiming

// IndexStat is the admission state of one secondary index, identified
// by view and bound-column positions. Counters reset on demotion and
// readmission, so they describe the current admission episode.
type IndexStat struct {
	View string
	Cols []int
	// Probes counts probes served by the index; Maintains counts
	// incremental maintenance operations applied to it; ScanProbes
	// counts probes answered by the scan fallback while demoted.
	Probes, Maintains, ScanProbes int64
	// Demoted reports whether the admission policy currently has this
	// index demoted to on-demand scans.
	Demoted bool
}

// TuningStats is the self-tuning controller's state (see AutoTune).
type TuningStats struct {
	// Enabled reports whether the engine was built with AutoTune.
	Enabled bool
	// BatchTarget is the controller's current effective maintenance
	// batch size (tuples per fold); Settled reports whether the hill
	// climb has converged and frozen it.
	BatchTarget int
	Settled     bool
	// Throughput is the last measured controller window's mean
	// maintenance throughput in tuples/sec.
	Throughput float64
	// Imbalance is the EWMA-smoothed max/mean per-worker compute ratio
	// (0 on the local backend or before the first distributed fold).
	Imbalance float64
	// Coalesced counts transactions deferred into the pending buffer,
	// Flushes the target-sized folds that drained it, and Splits the
	// oversized batches split across folds.
	Coalesced, Flushes, Splits int64
	// Repartitions counts skew-triggered placement changes that were
	// actually deployed.
	Repartitions int64
	// Demotions and Readmissions count index admission actions.
	Demotions, Readmissions int64
}

// TuneConfig overrides the self-tuning defaults; the zero value (and
// any zero field) means the calibrated default. See AutoTune.
type TuneConfig struct {
	// MinBatch/MaxBatch bound the effective maintenance batch size the
	// controller may choose; InitialBatch is its starting point
	// (defaults 64 / 65536 / 1024).
	MinBatch, MaxBatch, InitialBatch int
	// Window is the number of folds measured per controller step
	// (default 4); Hysteresis the relative-throughput dead band that
	// prevents oscillation (default 0.05).
	Window     int
	Hysteresis float64
	// SkewThreshold is the max/mean per-worker compute imbalance above
	// which repartitioning is considered (default 1.5); SkewPatience
	// consecutive observations must exceed it (default 3), and
	// SkewCooldown observations follow every attempt (default 16).
	SkewThreshold              float64
	SkewPatience, SkewCooldown int
	// DemoteAfter is the minimum maintenance ops before an index can be
	// judged cold (default 4096); an index is demoted when
	// Probes*ColdRatio < Maintains (default ratio 16) and readmitted
	// after ReadmitProbes scan-fallback probes (default 64). SweepEvery
	// is the number of folds between admission sweeps (default 32).
	DemoteAfter, ColdRatio, ReadmitProbes int64
	SweepEvery                            int
	// IdleFlush is how long a coalesced partial fold may sit in the
	// pending buffer before the controller loop flushes it anyway
	// (default 200ms). The loop only runs on the real clock; injecting
	// Now disables it (tests drive flushes explicitly).
	IdleFlush time.Duration
	// Now is the clock used to time folds; tests inject a deterministic
	// one. Nil means time.Now.
	Now func() time.Time
}

func (tc TuneConfig) internal() tune.Config {
	return tune.Config{
		MinBatch: tc.MinBatch, MaxBatch: tc.MaxBatch, InitialBatch: tc.InitialBatch,
		Window: tc.Window, Hysteresis: tc.Hysteresis,
		SkewThreshold: tc.SkewThreshold, SkewPatience: tc.SkewPatience, SkewCooldown: tc.SkewCooldown,
		DemoteAfter: tc.DemoteAfter, ColdRatio: tc.ColdRatio, ReadmitProbes: tc.ReadmitProbes,
		SweepEvery: tc.SweepEvery, Now: tc.Now,
	}.WithDefaults()
}

// AutoTune enables the self-tuning runtime: one adaptive controller
// loop per engine/registry that (a) grows or shrinks the effective
// maintenance batch size from measured tuples/sec with a hill-climbing
// controller, coalescing and splitting incoming transactions at the
// engine boundary; (b) on the distributed backend, feeds measured
// per-worker skew back into the partitioning heuristic and recompiles
// to a better placement between transactions; and (c) demotes cold
// secondary indexes (probed ≪ maintained) to on-demand scans,
// readmitting them when probe traffic returns.
//
// Tuning never changes result semantics, only cost: coalesced
// transactions are flushed before anything observes engine state
// (Result, Stats, Metrics, Warm, Subscribe, and any transaction
// delivered to subscribers), and every actuation — batch re-chunking,
// repartitioning, index demotion — happens strictly between backend
// transactions. While changefeed subscribers are attached, transactions
// are never coalesced at all, so each subscriber still observes exact
// per-transaction deltas. A deferred transaction's backend error
// surfaces on the call that triggers the flush (or the next Apply).
func AutoTune(cfg ...TuneConfig) Option {
	return func(c *engineConfig) {
		c.autoTune = true
		if len(cfg) > 0 {
			c.tuneCfg = cfg[0]
		}
	}
}

// tuner is the per-serving adaptive controller loop: it owns the
// pending (coalesced) transaction buffer and the three controllers.
// All fields are guarded by serving.beMu.
type tuner struct {
	cfg  tune.Config
	ctrl *tune.BatchController
	skew *tune.SkewMonitor
	pol  *tune.IndexPolicy

	pendingOrder  []string // first-appended order of tables in pending
	pending       map[string]*mring.Relation
	pendingTuples int

	lastWorker []time.Duration // previous WorkerTimings snapshot
	sinceSweep int

	coalesced, flushes, splits, repartitions int64

	// err is a flush error raised on a path that cannot return it
	// (Engine.Stats, Result, the idle-flush loop); surfaced on the next
	// Apply (or Close).
	err error

	// Controller-loop state: the loop periodically flushes a pending
	// partial fold that no later transaction topped up. It only exists
	// on the real clock (realClock), and Close must stop it — leaking it
	// on an abandoned engine pins the serving (and its backend) forever.
	realClock bool
	idleFlush time.Duration
	lastApply time.Time
	loopStop  chan struct{}
	loopDone  chan struct{}
}

func newTuner(cfg *engineConfig) *tuner {
	if !cfg.autoTune {
		return nil
	}
	tc := cfg.tuneCfg.internal()
	idle := cfg.tuneCfg.IdleFlush
	if idle <= 0 {
		idle = 200 * time.Millisecond
	}
	return &tuner{
		cfg:       tc,
		ctrl:      tune.NewBatchController(tc),
		skew:      tune.NewSkewMonitor(tc),
		pol:       tune.NewIndexPolicy(tc),
		pending:   make(map[string]*mring.Relation),
		realClock: cfg.tuneCfg.Now == nil,
		idleFlush: idle,
	}
}

// startLoop spawns the idle-flush controller loop. Only the real clock
// gets a goroutine: under an injected clock (tests) time is virtual and
// the loop could never observe idleness deterministically.
func (tn *tuner) startLoop(s *serving) {
	if !tn.realClock {
		return
	}
	tn.loopStop = make(chan struct{})
	tn.loopDone = make(chan struct{})
	go func() {
		defer close(tn.loopDone)
		tick := time.NewTicker(tn.idleFlush / 2)
		defer tick.Stop()
		for {
			select {
			case <-tn.loopStop:
				return
			case <-tick.C:
			}
			s.beMu.Lock()
			if !s.closed && tn.pendingTuples > 0 && time.Since(tn.lastApply) >= tn.idleFlush {
				if err := tn.drainLocked(s, true); err != nil && tn.err == nil {
					tn.err = err
				}
			}
			s.beMu.Unlock()
		}
	}()
}

// stopLoop stops the idle-flush loop and waits for it to exit. Must be
// called without serving.beMu held — the loop takes it per tick.
func (tn *tuner) stopLoop() {
	if tn.loopStop == nil {
		return
	}
	close(tn.loopStop)
	<-tn.loopDone
	tn.loopStop = nil
}

// applyLocked processes one validated transaction under serving.beMu.
// With subscribers attached (capture non-empty) it drains the pending
// buffer and applies the transaction directly — subscribers get exact
// per-transaction deltas, so coalescing is off. Without subscribers the
// transaction is absorbed into the pending buffer, which drains in
// target-sized folds whenever at least one full fold has accumulated.
func (tn *tuner) applyLocked(s *serving, batches []compile.TableBatch, capture []string) (map[string]*mring.Relation, error) {
	if tn.realClock {
		tn.lastApply = time.Now()
	}
	if len(capture) > 0 {
		if err := tn.drainLocked(s, true); err != nil {
			return nil, err
		}
		n := 0
		for _, tb := range batches {
			n += tb.Batch.Len()
		}
		start := tn.cfg.Now()
		deltas, err := s.be.ApplyTx(batches, capture)
		if err != nil {
			return nil, err
		}
		tn.ctrl.Observe(n, tn.cfg.Now().Sub(start))
		return deltas, tn.afterFoldLocked(s)
	}
	for _, tb := range batches {
		if rel := tn.pending[tb.Table]; rel != nil {
			rel.Merge(tb.Batch)
		} else {
			// The transaction owns its batches (see Tx.Put), so absorbing
			// the relation itself is safe.
			tn.pending[tb.Table] = tb.Batch
			tn.pendingOrder = append(tn.pendingOrder, tb.Table)
		}
	}
	tn.recountPending()
	tn.coalesced++
	return nil, tn.drainLocked(s, false)
}

// recountPending recomputes the pending tuple count (merging can cancel
// tuples, so incremental counting would drift).
func (tn *tuner) recountPending() {
	n := 0
	for _, rel := range tn.pending {
		n += rel.Len()
	}
	tn.pendingTuples = n
}

// drainLocked applies the pending buffer in target-sized folds: every
// complete fold is applied and timed, and the controller observes its
// throughput. With all=false a final partial fold stays pending (to be
// topped up by the next transaction); with all=true everything flushes.
func (tn *tuner) drainLocked(s *serving, all bool) error {
	for tn.pendingTuples > 0 {
		target := tn.ctrl.Target()
		if !all && tn.pendingTuples < target {
			return nil
		}
		chunk, n := tn.takeChunk(target)
		if n == 0 {
			return nil
		}
		start := tn.cfg.Now()
		if _, err := s.be.ApplyTx(chunk, nil); err != nil {
			return err
		}
		tn.ctrl.Observe(n, tn.cfg.Now().Sub(start))
		tn.flushes++
		if err := tn.afterFoldLocked(s); err != nil {
			return err
		}
	}
	return nil
}

// takeChunk removes up to target tuples from the pending buffer, in
// table order, splitting the last table's batch when it would overshoot.
func (tn *tuner) takeChunk(target int) ([]compile.TableBatch, int) {
	var out []compile.TableBatch
	n := 0
	for len(tn.pendingOrder) > 0 && n < target {
		table := tn.pendingOrder[0]
		rel := tn.pending[table]
		if rel.Len() == 0 {
			delete(tn.pending, table)
			tn.pendingOrder = tn.pendingOrder[1:]
			continue
		}
		if n+rel.Len() <= target {
			out = append(out, compile.TableBatch{Table: table, Batch: rel})
			n += rel.Len()
			delete(tn.pending, table)
			tn.pendingOrder = tn.pendingOrder[1:]
			continue
		}
		take := target - n
		part, rest := splitRelation(rel, take)
		tn.pending[table] = rest
		tn.splits++
		out = append(out, compile.TableBatch{Table: table, Batch: part})
		n += take
		break
	}
	tn.pendingTuples -= n
	return out, n
}

// splitRelation moves the first take tuples (in iteration order) of rel
// into part, the rest into rest. Which tuples land in which fold does
// not affect maintained results — folding is additive — only cost.
func splitRelation(rel *mring.Relation, take int) (part, rest *mring.Relation) {
	part = mring.NewRelation(rel.Schema())
	rest = mring.NewRelation(rel.Schema())
	i := 0
	rel.Foreach(func(t mring.Tuple, m float64) {
		if i < take {
			part.Add(t, m)
		} else {
			rest.Add(t, m)
		}
		i++
	})
	return part, rest
}

// afterFoldLocked runs the between-transaction actuation: skew feedback
// into repartitioning, and periodic index-admission sweeps.
func (tn *tuner) afterFoldLocked(s *serving) error {
	if wt := s.be.WorkerTimings(); len(wt) >= 2 {
		cur := make([]time.Duration, len(wt))
		for i, w := range wt {
			cur[i] = w.Compute
		}
		delta := make([]time.Duration, len(cur))
		for i := range cur {
			delta[i] = cur[i]
			if tn.lastWorker != nil && i < len(tn.lastWorker) {
				delta[i] -= tn.lastWorker[i]
			}
		}
		tn.lastWorker = cur
		if tn.skew.Observe(delta) {
			changed, err := s.be.Rebalance()
			tn.skew.NoteRebalance(changed)
			if err != nil {
				return err
			}
			if changed {
				tn.repartitions++
			}
		}
	}
	tn.sinceSweep++
	if tn.sinceSweep >= tn.cfg.SweepEvery {
		tn.sinceSweep = 0
		s.be.ForEachRelation(func(_ string, r *mring.Relation) {
			tn.pol.Sweep(r)
		})
	}
	return nil
}

// takeErr returns and clears a deferred flush error.
func (tn *tuner) takeErr() error {
	err := tn.err
	tn.err = nil
	return err
}

func (tn *tuner) snapshot() TuningStats {
	return TuningStats{
		Enabled:      true,
		BatchTarget:  tn.ctrl.Target(),
		Settled:      tn.ctrl.Settled(),
		Throughput:   tn.ctrl.Throughput(),
		Imbalance:    tn.skew.Imbalance(),
		Coalesced:    tn.coalesced,
		Flushes:      tn.flushes,
		Splits:       tn.splits,
		Repartitions: tn.repartitions,
		Demotions:    tn.pol.Demotions,
		Readmissions: tn.pol.Readmissions,
	}
}
