// Command hotdog regenerates the paper's tables and figures on the
// scaled-down workloads. Run with no arguments for the full sweep, or
// name experiments:
//
//	hotdog [flags] [fig5 fig7 fig8 fig9 fig10 fig12 fig13 table1 table2
//	                table3 ablations ablation-domain ablation-columnar
//	                memory]
//
// Flags:
//
//	-sf float      TPC-H/DS scale factor (default 0.5)
//	-quick         shrink distributed sweeps for a fast pass
//	-queries list  comma-separated query filter for local experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.5, "TPC-H/TPC-DS scale factor")
	quick := flag.Bool("quick", false, "shrink distributed sweeps")
	queries := flag.String("queries", "", "comma-separated query filter (local experiments)")
	flag.Parse()

	lcfg := bench.DefaultLocalConfig()
	lcfg.SF = *sf
	if *queries != "" {
		lcfg.Queries = strings.Split(*queries, ",")
	}
	dcfg := bench.DefaultDistConfig()
	if *quick {
		dcfg.WeakWorkers = []int{4, 8, 16, 32}
		dcfg.PerWorkerBatch = 100
		dcfg.StrongWorkers = []int{4, 8, 16, 32}
		dcfg.StrongBatches = []int{2000, 4000}
		dcfg.BatchesPerPoint = 1
	}

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	all := []experiment{
		{"table3", func() (*bench.Table, error) { return bench.Table3() }},
		{"fig5", func() (*bench.Table, error) { return bench.Fig5() }},
		{"fig7", func() (*bench.Table, error) { return bench.Fig7(lcfg) }},
		{"fig8", func() (*bench.Table, error) { return bench.Fig8(lcfg) }},
		{"table1", func() (*bench.Table, error) { return bench.Table1(lcfg) }},
		{"table2", func() (*bench.Table, error) { return bench.Table2(lcfg) }},
		{"fig12", func() (*bench.Table, error) { return bench.Fig12(lcfg) }},
		{"fig9", func() (*bench.Table, error) { return bench.Fig9(dcfg) }},
		{"fig10", func() (*bench.Table, error) { return bench.Fig10(dcfg) }},
		{"fig13", func() (*bench.Table, error) { return bench.Fig13(dcfg) }},
		{"ablations", func() (*bench.Table, error) { return bench.AblationPreAgg(lcfg) }},
		{"ablation-domain", func() (*bench.Table, error) { return bench.AblationDomainExtraction(lcfg) }},
		{"ablation-columnar", func() (*bench.Table, error) { return bench.AblationColumnarShuffle(dcfg) }},
		{"memory", func() (*bench.Table, error) { return bench.MemoryReport(lcfg) }},
	}

	want := flag.Args()
	selected := func(name string) bool {
		if len(want) == 0 {
			return true
		}
		for _, w := range want {
			if w == name {
				return true
			}
		}
		return false
	}

	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	failed := false
	for _, w := range want {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", w)
			failed = true
		}
	}
	for _, e := range all {
		if !selected(e.name) {
			continue
		}
		start := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Println(tab.Render())
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
