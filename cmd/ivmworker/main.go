// Command ivmworker runs one process-cluster worker: it listens for a
// driver connection on the framed TCP transport and serves the cluster
// protocol until killed. Drivers connect with ivm.Remote(addrs...).
//
// The chosen listen address is printed to stdout as "LISTEN <addr>" so
// harnesses can start workers on port 0 and read the ports back.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	inet "repro/internal/net"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
	flag.Parse()

	srv, err := cluster.ListenAndServeWorker(inet.TCP{}, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivmworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", srv.Addr())
	os.Stdout.Sync()
	select {} // serve until killed
}
