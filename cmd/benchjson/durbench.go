package main

// Durability measurements for the tier-2 report: WAL append throughput
// under each fsync policy, and recovery time as a function of the
// WAL-tail length — the paired full-log/checkpoint-bounded rows show
// that checkpointing bounds recovery instead of replaying history.

import (
	"fmt"
	"os"
	"sort"
	"time"

	ivm "repro"
	"repro/internal/store"
	"repro/internal/tpch"
)

// benchWALAppend measures committed-record append throughput (records
// per second) of the WAL under one fsync policy. Each record carries a
// ~4 KiB single-table payload, about the size of a 50-row lineitem
// transaction on the engine path.
func benchWALAppend(syncEvery int) (float64, error) {
	dir, err := os.MkdirTemp("", "ivm-walbench-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(dir, store.Options{SyncEvery: syncEvery})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	rec := store.Record{Kind: store.RecTx, Tables: []store.TableFrag{
		{Table: tpch.Lineitem, Buckets: 64, Payload: payload},
	}}
	var appendErr error
	ops := measure(300*time.Millisecond, 1, func() {
		if err := st.Append(rec); err != nil && appendErr == nil {
			appendErr = err
		}
	})
	return ops, appendErr
}

// benchRecovery streams txs committed transactions into a durable Q6
// engine, abandons it un-Closed (a crash), and times the reopen. With
// every == 0 checkpoints never fire, so the whole log replays; with a
// positive period only the tail since the last snapshot does. Returns
// the median reopen time over three crashes and the replayed tail
// length (identical across runs — the stream is deterministic).
func benchRecovery(sf float64, txRows, every int) (millis float64, replayed int, err error) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		return 0, 0, err
	}
	var opts []ivm.DurOpt
	if every > 0 {
		opts = append(opts, ivm.CheckpointEvery(every))
	}
	times := make([]float64, 3)
	for i := range times {
		dir, err := os.MkdirTemp("", "ivm-recbench-*")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		e, err := ivm.New(q.Name, q.Def, q.BaseSchemas(), ivm.Durable(dir, opts...))
		if err != nil {
			return 0, 0, err
		}
		stream := tpch.NewStream(tpch.NewGenerator(sf, 1), q.Tables)
		for {
			tx := e.NewTx()
			n := 0
			for ; n < txRows; n++ {
				ev, ok := stream.Next()
				if !ok {
					break
				}
				if err := tx.Insert(ev.Table, ev.Tuple); err != nil {
					return 0, 0, err
				}
			}
			if n == 0 {
				break
			}
			if err := e.Apply(tx); err != nil {
				return 0, 0, err
			}
		}
		// Crash: the engine is abandoned without Close, so no final
		// checkpoint hides the replay cost being measured.
		start := time.Now()
		re, err := ivm.New(q.Name, q.Def, q.BaseSchemas(), ivm.Durable(dir, opts...))
		if err != nil {
			return 0, 0, err
		}
		times[i] = float64(time.Since(start).Microseconds()) / 1000
		replayed = re.Stats().Durability.Recovery.ReplayedRecords
		re.Close()
	}
	sort.Float64s(times)
	return times[1], replayed, nil
}

// appendDurabilityResults runs the durability benchmarks and appends
// their rows to the report.
func appendDurabilityResults(rep *Report, sf float64) error {
	for _, p := range []struct {
		name string
		sync int
	}{{"fsync", 1}, {"group-8", 8}, {"nofsync", -1}} {
		ops, err := benchWALAppend(p.sync)
		if err != nil {
			return err
		}
		fmt.Printf("WALAppend/%s: %.0f records/sec\n", p.name, ops)
		rep.Results = append(rep.Results, Result{Name: "WALAppend/" + p.name, OpsPerSec: ops})
	}
	for _, p := range []struct {
		name  string
		every int
	}{{"full-log", 0}, {"checkpoint-bounded", 25}} {
		ms, replayed, err := benchRecovery(sf, 20, p.every)
		if err != nil {
			return err
		}
		fmt.Printf("Recovery/%s: %.1f ms reopen, %d records replayed\n", p.name, ms, replayed)
		rep.Results = append(rep.Results, Result{
			Name:            "Recovery/" + p.name,
			Query:           "Q6",
			Millis:          ms,
			ReplayedRecords: replayed,
		})
	}
	return nil
}
