// Command benchjson runs the tier-2 benchmark suite's representative
// measurements and writes them to a JSON file (BENCH_<pr>.json), so the
// performance trajectory of the engine is tracked in-repo from PR 2
// onward. It records the storage-layer microbenchmark (hash-native
// relation vs. the string-keyed reference it replaced), the local Q3
// maintenance stream, and the distributed Q3 deployment with its shuffle
// volume.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/mring"
	"repro/internal/tpch"
)

// Result is one benchmark measurement row.
type Result struct {
	Name          string  `json:"name"`
	Query         string  `json:"query,omitempty"`
	BatchSize     int     `json:"batch_size,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	TuplesPerSec  float64 `json:"tuples_per_sec,omitempty"`
	OpsPerSec     float64 `json:"ops_per_sec,omitempty"`
	ShuffledBytes int64   `json:"shuffled_bytes,omitempty"`
}

// Report is the file layout of BENCH_<pr>.json.
type Report struct {
	PR        int      `json:"pr"`
	GoVersion string   `json:"go_version"`
	Results   []Result `json:"results"`
	// AddGetSpeedup is hash-native ops/sec over the string-keyed
	// reference's (the PR 2 acceptance criterion tracks ≥1.5x).
	AddGetSpeedup float64 `json:"addget_speedup"`
}

// stringKeyedRelation is the pre-refactor reference storage: a map from
// canonical string keys to (tuple, multiplicity), kept here only to
// measure the refactor's effect on the hot path.
type stringKeyedRelation struct {
	m map[string]struct {
		t mring.Tuple
		v float64
	}
}

func (r *stringKeyedRelation) add(t mring.Tuple, m float64) {
	k := t.Key()
	e, ok := r.m[k]
	if !ok {
		r.m[k] = struct {
			t mring.Tuple
			v float64
		}{t.Clone(), m}
		return
	}
	e.v += m
	if e.v > -mring.Eps && e.v < mring.Eps {
		delete(r.m, k)
		return
	}
	r.m[k] = e
}

func (r *stringKeyedRelation) get(t mring.Tuple) float64 { return r.m[t.Key()].v }

func addGetTuples(n int) []mring.Tuple {
	ts := make([]mring.Tuple, n)
	for i := range ts {
		ts[i] = mring.Tuple{
			mring.Int(int64(i)),
			mring.Str(fmt.Sprintf("cust#%06d", i%512)),
			mring.Float(float64(i) * 1.5),
		}
	}
	return ts
}

// measure runs fn repeatedly for at least minDur and returns ops/sec,
// where one fn call counts opsPerCall operations.
func measure(minDur time.Duration, opsPerCall int, fn func()) float64 {
	// Warm up once so map growth and code paths are hot.
	fn()
	start := time.Now()
	calls := 0
	for time.Since(start) < minDur {
		fn()
		calls++
	}
	return float64(calls*opsPerCall) / time.Since(start).Seconds()
}

func benchAddGet() (stringKeyed, hashNative float64) {
	const n = 4096
	tuples := addGetTuples(n)
	stringKeyed = measure(time.Second, 2*n, func() {
		r := &stringKeyedRelation{m: make(map[string]struct {
			t mring.Tuple
			v float64
		})}
		for _, t := range tuples {
			r.add(t, 1)
		}
		var sink float64
		for _, t := range tuples {
			sink += r.get(t)
		}
		_ = sink
	})
	hashNative = measure(time.Second, 2*n, func() {
		r := mring.NewRelation(mring.Schema{"k", "name", "v"})
		for _, t := range tuples {
			r.Add(t, 1)
		}
		var sink float64
		for _, t := range tuples {
			sink += r.Get(t)
		}
		_ = sink
	})
	return stringKeyed, hashNative
}

// benchLocalStream and benchDistributed deliberately mirror the tier-2
// benchmarks in bench_test.go (executor/cluster driven directly, same
// deployment pipeline and round-robin batch spread) so the JSON numbers
// are comparable with `make bench` across PRs; keep the three in sync.
func benchLocalStream(name string, sf float64, batch int) (Result, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return Result{}, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	ex := compile.NewExecutor(prog)
	gen := tpch.NewGenerator(sf, 1)
	init := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			init[tbl] = gen.Static(tbl)
		} else {
			init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	ex.InitFromBases(init)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	start := time.Now()
	for {
		bs := stream.NextBatches(batch)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			tuples += b.Rel.Len()
			ex.ApplyBatch(b.Table, b.Rel)
		}
	}
	return Result{
		Name:         fmt.Sprintf("%s/local/bs=%d", name, batch),
		Query:        name,
		BatchSize:    batch,
		TuplesPerSec: float64(tuples) / time.Since(start).Seconds(),
	}, nil
}

func benchDistributed(name string, sf float64, workers, batch int) (Result, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return Result{}, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	gen := tpch.NewGenerator(sf, 1)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	var shuffled int64
	start := time.Now()
	for {
		bs := stream.NextBatches(batch)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			frags := make([]*mring.Relation, workers)
			for i := range frags {
				frags[i] = mring.NewRelation(b.Rel.Schema())
			}
			i := 0
			b.Rel.Foreach(func(t mring.Tuple, m float64) {
				frags[i%workers].Add(t, m)
				i++
			})
			m, err := cl.RunPartitioned(dprogs[b.Table], frags)
			if err != nil {
				return Result{}, err
			}
			shuffled += m.ShuffledBytes
			tuples += b.Rel.Len()
		}
	}
	return Result{
		Name:          fmt.Sprintf("%s/dist/w=%d/bs=%d", name, workers, batch),
		Query:         name,
		BatchSize:     batch,
		Workers:       workers,
		TuplesPerSec:  float64(tuples) / time.Since(start).Seconds(),
		ShuffledBytes: shuffled,
	}, nil
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<pr>.json)")
	pr := flag.Int("pr", 2, "PR number recorded in the report")
	sf := flag.Float64("sf", 0.2, "TPC-H scale factor")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}

	rep := Report{PR: *pr, GoVersion: runtime.Version()}

	sk, hn := benchAddGet()
	rep.Results = append(rep.Results,
		Result{Name: "RelationAddGet/string-keyed", OpsPerSec: sk},
		Result{Name: "RelationAddGet/hash-native", OpsPerSec: hn},
	)
	rep.AddGetSpeedup = hn / sk
	fmt.Printf("RelationAddGet: string-keyed %.0f ops/sec, hash-native %.0f ops/sec (%.2fx)\n", sk, hn, rep.AddGetSpeedup)

	for _, name := range []string{"Q3", "Q6"} {
		r, err := benchLocalStream(name, *sf, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %.0f tuples/sec\n", r.Name, r.TuplesPerSec)
		rep.Results = append(rep.Results, r)
	}
	r, err := benchDistributed("Q3", *sf, 16, 4000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %.0f tuples/sec, %d shuffled bytes\n", r.Name, r.TuplesPerSec, r.ShuffledBytes)
	rep.Results = append(rep.Results, r)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
