// Command benchjson runs the tier-2 benchmark suite's representative
// measurements and writes them to a JSON file (BENCH_<pr>.json), so the
// performance trajectory of the engine is tracked in-repo from PR 2
// onward. It records the storage-layer microbenchmark (hash-native
// relation vs. the string-keyed reference it replaced), the aggregation
// microbenchmark (hash-native group table vs. the string-keyed group map
// it replaced), the local Q3 maintenance stream, and the distributed Q3
// deployment with its shuffle volume.
//
// With -baseline it then diffs the tracked microbenchmark speedup
// ratios against a prior report and exits non-zero when one regresses
// more than 15% — the CI perf gate. The gate compares ratios, not raw
// ops/sec: each report measures the reference and the native
// implementation in the same process on the same machine, so the ratio
// transfers across hardware while absolute throughput does not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	ivm "repro"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	inet "repro/internal/net"
	"repro/internal/pool"
	"repro/internal/tpch"
)

// Result is one benchmark measurement row.
type Result struct {
	Name          string  `json:"name"`
	Query         string  `json:"query,omitempty"`
	BatchSize     int     `json:"batch_size,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	TuplesPerSec  float64 `json:"tuples_per_sec,omitempty"`
	OpsPerSec     float64 `json:"ops_per_sec,omitempty"`
	ShuffledBytes int64   `json:"shuffled_bytes,omitempty"`
	// Millis and ReplayedRecords describe the Recovery rows: reopen wall
	// time of a crashed durable directory and the WAL-tail length it
	// replayed.
	Millis          float64 `json:"millis,omitempty"`
	ReplayedRecords int     `json:"replayed_records,omitempty"`
}

// Report is the file layout of BENCH_<pr>.json.
type Report struct {
	PR        int      `json:"pr"`
	GoVersion string   `json:"go_version"`
	Results   []Result `json:"results"`
	// AddGetSpeedup is hash-native ops/sec over the string-keyed
	// reference's (the PR 2 acceptance criterion tracks ≥1.5x).
	AddGetSpeedup float64 `json:"addget_speedup"`
	// AggGroupSpeedup is group-table ops/sec over the string-keyed
	// group-map reference's (the PR 4 acceptance criterion tracks ≥1.5x).
	AggGroupSpeedup float64 `json:"agggroup_speedup,omitempty"`
	// ColFilterSpeedup is the selection-vector predicate kernel's rows/sec
	// over a tuple-at-a-time Value-compare scan of the same data.
	ColFilterSpeedup float64 `json:"colfilter_speedup,omitempty"`
	// ColFoldSpeedup is the full vectorized FoldStmt (filter + multiply +
	// group fold) over the row-wise interpreter on the same statement,
	// measured in steady state: the version-cached columnar mirror
	// survives across folds, as it does in a maintenance stream. The
	// acceptance floor tracks the better of the two columnar ratios at
	// ≥1.5x (tightened from 1.3x when ColFold moved to steady state).
	ColFoldSpeedup float64 `json:"colfold_speedup,omitempty"`
	// MultiViewSpeedup is the registry's stream-maintenance throughput
	// serving 16 overlapping views from one shared program, over 16
	// independent engines fed the same stream. The PR 7 acceptance
	// criterion tracks it at ≥2x.
	MultiViewSpeedup float64 `json:"multiview_speedup,omitempty"`
	// AdaptiveBatchSpeedup is the AutoTune engine's Q3 maintenance
	// throughput over the best fixed transaction size (of 64/512/4096),
	// both fed the identical 64-tuple update stream after an untimed
	// convergence pass. The PR 8 acceptance floor tracks it at ≥0.9x:
	// the controller must find (nearly) the best fixed operating point
	// without being told it.
	AdaptiveBatchSpeedup float64 `json:"adaptivebatch_speedup,omitempty"`
	// SkewRebalanceSpeedup is the virtual-compute speedup of the skew
	// feedback loop on a 90%-hot stream at 8 workers: tuples per virtual
	// ComputeMax second with AutoTune repartitioning over the static
	// unweighted placement. Measured on the simulator's cost clock, not
	// wall time, so it is stable on any host. The PR 8 acceptance floor
	// tracks it at ≥1.2x.
	SkewRebalanceSpeedup float64 `json:"skewrebalance_speedup,omitempty"`
}

// stringKeyedRelation is the pre-refactor reference storage: a map from
// canonical string keys to (tuple, multiplicity), kept here only to
// measure the refactor's effect on the hot path.
type stringKeyedRelation struct {
	m map[string]struct {
		t mring.Tuple
		v float64
	}
}

func (r *stringKeyedRelation) add(t mring.Tuple, m float64) {
	k := t.Key()
	e, ok := r.m[k]
	if !ok {
		r.m[k] = struct {
			t mring.Tuple
			v float64
		}{t.Clone(), m}
		return
	}
	e.v += m
	if e.v > -mring.Eps && e.v < mring.Eps {
		delete(r.m, k)
		return
	}
	r.m[k] = e
}

func (r *stringKeyedRelation) get(t mring.Tuple) float64 { return r.m[t.Key()].v }

func addGetTuples(n int) []mring.Tuple {
	ts := make([]mring.Tuple, n)
	for i := range ts {
		ts[i] = mring.Tuple{
			mring.Int(int64(i)),
			mring.Str(fmt.Sprintf("cust#%06d", i%512)),
			mring.Float(float64(i) * 1.5),
		}
	}
	return ts
}

// measure runs fn repeatedly for at least minDur and returns ops/sec,
// where one fn call counts opsPerCall operations.
func measure(minDur time.Duration, opsPerCall int, fn func()) float64 {
	// Warm up once so map growth and code paths are hot.
	fn()
	start := time.Now()
	calls := 0
	for time.Since(start) < minDur {
		fn()
		calls++
	}
	return float64(calls*opsPerCall) / time.Since(start).Seconds()
}

func benchAddGet() (stringKeyed, hashNative float64) {
	const n = 4096
	tuples := addGetTuples(n)
	stringKeyed = measure(time.Second, 2*n, func() {
		r := &stringKeyedRelation{m: make(map[string]struct {
			t mring.Tuple
			v float64
		})}
		for _, t := range tuples {
			r.add(t, 1)
		}
		var sink float64
		for _, t := range tuples {
			sink += r.get(t)
		}
		_ = sink
	})
	hashNative = measure(time.Second, 2*n, func() {
		r := mring.NewRelation(mring.Schema{"k", "name", "v"})
		for _, t := range tuples {
			r.Add(t, 1)
		}
		var sink float64
		for _, t := range tuples {
			sink += r.Get(t)
		}
		_ = sink
	})
	return stringKeyed, hashNative
}

// stringKeyedAggregator is the pre-PR-4 evalAgg grouping: a fresh key
// tuple per produced row, its canonical string key, and a Go map from key
// to accumulator. Kept only to measure what the group table replaced.
type stringKeyedAggregator struct {
	groups map[string]*skGroup
	order  []string
}

type skGroup struct {
	t mring.Tuple
	m float64
}

func (a *stringKeyedAggregator) add(row mring.Tuple, pos []int, m float64) {
	t := make(mring.Tuple, len(pos))
	for i, p := range pos {
		t[i] = row[p]
	}
	k := t.Key()
	g, ok := a.groups[k]
	if !ok {
		g = &skGroup{t: t}
		a.groups[k] = g
		a.order = append(a.order, k)
	}
	g.m += m
}

// aggGroupRows builds the group-update workload: a batch with a skewed
// group domain over (string flag, int status) plus a value column, the
// shape of a TPC-H Q1-class pricing summary delta.
func aggGroupRows(n int) []mring.Tuple {
	rows := make([]mring.Tuple, n)
	for i := range rows {
		rows[i] = mring.Tuple{
			mring.Str(fmt.Sprintf("flag#%02d", i%24)),
			mring.Int(int64(i % 7)),
			mring.Float(float64(i) * 0.25),
		}
	}
	return rows
}

// benchAggGroup measures AggGroupUpdate: one per-batch grouped
// aggregation (build the table from every row, then drain the groups),
// string-keyed reference vs. hash-native group table.
func benchAggGroup() (stringKeyed, groupTable float64) {
	const n = 8192
	rows := aggGroupRows(n)
	pos := []int{0, 1}
	schema := mring.Schema{"flag", "status"}
	stringKeyed = measure(time.Second, n, func() {
		a := &stringKeyedAggregator{groups: make(map[string]*skGroup)}
		for _, r := range rows {
			a.add(r, pos, 1)
		}
		var sink float64
		for _, k := range a.order {
			sink += a.groups[k].m
		}
		_ = sink
	})
	groupTable = measure(time.Second, n, func() {
		gt := mring.NewGroupTable(schema)
		key := make(mring.Tuple, len(pos))
		for _, r := range rows {
			for i, p := range pos {
				key[i] = r[p]
			}
			gt.Add(key, 1)
		}
		var sink float64
		gt.Foreach(func(_ mring.Tuple, m float64) { sink += m })
		_ = sink
	})
	return stringKeyed, groupTable
}

// sinkLen defeats dead-code elimination in the columnar micros.
var sinkLen int

// colBenchSchema is the Q6-shaped scan workload: ship date (int, small
// domain so group-bys stay realistic), quantity, discount, and price.
var colBenchSchema = mring.Schema{"sdate", "qty", "disc", "price"}

func colBenchRelation(n int) *mring.Relation {
	r := mring.NewRelation(colBenchSchema)
	for i := 0; i < n; i++ {
		r.Add(mring.Tuple{
			mring.Int(19930101 + int64(i%2500)),
			mring.Float(float64(i%50) + 0.5),
			mring.Float(float64(i%11) * 0.01),
			mring.Float(float64(i%977) * 1.25),
		}, 1)
	}
	return r
}

// benchColFilter measures ColFilter: the Q6 predicate chain as selection-
// vector kernels over a columnar batch vs. the tuple-at-a-time
// Value-compare scan the row path performs, on identical data.
func benchColFilter() (rowwise, kernel float64) {
	const n = 32768
	rel := colBenchRelation(n)
	batch := pool.MirrorOf(rel).Base()
	tuples := make([]mring.Tuple, 0, batch.Len())
	rel.Foreach(func(t mring.Tuple, _ float64) { tuples = append(tuples, t.Clone()) })

	preds := []pool.Pred{
		{Col: 0, Op: pool.PGe, Lit: mring.Int(19940101)},
		{Col: 0, Op: pool.PLt, Lit: mring.Int(19950101)},
		{Col: 1, Op: pool.PLt, Lit: mring.Float(24)},
	}
	cmps := []expr.CmpOp{expr.CGe, expr.CLt, expr.CLt}

	rowwise = measure(time.Second, len(tuples), func() {
		survivors := 0
		for _, t := range tuples {
			keep := true
			for k := range preds {
				if !expr.EvalCmp(cmps[k], t[preds[k].Col], preds[k].Lit) {
					keep = false
					break
				}
			}
			if keep {
				survivors++
			}
		}
		sinkLen = survivors
	})
	identity := pool.NewSel(batch.Len())
	scratch := make(pool.Sel, batch.Len())
	kernel = measure(time.Second, batch.Len(), func() {
		sel := scratch[:copy(scratch, identity)]
		for _, p := range preds {
			sel = batch.FilterPred(p, sel)
		}
		sinkLen = len(sel)
	})
	return rowwise, kernel
}

// benchColFold measures ColFold: one full FoldStmt of a Q6-shaped
// pre-aggregation (date-grouped revenue with the Q6 predicates) through
// eval's row-wise interpreter vs. its vectorized kernel dispatch. The
// kernel side reuses the relation's version-cached columnar mirror
// across folds — the steady state of a maintenance stream, where the
// mirror converts once per batch of base-table changes, not once per
// fold. (Rebuilding the mirror every fold, as this benchmark once did,
// understated the kernel ratio by charging the one-time conversion to
// every iteration.)
func benchColFold() (rowwise, kernel float64) {
	const n = 32768
	env := eval.NewEnv()
	env.Bind("R", colBenchRelation(n))
	rel := env.Rel("R")
	stmt := expr.Sum([]string{"sdate"}, expr.Join(
		expr.Base("R", colBenchSchema...),
		expr.CmpE(expr.CGe, expr.V("sdate"), expr.LitI(19940101)),
		expr.CmpE(expr.CLt, expr.V("sdate"), expr.LitI(19950101)),
		expr.CmpE(expr.CLt, expr.V("qty"), expr.LitI(24)),
		expr.ValE(expr.MulV(expr.V("price"), expr.V("disc"))),
	))
	tgtSchema := mring.Schema{"sdate"}

	rowCtx := eval.NewCtx(env)
	rowCtx.DisableKernels = true
	rowwise = measure(time.Second, rel.Len(), func() {
		tgt := mring.NewRelation(tgtSchema)
		rowCtx.FoldStmt(tgt, eval.OpAdd, stmt)
		sinkLen = tgt.Len()
	})
	kerCtx := eval.NewCtx(env)
	kernel = measure(time.Second, rel.Len(), func() {
		tgt := mring.NewRelation(tgtSchema)
		kerCtx.FoldStmt(tgt, eval.OpAdd, stmt)
		sinkLen = tgt.Len()
	})
	if kerCtx.KernelFolds == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: ColFold never dispatched to the kernel path")
		os.Exit(1)
	}
	return rowwise, kernel
}

// colKernelFloor is the ISSUE 6 acceptance criterion, tightened once
// ColFold measured steady state: at least one scan-heavy columnar
// kernel must clear 1.5x over its row-wise reference measured in the
// same run (both kernels currently clear 10x).
const colKernelFloor = 1.5

// multiViewFloor is the ISSUE 7 acceptance criterion: serving 16
// overlapping views from one shared registry program must sustain at
// least 2x the maintenance throughput of 16 independent engines.
const multiViewFloor = 2.0

// multiViewQuery builds one of four overlapping query shapes over
// R(a,k) ⋈ S(k,c), with variable names salted by the copy index —
// copies of a shape must canonicalize to the same plan even though no
// two are written with the same variables.
func multiViewQuery(shape, copyIdx int) ivm.Expr {
	a := fmt.Sprintf("a_%d", copyIdx)
	k := fmt.Sprintf("k_%d", copyIdx)
	c := fmt.Sprintf("c_%d", copyIdx)
	join := ivm.Join(ivm.Table("R", a, k), ivm.Table("S", k, c))
	switch shape % 4 {
	case 0: // per-key join count
		return ivm.Sum([]string{k}, join)
	case 1: // total join count
		return ivm.Sum(nil, join)
	case 2: // per-key filtered revenue
		return ivm.Sum([]string{k}, ivm.Join(
			ivm.Table("R", a, k), ivm.Table("S", k, c),
			ivm.Cond(ivm.Lt, ivm.Col(a), ivm.Col(c)),
			ivm.Val(ivm.Mul2(ivm.Col(a), ivm.Col(c))),
		))
	default: // per-(key,code) count
		return ivm.Sum([]string{k, c}, join)
	}
}

// benchMultiView measures MultiView: the maintenance throughput of 16
// overlapping views (4 distinct shapes x 4 structurally identical
// copies) over one update stream, served by 16 independent engines vs.
// one shared-program registry. Each measured pass rebuilds the serving
// side — so the registry's plan cache and sub-plan dedup are part of
// what is measured — and streams the same pre-generated transactions;
// ops are stream tuples, counted once per pass regardless of how many
// views consume them.
func benchMultiView() (independent, shared float64) {
	const (
		nViews  = 16
		rounds  = 20
		perR    = 300
		perS    = 180
		keyCard = 32
	)
	bases := map[string]ivm.Schema{"R": {"a", "k"}, "S": {"k", "c"}}

	type round struct{ r, s []ivm.Tuple }
	stream := make([]round, rounds)
	tuples := 0
	for i := range stream {
		for j := 0; j < perR; j++ {
			v := i*perR + j
			stream[i].r = append(stream[i].r, ivm.Row(v%977, v%keyCard))
		}
		for j := 0; j < perS; j++ {
			v := i*perS + j
			stream[i].s = append(stream[i].s, ivm.Row(v%keyCard, v%41))
		}
		tuples += perR + perS
	}
	feed := func(apply func(*ivm.Tx) error, newTx func() *ivm.Tx) {
		for i := range stream {
			tx := newTx()
			for _, t := range stream[i].r {
				if err := tx.Insert("R", t); err != nil {
					panic(err)
				}
			}
			for _, t := range stream[i].s {
				if err := tx.Insert("S", t); err != nil {
					panic(err)
				}
			}
			if err := apply(tx); err != nil {
				panic(err)
			}
		}
	}

	independent = measure(time.Second, tuples, func() {
		engines := make([]*ivm.Engine, nViews)
		for i := range engines {
			e, err := ivm.New(fmt.Sprintf("V%d", i), multiViewQuery(i, i), bases)
			if err != nil {
				panic(err)
			}
			engines[i] = e
		}
		for _, e := range engines {
			feed(e.Apply, e.NewTx)
		}
	})
	shared = measure(time.Second, tuples, func() {
		reg, err := ivm.NewRegistry(bases)
		if err != nil {
			panic(err)
		}
		for i := 0; i < nViews; i++ {
			if err := reg.Register(fmt.Sprintf("V%d", i), multiViewQuery(i, i)); err != nil {
				panic(err)
			}
		}
		feed(reg.Apply, reg.NewTx)
	})
	return independent, shared
}

// adaptiveBatchFloor and skewRebalanceFloor are the ISSUE 8 acceptance
// criteria: the hill-climbing batch controller must reach at least 0.9x
// of the best fixed transaction size it could have been handed, and the
// skew feedback loop must cut virtual critical-path compute by at least
// 1.2x on a hot-key stream.
const (
	adaptiveBatchFloor = 0.9
	skewRebalanceFloor = 1.2
)

// adaptiveUnit is one pre-generated 64-tuple unit of the adaptive-batch
// stream: a run of orders rows, replayed as an insert wave and later
// (shifted by the sliding-window lag) as the matching delete wave, so
// state size — and with it per-fold maintenance cost — stays stationary
// while the controller climbs.
type adaptiveUnit struct {
	rows []mring.Tuple
	del  bool
}

// collectRows drains one table's full generator quota into a flat row
// slice.
func collectRows(gen *tpch.Generator, table string) []mring.Tuple {
	stream := tpch.NewStream(gen, []string{table})
	var rows []mring.Tuple
	for {
		bs := stream.NextBatches(1024)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			b.Rel.Foreach(func(t mring.Tuple, _ float64) { rows = append(rows, t) })
		}
	}
	return rows
}

// adaptiveStream builds the sliding-window orders stream: unit i inserts
// 64 orders, unit i-lag deletes them again. A single-table stream keeps
// fold cost a smooth function of fold size (mixed-table folds cost
// wildly different amounts per tuple, which drowns the controller's
// throughput signal in composition noise rather than testing it).
func adaptiveStream(rows []mring.Tuple, lag int) []adaptiveUnit {
	var units [][]mring.Tuple
	for i := 0; i+64 <= len(rows); i += 64 {
		units = append(units, rows[i:i+64])
	}
	var work []adaptiveUnit
	for i, u := range units {
		work = append(work, adaptiveUnit{rows: u})
		if i >= lag {
			work = append(work, adaptiveUnit{rows: units[i-lag], del: true})
		}
	}
	return work
}

// replayAdaptive feeds the pre-generated stream in transactions of
// chunk tuples (the last one partial).
func replayAdaptive(e *ivm.Engine, work []adaptiveUnit, chunk int) error {
	tx := e.NewTx()
	n := 0
	for _, u := range work {
		for _, t := range u.rows {
			var err error
			if u.del {
				err = tx.Delete(tpch.Orders, t)
			} else {
				err = tx.Insert(tpch.Orders, t)
			}
			if err != nil {
				return err
			}
			if n++; n >= chunk {
				if err := e.Apply(tx); err != nil {
					return err
				}
				tx, n = e.NewTx(), 0
			}
		}
	}
	if n > 0 {
		return e.Apply(tx)
	}
	return nil
}

// benchAdaptiveBatch measures AdaptiveBatch: a Q3 engine with warmed
// customer and lineitem state maintaining a stationary sliding-window
// orders stream, fed through the public API in 64-tuple transactions.
// Every variant receives the identical transaction stream; only the
// engine-boundary fold target differs — fixed targets 64/512/4096
// (pinned via MinBatch=MaxBatch) vs. the default hill-climbing
// controller — so the ratio isolates exactly the decision the
// controller owns. The first 60% of the stream is an untimed warm-up
// (state fills and the climb converges there); the remaining 40% is
// timed.
func benchAdaptiveBatch() (bestFixed, adaptive float64) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		panic(err)
	}
	bases := q.BaseSchemas()
	gen := tpch.NewGenerator(10, 17)
	custRows := collectRows(gen, tpch.Customer)
	liRows := collectRows(tpch.NewGenerator(1, 18), tpch.Lineitem)
	work := adaptiveStream(collectRows(gen, tpch.Orders), 64)
	split := len(work) * 6 / 10
	warm, meas := work[:split], work[split:]
	tuples := 0
	for _, u := range meas {
		tuples += len(u.rows)
	}
	run := func(opts ...ivm.Option) float64 {
		e, err := ivm.New(q.Name, q.Def, bases, opts...)
		if err != nil {
			panic(err)
		}
		cb := ivm.NewBatch(tpch.Schemas[tpch.Customer])
		for _, t := range custRows {
			if err := cb.Insert(t); err != nil {
				panic(err)
			}
		}
		lb := ivm.NewBatch(tpch.Schemas[tpch.Lineitem])
		for _, t := range liRows {
			if err := lb.Insert(t); err != nil {
				panic(err)
			}
		}
		if err := e.Warm(map[string]*ivm.Batch{tpch.Customer: cb, tpch.Lineitem: lb}); err != nil {
			panic(err)
		}
		if err := replayAdaptive(e, warm, 64); err != nil {
			panic(err)
		}
		e.Stats() // settle pending folds before the timed pass
		start := time.Now()
		if err := replayAdaptive(e, meas, 64); err != nil {
			panic(err)
		}
		e.Stats() // coalesced folds flush inside the timed window
		return float64(tuples) / time.Since(start).Seconds()
	}
	for _, k := range []int{64, 512, 4096} {
		thr := run(ivm.AutoTune(ivm.TuneConfig{MinBatch: k, MaxBatch: k, InitialBatch: k}))
		if thr > bestFixed {
			bestFixed = thr
		}
	}
	adaptive = run(ivm.AutoTune())
	return bestFixed, adaptive
}

// skewedRow draws the 90%-hot workload the skew benchmark streams: most
// rows hit one hot partitioning key h=0 spread over many u, the rest
// spread over cold h with few u; id keeps rows distinct.
func skewedRow(rng *rand.Rand, id int) ivm.Tuple {
	var u, h int
	if rng.Intn(10) < 9 {
		h, u = 0, rng.Intn(1000)
	} else {
		h, u = 1+rng.Intn(7), rng.Intn(10)
	}
	return ivm.Row(id, u, h, float64(1+rng.Intn(5)))
}

// benchSkewRebalance measures SkewRebalance on the simulator's virtual
// cost clock: a stream 90%-hot on the column the unweighted heuristic
// partitions by, at 8 workers, static placement vs. AutoTune's
// measured-skew repartitioning. The score is tuples per virtual
// ComputeMax second — the accumulated critical-path compute of the cost
// model — so the ratio does not depend on host core count or load
// (this repository's CI runs on a single-core box, where wall time
// cannot see the balance win).
func benchSkewRebalance() (static, tuned float64) {
	bases := map[string]ivm.Schema{"R": {"id", "u", "h", "v"}}
	q := ivm.Sum([]string{"u", "h"}, ivm.Join(
		ivm.Table("R", "id", "u", "h", "v"), ivm.Val(ivm.Col("v"))))
	ranks := map[string]int{"h": 5, "u": 4}
	const rounds, perRound = 40, 512
	run := func(opts ...ivm.Option) float64 {
		e, err := ivm.New("Skew", q, bases,
			append([]ivm.Option{ivm.Distributed(8), ivm.KeyRanks(ranks)}, opts...)...)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(3))
		id := 0
		for r := 0; r < rounds; r++ {
			tx := e.NewTx()
			for i := 0; i < perRound; i++ {
				if err := tx.Insert("R", skewedRow(rng, id)); err != nil {
					panic(err)
				}
				id++
			}
			if err := e.Apply(tx); err != nil {
				panic(err)
			}
		}
		e.Stats() // flush coalesced folds into the metrics
		return float64(rounds*perRound) / e.Metrics().ComputeMax.Seconds()
	}
	// A deterministic virtual clock drives the controller so the tuned
	// run's fold boundaries (and with them the cost accounting) are
	// reproducible across hosts.
	var tick int64
	now := func() time.Time { tick++; return time.Unix(0, tick*int64(time.Millisecond)) }
	static = run()
	tuned = run(ivm.AutoTune(ivm.TuneConfig{
		MaxBatch: 1024, InitialBatch: 512, Window: 2,
		SkewPatience: 2, SkewCooldown: 8, Now: now,
	}))
	return static, tuned
}

// aggSpeedupFloor is the ISSUE 4 acceptance criterion: the group table
// must stay ≥1.5x over the string-keyed reference aggregator. main
// enforces it on every run — with or without -baseline — because the
// PR 2 baseline report predates the AggGroupUpdate benchmark, so a
// ratio diff alone would silently skip it.
const aggSpeedupFloor = 1.5

// medianRatioRep runs a paired (reference, native) micro benchmark three
// times and returns the repetition with the median native/reference
// ratio, so a GC pause or a noisy neighbor landing in a single ~1s
// measurement window cannot swing the ratio the CI gate checks.
func medianRatioRep(bench func() (ref, native float64)) (ref, native float64) {
	type rep struct{ ref, native float64 }
	reps := make([]rep, 3)
	for i := range reps {
		reps[i].ref, reps[i].native = bench()
	}
	sort.Slice(reps, func(i, j int) bool {
		return reps[i].native/reps[i].ref < reps[j].native/reps[j].ref
	})
	m := reps[len(reps)/2]
	return m.ref, m.native
}

// loadBaseline reads and parses a prior report. main calls it before
// the new report is written, so diffing against the file the run itself
// overwrites (the default: this PR's committed report) compares against
// the committed measurements, never against the fresh ones.
func loadBaseline(path string) (Report, error) {
	var base Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("read baseline: %w", err)
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return base, fmt.Errorf("parse baseline: %w", err)
	}
	return base, nil
}

// diffBaseline gates the tracked microbenchmarks against a previous
// report by their speedup ratios (native over string-keyed reference,
// both measured in this run, so the ratio is hardware-independent) and
// returns an error listing every ratio that dropped more than maxDrop
// below the baseline's. Ratios the baseline report predates are diffed
// as n/a.
func diffBaseline(rep Report, base Report, baselinePath string, maxDrop float64) error {
	if base.GoVersion != "" && base.GoVersion != rep.GoVersion {
		fmt.Printf("note: baseline %s was recorded with %s, this run uses %s — ratio drift may be toolchain, not code\n",
			baselinePath, base.GoVersion, rep.GoVersion)
	}
	var failures []string
	check := func(name string, was, now float64) {
		if now <= 0 {
			failures = append(failures, fmt.Sprintf("%s speedup missing from this run", name))
			return
		}
		if was <= 0 {
			fmt.Printf("diff vs %s: %s speedup n/a -> %.2fx (no baseline ratio)\n",
				baselinePath, name, now)
			return
		}
		change := now/was - 1
		fmt.Printf("diff vs %s: %s speedup %.2fx -> %.2fx (%+.1f%%)\n",
			baselinePath, name, was, now, change*100)
		if now < was*(1-maxDrop) {
			failures = append(failures, fmt.Sprintf("%s speedup regressed %.1f%% (limit %.0f%%)",
				name, -change*100, maxDrop*100))
		}
	}
	check("RelationAddGet", base.AddGetSpeedup, rep.AddGetSpeedup)
	check("AggGroupUpdate", base.AggGroupSpeedup, rep.AggGroupSpeedup)
	check("ColFilter", base.ColFilterSpeedup, rep.ColFilterSpeedup)
	check("ColFold", base.ColFoldSpeedup, rep.ColFoldSpeedup)
	check("MultiView", base.MultiViewSpeedup, rep.MultiViewSpeedup)
	check("AdaptiveBatch", base.AdaptiveBatchSpeedup, rep.AdaptiveBatchSpeedup)
	check("SkewRebalance", base.SkewRebalanceSpeedup, rep.SkewRebalanceSpeedup)
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// benchLocalStream and benchDistributed deliberately mirror the tier-2
// benchmarks in bench_test.go (executor/cluster driven directly, same
// deployment pipeline and round-robin batch spread) so the JSON numbers
// are comparable with `make bench` across PRs; keep the three in sync.
func benchLocalStream(name string, sf float64, batch int) (Result, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return Result{}, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	ex := compile.NewExecutor(prog)
	gen := tpch.NewGenerator(sf, 1)
	init := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			init[tbl] = gen.Static(tbl)
		} else {
			init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	ex.InitFromBases(init)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	start := time.Now()
	for {
		bs := stream.NextBatches(batch)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			tuples += b.Rel.Len()
			ex.ApplyBatch(b.Table, b.Rel)
		}
	}
	return Result{
		Name:         fmt.Sprintf("%s/local/bs=%d", name, batch),
		Query:        name,
		BatchSize:    batch,
		TuplesPerSec: float64(tuples) / time.Since(start).Seconds(),
	}, nil
}

// benchNetShuffle drives the same deployment pipeline as
// benchDistributed through the process cluster: worker servers on
// loopback TCP, every install/run/fetch crossing real sockets through
// the framed transport. The tuples/sec entry tracks the wire overhead
// of the process deployment; ShuffledBytes counts actual payload bytes
// shipped.
func benchNetShuffle(name string, sf float64, workers, batch int) (Result, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return Result{}, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	addrs := make([]string, workers)
	for i := range addrs {
		srv, err := cluster.ListenAndServeWorker(inet.TCP{}, "127.0.0.1:0")
		if err != nil {
			return Result{}, err
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	pc, err := cluster.Connect(inet.TCP{}, addrs, dist.ViewSchemas(prog), parts)
	if err != nil {
		return Result{}, err
	}
	defer pc.Close()
	gen := tpch.NewGenerator(sf, 1)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	var shuffled int64
	start := time.Now()
	for {
		bs := stream.NextBatches(batch)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			m, err := pc.RunPartitionedBatch(dprogs[b.Table], b.Rel)
			if err != nil {
				return Result{}, err
			}
			shuffled += m.ShuffledBytes
			tuples += b.Rel.Len()
		}
	}
	return Result{
		Name:          fmt.Sprintf("NetShuffle/%s/w=%d/bs=%d", name, workers, batch),
		Query:         name,
		BatchSize:     batch,
		Workers:       workers,
		TuplesPerSec:  float64(tuples) / time.Since(start).Seconds(),
		ShuffledBytes: shuffled,
	}, nil
}

func benchDistributed(name string, sf float64, workers, batch int) (Result, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return Result{}, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	gen := tpch.NewGenerator(sf, 1)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	var shuffled int64
	start := time.Now()
	for {
		bs := stream.NextBatches(batch)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			frags := make([]*mring.Relation, workers)
			for i := range frags {
				frags[i] = mring.NewRelation(b.Rel.Schema())
			}
			i := 0
			b.Rel.Foreach(func(t mring.Tuple, m float64) {
				frags[i%workers].Add(t, m)
				i++
			})
			m, err := cl.RunPartitioned(dprogs[b.Table], frags)
			if err != nil {
				return Result{}, err
			}
			shuffled += m.ShuffledBytes
			tuples += b.Rel.Len()
		}
	}
	return Result{
		Name:          fmt.Sprintf("%s/dist/w=%d/bs=%d", name, workers, batch),
		Query:         name,
		BatchSize:     batch,
		Workers:       workers,
		TuplesPerSec:  float64(tuples) / time.Since(start).Seconds(),
		ShuffledBytes: shuffled,
	}, nil
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<pr>.json)")
	pr := flag.Int("pr", 4, "PR number recorded in the report")
	sf := flag.Float64("sf", 0.2, "TPC-H scale factor")
	baseline := flag.String("baseline", "", "prior BENCH_<n>.json to diff speedup ratios against (>15% drop fails)")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	// The baseline is loaded up front: it may be the very file this run
	// overwrites, in which case the gate must see the committed
	// measurements, not the fresh ones.
	var base Report
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep := Report{PR: *pr, GoVersion: runtime.Version()}

	sk, hn := medianRatioRep(benchAddGet)
	rep.Results = append(rep.Results,
		Result{Name: "RelationAddGet/string-keyed", OpsPerSec: sk},
		Result{Name: "RelationAddGet/hash-native", OpsPerSec: hn},
	)
	rep.AddGetSpeedup = hn / sk
	fmt.Printf("RelationAddGet: string-keyed %.0f ops/sec, hash-native %.0f ops/sec (%.2fx)\n", sk, hn, rep.AddGetSpeedup)

	ask, agt := medianRatioRep(benchAggGroup)
	rep.Results = append(rep.Results,
		Result{Name: "AggGroupUpdate/string-keyed", OpsPerSec: ask},
		Result{Name: "AggGroupUpdate/group-table", OpsPerSec: agt},
	)
	rep.AggGroupSpeedup = agt / ask
	fmt.Printf("AggGroupUpdate: string-keyed %.0f ops/sec, group-table %.0f ops/sec (%.2fx)\n", ask, agt, rep.AggGroupSpeedup)

	frow, fker := medianRatioRep(benchColFilter)
	rep.Results = append(rep.Results,
		Result{Name: "ColFilter/row-wise", OpsPerSec: frow},
		Result{Name: "ColFilter/kernel", OpsPerSec: fker},
	)
	rep.ColFilterSpeedup = fker / frow
	fmt.Printf("ColFilter: row-wise %.0f rows/sec, kernel %.0f rows/sec (%.2fx)\n", frow, fker, rep.ColFilterSpeedup)

	grow, gker := medianRatioRep(benchColFold)
	rep.Results = append(rep.Results,
		Result{Name: "ColFold/row-wise", OpsPerSec: grow},
		Result{Name: "ColFold/kernel", OpsPerSec: gker},
	)
	rep.ColFoldSpeedup = gker / grow
	fmt.Printf("ColFold: row-wise %.0f rows/sec, kernel %.0f rows/sec (%.2fx)\n", grow, gker, rep.ColFoldSpeedup)

	mvi, mvs := medianRatioRep(benchMultiView)
	rep.Results = append(rep.Results,
		Result{Name: "MultiView/independent-engines", TuplesPerSec: mvi},
		Result{Name: "MultiView/shared-registry", TuplesPerSec: mvs},
	)
	rep.MultiViewSpeedup = mvs / mvi
	fmt.Printf("MultiView: independent %.0f tuples/sec, shared %.0f tuples/sec (%.2fx)\n", mvi, mvs, rep.MultiViewSpeedup)

	abf, abt := medianRatioRep(benchAdaptiveBatch)
	rep.Results = append(rep.Results,
		Result{Name: "AdaptiveBatch/best-fixed", Query: "Q3", TuplesPerSec: abf},
		Result{Name: "AdaptiveBatch/autotune", Query: "Q3", TuplesPerSec: abt},
	)
	rep.AdaptiveBatchSpeedup = abt / abf
	fmt.Printf("AdaptiveBatch: best fixed %.0f tuples/sec, autotune %.0f tuples/sec (%.2fx)\n", abf, abt, rep.AdaptiveBatchSpeedup)

	srs, srt := medianRatioRep(benchSkewRebalance)
	rep.Results = append(rep.Results,
		Result{Name: "SkewRebalance/static", Workers: 8, TuplesPerSec: srs},
		Result{Name: "SkewRebalance/autotune", Workers: 8, TuplesPerSec: srt},
	)
	rep.SkewRebalanceSpeedup = srt / srs
	fmt.Printf("SkewRebalance: static %.0f tuples/vcpu-sec, autotune %.0f tuples/vcpu-sec (%.2fx)\n", srs, srt, rep.SkewRebalanceSpeedup)

	for _, name := range []string{"Q3", "Q6"} {
		r, err := benchLocalStream(name, *sf, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %.0f tuples/sec\n", r.Name, r.TuplesPerSec)
		rep.Results = append(rep.Results, r)
	}
	r, err := benchDistributed("Q3", *sf, 16, 4000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %.0f tuples/sec, %d shuffled bytes\n", r.Name, r.TuplesPerSec, r.ShuffledBytes)
	rep.Results = append(rep.Results, r)

	ns, err := benchNetShuffle("Q3", *sf, 4, 4000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %.0f tuples/sec, %d shuffled bytes\n", ns.Name, ns.TuplesPerSec, ns.ShuffledBytes)
	rep.Results = append(rep.Results, ns)

	if err := appendDurabilityResults(&rep, *sf); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	// The acceptance floor holds on every run, with or without a
	// baseline report to diff against (the report is written first so a
	// failing run still leaves the measurements behind as an artifact).
	if rep.AggGroupSpeedup < aggSpeedupFloor {
		fmt.Fprintf(os.Stderr, "benchjson: AggGroupUpdate speedup %.2fx below the %.1fx acceptance floor\n",
			rep.AggGroupSpeedup, aggSpeedupFloor)
		os.Exit(1)
	}
	if rep.ColFilterSpeedup < colKernelFloor && rep.ColFoldSpeedup < colKernelFloor {
		fmt.Fprintf(os.Stderr, "benchjson: no columnar kernel cleared the %.1fx floor (ColFilter %.2fx, ColFold %.2fx)\n",
			colKernelFloor, rep.ColFilterSpeedup, rep.ColFoldSpeedup)
		os.Exit(1)
	}
	if rep.MultiViewSpeedup < multiViewFloor {
		fmt.Fprintf(os.Stderr, "benchjson: MultiView shared/independent speedup %.2fx below the %.1fx acceptance floor\n",
			rep.MultiViewSpeedup, multiViewFloor)
		os.Exit(1)
	}
	if rep.AdaptiveBatchSpeedup < adaptiveBatchFloor {
		fmt.Fprintf(os.Stderr, "benchjson: AdaptiveBatch speedup %.2fx below the %.1fx acceptance floor\n",
			rep.AdaptiveBatchSpeedup, adaptiveBatchFloor)
		os.Exit(1)
	}
	if rep.SkewRebalanceSpeedup < skewRebalanceFloor {
		fmt.Fprintf(os.Stderr, "benchjson: SkewRebalance speedup %.2fx below the %.1fx acceptance floor\n",
			rep.SkewRebalanceSpeedup, skewRebalanceFloor)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := diffBaseline(rep, base, *baseline, 0.15); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline diff:", err)
			os.Exit(1)
		}
	}
}
