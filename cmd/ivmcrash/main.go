// Command ivmcrash is the crash-smoke victim: it streams a deterministic
// TPC-H workload into a durable engine, committing one transaction per
// -rows events and printing "APPLIED <n>" after each commit is acked, so
// a harness can SIGKILL it at an arbitrary committed transaction and
// verify that reopening the directory recovers the exact acked prefix.
//
// The stream is fully determined by (-query, -sf, -seed, -rows): a
// harness regenerates the identical transaction sequence in-process to
// build its uninterrupted oracle. With the default sync-every-commit
// WAL policy, every printed APPLIED line is durable before it is
// printed; recovery may only ever be ahead of the harness's last read
// line (commits whose print was cut off by the kill), never behind it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	ivm "repro"
	"repro/internal/tpch"
)

func main() {
	dir := flag.String("dir", "", "durable state directory (required)")
	query := flag.String("query", "Q3", "TPC-H query to maintain")
	sf := flag.Float64("sf", 0.1, "TPC-H scale factor")
	seed := flag.Int64("seed", 5, "stream generator seed")
	rows := flag.Int("rows", 50, "events per committed transaction")
	ckptEvery := flag.Int("checkpoint-every", 5, "auto-checkpoint period in transactions")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ivmcrash: -dir is required")
		os.Exit(2)
	}

	q, err := tpch.QueryByName(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivmcrash: %v\n", err)
		os.Exit(2)
	}
	e, err := ivm.New(q.Name, q.Def, q.BaseSchemas(),
		ivm.Durable(*dir, ivm.CheckpointEvery(*ckptEvery)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ivmcrash: open: %v\n", err)
		os.Exit(1)
	}

	// Unbuffered progress: the harness kills us mid-stream, so each
	// APPLIED line must hit the pipe as soon as its commit is acked.
	out := bufio.NewWriter(os.Stdout)
	stream := tpch.NewStream(tpch.NewGenerator(*sf, *seed), q.Tables)
	n := 0
	for {
		tx := e.NewTx()
		events := 0
		for ; events < *rows; events++ {
			ev, ok := stream.Next()
			if !ok {
				break
			}
			if err := tx.Insert(ev.Table, ev.Tuple); err != nil {
				fmt.Fprintf(os.Stderr, "ivmcrash: %v\n", err)
				os.Exit(1)
			}
		}
		if events == 0 {
			break
		}
		if err := e.Apply(tx); err != nil {
			fmt.Fprintf(os.Stderr, "ivmcrash: apply: %v\n", err)
			os.Exit(1)
		}
		n++
		fmt.Fprintf(out, "APPLIED %d\n", n)
		out.Flush()
	}
	if err := e.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ivmcrash: close: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "DONE %d\n", n)
	out.Flush()
}
