package ivm

import (
	"fmt"
	"sort"

	"repro/internal/compile"
)

// Registry serves many queries from one shared maintenance program: the
// compile layer canonicalizes and fingerprints every registered query,
// dedupes structurally identical sub-plans (shared pre-aggregations and
// auxiliary views compute once per transaction and fan out to all
// dependent top views), and caches compiled plans by query shape so
// registering the N-th structurally identical view is O(1). Registered
// results are bitwise identical to what independent engines would
// maintain, on both the local and the distributed backend.
//
//	r, _ := ivm.NewRegistry(bases)
//	r.Register("revenue", q1)
//	r.Register("discounts", q6)
//	cancel, _ := r.Subscribe("revenue", fn, ivm.OnKey(ivm.Str("1995-03-15")))
//	r.Apply(tx) // maintains every registered view in one step
//
// Register all views before the first Apply/Warm/Result/Subscribe call:
// the shared program builds lazily on first use and is fixed from then
// on.
type Registry struct {
	serving
	cfg   engineConfig
	bases map[string]Schema
	sc    *compile.SharedCompiler
	built bool
}

// NewRegistry creates an empty multi-view registry over the given base
// relation schemas. The same options as New select the backend shared by
// all registered views; SingleTuple is not supported.
func NewRegistry(bases map[string]Schema, opts ...Option) (*Registry, error) {
	cfg := engineConfig{copts: compile.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.singleTuple {
		return nil, fmt.Errorf("ivm: SingleTuple is not supported on a Registry")
	}
	return &Registry{
		cfg:   cfg,
		bases: bases,
		sc:    compile.NewSharedCompiler(bases, cfg.copts),
	}, nil
}

// Register adds one named query to the registry. Queries registered
// after the shared program was built (after the first Apply, Warm,
// Result, or Subscribe) are rejected.
func (r *Registry) Register(name string, query Expr) error {
	r.beMu.Lock()
	defer r.beMu.Unlock()
	if r.built {
		return fmt.Errorf("ivm: registry already serving; register all views before the first transaction")
	}
	return r.sc.Register(name, query)
}

// ensure builds the shared program and backend on first use; guarded by
// the backend lock so concurrent first uses build exactly once.
func (r *Registry) ensure() error {
	r.beMu.Lock()
	defer r.beMu.Unlock()
	if r.closed {
		return fmt.Errorf("ivm: registry: %w", ErrClosed)
	}
	if r.built {
		return nil
	}
	prog, err := r.sc.Program()
	if err != nil {
		return err
	}
	be, err := r.cfg.backend(prog)
	if err != nil {
		return err
	}
	// Recovery runs before init starts the tuner loop (and under beMu,
	// which the loop's ticks also take), so the backend is exclusively
	// ours while the checkpoint restores and the WAL tail replays.
	r.prog, r.be = prog, be
	if err := r.attachDurability(&r.cfg); err != nil {
		be.Close()
		return err
	}
	r.init(prog, be, newTuner(&r.cfg))
	r.built = true
	return nil
}

// Close shuts the registry down: pending coalesced batches are flushed,
// on a durable registry the WAL flushes and a final checkpoint is
// written (so reopening recovers with zero replay), the backend
// (including remote worker connections) is released, and every later
// Apply/Warm/Subscribe returns an error wrapping ErrClosed. Close is
// idempotent; it returns the first flush or shutdown error.
func (r *Registry) Close() error { return r.close() }

// Checkpoint forces a durability checkpoint now (see
// Engine.Checkpoint). Returns an error on a non-durable registry.
func (r *Registry) Checkpoint() error {
	if err := r.ensure(); err != nil {
		return err
	}
	return r.forceCheckpoint()
}

// top resolves a registered view name to its shared top view.
func (r *Registry) top(name string) (string, error) {
	t, ok := r.sc.Top(name)
	if !ok {
		return "", fmt.Errorf("ivm: unknown registered view %q (registry has: %s)",
			name, joinNames(r.sc.Names()))
	}
	return t, nil
}

func joinNames(names []string) string {
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Apply folds one transaction into every registered view in a single
// shared maintenance step; shared sub-plans are computed once. See
// Engine.Apply for transaction semantics.
func (r *Registry) Apply(tx *Tx) error {
	if err := r.ensure(); err != nil {
		return err
	}
	return r.applyTx(tx)
}

// ApplyBatch folds one single-table update batch into every registered
// view: sugar for a one-table transaction.
func (r *Registry) ApplyBatch(table string, b *Batch) error {
	tx := NewTx()
	if err := tx.Put(table, b); err != nil {
		return err
	}
	return r.Apply(tx)
}

// Warm initializes base tables before streaming; every registered view
// is computed from the given contents. See Engine.Warm.
func (r *Registry) Warm(tables map[string]*Batch) error {
	if err := r.ensure(); err != nil {
		return err
	}
	return r.warm(tables)
}

// Result returns the maintained result of one registered view.
func (r *Registry) Result(name string) (*Result, error) {
	if err := r.ensure(); err != nil {
		return nil, err
	}
	top, err := r.top(name)
	if err != nil {
		return nil, err
	}
	return r.result(top), nil
}

// Subscribe registers a changefeed subscriber on one registered view;
// the feed semantics match Engine.Subscribe, including OnKey routing.
// Views aliasing the same shape share one maintained top view, so their
// subscribers observe identical deltas.
func (r *Registry) Subscribe(name string, fn func(Delta), opts ...SubOption) (cancel func(), err error) {
	if err := r.ensure(); err != nil {
		return nil, err
	}
	top, err := r.top(name)
	if err != nil {
		return nil, err
	}
	return r.subscribe(top, fn, opts...)
}

// Views returns the registered view names in registration order.
func (r *Registry) Views() []string { return r.sc.Names() }

// Shapes returns the number of distinct compiled query shapes backing
// the registered views (aliased shapes compile and maintain once).
func (r *Registry) Shapes() int { return r.sc.Shapes() }

// SharedViews returns the number of materialized views in the shared
// hierarchy — top views plus deduped auxiliaries. The saving over
// independent engines is the sum of their view counts minus this.
func (r *Registry) SharedViews() int { return r.sc.SharedViews() }

// Program returns the shared maintenance program (building it if
// needed).
func (r *Registry) Program() (*Program, error) {
	if err := r.ensure(); err != nil {
		return nil, err
	}
	return r.prog, nil
}

// TriggerProgram renders the shared maintenance program run for batches
// of one base table. Empty for unknown tables or before any view is
// registered.
func (r *Registry) TriggerProgram(table string) string {
	if err := r.ensure(); err != nil {
		return ""
	}
	return r.triggerProgram(table)
}

// Stats returns the registry's runtime statistics (see Engine.Stats);
// the snapshot is taken under the backend lock.
func (r *Registry) Stats() (Stats, error) {
	if err := r.ensure(); err != nil {
		return Stats{}, err
	}
	return r.statsSnapshot(), nil
}

// Metrics returns the cumulative virtual platform cost of all processed
// transactions. Zero on the local backend.
func (r *Registry) Metrics() Metrics {
	if err := r.ensure(); err != nil {
		return Metrics{}
	}
	total, _ := r.metricsSnapshot()
	return total
}

// LastMetrics returns the platform cost of the most recently applied
// transaction. Zero on the local backend.
func (r *Registry) LastMetrics() Metrics {
	if err := r.ensure(); err != nil {
		return Metrics{}
	}
	_, last := r.metricsSnapshot()
	return last
}

// NewTx returns an empty transaction for this registry's base tables.
func (r *Registry) NewTx() *Tx {
	tx := NewTx()
	tx.bases = r.bases
	return tx
}
