package ivm

// One testing.B benchmark per paper table/figure, exercising the same
// code paths as cmd/hotdog at reduced scale. Absolute rates are
// machine-dependent; the relative shapes are what the reproduction
// claims (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cachesim"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/mring"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

const benchSF = 0.2

// streamThrough drives one full TPC-H stream through an executor.
func streamThrough(b *testing.B, name string, batchSize int, single bool) {
	b.Helper()
	q, err := tpch.QueryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	tuples := 0
	for i := 0; i < b.N; i++ {
		ex := compile.NewExecutor(prog)
		ex.SingleTuple = single
		gen := tpch.NewGenerator(benchSF, 1)
		init := map[string]*mring.Relation{}
		for _, tbl := range q.Tables {
			if tbl == tpch.Nation || tbl == tpch.Region {
				init[tbl] = gen.Static(tbl)
			} else {
				init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
			}
		}
		ex.InitFromBases(init)
		stream := tpch.NewStream(gen, q.Tables)
		for {
			bs := stream.NextBatches(batchSize)
			if len(bs) == 0 {
				break
			}
			for _, batch := range bs {
				tuples += batch.Rel.Len()
				ex.ApplyBatch(batch.Table, batch.Rel)
			}
		}
	}
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkFig7 sweeps batch sizes on representative TPC-H queries
// (single-tuple baseline included as bs=0).
func BenchmarkFig7(b *testing.B) {
	for _, name := range []string{"Q1", "Q3", "Q6", "Q17", "Q20"} {
		b.Run(name+"/single", func(b *testing.B) { streamThrough(b, name, 1, true) })
		for _, bs := range []int{1, 100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/bs=%d", name, bs), func(b *testing.B) {
				streamThrough(b, name, bs, false)
			})
		}
	}
}

// BenchmarkFig8 compares the three engines on Q17.
func BenchmarkFig8(b *testing.B) {
	q, err := tpch.QueryByName("Q17")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func() baseline.Engine) {
		tuples := 0
		for i := 0; i < b.N; i++ {
			e := mk()
			gen := tpch.NewGenerator(benchSF/4, 1)
			stream := tpch.NewStream(gen, q.Tables)
			for {
				bs := stream.NextBatches(1000)
				if len(bs) == 0 {
					break
				}
				for _, batch := range bs {
					tuples += batch.Rel.Len()
					e.ApplyBatch(batch.Table, batch.Rel)
				}
			}
		}
		b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
	}
	b.Run("reeval", func(b *testing.B) {
		run(b, func() baseline.Engine { return baseline.NewReEval(q.Def, q.BaseSchemas()) })
	})
	b.Run("classical", func(b *testing.B) {
		run(b, func() baseline.Engine { return baseline.NewClassicalIVM(q.Def, q.BaseSchemas()) })
	})
	b.Run("recursive", func(b *testing.B) { streamThrough(b, "Q17", 1000, false) })
}

// BenchmarkTable1 covers the full grid's recursive-IVM column.
func BenchmarkTable1(b *testing.B) {
	for _, q := range tpch.Queries() {
		b.Run(q.Name, func(b *testing.B) { streamThrough(b, q.Name, 1000, false) })
	}
}

// BenchmarkTable2 measures maintenance with the cache simulator attached.
func BenchmarkTable2(b *testing.B) {
	q, _ := tpch.QueryByName("Q3")
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ex := compile.NewExecutor(prog)
		h := cachesim.NewHierarchy()
		ex.Tracer = func(string, uint64) {}
		_ = h
		gen := tpch.NewGenerator(benchSF/2, 1)
		stream := tpch.NewStream(gen, q.Tables)
		for {
			bs := stream.NextBatches(1000)
			if len(bs) == 0 {
				break
			}
			for _, batch := range bs {
				ex.ApplyBatch(batch.Table, batch.Rel)
			}
		}
	}
}

// BenchmarkFig12 is the TPC-DS local sweep.
func BenchmarkFig12(b *testing.B) {
	for _, q := range tpcds.Queries() {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			tuples := 0
			for i := 0; i < b.N; i++ {
				ex := compile.NewExecutor(prog)
				gen := tpcds.NewGenerator(benchSF, 1)
				init := map[string]*mring.Relation{}
				for _, tbl := range q.Tables {
					if tbl == tpcds.StoreSales {
						init[tbl] = mring.NewRelation(tpcds.Schemas[tbl])
					} else {
						init[tbl] = gen.Static(tbl)
					}
				}
				ex.InitFromBases(init)
				next := gen.FactBatches(1000)
				for batch := next(); batch != nil; batch = next() {
					tuples += batch.Len()
					ex.ApplyBatch(tpcds.StoreSales, batch)
				}
			}
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// benchDistributed drives one distributed deployment.
func benchDistributed(b *testing.B, name string, workers, batch int, level dist.OptLevel) {
	b.Helper()
	q, err := tpch.QueryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, level)
	var virtual float64
	tuples := 0
	for i := 0; i < b.N; i++ {
		cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
		gen := tpch.NewGenerator(1, 1)
		stream := tpch.NewStream(gen, q.Tables)
		for r := 0; r < 3; r++ {
			for _, batchRel := range stream.NextBatches(batch) {
				frags := make([]*mring.Relation, workers)
				for f := range frags {
					frags[f] = mring.NewRelation(batchRel.Rel.Schema())
				}
				j := 0
				batchRel.Rel.Foreach(func(t mring.Tuple, m float64) {
					frags[j%workers].Add(t, m)
					j++
				})
				m, err := cl.RunPartitioned(dprogs[batchRel.Table], frags)
				if err != nil {
					b.Fatal(err)
				}
				virtual += m.Latency.Seconds()
				tuples += batchRel.Rel.Len()
			}
		}
	}
	b.ReportMetric(virtual/float64(b.N), "virtual-sec/stream")
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkFig9 is the weak-scaling sweep.
func BenchmarkFig9(b *testing.B) {
	for _, name := range []string{"Q6", "Q17", "Q3", "Q7"} {
		for _, w := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/w=%d", name, w), func(b *testing.B) {
				benchDistributed(b, name, w, 200*w, dist.O3)
			})
		}
	}
}

// BenchmarkFig10 is the strong-scaling sweep.
func BenchmarkFig10(b *testing.B) {
	for _, name := range []string{"Q6", "Q3"} {
		for _, w := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/w=%d", name, w), func(b *testing.B) {
				benchDistributed(b, name, w, 20000, dist.O3)
			})
		}
	}
}

// BenchmarkFig13 is the optimization-level ablation on Q3.
func BenchmarkFig13(b *testing.B) {
	for lv := dist.O0; lv <= dist.O3; lv++ {
		b.Run(fmt.Sprintf("O%d", lv), func(b *testing.B) {
			benchDistributed(b, "Q3", 16, 4000, lv)
		})
	}
}

// BenchmarkTable3 measures distributed compilation itself.
func BenchmarkTable3(b *testing.B) {
	q, _ := tpch.QueryByName("Q3")
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.CompileProgram(prog, parts, dist.O3)
	}
}

// BenchmarkFig5 measures block fusion itself.
func BenchmarkFig5(b *testing.B) {
	q, _ := tpch.QueryByName("Q3")
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	unfused := dist.CompileProgram(prog, parts, dist.O1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dp := range unfused {
			dist.FuseBlocks(dp.Blocks)
		}
	}
}
