package compile

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

func tup(vs ...int) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		t[i] = mring.Int(int64(v))
	}
	return t
}

// triJoinQuery is Example 2.1/2.2: Sum_[B](R(A,B) ⋈ S(B,C) ⋈ T(C,D)).
func triJoinQuery() (expr.Expr, map[string]mring.Schema) {
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C"), expr.Base("T", "C", "D")))
	bases := map[string]mring.Schema{
		"R": {"A", "B"}, "S": {"B", "C"}, "T": {"C", "D"},
	}
	return q, bases
}

func TestCompileExample22Structure(t *testing.T) {
	q, bases := triJoinQuery()
	prog, err := Compile("Q", q, bases, Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper materializes: M_Q, M_RS(B,C), M_ST(B), M_R(B), M_S(B,C),
	// M_T(C) — six views at three levels. Check count and key schemas.
	if len(prog.Views) != 6 {
		t.Fatalf("got %d views, want 6:\n%s", len(prog.Views), prog)
	}
	schemas := map[string]int{}
	for _, v := range prog.Views {
		schemas[strings.Join(v.Schema, ",")]++
	}
	// One single-column B view for M_ST and one for M_R, one B,C view for
	// M_RS and one for M_S, one C view for M_T, plus the top B view.
	if schemas["B"] != 3 || schemas["B,C"] != 2 || schemas["C"] != 1 {
		t.Fatalf("unexpected view schemas %v:\n%s", schemas, prog)
	}
	// The R-trigger must have exactly 3 statements (M_Q, M_RS, M_R) in
	// decreasing complexity.
	trg := prog.Triggers["R"]
	if len(trg.Stmts) != 3 {
		t.Fatalf("R trigger has %d stmts, want 3:\n%s", len(trg.Stmts), trg)
	}
	if trg.Stmts[0].LHS != "Q" {
		t.Fatalf("top view must be refreshed first:\n%s", trg)
	}
	degs := make([]int, len(trg.Stmts))
	for i, s := range trg.Stmts {
		degs[i] = prog.View(s.LHS).Degree()
	}
	for i := 1; i < len(degs); i++ {
		if degs[i] > degs[i-1] {
			t.Fatalf("statements not in decreasing complexity %v:\n%s", degs, trg)
		}
	}
	// No statement may reference a base relation: everything is views+deltas.
	for _, trg := range prog.Triggers {
		for _, s := range trg.Stmts {
			if len(expr.Relations(s.RHS, expr.RBase)) > 0 {
				t.Fatalf("statement references base relation: %s", s)
			}
		}
	}
}

// checkAgainstRecompute streams nBatches random batches into the executor
// and cross-checks the maintained result against recomputation from the
// accumulated base tables after every batch.
func checkAgainstRecompute(t *testing.T, name string, q expr.Expr, bases map[string]mring.Schema,
	opts Options, singleTuple bool, seed int64, nBatches, batchSize, domain int) {
	t.Helper()
	prog, err := Compile(name, q, bases, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	ex := NewExecutor(prog)
	ex.SingleTuple = singleTuple
	rng := rand.New(rand.NewSource(seed))

	accum := map[string]*mring.Relation{}
	var relNames []string
	for n, s := range bases {
		accum[n] = mring.NewRelation(s)
		relNames = append(relNames, n)
	}
	// Deterministic relation order for reproducibility.
	for i := 1; i < len(relNames); i++ {
		for j := i; j > 0 && relNames[j] < relNames[j-1]; j-- {
			relNames[j], relNames[j-1] = relNames[j-1], relNames[j]
		}
	}
	for b := 0; b < nBatches; b++ {
		rel := relNames[rng.Intn(len(relNames))]
		batch := mring.NewRelation(bases[rel])
		for i := 0; i < batchSize; i++ {
			tp := make(mring.Tuple, len(bases[rel]))
			for j := range tp {
				tp[j] = mring.Int(int64(rng.Intn(domain)))
			}
			m := float64(1 + rng.Intn(2))
			if rng.Intn(5) == 0 && accum[rel].Get(tp) > 0 {
				m = -1 // deletion of an existing tuple
			}
			batch.Add(tp, m)
		}
		ex.ApplyBatch(rel, batch)
		accum[rel].Merge(batch)

		env := eval.NewEnv()
		for n, r := range accum {
			env.Bind(n, r)
		}
		want := eval.NewCtx(env).Materialize(q)
		if !ex.Result().EqualApprox(want, 1e-6) {
			t.Fatalf("%s (opts=%+v single=%v): batch %d on %s diverged\n got: %v\nwant: %v\nprogram:\n%s",
				name, opts, singleTuple, b, rel, ex.Result(), want, prog)
		}
	}
}

func allOptionCombos() []Options {
	return []Options{
		{},
		{DomainExtraction: true},
		{DomainExtraction: true, PreAggregate: true},
		{DomainExtraction: true, PreAggregate: true, ReEvalUncorrelated: true},
		{PreAggregate: true},
	}
}

func TestExecutorTriJoin(t *testing.T) {
	q, bases := triJoinQuery()
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "Q", q, bases, opts, false, int64(100+i), 12, 6, 4)
	}
}

func TestExecutorTriJoinSingleTuple(t *testing.T) {
	q, bases := triJoinQuery()
	checkAgainstRecompute(t, "Q", q, bases, DefaultOptions(), true, 7, 8, 4, 4)
}

func TestExecutorFilterAndValue(t *testing.T) {
	// SELECT B, SUM(A) FROM R WHERE A > 1 GROUP BY B
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("A"), expr.LitI(1)),
		expr.ValE(expr.V("A"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QF", q, bases, opts, false, int64(200+i), 10, 8, 5)
	}
}

func TestExecutorTwoWayJoin(t *testing.T) {
	// COUNT grouped: Sum_[C](R(A,B) ⋈ S(B,C))
	q := expr.Sum([]string{"C"}, expr.Join(expr.Base("R", "A", "B"), expr.Base("S", "B", "C")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B", "C"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "Q2", q, bases, opts, false, int64(300+i), 12, 6, 4)
	}
}

func TestExecutorNestedCorrelated(t *testing.T) {
	// Example 3.1 / Q17-shape: COUNT(*) FROM R WHERE R.A < (SELECT COUNT(*)
	// FROM S WHERE R.B = S.B)
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2", "C"), expr.Eq(expr.V("B"), expr.V("B2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B2", "C"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QN", q, bases, opts, false, int64(400+i), 10, 5, 4)
	}
	checkAgainstRecompute(t, "QN", q, bases, DefaultOptions(), true, 401, 6, 3, 4)
}

func TestExecutorDistinct(t *testing.T) {
	// Example 3.2: SELECT DISTINCT A FROM R WHERE B > 1.
	q := expr.ExistsE(expr.Sum([]string{"A"}, expr.Join(
		expr.Base("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("B"), expr.LitI(1)))))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QD", q, bases, opts, false, int64(500+i), 10, 5, 4)
	}
}

func TestExecutorUncorrelatedNested(t *testing.T) {
	// Example 3.3: COUNT(*) FROM R WHERE R.A < (SELECT COUNT(*) FROM S)
	// AND R.B = 1 — uncorrelated nesting, re-evaluation strategy.
	inner := expr.Sum(nil, expr.Base("S", "E"))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.Eq(expr.V("B"), expr.LitI(1)),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"E"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QU", q, bases, opts, false, int64(600+i), 10, 4, 4)
	}
}

func TestExecutorUnionQuery(t *testing.T) {
	q := expr.Sum([]string{"A"}, expr.Add(
		expr.Base("R", "A", "B"),
		expr.Base("S", "A", "C")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"A", "C"}}
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QUN", q, bases, opts, false, int64(700+i), 12, 5, 4)
	}
}

func TestExecutorSelfJoin(t *testing.T) {
	q := expr.Sum([]string{"B"}, expr.Join(expr.Base("R", "A", "B"), expr.Base("R", "B", "C")))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	// Self-join schema note: both references use R's physical schema but
	// different variable names; declare via a single base schema of arity 2.
	for i, opts := range allOptionCombos() {
		checkAgainstRecompute(t, "QS", q, bases, opts, false, int64(800+i), 10, 4, 3)
	}
}

func TestPreAggregateStatementInserted(t *testing.T) {
	// A filter on the batch relation shared by all statements must move
	// into the pre-aggregation.
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("A"), expr.LitI(2))))
	prog, err := Compile("QP", q, map[string]mring.Schema{"R": {"A", "B"}},
		Options{DomainExtraction: true, PreAggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	trg := prog.Triggers["R"]
	if len(trg.Stmts) < 2 {
		t.Fatalf("expected preagg statement:\n%s", trg)
	}
	first := trg.Stmts[0]
	if first.Op != eval.OpSet || !strings.HasSuffix(first.LHS, "_R_DELTA") {
		t.Fatalf("first statement is not a pre-aggregation: %s", first)
	}
	v := prog.View(first.LHS)
	if v == nil || !v.Transient {
		t.Fatalf("preagg view must be transient:\n%s", prog)
	}
	// The statement body must carry the static condition.
	if !strings.Contains(first.RHS.String(), "(A > 2)") {
		t.Fatalf("static condition not absorbed: %s", first.RHS)
	}
}

func TestInitFromBases(t *testing.T) {
	q, bases := triJoinQuery()
	prog, err := Compile("Q", q, bases, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Build initial contents, init executor, then stream more updates.
	init := map[string]*mring.Relation{}
	rng := rand.New(rand.NewSource(42))
	for n, s := range bases {
		r := mring.NewRelation(s)
		for i := 0; i < 10; i++ {
			r.Add(tup(rng.Intn(3), rng.Intn(3)), 1)
		}
		init[n] = r
	}
	ex := NewExecutor(prog)
	ex.InitFromBases(init)

	batch := mring.NewRelation(bases["R"])
	batch.Add(tup(1, 2), 1)
	ex.ApplyBatch("R", batch)
	init["R"].Merge(batch)

	env := eval.NewEnv()
	for n, r := range init {
		env.Bind(n, r)
	}
	want := eval.NewCtx(env).Materialize(q)
	if !ex.Result().EqualApprox(want, 1e-6) {
		t.Fatalf("warm start diverged:\n got %v\nwant %v", ex.Result(), want)
	}
}

func TestCompileUndeclaredBase(t *testing.T) {
	q := expr.Sum(nil, expr.Base("R", "A"))
	if _, err := Compile("Q", q, map[string]mring.Schema{}, Options{}); err == nil {
		t.Fatal("expected error for undeclared base relation")
	}
}

func TestMemoryFootprint(t *testing.T) {
	q, bases := triJoinQuery()
	prog, _ := Compile("Q", q, bases, DefaultOptions())
	ex := NewExecutor(prog)
	if ex.MemoryFootprint() != 0 {
		t.Fatal("fresh executor should be empty")
	}
	batch := mring.NewRelation(bases["R"])
	batch.Add(tup(1, 2), 1)
	ex.ApplyBatch("R", batch)
	if ex.MemoryFootprint() == 0 {
		t.Fatal("footprint should grow after updates")
	}
}

func TestPreAggregatePerAlias(t *testing.T) {
	// Q17 shape: the nested alias uses only its correlation key and the
	// aggregated quantity — the price column is projected away by that
	// alias's pre-aggregation (the paper's Q17/Q20-class win).
	inner := expr.Sum(nil, expr.Join(
		expr.Base("L", "pk2", "qty2", "price2"),
		expr.Eq(expr.V("pk2"), expr.V("pk")),
		expr.ValE(expr.V("qty2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("L", "pk", "qty", "price"),
		expr.LiftQ("avgq", inner),
		expr.CmpE(expr.CLt, expr.V("qty"), expr.V("avgq")),
		expr.ValE(expr.V("price"))))
	bases := map[string]mring.Schema{"L": {"pk", "qty", "price"}}
	prog, err := Compile("Q17S", q, bases,
		Options{DomainExtraction: true, PreAggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	trg := prog.Triggers["L"]
	preaggs := 0
	narrow := false
	for _, s := range trg.Stmts {
		if strings.Contains(s.LHS, "_L_DELTA") {
			preaggs++
			if len(prog.View(s.LHS).Schema) < 3 {
				narrow = true
			}
		}
	}
	if preaggs == 0 {
		t.Fatalf("expected per-alias pre-aggregations:\n%s", trg)
	}
	if !narrow {
		t.Fatalf("nested alias pre-aggregation should project columns away:\n%s", prog)
	}
	// The nested alias must be fully substituted (the outer alias uses
	// all columns and legitimately keeps the raw delta).
	for _, s := range trg.Stmts {
		if strings.Contains(s.LHS, "_L_DELTA") {
			continue
		}
		expr.Walk(s.RHS, func(n expr.Expr) bool {
			if r, ok := n.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Cols.Contains("pk2") {
				t.Fatalf("nested alias delta survived substitution: %s", s)
			}
			return true
		})
	}
	// And it must still be correct.
	checkAgainstRecompute(t, "Q17S", q, bases,
		Options{DomainExtraction: true, PreAggregate: true}, false, 31, 10, 5, 4)
}
