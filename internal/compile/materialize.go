package compile

import (
	"fmt"
	"sort"

	"repro/internal/delta"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// compiler carries state across the recursive materialization.
type compiler struct {
	opts    Options
	bases   map[string]mring.Schema
	views   map[string]*ViewDef
	byDef   map[string]string // canonical definition -> view name
	order   []*ViewDef
	counter int
}

// Compile builds the recursive incremental maintenance program for query q
// named queryName over the given base relation schemas.
func Compile(queryName string, q expr.Expr, bases map[string]mring.Schema, opts Options) (*Program, error) {
	for _, rel := range expr.Relations(q, expr.RBase) {
		if _, ok := bases[rel]; !ok {
			return nil, fmt.Errorf("compile: query references undeclared base relation %q", rel)
		}
	}
	c := &compiler{
		opts:  opts,
		bases: bases,
		views: make(map[string]*ViewDef),
		byDef: make(map[string]string),
	}
	c.registerView(queryName, q.Schema(), q)
	// Worklist: every registered view needs maintenance triggers for every
	// base relation its definition references. Processing may register new
	// views, which extend c.order.
	type stmtRec struct {
		rel  string
		stmt Stmt
	}
	var recs []stmtRec
	for i := 0; i < len(c.order); i++ {
		v := c.order[i]
		if v.Transient {
			continue
		}
		for _, rel := range expr.Relations(v.Def, expr.RBase) {
			stmt, ok := c.deltaStatement(v, rel)
			if !ok {
				continue
			}
			recs = append(recs, stmtRec{rel: rel, stmt: stmt})
		}
	}
	prog := &Program{
		QueryName: queryName,
		Query:     q,
		Bases:     bases,
		Views:     c.order,
		Triggers:  make(map[string]*Trigger),
		Opts:      opts,
	}
	for rel := range bases {
		prog.Triggers[rel] = &Trigger{Relation: rel}
	}
	for _, r := range recs {
		trg := prog.Triggers[r.rel]
		trg.Stmts = append(trg.Stmts, r.stmt)
	}
	// Process triggers in sorted relation order: preAggregate registers
	// new transient views, so map-order iteration here would make view
	// order and counter-derived view names differ between two compiles
	// of the same query — which a durable recovery (recompiling in a new
	// process and restoring checkpointed views by name) cannot tolerate.
	rels := make([]string, 0, len(prog.Triggers))
	for rel := range prog.Triggers {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		trg := prog.Triggers[rel]
		c.orderTrigger(trg)
		if opts.PreAggregate {
			c.preAggregate(prog, trg)
		}
	}
	prog.Indexes = collectIndexSpecs(prog)
	prog.Kernels = collectKernelStmts(prog)
	return prog, nil
}

// registerView registers a view, deduplicating by definition.
func (c *compiler) registerView(name string, schema mring.Schema, def expr.Expr) *ViewDef {
	v := &ViewDef{Name: name, Schema: schema.Clone(), Def: def, creation: c.counter}
	c.counter++
	c.views[name] = v
	c.order = append(c.order, v)
	c.byDef[def.String()] = name
	return v
}

// materializeComponent registers (or reuses) the view for an
// update-independent expression and returns a reference to it.
func (c *compiler) materializeComponent(def expr.Expr, schema mring.Schema) *expr.Rel {
	key := def.String()
	if name, ok := c.byDef[key]; ok {
		return expr.View(name, c.views[name].Schema...)
	}
	name := fmt.Sprintf("M%d", c.counter)
	c.registerView(name, schema, def)
	return expr.View(name, schema...)
}

// deltaStatement derives the maintenance statement for view v on updates
// to base relation rel. It returns ok=false when the view is independent
// of rel.
func (c *compiler) deltaStatement(v *ViewDef, rel string) (Stmt, bool) {
	dopts := delta.Options{DomainExtraction: c.opts.DomainExtraction}
	dq := delta.Derive(v.Def, rel, dopts)
	if expr.IsZero(dq) {
		return Stmt{}, false
	}
	if c.opts.ReEvalUncorrelated && c.hasUnrestrictedNesting(dq) {
		// Sec. 3.2.3 / Example 3.3: domain extraction cannot restrict the
		// delta; recompute the view from piecewise-materialized parts.
		rhs := c.rewrite(v.Def, v.Schema, true)
		return Stmt{LHS: v.Name, Op: eval.OpSet, RHS: expr.Simplify(rhs)}, true
	}
	rhs := c.rewrite(dq, v.Schema, false)
	return Stmt{LHS: v.Name, Op: eval.OpAdd, RHS: expr.Simplify(rhs)}, true
}

// hasUnrestrictedNesting reports whether the delta contains a lift
// difference whose extracted domain is unrestricted (constant 1): the
// shape Join(1-domain omitted, lift(new) - lift(old)) that re-evaluates
// the query. Deltas produced with domain extraction carry their domain as
// a join factor; a Plus of two lifts with opposite signs at top level of a
// product, with no restricting factor of overlapping schema, marks it.
func (c *compiler) hasUnrestrictedNesting(dq expr.Expr) bool {
	found := false
	expr.Walk(dq, func(n expr.Expr) bool {
		m, ok := n.(*expr.Mul)
		if !ok {
			return !found
		}
		for i, f := range m.Factors {
			if !isLiftDiff(f) {
				continue
			}
			// Does any factor to the left bind a column of the lift body
			// or a correlated variable? If none, the diff re-evaluates.
			restricted := false
			for j := 0; j < i; j++ {
				if len(m.Factors[j].Schema()) > 0 {
					restricted = true
					break
				}
			}
			if !restricted {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLiftDiff recognizes (lift(Qnew) − lift(Qold)) and the Exists variant,
// where the lift bodies reference base relations (re-evaluation shape).
func isLiftDiff(e expr.Expr) bool {
	p, ok := e.(*expr.Plus)
	if !ok || len(p.Terms) != 2 {
		return false
	}
	isLift := func(t expr.Expr) bool {
		switch x := t.(type) {
		case *expr.Assign:
			return x.Q != nil && expr.HasBaseRelations(x.Q)
		case *expr.Exists:
			return expr.HasBaseRelations(x.Body)
		case *expr.Mul:
			// negated lift: (-1) * lift
			for _, f := range x.Factors {
				switch y := f.(type) {
				case *expr.Assign:
					if y.Q != nil && expr.HasBaseRelations(y.Q) {
						return true
					}
				case *expr.Exists:
					if expr.HasBaseRelations(y.Body) {
						return true
					}
				}
			}
			return false
		}
		return false
	}
	return isLift(p.Terms[0]) && isLift(p.Terms[1])
}

// rewrite replaces maximal update-independent subexpressions of e with
// references to materialized views (registering the views), so that the
// resulting expression evaluates over views and the delta batch only.
// needed lists the columns the surrounding context requires from e.
// treatAllAsIndependent forces materialization of every base-relation
// component even without a delta present (re-evaluation rewriting).
func (c *compiler) rewrite(e expr.Expr, needed mring.Schema, treatAll bool) expr.Expr {
	switch x := e.(type) {
	case *expr.Mul:
		return c.rewriteMul(x.Factors, needed, treatAll)
	case *expr.Plus:
		terms := make([]expr.Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = c.rewrite(t, needed, treatAll)
		}
		return expr.Add(terms...)
	case *expr.Agg:
		body := c.rewrite(x.Body, needed.Union(x.GroupBy), treatAll)
		return expr.Sum(x.GroupBy, body)
	case *expr.Assign:
		if x.Q == nil {
			return x.Clone()
		}
		return expr.LiftQ(x.Var, c.rewrite(x.Q, needed, treatAll))
	case *expr.Exists:
		return expr.ExistsE(c.rewrite(x.Body, needed, treatAll))
	case *expr.Rel:
		if x.Kind == expr.RBase {
			return c.rewriteMul([]expr.Expr{x}, needed, treatAll)
		}
		return x.Clone()
	default:
		return e.Clone()
	}
}

// rewriteMul materializes the update-independent relational factors of a
// product. Factors that contain deltas are recursed into; base-relation
// factors are grouped into connected components (by shared columns) and
// each component becomes one materialized view projected onto its needed
// columns — the footnote-2 rule that avoids materializing disconnected
// join graphs as a single view.
func (c *compiler) rewriteMul(factors []expr.Expr, needed mring.Schema, treatAll bool) expr.Expr {
	type factorInfo struct {
		e      expr.Expr
		indep  bool // base-relation factor, delta free, materializable
		interp bool // comparison / value / assign-value
		vars   mring.Schema
	}
	infos := make([]factorInfo, len(factors))
	for i, f := range factors {
		fi := factorInfo{e: f}
		switch x := f.(type) {
		case *expr.Rel:
			fi.indep = x.Kind == expr.RBase
			fi.vars = x.Schema()
		case *expr.Cmp:
			fi.interp = true
			fi.vars = varsOfVExpr(x.L, x.R)
		case *expr.Val:
			fi.interp = true
			fi.vars = varsOfVExpr(x.E)
		case *expr.Assign:
			if x.Q == nil {
				fi.interp = true
				fi.vars = varsOfVExpr(x.ValE).Union(mring.Schema{x.Var})
			} else {
				fi.vars = expr.FreeVars(f).Union(f.Schema())
				fi.indep = materializable(f)
			}
		case *expr.Const:
			fi.interp = true
		default:
			// Compound factors (unions, lift differences, nested
			// aggregates) interact with the rest of the statement through
			// the variables they consume from outside (correlation) and
			// the columns they produce — internal column names must not
			// widen sibling views.
			fi.vars = expr.FreeVars(f).Union(f.Schema())
			fi.indep = materializable(f)
		}
		infos[i] = fi
	}

	// Union-find over independent factors: connect by shared columns.
	parent := make([]int, len(factors))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := range infos {
		if !infos[i].indep {
			continue
		}
		for j := i + 1; j < len(infos); j++ {
			if !infos[j].indep {
				continue
			}
			if len(infos[i].e.Schema().Intersect(infos[j].e.Schema())) > 0 {
				union(i, j)
			}
		}
	}
	// Attach interpreted factors whose variables are fully covered by one
	// component's schema: they become static conditions inside the view.
	componentOf := make(map[int][]int) // root -> factor indices
	for i := range infos {
		if infos[i].indep {
			r := find(i)
			componentOf[r] = append(componentOf[r], i)
		}
	}
	attached := make(map[int]int) // interp factor -> component root
	for i := range infos {
		if !infos[i].interp || len(infos[i].vars) == 0 {
			continue
		}
		for r, members := range componentOf {
			var sch mring.Schema
			for _, m := range members {
				sch = sch.Union(infos[m].e.Schema())
			}
			if len(infos[i].vars.Intersect(sch)) == len(infos[i].vars) {
				attached[i] = r
				break
			}
		}
	}

	// Needed columns of each component: its schema intersected with what
	// the rest of the statement uses (outer needs + all other factors).
	outerVars := needed.Clone()
	for i := range infos {
		if _, isAttached := attached[i]; isAttached {
			continue
		}
		if infos[i].indep {
			continue // component members handled per component
		}
		outerVars = outerVars.Union(infos[i].vars)
	}

	// Build the rewritten factor list preserving left-to-right order:
	// each component is replaced at its first member's position.
	out := make([]expr.Expr, 0, len(factors))
	emitted := make(map[int]bool) // component roots already emitted
	for i := range infos {
		fi := infos[i]
		switch {
		case fi.indep:
			r := find(i)
			if emitted[r] {
				continue
			}
			emitted[r] = true
			members := componentOf[r]
			var parts []expr.Expr
			var sch mring.Schema
			for _, m := range members {
				parts = append(parts, infos[m].e.Clone())
				sch = sch.Union(infos[m].e.Schema())
			}
			for j := range infos {
				if ar, ok := attached[j]; ok && ar == r {
					parts = append(parts, infos[j].e.Clone())
				}
			}
			// Other components also constrain through shared columns —
			// but components share no columns by construction, so only
			// outerVars matters.
			var otherComp mring.Schema
			for or, oms := range componentOf {
				if or == r {
					continue
				}
				for _, m := range oms {
					otherComp = otherComp.Union(infos[m].e.Schema())
				}
			}
			proj := sch.Intersect(outerVars.Union(otherComp))
			def := expr.Simplify(expr.Sum(proj, expr.Join(parts...)))
			if !treatAll && len(members) == 1 {
				// A single base relation with no projection benefit still
				// becomes a view (base tables are materialized views too),
				// keeping the full schema when everything is needed.
				if rel, ok := infos[members[0]].e.(*expr.Rel); ok && len(proj) == len(rel.Cols) && len(parts) == 1 {
					def = expr.Simplify(expr.Sum(rel.Cols, rel.Clone()))
					out = append(out, c.materializeComponent(def, rel.Cols))
					continue
				}
			}
			out = append(out, c.materializeComponent(def, proj))
		case isAttachedFactor(attached, i):
			// Moved inside a component view.
			continue
		default:
			// Delta-bearing or interpreted factor: recurse for nested
			// structure (lift bodies may contain base relations).
			sub := needed.Clone()
			for j := range infos {
				if j == i {
					continue
				}
				sub = sub.Union(infos[j].vars)
			}
			out = append(out, c.rewrite(fi.e, sub, treatAll))
		}
	}
	return expr.Join(out...)
}

// materializable reports whether a factor can become a standalone view:
// it references base relations, no delta, and is not correlated with its
// evaluation context (no free variables).
func materializable(f expr.Expr) bool {
	return !expr.HasDelta(f) && expr.HasBaseRelations(f) && len(expr.FreeVars(f)) == 0
}

func isAttachedFactor(attached map[int]int, i int) bool {
	_, ok := attached[i]
	return ok
}

func varsOfVExpr(es ...expr.VExpr) mring.Schema {
	var s mring.Schema
	for _, e := range es {
		if e == nil {
			continue
		}
		for _, v := range e.Vars(nil) {
			if !s.Contains(v) {
				s = append(s, v)
			}
		}
	}
	return s
}

// orderTrigger sorts trigger statements so that readers run before the
// views they read are refreshed: a topological sort of the read graph,
// preferring decreasing view complexity (the paper's DAG of dependencies,
// Sec. 2.3). OpSet (re-evaluation) statements run last — they must see
// refreshed auxiliary views.
func (c *compiler) orderTrigger(t *Trigger) {
	adds := make([]Stmt, 0, len(t.Stmts))
	var sets []Stmt
	for _, s := range t.Stmts {
		if s.Op == eval.OpSet {
			sets = append(sets, s)
		} else {
			adds = append(adds, s)
		}
	}
	// Stable pre-sort: decreasing degree, then creation order.
	sort.SliceStable(adds, func(i, j int) bool {
		vi, vj := c.views[adds[i].LHS], c.views[adds[j].LHS]
		di, dj := vi.Degree(), vj.Degree()
		if di != dj {
			return di > dj
		}
		return vi.creation < vj.creation
	})
	// Kahn's algorithm on edges: A -> B when A reads B.LHS (A must run
	// while B's LHS is still pre-update).
	n := len(adds)
	succ := make([][]int, n)
	indeg := make([]int, n)
	lhsIdx := make(map[string]int, n)
	for i, s := range adds {
		lhsIdx[s.LHS] = i
	}
	for i, s := range adds {
		for _, read := range StatementsReading(s) {
			if j, ok := lhsIdx[read]; ok && j != i {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	var order []int
	avail := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		avail = avail[:0]
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				avail = append(avail, i)
			}
		}
		if len(avail) == 0 {
			// Cycle (should not happen): fall back to the pre-sort order.
			for i := 0; i < n; i++ {
				if !used[i] {
					avail = append(avail, i)
					break
				}
			}
		}
		i := avail[0] // pre-sorted order preference
		used[i] = true
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
		}
	}
	sorted := make([]Stmt, 0, len(t.Stmts))
	for _, i := range order {
		sorted = append(sorted, adds[i])
	}
	sorted = append(sorted, sets...)
	t.Stmts = sorted
}
