package compile

// Fingerprint gate: canonical forms (and so fingerprints) must be
// invariant under variable renaming, commutative operand reordering,
// and constant folding — and must differ for every structural
// perturbation. The property test drives randomized renamings so the
// invariance is not an artifact of one hand-picked example.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/mring"
)

// q builds the reference plan: SELECT k, SUM(a*c) FROM R JOIN S ON k
// WHERE a < c, written with the given variable names.
func refQuery(a, k, c string) expr.Expr {
	return expr.Sum([]string{k}, expr.Join(
		expr.Base("R", a, k),
		expr.Base("S", k, c),
		expr.CmpE(expr.CLt, expr.V(a), expr.V(c)),
		expr.ValE(expr.MulV(expr.V(a), expr.V(c))),
	))
}

func TestCanonInvariance(t *testing.T) {
	base := refQuery("a", "k", "c")
	want := Canon(base)
	invariants := map[string]expr.Expr{
		"renamed": refQuery("x", "y", "z"),
		"reordered-factors": expr.Sum([]string{"k"}, expr.Join(
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("c")),
			expr.Base("S", "k", "c"),
			expr.Base("R", "a", "k"),
		)),
		"unit-constant": expr.Sum([]string{"k"}, expr.Join(
			&expr.Const{V: 2},
			&expr.Const{V: 0.5},
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("c")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
	}
	for name, v := range invariants {
		if got := Canon(v); got != want {
			t.Errorf("%s variant changed the canonical form\n got %s\nwant %s", name, got, want)
		}
		if Fingerprint(v) != Fingerprint(base) {
			t.Errorf("%s variant changed the fingerprint", name)
		}
	}
}

func TestCanonDistinguishesStructure(t *testing.T) {
	base := refQuery("a", "k", "c")
	perturbed := map[string]expr.Expr{
		"different-relation": expr.Sum([]string{"k"}, expr.Join(
			expr.Base("R2", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("c")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
		"different-cmp-op": expr.Sum([]string{"k"}, expr.Join(
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLe, expr.V("a"), expr.V("c")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
		"different-group-by": expr.Sum(nil, expr.Join(
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("c")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
		"dropped-predicate": expr.Sum([]string{"k"}, expr.Join(
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
		"different-constant": expr.Sum([]string{"k"}, expr.Join(
			&expr.Const{V: 3},
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("c")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
		// Same skeleton, different variable wiring: the filter compares a
		// column with itself instead of across relations. Must stay
		// distinct even though every factor's shape matches.
		"different-wiring": expr.Sum([]string{"k"}, expr.Join(
			expr.Base("R", "a", "k"),
			expr.Base("S", "k", "c"),
			expr.CmpE(expr.CLt, expr.V("a"), expr.V("a")),
			expr.ValE(expr.MulV(expr.V("a"), expr.V("c"))),
		)),
	}
	want := Canon(base)
	for name, p := range perturbed {
		if Canon(p) == want {
			t.Errorf("%s variant has the same canonical form as the base plan: %s", name, want)
		}
	}
}

// TestFingerprintPropertyRandomRenames is the property test: across
// many random consistent variable renamings of several plan shapes,
// fingerprints collide exactly for same-shape pairs.
func TestFingerprintPropertyRandomRenames(t *testing.T) {
	shapes := []func(a, k, c string) expr.Expr{
		refQuery,
		func(a, k, c string) expr.Expr {
			return expr.Sum(nil, expr.Join(expr.Base("R", a, k), expr.Base("S", k, c)))
		},
		func(a, k, c string) expr.Expr {
			return expr.Sum([]string{k}, expr.Join(
				expr.Base("R", a, k),
				expr.LiftQ(c, expr.Sum(nil, expr.Base("S", k, "d"))),
				expr.CmpE(expr.CGt, expr.V(c), expr.LitI(5)),
			))
		},
		func(a, k, c string) expr.Expr {
			return expr.Sum([]string{k}, expr.Add(
				expr.Base("R", a, k),
				expr.Join(expr.Base("R", a, k), expr.ExistsE(expr.Base("S", k, c))),
			))
		},
	}
	rng := rand.New(rand.NewSource(42))
	name := func() string { return fmt.Sprintf("u%d", rng.Intn(1_000_000)) }
	fps := make([]map[uint64]bool, len(shapes))
	for i := range fps {
		fps[i] = map[uint64]bool{}
	}
	for trial := 0; trial < 200; trial++ {
		a, k, c := name(), name(), name()
		if a == k || k == c || a == c {
			continue
		}
		for i, mk := range shapes {
			fps[i][Fingerprint(mk(a, k, c))] = true
		}
	}
	for i := range shapes {
		if len(fps[i]) != 1 {
			t.Fatalf("shape %d: renaming produced %d distinct fingerprints, want 1", i, len(fps[i]))
		}
	}
	for i := range shapes {
		for j := i + 1; j < len(shapes); j++ {
			for fp := range fps[i] {
				if fps[j][fp] {
					t.Fatalf("shapes %d and %d collide on fingerprint %x", i, j, fp)
				}
			}
		}
	}
}

// TestSharedCompilerMergedOrder pins that merging a single program
// through the shared compiler reproduces its trigger statement order
// exactly — per-view fold sequences (and so float results) stay
// bitwise identical to the independent engine.
func TestSharedCompilerMergedOrder(t *testing.T) {
	bases := map[string]mring.Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	q := expr.Sum([]string{"k"}, expr.Join(expr.Base("R", "a", "k"), expr.Base("S", "k", "c")))
	sc := NewSharedCompiler(bases, DefaultOptions())
	if err := sc.Register("V", q); err != nil {
		t.Fatal(err)
	}
	shared, err := sc.Program()
	if err != nil {
		t.Fatal(err)
	}
	top, _ := sc.Top("V")
	solo, err := Compile(top, q, bases, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Auxiliary views carry fingerprint names in the shared program; map
	// the solo names across (merge preserves view order) and compare the
	// statement sequences under that renaming.
	if len(shared.Views) != len(solo.Views) {
		t.Fatalf("merge changed the view count: %d vs %d", len(shared.Views), len(solo.Views))
	}
	ren := map[string]string{}
	for i, v := range solo.Views {
		ren[v.Name] = shared.Views[i].Name
	}
	for rel := range bases {
		st, ss := shared.Triggers[rel].Stmts, solo.Triggers[rel].Stmts
		if len(st) != len(ss) {
			t.Fatalf("trigger %s: %d merged statements, solo has %d", rel, len(st), len(ss))
		}
		for i := range st {
			want := Stmt{LHS: ren[ss[i].LHS], Op: ss[i].Op, RHS: renameViews(ss[i].RHS, ren)}
			if st[i].String() != want.String() {
				t.Fatalf("trigger %s stmt %d reordered by merge\n got %s\nwant %s",
					rel, i, st[i], want)
			}
		}
	}
}

// TestSharedCompilerStatementDedup pins that registering two shapes
// sharing a sub-plan yields each shared maintenance statement once.
func TestSharedCompilerStatementDedup(t *testing.T) {
	bases := map[string]mring.Schema{"R": {"a", "k"}, "S": {"k", "c"}}
	join := func() expr.Expr { return expr.Join(expr.Base("R", "a", "k"), expr.Base("S", "k", "c")) }
	sc := NewSharedCompiler(bases, DefaultOptions())
	if err := sc.Register("G", expr.Sum([]string{"k"}, join())); err != nil {
		t.Fatal(err)
	}
	if err := sc.Register("T", expr.Sum(nil, join())); err != nil {
		t.Fatal(err)
	}
	prog, err := sc.Program()
	if err != nil {
		t.Fatal(err)
	}
	for rel, trg := range prog.Triggers {
		seen := map[string]bool{}
		for _, s := range trg.Stmts {
			key := canonStmtKey(s)
			if seen[key] {
				t.Fatalf("trigger %s refreshes a shared statement twice: %s", rel, s)
			}
			seen[key] = true
		}
	}
}
