package compile

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// preAggregate inserts batch pre-aggregation statements at the head of
// the trigger (Sec. 3.3): the input batch ΔR is filtered on static
// conditions shared by every statement and projected onto the columns the
// trigger actually uses, merging multiplicities. Statements are rewritten
// to reference the pre-aggregated transient views.
//
// Self-joins and nested subqueries reference ΔR under several column
// bindings (aliases); each alias gets its own pre-aggregation, since each
// may use different columns (this is where the paper's Q17/Q18/Q20-class
// wins come from: the nested-side alias projects onto a tiny key set).
// An alias is skipped when pre-aggregation cannot shrink it: no absorbed
// condition and all columns used.
func (c *compiler) preAggregate(prog *Program, t *Trigger) {
	if len(t.Stmts) == 0 {
		return
	}
	rel := t.Relation

	// Group delta references by alias (their column binding).
	var aliases []mring.Schema
	seen := map[string]bool{}
	for _, s := range t.Stmts {
		expr.Walk(s.RHS, func(n expr.Expr) bool {
			if r, ok := n.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Name == rel {
				k := ""
				for _, col := range r.Cols {
					k += col + "\x00"
				}
				if !seen[k] {
					seen[k] = true
					aliases = append(aliases, r.Cols.Clone())
				}
			}
			return true
		})
	}
	for ai, alias := range aliases {
		c.preAggregateAlias(prog, t, alias, ai)
	}
}

func (c *compiler) preAggregateAlias(prog *Program, t *Trigger, alias mring.Schema, idx int) {
	rel := t.Relation
	// Static conditions over this alias's columns shared by every
	// statement referencing the alias; they move into the
	// pre-aggregation, so strip them before computing used columns.
	shared := sharedStaticConditions(t.Stmts, rel, alias)
	stripped := make([]expr.Expr, len(t.Stmts))
	used := mring.Schema{}
	refs := false
	for i, s := range t.Stmts {
		stripped[i] = s.RHS
		if !refsAlias(s.RHS, rel, alias) {
			continue
		}
		refs = true
		stripped[i] = stripAbsorbed(s.RHS, rel, alias, shared)
		vars := statementVars(Stmt{LHS: s.LHS, RHS: stripped[i]}, c.views, rel, alias)
		used = used.Union(alias.Intersect(vars))
	}
	if !refs {
		return
	}
	if len(shared) == 0 && len(used) == len(alias) {
		return // nothing to gain
	}

	name := fmt.Sprintf("%s_%s_DELTA", prog.QueryName, rel)
	if idx > 0 {
		name = fmt.Sprintf("%s_%s_DELTA_%d", prog.QueryName, rel, idx)
	}
	if _, exists := c.views[name]; exists {
		return
	}
	parts := []expr.Expr{expr.Delta(rel, alias...)}
	for _, cmp := range shared {
		parts = append(parts, cmp.Clone())
	}
	def := expr.Simplify(expr.Sum(used, expr.Join(parts...)))
	v := c.registerView(name, used, def)
	v.Transient = true
	prog.Views = c.order

	// The pre-aggregation is an OpSet of an aggregate over the delta, so
	// the executor evaluates it straight into a hash-native group table
	// (one streaming HashCols probe per batch tuple) and blind-fills the
	// transient view with the table's stored hashes — no string keys and
	// no scratch relation on the per-batch path.
	preaggStmt := Stmt{LHS: name, Op: eval.OpSet, RHS: def}
	for i := range t.Stmts {
		t.Stmts[i].RHS = substituteDelta(stripped[i], rel, alias, name, used)
	}
	t.Stmts = append([]Stmt{preaggStmt}, t.Stmts...)
}

// refsAlias reports whether e references ΔR under the given alias.
func refsAlias(e expr.Expr, rel string, alias mring.Schema) bool {
	found := false
	expr.Walk(e, func(n expr.Expr) bool {
		if r, ok := n.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Name == rel && r.Cols.Equal(alias) {
			found = true
		}
		return !found
	})
	return found
}

// statementVars collects every variable referenced by the statement's RHS
// outside the target alias's delta terms, plus the LHS view schema.
// References to other aliases count: their columns are bound variables of
// the statement.
func statementVars(s Stmt, views map[string]*ViewDef, rel string, alias mring.Schema) mring.Schema {
	vars := mring.Schema{}
	if v, ok := views[s.LHS]; ok {
		vars = vars.Union(v.Schema)
	}
	expr.Walk(s.RHS, func(n expr.Expr) bool {
		switch x := n.(type) {
		case *expr.Rel:
			if x.Kind == expr.RDelta && x.Name == rel && x.Cols.Equal(alias) {
				return true
			}
			vars = vars.Union(x.Cols)
		case *expr.Cmp:
			vars = vars.Union(varsOfVExpr(x.L, x.R))
		case *expr.Val:
			vars = vars.Union(varsOfVExpr(x.E))
		case *expr.Assign:
			if x.ValE != nil {
				vars = vars.Union(varsOfVExpr(x.ValE))
			}
			vars = vars.Union(mring.Schema{x.Var})
		case *expr.Agg:
			vars = vars.Union(x.GroupBy)
		}
		return true
	})
	return vars
}

// sharedStaticConditions returns the comparison factors whose variables
// are all alias columns and which occur in every statement referencing
// the alias.
func sharedStaticConditions(stmts []Stmt, rel string, alias mring.Schema) []*expr.Cmp {
	var shared []*expr.Cmp
	first := true
	for _, s := range stmts {
		if !refsAlias(s.RHS, rel, alias) {
			continue
		}
		conds := staticConditions(s.RHS, rel, alias)
		if first {
			shared = conds
			first = false
			continue
		}
		var keep []*expr.Cmp
		for _, c := range shared {
			for _, d := range conds {
				if c.String() == d.String() {
					keep = append(keep, c)
					break
				}
			}
		}
		shared = keep
	}
	return shared
}

// staticConditions finds Cmp factors in products that also contain the
// alias's delta term, whose variables are all alias columns.
func staticConditions(e expr.Expr, rel string, alias mring.Schema) []*expr.Cmp {
	var out []*expr.Cmp
	expr.Walk(e, func(n expr.Expr) bool {
		m, ok := n.(*expr.Mul)
		if !ok {
			return true
		}
		hasDelta := false
		for _, f := range m.Factors {
			if r, ok := f.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Name == rel && r.Cols.Equal(alias) {
				hasDelta = true
			}
		}
		if !hasDelta {
			return true
		}
		for _, f := range m.Factors {
			if c, ok := f.(*expr.Cmp); ok {
				vars := varsOfVExpr(c.L, c.R)
				if len(vars) > 0 && len(vars.Intersect(alias)) == len(vars) {
					out = append(out, c)
				}
			}
		}
		return true
	})
	return out
}

// stripAbsorbed removes, top-down, the absorbed static conditions from
// every product that contains the alias's ΔR term at its top level.
func stripAbsorbed(e expr.Expr, rel string, alias mring.Schema, absorbed []*expr.Cmp) expr.Expr {
	if len(absorbed) == 0 {
		return e
	}
	isAbsorbed := func(c *expr.Cmp) bool {
		for _, a := range absorbed {
			if a.String() == c.String() {
				return true
			}
		}
		return false
	}
	var rec func(expr.Expr) expr.Expr
	rec = func(n expr.Expr) expr.Expr {
		switch x := n.(type) {
		case *expr.Mul:
			hasDelta := false
			for _, f := range x.Factors {
				if r, ok := f.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Name == rel && r.Cols.Equal(alias) {
					hasDelta = true
				}
			}
			var fs []expr.Expr
			for _, f := range x.Factors {
				if cmp, ok := f.(*expr.Cmp); ok && hasDelta && isAbsorbed(cmp) {
					continue
				}
				fs = append(fs, rec(f))
			}
			return expr.Join(fs...)
		case *expr.Plus:
			ts := make([]expr.Expr, len(x.Terms))
			for i, t := range x.Terms {
				ts[i] = rec(t)
			}
			return expr.Add(ts...)
		case *expr.Agg:
			return expr.Sum(x.GroupBy, rec(x.Body))
		case *expr.Assign:
			if x.Q != nil {
				return expr.LiftQ(x.Var, rec(x.Q))
			}
			return x.Clone()
		case *expr.Exists:
			return expr.ExistsE(rec(x.Body))
		default:
			return n.Clone()
		}
	}
	return rec(e)
}

// substituteDelta replaces the alias's ΔR terms with a reference to the
// pre-aggregated transient view projected onto the used columns.
func substituteDelta(e expr.Expr, rel string, alias mring.Schema, viewName string, used mring.Schema) expr.Expr {
	out := expr.Transform(e, func(n expr.Expr) expr.Expr {
		if r, ok := n.(*expr.Rel); ok && r.Kind == expr.RDelta && r.Name == rel && r.Cols.Equal(alias) {
			return expr.View(viewName, used...)
		}
		return n
	})
	return expr.Simplify(out)
}
