package compile

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// PlanCache caches compiled programs keyed by query shape (canonical
// query form + base schemas + options), so registering the N-th
// structurally identical view costs one canonicalization and a map
// lookup instead of a full compile. Cached programs are shared and must
// be treated as read-only; the shared compiler only ever reads them,
// renaming into fresh trees while merging.
type PlanCache struct {
	mu           sync.Mutex
	m            map[string]*Program
	hits, misses int
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{m: make(map[string]*Program)}
}

// SharedPlans is the process-wide default plan cache used by
// NewSharedCompiler; registries in one process share compiled shapes.
var SharedPlans = NewPlanCache()

// Stats returns the cache hit/miss counters.
func (pc *PlanCache) Stats() (hits, misses int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

func (pc *PlanCache) lookup(key string) *Program {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	p := pc.m[key]
	if p != nil {
		pc.hits++
	} else {
		pc.misses++
	}
	return p
}

func (pc *PlanCache) store(key string, p *Program) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.m[key] = p
}

// planKey renders the full shape key of one compilation: the canonical
// query plus everything else Compile's output depends on.
func planKey(canon string, bases map[string]mring.Schema, opts Options) string {
	names := make([]string, 0, len(bases))
	for n := range bases {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(canon)
	for _, n := range names {
		fmt.Fprintf(&b, "\x00%s(%s)", n, strings.Join(bases[n], ","))
	}
	fmt.Fprintf(&b, "\x00%v", opts)
	return b.String()
}

// SharedCompiler compiles a set of queries into one shared maintenance
// program — the compile side of multi-view serving. Each registered
// query compiles once per structural shape through the plan cache; a
// structurally identical query (same canonical form) becomes a pure
// alias of the existing top view. Auxiliary views rename to
// content-fingerprint names shared across programs, and trigger
// statements dedupe by canonical form, so every shared sub-plan — in
// particular every shared pre-aggregation — is computed once per
// transaction and fanned out to all dependent top views.
type SharedCompiler struct {
	bases map[string]mring.Schema
	opts  Options
	cache *PlanCache

	tops      map[string]string // registered name -> canonical top view
	order     []string          // registration order
	shapeTops map[string]string // query canon -> canonical top view
	queries   map[string]expr.Expr

	views    map[string]*ViewDef
	vorder   []*ViewDef
	viewName map[string]string // view canon key -> shared view name
	trig     map[string]*mergedTrigger
	counter  int
}

type mergedTrigger struct {
	stmts []Stmt
	keys  map[string]bool
}

// NewSharedCompiler creates a shared compiler over the given base
// schemas, using the process-wide plan cache.
func NewSharedCompiler(bases map[string]mring.Schema, opts Options) *SharedCompiler {
	return &SharedCompiler{
		bases:     bases,
		opts:      opts,
		cache:     SharedPlans,
		tops:      make(map[string]string),
		shapeTops: make(map[string]string),
		queries:   make(map[string]expr.Expr),
		views:     make(map[string]*ViewDef),
		viewName:  make(map[string]string),
		trig:      make(map[string]*mergedTrigger),
	}
}

// Register adds one named query to the shared program. Structurally
// identical queries (equal canonical forms) share one compiled shape and
// one maintained top view.
func (sc *SharedCompiler) Register(name string, q expr.Expr) error {
	if _, dup := sc.tops[name]; dup {
		return fmt.Errorf("compile: view %q already registered", name)
	}
	for _, rel := range expr.Relations(q, expr.RBase) {
		if _, ok := sc.bases[rel]; !ok {
			return fmt.Errorf("compile: query references undeclared base relation %q", rel)
		}
	}
	canon := Canon(q)
	if top, ok := sc.shapeTops[canon]; ok {
		// Same shape as an already-registered view: alias, O(1).
		sc.tops[name] = top
		sc.order = append(sc.order, name)
		return nil
	}
	top := sharedTopName(canon)
	if _, taken := sc.views[top]; taken {
		return fmt.Errorf("compile: top-view fingerprint collision on %q (distinct shapes)", top)
	}
	key := planKey(canon, sc.bases, sc.opts)
	prog := sc.cache.lookup(key)
	if prog == nil {
		var err error
		prog, err = Compile(top, q, sc.bases, sc.opts)
		if err != nil {
			return err
		}
		sc.cache.store(key, prog)
	}
	if err := sc.merge(prog); err != nil {
		return err
	}
	sc.shapeTops[canon] = top
	sc.queries[top] = q
	sc.tops[name] = top
	sc.order = append(sc.order, name)
	return nil
}

// merge folds one compiled program into the shared view hierarchy and
// triggers: auxiliary views rename to their content-fingerprint shared
// names, and statements already present (canonically equal) are dropped —
// required for correctness, since a shared view must be refreshed exactly
// once per trigger.
func (sc *SharedCompiler) merge(prog *Program) error {
	ren := make(map[string]string, len(prog.Views))
	for i, v := range prog.Views {
		cname := v.Name // top view: already the canonical shape name
		if i > 0 {
			key := canonViewKey(v)
			if existing, ok := sc.viewName[key]; ok {
				ren[v.Name] = existing
				continue
			}
			cname = sharedViewName(key)
			if _, taken := sc.views[cname]; taken {
				return fmt.Errorf("compile: sub-plan fingerprint collision on %q (distinct definitions)", cname)
			}
			sc.viewName[key] = cname
		}
		ren[v.Name] = cname
		nv := &ViewDef{
			Name:      cname,
			Schema:    v.Schema.Clone(),
			Def:       renameViews(v.Def, ren),
			Transient: v.Transient,
			creation:  sc.counter,
		}
		sc.counter++
		sc.views[cname] = nv
		sc.vorder = append(sc.vorder, nv)
	}
	for rel, trg := range prog.Triggers {
		mt := sc.trig[rel]
		if mt == nil {
			mt = &mergedTrigger{keys: make(map[string]bool)}
			sc.trig[rel] = mt
		}
		for _, s := range trg.Stmts {
			ns := Stmt{LHS: ren[s.LHS], Op: s.Op, RHS: renameViews(s.RHS, ren)}
			key := canonStmtKey(ns)
			if mt.keys[key] {
				continue
			}
			mt.keys[key] = true
			mt.stmts = append(mt.stmts, ns)
		}
	}
	return nil
}

// Top returns the canonical top-view name serving a registered view.
func (sc *SharedCompiler) Top(name string) (string, bool) {
	t, ok := sc.tops[name]
	return t, ok
}

// Names returns the registered view names in registration order.
func (sc *SharedCompiler) Names() []string {
	return append([]string(nil), sc.order...)
}

// Shapes returns the number of distinct compiled query shapes.
func (sc *SharedCompiler) Shapes() int { return len(sc.shapeTops) }

// SharedViews returns the number of materialized views in the shared
// hierarchy (top views plus deduped auxiliaries).
func (sc *SharedCompiler) SharedViews() int { return len(sc.vorder) }

// Program finalizes the shared maintenance program: merged triggers are
// re-ordered under the cross-program read-before-refresh constraints,
// and the access-path and kernel analyses run over the merged whole.
func (sc *SharedCompiler) Program() (*Program, error) {
	if len(sc.order) == 0 {
		return nil, fmt.Errorf("compile: shared program has no registered views")
	}
	firstTop := sc.tops[sc.order[0]]
	prog := &Program{
		QueryName: firstTop,
		Query:     sc.queries[firstTop],
		Bases:     sc.bases,
		Views:     append([]*ViewDef(nil), sc.vorder...),
		Triggers:  make(map[string]*Trigger),
		Opts:      sc.opts,
	}
	for rel := range sc.bases {
		t := &Trigger{Relation: rel}
		if mt := sc.trig[rel]; mt != nil {
			t.Stmts = orderMergedStmts(sc.views, mt.stmts)
		}
		prog.Triggers[rel] = t
	}
	prog.Indexes = collectIndexSpecs(prog)
	prog.Kernels = collectKernelStmts(prog)
	return prog, nil
}

// orderMergedStmts orders the deduped union of several programs'
// statements for one trigger. Within one compiled program the statements
// already run pre-aggregations first, maintenance statements in
// topological read-before-refresh order, and re-evaluation OpSets last;
// the merge re-establishes exactly those constraints across programs.
// The Kahn pass prefers first-registration order, so a topologically
// valid input (any single program, and most merges) comes out unchanged —
// each view's per-transaction fold sequence stays bitwise identical to
// its independent engine's.
func orderMergedStmts(views map[string]*ViewDef, stmts []Stmt) []Stmt {
	var pre, adds, sets []Stmt
	for _, s := range stmts {
		v := views[s.LHS]
		switch {
		case s.Op == eval.OpSet && v != nil && v.Transient:
			pre = append(pre, s) // pre-aggregations feed everything below
		case s.Op == eval.OpSet:
			sets = append(sets, s) // re-evaluations read refreshed views
		default:
			adds = append(adds, s)
		}
	}
	n := len(adds)
	lhsIdx := make(map[string]int, n)
	for i, s := range adds {
		lhsIdx[s.LHS] = i
	}
	// Edges: A -> B when A reads B.LHS (A must run while B's target is
	// still pre-update).
	succ := make([][]int, n)
	indeg := make([]int, n)
	for i, s := range adds {
		for _, read := range StatementsReading(s) {
			if j, ok := lhsIdx[read]; ok && j != i {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	ordered := pre
	used := make([]bool, n)
	for k := 0; k < n; k++ {
		pick := -1
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Cycle (should not happen): fall back to registration order.
			for i := 0; i < n; i++ {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		ordered = append(ordered, adds[pick])
		for _, j := range succ[pick] {
			indeg[j]--
		}
	}
	return append(ordered, sets...)
}
