package compile

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/expr"
	"repro/internal/mring"
)

// Canon returns the canonical rendering of an expression: constants are
// folded (expr.Simplify), the operand order of the commutative operators
// (bag union, natural join) is normalized by a name-insensitive
// structural skeleton, and every variable is renamed to a positional
// name in first-occurrence order over the normalized tree. Two
// expressions have equal canonical forms exactly when they are the same
// plan up to variable naming, commutative operand order, and constant
// folding. Relation names (base tables, views, deltas) are preserved —
// plans over different relations are different plans.
//
// The canonical tree is never evaluated: execution keeps the original
// factor order (Mul binds variables left to right, Sec. 3.2.1), so
// canonicalization only keys the plan cache and the cross-view sub-plan
// dedup of the shared compiler.
func Canon(e expr.Expr) string {
	n := sortCommutative(expr.Simplify(e.Clone()))
	return renameVars(n, canonRenaming(n)).String()
}

// Fingerprint returns a 64-bit structural hash of Canon(e). Shared view
// names derive from it; the full canonical string remains the dedup key,
// so a hash collision between distinct plans is detected, never silently
// merged.
func Fingerprint(e expr.Expr) uint64 { return hash64(Canon(e)) }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// canonStmtKey identifies one trigger statement for cross-program
// statement dedup: target view, operator, and the canonical RHS. View
// references inside the RHS must already carry their shared (canonical)
// names when this is used across programs.
func canonStmtKey(s Stmt) string {
	return s.LHS + " " + s.Op.String() + " " + Canon(s.RHS)
}

// canonViewKey identifies one view definition for cross-program view
// dedup. The arity is included defensively; canonical-form equality
// already implies equal projection width.
func canonViewKey(v *ViewDef) string {
	return Canon(v.Def) + "|" + strconv.Itoa(len(v.Schema))
}

// sortCommutative normalizes the operand order of Mul and Plus nodes,
// bottom-up, by each operand's structural skeleton (its rendering with
// every variable name blanked). The sort is stable, so operands with
// identical skeletons — same shape, different variable wiring — keep
// their original relative order and two such plans conservatively stay
// distinct.
func sortCommutative(e expr.Expr) expr.Expr {
	return expr.Transform(e, func(n expr.Expr) expr.Expr {
		switch x := n.(type) {
		case *expr.Mul:
			sortBySkeleton(x.Factors)
		case *expr.Plus:
			sortBySkeleton(x.Terms)
		}
		return n
	})
}

func sortBySkeleton(ops []expr.Expr) {
	keys := make([]string, len(ops))
	for i, o := range ops {
		keys[i] = skeleton(o)
	}
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sorted := make([]expr.Expr, len(ops))
	for i, j := range idx {
		sorted[i] = ops[j]
	}
	copy(ops, sorted)
}

// skeleton renders an expression with every variable name blanked: the
// name-insensitive shape used as the commutative sort key.
func skeleton(e expr.Expr) string {
	return renameVars(e, func(string) string { return "_" }).String()
}

// canonRenaming maps every variable to a positional canonical name
// (v0, v1, ...) in first-occurrence order of a pre-order traversal.
func canonRenaming(e expr.Expr) func(string) string {
	m := map[string]string{}
	add := func(vs []string) {
		for _, v := range vs {
			if _, ok := m[v]; !ok {
				m[v] = "v" + strconv.Itoa(len(m))
			}
		}
	}
	expr.Walk(e, func(n expr.Expr) bool {
		switch x := n.(type) {
		case *expr.Rel:
			add(x.Cols)
		case *expr.Cmp:
			add(x.L.Vars(nil))
			add(x.R.Vars(nil))
		case *expr.Val:
			add(x.E.Vars(nil))
		case *expr.Assign:
			add([]string{x.Var})
			if x.ValE != nil {
				add(x.ValE.Vars(nil))
			}
		case *expr.Agg:
			add(x.GroupBy)
		}
		return true
	})
	return func(v string) string {
		if c, ok := m[v]; ok {
			return c
		}
		return v
	}
}

// renameVars rebuilds the tree with every variable name mapped through
// f: relation column bindings, group-by columns, assignment targets, and
// the variables of value expressions and comparisons.
func renameVars(e expr.Expr, f func(string) string) expr.Expr {
	return expr.Transform(e, func(n expr.Expr) expr.Expr {
		switch x := n.(type) {
		case *expr.Rel:
			c := *x
			c.Cols = renameSchema(x.Cols, f)
			return &c
		case *expr.Agg:
			return &expr.Agg{GroupBy: renameSchema(x.GroupBy, f), Body: x.Body}
		case *expr.Assign:
			c := &expr.Assign{Var: f(x.Var), Q: x.Q}
			if x.ValE != nil {
				c.ValE = renameVExpr(x.ValE, f)
			}
			return c
		case *expr.Cmp:
			return &expr.Cmp{Op: x.Op, L: renameVExpr(x.L, f), R: renameVExpr(x.R, f)}
		case *expr.Val:
			return &expr.Val{E: renameVExpr(x.E, f)}
		}
		return n
	})
}

func renameSchema(s mring.Schema, f func(string) string) mring.Schema {
	out := make(mring.Schema, len(s))
	for i, v := range s {
		out[i] = f(v)
	}
	return out
}

func renameVExpr(v expr.VExpr, f func(string) string) expr.VExpr {
	switch x := v.(type) {
	case expr.VarRef:
		return expr.VarRef{Name: f(x.Name)}
	case expr.Arith:
		return expr.Arith{Op: x.Op, L: renameVExpr(x.L, f), R: renameVExpr(x.R, f)}
	default:
		// Literals carry no variables.
		return v
	}
}

// renameViews rewrites view references (and nothing else) through the
// ren map, returning a new tree; references absent from the map keep
// their names.
func renameViews(e expr.Expr, ren map[string]string) expr.Expr {
	return expr.Transform(e, func(n expr.Expr) expr.Expr {
		if r, ok := n.(*expr.Rel); ok && r.Kind == expr.RView {
			if to, ok := ren[r.Name]; ok && to != r.Name {
				c := *r
				c.Name = to
				c.Cols = r.Cols.Clone()
				return &c
			}
		}
		return n
	})
}

// sharedViewName derives the content-addressed name of a shared
// auxiliary view from its canonical definition key.
func sharedViewName(key string) string {
	return fmt.Sprintf("S%016x", hash64(key))
}

// sharedTopName derives the canonical top-view name of a query shape
// from the query's canonical form.
func sharedTopName(canon string) string {
	return fmt.Sprintf("Q%016x", hash64(canon))
}
