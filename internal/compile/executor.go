package compile

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Executor runs a compiled maintenance program locally: it owns the
// materialized view contents and applies update batches through the
// program's triggers. The stream starts from an empty database, as in the
// paper's streaming experiments; InitFromBases supports warm starts.
type Executor struct {
	prog  *Program
	env   *eval.Env
	views map[string]*mring.Relation
	// deltaIdx holds, per Δ-delta env name, the index masks the triggers
	// slice update batches with; ApplyBatch registers them on each batch.
	deltaIdx map[string][][]int
	// Stats accumulates evaluation statistics across batches.
	Stats eval.Stats
	// SingleTuple processes batches one tuple at a time through the same
	// triggers (the tuple-at-a-time comparison mode of Sec. 3.3).
	SingleTuple bool
	// Tracer forwards relation accesses (for the cache-locality
	// experiment); nil disables tracing.
	Tracer func(rel string, tupleHash uint64)
}

// NewExecutor creates an executor with empty view contents. The secondary
// indexes declared by the compiler's access-path analysis are registered
// on the views up front; the relations maintain them incrementally from
// then on.
func NewExecutor(prog *Program) *Executor {
	ex := &Executor{
		prog:     prog,
		env:      eval.NewEnv(),
		views:    make(map[string]*mring.Relation),
		deltaIdx: make(map[string][][]int),
	}
	for _, v := range prog.Views {
		ex.views[v.Name] = ex.env.Define(v.Name, v.Schema)
	}
	for _, spec := range prog.Indexes {
		if r, ok := ex.views[spec.Rel]; ok {
			r.EnsureIndex(spec.Pos)
		} else {
			// Δ-delta (registered per batch) or base table (registered by
			// InitFromBases when a warm start supplies contents).
			ex.deltaIdx[spec.Rel] = append(ex.deltaIdx[spec.Rel], spec.Pos)
		}
	}
	return ex
}

// Program returns the compiled program backing the executor.
func (ex *Executor) Program() *Program { return ex.prog }

// View returns the contents of a materialized view (the query result
// lives under the program's query name).
func (ex *Executor) View(name string) *mring.Relation {
	r := ex.views[name]
	if r == nil {
		panic(fmt.Sprintf("compile: unknown view %q", name))
	}
	return r
}

// Result returns the top-level query result view.
func (ex *Executor) Result() *mring.Relation { return ex.View(ex.prog.QueryName) }

// InitFromBases loads non-empty initial base tables by evaluating every
// view definition from scratch.
func (ex *Executor) InitFromBases(bases map[string]*mring.Relation) {
	env := eval.NewEnv()
	for n, r := range bases {
		env.Bind(n, r)
		for _, pos := range ex.deltaIdx[n] {
			r.EnsureIndex(pos)
		}
	}
	ctx := eval.NewCtx(env)
	for _, v := range ex.prog.Views {
		if v.Transient {
			continue
		}
		if expr.HasDelta(v.Def) {
			continue
		}
		ctx.Apply(ex.views[v.Name], eval.OpSet, v.Def)
	}
}

// TableBatch pairs one base relation with its update batch. A slice of
// them is a multi-table transaction, folded in slice order.
type TableBatch struct {
	Table string
	Batch *mring.Relation
}

// ApplyBatch runs the trigger for base relation rel with the given update
// batch (insertions have positive multiplicities, deletions negative).
func (ex *Executor) ApplyBatch(rel string, batch *mring.Relation) {
	trg := ex.prog.Triggers[rel]
	if trg == nil {
		panic(fmt.Sprintf("compile: no trigger for relation %q", rel))
	}
	ex.applyBatch(trg, rel, batch, nil)
}

// ApplyTx folds one multi-table transaction into all maintained views:
// each table's trigger runs in transaction order, and every change the
// triggers fold into the top-level result view is captured (via the
// evaluation layer's fold sinks) into the returned delta relation — the
// exact per-group result change of this transaction. Applying a
// transaction is equivalent to applying its batches as sequential
// single-table batches; the transaction boundary determines what one
// changefeed delta covers.
func (ex *Executor) ApplyTx(tx []TableBatch) (*mring.Relation, error) {
	sink := mring.NewRelation(ex.Result().Schema())
	if err := ex.ApplyTxCapture(tx, map[string]*mring.Relation{ex.prog.QueryName: sink}); err != nil {
		return nil, err
	}
	return sink, nil
}

// ApplyTxCapture folds one multi-table transaction like ApplyTx, but
// captures the per-group change of every view named in sinks — the
// multi-view serving path, where one shared program maintains several
// top views and each subscriber-backed view needs its own delta. A nil
// or empty sinks map folds without any capture work.
func (ex *Executor) ApplyTxCapture(tx []TableBatch, sinks map[string]*mring.Relation) error {
	for _, tb := range tx {
		if ex.prog.Triggers[tb.Table] == nil {
			return fmt.Errorf("compile: no trigger for relation %q", tb.Table)
		}
	}
	for name := range sinks {
		if ex.views[name] == nil {
			return fmt.Errorf("compile: cannot capture unknown view %q", name)
		}
	}
	for _, tb := range tx {
		ex.applyBatch(ex.prog.Triggers[tb.Table], tb.Table, tb.Batch, sinks)
	}
	return nil
}

func (ex *Executor) applyBatch(trg *Trigger, rel string, batch *mring.Relation, sinks map[string]*mring.Relation) {
	dn := eval.DeltaName(rel)
	if ex.SingleTuple {
		single := mring.NewRelation(batch.Schema())
		for _, pos := range ex.deltaIdx[dn] {
			single.EnsureIndex(pos)
		}
		batch.Foreach(func(t mring.Tuple, m float64) {
			single.Clear()
			single.Add(t, m)
			ex.runTrigger(trg, rel, single, sinks)
		})
		return
	}
	for _, pos := range ex.deltaIdx[dn] {
		batch.EnsureIndex(pos)
	}
	ex.runTrigger(trg, rel, batch, sinks)
}

func (ex *Executor) runTrigger(trg *Trigger, rel string, batch *mring.Relation, sinks map[string]*mring.Relation) {
	ex.env.Bind(eval.DeltaName(rel), batch)
	ctx := eval.NewCtx(ex.env)
	ctx.Tracer = ex.Tracer
	for name, sink := range sinks {
		ctx.CaptureFolds(ex.views[name], sink)
	}
	for _, s := range trg.Stmts {
		// FoldStmt materializes the RHS before the target mutates (so
		// self-references observe a consistent pre-statement state) and
		// routes aggregate statements through the hash-native group
		// table; the views' secondary indexes are maintained
		// incrementally by the folds, so no invalidation is needed
		// between statements.
		ctx.FoldStmt(ex.views[s.LHS], s.Op, s.RHS)
	}
	ex.Stats.Add(ctx.Stats)
}

// ForEachView calls f for every non-transient materialized view, in
// program order. The tuning layer uses it to sweep per-index admission
// state; transient (per-transaction) views are skipped — their indexes
// live only for one maintenance step and are never worth demoting.
func (ex *Executor) ForEachView(f func(name string, r *mring.Relation)) {
	for _, v := range ex.prog.Views {
		if v.Transient {
			continue
		}
		f(v.Name, ex.views[v.Name])
	}
}

// ForEachViewAll visits every program view INCLUDING transient ones, in
// program order. Durability snapshots use it: transient views are
// re-derived per transaction, but their retained table capacity shapes
// later layouts, so exact recovery must capture them too.
func (ex *Executor) ForEachViewAll(f func(name string, r *mring.Relation)) {
	for _, v := range ex.prog.Views {
		f(v.Name, ex.views[v.Name])
	}
}

// LookupView returns a view's relation, or nil when the program has no
// such view (the non-panicking form of View, for restore-path validation
// of names read from disk).
func (ex *Executor) LookupView(name string) *mring.Relation {
	return ex.views[name]
}

// MemoryFootprint returns the total number of tuples held across all
// non-transient materialized views (the Sec. 6.1 memory discussion).
func (ex *Executor) MemoryFootprint() int {
	n := 0
	for _, v := range ex.prog.Views {
		if v.Transient {
			continue
		}
		n += ex.views[v.Name].Len()
	}
	return n
}
