package compile

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Executor runs a compiled maintenance program locally: it owns the
// materialized view contents and applies update batches through the
// program's triggers. The stream starts from an empty database, as in the
// paper's streaming experiments; InitFromBases supports warm starts.
type Executor struct {
	prog  *Program
	env   *eval.Env
	views map[string]*mring.Relation
	// Stats accumulates evaluation statistics across batches.
	Stats eval.Stats
	// SingleTuple processes batches one tuple at a time through the same
	// triggers (the tuple-at-a-time comparison mode of Sec. 3.3).
	SingleTuple bool
	// Tracer forwards relation accesses (for the cache-locality
	// experiment); nil disables tracing.
	Tracer func(rel string, tupleHash uint64)
}

// NewExecutor creates an executor with empty view contents.
func NewExecutor(prog *Program) *Executor {
	ex := &Executor{
		prog:  prog,
		env:   eval.NewEnv(),
		views: make(map[string]*mring.Relation),
	}
	for _, v := range prog.Views {
		ex.views[v.Name] = ex.env.Define(v.Name, v.Schema)
	}
	return ex
}

// Program returns the compiled program backing the executor.
func (ex *Executor) Program() *Program { return ex.prog }

// View returns the contents of a materialized view (the query result
// lives under the program's query name).
func (ex *Executor) View(name string) *mring.Relation {
	r := ex.views[name]
	if r == nil {
		panic(fmt.Sprintf("compile: unknown view %q", name))
	}
	return r
}

// Result returns the top-level query result view.
func (ex *Executor) Result() *mring.Relation { return ex.View(ex.prog.QueryName) }

// InitFromBases loads non-empty initial base tables by evaluating every
// view definition from scratch.
func (ex *Executor) InitFromBases(bases map[string]*mring.Relation) {
	env := eval.NewEnv()
	for n, r := range bases {
		env.Bind(n, r)
	}
	ctx := eval.NewCtx(env)
	for _, v := range ex.prog.Views {
		if v.Transient {
			continue
		}
		if expr.HasDelta(v.Def) {
			continue
		}
		ctx.Apply(ex.views[v.Name], eval.OpSet, v.Def)
	}
}

// ApplyBatch runs the trigger for base relation rel with the given update
// batch (insertions have positive multiplicities, deletions negative).
func (ex *Executor) ApplyBatch(rel string, batch *mring.Relation) {
	trg := ex.prog.Triggers[rel]
	if trg == nil {
		panic(fmt.Sprintf("compile: no trigger for relation %q", rel))
	}
	if ex.SingleTuple {
		single := mring.NewRelation(batch.Schema())
		batch.Foreach(func(t mring.Tuple, m float64) {
			single.Clear()
			single.Add(t, m)
			ex.runTrigger(trg, rel, single)
		})
		return
	}
	ex.runTrigger(trg, rel, batch)
}

func (ex *Executor) runTrigger(trg *Trigger, rel string, batch *mring.Relation) {
	ex.env.Bind(eval.DeltaName(rel), batch)
	ctx := eval.NewCtx(ex.env)
	ctx.Tracer = ex.Tracer
	for _, s := range trg.Stmts {
		target := ex.views[s.LHS]
		// Materialize the RHS before mutating the target so that
		// self-references (and memoized slice indexes) observe a
		// consistent pre-statement state.
		tmp := ctx.Materialize(s.RHS)
		if s.Op == eval.OpSet {
			target.Clear()
		}
		target.Merge(tmp)
		ctx.InvalidateIndexes()
	}
	ex.Stats.Add(ctx.Stats)
}

// MemoryFootprint returns the total number of tuples held across all
// non-transient materialized views (the Sec. 6.1 memory discussion).
func (ex *Executor) MemoryFootprint() int {
	n := 0
	for _, v := range ex.prog.Views {
		if v.Transient {
			continue
		}
		n += ex.views[v.Name].Len()
	}
	return n
}
