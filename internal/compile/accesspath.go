package compile

import (
	"sort"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Access-path analysis. Evaluation dispatches every relational term to
// foreach, get, or slice depending on which of its columns are bound when
// it is reached (Sec. 5.1); the binding flow is static — left to right
// through products, restored across union terms — so the compiler can
// enumerate exactly the (relation, bound-column mask) pairs the slice path
// will probe at run time. Executors use the result to register the needed
// persistent secondary indexes up front, instead of paying a full build on
// the first probe after deployment.

// IndexSpec names one secondary index a compiled program probes: the
// environment name of the relation (view name, base-table name, or Δ-delta
// name) and the ascending bound-column positions within its reference.
type IndexSpec struct {
	Rel string
	Pos []int
}

// collectIndexSpecs walks every trigger statement and every persistent
// view definition (used by warm starts) and returns the deduplicated slice
// access patterns in a deterministic order.
func collectIndexSpecs(p *Program) []IndexSpec {
	seen := make(map[string]map[uint64][]int)
	record := func(rel string, pos []int) {
		if !mring.Indexable(pos) {
			return // >64-column relation: eval degrades to a scan
		}
		mask := mring.ColMask(pos)
		if seen[rel] == nil {
			seen[rel] = make(map[uint64][]int)
		}
		if _, ok := seen[rel][mask]; !ok {
			seen[rel][mask] = append([]int(nil), pos...)
		}
	}
	names := make([]string, 0, len(p.Triggers))
	for n := range p.Triggers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, s := range p.Triggers[n].Stmts {
			walkAccess(s.RHS, map[string]bool{}, record)
		}
	}
	for _, v := range p.Views {
		if v.Transient || expr.HasDelta(v.Def) {
			continue
		}
		walkAccess(v.Def, map[string]bool{}, record)
	}
	var specs []IndexSpec
	rels := make([]string, 0, len(seen))
	for r := range seen {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	for _, r := range rels {
		masks := make([]uint64, 0, len(seen[r]))
		for m := range seen[r] {
			masks = append(masks, m)
		}
		sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
		for _, m := range masks {
			specs = append(specs, IndexSpec{Rel: r, Pos: seen[r][m]})
		}
	}
	return specs
}

// walkAccess simulates eval's bound-variable flow over e. bound is read
// but never mutated (products extend a private copy), mirroring how eval
// restores bindings across union terms and nested expressions.
func walkAccess(e expr.Expr, bound map[string]bool, record func(rel string, pos []int)) {
	switch x := e.(type) {
	case *expr.Rel:
		var pos []int
		for i, col := range x.Cols {
			if bound[col] {
				pos = append(pos, i)
			}
		}
		if len(pos) > 0 && len(pos) < len(x.Cols) {
			record(eval.RelEnvName(x), pos)
		}
	case *expr.Mul:
		cur := make(map[string]bool, len(bound))
		for c := range bound {
			cur[c] = true
		}
		for _, f := range x.Factors {
			walkAccess(f, cur, record)
			for _, c := range f.Schema() {
				cur[c] = true
			}
		}
	case *expr.Plus:
		for _, t := range x.Terms {
			walkAccess(t, bound, record)
		}
	case *expr.Agg:
		walkAccess(x.Body, bound, record)
	case *expr.Assign:
		if x.Q != nil {
			walkAccess(x.Q, bound, record)
		}
	case *expr.Exists:
		walkAccess(x.Body, bound, record)
	}
}
