package compile

import (
	"testing"

	"repro/internal/tpch"
)

// TestKernelStmtsCoverTPCHPreAggregates pins the compiler's static
// kernel-coverage analysis on the scan-heavy TPC-H queries: every
// single-relation pre-aggregation statement of Q1 and Q6 — the delta
// pre-aggregation in the lineitem trigger and the warm-start scan —
// must be detected as kernel-eligible, so the runtime's columnar path
// has something to dispatch on the queries the paper measures.
func TestKernelStmtsCoverTPCHPreAggregates(t *testing.T) {
	for _, name := range []string{"Q1", "Q6"} {
		t.Run(name, func(t *testing.T) {
			q, err := tpch.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(name, q.Def, q.BaseSchemas(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(prog.Kernels) == 0 {
				t.Fatalf("no kernel-eligible statements detected:\n%s", prog)
			}
			var delta, warm bool
			for _, k := range prog.Kernels {
				if k.Scans == "" {
					t.Fatalf("kernel stmt %+v has no scanned relation", k)
				}
				if k.Trigger == tpch.Lineitem {
					delta = true
				}
				if k.Trigger == "" {
					warm = true
				}
			}
			if !delta {
				t.Errorf("lineitem trigger has no kernel-eligible statement: %+v", prog.Kernels)
			}
			if !warm {
				t.Errorf("no kernel-eligible warm-start scan: %+v", prog.Kernels)
			}
		})
	}
}

// TestKernelStmtsSkipJoins pins the negative side on the tri-join
// example: multi-relation statements must not be reported eligible.
func TestKernelStmtsSkipJoins(t *testing.T) {
	q, bases := triJoinQuery()
	prog, err := Compile("Q", q, bases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range prog.Kernels {
		if k.LHS == "Q" && k.Trigger == "" {
			t.Errorf("the three-way join's rebuild scan reported eligible: %+v", k)
		}
	}
}
