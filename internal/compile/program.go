// Package compile implements recursive incremental view maintenance
// (Sec. 2.2): given a query, it materializes the top-level view together
// with the hierarchy of auxiliary views that support each other's
// maintenance, and emits one trigger program per updated base relation.
// Statements inside a trigger maintain views in decreasing order of
// complexity (higher-order deltas read lower-order views pre-update).
package compile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Options control compilation.
type Options struct {
	// DomainExtraction enables the Fig. 1 rewrite for nested aggregates.
	DomainExtraction bool
	// PreAggregate inserts batch pre-aggregation statements (Sec. 3.3):
	// input batches are filtered on static conditions shared by all
	// statements and projected onto the columns actually used.
	PreAggregate bool
	// ReEvalUncorrelated switches a trigger to re-evaluation when the
	// extracted nested domain binds no equality-correlated variable
	// (the paper's Sec. 3.2.3 policy, Example 3.3).
	ReEvalUncorrelated bool
}

// DefaultOptions is the configuration used by the paper's main experiments.
func DefaultOptions() Options {
	return Options{DomainExtraction: true, PreAggregate: true, ReEvalUncorrelated: true}
}

// ViewDef declares one materialized view.
type ViewDef struct {
	Name   string
	Schema mring.Schema
	// Def is the view definition over base relations (used for initial
	// loads, debugging, and re-evaluation baselines).
	Def expr.Expr
	// Transient marks per-batch scratch views (pre-aggregated deltas)
	// that are recomputed from scratch on every batch.
	Transient bool
	// creation is the registration index; it breaks complexity ties in
	// statement ordering.
	creation int
}

// Degree is the view complexity: the number of base relations referenced
// by its definition (Sec. 3.2's notion of query degree).
func (v *ViewDef) Degree() int { return expr.Degree(v.Def) }

// Stmt is one trigger statement: LHS op= RHS. Executors dispatch on the
// RHS shape: a top-level aggregate (every pre-aggregation statement, and
// most maintenance statements) evaluates into a hash-native group table
// and folds into the target view; anything else materializes a scratch
// relation and merges.
type Stmt struct {
	LHS string
	Op  eval.AssignOp
	RHS expr.Expr
}

func (s Stmt) String() string {
	return fmt.Sprintf("%s %s %s", s.LHS, s.Op, s.RHS)
}

// Trigger is the maintenance program for one updated base relation.
type Trigger struct {
	Relation string
	Stmts    []Stmt
}

func (t *Trigger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ON UPDATE %s BY Δ%s\n", t.Relation, t.Relation)
	for _, s := range t.Stmts {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// Program is a compiled incremental maintenance program.
type Program struct {
	QueryName string
	// Query is the original definition over base relations.
	Query expr.Expr
	// Bases lists the base relation schemas.
	Bases map[string]mring.Schema
	// Views holds every materialized view, including the top-level view
	// (first entry, named QueryName).
	Views []*ViewDef
	// Triggers maps base relation name to its maintenance trigger.
	Triggers map[string]*Trigger
	// Indexes lists the secondary indexes the program's slice access
	// paths probe (see accesspath.go); executors register them up front.
	Indexes []IndexSpec
	// Kernels lists the statements the evaluator's vectorized columnar
	// path covers (see kernels.go); informational for executors, asserted
	// by tests so coverage of the pre-aggregation stages cannot silently
	// regress.
	Kernels []KernelStmt
	// Opts records the compilation options.
	Opts Options
}

// View returns the view definition by name, or nil.
func (p *Program) View(name string) *ViewDef {
	for _, v := range p.Views {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// TopView returns the top-level view (the query result).
func (p *Program) TopView() *ViewDef { return p.Views[0] }

func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.QueryName)
	for _, v := range p.Views {
		tag := ""
		if v.Transient {
			tag = " (transient)"
		}
		fmt.Fprintf(&b, "VIEW %s(%s)%s := %s\n", v.Name, strings.Join(v.Schema, ","), tag, v.Def)
	}
	names := make([]string, 0, len(p.Triggers))
	for n := range p.Triggers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b.WriteString(p.Triggers[n].String())
	}
	return b.String()
}

// StatementsReading returns the names of views read by the statement RHS.
func StatementsReading(s Stmt) []string {
	return expr.Relations(s.RHS, expr.RView)
}
