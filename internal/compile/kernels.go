package compile

import (
	"sort"

	"repro/internal/eval"
)

// KernelStmt records one trigger statement whose RHS the evaluator's
// vectorized columnar path covers: a single-scan aggregate over static
// comparisons and value terms (see internal/eval's kernel analysis —
// the detection here calls the same analysis the runtime dispatch uses,
// so the plan below is exactly what executes). Pre-aggregation
// statements (Sec. 3.3) are the prime targets: they scan the delta batch
// and fold it through shared static conditions.
type KernelStmt struct {
	// Trigger is the updated base relation whose trigger holds the
	// statement ("" for a view initialization scan).
	Trigger string
	// LHS is the maintained view.
	LHS string
	// Scans is the environment name of the relation the kernel scans.
	Scans string
}

// collectKernelStmts runs the evaluator's kernel-eligibility analysis
// over every trigger statement and view definition, mirroring how
// collectIndexSpecs sits next to the access-path analysis. The result is
// advisory (the runtime re-dispatches per fold, falling back to rows on
// mixed-kind or tiny relations), deterministic, and sorted.
func collectKernelStmts(p *Program) []KernelStmt {
	var out []KernelStmt
	for _, trg := range p.Triggers {
		for _, s := range trg.Stmts {
			if scans, ok := eval.KernelEligible(s.RHS); ok {
				out = append(out, KernelStmt{Trigger: trg.Relation, LHS: s.LHS, Scans: scans})
			}
		}
	}
	for _, v := range p.Views {
		if v.Transient {
			continue
		}
		if scans, ok := eval.KernelEligible(v.Def); ok {
			out = append(out, KernelStmt{LHS: v.Name, Scans: scans})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Trigger != b.Trigger {
			return a.Trigger < b.Trigger
		}
		if a.LHS != b.LHS {
			return a.LHS < b.LHS
		}
		return a.Scans < b.Scans
	})
	return out
}
