// Package tpcds provides the TPC-DS-shaped subset of the paper's workload
// (Sec. 6, App. B.3): a store-sales star schema and the report-style
// queries of the benchmark class the paper evaluates (fact–dimension
// joins with static filters and small group-by domains). Queries with
// OVER clauses are excluded, as in the paper.
package tpcds

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/mring"
)

// Table names.
const (
	StoreSales = "store_sales"
	DateDim    = "date_dim"
	Item       = "item"
	CustomerD  = "customer_d"
	Store      = "store"
)

// Schemas maps each table to its columns.
var Schemas = map[string]mring.Schema{
	StoreSales: {
		"ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_store_sk",
		"ss_quantity", "ss_sales_price", "ss_ext_sales_price",
	},
	DateDim:   {"d_date_sk", "d_year", "d_moy", "d_dow"},
	Item:      {"i_item_sk", "i_brand_id", "i_category_id", "i_manufact_id", "i_manager_id"},
	CustomerD: {"cd_customer_sk", "cd_gender", "cd_dep_count"},
	Store:     {"st_store_sk", "st_state"},
}

// StreamTables receive stream insertions; dimensions are static.
var StreamTables = []string{StoreSales}

// StaticTables are preloaded.
var StaticTables = []string{DateDim, Item, CustomerD, Store}

var cardPerScale = map[string]int{
	StoreSales: 8000,
	DateDim:    400,
	Item:       300,
	CustomerD:  200,
	Store:      20,
}

// Cardinality returns the generated row count at scale sf (dimensions are
// fixed).
func Cardinality(table string, sf float64) int {
	n := cardPerScale[table]
	if table != StoreSales {
		return n
	}
	c := int(float64(n) * sf)
	if c < 1 {
		c = 1
	}
	return c
}

// Generator produces deterministic TPC-DS-shaped tuples.
type Generator struct {
	sf   float64
	rng  *rand.Rand
	next map[string]int64
}

// NewGenerator creates a generator at scale sf with a fixed seed.
func NewGenerator(sf float64, seed int64) *Generator {
	return &Generator{sf: sf, rng: rand.New(rand.NewSource(seed)), next: map[string]int64{}}
}

func (g *Generator) seq(t string) int64 {
	g.next[t]++
	return g.next[t]
}

// Tuple generates the next tuple for a table.
func (g *Generator) Tuple(table string) mring.Tuple {
	r := g.rng
	switch table {
	case StoreSales:
		return mring.Tuple{
			mring.Int(1 + int64(r.Intn(cardPerScale[DateDim]))),   // ss_sold_date_sk
			mring.Int(1 + int64(r.Intn(cardPerScale[Item]))),      // ss_item_sk
			mring.Int(1 + int64(r.Intn(cardPerScale[CustomerD]))), // ss_customer_sk
			mring.Int(1 + int64(r.Intn(cardPerScale[Store]))),     // ss_store_sk
			mring.Int(1 + int64(r.Intn(100))),                     // ss_quantity
			mring.Float(1 + r.Float64()*300),                      // ss_sales_price
			mring.Float(1 + r.Float64()*30000),                    // ss_ext_sales_price
		}
	case DateDim:
		k := g.seq(DateDim)
		return mring.Tuple{
			mring.Int(k),
			mring.Int(1998 + (k % 7)), // d_year
			mring.Int(1 + (k % 12)),   // d_moy
			mring.Int(k % 7),          // d_dow
		}
	case Item:
		k := g.seq(Item)
		return mring.Tuple{
			mring.Int(k),
			mring.Int(int64(r.Intn(50))),  // i_brand_id
			mring.Int(int64(r.Intn(10))),  // i_category_id
			mring.Int(int64(r.Intn(100))), // i_manufact_id
			mring.Int(int64(r.Intn(40))),  // i_manager_id
		}
	case CustomerD:
		k := g.seq(CustomerD)
		return mring.Tuple{
			mring.Int(k),
			mring.Int(int64(r.Intn(2))), // cd_gender
			mring.Int(int64(r.Intn(5))), // cd_dep_count
		}
	case Store:
		k := g.seq(Store)
		return mring.Tuple{mring.Int(k), mring.Int(int64(r.Intn(10)))}
	}
	panic("tpcds: unknown table " + table)
}

// Static returns the preloaded contents of a dimension table.
func (g *Generator) Static(table string) *mring.Relation {
	rel := mring.NewRelation(Schemas[table])
	for i := 0; i < Cardinality(table, g.sf); i++ {
		rel.Add(g.Tuple(table), 1)
	}
	return rel
}

// FactBatches yields the store_sales stream in batches of batchSize.
func (g *Generator) FactBatches(batchSize int) func() *mring.Relation {
	remaining := Cardinality(StoreSales, g.sf)
	return func() *mring.Relation {
		if remaining == 0 {
			return nil
		}
		n := batchSize
		if n > remaining {
			n = remaining
		}
		remaining -= n
		out := mring.NewRelation(Schemas[StoreSales])
		for i := 0; i < n; i++ {
			out.Add(g.Tuple(StoreSales), 1)
		}
		return out
	}
}

// Query bundles a TPC-DS query definition.
type Query struct {
	Name   string
	Def    expr.Expr
	Tables []string
}

func ss() *expr.Rel { return expr.Base(StoreSales, Schemas[StoreSales]...) }
func dd() *expr.Rel { return expr.Base(DateDim, Schemas[DateDim]...) }
func it() *expr.Rel { return expr.Base(Item, Schemas[Item]...) }
func cd() *expr.Rel { return expr.Base(CustomerD, Schemas[CustomerD]...) }
func st() *expr.Rel { return expr.Base(Store, Schemas[Store]...) }

func eqv(a, b string) expr.Expr { return expr.CmpE(expr.CEq, expr.V(a), expr.V(b)) }
func eqi(v string, c int64) expr.Expr {
	return expr.CmpE(expr.CEq, expr.V(v), expr.LitI(c))
}

// factDim builds the common fact ⋈ date_dim ⋈ item shape with the given
// extra filters, group-by, and aggregate value.
func factDim(groupBy []string, agg expr.VExpr, filters ...expr.Expr) expr.Expr {
	factors := []expr.Expr{
		dd(), ss(),
		eqv("ss_sold_date_sk", "d_date_sk"),
		it(), eqv("ss_item_sk", "i_item_sk"),
	}
	factors = append(factors, filters...)
	factors = append(factors, expr.ValE(agg))
	return expr.Sum(groupBy, expr.Join(factors...))
}

// Queries returns the TPC-DS subset (report queries of Fig. 12's class).
func Queries() []Query {
	return []Query{
		{ // Q3-shape: brand revenue for one manufacturer by year.
			Name: "DS3",
			Def: factDim([]string{"d_year", "i_brand_id"},
				expr.V("ss_ext_sales_price"),
				eqi("i_manufact_id", 7), eqi("d_moy", 11)),
			Tables: []string{StoreSales, DateDim, Item},
		},
		{ // Q7-shape: average quantities for one demographic slice.
			Name: "DS7",
			Def: expr.Sum([]string{"i_item_sk"},
				expr.Join(
					dd(), ss(), eqv("ss_sold_date_sk", "d_date_sk"), eqi("d_year", 2000),
					it(), eqv("ss_item_sk", "i_item_sk"),
					cd(), eqv("ss_customer_sk", "cd_customer_sk"), eqi("cd_gender", 1),
					expr.ValE(expr.V("ss_quantity")))),
			Tables: []string{StoreSales, DateDim, Item, CustomerD},
		},
		{ // Q19-shape: brand revenue by manager slice and month.
			Name: "DS19",
			Def: factDim([]string{"i_brand_id", "i_manufact_id"},
				expr.V("ss_ext_sales_price"),
				eqi("i_manager_id", 8), eqi("d_moy", 11), eqi("d_year", 1999)),
			Tables: []string{StoreSales, DateDim, Item},
		},
		{ // Q42-shape: category revenue by year.
			Name: "DS42",
			Def: factDim([]string{"d_year", "i_category_id"},
				expr.V("ss_ext_sales_price"),
				eqi("d_moy", 11), eqi("d_year", 2000)),
			Tables: []string{StoreSales, DateDim, Item},
		},
		{ // Q43-shape: store sales by day of week.
			Name: "DS43",
			Def: expr.Sum([]string{"st_state", "d_dow"},
				expr.Join(
					dd(), ss(), eqv("ss_sold_date_sk", "d_date_sk"), eqi("d_year", 2001),
					st(), eqv("ss_store_sk", "st_store_sk"),
					expr.ValE(expr.V("ss_sales_price")))),
			Tables: []string{StoreSales, DateDim, Store},
		},
		{ // Q52-shape: brand revenue, one month/year.
			Name: "DS52",
			Def: factDim([]string{"d_year", "i_brand_id"},
				expr.V("ss_ext_sales_price"),
				eqi("d_moy", 12), eqi("d_year", 1998)),
			Tables: []string{StoreSales, DateDim, Item},
		},
		{ // Q55-shape: brand revenue for one manager.
			Name: "DS55",
			Def: factDim([]string{"i_brand_id"},
				expr.V("ss_ext_sales_price"),
				eqi("i_manager_id", 3), eqi("d_moy", 11), eqi("d_year", 1999)),
			Tables: []string{StoreSales, DateDim, Item},
		},
		{ // Q73-shape: frequent-buyer counts — correlated nested count per
			// customer (the paper keeps nested TPC-DS queries too).
			Name: "DS73",
			Def: expr.Sum([]string{"cd_customer_sk"},
				expr.Join(
					cd(),
					expr.LiftQ("ds73cnt", expr.Sum(nil, expr.Join(
						expr.Base(StoreSales,
							"ss_sold_date_sk2", "ss_item_sk2", "ss_customer_sk2",
							"ss_store_sk2", "ss_quantity2", "ss_sales_price2",
							"ss_ext_sales_price2"),
						eqv("ss_customer_sk2", "cd_customer_sk")))),
					expr.CmpE(expr.CGt, expr.V("ds73cnt"), expr.LitI(15)))),
			Tables: []string{StoreSales, CustomerD},
		},
	}
}

// QueryByName returns the named query.
func QueryByName(name string) (Query, error) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpcds: unknown query %q", name)
}

// BaseSchemas returns the base schema map for a query.
func (q Query) BaseSchemas() map[string]mring.Schema {
	out := map[string]mring.Schema{}
	for _, t := range q.Tables {
		out[t] = Schemas[t]
	}
	return out
}
