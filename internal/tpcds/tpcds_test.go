package tpcds

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/mring"
)

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(0.1, 3), NewGenerator(0.1, 3)
	for i := 0; i < 50; i++ {
		if !a.Tuple(StoreSales).Equal(b.Tuple(StoreSales)) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGeneratorArities(t *testing.T) {
	g := NewGenerator(0.1, 1)
	for table, schema := range Schemas {
		if got := g.Tuple(table); len(got) != len(schema) {
			t.Errorf("%s arity %d != %d", table, len(got), len(schema))
		}
	}
}

func TestFactBatchesCoverStream(t *testing.T) {
	g := NewGenerator(0.1, 2)
	next := g.FactBatches(128)
	total := 0
	for b := next(); b != nil; b = next() {
		b.Foreach(func(_ mring.Tuple, m float64) { total += int(m) })
	}
	if want := Cardinality(StoreSales, 0.1); total != want {
		t.Fatalf("streamed %d, want %d", total, want)
	}
}

func TestAllQueriesCompile(t *testing.T) {
	for _, q := range Queries() {
		if _, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions()); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

// TestQueriesIncrementalMatchesRecompute: every TPC-DS query streamed
// through the executor must match recomputation at end of stream.
func TestQueriesIncrementalMatchesRecompute(t *testing.T) {
	const sf = 0.05
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ex := compile.NewExecutor(prog)
			gen := NewGenerator(sf, 9)
			accum := map[string]*mring.Relation{}
			init := map[string]*mring.Relation{}
			for _, tbl := range q.Tables {
				if tbl == StoreSales {
					accum[tbl] = mring.NewRelation(Schemas[tbl])
					init[tbl] = mring.NewRelation(Schemas[tbl])
				} else {
					r := gen.Static(tbl)
					accum[tbl] = r
					init[tbl] = r
				}
			}
			ex.InitFromBases(init)
			next := gen.FactBatches(64)
			for b := next(); b != nil; b = next() {
				ex.ApplyBatch(StoreSales, b)
				accum[StoreSales].Merge(b)
			}
			env := eval.NewEnv()
			for n, r := range accum {
				env.Bind(n, r)
			}
			want := eval.NewCtx(env).Materialize(q.Def)
			if !ex.Result().EqualApprox(want, 1e-4) {
				t.Fatalf("%s diverged\nprogram:\n%s", q.Name, prog)
			}
		})
	}
}

func TestQueryByName(t *testing.T) {
	if _, err := QueryByName("DS42"); err != nil {
		t.Fatal(err)
	}
	if _, err := QueryByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}
