package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

func tup(vs ...int) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		t[i] = mring.Int(int64(v))
	}
	return t
}

// engines builds all three strategies over the same query.
func engines(t *testing.T, q expr.Expr, bases map[string]mring.Schema) []Engine {
	t.Helper()
	prog, err := compile.Compile("Q", q, bases, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rivm := compile.NewExecutor(prog)
	return []Engine{
		NewReEval(q, bases),
		NewClassicalIVM(q, bases),
		executorEngine{rivm},
	}
}

// executorEngine adapts the recursive executor to the Engine interface.
type executorEngine struct{ ex *compile.Executor }

func (e executorEngine) ApplyBatch(rel string, b *mring.Relation) { e.ex.ApplyBatch(rel, b) }
func (e executorEngine) Result() *mring.Relation                  { return e.ex.Result() }
func (e executorEngine) Name() string                             { return "recursive-ivm" }

func TestAllEnginesAgreeFlatJoin(t *testing.T) {
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B", "C"}}
	checkAgree(t, q, bases, 42)
}

func TestAllEnginesAgreeNested(t *testing.T) {
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2", "C"), expr.Eq(expr.V("B"), expr.V("B2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B2", "C"}}
	checkAgree(t, q, bases, 7)
}

func checkAgree(t *testing.T, q expr.Expr, bases map[string]mring.Schema, seed int64) {
	t.Helper()
	es := engines(t, q, bases)
	rng := rand.New(rand.NewSource(seed))
	var rels []string
	for n := range bases {
		rels = append(rels, n)
	}
	for i := 1; i < len(rels); i++ {
		for j := i; j > 0 && rels[j] < rels[j-1]; j-- {
			rels[j], rels[j-1] = rels[j-1], rels[j]
		}
	}
	for b := 0; b < 12; b++ {
		rel := rels[rng.Intn(len(rels))]
		batch := mring.NewRelation(bases[rel])
		for i := 0; i < 6; i++ {
			batch.Add(tup(rng.Intn(4), rng.Intn(4)), 1)
		}
		for _, e := range es {
			e.ApplyBatch(rel, batch.Clone())
		}
		ref := es[0].Result()
		for _, e := range es[1:] {
			if !e.Result().EqualApprox(ref, 1e-6) {
				t.Fatalf("batch %d: %s diverged from %s\n%s: %v\n%s: %v",
					b, e.Name(), es[0].Name(), e.Name(), e.Result(), es[0].Name(), ref)
			}
		}
	}
}

func TestLoadBase(t *testing.T) {
	q := expr.Sum(nil, expr.Base("R", "A"))
	bases := map[string]mring.Schema{"R": {"A"}}
	re := NewReEval(q, bases)
	ci := NewClassicalIVM(q, bases)
	init := mring.NewRelation(mring.Schema{"A"})
	init.Add(tup(1), 3)
	re.LoadBase("R", init.Clone())
	ci.LoadBase("R", init.Clone())
	if re.Result().Get(mring.Tuple{}) != 3 || ci.Result().Get(mring.Tuple{}) != 3 {
		t.Fatal("LoadBase did not refresh results")
	}
	batch := mring.NewRelation(mring.Schema{"A"})
	batch.Add(tup(2), 2)
	re.ApplyBatch("R", batch.Clone())
	ci.ApplyBatch("R", batch.Clone())
	if re.Result().Get(mring.Tuple{}) != 5 || ci.Result().Get(mring.Tuple{}) != 5 {
		t.Fatal("post-load batches wrong")
	}
}

func TestClassicalCheaperThanReEvalOnJoins(t *testing.T) {
	// The whole point of IVM: for small batches over grown tables, the
	// classical delta visits far fewer tuples than recomputation.
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B", "C"}}
	re := NewReEval(q, bases)
	ci := NewClassicalIVM(q, bases)
	rng := rand.New(rand.NewSource(1))
	grow := func(rel string, n int) *mring.Relation {
		b := mring.NewRelation(bases[rel])
		for i := 0; i < n; i++ {
			b.Add(tup(rng.Intn(50), rng.Intn(50)), 1)
		}
		return b
	}
	re.ApplyBatch("R", grow("R", 2000))
	re.ApplyBatch("S", grow("S", 2000))
	ci.ApplyBatch("R", grow("R", 2000))
	ci.ApplyBatch("S", grow("S", 2000))
	re.Stats, ci.Stats = eval.Stats{}, eval.Stats{}
	for i := 0; i < 10; i++ {
		b := grow("R", 2)
		re.ApplyBatch("R", b.Clone())
		ci.ApplyBatch("R", b.Clone())
	}
	if ci.Stats.Scans >= re.Stats.Scans {
		t.Fatalf("classical IVM scans (%d) should be below re-eval scans (%d)",
			ci.Stats.Scans, re.Stats.Scans)
	}
}
