// Package baseline implements the two comparison strategies of the
// paper's Fig. 8 and Table 1 (run there on PostgreSQL; DESIGN.md §3
// records the substitution):
//
//   - ReEval: refresh the materialized result by recomputing the query
//     over the stored base tables on every batch;
//   - ClassicalIVM: first-order incremental view maintenance — evaluate
//     one delta query per updated relation against the stored base tables
//     (no recursive auxiliary materialization).
//
// Both maintain the base tables themselves and share the generic
// evaluator, so the measured gaps isolate the maintenance strategy.
package baseline

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Engine is the common interface of all maintenance strategies.
type Engine interface {
	// ApplyBatch ingests one update batch for a base relation.
	ApplyBatch(rel string, batch *mring.Relation)
	// Result returns the maintained query result.
	Result() *mring.Relation
	// Name identifies the strategy in reports.
	Name() string
}

// ReEval recomputes the query from scratch on every batch.
type ReEval struct {
	query expr.Expr
	env   *eval.Env
	bases map[string]*mring.Relation
	res   *mring.Relation
	// Stats accumulates evaluation statistics.
	Stats eval.Stats
}

// NewReEval creates a re-evaluation engine over empty base tables.
func NewReEval(query expr.Expr, bases map[string]mring.Schema) *ReEval {
	e := &ReEval{query: query, env: eval.NewEnv(), bases: map[string]*mring.Relation{}}
	for n, s := range bases {
		e.bases[n] = e.env.Define(n, s)
	}
	e.res = mring.NewRelation(query.Schema())
	return e
}

// Name implements Engine.
func (e *ReEval) Name() string { return "reeval" }

// LoadBase preloads a base table (static dimensions).
func (e *ReEval) LoadBase(rel string, r *mring.Relation) {
	e.bases[rel].Merge(r)
	e.refresh()
}

// ApplyBatch implements Engine.
func (e *ReEval) ApplyBatch(rel string, batch *mring.Relation) {
	b, ok := e.bases[rel]
	if !ok {
		panic(fmt.Sprintf("baseline: unknown relation %q", rel))
	}
	b.Merge(batch)
	e.refresh()
}

func (e *ReEval) refresh() {
	ctx := eval.NewCtx(e.env)
	e.res = ctx.Materialize(e.query)
	e.Stats.Add(ctx.Stats)
}

// Result implements Engine.
func (e *ReEval) Result() *mring.Relation { return e.res }

// ClassicalIVM evaluates first-order deltas against the stored base
// tables: ΔQ references (n−1) base tables for an n-way join (Sec. 2.1),
// with no recursive materialization of the update-independent parts.
type ClassicalIVM struct {
	query  expr.Expr
	env    *eval.Env
	bases  map[string]*mring.Relation
	deltas map[string]expr.Expr
	res    *mring.Relation
	// Stats accumulates evaluation statistics.
	Stats eval.Stats
}

// NewClassicalIVM creates a first-order IVM engine. Delta queries are
// derived once at construction (with domain extraction, which the paper
// also grants the PostgreSQL implementation for Fig. 8).
func NewClassicalIVM(query expr.Expr, bases map[string]mring.Schema) *ClassicalIVM {
	e := &ClassicalIVM{
		query:  query,
		env:    eval.NewEnv(),
		bases:  map[string]*mring.Relation{},
		deltas: map[string]expr.Expr{},
	}
	for n, s := range bases {
		e.bases[n] = e.env.Define(n, s)
	}
	for n := range bases {
		e.deltas[n] = delta.Derive(query, n, delta.Options{DomainExtraction: true})
	}
	e.res = mring.NewRelation(query.Schema())
	return e
}

// Name implements Engine.
func (e *ClassicalIVM) Name() string { return "classical-ivm" }

// LoadBase preloads a base table and refreshes the result from scratch
// (initial load only).
func (e *ClassicalIVM) LoadBase(rel string, r *mring.Relation) {
	e.bases[rel].Merge(r)
	ctx := eval.NewCtx(e.env)
	e.res = ctx.Materialize(e.query)
	e.Stats.Add(ctx.Stats)
}

// ApplyBatch implements Engine: evaluate the delta query against the
// pre-update base tables, fold it into the result, then apply the batch
// to the stored base table.
func (e *ClassicalIVM) ApplyBatch(rel string, batch *mring.Relation) {
	dq, ok := e.deltas[rel]
	if !ok {
		panic(fmt.Sprintf("baseline: unknown relation %q", rel))
	}
	e.env.Bind(eval.DeltaName(rel), batch)
	ctx := eval.NewCtx(e.env)
	if !expr.IsZero(dq) {
		d := ctx.Materialize(dq)
		e.res.Merge(d)
	}
	e.bases[rel].Merge(batch)
	e.Stats.Add(ctx.Stats)
}

// Result implements Engine.
func (e *ClassicalIVM) Result() *mring.Relation { return e.res }
