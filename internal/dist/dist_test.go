package dist

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	"repro/internal/tpch"
)

func compileQ3(t *testing.T) (*compile.Program, PartInfo) {
	t.Helper()
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog, ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
}

func TestChoosePartitioningRespectsKeyRanks(t *testing.T) {
	prog, parts := compileQ3(t)
	// Every keyed view must be partitioned on the best-ranked column of
	// its schema.
	for _, v := range prog.Views {
		loc := parts[v.Name]
		if !loc.Keyed() {
			continue
		}
		if len(loc.Key) != 1 {
			t.Fatalf("%s: expected single partition key, got %v", v.Name, loc.Key)
		}
		key := loc.Key[0]
		if !v.Schema.Contains(key) {
			t.Fatalf("%s: partition key %q not in schema %v", v.Name, key, v.Schema)
		}
		keyRank := tpch.PrimaryKeyRanks[key]
		for _, col := range v.Schema {
			if r := tpch.PrimaryKeyRanks[col]; r > keyRank {
				t.Fatalf("%s: partitioned on %q (rank %d) but schema holds %q (rank %d)",
					v.Name, key, keyRank, col, r)
			}
		}
	}
	// The Q3 top view joins on orderkey, the highest-ranked key.
	if got := parts["Q3"]; !got.Keyed() || got.Key[0] != "o_orderkey" {
		t.Fatalf("Q3 partitioned %v, want dist[o_orderkey]", got)
	}
	// Scalar views stay at the driver, deltas are worker-ingested.
	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	prog6, err := compile.Compile(q6.Name, q6.Def, q6.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts6 := ChoosePartitioning(prog6, tpch.PrimaryKeyRanks)
	if got := parts6["Q6"]; got.Kind != LLocal {
		t.Fatalf("scalar Q6 located %v, want local", got)
	}
	if got := parts6[eval.DeltaName("lineitem")]; got.Kind != LDist || got.Keyed() {
		t.Fatalf("delta located %v, want random", got)
	}
}

func TestChoosePartitioningReplicatesDimensions(t *testing.T) {
	// A view whose schema holds only low-ranked dimension keys is
	// replicated rather than partitioned.
	q := expr.Sum([]string{"n_nationkey", "n_name"}, expr.Base("nation", "n_nationkey", "n_name"))
	prog, err := compile.Compile("QN", q, map[string]mring.Schema{
		"nation": {"n_nationkey", "n_name"},
	}, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	if got := parts["QN"]; got.Kind != LIndiff {
		t.Fatalf("dimension view located %v, want replicated", got)
	}
}

func countBlocks(dp *DistProgram) (local, dist int) {
	for _, b := range dp.Blocks {
		if b.Mode == LDist {
			dist++
		} else {
			local++
		}
	}
	return
}

func TestFuseBlocksReducesBlockCount(t *testing.T) {
	prog, parts := compileQ3(t)
	for _, rel := range []string{"lineitem", "orders", "customer"} {
		unfused := CompileProgram(prog, parts, O2)[rel]
		fused := FuseBlocks(unfused.Blocks)
		if len(fused) >= len(unfused.Blocks) {
			t.Fatalf("%s: fusion did not reduce blocks: %d -> %d",
				rel, len(unfused.Blocks), len(fused))
		}
		// Fusion preserves the statements (reordered, none dropped).
		n, m := 0, 0
		for _, b := range unfused.Blocks {
			n += len(b.Stmts)
		}
		for _, b := range fused {
			m += len(b.Stmts)
		}
		if n != m {
			t.Fatalf("%s: fusion changed statement count %d -> %d", rel, n, m)
		}
	}
}

func TestFuseBlocksPreservesDependencies(t *testing.T) {
	// A gather of a worker-computed temp must stay after the distributed
	// statement producing it, even when fusion reorders.
	prog, parts := compileQ3(t)
	for _, rel := range []string{"lineitem", "orders", "customer"} {
		dp := CompileProgram(prog, parts, O3)[rel]
		written := map[string]bool{}
		for n := range parts {
			written[n] = true // canonical state exists before the batch
		}
		written[eval.DeltaName(rel)] = true
		for _, b := range dp.Blocks {
			for _, s := range b.Stmts {
				for name := range stmtReads(s) {
					if !written[name] {
						t.Fatalf("%s: statement %q reads %q before it is written\n%s",
							rel, s, name, dp)
					}
				}
				written[s.LHS] = true
			}
		}
	}
}

func TestO3FewerDistBlocksThanO1(t *testing.T) {
	prog, parts := compileQ3(t)
	o1 := CompileProgram(prog, parts, O1)
	o3 := CompileProgram(prog, parts, O3)
	tot1, tot3 := 0, 0
	for _, rel := range []string{"lineitem", "orders", "customer"} {
		_, d1 := countBlocks(o1[rel])
		_, d3 := countBlocks(o3[rel])
		tot1 += d1
		tot3 += d3
		if d3 > d1 {
			t.Fatalf("%s: O3 has more dist blocks (%d) than O1 (%d)", rel, d3, d1)
		}
	}
	if tot3 >= tot1 {
		t.Fatalf("O3 total dist blocks %d, want fewer than O1's %d", tot3, tot1)
	}
}

func TestRedundantTransformerElimination(t *testing.T) {
	// The tri-join R-trigger scatters ΔR by B for two different
	// statements; O2 must perform the movement once.
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C"), expr.Base("T", "C", "D")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B", "C"}, "T": {"C", "D"}}
	prog, err := compile.Compile("Q", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := PartInfo{}
	for _, v := range prog.Views {
		if v.Transient || len(v.Schema) == 0 {
			parts[v.Name] = Local
			continue
		}
		parts[v.Name] = Dist(v.Schema[0])
	}
	parts["Q"] = Local
	for rel := range bases {
		parts[eval.DeltaName(rel)] = Local
	}
	o1 := CompileProgram(prog, parts, O1)["R"]
	o2 := CompileProgram(prog, parts, O2)["R"]
	if o2.CommStmts() >= o1.CommStmts() {
		t.Fatalf("O2 transformers (%d) not fewer than O1's (%d)\nO1:\n%s\nO2:\n%s",
			o2.CommStmts(), o1.CommStmts(), o1, o2)
	}
}

func TestJobsAndStages(t *testing.T) {
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dp := CompileProgram(prog, parts, O3)["lineitem"]
	if dp.Stages() != 1 || dp.Jobs() != 1 {
		t.Fatalf("Q6 lineitem trigger: %d jobs / %d stages, want 1/1\n%s",
			dp.Jobs(), dp.Stages(), dp)
	}
}

func TestLocAndXformStrings(t *testing.T) {
	cases := map[string]string{
		Local.String():     "local",
		Random.String():    "random",
		Indiff.String():    "indiff",
		Dist("k").String(): "dist[k]",
		(&Xform{Kind: XScatter, Key: mring.Schema{"k"}, Body: expr.View("V", "k")}).String(): "SCATTER[k](V(k))",
		(&Xform{Kind: XScatter, Body: expr.View("V", "k")}).String():                         "BROADCAST(V(k))",
		(&Xform{Kind: XGather, Body: expr.View("V", "k")}).String():                          "GATHER(V(k))",
		(&Xform{Kind: XRepart, Key: mring.Schema{"k"}, Body: expr.View("V", "k")}).String():  "REPART[k](V(k))",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("rendering: got %q want %q", got, want)
		}
	}
}
