package dist_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	"repro/internal/tpch"
)

// runLevel streams a few TPC-H Q3 batches through a deployment compiled
// at the given level and returns the total shuffled bytes plus the
// distributed block count of the lineitem trigger.
func runLevel(t *testing.T, level dist.OptLevel, workers, batches, batchSize int) (int64, int) {
	t.Helper()
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, level)
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	gen := tpch.NewGenerator(0.5, 7)
	stream := tpch.NewStream(gen, q.Tables)
	var total cluster.Metrics
	for b := 0; b < batches; b++ {
		for _, batch := range stream.NextBatches(batchSize) {
			frags := make([]*mring.Relation, workers)
			for i := range frags {
				frags[i] = mring.NewRelation(batch.Rel.Schema())
			}
			i := 0
			batch.Rel.Foreach(func(tp mring.Tuple, m float64) {
				frags[i%workers].Add(tp, m)
				i++
			})
			m, err := cl.RunPartitioned(dprogs[batch.Table], frags)
			if err != nil {
				t.Fatalf("O%d: %v", level, err)
			}
			total.Add(m)
		}
	}
	distBlocks := 0
	for _, b := range dprogs["lineitem"].Blocks {
		if b.Mode == dist.LDist {
			distBlocks++
		}
	}
	return total.ShuffledBytes, distBlocks
}

// TestCommVolumeMonotone checks the Fig. 13 ablation property on TPC-H
// Q3: every optimization level moves no more bytes than the previous
// one, and block fusion (O3) yields fewer distributed blocks than O1
// while moving no more bytes. The columnar wire format's payload size
// varies a few percent with tuple insertion order (map iteration), so
// the byte comparison allows that jitter; the transformer count, which
// is deterministic, must be strictly non-increasing.
func TestCommVolumeMonotone(t *testing.T) {
	const (
		workers   = 4
		batches   = 3
		batchSize = 3000
	)
	levels := []dist.OptLevel{dist.O0, dist.O1, dist.O2, dist.O3}
	bytes := make([]int64, len(levels))
	blocks := make([]int, len(levels))
	for i, lv := range levels {
		bytes[i], blocks[i] = runLevel(t, lv, workers, batches, batchSize)
		if bytes[i] == 0 {
			t.Fatalf("O%d: expected distributed traffic on Q3", lv)
		}
	}
	for i := 1; i < len(levels); i++ {
		// Allow 10% encoding jitter on the measured payloads.
		if bytes[i] > bytes[i-1]+bytes[i-1]/10 {
			t.Fatalf("comm volume not monotone: O%d moved %d bytes > O%d's %d",
				levels[i], bytes[i], levels[i-1], bytes[i-1])
		}
	}
	if bytes[0] <= 2*bytes[3] {
		// The naive strategy re-gathers persistent views per statement;
		// the optimized pipeline must be far cheaper on Q3.
		t.Fatalf("O0 (%d bytes) should move much more than O3 (%d)", bytes[0], bytes[3])
	}
	if blocks[3] >= blocks[1] {
		t.Fatalf("O3 dist blocks (%d) not fewer than O1's (%d)", blocks[3], blocks[1])
	}

	// The planned movement set itself is deterministic and must shrink
	// (or hold) as levels rise: O2 eliminates redundant transformers, O3
	// only regroups statements.
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	prev := -1
	for _, lv := range []dist.OptLevel{dist.O1, dist.O2, dist.O3} {
		n := 0
		for _, dp := range dist.CompileProgram(prog, parts, lv) {
			n += dp.CommStmts()
		}
		if prev >= 0 && n > prev {
			t.Fatalf("transformer count grew at O%d: %d > %d", lv, n, prev)
		}
		prev = n
	}
}

// TestRandomLocatedViewMaintainedAtO0 pins a fallback-path invariant: a
// shared view located Random keeps its contents on the workers even
// when the naive driver-side strategy computes the update, so
// ViewContents (which consults the canonical location) sees every
// applied batch.
func TestRandomLocatedViewMaintainedAtO0(t *testing.T) {
	q := expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("QR", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := dist.PartInfo{eval.DeltaName("R"): dist.Local}
	for _, v := range prog.Views {
		parts[v.Name] = dist.Random
	}
	dprogs := dist.CompileProgram(prog, parts, dist.O0)
	cl := cluster.New(cluster.DefaultConfig(3), dist.ViewSchemas(prog), parts)
	local := compile.NewExecutor(prog)
	for b := 0; b < 3; b++ {
		batch := mring.NewRelation(bases["R"])
		for i := 0; i < 20; i++ {
			batch.Add(mring.Tuple{mring.Int(int64(b*20 + i)), mring.Int(int64(i % 4))}, 1)
		}
		local.ApplyBatch("R", batch.Clone())
		if _, err := cl.Run(dprogs["R"], batch); err != nil {
			t.Fatalf("batch %d: %v\n%s", b, err, dprogs["R"])
		}
		if got, want := cl.ViewContents("QR"), local.Result(); !got.EqualApprox(want, 1e-9) {
			t.Fatalf("batch %d: got %v want %v\n%s", b, got, want, dprogs["R"])
		}
	}
}

// TestDistributedMatchesLocalOnQ3 checks end-to-end correctness of the
// optimized deployment against the single-node executor.
func TestDistributedMatchesLocalOnQ3(t *testing.T) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	const workers = 4
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	local := compile.NewExecutor(prog)
	gen := tpch.NewGenerator(0.2, 11)
	stream := tpch.NewStream(gen, q.Tables)
	for b := 0; b < 4; b++ {
		for _, batch := range stream.NextBatches(2000) {
			local.ApplyBatch(batch.Table, batch.Rel.Clone())
			frags := make([]*mring.Relation, workers)
			for i := range frags {
				frags[i] = mring.NewRelation(batch.Rel.Schema())
			}
			i := 0
			batch.Rel.Foreach(func(tp mring.Tuple, m float64) {
				frags[i%workers].Add(tp, m)
				i++
			})
			if _, err := cl.RunPartitioned(dprogs[batch.Table], frags); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := cl.ViewContents("Q3"), local.Result(); !got.EqualApprox(want, 1e-6) {
			t.Fatalf("batch round %d diverged:\n got %d rows\nwant %d rows", b, got.Len(), want.Len())
		}
	}
}
