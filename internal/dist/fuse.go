package dist

import (
	"repro/internal/eval"
	"repro/internal/expr"
)

// FuseBlocks is the block-fusion pass of App. C.3 (the O3 optimization):
// it reorders statements within their data dependencies to merge blocks
// of the same execution mode, minimizing the number of synchronization
// barriers (every distributed block is one scheduling round; every local
// block with transformers is one communication round).
//
// The input is not mutated; the fused sequence shares the statement
// values.
func FuseBlocks(blocks []Block) []Block {
	type node struct {
		mode   LocKind
		stmt   Stmt
		reads  map[string]bool
		writes string
	}
	var nodes []*node
	for _, b := range blocks {
		for _, s := range b.Stmts {
			n := &node{mode: b.Mode, stmt: s, reads: stmtReads(s), writes: s.LHS}
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil
	}

	// deps[j] holds the indices that must execute before j: any earlier
	// statement with a read/write, write/read, or write/write conflict.
	deps := make([][]int, len(nodes))
	for j, nj := range nodes {
		for i := 0; i < j; i++ {
			ni := nodes[i]
			if ni.writes == nj.writes || nj.reads[ni.writes] || ni.reads[nj.writes] {
				deps[j] = append(deps[j], i)
			}
		}
	}

	// Greedy list scheduling: emit every ready statement of the current
	// mode (in original order, cascading as emissions unblock more), then
	// switch modes. This merges all mergeable same-mode blocks while
	// preserving every dependency.
	scheduled := make([]bool, len(nodes))
	remaining := len(nodes)
	ready := func(j int) bool {
		if scheduled[j] {
			return false
		}
		for _, d := range deps[j] {
			if !scheduled[d] {
				return false
			}
		}
		return true
	}
	var out []Block
	mode := nodes[0].mode
	for remaining > 0 {
		var cur []Stmt
		for progress := true; progress; {
			progress = false
			for j, n := range nodes {
				if n.mode == mode && ready(j) {
					cur = append(cur, n.stmt)
					scheduled[j] = true
					remaining--
					progress = true
				}
			}
		}
		if len(cur) > 0 {
			out = append(out, Block{Mode: mode, Stmts: cur})
		}
		if mode == LLocal {
			mode = LDist
		} else {
			mode = LLocal
		}
	}
	return out
}

// stmtReads returns the environment names a statement reads (descending
// into transformer bodies).
func stmtReads(s Stmt) map[string]bool {
	reads := map[string]bool{}
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if x, ok := e.(*Xform); ok {
			walk(x.Body)
			return
		}
		expr.Walk(e, func(n expr.Expr) bool {
			if r, ok := n.(*expr.Rel); ok {
				reads[eval.RelEnvName(r)] = true
			}
			return true
		})
	}
	walk(s.RHS)
	return reads
}
