package dist

import (
	"repro/internal/eval"
	"repro/internal/expr"
)

// Variable equivalence classes and the distributed-safety check: a
// statement may run as one stage only if merging the per-worker results
// of its RHS equals the global result. Sufficient conditions (Sec. 4.2's
// locality reasoning, approximated):
//
//   - every multiplicity-carrying path contains an input partitioned on
//     the anchor, so each contribution is produced on exactly one worker;
//   - nested aggregate lifts over partitioned data are correlated with
//     the anchor classes, so each evaluation context sees its complete
//     group locally.
//
// Equivalence classes are computed over the whole statement (equality
// predicates and variable renamings anywhere in the tree), which
// over-approximates per-branch equalities; the compiler-generated
// trigger programs correlate branches uniformly, and the conservative
// driver fallback covers everything the check rejects.

// unionFind is a tiny union-find over variable names. Variables with the
// same name are trivially in the same class (natural-join semantics).
type unionFind map[string]string

func (u unionFind) find(x string) string {
	r, ok := u[x]
	if !ok || r == x {
		return x
	}
	root := u.find(r)
	u[x] = root
	return root
}

func (u unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[ra] = rb
	}
}

// eqClasses collects variable equivalences from equality comparisons
// (a = b) and variable renamings (a := b) anywhere in the statement.
func eqClasses(e expr.Expr) unionFind {
	uf := unionFind{}
	expr.Walk(e, func(n expr.Expr) bool {
		switch x := n.(type) {
		case *expr.Cmp:
			if x.Op != expr.CEq {
				return true
			}
			l, lok := x.L.(expr.VarRef)
			r, rok := x.R.(expr.VarRef)
			if lok && rok {
				uf.union(l.Name, r.Name)
			}
		case *expr.Assign:
			if x.Q == nil {
				if v, ok := x.ValE.(expr.VarRef); ok {
					uf.union(x.Var, v.Name)
				}
			}
		}
		return true
	})
	return uf
}

// safeOn checks the statement RHS under a hosting plan: result true
// means per-worker evaluation merges correctly.
func (tc *trigCompiler) safeOn(rhs expr.Expr, sp spec, pl []action) bool {
	part := map[string]bool{}
	for _, a := range pl {
		if a.part {
			part[a.r.env] = true
		}
	}
	c := &safetyCheck{tc: tc, sp: sp, part: part}
	conf := c.conf(rhs)
	return conf && !c.poison
}

type safetyCheck struct {
	tc     *trigCompiler
	sp     spec
	part   map[string]bool
	poison bool
}

// conf reports whether every output tuple of e is produced exactly once
// across the workers (with its full multiplicity on one worker).
func (c *safetyCheck) conf(e expr.Expr) bool {
	switch x := e.(type) {
	case *expr.Rel:
		return c.part[eval.RelEnvName(x)]
	case *expr.Mul:
		conf := false
		for _, f := range x.Factors {
			if c.conf(f) {
				conf = true
			}
		}
		return conf
	case *expr.Plus:
		conf := len(x.Terms) > 0
		for _, t := range x.Terms {
			if !c.conf(t) {
				conf = false
			}
		}
		return conf
	case *expr.Agg:
		return c.conf(x.Body)
	case *expr.Exists:
		// Exists is not linear: per-worker evaluation over partial groups
		// emits 1 on every worker holding a fragment of the group, and the
		// additive merge overcounts. Safe only when each body group lives
		// wholly on one worker.
		c.checkNonLinear(x.Body)
		return c.conf(x.Body)
	case *expr.Assign:
		if x.Q == nil {
			return false
		}
		if len(x.Q.Schema()) == 0 {
			// Scalar aggregate lift: per-worker evaluation yields partial
			// sums, which is only correct when the context confines the
			// evaluation to the worker owning the whole group — i.e. the
			// lift is correlated with every anchor class.
			c.checkScalarLift(x)
			c.conf(x.Q) // still descend for nested poison
			return false
		}
		// var := Q lifts the group multiplicity of Q into a value; a
		// partial per-worker multiplicity would lift the wrong value, so
		// the same whole-group-locality condition as Exists applies.
		c.checkNonLinear(x.Q)
		return c.conf(x.Q)
	default:
		return false
	}
}

// checkNonLinear poisons the plan when a non-linear operator (Exists, or a
// relation-valued lift) would evaluate per worker over partitioned data
// whose groups are split across workers. The groups of the operator are
// its body's output tuples, so the plan is safe only when every anchor
// class is bound by a body schema column: then tuples agreeing on the
// schema agree on the partition key and reside on one worker.
func (c *safetyCheck) checkNonLinear(body expr.Expr) {
	if c.poison {
		return
	}
	hasPart := false
	expr.Walk(body, func(n expr.Expr) bool {
		if r, ok := n.(*expr.Rel); ok && c.part[eval.RelEnvName(r)] {
			hasPart = true
		}
		return true
	})
	if !hasPart {
		return // fully replicated/local body: every worker sees whole groups
	}
	if len(c.sp) == 0 {
		c.poison = true // random partitioning co-locates nothing
		return
	}
	schema := body.Schema()
	for _, root := range c.sp {
		covered := false
		for _, col := range schema {
			if c.tc.uf.find(col) == root {
				covered = true
				break
			}
		}
		if !covered {
			c.poison = true
			return
		}
	}
}

// checkScalarLift poisons the plan when a scalar lift reads partitioned
// data without being correlated on the anchor classes.
func (c *safetyCheck) checkScalarLift(a *expr.Assign) {
	hasPart := false
	expr.Walk(a.Q, func(n expr.Expr) bool {
		if r, ok := n.(*expr.Rel); ok && c.part[eval.RelEnvName(r)] {
			hasPart = true
		}
		return true
	})
	if !hasPart {
		return
	}
	if len(c.sp) == 0 {
		c.poison = true // random anchor cannot be correlated
		return
	}
	free := expr.FreeVars(a.Q)
	for _, root := range c.sp {
		covered := false
		for _, v := range free {
			if c.tc.uf.find(v) == root {
				covered = true
				break
			}
		}
		if !covered {
			c.poison = true
			return
		}
	}
}
