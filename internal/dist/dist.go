package dist

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// LocKind classifies where data (or computation) lives on the
// driver/worker platform.
type LocKind uint8

// Location kinds. LLocal and LDist double as statement-block modes: a
// block tagged LLocal runs at the driver, a block tagged LDist is one
// stage run by every worker.
const (
	// LLocal places data at the driver.
	LLocal LocKind = iota
	// LDist spreads data over the workers, hash-partitioned by Loc.Key
	// when a key is present and with no placement invariant otherwise.
	LDist
	// LIndiff marks location-indifferent data: replicated on every
	// worker (and mirrored at the driver), so any node can read it.
	LIndiff
)

func (k LocKind) String() string {
	switch k {
	case LLocal:
		return "local"
	case LDist:
		return "dist"
	default:
		return "indiff"
	}
}

// Loc is one partitioning specification: a location kind plus the
// partition key columns for keyed distributed placement.
type Loc struct {
	Kind LocKind
	// Key holds the partition key columns (names in the view's schema).
	// Empty for local, replicated, and randomly partitioned data.
	Key mring.Schema
}

// Partitioning specs.
var (
	// Local keeps a view at the driver.
	Local = Loc{Kind: LLocal}
	// Random distributes a view with no partitioning invariant: its
	// fragments live wherever they were produced (e.g. update batches
	// ingested directly by the workers, Sec. 6.2).
	Random = Loc{Kind: LDist}
	// Indiff replicates a view on every worker (location-indifferent
	// data, typically small dimension views).
	Indiff = Loc{Kind: LIndiff}
)

// Dist distributes a view hash-partitioned by the given key columns.
func Dist(key ...string) Loc {
	return Loc{Kind: LDist, Key: mring.Schema(key).Clone()}
}

func (l Loc) String() string {
	if l.Kind == LDist && len(l.Key) > 0 {
		return fmt.Sprintf("dist[%s]", strings.Join(l.Key, ","))
	}
	if l.Kind == LDist {
		return "random"
	}
	return l.Kind.String()
}

// Keyed reports whether the location is distributed with a partition key.
func (l Loc) Keyed() bool { return l.Kind == LDist && len(l.Key) > 0 }

// Equal reports whether two locations place data identically (same kind
// and same partition key columns in order).
func (l Loc) Equal(o Loc) bool {
	return l.Kind == o.Kind && l.Key.Equal(o.Key)
}

// Equal reports whether two placement maps locate every relation
// identically — the "did repartitioning actually change anything" test.
func (p PartInfo) Equal(o PartInfo) bool {
	if len(p) != len(o) {
		return false
	}
	for k, v := range p {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// PartInfo maps relation names (views, transient views, and delta
// batches under their Δ-names) to their locations.
type PartInfo map[string]Loc

// Clone copies the map.
func (p PartInfo) Clone() PartInfo {
	c := make(PartInfo, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// XformKind enumerates the data-movement transformers of Sec. 4.3.
type XformKind uint8

// Transformer kinds.
const (
	// XGather collects all worker fragments of the body at the driver.
	XGather XformKind = iota
	// XScatter moves the driver copy of the body to the workers:
	// hash-partitioned by Key, or replicated to every worker when Key is
	// empty (broadcast).
	XScatter
	// XRepart exchanges worker fragments so the result is partitioned by
	// Key (worker-to-worker repartitioning).
	XRepart
)

func (k XformKind) String() string {
	switch k {
	case XScatter:
		return "SCATTER"
	case XRepart:
		return "REPART"
	default:
		return "GATHER"
	}
}

// Xform is a data-movement transformer statement RHS. It implements
// expr.Expr so transformer and compute statements share one statement
// type, but it is never evaluated by the expression interpreter: the
// cluster runtime intercepts it and performs the movement.
type Xform struct {
	Kind XformKind
	// Key holds the partition key columns for scatter/repartition,
	// resolved against the body's column names. Empty scatter key means
	// broadcast.
	Key mring.Schema
	// Body is the moved relation; compiled programs always use a plain
	// relation reference here.
	Body expr.Expr
}

// Schema implements expr.Expr.
func (x *Xform) Schema() mring.Schema { return x.Body.Schema() }

// Clone implements expr.Expr.
func (x *Xform) Clone() expr.Expr {
	return &Xform{Kind: x.Kind, Key: x.Key.Clone(), Body: x.Body.Clone()}
}

func (x *Xform) String() string {
	if len(x.Key) > 0 {
		return fmt.Sprintf("%s[%s](%s)", x.Kind, strings.Join(x.Key, ","), x.Body)
	}
	if x.Kind == XScatter {
		return fmt.Sprintf("BROADCAST(%s)", x.Body)
	}
	return fmt.Sprintf("%s(%s)", x.Kind, x.Body)
}

// Stmt is one statement of a distributed program: LHS op= RHS, where RHS
// is either a compute expression or an Xform transformer.
type Stmt struct {
	LHS string
	Op  eval.AssignOp
	RHS expr.Expr
}

func (s Stmt) String() string {
	return fmt.Sprintf("%s %s %s", s.LHS, s.Op, s.RHS)
}

// IsXform reports whether the statement is a data-movement transformer.
func (s Stmt) IsXform() bool {
	_, ok := s.RHS.(*Xform)
	return ok
}

// Block is a maximal run of statements with one execution mode: LLocal
// blocks run at the driver (transformer statements inside them trigger
// data movement), LDist blocks are stages executed by all workers.
type Block struct {
	Mode  LocKind
	Stmts []Stmt
}

func (b Block) String() string {
	var sb strings.Builder
	mode := "LOCAL"
	if b.Mode == LDist {
		mode = "DIST"
	}
	fmt.Fprintf(&sb, "%s {\n", mode)
	for _, s := range b.Stmts {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	sb.WriteString("}")
	return sb.String()
}

// OptLevel selects the distributed-compilation optimization level.
type OptLevel int

// Optimization levels (Fig. 13's ablation).
const (
	// O0 is the naive strategy: every compute statement runs at the
	// driver; distributed inputs are gathered per statement and results
	// are scattered back to their canonical locations.
	O0 OptLevel = iota
	// O1 adds locality-aware transformer insertion: statements run where
	// their data lives, with scatter/repartition/broadcast movement only
	// for inputs that break co-partitioning.
	O1
	// O2 adds redundant-transformer elimination: identical movements of
	// unchanged data within a trigger are performed once and reused.
	O2
	// O3 adds block fusion (App. C.3): statements are reordered within
	// data dependencies to merge adjacent same-mode blocks, cutting
	// synchronization barriers.
	O3
)

// DistProgram is the distributed trigger program for one updated base
// relation: the sequence of statement blocks the platform executes per
// batch.
type DistProgram struct {
	// Relation is the updated base relation (the trigger's ON UPDATE).
	Relation string
	// Level records the optimization level the program was compiled at.
	Level OptLevel
	// Blocks is the executed block sequence.
	Blocks []Block
	// Parts locates every relation the program touches: the canonical
	// view locations plus the movement temporaries.
	Parts PartInfo
}

// Stages counts the distributed stages (LDist blocks): each is one
// synchronous round of parallel worker execution.
func (p *DistProgram) Stages() int {
	n := 0
	for _, b := range p.Blocks {
		if b.Mode == LDist {
			n++
		}
	}
	return n
}

// Jobs counts the driver-side action rounds: local blocks that collect
// distributed results (contain a gather). A program with distributed
// stages but no collect still forms one job.
func (p *DistProgram) Jobs() int {
	n := 0
	for _, b := range p.Blocks {
		if b.Mode == LDist {
			continue
		}
		for _, s := range b.Stmts {
			if x, ok := s.RHS.(*Xform); ok && x.Kind == XGather {
				n++
				break
			}
		}
	}
	if n == 0 && p.Stages() > 0 {
		return 1
	}
	return n
}

// CommStmts counts the transformer statements (communication rounds
// before fusion batches them).
func (p *DistProgram) CommStmts() int {
	n := 0
	for _, b := range p.Blocks {
		for _, s := range b.Stmts {
			if s.IsXform() {
				n++
			}
		}
	}
	return n
}

func (p *DistProgram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ON UPDATE %s BY %s (O%d)\n", p.Relation, eval.DeltaName(p.Relation), p.Level)
	for _, b := range p.Blocks {
		sb.WriteString(b.String())
		sb.WriteString("\n")
	}
	return sb.String()
}
