package dist_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// Q = Sum_[B](Exists(Sum_[B](R(A,B)))): distinct-B count style query.
// Partition the maintained R-view on A; the inner Agg drops A, so
// per-worker Exists over partial groups must not run distributed.
func TestAggDropsAnchorSafety(t *testing.T) {
	q := expr.Sum([]string{"B"}, expr.ExistsE(expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("Q", q, bases, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range prog.Views {
		t.Logf("view %s schema=%v transient=%v", v.Name, v.Schema, v.Transient)
	}
	for rel, trg := range prog.Triggers {
		t.Logf("trigger %s:", rel)
		for _, s := range trg.Stmts {
			t.Logf("  %s %s %s", s.LHS, s.Op, s.RHS)
		}
	}
	parts := dist.PartInfo{eval.DeltaName("R"): dist.Random}
	for _, v := range prog.Views {
		if v.Transient {
			parts[v.Name] = dist.Random
		} else {
			parts[v.Name] = dist.Indiff
		}
	}
	for n, l := range parts {
		t.Logf("part %s -> %s", n, l)
	}
	dprogs := dist.CompileProgram(prog, parts, dist.O1)
	t.Logf("%s", dprogs["R"])
	const workers = 3
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	local := compile.NewExecutor(prog)
	for b := 0; b < 2; b++ {
		batch := mring.NewRelation(bases["R"])
		for i := 0; i < 12; i++ {
			batch.Add(mring.Tuple{mring.Int(int64(b*12 + i)), mring.Int(int64(i % 3))}, 1)
		}
		local.ApplyBatch("R", batch.Clone())
		frags := make([]*mring.Relation, workers)
		for i := range frags {
			frags[i] = mring.NewRelation(bases["R"])
		}
		i := 0
		batch.Foreach(func(tp mring.Tuple, m float64) {
			frags[i%workers].Add(tp, m)
			i++
		})
		if _, err := cl.RunPartitioned(dprogs["R"], frags); err != nil {
			t.Fatal(err)
		}
		if got, want := cl.ViewContents("Q"), local.Result(); !got.EqualApprox(want, 1e-9) {
			t.Fatalf("batch %d diverged:\n got %v\nwant %v", b, got, want)
		}
	}
}
