// Package dist compiles local trigger programs into distributed
// programs for the synchronous driver/worker platform of Sec. 4: local
// computation blocks interleaved with data-movement transformers.
//
// Mapping to the paper's concepts:
//
//   - Loc / PartInfo are the location annotations of Sec. 4.2: every
//     materialized view is local to the driver (Local), hash-partitioned
//     over the workers by a key (Dist), partitioned with no placement
//     invariant (Random, e.g. update batches ingested by the workers),
//     or location-indifferent/replicated (Indiff).
//   - ChoosePartitioning is the co-partitioning heuristic of Sec. 6.2:
//     partition each view on the highest-cardinality key column in its
//     schema, replicate small dimension views, keep scalars at the
//     driver.
//   - Xform models the transformers of Sec. 4.3: scatter (driver to
//     workers, keyed or broadcast), repartition (worker exchange), and
//     gather (workers to driver).
//   - CompileProgram is the distributed trigger compiler of Sec. 4.4: at
//     O0 it evaluates every statement at the driver, gathering inputs
//     naively; O1 inserts transformers locality-aware so statements run
//     where their data lives; O2 eliminates redundant transformers
//     (identical movements of unchanged data); O3 runs FuseBlocks.
//   - FuseBlocks is the block-fusion algorithm of App. C.3: statements
//     are reordered within their data dependencies so adjacent blocks of
//     one execution mode merge, cutting synchronization barriers.
//   - DistProgram.Jobs/Stages report the Table 3 complexity measures:
//     stages are distributed blocks (one parallel round each), jobs are
//     driver-side collect rounds.
//
// The statement analysis reasons with variable equivalence classes
// (natural-join column sharing plus equality predicates and renamings):
// inputs keyed on the same class are co-partitioned, so a worker holds
// every tuple combination that can join. Statements whose additive
// contributions are not confined to one worker — or whose nested
// aggregate lifts read partitioned data uncorrelated with the anchor —
// fall back to driver-side evaluation, which is always safe.
package dist
