package dist

import (
	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/mring"
)

// PartInfo construction: the co-partitioning heuristic of Sec. 6.2.

// ViewSchemas returns the schema of every relation a compiled program's
// triggers can reference: all materialized views (including transients)
// and the update batches under their Δ-names.
func ViewSchemas(prog *compile.Program) map[string]mring.Schema {
	schemas := make(map[string]mring.Schema, len(prog.Views)+len(prog.Bases))
	for _, v := range prog.Views {
		schemas[v.Name] = v.Schema.Clone()
	}
	for name, s := range prog.Bases {
		schemas[eval.DeltaName(name)] = s.Clone()
	}
	return schemas
}

// ChoosePartitioning assigns a location to every view and delta of a
// compiled program, following the paper's heuristic: partition each view
// on the key of the largest base relation appearing in its schema.
// keyRanks orders the candidate partition columns by the cardinality of
// their source table (higher rank = larger table; see
// tpch.PrimaryKeyRanks). The resulting choices:
//
//   - scalar views (empty schema) live at the driver;
//   - views whose schema holds a ranked key column are hash-partitioned
//     on the best-ranked one;
//   - views over small dimensions only (best rank <= 1, or no ranked
//     column at all) are replicated, so fact-side triggers never move
//     them;
//   - transient per-batch delta views with no ranked column stay wherever
//     the batch fragments live (Random);
//   - update batches are tagged Random: workers ingest stream fragments
//     directly (Sec. 6.2), which is what Cluster.RunPartitioned models.
func ChoosePartitioning(prog *compile.Program, keyRanks map[string]int) PartInfo {
	return ChoosePartitioningWeighted(prog, keyRanks, nil)
}

// ChoosePartitioningWeighted is ChoosePartitioning with measured skew
// feedback: weights maps a candidate partition column to its observed
// placement imbalance (max/mean fragment size under hash placement;
// 1 = perfectly uniform, as the unweighted heuristic implicitly
// assumes). The rank ordering still decides *whether* a view
// distributes or replicates — that depends on source-table size, not
// balance — but among a view's distributable key columns the choice is
// re-scored by rank/max(1, weight), so a heavily skewed big-table key
// loses to a slightly lower-ranked but well-balanced one. Nil or empty
// weights reduce exactly to the unweighted heuristic.
func ChoosePartitioningWeighted(prog *compile.Program, keyRanks map[string]int, weights map[string]float64) PartInfo {
	parts := make(PartInfo, len(prog.Views)+len(prog.Bases))
	for _, v := range prog.Views {
		parts[v.Name] = chooseViewLoc(v, keyRanks, weights)
	}
	for name := range prog.Bases {
		parts[eval.DeltaName(name)] = Random
	}
	return parts
}

// KeySkew measures the placement imbalance relation r would have if
// hash-partitioned on the columns at pos across n workers: max/mean
// fragment tuple count (1 = perfectly balanced, n = everything on one
// worker). Relations too small to matter report 1.
func KeySkew(r *mring.Relation, pos []int, n int) float64 {
	if n <= 1 || r.Len() == 0 {
		return 1
	}
	counts := make([]int, n)
	r.Foreach(func(t mring.Tuple, _ float64) {
		counts[PlaceIndex(t, pos, n)]++
	})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) * float64(n) / float64(r.Len())
}

// PlaceIndex is the platform's placement function: the worker index
// owning tuple t under the partition-key columns at keyPos, for n
// workers. It is the single definition shared by the shuffle
// transformers and the warm-start initial load, so data loaded before
// streaming lands exactly where repartitioned data would.
func PlaceIndex(t mring.Tuple, keyPos []int, n int) int {
	return int(t.HashCols(keyPos) % uint64(n))
}

// SplitByKey hash-partitions r into n fragments with PlaceIndex.
// Fragments a tuple never landed in are nil.
func SplitByKey(r *mring.Relation, keyPos []int, n int) []*mring.Relation {
	out := make([]*mring.Relation, n)
	r.Foreach(func(t mring.Tuple, m float64) {
		i := PlaceIndex(t, keyPos, n)
		if out[i] == nil {
			out[i] = mring.NewRelation(r.Schema())
		}
		out[i].Add(t, m)
	})
	return out
}

func chooseViewLoc(v *compile.ViewDef, keyRanks map[string]int, weights map[string]float64) Loc {
	if len(v.Schema) == 0 {
		if v.Transient {
			return Random
		}
		return Local
	}
	// bestRank (unweighted) decides distribute-vs-replicate; best is the
	// weighted argmax among distributable (rank >= 2) columns. Schema
	// order breaks score ties deterministically.
	best, bestRank, bestScore := "", 0, 0.0
	for _, col := range v.Schema {
		r, ok := keyRanks[col]
		if !ok {
			continue
		}
		if r > bestRank {
			bestRank = r
		}
		if r < 2 {
			continue
		}
		score := float64(r)
		if w := weights[col]; w > 1 {
			score = float64(r) / w
		}
		if score > bestScore {
			best, bestScore = col, score
		}
	}
	if bestRank >= 2 {
		return Dist(best)
	}
	if v.Transient {
		// Per-batch delta aggregates: leave them co-located with the
		// batch fragments that produced them.
		return Random
	}
	// Only low-cardinality dimension keys (or none at all): replicate.
	return Indiff
}
