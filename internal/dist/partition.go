package dist

import (
	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/mring"
)

// PartInfo construction: the co-partitioning heuristic of Sec. 6.2.

// ViewSchemas returns the schema of every relation a compiled program's
// triggers can reference: all materialized views (including transients)
// and the update batches under their Δ-names.
func ViewSchemas(prog *compile.Program) map[string]mring.Schema {
	schemas := make(map[string]mring.Schema, len(prog.Views)+len(prog.Bases))
	for _, v := range prog.Views {
		schemas[v.Name] = v.Schema.Clone()
	}
	for name, s := range prog.Bases {
		schemas[eval.DeltaName(name)] = s.Clone()
	}
	return schemas
}

// ChoosePartitioning assigns a location to every view and delta of a
// compiled program, following the paper's heuristic: partition each view
// on the key of the largest base relation appearing in its schema.
// keyRanks orders the candidate partition columns by the cardinality of
// their source table (higher rank = larger table; see
// tpch.PrimaryKeyRanks). The resulting choices:
//
//   - scalar views (empty schema) live at the driver;
//   - views whose schema holds a ranked key column are hash-partitioned
//     on the best-ranked one;
//   - views over small dimensions only (best rank <= 1, or no ranked
//     column at all) are replicated, so fact-side triggers never move
//     them;
//   - transient per-batch delta views with no ranked column stay wherever
//     the batch fragments live (Random);
//   - update batches are tagged Random: workers ingest stream fragments
//     directly (Sec. 6.2), which is what Cluster.RunPartitioned models.
func ChoosePartitioning(prog *compile.Program, keyRanks map[string]int) PartInfo {
	parts := make(PartInfo, len(prog.Views)+len(prog.Bases))
	for _, v := range prog.Views {
		parts[v.Name] = chooseViewLoc(v, keyRanks)
	}
	for name := range prog.Bases {
		parts[eval.DeltaName(name)] = Random
	}
	return parts
}

// PlaceIndex is the platform's placement function: the worker index
// owning tuple t under the partition-key columns at keyPos, for n
// workers. It is the single definition shared by the shuffle
// transformers and the warm-start initial load, so data loaded before
// streaming lands exactly where repartitioned data would.
func PlaceIndex(t mring.Tuple, keyPos []int, n int) int {
	return int(t.HashCols(keyPos) % uint64(n))
}

// SplitByKey hash-partitions r into n fragments with PlaceIndex.
// Fragments a tuple never landed in are nil.
func SplitByKey(r *mring.Relation, keyPos []int, n int) []*mring.Relation {
	out := make([]*mring.Relation, n)
	r.Foreach(func(t mring.Tuple, m float64) {
		i := PlaceIndex(t, keyPos, n)
		if out[i] == nil {
			out[i] = mring.NewRelation(r.Schema())
		}
		out[i].Add(t, m)
	})
	return out
}

func chooseViewLoc(v *compile.ViewDef, keyRanks map[string]int) Loc {
	if len(v.Schema) == 0 {
		if v.Transient {
			return Random
		}
		return Local
	}
	best, bestRank := "", 0
	for _, col := range v.Schema {
		if r, ok := keyRanks[col]; ok && r > bestRank {
			best, bestRank = col, r
		}
	}
	if bestRank >= 2 {
		return Dist(best)
	}
	if v.Transient {
		// Per-batch delta aggregates: leave them co-located with the
		// batch fragments that produced them.
		return Random
	}
	// Only low-cardinality dimension keys (or none at all): replicate.
	return Indiff
}
