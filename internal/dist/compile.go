package dist

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

// CompileProgram lowers every trigger of a compiled maintenance program
// into a distributed program of statement blocks and data-movement
// transformers (Sec. 4.3-4.4), one per updated base relation. parts
// fixes the canonical location of every view and delta; level selects
// the optimization pipeline (O0 naive ... O3 fused).
func CompileProgram(prog *compile.Program, parts PartInfo, level OptLevel) map[string]*DistProgram {
	out := make(map[string]*DistProgram, len(prog.Triggers))
	for rel, trg := range prog.Triggers {
		out[rel] = compileTrigger(prog, trg, parts, level)
	}
	return out
}

// moved caches one performed data movement (O2 reuse).
type moved struct {
	sig  string // kind | key | source env name
	src  string // source env name (invalidated when written)
	temp string // relation holding the moved copy
}

// trigCompiler lowers one trigger.
type trigCompiler struct {
	prog    *compile.Program
	parts   PartInfo
	level   OptLevel
	rel     string
	schemas map[string]mring.Schema
	// cur tracks the effective location of every relation as statements
	// execute: canonical locations from parts, plus movement temporaries
	// and transient views that are kept wherever they were produced.
	cur PartInfo
	// uf holds the variable equivalence classes of the statement being
	// compiled (same name, plus equality predicates and renamings).
	uf     unionFind
	blocks []Block
	// stmtStart marks the first block of the current source statement:
	// emissions coalesce only within one source statement, so the
	// pre-fusion block structure mirrors the statement structure.
	stmtStart int
	nTemp     int
	cache     []moved
}

func compileTrigger(prog *compile.Program, trg *compile.Trigger, parts PartInfo, level OptLevel) *DistProgram {
	tc := &trigCompiler{
		prog:    prog,
		parts:   parts,
		level:   level,
		rel:     trg.Relation,
		schemas: ViewSchemas(prog),
		cur:     parts.Clone(),
	}
	for _, s := range trg.Stmts {
		tc.stmtStart = len(tc.blocks)
		tc.compileStmt(Stmt{LHS: s.LHS, Op: s.Op, RHS: s.RHS})
	}
	dp := &DistProgram{
		Relation: trg.Relation,
		Level:    level,
		Blocks:   tc.blocks,
		Parts:    tc.cur,
	}
	if level >= O3 {
		dp.Blocks = FuseBlocks(dp.Blocks)
	}
	return dp
}

// emit appends a statement, coalescing with the previous block when the
// mode matches and the block belongs to the same source statement.
func (tc *trigCompiler) emit(mode LocKind, s Stmt) {
	if n := len(tc.blocks); n > tc.stmtStart && tc.blocks[n-1].Mode == mode {
		tc.blocks[n-1].Stmts = append(tc.blocks[n-1].Stmts, s)
	} else {
		tc.blocks = append(tc.blocks, Block{Mode: mode, Stmts: []Stmt{s}})
	}
	tc.noteWrite(s.LHS)
}

// noteWrite invalidates cached movements sourced from the written name.
func (tc *trigCompiler) noteWrite(name string) {
	kept := tc.cache[:0]
	for _, m := range tc.cache {
		if m.src != name && m.temp != name {
			kept = append(kept, m)
		}
	}
	tc.cache = kept
}

func (tc *trigCompiler) temp(schema mring.Schema) string {
	name := fmt.Sprintf("@%s.%d", tc.rel, tc.nTemp)
	tc.nTemp++
	tc.schemas[name] = schema.Clone()
	return name
}

func viewRef(name string, cols mring.Schema) *expr.Rel {
	return &expr.Rel{Kind: expr.RView, Name: name, Cols: cols.Clone()}
}

// move emits one data movement of src (a relation reference) and returns
// the name holding the moved copy. At O2+ identical movements of
// unchanged sources are reused.
func (tc *trigCompiler) move(kind XformKind, key mring.Schema, src *expr.Rel, loc Loc) string {
	env := eval.RelEnvName(src)
	sig := fmt.Sprintf("%d|%v|%s", kind, key, env)
	if tc.level >= O2 {
		for _, m := range tc.cache {
			if m.sig == sig {
				return m.temp
			}
		}
	}
	t := tc.temp(src.Cols)
	tc.emit(LLocal, Stmt{LHS: t, Op: eval.OpSet, RHS: &Xform{Kind: kind, Key: key.Clone(), Body: src.Clone()}})
	tc.cur[t] = loc
	tc.cache = append(tc.cache, moved{sig: sig, src: env, temp: t})
	return t
}

// gatherBroadcast replicates a distributed relation on every worker
// (gather to the driver, then broadcast), returning the replica name.
func (tc *trigCompiler) gatherBroadcast(src *expr.Rel) string {
	env := eval.RelEnvName(src)
	sig := fmt.Sprintf("gb|%s", env)
	if tc.level >= O2 {
		for _, m := range tc.cache {
			if m.sig == sig {
				return m.temp
			}
		}
	}
	g := tc.temp(src.Cols)
	tc.emit(LLocal, Stmt{LHS: g, Op: eval.OpSet, RHS: &Xform{Kind: XGather, Body: src.Clone()}})
	tc.cur[g] = Local
	b := tc.temp(src.Cols)
	tc.emit(LLocal, Stmt{LHS: b, Op: eval.OpSet, RHS: &Xform{Kind: XScatter, Body: viewRef(g, src.Cols)}})
	tc.cur[b] = Indiff
	tc.cache = append(tc.cache, moved{sig: sig, src: env, temp: b})
	return b
}

// ref is one distinct relation read by a statement.
type ref struct {
	rel *expr.Rel
	env string
	loc Loc
}

func (tc *trigCompiler) collectRefs(e expr.Expr) []*ref {
	var out []*ref
	seen := map[string]bool{}
	expr.Walk(e, func(n expr.Expr) bool {
		if r, ok := n.(*expr.Rel); ok {
			env := eval.RelEnvName(r)
			if !seen[env] {
				seen[env] = true
				out = append(out, &ref{rel: r, env: env, loc: tc.cur[env]})
			}
		}
		return true
	})
	return out
}

// keyVars maps a keyed location's key columns (named in the relation's
// canonical schema) to the variable names they bind in this reference.
func (tc *trigCompiler) keyVars(r *ref) []string {
	canon := tc.schemas[r.env]
	vars := make([]string, 0, len(r.loc.Key))
	for _, k := range r.loc.Key {
		p := canon.Index(k)
		if p < 0 || p >= len(r.rel.Cols) {
			p = r.rel.Cols.Index(k)
		}
		if p < 0 {
			return nil // key not resolvable in this reference
		}
		vars = append(vars, r.rel.Cols[p])
	}
	return vars
}

// compileStmt lowers one trigger statement.
func (tc *trigCompiler) compileStmt(s Stmt) {
	tc.uf = eqClasses(s.RHS)
	refs := tc.collectRefs(s.RHS)

	distributed := false
	for _, r := range refs {
		if r.loc.Kind == LDist {
			distributed = true
			break
		}
	}
	if tc.level <= O0 || !distributed {
		tc.compileAtDriver(s, refs)
		return
	}
	if spec, pl, ok := tc.chooseAnchor(s, refs); ok {
		tc.compileDistributed(s, spec, pl)
		return
	}
	tc.compileAtDriver(s, refs)
}

// spec is an anchor partitioning specification: the equivalence-class
// representatives the statement's co-partitioned inputs are keyed on.
// A nil spec anchors on a single randomly-partitioned input in place.
type spec []string

// action plans the hosting of one input reference.
type action struct {
	r *ref
	// host: true = partitioned on the anchor; false = replicated copy.
	part bool
	// movement: xNone means the input is usable in place.
	kind XformKind
	key  mring.Schema
	do   bool
}

const (
	weightBulk  = 4 // persistent views: moving them is expensive
	weightDelta = 1 // per-batch data: deltas, transients, temporaries
)

// weight is a static size proxy: per-batch data (deltas, transient
// views, temporaries) is cheap to move; persistent views cost more the
// wider their tuples are.
func (tc *trigCompiler) weight(r *ref) int {
	if r.rel.Kind == expr.RDelta {
		return weightDelta
	}
	if v := tc.prog.View(r.env); v != nil && !v.Transient {
		w := len(v.Schema)
		if w < 1 {
			w = 1
		}
		return weightBulk * w
	}
	return weightDelta
}

// planFor computes the hosting actions and cost of evaluating the
// statement on the given anchor spec. ok=false when some input cannot be
// hosted.
func (tc *trigCompiler) planFor(sp spec, refs []*ref) (plan []action, cost int, ok bool) {
	randomAnchored := false
	for _, r := range refs {
		a := action{r: r}
		w := tc.weight(r)
		switch {
		case r.loc.Kind == LIndiff:
			a.part = false
		case r.loc.Kind == LLocal:
			if key, found := tc.coveringKey(r, sp); found {
				a.part, a.do, a.kind, a.key = true, true, XScatter, key
				cost += 1 * w
			} else {
				a.part, a.do, a.kind = false, true, XScatter // broadcast
				cost += 2 * w
			}
		case r.loc.Keyed():
			if tc.coLocated(r, sp) {
				a.part = true
			} else if key, found := tc.coveringKey(r, sp); found {
				a.part, a.do, a.kind, a.key = true, true, XRepart, key
				cost += 2 * w
			} else {
				a.part, a.do = false, true // gather+broadcast
				cost += 4 * w
			}
		default: // Random
			if sp == nil {
				if randomAnchored {
					return nil, 0, false // only one in-place random anchor
				}
				randomAnchored = true
				a.part = true
			} else if key, found := tc.coveringKey(r, sp); found {
				a.part, a.do, a.kind, a.key = true, true, XRepart, key
				cost += 2 * w
			} else {
				a.part, a.do = false, true // gather+broadcast
				cost += 4 * w
			}
		}
		plan = append(plan, a)
	}
	return plan, cost, true
}

// coLocated reports whether a keyed reference is already partitioned on
// the anchor spec.
func (tc *trigCompiler) coLocated(r *ref, sp spec) bool {
	if sp == nil {
		return false
	}
	vars := tc.keyVars(r)
	if len(vars) != len(sp) {
		return false
	}
	for i, v := range vars {
		if tc.uf.find(v) != sp[i] {
			return false
		}
	}
	return true
}

// coveringKey finds, for each anchor class, a column of the reference in
// that class — the key a scatter/repartition can use to co-locate it.
func (tc *trigCompiler) coveringKey(r *ref, sp spec) (mring.Schema, bool) {
	if sp == nil {
		return nil, false
	}
	key := make(mring.Schema, 0, len(sp))
	for _, root := range sp {
		found := ""
		for _, c := range r.rel.Cols {
			if tc.uf.find(c) == root {
				found = c
				break
			}
		}
		if found == "" {
			return nil, false
		}
		key = append(key, found)
	}
	return key, true
}

// chooseAnchor picks the cheapest safe anchor spec for the statement.
func (tc *trigCompiler) chooseAnchor(s Stmt, refs []*ref) (spec, []action, bool) {
	var candidates []spec
	nRandom := 0
	for _, r := range refs {
		if r.loc.Kind == LDist && !r.loc.Keyed() {
			nRandom++
		}
	}
	if nRandom == 1 {
		candidates = append(candidates, nil)
	}
	addSpec := func(vars []string) {
		if len(vars) == 0 {
			return
		}
		sp := make(spec, len(vars))
		for i, v := range vars {
			sp[i] = tc.uf.find(v)
		}
		for _, c := range candidates {
			if specEqual(c, sp) {
				return
			}
		}
		candidates = append(candidates, sp)
	}
	for _, r := range refs {
		if r.loc.Keyed() {
			addSpec(tc.keyVars(r))
		}
	}
	if tgt := tc.cur[s.LHS]; tgt.Keyed() {
		addSpec(tgt.Key) // target key columns name statement variables
	}
	if len(candidates) == 0 {
		// Several random inputs and nothing keyed: try single-class
		// anchors drawn from the first random input's columns.
		for _, r := range refs {
			if r.loc.Kind == LDist && !r.loc.Keyed() {
				for _, c := range r.rel.Cols {
					addSpec([]string{c})
				}
				break
			}
		}
	}

	bestCost := -1
	var bestSpec spec
	var bestPlan []action
	for _, sp := range candidates {
		pl, cost, ok := tc.planFor(sp, refs)
		if !ok || !tc.safeOn(s.RHS, sp, pl) {
			continue
		}
		cost += tc.writebackCost(s, sp)
		if bestCost < 0 || cost < bestCost {
			bestCost, bestSpec, bestPlan = cost, sp, pl
		}
	}
	if bestCost < 0 {
		return nil, nil, false
	}
	return bestSpec, bestPlan, true
}

func specEqual(a, b spec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writebackCost estimates the movement needed to install the result.
func (tc *trigCompiler) writebackCost(s Stmt, sp spec) int {
	tgt := tc.cur[s.LHS]
	switch {
	case tgt.Keyed():
		if sp != nil {
			if rk := tc.resultKey(s, sp); rk != nil && tc.sameClasses(rk, tgt.Key) {
				return 0
			}
		}
		return 2
	case tgt.Kind == LLocal:
		return 1
	case tgt.Kind == LIndiff:
		return 3
	default: // Random target: result stays in place
		return 0
	}
}

// stmtSchema returns the canonical schema of the statement target.
func (tc *trigCompiler) stmtSchema(s Stmt) mring.Schema {
	if sc, ok := tc.schemas[s.LHS]; ok {
		return sc
	}
	return s.RHS.Schema()
}

// resultKey maps each anchor class to a result column in it, or nil when
// the result loses the anchor (and is therefore randomly partitioned).
func (tc *trigCompiler) resultKey(s Stmt, sp spec) mring.Schema {
	schema := tc.stmtSchema(s)
	key := make(mring.Schema, 0, len(sp))
	for _, root := range sp {
		found := ""
		for _, c := range schema {
			if tc.uf.find(c) == root {
				found = c
				break
			}
		}
		if found == "" {
			return nil
		}
		key = append(key, found)
	}
	return key
}

// compileDistributed emits the statement as worker-side computation.
func (tc *trigCompiler) compileDistributed(s Stmt, sp spec, pl []action) {
	// Movement: make every input available on the workers.
	sub := map[string]*expr.Rel{}
	for _, a := range pl {
		if !a.do {
			continue
		}
		var t string
		if a.kind == XScatter || a.kind == XRepart {
			loc := Random
			if len(a.key) > 0 {
				loc = Loc{Kind: LDist, Key: a.key.Clone()}
			} else {
				loc = Indiff // broadcast
			}
			t = tc.move(a.kind, a.key, a.r.rel, loc)
		} else {
			t = tc.gatherBroadcast(a.r.rel)
		}
		sub[a.r.env] = viewRef(t, a.r.rel.Cols)
	}
	rhs := rewriteRefs(s.RHS, sub)

	tgt := tc.cur[s.LHS]
	resKey := mring.Schema(nil)
	if sp != nil {
		resKey = tc.resultKey(s, sp)
	}

	resLoc := Random
	if resKey != nil {
		resLoc = Loc{Kind: LDist, Key: resKey.Clone()}
	}

	switch {
	case tgt.Keyed():
		if resKey != nil && tc.sameClasses(resKey, tgt.Key) {
			// Result lands partitioned exactly like the target.
			tc.emit(LDist, Stmt{LHS: s.LHS, Op: s.Op, RHS: rhs})
			return
		}
		t := tc.temp(tc.stmtSchema(s))
		tc.emit(LDist, Stmt{LHS: t, Op: eval.OpSet, RHS: rhs})
		tc.cur[t] = resLoc
		if s.Op == eval.OpSet {
			tc.emit(LLocal, Stmt{LHS: s.LHS, Op: eval.OpSet,
				RHS: &Xform{Kind: XRepart, Key: tgt.Key.Clone(), Body: viewRef(t, tc.stmtSchema(s))}})
			return
		}
		t2 := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: t2, Op: eval.OpSet,
			RHS: &Xform{Kind: XRepart, Key: tgt.Key.Clone(), Body: viewRef(t, tc.stmtSchema(s))}})
		tc.cur[t2] = Loc{Kind: LDist, Key: tgt.Key.Clone()}
		tc.emit(LDist, Stmt{LHS: s.LHS, Op: eval.OpAdd, RHS: viewRef(t2, tc.stmtSchema(s))})
	case tgt.Kind == LLocal:
		t := tc.temp(tc.stmtSchema(s))
		tc.emit(LDist, Stmt{LHS: t, Op: eval.OpSet, RHS: rhs})
		tc.cur[t] = resLoc
		if s.Op == eval.OpSet {
			tc.emit(LLocal, Stmt{LHS: s.LHS, Op: eval.OpSet,
				RHS: &Xform{Kind: XGather, Body: viewRef(t, tc.stmtSchema(s))}})
			return
		}
		g := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: g, Op: eval.OpSet,
			RHS: &Xform{Kind: XGather, Body: viewRef(t, tc.stmtSchema(s))}})
		tc.cur[g] = Local
		tc.emit(LLocal, Stmt{LHS: s.LHS, Op: eval.OpAdd, RHS: viewRef(g, tc.stmtSchema(s))})
	case tgt.Kind == LIndiff:
		t := tc.temp(tc.stmtSchema(s))
		tc.emit(LDist, Stmt{LHS: t, Op: eval.OpSet, RHS: rhs})
		tc.cur[t] = resLoc
		g := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: g, Op: eval.OpSet,
			RHS: &Xform{Kind: XGather, Body: viewRef(t, tc.stmtSchema(s))}})
		tc.cur[g] = Local
		tc.installReplicated(s, g)
	default:
		// Random target (transient): leave the result where it was
		// produced and remember its effective partitioning. Accumulating
		// writes keep the label only when it matches the fragments
		// already in place.
		tc.emit(LDist, Stmt{LHS: s.LHS, Op: s.Op, RHS: rhs})
		if s.Op == eval.OpAdd && !locKeyEqual(tgt, resLoc) {
			resLoc = Random
		}
		tc.cur[s.LHS] = resLoc
	}
}

// locKeyEqual reports whether two locations are keyed identically (by
// column name), meaning data written under either lands on the same
// workers.
func locKeyEqual(a, b Loc) bool {
	if !a.Keyed() || !b.Keyed() {
		return false
	}
	return a.Key.Equal(b.Key)
}

// sameClasses reports whether two key column lists name the same
// equivalence classes positionwise.
func (tc *trigCompiler) sameClasses(a, b mring.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if tc.uf.find(a[i]) != tc.uf.find(b[i]) {
			return false
		}
	}
	return true
}

// installReplicated folds a driver-resident delta (held in rel `g`) into
// a replicated target: the driver mirror and every worker copy.
func (tc *trigCompiler) installReplicated(s Stmt, g string) {
	schema := tc.stmtSchema(s)
	tc.emit(LLocal, Stmt{LHS: s.LHS, Op: s.Op, RHS: viewRef(g, schema)})
	if s.Op == eval.OpSet {
		tc.emit(LLocal, Stmt{LHS: s.LHS, Op: eval.OpSet,
			RHS: &Xform{Kind: XScatter, Body: viewRef(g, schema)}})
		return
	}
	b := tc.temp(schema)
	tc.emit(LLocal, Stmt{LHS: b, Op: eval.OpSet,
		RHS: &Xform{Kind: XScatter, Body: viewRef(g, schema)}})
	tc.cur[b] = Indiff
	tc.emit(LDist, Stmt{LHS: s.LHS, Op: eval.OpAdd, RHS: viewRef(b, schema)})
}

// compileAtDriver computes the statement at the driver (the O0 strategy
// and the fallback when no safe distributed hosting exists): distributed
// inputs are gathered per statement, and the result is moved back to the
// target's canonical location.
func (tc *trigCompiler) compileAtDriver(s Stmt, refs []*ref) {
	sub := map[string]*expr.Rel{}
	for _, r := range refs {
		if r.loc.Kind != LDist {
			continue // local and replicated data is readable at the driver
		}
		sub[r.env] = viewRef(tc.gatherToDriver(r.rel), r.rel.Cols)
	}
	rhs := rewriteRefs(s.RHS, sub)

	tgt := tc.cur[s.LHS]
	if tgt.Kind == LDist && !tgt.Keyed() && !tc.isTransient(s.LHS) && len(tc.stmtSchema(s)) > 0 {
		// A shared view located Random must keep its contents on the
		// workers (that is where readers look): scatter the driver-side
		// result partitioned by the full tuple, which keeps fragments
		// disjoint without imposing a key invariant.
		tgt = Loc{Kind: LDist, Key: tc.stmtSchema(s).Clone()}
	}
	switch {
	case tgt.Keyed():
		t := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: t, Op: eval.OpSet, RHS: rhs})
		tc.cur[t] = Local
		if s.Op == eval.OpSet {
			tc.emit(LLocal, Stmt{LHS: s.LHS, Op: eval.OpSet,
				RHS: &Xform{Kind: XScatter, Key: tgt.Key.Clone(), Body: viewRef(t, tc.stmtSchema(s))}})
			return
		}
		t2 := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: t2, Op: eval.OpSet,
			RHS: &Xform{Kind: XScatter, Key: tgt.Key.Clone(), Body: viewRef(t, tc.stmtSchema(s))}})
		tc.cur[t2] = Loc{Kind: LDist, Key: tgt.Key.Clone()}
		tc.emit(LDist, Stmt{LHS: s.LHS, Op: eval.OpAdd, RHS: viewRef(t2, tc.stmtSchema(s))})
	case tgt.Kind == LIndiff:
		t := tc.temp(tc.stmtSchema(s))
		tc.emit(LLocal, Stmt{LHS: t, Op: eval.OpSet, RHS: rhs})
		tc.cur[t] = Local
		tc.installReplicated(s, t)
	default:
		// Local target — and transient (or scalar) Random targets
		// degrade to the driver too: later statements of this trigger
		// read them through the updated location.
		tc.emit(LLocal, Stmt{LHS: s.LHS, Op: s.Op, RHS: rhs})
		if tgt.Kind == LDist {
			tc.cur[s.LHS] = Local
		}
	}
}

// gatherToDriver collects a distributed relation at the driver (reused
// at O2+ while the source is unchanged).
func (tc *trigCompiler) gatherToDriver(src *expr.Rel) string {
	env := eval.RelEnvName(src)
	sig := fmt.Sprintf("g|%s", env)
	if tc.level >= O2 {
		for _, m := range tc.cache {
			if m.sig == sig {
				return m.temp
			}
		}
	}
	g := tc.temp(src.Cols)
	tc.emit(LLocal, Stmt{LHS: g, Op: eval.OpSet, RHS: &Xform{Kind: XGather, Body: src.Clone()}})
	tc.cur[g] = Local
	tc.cache = append(tc.cache, moved{sig: sig, src: env, temp: g})
	return g
}

// isTransient reports whether name is a per-batch scratch view of the
// program (read only by its own trigger, through cur).
func (tc *trigCompiler) isTransient(name string) bool {
	v := tc.prog.View(name)
	return v != nil && v.Transient
}

// rewriteRefs substitutes relation references (by environment name) with
// references to moved copies.
func rewriteRefs(e expr.Expr, sub map[string]*expr.Rel) expr.Expr {
	if len(sub) == 0 {
		return e
	}
	return expr.Transform(e, func(n expr.Expr) expr.Expr {
		if r, ok := n.(*expr.Rel); ok {
			if t, ok2 := sub[eval.RelEnvName(r)]; ok2 {
				return &expr.Rel{Kind: expr.RView, Name: t.Name, Cols: r.Cols.Clone(), LowCard: r.LowCard}
			}
		}
		return n
	})
}
