package expr

import (
	"fmt"
	"strings"

	"repro/internal/mring"
)

// RelKind distinguishes what a relational term references.
type RelKind uint8

// Relational term kinds.
const (
	// RBase references a stored base table.
	RBase RelKind = iota
	// RDelta references a batch of updates to a base table (ΔR).
	RDelta
	// RView references a materialized view produced by the compiler.
	RView
)

func (k RelKind) String() string {
	switch k {
	case RBase:
		return "base"
	case RDelta:
		return "delta"
	default:
		return "view"
	}
}

// Expr is a node of the query algebra. Expressions are immutable once
// built; transformations return new trees.
type Expr interface {
	// Schema returns the output columns of the expression: the columns of
	// the tuples it produces. Terms whose variables must all be bound at
	// evaluation time (values, comparisons) have an empty schema.
	Schema() mring.Schema
	// Clone deep-copies the tree.
	Clone() Expr
	fmt.Stringer
}

// Rel references a relation (base table, delta batch, or materialized view)
// by name, binding its columns to the listed variable names.
type Rel struct {
	Kind RelKind
	Name string
	Cols mring.Schema
	// LowCard hints that the relation has low cardinality, making it a
	// candidate domain expression in domain extraction (Fig. 1). Delta
	// relations are implicitly low-cardinality.
	LowCard bool
}

// Schema implements Expr.
func (r *Rel) Schema() mring.Schema { return r.Cols }

// Clone implements Expr.
func (r *Rel) Clone() Expr {
	c := *r
	c.Cols = r.Cols.Clone()
	return &c
}

func (r *Rel) String() string {
	prefix := ""
	if r.Kind == RDelta {
		prefix = "Δ"
	}
	return fmt.Sprintf("%s%s(%s)", prefix, r.Name, joinStrings(r.Cols))
}

// Plus is the n-ary bag union Q1 + Q2 + ... All terms must have the same
// schema (their tuples merge with multiplicities summed).
type Plus struct{ Terms []Expr }

// Schema implements Expr. The schema of a union is the schema of its first
// non-empty-schema term (all relational terms agree by construction).
func (p *Plus) Schema() mring.Schema {
	for _, t := range p.Terms {
		if s := t.Schema(); len(s) > 0 {
			return s
		}
	}
	return nil
}

// Clone implements Expr.
func (p *Plus) Clone() Expr {
	ts := make([]Expr, len(p.Terms))
	for i, t := range p.Terms {
		ts[i] = t.Clone()
	}
	return &Plus{Terms: ts}
}

func (p *Plus) String() string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Mul is the n-ary natural join Q1 ⋈ Q2 ⋈ ... Information about bound
// variables flows left to right (Sec. 3.2.1): a factor may use variables
// bound by factors to its left.
type Mul struct{ Factors []Expr }

// Schema implements Expr: the union of factor schemas, left to right.
func (m *Mul) Schema() mring.Schema {
	var s mring.Schema
	for _, f := range m.Factors {
		s = s.Union(f.Schema())
	}
	return s
}

// Clone implements Expr.
func (m *Mul) Clone() Expr {
	fs := make([]Expr, len(m.Factors))
	for i, f := range m.Factors {
		fs[i] = f.Clone()
	}
	return &Mul{Factors: fs}
}

func (m *Mul) String() string {
	parts := make([]string, len(m.Factors))
	for i, f := range m.Factors {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " * ") + ")"
}

// Agg is Sum_[GroupBy](Body): multiplicity-preserving projection onto the
// group-by columns, summing multiplicities per group.
type Agg struct {
	GroupBy mring.Schema
	Body    Expr
}

// Schema implements Expr.
func (a *Agg) Schema() mring.Schema { return a.GroupBy }

// Clone implements Expr.
func (a *Agg) Clone() Expr {
	return &Agg{GroupBy: a.GroupBy.Clone(), Body: a.Body.Clone()}
}

func (a *Agg) String() string {
	return fmt.Sprintf("Sum_[%s](%s)", joinStrings(a.GroupBy), a.Body)
}

// Const is a singleton relation mapping the empty tuple to multiplicity V.
type Const struct{ V float64 }

// Schema implements Expr.
func (c *Const) Schema() mring.Schema { return nil }

// Clone implements Expr.
func (c *Const) Clone() Expr { return &Const{V: c.V} }

func (c *Const) String() string { return fmt.Sprintf("%g", c.V) }

// Val is an interpreted relation: the empty tuple with multiplicity given
// by evaluating E under the current bindings. All variables of E must be
// bound at evaluation time.
type Val struct{ E VExpr }

// Schema implements Expr.
func (v *Val) Schema() mring.Schema { return nil }

// Clone implements Expr.
func (v *Val) Clone() Expr { return &Val{E: v.E} }

func (v *Val) String() string { return fmt.Sprintf("[%s]", v.E) }

// Cmp is an interpreted relation whose empty tuple has multiplicity 1 when
// the predicate holds and 0 otherwise. Joining with a comparison filters.
type Cmp struct {
	Op   CmpOp
	L, R VExpr
}

// Schema implements Expr.
func (c *Cmp) Schema() mring.Schema { return nil }

// Clone implements Expr.
func (c *Cmp) Clone() Expr { return &Cmp{Op: c.Op, L: c.L, R: c.R} }

func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// Assign is variable assignment (lifting). Exactly one of ValE and Q is
// set:
//
//   - var := value: a singleton relation binding Var to the value of ValE
//     with multiplicity 1.
//   - var := Q: a relation containing the tuples of Q with non-zero
//     multiplicity, extended by column Var holding that multiplicity; each
//     output tuple has multiplicity 1. Q may be correlated with the outside
//     (its free variables may be bound by the evaluation context). This is
//     how nested aggregates are expressed (Example 3.1).
type Assign struct {
	Var  string
	ValE VExpr // var := value form (nil when Q is set)
	Q    Expr  // var := Q form (nil when ValE is set)
}

// Schema implements Expr.
func (a *Assign) Schema() mring.Schema {
	if a.Q != nil {
		return a.Q.Schema().Union(mring.Schema{a.Var})
	}
	return mring.Schema{a.Var}
}

// Clone implements Expr.
func (a *Assign) Clone() Expr {
	c := &Assign{Var: a.Var, ValE: a.ValE}
	if a.Q != nil {
		c.Q = a.Q.Clone()
	}
	return c
}

func (a *Assign) String() string {
	if a.Q != nil {
		return fmt.Sprintf("(%s := %s)", a.Var, a.Q)
	}
	return fmt.Sprintf("(%s := %s)", a.Var, a.ValE)
}

// Exists changes every non-zero multiplicity of Body to 1. The paper
// defines it as Sum_[sch(Q)]((X:=Q) ⋈ (X != 0)); we keep it first-class
// because domain extraction and duplicate elimination are phrased with it.
type Exists struct{ Body Expr }

// Schema implements Expr.
func (e *Exists) Schema() mring.Schema { return e.Body.Schema() }

// Clone implements Expr.
func (e *Exists) Clone() Expr { return &Exists{Body: e.Body.Clone()} }

func (e *Exists) String() string { return fmt.Sprintf("Exists(%s)", e.Body) }

// Convenience constructors.

// Base references base table name with columns cols.
func Base(name string, cols ...string) *Rel {
	return &Rel{Kind: RBase, Name: name, Cols: cols}
}

// Delta references the update batch of base table name.
func Delta(name string, cols ...string) *Rel {
	return &Rel{Kind: RDelta, Name: name, Cols: cols}
}

// View references materialized view name.
func View(name string, cols ...string) *Rel {
	return &Rel{Kind: RView, Name: name, Cols: cols}
}

// Add builds the bag union of terms, flattening nested unions.
func Add(terms ...Expr) Expr {
	var flat []Expr
	for _, t := range terms {
		if p, ok := t.(*Plus); ok {
			flat = append(flat, p.Terms...)
		} else if t != nil {
			flat = append(flat, t)
		}
	}
	switch len(flat) {
	case 0:
		return &Const{V: 0}
	case 1:
		return flat[0]
	}
	return &Plus{Terms: flat}
}

// Join builds the natural join of factors, flattening nested joins and
// dropping multiplicative identities.
func Join(factors ...Expr) Expr {
	var flat []Expr
	for _, f := range factors {
		switch x := f.(type) {
		case nil:
		case *Mul:
			flat = append(flat, x.Factors...)
		case *Const:
			if x.V == 1 {
				continue // identity
			}
			flat = append(flat, x)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return &Const{V: 1}
	case 1:
		return flat[0]
	}
	return &Mul{Factors: flat}
}

// Sum builds Sum_[groupBy](body).
func Sum(groupBy []string, body Expr) Expr {
	return &Agg{GroupBy: mring.Schema(groupBy).Clone(), Body: body}
}

// Neg negates an expression: syntactic sugar for (-1) ⋈ Q.
func Neg(q Expr) Expr { return Join(&Const{V: -1}, q) }

// CmpE builds a comparison term.
func CmpE(op CmpOp, l, r VExpr) Expr { return &Cmp{Op: op, L: l, R: r} }

// Eq builds an equality comparison between two variables/values.
func Eq(l, r VExpr) Expr { return CmpE(CEq, l, r) }

// LiftQ builds var := Q.
func LiftQ(v string, q Expr) Expr { return &Assign{Var: v, Q: q} }

// LiftV builds var := value.
func LiftV(v string, e VExpr) Expr { return &Assign{Var: v, ValE: e} }

// ExistsE wraps Body in an Exists node.
func ExistsE(body Expr) Expr { return &Exists{Body: body} }

// ValE builds an interpreted value term.
func ValE(e VExpr) Expr { return &Val{E: e} }
