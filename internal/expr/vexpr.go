// Package expr defines the query algebra of the paper (Sec. 3.1, App. A):
// algebraic formulas over generalized multiset relations. Queries are trees
// of Rel, Plus (bag union), Mul (natural join), Agg (Sum_[gb] projection),
// Const, Val (interpreted value terms), Cmp (comparisons), Assign (variable
// assignment / lifting var := Q), and Exists (the paper's syntactic sugar,
// kept first-class).
package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mring"
)

// VOp enumerates arithmetic operators of value expressions.
type VOp uint8

// Arithmetic operators.
const (
	VAdd VOp = iota
	VSub
	VMul
	VDiv
	// VFloorDiv is integer (floor) division, used e.g. to extract the
	// year from yyyymmdd-coded dates.
	VFloorDiv
)

func (op VOp) String() string {
	switch op {
	case VAdd:
		return "+"
	case VSub:
		return "-"
	case VMul:
		return "*"
	case VDiv:
		return "/"
	case VFloorDiv:
		return "//"
	}
	return "?"
}

// VExpr is an interpreted value expression f(var1, var2, ...): valid only
// when all its variables are bound at evaluation time.
type VExpr interface {
	// Vars appends the variables referenced by the expression.
	Vars(dst []string) []string
	// EvalV computes the value under the binding lookup.
	EvalV(lookup func(string) mring.Value) mring.Value
	fmt.Stringer
}

// VarRef references a bound column variable.
type VarRef struct{ Name string }

// Vars implements VExpr.
func (v VarRef) Vars(dst []string) []string { return append(dst, v.Name) }

// EvalV implements VExpr.
func (v VarRef) EvalV(lookup func(string) mring.Value) mring.Value { return lookup(v.Name) }

func (v VarRef) String() string { return v.Name }

// Lit is a literal constant value.
type Lit struct{ V mring.Value }

// Vars implements VExpr.
func (l Lit) Vars(dst []string) []string { return dst }

// EvalV implements VExpr.
func (l Lit) EvalV(func(string) mring.Value) mring.Value { return l.V }

func (l Lit) String() string { return l.V.String() }

// Arith applies a binary arithmetic operator to two value expressions.
// The result is always a float value.
type Arith struct {
	Op   VOp
	L, R VExpr
}

// Vars implements VExpr.
func (a Arith) Vars(dst []string) []string { return a.R.Vars(a.L.Vars(dst)) }

// EvalV implements VExpr.
func (a Arith) EvalV(lookup func(string) mring.Value) mring.Value {
	l := a.L.EvalV(lookup).AsFloat()
	r := a.R.EvalV(lookup).AsFloat()
	switch a.Op {
	case VAdd:
		return mring.Float(l + r)
	case VSub:
		return mring.Float(l - r)
	case VMul:
		return mring.Float(l * r)
	case VFloorDiv:
		if r == 0 {
			return mring.Int(0)
		}
		return mring.Int(int64(math.Floor(l / r)))
	default:
		if r == 0 {
			return mring.Float(0)
		}
		return mring.Float(l / r)
	}
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Convenience VExpr constructors.

// V references variable name.
func V(name string) VExpr { return VarRef{Name: name} }

// LitF is a float literal.
func LitF(f float64) VExpr { return Lit{V: mring.Float(f)} }

// LitI is an integer literal.
func LitI(i int64) VExpr { return Lit{V: mring.Int(i)} }

// LitS is a string literal.
func LitS(s string) VExpr { return Lit{V: mring.Str(s)} }

// AddV, SubV, MulV, DivV build arithmetic nodes.
func AddV(l, r VExpr) VExpr { return Arith{Op: VAdd, L: l, R: r} }

// SubV builds l - r.
func SubV(l, r VExpr) VExpr { return Arith{Op: VSub, L: l, R: r} }

// MulV builds l * r.
func MulV(l, r VExpr) VExpr { return Arith{Op: VMul, L: l, R: r} }

// DivV builds l / r (0 when r evaluates to 0).
func DivV(l, r VExpr) VExpr { return Arith{Op: VDiv, L: l, R: r} }

// FloorDivV builds integer floor division l // r.
func FloorDivV(l, r VExpr) VExpr { return Arith{Op: VFloorDiv, L: l, R: r} }

// CmpOp enumerates comparison predicates.
type CmpOp uint8

// Comparison operators.
const (
	CEq CmpOp = iota
	CNe
	CLt
	CLe
	CGt
	CGe
)

func (op CmpOp) String() string {
	switch op {
	case CEq:
		return "="
	case CNe:
		return "!="
	case CLt:
		return "<"
	case CLe:
		return "<="
	case CGt:
		return ">"
	case CGe:
		return ">="
	}
	return "?"
}

// EvalCmp applies the predicate to two values.
func EvalCmp(op CmpOp, l, r mring.Value) bool {
	switch op {
	case CEq:
		return l.Equal(r)
	case CNe:
		return !l.Equal(r)
	case CLt:
		return l.Less(r)
	case CLe:
		return !r.Less(l)
	case CGt:
		return r.Less(l)
	default:
		return !l.Less(r)
	}
}

func joinStrings(xs []string) string { return strings.Join(xs, ",") }
