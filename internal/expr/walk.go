package expr

import "repro/internal/mring"

// Walk calls f on every node of the tree in pre-order. If f returns false
// the node's children are skipped.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Plus:
		for _, t := range x.Terms {
			Walk(t, f)
		}
	case *Mul:
		for _, t := range x.Factors {
			Walk(t, f)
		}
	case *Agg:
		Walk(x.Body, f)
	case *Assign:
		if x.Q != nil {
			Walk(x.Q, f)
		}
	case *Exists:
		Walk(x.Body, f)
	}
}

// Transform rebuilds the tree bottom-up, replacing each node with f(node).
// f receives a node whose children have already been transformed.
func Transform(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Plus:
		ts := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			ts[i] = Transform(t, f)
		}
		return f(&Plus{Terms: ts})
	case *Mul:
		fs := make([]Expr, len(x.Factors))
		for i, t := range x.Factors {
			fs[i] = Transform(t, f)
		}
		return f(&Mul{Factors: fs})
	case *Agg:
		return f(&Agg{GroupBy: x.GroupBy.Clone(), Body: Transform(x.Body, f)})
	case *Assign:
		if x.Q != nil {
			return f(&Assign{Var: x.Var, Q: Transform(x.Q, f)})
		}
		return f(x.Clone())
	case *Exists:
		return f(&Exists{Body: Transform(x.Body, f)})
	default:
		return f(e.Clone())
	}
}

// Relations returns the names of relations of the given kind referenced
// anywhere in the tree, deduplicated, in first-occurrence order.
func Relations(e Expr, kind RelKind) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if r, ok := n.(*Rel); ok && r.Kind == kind && !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
		return true
	})
	return out
}

// AllRelations returns all referenced relation names regardless of kind.
func AllRelations(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if r, ok := n.(*Rel); ok && !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
		return true
	})
	return out
}

// HasRel reports whether the tree references relation name with the kind.
func HasRel(e Expr, kind RelKind, name string) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if r, ok := n.(*Rel); ok && r.Kind == kind && r.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// HasBaseRelations reports whether the tree references any base table.
// (Fig. 1's `A.hasRelations` test for assignment bodies.)
func HasBaseRelations(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if r, ok := n.(*Rel); ok && r.Kind != RDelta {
			found = true
		}
		return !found
	})
	return found
}

// HasDelta reports whether the tree references any delta relation.
func HasDelta(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if r, ok := n.(*Rel); ok && r.Kind == RDelta {
			found = true
		}
		return !found
	})
	return found
}

// AllVars returns every variable name mentioned anywhere in the tree:
// relation columns, value-expression variables, group-by columns, and
// assignment targets. It over-approximates the free variables, which is
// what the compiler needs to decide which columns a materialized view must
// retain.
func AllVars(e Expr) mring.Schema {
	var s mring.Schema
	add := func(cols []string) {
		for _, c := range cols {
			if !s.Contains(c) {
				s = append(s, c)
			}
		}
	}
	Walk(e, func(n Expr) bool {
		switch x := n.(type) {
		case *Rel:
			add(x.Cols)
		case *Cmp:
			add(x.L.Vars(nil))
			add(x.R.Vars(nil))
		case *Val:
			add(x.E.Vars(nil))
		case *Assign:
			add([]string{x.Var})
			if x.ValE != nil {
				add(x.ValE.Vars(nil))
			}
		case *Agg:
			add(x.GroupBy)
		}
		return true
	})
	return s
}

// FreeVars returns the variables an expression consumes from its
// evaluation context: variables referenced by value terms, comparisons,
// or nested subqueries that no relational term to their left produces.
// An expression with free variables is correlated and cannot be
// materialized as a standalone view.
func FreeVars(e Expr) mring.Schema {
	free, _ := freeAndProduced(e)
	return free
}

func freeAndProduced(e Expr) (free, produced mring.Schema) {
	switch x := e.(type) {
	case *Rel:
		return nil, x.Cols
	case *Const:
		return nil, nil
	case *Val:
		return mring.Schema(x.E.Vars(nil)), nil
	case *Cmp:
		return mring.Schema(x.R.Vars(x.L.Vars(nil))), nil
	case *Assign:
		if x.Q != nil {
			f, p := freeAndProduced(x.Q)
			return f, p.Union(mring.Schema{x.Var})
		}
		return mring.Schema(x.ValE.Vars(nil)), mring.Schema{x.Var}
	case *Mul:
		// Information flows left to right: a factor's free variables are
		// satisfied by anything produced earlier.
		for _, f := range x.Factors {
			ff, fp := freeAndProduced(f)
			for _, v := range ff {
				if !produced.Contains(v) && !free.Contains(v) {
					free = append(free, v)
				}
			}
			produced = produced.Union(fp)
		}
		return free, produced
	case *Plus:
		// A variable is produced only if every branch produces it.
		first := true
		for _, t := range x.Terms {
			ff, fp := freeAndProduced(t)
			free = free.Union(ff)
			if first {
				produced = fp
				first = false
			} else {
				produced = produced.Intersect(fp)
			}
		}
		return free, produced
	case *Agg:
		f, _ := freeAndProduced(x.Body)
		return f, x.GroupBy
	case *Exists:
		return freeAndProduced(x.Body)
	default:
		return nil, nil
	}
}

// Degree roughly counts referenced base/view relational terms — the
// paper's notion of query complexity (Sec. 3.2): deltas replace base
// relations, lowering the degree.
func Degree(e Expr) int {
	n := 0
	Walk(e, func(node Expr) bool {
		if r, ok := node.(*Rel); ok && r.Kind != RDelta {
			n++
		}
		return true
	})
	return n
}

// IsZero reports whether the expression is the constant 0.
func IsZero(e Expr) bool {
	c, ok := e.(*Const)
	return ok && c.V == 0
}

// Simplify performs algebraic cleanup: drops zero union terms, collapses
// products containing the constant 0, flattens nested Plus/Mul, folds
// constants, and removes unions/joins of a single operand.
func Simplify(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		switch x := n.(type) {
		case *Plus:
			var ts []Expr
			var c float64
			hasConst := false
			for _, t := range x.Terms {
				if IsZero(t) {
					continue
				}
				if k, ok := t.(*Const); ok {
					c += k.V
					hasConst = true
					continue
				}
				if p, ok := t.(*Plus); ok {
					ts = append(ts, p.Terms...)
					continue
				}
				ts = append(ts, t)
			}
			if hasConst && c != 0 {
				ts = append(ts, &Const{V: c})
			}
			switch len(ts) {
			case 0:
				return &Const{V: 0}
			case 1:
				return ts[0]
			}
			return &Plus{Terms: ts}
		case *Mul:
			var fs []Expr
			c := 1.0
			for _, f := range x.Factors {
				if k, ok := f.(*Const); ok {
					c *= k.V
					continue
				}
				if m, ok := f.(*Mul); ok {
					fs = append(fs, m.Factors...)
					continue
				}
				fs = append(fs, f)
			}
			if c == 0 {
				return &Const{V: 0}
			}
			if c != 1 {
				fs = append([]Expr{&Const{V: c}}, fs...)
			}
			switch len(fs) {
			case 0:
				return &Const{V: 1}
			case 1:
				return fs[0]
			}
			return &Mul{Factors: fs}
		case *Agg:
			if IsZero(x.Body) {
				return &Const{V: 0}
			}
			// Sum over an empty group-by of a schema-less body is the body.
			if len(x.GroupBy) == 0 && len(x.Body.Schema()) == 0 {
				return x.Body
			}
			// Collapse nested Sum with identical group-by.
			if inner, ok := x.Body.(*Agg); ok && inner.GroupBy.Equal(x.GroupBy) {
				return &Agg{GroupBy: x.GroupBy, Body: inner.Body}
			}
			return x
		case *Exists:
			if IsZero(x.Body) {
				return &Const{V: 0}
			}
			if inner, ok := x.Body.(*Exists); ok {
				return inner
			}
			return x
		}
		return n
	})
}

// RenameRel returns a copy of the tree where every reference to relation
// (kind, from) is renamed to `to` with kind toKind.
func RenameRel(e Expr, kind RelKind, from string, toKind RelKind, to string) Expr {
	return Transform(e, func(n Expr) Expr {
		if r, ok := n.(*Rel); ok && r.Kind == kind && r.Name == from {
			c := *r
			c.Kind = toKind
			c.Name = to
			return &c
		}
		return n
	})
}

// FreeAfter returns the variables of the whole Mul expression that are
// bound before position i (columns produced by factors 0..i-1).
func boundBefore(m *Mul, i int) mring.Schema {
	var s mring.Schema
	for j := 0; j < i; j++ {
		s = s.Union(m.Factors[j].Schema())
	}
	return s
}

// Equal reports structural equality of two expression trees. It is used by
// CSE in the distributed optimizer; string rendering is canonical enough
// because construction normalizes nesting.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}
