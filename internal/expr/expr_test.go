package expr

import (
	"testing"

	"repro/internal/mring"
)

func TestSchemas(t *testing.T) {
	r := Base("R", "a", "b")
	s := Base("S", "b", "c")
	j := Join(r, s)
	if got := j.Schema(); !got.Equal(mring.Schema{"a", "b", "c"}) {
		t.Fatalf("join schema = %v", got)
	}
	a := Sum([]string{"b"}, j)
	if got := a.Schema(); !got.Equal(mring.Schema{"b"}) {
		t.Fatalf("agg schema = %v", got)
	}
	l := LiftQ("x", Sum(nil, s))
	if got := l.Schema(); !got.Equal(mring.Schema{"x"}) {
		t.Fatalf("lift schema = %v", got)
	}
	l2 := LiftQ("x", Sum([]string{"c"}, s))
	if got := l2.Schema(); !got.Equal(mring.Schema{"c", "x"}) {
		t.Fatalf("lift-with-body schema = %v", got)
	}
	if got := CmpE(CLt, V("a"), LitI(3)).Schema(); len(got) != 0 {
		t.Fatalf("cmp schema = %v", got)
	}
	if got := ExistsE(j).Schema(); !got.Equal(mring.Schema{"a", "b", "c"}) {
		t.Fatalf("exists schema = %v", got)
	}
}

func TestJoinFlattening(t *testing.T) {
	r := Base("R", "a")
	s := Base("S", "b")
	u := Base("U", "c")
	j := Join(Join(r, s), u)
	m, ok := j.(*Mul)
	if !ok || len(m.Factors) != 3 {
		t.Fatalf("join not flattened: %v", j)
	}
	// identity constant dropped
	j2 := Join(&Const{V: 1}, r)
	if _, ok := j2.(*Rel); !ok {
		t.Fatalf("Join(1, R) = %v, want R", j2)
	}
	if e := Join(); e.String() != "1" {
		t.Fatalf("empty join = %v", e)
	}
}

func TestAddFlattening(t *testing.T) {
	r := Base("R", "a")
	s := Base("S", "a")
	u := Add(Add(r, s), r)
	p, ok := u.(*Plus)
	if !ok || len(p.Terms) != 3 {
		t.Fatalf("union not flattened: %v", u)
	}
	if e := Add(); !IsZero(e) {
		t.Fatalf("empty union = %v", e)
	}
	if e := Add(r); e != Expr(r) {
		t.Fatalf("singleton union should be the term")
	}
}

func TestSimplify(t *testing.T) {
	r := Base("R", "a")
	cases := []struct {
		in   Expr
		want string
	}{
		{Add(r, &Const{V: 0}), "R(a)"},
		{Join(r, &Const{V: 0}), "0"},
		{&Mul{Factors: []Expr{&Const{V: 2}, &Const{V: 3}}}, "6"},
		{&Plus{Terms: []Expr{&Const{V: 2}, &Const{V: 3}}}, "5"},
		{Sum(nil, &Const{V: 0}), "0"},
		{&Exists{Body: &Exists{Body: r}}, "Exists(R(a))"},
		{Neg(Neg(r)), "R(a)"},
	}
	for i, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("case %d: Simplify(%v) = %s, want %s", i, c.in, got, c.want)
		}
	}
}

func TestRelationsAndHas(t *testing.T) {
	q := Sum([]string{"b"},
		Join(Delta("R", "a", "b"), Base("S", "b", "c"), View("M", "c")))
	if got := Relations(q, RBase); len(got) != 1 || got[0] != "S" {
		t.Fatalf("base rels = %v", got)
	}
	if got := Relations(q, RDelta); len(got) != 1 || got[0] != "R" {
		t.Fatalf("delta rels = %v", got)
	}
	if !HasDelta(q) || !HasRel(q, RView, "M") || HasRel(q, RBase, "T") {
		t.Fatal("Has predicates broken")
	}
	if !HasBaseRelations(q) {
		t.Fatal("HasBaseRelations should see S and M")
	}
	if HasBaseRelations(Delta("R", "a")) {
		t.Fatal("delta alone is not a base relation")
	}
	if Degree(q) != 2 {
		t.Fatalf("Degree = %d, want 2", Degree(q))
	}
}

func TestRenameRel(t *testing.T) {
	q := Join(Base("R", "a"), Base("S", "a"))
	q2 := RenameRel(q, RBase, "R", RView, "M_R")
	if !HasRel(q2, RView, "M_R") || HasRel(q2, RBase, "R") {
		t.Fatalf("rename failed: %v", q2)
	}
	// original untouched
	if !HasRel(q, RBase, "R") {
		t.Fatal("RenameRel mutated input")
	}
}

func TestVExprEval(t *testing.T) {
	env := map[string]mring.Value{"a": mring.Int(4), "b": mring.Float(2)}
	lookup := func(n string) mring.Value { return env[n] }
	cases := []struct {
		e    VExpr
		want float64
	}{
		{AddV(V("a"), V("b")), 6},
		{SubV(V("a"), V("b")), 2},
		{MulV(V("a"), V("b")), 8},
		{DivV(V("a"), V("b")), 2},
		{DivV(V("a"), LitF(0)), 0},
		{MulV(AddV(V("a"), LitI(1)), LitF(2)), 10},
	}
	for i, c := range cases {
		if got := c.e.EvalV(lookup).AsFloat(); got != c.want {
			t.Errorf("case %d: %v = %g, want %g", i, c.e, got, c.want)
		}
	}
}

func TestEvalCmp(t *testing.T) {
	one, two := mring.Int(1), mring.Int(2)
	if !EvalCmp(CLt, one, two) || EvalCmp(CLt, two, one) {
		t.Fatal("CLt broken")
	}
	if !EvalCmp(CLe, one, one) || !EvalCmp(CGe, two, two) {
		t.Fatal("CLe/CGe broken")
	}
	if !EvalCmp(CEq, one, mring.Float(1)) {
		t.Fatal("cross-kind CEq broken")
	}
	if !EvalCmp(CNe, one, two) || EvalCmp(CNe, one, one) {
		t.Fatal("CNe broken")
	}
	if !EvalCmp(CGt, two, one) {
		t.Fatal("CGt broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := Sum([]string{"b"}, Join(Base("R", "a", "b"), CmpE(CGt, V("a"), LitI(3))))
	c := q.Clone()
	if q.String() != c.String() {
		t.Fatal("clone differs")
	}
	// mutate clone's rel cols; original must be unaffected
	Walk(c, func(n Expr) bool {
		if r, ok := n.(*Rel); ok {
			r.Cols[0] = "zz"
		}
		return true
	})
	if q.String() == c.String() {
		t.Fatal("clone shares storage with original")
	}
}

func TestStringRendering(t *testing.T) {
	q := Sum([]string{"b"},
		Join(Delta("R", "a", "b"), Base("S", "b", "c"), CmpE(CGt, V("a"), LitI(3))))
	want := "Sum_[b]((ΔR(a,b) * S(b,c) * (a > 3)))"
	if got := q.String(); got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}

func TestEqualStructural(t *testing.T) {
	a := Join(Base("R", "a"), Base("S", "b"))
	b := Join(Base("R", "a"), Base("S", "b"))
	c := Join(Base("S", "b"), Base("R", "a"))
	if !Equal(a, b) {
		t.Fatal("identical trees not Equal")
	}
	if Equal(a, c) {
		t.Fatal("different factor order should not be Equal")
	}
}

func TestFreeVars(t *testing.T) {
	cases := []struct {
		e    Expr
		want []string
	}{
		// A bare relation produces everything, consumes nothing.
		{Base("R", "a", "b"), nil},
		// A comparison consumes both sides.
		{CmpE(CEq, V("x"), V("y")), []string{"x", "y"}},
		// Join order satisfies variables left to right.
		{Join(Base("R", "a"), CmpE(CGt, V("a"), LitI(1))), nil},
		{Join(CmpE(CGt, V("a"), LitI(1)), Base("R", "a")), []string{"a"}},
		// Correlated nested aggregate: B comes from outside.
		{Sum(nil, Join(Base("S", "b2"), Eq(V("b"), V("b2")))), []string{"b"}},
		// The lift produces its variable.
		{Join(LiftV("x", LitI(3)), CmpE(CLt, V("x"), LitI(5))), nil},
		// Union produces only what every branch produces.
		{Add(Base("R", "a", "b"), Base("S", "a", "c")), nil},
		{Join(Add(Base("R", "a"), Base("S", "a")), ValE(V("a"))), nil},
		// Exists passes through.
		{ExistsE(Join(Base("R", "a"), Eq(V("z"), V("a")))), []string{"z"}},
	}
	for i, c := range cases {
		got := FreeVars(c.e)
		if len(got) != len(c.want) {
			t.Errorf("case %d (%v): FreeVars = %v, want %v", i, c.e, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d (%v): FreeVars = %v, want %v", i, c.e, got, c.want)
			}
		}
	}
}

func TestAllVars(t *testing.T) {
	e := Sum([]string{"g"}, Join(
		Base("R", "a", "b"),
		CmpE(CGt, V("c"), LitI(1)),
		LiftV("d", V("a")),
		ValE(V("e"))))
	got := AllVars(e)
	for _, v := range []string{"a", "b", "c", "d", "e", "g"} {
		if !got.Contains(v) {
			t.Errorf("AllVars missing %q: %v", v, got)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	lookup := func(string) mring.Value { return mring.Int(19950615) }
	if y := FloorDivV(V("d"), LitI(10000)).EvalV(lookup); y.AsInt() != 1995 {
		t.Fatalf("year = %d, want 1995", y.AsInt())
	}
	if z := FloorDivV(LitI(5), LitI(0)).EvalV(lookup); z.AsInt() != 0 {
		t.Fatalf("div by zero should be 0, got %d", z.AsInt())
	}
}
