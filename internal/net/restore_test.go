package net

import (
	"math/rand"
	"testing"

	"repro/internal/mring"
)

func buildHistory(t *testing.T, schema mring.Schema, mixed bool, seed int64) *mring.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := mring.NewRelation(schema)
	for op := 0; op < 200; op++ {
		k := int64(rng.Intn(48))
		var tp mring.Tuple
		if mixed {
			tp = mring.Tuple{mring.Int(k), mring.Str("s")}
		} else {
			tp = mring.Tuple{mring.Int(k), mring.Int(k * 3)}
		}
		if rng.Intn(4) == 0 {
			r.Set(tp, 0) // deletion: row count drops, capacity stays
		} else {
			r.Add(tp, float64(rng.Intn(5)+1))
		}
	}
	return r
}

func requireExact(t *testing.T, label string, got, want *mring.Relation) {
	t.Helper()
	if got.TableSize() != want.TableSize() {
		t.Fatalf("%s: TableSize got %d want %d", label, got.TableSize(), want.TableSize())
	}
	var wr []mring.Tuple
	var wm []float64
	want.Foreach(func(tp mring.Tuple, m float64) { wr = append(wr, tp); wm = append(wm, m) })
	i := 0
	got.Foreach(func(tp mring.Tuple, m float64) {
		if i < len(wr) && (!tp.Equal(wr[i]) || wm[i] != m) {
			t.Fatalf("%s: row %d: got (%v,%v) want (%v,%v)", label, i, tp, m, wr[i], wm[i])
		}
		i++
	})
	if i != len(wr) {
		t.Fatalf("%s: got %d rows want %d", label, i, len(wr))
	}
}

// TestRestoreExactBothForms pins the exact-layout restore for both wire
// forms (columnar for kind-pure relations, row format for mixed kinds):
// the rebuilt relation must have the identical bucket-table size and
// Foreach order as the encoder's source.
func TestRestoreExactBothForms(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mixed bool
	}{{"columnar", false}, {"rows", true}} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				src := buildHistory(t, mring.Schema{"a", "b"}, tc.mixed, seed)
				payload := EncodeRelationPlain(src)
				got, err := RestoreRelationExact(payload, src.TableSize(), src.Schema())
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				requireExact(t, tc.name, got, src)
			}
		})
	}
}

// TestRestoreEmptyKeepsCapacity: an empty relation with a grown table
// restores its capacity (which shapes future layout) from buckets alone.
func TestRestoreEmptyKeepsCapacity(t *testing.T) {
	src := mring.NewRelation(mring.Schema{"a"})
	for i := 0; i < 100; i++ {
		src.Add(mring.Tuple{mring.Int(int64(i))}, 1)
	}
	src.Clear()
	if src.Len() != 0 || src.TableSize() < 8 {
		t.Fatalf("bad fixture: len=%d size=%d", src.Len(), src.TableSize())
	}
	payload := EncodeRelationPlain(src) // nil for empty
	if payload != nil {
		t.Fatalf("empty relation should encode to nil")
	}
	got, err := RestoreRelationExact(payload, src.TableSize(), src.Schema())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got.TableSize() != src.TableSize() || got.Len() != 0 {
		t.Fatalf("capacity not restored: got size %d want %d", got.TableSize(), src.TableSize())
	}
}

func TestRestoreRejectsCorruptSizes(t *testing.T) {
	src := buildHistory(t, mring.Schema{"a", "b"}, false, 1)
	payload := EncodeRelationPlain(src)
	for _, tc := range []struct {
		name    string
		buckets int
	}{
		{"not-power-of-two", 12},
		{"too-small-for-rows", 8},
		{"huge", MaxRestoreBuckets * 2},
		{"zero-with-rows", 0},
	} {
		if tc.buckets == 8 && src.Len() <= 8 {
			continue
		}
		if _, err := RestoreRelationExact(payload, tc.buckets, src.Schema()); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	// Corrupt payload bytes error rather than panic.
	if _, err := RestoreRelationExact(payload[:len(payload)-3], src.TableSize(), src.Schema()); err == nil {
		t.Fatalf("truncated payload: expected error")
	}
}
