// Package net puts the engine's already-serialized wire format on a real
// transport: length-prefixed frames over TCP (the Transport interface is
// shaped so a QUIC implementation can slot in), carrying the columnar /
// row-format relation payloads of internal/pool between a driver process
// and N worker processes, and streaming the changefeed to remote
// subscribers. Every decoder in this package is hardened against hostile
// bytes: malformed frames and payloads return errors, never panic, and
// never allocate unbounded memory.
package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's body (type byte + payload). A frame header
// announcing more is rejected before any allocation, so a hostile peer
// cannot make a receiver allocate unbounded memory.
const MaxFrame = 1 << 28 // 256 MiB

// frameHeader is the fixed frame prefix: a 4-byte big-endian body length.
const frameHeader = 4

// Frame layout: 4-byte big-endian length L (covering everything after the
// header), then 1 type byte, then L-1 payload bytes.

// ErrFrameTooLarge reports a frame header announcing a body over MaxFrame.
var ErrFrameTooLarge = errors.New("net: frame exceeds MaxFrame")

// ErrFrameTruncated reports a frame shorter than its header announces.
var ErrFrameTruncated = errors.New("net: truncated frame")

// AppendFrame appends one encoded frame to dst and returns the result.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeader + 1]byte
	binary.BigEndian.PutUint32(hdr[:frameHeader], uint32(1+len(payload)))
	hdr[frameHeader] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r. io.EOF is returned verbatim on a
// clean close before any header byte; a partial header or body returns
// ErrFrameTruncated (wrapped io.ErrUnexpectedEOF from the reader).
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrFrameTruncated
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("net: frame body length %d < 1", n)
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, ErrFrameTruncated
	}
	return body[0], body[1:], nil
}

// DecodeFrame parses one frame from the front of buf and returns the
// remaining bytes. It is the pure-function form of ReadFrame (and the
// fuzzing entry point for the frame layer).
func DecodeFrame(buf []byte) (typ byte, payload, rest []byte, err error) {
	if len(buf) < frameHeader {
		return 0, nil, nil, ErrFrameTruncated
	}
	n := binary.BigEndian.Uint32(buf[:frameHeader])
	if n < 1 {
		return 0, nil, nil, fmt.Errorf("net: frame body length %d < 1", n)
	}
	if n > MaxFrame {
		return 0, nil, nil, ErrFrameTooLarge
	}
	if uint32(len(buf)-frameHeader) < n {
		return 0, nil, nil, ErrFrameTruncated
	}
	body := buf[frameHeader : frameHeader+int(n)]
	return body[0], body[1:], buf[frameHeader+int(n):], nil
}
