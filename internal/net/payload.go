package net

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mring"
	"repro/internal/pool"
)

// Relation payloads cross the wire in one of two self-describing forms,
// tagged by the first byte:
//
//	0x00  columnar — pool.ColBatch.Encode bytes (lossless only when every
//	      column is single-kind; the sender decides)
//	0x01  row format — schema, then rows as (kind,value)* + multiplicity,
//	      in exactly the order the sender enumerated them
//
// Both forms preserve row order, which is load-bearing: receivers replay
// the rows as a mutation sequence, and the open-chained hash layout of
// the rebuilt relation (hence every downstream iteration and float fold
// order) is a function of that exact sequence. The row format exists so
// mixed-kind relations ship losslessly — pool.EncodeRelation's coercing
// fallback must never be used across a process boundary.
const (
	payloadColumnar byte = 0
	payloadRows     byte = 1
)

// maxPayloadCols bounds the column count a payload may declare.
const maxPayloadCols = 1 << 12

// Payload is one decoded relation payload: either a columnar batch or an
// ordered row list. Foreach visits rows in wire order.
type Payload struct {
	Schema mring.Schema
	// Batch is the decoded columnar batch for columnar payloads, nil for
	// row-format payloads. Receivers that keep fragments columnar attach
	// it as the rebuilt relation's mirror.
	Batch *pool.ColBatch

	rows  []mring.Tuple
	mults []float64
}

// Len returns the number of rows.
func (p *Payload) Len() int {
	if p.Batch != nil {
		return p.Batch.Len()
	}
	return len(p.rows)
}

// Foreach visits every row in wire order. The tuple may be a reused
// buffer; callers must copy what they retain (relation inserts already
// clone).
func (p *Payload) Foreach(f func(t mring.Tuple, m float64)) {
	if p.Batch != nil {
		p.Batch.Foreach(f)
		return
	}
	for i, t := range p.rows {
		f(t, p.mults[i])
	}
}

// EncodePayload serializes r: through the columnar batch when the caller
// resolved one (its row order must match what the receiver should
// replay), in row format — r's Foreach order — otherwise. Empty
// relations encode to nil.
func EncodePayload(r *mring.Relation, batch *pool.ColBatch) []byte {
	if r == nil || r.Len() == 0 {
		return nil
	}
	if batch != nil {
		return append([]byte{payloadColumnar}, batch.Encode()...)
	}
	b := NewPayloadBuilder(r.Schema())
	r.Foreach(b.Add)
	return b.Bytes()
}

// EncodeRelationPlain serializes r losslessly in its Foreach order,
// through the columnar form when the contents are single-kind per column
// and the row format otherwise. Use it for payloads whose receiver
// replays rows without attaching a mirror.
func EncodeRelationPlain(r *mring.Relation) []byte {
	if r == nil || r.Len() == 0 {
		return nil
	}
	if b, ok := pool.TryFromRelation(r); ok {
		return append([]byte{payloadColumnar}, b.Encode()...)
	}
	b := NewPayloadBuilder(r.Schema())
	r.Foreach(b.Add)
	return b.Bytes()
}

// PayloadBuilder accumulates rows into a row-format payload in the exact
// order they are added — the builder for payloads whose replay order is
// an insertion order rather than a relation's Foreach order (round-robin
// delta fragments, keyed warm-start splits).
type PayloadBuilder struct {
	schema mring.Schema
	n      int
	body   []byte
}

// NewPayloadBuilder returns an empty builder for the given schema.
func NewPayloadBuilder(schema mring.Schema) *PayloadBuilder {
	return &PayloadBuilder{schema: schema}
}

// Len returns the number of rows added.
func (b *PayloadBuilder) Len() int { return b.n }

// Add appends one row.
func (b *PayloadBuilder) Add(t mring.Tuple, m float64) {
	for _, v := range t {
		b.body = append(b.body, byte(v.K))
		switch v.K {
		case mring.KInt:
			b.body = binary.AppendVarint(b.body, v.I)
		case mring.KFloat:
			b.body = binary.LittleEndian.AppendUint64(b.body, math.Float64bits(v.F))
		default:
			b.body = binary.AppendUvarint(b.body, uint64(len(v.S)))
			b.body = append(b.body, v.S...)
		}
	}
	b.body = binary.LittleEndian.AppendUint64(b.body, math.Float64bits(m))
	b.n++
}

// Bytes serializes the accumulated rows; nil when no rows were added.
func (b *PayloadBuilder) Bytes() []byte {
	if b.n == 0 {
		return nil
	}
	out := []byte{payloadRows}
	out = binary.AppendUvarint(out, uint64(len(b.schema)))
	for _, col := range b.schema {
		out = binary.AppendUvarint(out, uint64(len(col)))
		out = append(out, col...)
	}
	out = binary.AppendUvarint(out, uint64(b.n))
	return append(out, b.body...)
}

// DecodePayload parses one relation payload. Every count and length is
// bounds-checked against the remaining input before allocation, and
// unknown tags, kinds, and truncations return errors — the function must
// never panic on hostile bytes (it is fuzzed).
func DecodePayload(buf []byte) (*Payload, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("net: empty relation payload")
	}
	switch buf[0] {
	case payloadColumnar:
		cb, err := pool.Decode(buf[1:])
		if err != nil {
			return nil, fmt.Errorf("net: columnar payload: %w", err)
		}
		return &Payload{Schema: cb.Schema, Batch: cb}, nil
	case payloadRows:
		return decodeRowPayload(buf[1:])
	default:
		return nil, fmt.Errorf("net: unknown payload tag 0x%02x", buf[0])
	}
}

func decodeRowPayload(buf []byte) (*Payload, error) {
	nc, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("net: row payload: bad column count")
	}
	buf = buf[n:]
	if nc > maxPayloadCols || nc > uint64(len(buf)) {
		return nil, fmt.Errorf("net: row payload: column count %d exceeds input", nc)
	}
	schema := make(mring.Schema, nc)
	for i := range schema {
		l, n := binary.Uvarint(buf)
		if n <= 0 || l > uint64(len(buf)-n) {
			return nil, fmt.Errorf("net: row payload: bad column name length")
		}
		schema[i] = string(buf[n : n+int(l)])
		buf = buf[n+int(l):]
	}
	nr, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("net: row payload: bad row count")
	}
	buf = buf[n:]
	// Every row ends in an 8-byte multiplicity, so a row count past
	// len/8 is a lie about the input size — reject it before allocating.
	if nr > uint64(len(buf))/8 {
		return nil, fmt.Errorf("net: row payload: row count %d exceeds input", nr)
	}
	p := &Payload{
		Schema: schema,
		rows:   make([]mring.Tuple, 0, nr),
		mults:  make([]float64, 0, nr),
	}
	for r := uint64(0); r < nr; r++ {
		t := make(mring.Tuple, len(schema))
		for c := range t {
			if len(buf) == 0 {
				return nil, fmt.Errorf("net: row payload: truncated row %d", r)
			}
			kind := mring.Kind(buf[0])
			buf = buf[1:]
			switch kind {
			case mring.KInt:
				v, n := binary.Varint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("net: row payload: bad int in row %d", r)
				}
				t[c] = mring.Int(v)
				buf = buf[n:]
			case mring.KFloat:
				if len(buf) < 8 {
					return nil, fmt.Errorf("net: row payload: truncated float in row %d", r)
				}
				t[c] = mring.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
				buf = buf[8:]
			case mring.KString:
				l, n := binary.Uvarint(buf)
				if n <= 0 || l > uint64(len(buf)-n) {
					return nil, fmt.Errorf("net: row payload: bad string length in row %d", r)
				}
				t[c] = mring.Str(string(buf[n : n+int(l)]))
				buf = buf[n+int(l):]
			default:
				return nil, fmt.Errorf("net: row payload: unknown value kind %d in row %d", kind, r)
			}
		}
		if len(buf) < 8 {
			return nil, fmt.Errorf("net: row payload: truncated multiplicity in row %d", r)
		}
		m := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
		p.rows = append(p.rows, t)
		p.mults = append(p.mults, m)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("net: row payload: %d trailing bytes", len(buf))
	}
	return p, nil
}
