package net

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/mring"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 100_000)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 7, p); err != nil {
			t.Fatal(err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != 7 || !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: typ=%d len=%d want len=%d", typ, len(got), len(p))
		}
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	app := AppendFrame(nil, 3, []byte("hello"))
	if !bytes.Equal(buf.Bytes(), app) {
		t.Fatalf("WriteFrame %x != AppendFrame %x", buf.Bytes(), app)
	}
	typ, payload, rest, err := DecodeFrame(app)
	if err != nil || typ != 3 || string(payload) != "hello" || len(rest) != 0 {
		t.Fatalf("DecodeFrame: typ=%d payload=%q rest=%d err=%v", typ, payload, len(rest), err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Fatalf("clean close: got %v, want io.EOF verbatim", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, 1, []byte("payload"))
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut=%d: got %v, want ErrFrameTruncated", cut, err)
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// The guard must fire before the body allocation: a tiny input
	// announcing 256 MiB must not OOM (this test would be killed).
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	var hdr [4]byte // length 0 < 1: no room for the type byte
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestPayloadRowRoundTrip(t *testing.T) {
	schema := mring.Schema{"k", "name", "v"}
	r := mring.NewRelation(schema)
	r.Add(mring.Tuple{mring.Int(1), mring.Str("a"), mring.Float(1.5)}, 2)
	r.Add(mring.Tuple{mring.Int(2), mring.Str("b"), mring.Float(-0.25)}, 1)
	r.Add(mring.Tuple{mring.Int(3), mring.Str(""), mring.Float(0)}, -3)

	enc := EncodeRelationPlain(r)
	p, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := mring.NewRelation(p.Schema)
	p.Foreach(got.Add)
	if got.Len() != r.Len() {
		t.Fatalf("got %d rows, want %d", got.Len(), r.Len())
	}
	r.Foreach(func(tp mring.Tuple, m float64) {
		if g := got.Get(tp); g != m {
			t.Fatalf("tuple %v: got %v, want %v", tp, g, m)
		}
	})
}

// TestPayloadPreservesForeachOrder pins the load-bearing property: a
// relation rebuilt from a payload replays rows in the sender's Foreach
// order, so the receiver's hash layout (hence its own Foreach order) is
// bitwise-deterministic.
func TestPayloadPreservesForeachOrder(t *testing.T) {
	schema := mring.Schema{"a", "b"}
	r := mring.NewRelation(schema)
	for i := 0; i < 500; i++ {
		r.Add(mring.Tuple{mring.Int(int64(i * 37 % 101)), mring.Str("s")}, float64(i%7)+1)
	}
	p, err := DecodePayload(EncodeRelationPlain(r))
	if err != nil {
		t.Fatal(err)
	}
	var want []mring.Tuple
	r.Foreach(func(tp mring.Tuple, m float64) { want = append(want, tp.Clone()) })
	i := 0
	p.Foreach(func(tp mring.Tuple, m float64) {
		if !tp.Equal(want[i]) {
			t.Fatalf("row %d: got %v, want %v", i, tp, want[i])
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("replayed %d rows, want %d", i, len(want))
	}
}

func TestDecodePayloadRejectsHostileInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":               {},
		"unknown tag":         {0x7F, 1, 2, 3},
		"rows: no schema":     {payloadRows},
		"rows: huge colcount": append([]byte{payloadRows}, binary.AppendUvarint(nil, 1<<40)...),
		"rows: huge rowcount": func() []byte {
			b := []byte{payloadRows}
			b = binary.AppendUvarint(b, 1) // 1 column
			b = binary.AppendUvarint(b, 1) // name length 1
			b = append(b, 'c')
			b = binary.AppendUvarint(b, 1<<40) // rows
			return b
		}(),
		"rows: bad kind": func() []byte {
			b := []byte{payloadRows}
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 1)
			b = append(b, 'c')
			b = binary.AppendUvarint(b, 1)
			b = append(b, 0xEE)                   // unknown kind
			return append(b, make([]byte, 16)...) // filler
		}(),
		"rows: truncated mult": func() []byte {
			b := []byte{payloadRows}
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 1)
			b = append(b, 'c')
			b = binary.AppendUvarint(b, 1)
			b = append(b, byte(mring.KInt))
			b = binary.AppendVarint(b, 42)
			return append(b, make([]byte, 7)...) // 7 < 8 multiplicity bytes... padded by guard
		}(),
		"columnar: garbage": {payloadColumnar, 0xDE, 0xAD, 0xBE, 0xEF},
	}
	for name, buf := range cases {
		if _, err := DecodePayload(buf); err == nil {
			t.Errorf("%s: hostile payload accepted", name)
		}
	}
}

// FuzzFrameDecode drives hostile bytes through the frame and payload
// decoders: neither may panic or accept-and-misparse; a frame that
// decodes must re-encode to the identical bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, opFuzzSeedType, []byte("payload")))
	r := mring.NewRelation(mring.Schema{"k", "v"})
	r.Add(mring.Tuple{mring.Int(7), mring.Str("x")}, 2)
	f.Add(AppendFrame(nil, 2, EncodeRelationPlain(r)))
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	f.Add(huge[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, rest, err := DecodeFrame(data)
		if err == nil {
			re := AppendFrame(nil, typ, payload)
			if !bytes.Equal(re, data[:len(data)-len(rest)]) {
				t.Fatalf("re-encode mismatch: %x != %x", re, data[:len(data)-len(rest)])
			}
			// Whatever the frame carried, the payload decoder must not
			// panic and must reject or cleanly parse it.
			if p, perr := DecodePayload(payload); perr == nil {
				got := mring.NewRelation(p.Schema)
				p.Foreach(got.Add)
			}
		}
		// The payload decoder also sees the raw input (frames are not the
		// only source of payload bytes: checkpoints decode them too).
		if p, perr := DecodePayload(data); perr == nil {
			got := mring.NewRelation(p.Schema)
			p.Foreach(got.Add)
		}
	})
}

const opFuzzSeedType = 1
