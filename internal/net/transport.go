package net

import (
	"bufio"
	"net"
	"sync"
)

// Conn is one framed, ordered, reliable byte stream between two peers.
// Send and Recv move whole frames; both are safe for one concurrent
// sender plus one concurrent receiver (the request/response protocols
// above serialize harder than that). Close unblocks a pending Recv.
type Conn interface {
	Send(typ byte, payload []byte) error
	Recv() (typ byte, payload []byte, err error)
	Close() error
}

// Listener accepts framed connections.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Transport dials and listens for framed connections. TCP is the one
// real implementation; the interface is the QUIC seam — a QUIC transport
// (one stream per connection) satisfies it without touching any caller.
type Transport interface {
	Dial(addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}

// TCP is the stream-socket transport: one framed protocol connection per
// TCP connection, with buffered writes flushed at frame boundaries.
type TCP struct{}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

// Listen implements Transport. Listening on port 0 picks a free port;
// read the chosen address back with Addr.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	nc, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }

type tcpConn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 1<<16),
		w:  bufio.NewWriterSize(nc, 1<<16),
	}
}

func (c *tcpConn) Send(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteFrame(c.w, typ, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *tcpConn) Recv() (byte, []byte, error) {
	return ReadFrame(c.r)
}

func (c *tcpConn) Close() error { return c.nc.Close() }
