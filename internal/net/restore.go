package net

import (
	"fmt"

	"repro/internal/mring"
)

// MaxRestoreBuckets bounds the bucket-table size a snapshot may ask a
// restored relation to preseed, so a corrupt size field cannot demand an
// arbitrary allocation before validation catches it.
const MaxRestoreBuckets = 1 << 28

// ForeachReverse visits the payload's rows in reverse wire order. This is
// the exact-layout restore primitive: the encoder wrote rows in the source
// relation's Foreach order, and re-inserting them in reverse into a table
// preseeded to the source's bucket count reproduces the source's chains
// exactly (each insert pushes at the chain head). Tuples passed to f are
// safe to retain.
func (p *Payload) ForeachReverse(f func(t mring.Tuple, m float64)) {
	rows, mults := p.rows, p.mults
	if p.Batch != nil {
		// Columnar batches decode through a reused tuple buffer, so
		// materialize owned copies before walking backwards.
		rows, mults = nil, nil
		p.Batch.Foreach(func(t mring.Tuple, m float64) {
			rows = append(rows, t.Clone())
			mults = append(mults, m)
		})
	}
	for i := len(rows) - 1; i >= 0; i-- {
		f(rows[i], mults[i])
	}
}

// validateBuckets checks a snapshot's recorded bucket-table size against
// the row count it claims to have held. buckets == 0 means the source
// relation never allocated a table (only possible when it is empty).
func validateBuckets(buckets, rows int) error {
	if buckets == 0 {
		if rows != 0 {
			return fmt.Errorf("inet: snapshot has %d rows but no bucket table", rows)
		}
		return nil
	}
	if buckets < 8 || buckets > MaxRestoreBuckets || buckets&(buckets-1) != 0 {
		return fmt.Errorf("inet: snapshot bucket count %d is not a power of two in [8, %d]", buckets, MaxRestoreBuckets)
	}
	if rows > buckets {
		return fmt.Errorf("inet: snapshot has %d rows in a %d-bucket table", rows, buckets)
	}
	return nil
}

// RestoreIntoExact rebuilds dst — which must be empty and fresh (no
// bucket table yet) — from an EncodeRelationPlain payload so that dst's
// physical layout is bitwise-identical to the encoder's source relation:
// same bucket-table size, same chains, same Foreach enumeration order.
// That order is load-bearing for the engine's float-fold determinism, so
// recovery restores state through this path rather than a plain rebuild.
// buckets is the source's TableSize; payload may be nil/empty for an
// empty source (then only capacity is restored). Corrupt input returns a
// descriptive error and never panics.
func RestoreIntoExact(dst *mring.Relation, payload []byte, buckets int) error {
	if len(payload) == 0 {
		if err := validateBuckets(buckets, 0); err != nil {
			return err
		}
		if buckets > 0 {
			dst.Preseed(buckets)
		}
		return nil
	}
	p, err := DecodePayload(payload)
	if err != nil {
		return err
	}
	if len(p.Schema) != len(dst.Schema()) {
		return fmt.Errorf("inet: snapshot schema arity %d does not match relation arity %d", len(p.Schema), len(dst.Schema()))
	}
	if err := validateBuckets(buckets, p.Len()); err != nil {
		return err
	}
	if buckets > 0 {
		dst.Preseed(buckets)
		p.ForeachReverse(dst.Add)
		return nil
	}
	// No recorded size (legacy snapshot): contents-only rebuild in wire
	// order. Correct values, but no layout guarantee.
	p.Foreach(dst.Add)
	return nil
}

// RestoreRelationExact is RestoreIntoExact for callers that do not hold a
// pre-created relation: the schema comes from the payload itself, or from
// fallback when the payload is empty (empty relations encode to nil, which
// carries no schema).
func RestoreRelationExact(payload []byte, buckets int, fallback mring.Schema) (*mring.Relation, error) {
	schema := fallback
	if len(payload) > 0 {
		p, err := DecodePayload(payload)
		if err != nil {
			return nil, err
		}
		schema = p.Schema
	}
	r := mring.NewRelation(schema)
	if err := RestoreIntoExact(r, payload, buckets); err != nil {
		return nil, err
	}
	return r, nil
}
