// Package tune holds the self-tuning primitives of the adaptive runtime
// (ROADMAP: "Self-tuning runtime"): a hill-climbing batch-size
// controller with hysteresis, a per-worker skew monitor that decides
// when repartitioning pays, and a probe/maintenance index-admission
// policy. The package is pure decision logic — it measures nothing and
// actuates nothing itself. The engine layer feeds it observations
// (measured fold throughput, per-worker stage compute, per-index health
// counters) and applies its decisions strictly between transactions, so
// tuning can never change result semantics, only cost.
//
// All three controllers are deterministic functions of their
// observation sequence: tests drive them with synthetic throughput
// curves and fixed durations instead of a wall clock.
package tune

import (
	"time"

	"repro/internal/mring"
)

// Config holds every knob of the three controllers. The zero value is
// usable: WithDefaults fills in the calibrated defaults for any field
// left zero, so callers set only what they mean to override.
type Config struct {
	// MinBatch and MaxBatch bound the effective maintenance batch size
	// (tuples per fold) the batch controller may choose.
	MinBatch, MaxBatch int
	// InitialBatch is the starting batch-size target.
	InitialBatch int
	// Window is the number of folds measured per controller step: the
	// controller compares mean throughput across consecutive windows.
	Window int
	// Step is the initial multiplicative step of the hill climb (0.25
	// moves the target ±25% per adjustment); MinStep is the floor the
	// step decays to — reaching it settles the controller.
	Step, MinStep float64
	// Hysteresis is the relative-throughput dead band: changes within
	// ±Hysteresis neither confirm nor reverse a move, they decay the
	// step. It is what prevents oscillation around the optimum.
	Hysteresis float64
	// Reexplore scales Hysteresis into the band a settled controller
	// tolerates before it starts exploring again (a workload change).
	Reexplore float64

	// SkewThreshold is the max/mean per-worker stage-compute imbalance
	// above which repartitioning is considered (1 = perfectly balanced).
	SkewThreshold float64
	// SkewPatience is how many consecutive above-threshold observations
	// are required before acting — transient skew must not trigger a
	// recompile.
	SkewPatience int
	// SkewCooldown is the number of observations after a repartition
	// attempt (successful or not) during which no new attempt starts.
	SkewCooldown int
	// SkewAlpha is the EWMA smoothing factor for the imbalance signal.
	SkewAlpha float64

	// DemoteAfter is the minimum number of index maintenance operations
	// before an index's probe/maintenance ratio is judged at all.
	DemoteAfter int64
	// ColdRatio demotes an index when probes*ColdRatio < maintains
	// (probed ≪ maintained); larger values demote more aggressively.
	ColdRatio int64
	// ReadmitProbes re-admits a demoted index once that many probes hit
	// its scan fallback — the traffic that makes the index pay again.
	ReadmitProbes int64
	// SweepEvery is the number of transactions between index sweeps.
	SweepEvery int

	// Now is the clock used by the engine layer to time folds; tests
	// inject a deterministic one. Nil means time.Now.
	Now func() time.Time
}

// WithDefaults returns c with every zero field set to its default.
func (c Config) WithDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defF := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def64 := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.MinBatch, 64)
	def(&c.MaxBatch, 1<<16)
	def(&c.InitialBatch, 1024)
	def(&c.Window, 4)
	defF(&c.Step, 0.25)
	defF(&c.MinStep, 0.02)
	defF(&c.Hysteresis, 0.05)
	defF(&c.Reexplore, 4)
	defF(&c.SkewThreshold, 1.5)
	def(&c.SkewPatience, 3)
	def(&c.SkewCooldown, 16)
	defF(&c.SkewAlpha, 0.4)
	def64(&c.DemoteAfter, 4096)
	def64(&c.ColdRatio, 16)
	def64(&c.ReadmitProbes, 64)
	def(&c.SweepEvery, 32)
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MinBatch < 1 {
		c.MinBatch = 1
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.InitialBatch < c.MinBatch {
		c.InitialBatch = c.MinBatch
	}
	if c.InitialBatch > c.MaxBatch {
		c.InitialBatch = c.MaxBatch
	}
	return c
}

// BatchController hill-climbs the effective maintenance batch size from
// measured tuples/sec (the paper's Fig. 7: the throughput-optimal batch
// size is workload-dependent, so it cannot be a constant). It compares
// mean throughput across consecutive observation windows: an
// improvement beyond the hysteresis band confirms the current
// direction, a regression reverses it and halves the step, and staying
// inside the band decays the step until the controller settles. A
// settled controller freezes the target — no oscillation — until the
// throughput leaves the widened re-explore band (a workload change).
type BatchController struct {
	cfg    Config
	target float64
	dir    float64
	step   float64
	frozen bool

	prev float64 // previous window's throughput (0 before the first)
	thr  float64 // most recent window's throughput

	winTuples int64
	winDur    time.Duration
	winFolds  int

	adjustments int
	reversals   int
}

// NewBatchController returns a controller starting at
// cfg.InitialBatch, exploring upward first (larger batches amortize
// per-fold overhead, so up is the likelier initial win).
func NewBatchController(cfg Config) *BatchController {
	cfg = cfg.WithDefaults()
	return &BatchController{cfg: cfg, target: float64(cfg.InitialBatch), dir: 1, step: cfg.Step}
}

// Target returns the current batch-size target in tuples.
func (b *BatchController) Target() int { return int(b.target) }

// Settled reports whether the climb has converged (step decayed to its
// floor); a settled controller holds its target.
func (b *BatchController) Settled() bool { return b.frozen }

// Throughput returns the most recently completed window's mean
// throughput in tuples/sec (0 before the first window completes).
func (b *BatchController) Throughput() float64 { return b.thr }

// Adjustments and Reversals expose the climb trajectory for tests and
// stats: total target moves, and how many reversed direction.
func (b *BatchController) Adjustments() int { return b.adjustments }
func (b *BatchController) Reversals() int   { return b.reversals }

// Observe records one fold of the given size and measured duration.
// Once cfg.Window folds accumulate, the window closes and the target
// may move. Non-positive observations are ignored.
func (b *BatchController) Observe(tuples int, d time.Duration) {
	if tuples <= 0 || d <= 0 {
		return
	}
	b.winTuples += int64(tuples)
	b.winDur += d
	b.winFolds++
	if b.winFolds < b.cfg.Window {
		return
	}
	thr := float64(b.winTuples) / b.winDur.Seconds()
	b.winTuples, b.winDur, b.winFolds = 0, 0, 0
	b.closeWindow(thr)
}

func (b *BatchController) closeWindow(thr float64) {
	b.thr = thr
	prev := b.prev
	b.prev = thr
	if prev <= 0 {
		// First window: no comparison yet, take the first exploratory step.
		b.move()
		return
	}
	rel := thr/prev - 1
	if b.frozen {
		// Settled: hold the target inside the widened band; a shift past
		// it means the workload changed and the climb restarts.
		if rel > b.cfg.Hysteresis*b.cfg.Reexplore || rel < -b.cfg.Hysteresis*b.cfg.Reexplore {
			b.frozen = false
			b.step = b.cfg.Step
		}
		return
	}
	switch {
	case rel < -b.cfg.Hysteresis:
		// Measurably worse: the last move overshot. Reverse, halve.
		b.dir = -b.dir
		b.step /= 2
		b.reversals++
	case rel > b.cfg.Hysteresis:
		// Measurably better: keep climbing in this direction.
	default:
		// Plateau (inside the dead band): decay toward settling.
		b.step /= 2
	}
	if b.step < b.cfg.MinStep {
		b.step = b.cfg.MinStep
		b.frozen = true
		return
	}
	b.move()
}

func (b *BatchController) move() {
	b.target *= 1 + b.dir*b.step
	if b.target < float64(b.cfg.MinBatch) {
		b.target = float64(b.cfg.MinBatch)
	}
	if b.target > float64(b.cfg.MaxBatch) {
		b.target = float64(b.cfg.MaxBatch)
	}
	b.adjustments++
}

// SkewMonitor watches per-worker stage compute and decides when the
// observed imbalance justifies repartitioning. The raw signal is
// max/mean over the workers' per-transaction compute deltas (1 =
// perfectly balanced); it is EWMA-smoothed, must stay above the
// threshold for SkewPatience consecutive observations to trigger, and a
// cooldown after every attempt prevents recompile thrash.
type SkewMonitor struct {
	cfg        Config
	ewma       float64
	seeded     bool
	hot        int
	cooldown   int
	rebalances int64
}

// NewSkewMonitor returns a monitor with the given thresholds.
func NewSkewMonitor(cfg Config) *SkewMonitor {
	return &SkewMonitor{cfg: cfg.WithDefaults()}
}

// Imbalance returns the smoothed max/mean imbalance (0 before any
// observation).
func (m *SkewMonitor) Imbalance() float64 { return m.ewma }

// Rebalances returns how many observations triggered a repartition
// attempt.
func (m *SkewMonitor) Rebalances() int64 { return m.rebalances }

// Observe records one transaction's per-worker compute and reports
// whether a repartition attempt should start now. A true return must be
// acknowledged with NoteRebalance.
func (m *SkewMonitor) Observe(perWorker []time.Duration) bool {
	if len(perWorker) < 2 {
		return false
	}
	var sum, max time.Duration
	for _, d := range perWorker {
		if d < 0 {
			d = 0
		}
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return false
	}
	imb := float64(max) * float64(len(perWorker)) / float64(sum)
	if !m.seeded {
		m.ewma, m.seeded = imb, true
	} else {
		m.ewma = m.cfg.SkewAlpha*imb + (1-m.cfg.SkewAlpha)*m.ewma
	}
	if m.cooldown > 0 {
		m.cooldown--
		return false
	}
	if m.ewma > m.cfg.SkewThreshold {
		m.hot++
	} else {
		m.hot = 0
	}
	return m.hot >= m.cfg.SkewPatience
}

// NoteRebalance acknowledges a repartition attempt (changed reports
// whether the deployment actually moved): patience resets and the
// cooldown starts either way, so an attempt that found nothing better
// does not immediately rescan.
func (m *SkewMonitor) NoteRebalance(changed bool) {
	m.hot = 0
	m.cooldown = m.cfg.SkewCooldown
	m.rebalances++
	_ = changed
}

// IndexPolicy is the stats-driven index-admission policy: it sweeps a
// relation's per-index health counters, demotes cold slice indexes
// (probed ≪ maintained, so incremental maintenance costs more than it
// saves) to on-demand scans, and re-admits a demoted index once probe
// traffic returns. Demotion and readmission reset the counters, so a
// readmitted index gets a fresh trial of DemoteAfter maintenance ops
// before it can be judged cold again — the hysteresis that bounds
// flapping.
type IndexPolicy struct {
	cfg Config
	// Demotions and Readmissions count policy actions across all sweeps.
	Demotions, Readmissions int64
}

// NewIndexPolicy returns a policy with the given thresholds.
func NewIndexPolicy(cfg Config) *IndexPolicy {
	return &IndexPolicy{cfg: cfg.WithDefaults()}
}

// Sweep applies the policy to one relation's secondary indexes and
// returns how many were demoted and readmitted.
func (p *IndexPolicy) Sweep(rel *mring.Relation) (demoted, readmitted int) {
	for _, h := range rel.IndexHealthSnapshot() {
		if h.Demoted {
			if h.ScanProbes >= p.cfg.ReadmitProbes {
				rel.ReadmitIndex(h.Cols)
				readmitted++
			}
			continue
		}
		if h.Maintains >= p.cfg.DemoteAfter && h.Probes*p.cfg.ColdRatio < h.Maintains {
			rel.DemoteIndex(h.Cols)
			demoted++
		}
	}
	p.Demotions += int64(demoted)
	p.Readmissions += int64(readmitted)
	return demoted, readmitted
}
