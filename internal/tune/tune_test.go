package tune_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/mring"
	"repro/internal/tune"
)

// driveWindows feeds the controller `windows` complete observation
// windows from a synthetic throughput curve: each fold's duration is
// exactly target/thr(target) seconds, so the whole run is a
// deterministic function of the curve — no wall clock anywhere.
func driveWindows(b *tune.BatchController, cfg tune.Config, thr func(batch int) float64, windows int) {
	for w := 0; w < windows; w++ {
		for f := 0; f < cfg.Window; f++ {
			n := b.Target()
			d := time.Duration(float64(n) / thr(n) * float64(time.Second))
			b.Observe(n, d)
		}
	}
}

// logPeak is a unimodal throughput curve peaking at opt: gaussian in
// log-batch-size, the qualitative shape of the paper's Fig. 7.
func logPeak(opt float64, sigma float64) func(int) float64 {
	return func(batch int) float64 {
		x := math.Log(float64(batch) / opt)
		return 1e6 * math.Exp(-x*x/(2*sigma*sigma))
	}
}

func TestBatchControllerConvergesToOptimum(t *testing.T) {
	cfg := tune.Config{InitialBatch: 256, MinBatch: 16, MaxBatch: 1 << 16, Window: 2}
	b := tune.NewBatchController(cfg)
	cfg = cfg.WithDefaults()
	const opt = 4096
	curve := logPeak(opt, 1.0)
	driveWindows(b, cfg, curve, 400)

	if !b.Settled() {
		t.Fatalf("controller did not settle after 400 windows (target=%d, step active)", b.Target())
	}
	got := b.Target()
	if got < opt/2 || got > opt*2 {
		t.Fatalf("settled target %d not near optimum %d", got, opt)
	}
	// Converged throughput must be close to the peak: the climb is only
	// allowed to stop inside the hysteresis band around a local optimum.
	if thr := curve(got); thr < 0.85e6 {
		t.Fatalf("settled throughput %.0f is %.0f%% of peak — stopped on the slope", thr, thr/1e4)
	}
	if rev := b.Reversals(); rev > 12 {
		t.Fatalf("hill climb reversed %d times; hysteresis should bound oscillation", rev)
	}
}

// TestBatchControllerMonotoneSteps pins the climb shape: on a clean
// unimodal curve every accepted (non-reversing) step improves measured
// throughput, so the per-window throughput sequence up to the first
// reversal is non-decreasing up to the hysteresis dead band (near the
// peak the plateau wiggles inside the band by construction).
func TestBatchControllerMonotoneSteps(t *testing.T) {
	cfg := tune.Config{InitialBatch: 256, Window: 1, MaxBatch: 1 << 16}
	b := tune.NewBatchController(cfg)
	cfg = cfg.WithDefaults()
	curve := logPeak(8192, 1.2)

	var thrs []float64
	lastRev := 0
	for w := 0; w < 100 && b.Reversals() == 0; w++ {
		driveWindows(b, cfg, curve, 1)
		thrs = append(thrs, b.Throughput())
		lastRev = w
	}
	if lastRev < 3 {
		t.Fatalf("expected several monotone windows before the first reversal, got %d", lastRev)
	}
	for i := 1; i < len(thrs)-1; i++ { // last window is the one that triggered the reversal
		if thrs[i] < thrs[i-1]*(1-cfg.Hysteresis) {
			t.Fatalf("window %d throughput %.0f regressed >hysteresis from %.0f before any reversal", i, thrs[i], thrs[i-1])
		}
	}
}

// TestBatchControllerHysteresisPreventsOscillation settles the
// controller on a flat curve, then feeds alternating ±3% throughput
// noise (inside the hysteresis dead band scaled by Reexplore) and
// checks the target never moves again.
func TestBatchControllerHysteresisPreventsOscillation(t *testing.T) {
	cfg := tune.Config{InitialBatch: 1024, Window: 1}
	b := tune.NewBatchController(cfg)
	cfg = cfg.WithDefaults()
	flat := func(int) float64 { return 1e6 }
	driveWindows(b, cfg, flat, 50)
	if !b.Settled() {
		t.Fatalf("controller did not settle on a flat curve")
	}
	target := b.Target()
	adjustments := b.Adjustments()

	for w := 0; w < 1000; w++ {
		noise := 1.03
		if w%2 == 1 {
			noise = 0.97
		}
		driveWindows(b, cfg, func(int) float64 { return 1e6 * noise }, 1)
		if got := b.Target(); got != target {
			t.Fatalf("window %d: settled target moved %d -> %d under in-band noise", w, target, got)
		}
	}
	if b.Adjustments() != adjustments {
		t.Fatalf("controller adjusted the target %d times after settling", b.Adjustments()-adjustments)
	}
}

// TestBatchControllerReexploresOnWorkloadShift: after settling, a
// throughput shift beyond the widened re-explore band must restart the
// climb and re-converge near the new optimum.
func TestBatchControllerReexploresOnWorkloadShift(t *testing.T) {
	cfg := tune.Config{InitialBatch: 512, Window: 1, MaxBatch: 1 << 17}
	b := tune.NewBatchController(cfg)
	cfg = cfg.WithDefaults()
	driveWindows(b, cfg, logPeak(1024, 1.0), 200)
	if !b.Settled() {
		t.Fatalf("did not settle on the first workload")
	}

	// New workload: optimum far away, and throughput at the old target
	// collapses (>> re-explore band), so the controller must wake up.
	curve2 := func(batch int) float64 { return 0.3 * logPeak(32768, 1.0)(batch) }
	driveWindows(b, cfg, curve2, 400)
	if !b.Settled() {
		t.Fatalf("did not re-settle on the second workload (target=%d)", b.Target())
	}
	got := b.Target()
	if got < 32768/2 || got > 32768*2 {
		t.Fatalf("after workload shift, settled at %d; want near 32768", got)
	}
}

func TestSkewMonitorPatienceAndCooldown(t *testing.T) {
	cfg := tune.Config{SkewThreshold: 1.5, SkewPatience: 3, SkewCooldown: 4, SkewAlpha: 1}
	m := tune.NewSkewMonitor(cfg)

	skewed := []time.Duration{9 * time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}
	balanced := []time.Duration{3 * time.Millisecond, 3 * time.Millisecond, 3 * time.Millisecond, 3 * time.Millisecond}

	// Patience: the first patience-1 skewed observations must not trigger.
	for i := 0; i < 2; i++ {
		if m.Observe(skewed) {
			t.Fatalf("observation %d triggered before patience ran out", i)
		}
	}
	if !m.Observe(skewed) {
		t.Fatalf("third consecutive skewed observation should trigger")
	}
	if imb := m.Imbalance(); imb < 2.9 || imb > 3.1 {
		t.Fatalf("imbalance = %.2f, want ~3 (max/mean of 9,1,1,1)", imb)
	}

	// Cooldown: after acknowledging, even sustained skew must stay quiet
	// for SkewCooldown observations, then patience starts over.
	m.NoteRebalance(true)
	for i := 0; i < 4+2; i++ { // 4 cooldown + 2 patience
		if m.Observe(skewed) {
			t.Fatalf("observation %d during cooldown/patience triggered", i)
		}
	}
	if !m.Observe(skewed) {
		t.Fatalf("after cooldown and patience, sustained skew should trigger again")
	}

	// Balanced input resets patience.
	m.NoteRebalance(false)
	m2 := tune.NewSkewMonitor(cfg)
	for i := 0; i < 10; i++ {
		if m2.Observe(balanced) {
			t.Fatalf("balanced workers triggered a rebalance")
		}
	}
	if m2.Observe(skewed) || m2.Observe(skewed) {
		t.Fatalf("patience must restart from zero after balanced stretches")
	}
}

func TestSkewMonitorDegenerateInputs(t *testing.T) {
	m := tune.NewSkewMonitor(tune.Config{SkewPatience: 1})
	if m.Observe(nil) || m.Observe([]time.Duration{time.Second}) {
		t.Fatalf("fewer than two workers can never be skewed")
	}
	if m.Observe([]time.Duration{0, 0, 0}) {
		t.Fatalf("all-zero compute must not trigger")
	}
}

func TestIndexPolicyDemoteAndReadmit(t *testing.T) {
	cfg := tune.Config{DemoteAfter: 10, ColdRatio: 4, ReadmitProbes: 3}
	p := tune.NewIndexPolicy(cfg)

	rel := mring.NewRelation(mring.Schema{"k", "v"})
	pos := []int{0}
	if _, _, ok := rel.SliceIndex(pos); !ok {
		t.Fatalf("fresh index must be admitted")
	}
	// Pure maintenance, no probes: insert enough distinct tuples to cross
	// DemoteAfter.
	for i := 0; i < 20; i++ {
		rel.Add(mring.Tuple{mring.Int(int64(i)), mring.Float(1)}, 1)
	}
	demoted, readmitted := p.Sweep(rel)
	if demoted != 1 || readmitted != 0 {
		t.Fatalf("Sweep = (%d,%d), want (1,0): 20 maintains, 0 probes", demoted, readmitted)
	}
	if rel.Indexes() != 0 {
		t.Fatalf("demoted index still registered")
	}
	// While demoted the slice path falls back to scans, and the counters
	// were reset: heavy maintenance alone must not re-trigger anything.
	if _, _, ok := rel.SliceIndex(pos); ok {
		t.Fatalf("demoted index served a probe")
	}
	if d, r := p.Sweep(rel); d != 0 || r != 0 {
		t.Fatalf("sweep after demotion acted (%d,%d); counters should have reset", d, r)
	}

	// Probe traffic returns: ReadmitProbes scan-probes re-admit it.
	rel.SliceIndex(pos)
	rel.SliceIndex(pos) // with the first probe above: 3 scan-probes total
	if d, r := p.Sweep(rel); d != 0 || r != 1 {
		t.Fatalf("Sweep = (%d,%d), want readmission after %d scan probes", d, r, 3)
	}
	idx, built, ok := rel.SliceIndex(pos)
	if !ok || !built || idx == nil {
		t.Fatalf("readmitted index should rebuild on next probe (ok=%v built=%v)", ok, built)
	}
	// Fresh trial after readmission: the rebuild does not count as
	// maintenance, so an immediate sweep keeps the index.
	if d, _ := p.Sweep(rel); d != 0 {
		t.Fatalf("index demoted immediately after readmission; rebuild must not count as maintenance")
	}

	// The probe counter keeps a hot index admitted even under heavy
	// maintenance.
	for i := 100; i < 200; i++ {
		rel.Add(mring.Tuple{mring.Int(int64(i)), mring.Float(1)}, 1)
		idx2, _, _ := rel.SliceIndex(pos)
		idx2.Probe(mring.Tuple{mring.Int(int64(i))}, func(mring.Tuple, float64) {})
	}
	if d, _ := p.Sweep(rel); d != 0 {
		t.Fatalf("hot index (1 probe per maintain) was demoted")
	}
	if p.Demotions != 1 || p.Readmissions != 1 {
		t.Fatalf("policy counters = (%d,%d), want (1,1)", p.Demotions, p.Readmissions)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := tune.Config{}.WithDefaults()
	if c.MinBatch <= 0 || c.MaxBatch < c.MinBatch || c.InitialBatch < c.MinBatch || c.InitialBatch > c.MaxBatch {
		t.Fatalf("default batch bounds inconsistent: %+v", c)
	}
	if c.Hysteresis <= 0 || c.Step <= c.MinStep || c.Now == nil {
		t.Fatalf("default controller knobs inconsistent: %+v", c)
	}
	// Overrides survive.
	c2 := tune.Config{MinBatch: 5, MaxBatch: 7, InitialBatch: 9}.WithDefaults()
	if c2.MinBatch != 5 || c2.MaxBatch != 7 || c2.InitialBatch != 7 {
		t.Fatalf("bound clamping wrong: %+v", c2)
	}
}
