package pool

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mring"
)

// randomGroupBatch builds a batch over (int, string, float) columns with
// a small value domain so groups repeat, plus NaN and >2^53 edge values.
func randomGroupBatch(rng *rand.Rand, rows int) *ColBatch {
	schema := mring.Schema{"k", "name", "v"}
	kinds := []mring.Kind{mring.KInt, mring.KString, mring.KFloat}
	b := NewColBatch(schema, kinds)
	for i := 0; i < rows; i++ {
		k := int64(rng.Intn(6))
		if rng.Intn(16) == 0 {
			k = (int64(1) << 53) + int64(rng.Intn(2))
		}
		v := float64(rng.Intn(4))
		if rng.Intn(16) == 0 {
			v = math.NaN()
		}
		b.Append(mring.Tuple{
			mring.Int(k),
			mring.Str(fmt.Sprintf("g%d", rng.Intn(3))),
			mring.Float(v),
		}, float64(rng.Intn(7)-3))
	}
	return b
}

// TestGroupHashesMatchRowWise pins the columnar kernel to the row-wise
// hash: every row, every column subset.
func TestGroupHashesMatchRowWise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randomGroupBatch(rng, 200)
	for _, pos := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}, {}} {
		hs := b.GroupHashes(pos)
		for i := range b.Mults {
			row, _ := b.Row(i)
			if want := row.HashCols(pos); hs[i] != want {
				t.Fatalf("pos %v row %d (%v): columnar hash %#x, row-wise %#x", pos, i, row, hs[i], want)
			}
		}
	}
}

// TestGroupSumMatchesRelationProjectSum checks the columnar
// pre-aggregation against the row-oriented reference path.
func TestGroupSumMatchesRelationProjectSum(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := randomGroupBatch(rng, 300)
		// Reference: row-at-a-time accumulation then projection-sum.
		ref := mring.NewRelation(b.Schema)
		b.Foreach(func(tp mring.Tuple, m float64) { ref.Add(tp.Clone(), m) })
		for _, cols := range [][]string{{"k"}, {"name"}, {"k", "name"}, {"k", "name", "v"}} {
			got := b.GroupSum(cols).ToRelation()
			want := ref.ProjectSum(cols)
			if !got.Equal(want) {
				t.Fatalf("seed %d cols %v:\n got %v\nwant %v", seed, cols, got, want)
			}
		}
	}
}

// TestToRelationColumnarMatchesRowPath guards the rewritten decode path.
func TestToRelationColumnarMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := randomGroupBatch(rng, 250)
	want := mring.NewRelation(b.Schema)
	b.Foreach(func(tp mring.Tuple, m float64) { want.Add(tp.Clone(), m) })
	if got := b.ToRelation(); !got.Equal(want) {
		t.Fatalf("columnar ToRelation diverges:\n got %v\nwant %v", got, want)
	}
}
