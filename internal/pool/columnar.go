package pool

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mring"
)

// Column is one typed column of a columnar batch. Exactly one of the value
// slices is populated, according to Kind.
type Column struct {
	Kind mring.Kind
	Ints []int64
	Flts []float64
	Strs []string
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case mring.KInt:
		return len(c.Ints)
	case mring.KFloat:
		return len(c.Flts)
	default:
		return len(c.Strs)
	}
}

func (c *Column) append(v mring.Value) {
	switch c.Kind {
	case mring.KInt:
		c.Ints = append(c.Ints, v.AsInt())
	case mring.KFloat:
		c.Flts = append(c.Flts, v.AsFloat())
	default:
		c.Strs = append(c.Strs, v.S)
	}
}

func (c *Column) value(i int) mring.Value {
	switch c.Kind {
	case mring.KInt:
		return mring.Int(c.Ints[i])
	case mring.KFloat:
		return mring.Float(c.Flts[i])
	default:
		return mring.Str(c.Strs[i])
	}
}

// ColBatch is a column-oriented batch of (tuple, multiplicity) pairs —
// the layout used for input batches and serialized shuffle payloads
// (Sec. 5.2.2): filtering simple static conditions over one column at a
// time touches contiguous memory.
type ColBatch struct {
	Schema mring.Schema
	Cols   []Column
	Mults  []float64
}

// NewColBatch creates an empty columnar batch. kinds fixes each column's
// type up front (generated code knows the input schema's types).
func NewColBatch(schema mring.Schema, kinds []mring.Kind) *ColBatch {
	if len(schema) != len(kinds) {
		panic("pool: schema/kinds arity mismatch")
	}
	cols := make([]Column, len(kinds))
	for i, k := range kinds {
		cols[i].Kind = k
	}
	return &ColBatch{Schema: schema.Clone(), Cols: cols}
}

// Len returns the number of rows.
func (b *ColBatch) Len() int { return len(b.Mults) }

// Append adds one row.
func (b *ColBatch) Append(t mring.Tuple, m float64) {
	if len(t) != len(b.Cols) {
		panic("pool: tuple arity mismatch")
	}
	for i := range b.Cols {
		b.Cols[i].append(t[i])
	}
	b.Mults = append(b.Mults, m)
}

// Row materializes row i.
func (b *ColBatch) Row(i int) (mring.Tuple, float64) {
	t := make(mring.Tuple, len(b.Cols))
	for j := range b.Cols {
		t[j] = b.Cols[j].value(i)
	}
	return t, b.Mults[i]
}

// Foreach visits every row, materializing tuples into a reused buffer.
func (b *ColBatch) Foreach(f func(t mring.Tuple, m float64)) {
	t := make(mring.Tuple, len(b.Cols))
	for i := range b.Mults {
		for j := range b.Cols {
			t[j] = b.Cols[j].value(i)
		}
		f(t, b.Mults[i])
	}
}

// FilterInt keeps rows whose int column col satisfies keep. It returns a
// new batch; the receiver is unchanged. Columnar filtering touches one
// column contiguously, the cache-locality argument of Sec. 5.2.2.
func (b *ColBatch) FilterInt(col string, keep func(int64) bool) *ColBatch {
	ci := b.Schema.Index(col)
	if ci < 0 || b.Cols[ci].Kind != mring.KInt {
		panic(fmt.Sprintf("pool: no int column %q", col))
	}
	kinds := make([]mring.Kind, len(b.Cols))
	for i := range b.Cols {
		kinds[i] = b.Cols[i].Kind
	}
	out := NewColBatch(b.Schema, kinds)
	var idx []int
	for i, v := range b.Cols[ci].Ints {
		if keep(v) {
			idx = append(idx, i)
		}
	}
	for _, i := range idx {
		t, m := b.Row(i)
		out.Append(t, m)
	}
	return out
}

// GroupHashes computes the canonical key hash of every row's projection
// onto the column positions pos — the column-wise group-hash kernel: each
// column folds into all row hash states in one pass over its contiguous
// value array, so scan-heavy pre-aggregation touches memory columnar
// instead of materializing row tuples. The result matches the row-wise
// mring.Tuple.HashCols of the same values exactly.
func (b *ColBatch) GroupHashes(pos []int) []uint64 {
	return b.HashSel(pos, nil)
}

// GroupSum pre-aggregates the batch into a hash-native group table over
// cols: row hashes come from the columnar kernel, and each row feeds the
// table pre-hashed through a reused key buffer (cloned only when a group
// is new). Multiplicities accumulate in row order with the data model's
// in-table zero cancellation. Wire-batch decode (ToRelation, reached
// from checkpoint restore) runs through it; columnar worker state
// (ROADMAP) would put it on scan-heavy pre-aggregation stages.
func (b *ColBatch) GroupSum(cols []string) *mring.GroupTable {
	pos := b.Schema.Positions(cols)
	hs := b.GroupHashes(pos)
	gt := mring.NewGroupTable(mring.Schema(cols))
	key := make(mring.Tuple, len(pos))
	for i, m := range b.Mults {
		for j, p := range pos {
			key[j] = b.Cols[p].value(i)
		}
		gt.AddPrehashed(hs[i], key, m)
	}
	return gt
}

// FromRelation converts row-format contents to columnar form. Column
// kinds are taken from the first tuple; empty relations produce int
// columns.
func FromRelation(r *mring.Relation) *ColBatch {
	kinds := make([]mring.Kind, len(r.Schema()))
	first := true
	r.Foreach(func(t mring.Tuple, _ float64) {
		if first {
			for i, v := range t {
				kinds[i] = v.K
			}
			first = false
		}
	})
	b := NewColBatch(r.Schema(), kinds)
	r.Foreach(func(t mring.Tuple, m float64) { b.Append(t, m) })
	return b
}

// ToRelation converts back to row format, merging duplicate tuples. The
// shuffle-decode hot path runs through the columnar group kernel: rows are
// hashed column-wise and the group table converts into the relation with
// its stored hashes, never re-hashing tuple-at-a-time.
func (b *ColBatch) ToRelation() *mring.Relation {
	return b.GroupSum(b.Schema).ToRelation()
}

// Encode serializes the batch into a compact binary columnar layout. The
// format is self-describing: schema, column kinds, then per-column value
// arrays, then multiplicities. It is the wire format of the simulated
// cluster's shuffles; its length measures network traffic.
func (b *ColBatch) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(b.Schema)))
	for i, name := range b.Schema {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = append(buf, byte(b.Cols[i].Kind))
	}
	n := b.Len()
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := range b.Cols {
		c := &b.Cols[i]
		switch c.Kind {
		case mring.KInt:
			for _, v := range c.Ints {
				buf = binary.AppendVarint(buf, v)
			}
		case mring.KFloat:
			for _, v := range c.Flts {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		default:
			for _, v := range c.Strs {
				buf = binary.AppendUvarint(buf, uint64(len(v)))
				buf = append(buf, v...)
			}
		}
	}
	for _, m := range b.Mults {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	}
	return buf
}

// Decode deserializes a batch produced by Encode.
func Decode(buf []byte) (*ColBatch, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("pool: truncated batch at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	nc, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Every column header costs at least two bytes (name-length uvarint +
	// kind byte); bounding nc by the remaining input keeps hostile counts
	// from demanding huge allocations before the truncation is noticed.
	if nc > uint64(len(buf)-pos)/2 {
		return nil, fmt.Errorf("pool: column count %d exceeds input", nc)
	}
	schema := make(mring.Schema, nc)
	kinds := make([]mring.Kind, nc)
	for i := 0; i < int(nc); i++ {
		ln, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(buf)-pos) || pos+int(ln)+1 > len(buf) {
			return nil, fmt.Errorf("pool: truncated column header")
		}
		schema[i] = string(buf[pos : pos+int(ln)])
		pos += int(ln)
		kinds[i] = mring.Kind(buf[pos])
		if kinds[i] > mring.KString {
			return nil, fmt.Errorf("pool: invalid column kind %d", kinds[i])
		}
		pos++
	}
	nr, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Each row costs at least 8 bytes for its multiplicity alone.
	if nr > uint64(len(buf)-pos)/8 {
		return nil, fmt.Errorf("pool: row count %d exceeds input", nr)
	}
	b := NewColBatch(schema, kinds)
	n := int(nr)
	for i := range b.Cols {
		c := &b.Cols[i]
		switch c.Kind {
		case mring.KInt:
			c.Ints = make([]int64, n)
			for j := 0; j < n; j++ {
				v, w := binary.Varint(buf[pos:])
				if w <= 0 {
					return nil, fmt.Errorf("pool: truncated int column")
				}
				pos += w
				c.Ints[j] = v
			}
		case mring.KFloat:
			c.Flts = make([]float64, n)
			for j := 0; j < n; j++ {
				if pos+8 > len(buf) {
					return nil, fmt.Errorf("pool: truncated float column")
				}
				c.Flts[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
				pos += 8
			}
		default:
			c.Strs = make([]string, n)
			for j := 0; j < n; j++ {
				ln, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if ln > uint64(len(buf)-pos) {
					return nil, fmt.Errorf("pool: truncated string column")
				}
				c.Strs[j] = string(buf[pos : pos+int(ln)])
				pos += int(ln)
			}
		}
	}
	b.Mults = make([]float64, n)
	for j := 0; j < n; j++ {
		if pos+8 > len(buf) {
			return nil, fmt.Errorf("pool: truncated multiplicities")
		}
		b.Mults[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	}
	return b, nil
}

// MergeInto adds every row of the batch into r (bag union in place) — the
// receive side of a byte-shipped shuffle fragment. Rows land in batch
// order, matching the order a Foreach-driven Merge of the source relation
// would have used.
func (b *ColBatch) MergeInto(r *mring.Relation) {
	t := make(mring.Tuple, len(b.Cols))
	for i, m := range b.Mults {
		for j := range b.Cols {
			t[j] = b.Cols[j].value(i)
		}
		r.Add(t, m)
	}
}

// EncodeRowFormat serializes tuple-at-a-time (row-oriented) for the
// columnar-vs-row serialization ablation; it is typically larger and
// slower than Encode for wide batches.
func EncodeRowFormat(r *mring.Relation) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(r.Len()))
	r.Foreach(func(t mring.Tuple, m float64) {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = t.EncodeKey(buf)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	})
	return buf
}
