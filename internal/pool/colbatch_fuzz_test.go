package pool

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mring"
)

// fuzzSeedBatches are valid wire images seeding the corpus: empty,
// single-kind, and mixed batches with adversarial values.
func fuzzSeedBatches() []*ColBatch {
	empty := NewColBatch(mring.Schema{"a"}, []mring.Kind{mring.KInt})
	ints := NewColBatch(mring.Schema{"a", "b"}, []mring.Kind{mring.KInt, mring.KInt})
	ints.Append(mring.Tuple{mring.Int(-1), mring.Int(1 << 60)}, 2)
	ints.Append(mring.Tuple{mring.Int(0), mring.Int(-(1 << 53))}, -0.5)
	mixed := NewColBatch(mring.Schema{"i", "f", "s"},
		[]mring.Kind{mring.KInt, mring.KFloat, mring.KString})
	mixed.Append(mring.Tuple{mring.Int(7), mring.Float(math.NaN()), mring.Str("")}, 1)
	mixed.Append(mring.Tuple{mring.Int(-7), mring.Float(math.Inf(-1)), mring.Str("x\x00y")}, 3.25)
	return []*ColBatch{empty, ints, mixed}
}

func batchesEqual(a, b *ColBatch) bool {
	if !a.Schema.Equal(b.Schema) || a.Len() != b.Len() || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		ca, cb := &a.Cols[i], &b.Cols[i]
		if ca.Kind != cb.Kind || ca.Len() != cb.Len() {
			return false
		}
		for j := 0; j < ca.Len(); j++ {
			va, vb := ca.value(j), cb.value(j)
			// Bitwise: NaNs round-trip, -0 stays -0.
			if va.K != vb.K || va.I != vb.I || va.S != vb.S ||
				math.Float64bits(va.F) != math.Float64bits(vb.F) {
				return false
			}
		}
	}
	for i := range a.Mults {
		if math.Float64bits(a.Mults[i]) != math.Float64bits(b.Mults[i]) {
			return false
		}
	}
	return true
}

// FuzzColBatchDecode feeds arbitrary bytes to the shuffle-wire decoder:
// Decode must return a batch or an error, never panic or over-allocate,
// and any batch it accepts must re-encode and re-decode to the same
// contents (the decoder's output is always a valid wire image).
func FuzzColBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	for _, b := range fuzzSeedBatches() {
		f.Add(b.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(data)
		if err != nil {
			return
		}
		enc := b.Encode()
		b2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if !batchesEqual(b, b2) {
			t.Fatalf("re-encode round-trip diverged:\n first: %+v\n again: %+v", b, b2)
		}
	})
}

// TestEncodeDecodeRoundTrip is the deterministic counterpart of the fuzz
// round-trip property, byte-exact on the wire image too.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, b := range fuzzSeedBatches() {
		enc := b.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode): %v", err)
		}
		if !batchesEqual(b, got) {
			t.Fatalf("round trip diverged:\n in:  %+v\n out: %+v", b, got)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("re-encode is not byte-identical")
		}
	}
}

// TestDecodeRejectsHostileCounts pins the allocation guards: headers
// claiming more columns, rows, or string bytes than the input holds are
// rejected before any large allocation.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	cases := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // nc = 2^63
		{0x01, 0xff, 0xff, 0xff, 0x07, 0x61},                         // name length huge
		{0x01, 0x01, 0x61, 0x05},                                     // kind byte 5 invalid
		// one int column "a", row count 2^62.
		{0x01, 0x01, 0x61, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f},
		// one string column "a", one row, string length 2^62.
		{0x01, 0x01, 0x61, 0x02, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f,
			0, 0, 0, 0, 0, 0, 0, 0},
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: hostile input accepted", i)
		}
	}
}
