package pool

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mring"
)

// The overlay property test drives an Overlay and a plain mring.Relation
// through the same interleaved Add/Merge sequence and requires them to
// agree on Get, Len, Foreach contents, and ToRelation — with Compact and
// Segments thrown in mid-sequence, since neither may change the logical
// contents. Multiplicities are dyadic (±0.25 steps) so float sums are
// exact and the comparison needs no tolerance beyond the data model's
// own Eps cancellation.

func randomOverlayTuple(rng *rand.Rand) mring.Tuple {
	return mring.Tuple{
		mring.Int(int64(rng.Intn(6))),
		mring.Str(fmt.Sprintf("s%d", rng.Intn(3))),
	}
}

func dyadicMult(rng *rand.Rand) float64 {
	m := float64(rng.Intn(17)-8) / 4
	if m == 0 {
		m = 1
	}
	return m
}

func runOverlayProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	schema := mring.Schema{"k", "s"}
	for round := 0; round < 30; round++ {
		// Seed a base with unique rows via a relation, as production does.
		seedRel := mring.NewRelation(schema)
		for i := 0; i < rng.Intn(20); i++ {
			seedRel.Add(randomOverlayTuple(rng), dyadicMult(rng))
		}
		base, ok := TryFromRelation(seedRel)
		if !ok {
			t.Fatalf("seed %d round %d: fixed-kind seed not columnarizable", seed, round)
		}
		ov := NewOverlay(base)
		model := mring.NewRelation(schema)
		model.Merge(seedRel)

		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				tp, m := randomOverlayTuple(rng), dyadicMult(rng)
				ov.Add(tp, m)
				model.Add(tp, m)
			case 2:
				batch := mring.NewRelation(schema)
				for i := 0; i < rng.Intn(5); i++ {
					batch.Add(randomOverlayTuple(rng), dyadicMult(rng))
				}
				ov.Merge(batch)
				model.Merge(batch)
			case 3:
				if !ov.Compact() {
					t.Fatalf("seed %d round %d: Compact failed on fixed-kind delta", seed, round)
				}
			default:
				b, d, ok := ov.Segments()
				if !ok {
					t.Fatalf("seed %d round %d: Segments failed on fixed-kind overlay", seed, round)
				}
				scan := mring.NewRelation(schema)
				b.MergeInto(scan)
				if d != nil {
					d.MergeInto(scan)
				}
				if !scan.Equal(model) {
					t.Fatalf("seed %d round %d op %d: segment scan %v != model %v",
						seed, round, op, scan, model)
				}
			}

			if ov.Len() != model.Len() {
				t.Fatalf("seed %d round %d op %d: Len %d != model %d",
					seed, round, op, ov.Len(), model.Len())
			}
			// Get agrees on present tuples and on a probe that may be absent.
			probe := randomOverlayTuple(rng)
			if g, w := ov.Get(probe), model.Get(probe); g != w {
				t.Fatalf("seed %d round %d op %d: Get(%v) = %v, model %v",
					seed, round, op, probe, g, w)
			}
			seen := mring.NewRelation(schema)
			ov.Foreach(func(tp mring.Tuple, m float64) {
				if w := model.Get(tp); m != w {
					t.Fatalf("seed %d round %d op %d: Foreach %v -> %v, model %v",
						seed, round, op, tp, m, w)
				}
				seen.Add(tp, m)
			})
			if !seen.Equal(model) {
				t.Fatalf("seed %d round %d op %d: Foreach visited %v, model %v",
					seed, round, op, seen, model)
			}
			if !ov.ToRelation().Equal(model) {
				t.Fatalf("seed %d round %d op %d: ToRelation != model", seed, round, op)
			}
		}
	}
}

func TestOverlayMatchesRelationModel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOverlayProperty(t, seed)
		})
	}
}

// TestOverlayCompactRejectsKindMismatch pins the strict no-coercion rule:
// a delta tuple whose kinds differ from the base columns blocks Compact
// and Segments (callers fall back to the row path), but the logical
// contents stay correct throughout.
func TestOverlayCompactRejectsKindMismatch(t *testing.T) {
	schema := mring.Schema{"k"}
	seedRel := mring.NewRelation(schema)
	seedRel.Add(mring.Tuple{mring.Int(1)}, 1)
	base, _ := TryFromRelation(seedRel)
	ov := NewOverlay(base)
	ov.Add(mring.Tuple{mring.Str("oops")}, 1)
	if ov.Compact() {
		t.Fatalf("Compact accepted a kind-mismatched delta")
	}
	if _, _, ok := ov.Segments(); ok {
		t.Fatalf("Segments accepted a kind-mismatched delta")
	}
	if got := ov.Get(mring.Tuple{mring.Str("oops")}); got != 1 {
		t.Fatalf("mismatched delta tuple lost: Get = %v", got)
	}
	if ov.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ov.Len())
	}
}

// TestMirrorInvalidatesOnMutation pins the mirror lifecycle: MirrorOf
// caches per content version, any relation mutation invalidates, and
// mixed-kind relations cache the negative answer.
func TestMirrorInvalidatesOnMutation(t *testing.T) {
	schema := mring.Schema{"k"}
	r := mring.NewRelation(schema)
	r.Add(mring.Tuple{mring.Int(1)}, 1)
	ov1 := MirrorOf(r)
	if ov1 == nil {
		t.Fatalf("no mirror for a fixed-kind relation")
	}
	if MirrorOf(r) != ov1 {
		t.Fatalf("mirror not cached across calls")
	}
	r.Add(mring.Tuple{mring.Int(2)}, 1)
	ov2 := MirrorOf(r)
	if ov2 == ov1 {
		t.Fatalf("stale mirror survived a mutation")
	}
	if ov2.Base().Len() != 2 {
		t.Fatalf("rebuilt mirror has %d rows, want 2", ov2.Base().Len())
	}
	// In-place multiplicity update must invalidate too.
	r.Add(mring.Tuple{mring.Int(1)}, 1)
	if MirrorOf(r) == ov2 {
		t.Fatalf("stale mirror survived an in-place multiplicity update")
	}

	r.Add(mring.Tuple{mring.Str("mixed")}, 1)
	if MirrorOf(r) != nil {
		t.Fatalf("mixed-kind relation produced a mirror")
	}
	if MirrorOf(r) != nil {
		t.Fatalf("negative mirror answer not stable")
	}
}
