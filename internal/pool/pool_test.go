package pool

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mring"
)

func tup(vs ...int) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		t[i] = mring.Int(int64(v))
	}
	return t
}

func TestPoolBasicOps(t *testing.T) {
	p := New(mring.Schema{"a", "b"})
	p.Add(tup(1, 2), 3)
	p.Add(tup(1, 2), 2)
	if got := p.Get(tup(1, 2)); got != 5 {
		t.Fatalf("Get = %g, want 5", got)
	}
	p.Add(tup(1, 2), -5)
	if p.Len() != 0 || p.Get(tup(1, 2)) != 0 {
		t.Fatal("zero-value record should be removed")
	}
	p.Set(tup(3, 4), 7)
	p.Set(tup(3, 4), 1)
	if got := p.Get(tup(3, 4)); got != 1 {
		t.Fatalf("Set = %g, want 1", got)
	}
	p.Set(tup(3, 4), 0)
	if p.Len() != 0 {
		t.Fatal("Set(0) should delete")
	}
}

func TestPoolFreeListReuse(t *testing.T) {
	p := New(mring.Schema{"a"})
	for i := 0; i < 100; i++ {
		p.Add(tup(i), 1)
	}
	for i := 0; i < 100; i++ {
		p.Add(tup(i), -1)
	}
	if p.Len() != 0 {
		t.Fatal("pool should be empty")
	}
	recsBefore := len(p.recs)
	for i := 100; i < 200; i++ {
		p.Add(tup(i), 1)
	}
	if len(p.recs) != recsBefore {
		t.Fatalf("free slots not reused: %d records allocated, had %d", len(p.recs), recsBefore)
	}
	for i := 100; i < 200; i++ {
		if p.Get(tup(i)) != 1 {
			t.Fatalf("lost record %d after reuse", i)
		}
	}
}

func TestPoolGrowRetainsRecords(t *testing.T) {
	p := New(mring.Schema{"a"})
	const n = 10_000
	for i := 0; i < n; i++ {
		p.Add(tup(i), float64(i+1))
	}
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for i := 0; i < n; i += 997 {
		if got := p.Get(tup(i)); got != float64(i+1) {
			t.Fatalf("Get(%d) = %g after growth", i, got)
		}
	}
}

func TestSecondaryIndexSlice(t *testing.T) {
	p := New(mring.Schema{"a", "b"})
	idx := p.AddSecondaryIndex("by_a", []string{"a"})
	for a := 0; a < 10; a++ {
		for b := 0; b < 5; b++ {
			p.Add(tup(a, b), float64(a*10+b+1))
		}
	}
	var got int
	p.Slice(idx, tup(3), func(k mring.Tuple, v float64) {
		if k[0].I != 3 {
			t.Fatalf("slice returned wrong key %v", k)
		}
		got++
	})
	if got != 5 {
		t.Fatalf("slice visited %d records, want 5", got)
	}
	// After deleting records, the slice must shrink accordingly.
	p.Add(tup(3, 0), -31)
	p.Add(tup(3, 1), -32)
	got = 0
	p.Slice(idx, tup(3), func(mring.Tuple, float64) { got++ })
	if got != 3 {
		t.Fatalf("slice after delete visited %d, want 3", got)
	}
}

func TestSecondaryIndexAfterGrowth(t *testing.T) {
	p := New(mring.Schema{"a", "b"})
	idx := p.AddSecondaryIndex("by_a", []string{"a"})
	const n = 3000
	for i := 0; i < n; i++ {
		p.Add(tup(i%50, i), 1)
	}
	count := 0
	p.Slice(idx, tup(7), func(mring.Tuple, float64) { count++ })
	if count != n/50 {
		t.Fatalf("slice after growth visited %d, want %d", count, n/50)
	}
}

func TestAddSecondaryIndexAfterInsertPanics(t *testing.T) {
	p := New(mring.Schema{"a"})
	p.Add(tup(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.AddSecondaryIndex("late", []string{"a"})
}

func TestSliceUnregisteredIndexPanics(t *testing.T) {
	p := New(mring.Schema{"a"})
	other := New(mring.Schema{"a"})
	idx := other.AddSecondaryIndex("x", []string{"a"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Slice(idx, tup(1), func(mring.Tuple, float64) {})
}

// Property: a pool behaves exactly like a multiset relation under random
// add/set/delete sequences, including with a secondary index attached.
func TestQuickPoolMatchesRelation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(mring.Schema{"a", "b"})
		p.AddSecondaryIndex("by_a", []string{"a"})
		ref := mring.NewRelation(mring.Schema{"a", "b"})
		for i := 0; i < 300; i++ {
			k := tup(rng.Intn(8), rng.Intn(8))
			switch rng.Intn(3) {
			case 0:
				d := float64(rng.Intn(5) - 2)
				p.Add(k, d)
				ref.Add(k, d)
			case 1:
				v := float64(rng.Intn(4))
				p.Set(k, v)
				ref.Set(k, v)
			default:
				if p.Get(k) != ref.Get(k) {
					return false
				}
			}
		}
		return p.ToRelation().Equal(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolClearAndReload(t *testing.T) {
	p := New(mring.Schema{"a"})
	idx := p.AddSecondaryIndex("by_a", []string{"a"})
	p.Add(tup(1), 2)
	p.Clear()
	if p.Len() != 0 {
		t.Fatal("Clear failed")
	}
	r := mring.NewRelation(mring.Schema{"a"})
	r.Add(tup(5), 3)
	p.FromRelation(r)
	if p.Get(tup(5)) != 3 {
		t.Fatal("FromRelation failed")
	}
	n := 0
	p.Slice(idx, tup(5), func(mring.Tuple, float64) { n++ })
	if n != 1 {
		t.Fatal("secondary index broken after Clear/FromRelation")
	}
}

func TestColBatchRoundTrip(t *testing.T) {
	b := NewColBatch(mring.Schema{"a", "f", "s"}, []mring.Kind{mring.KInt, mring.KFloat, mring.KString})
	b.Append(mring.Tuple{mring.Int(1), mring.Float(2.5), mring.Str("x")}, 2)
	b.Append(mring.Tuple{mring.Int(-7), mring.Float(0), mring.Str("")}, -1.5)
	if b.Len() != 2 {
		t.Fatal("Len wrong")
	}
	enc := b.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Schema.Equal(b.Schema) || dec.Len() != 2 {
		t.Fatalf("decode mismatch: %v", dec.Schema)
	}
	for i := 0; i < 2; i++ {
		t1, m1 := b.Row(i)
		t2, m2 := dec.Row(i)
		if !t1.Equal(t2) || m1 != m2 {
			t.Fatalf("row %d mismatch: %v/%g vs %v/%g", i, t1, m1, t2, m2)
		}
	}
}

func TestColBatchDecodeTruncated(t *testing.T) {
	b := NewColBatch(mring.Schema{"a"}, []mring.Kind{mring.KInt})
	b.Append(tup(42), 1)
	enc := b.Encode()
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
}

func TestColBatchFilterInt(t *testing.T) {
	b := NewColBatch(mring.Schema{"a", "b"}, []mring.Kind{mring.KInt, mring.KInt})
	for i := 0; i < 10; i++ {
		b.Append(tup(i, i*i), 1)
	}
	f := b.FilterInt("a", func(v int64) bool { return v >= 7 })
	if f.Len() != 3 {
		t.Fatalf("filter kept %d rows, want 3", f.Len())
	}
	tp, _ := f.Row(0)
	if tp[0].I != 7 || tp[1].I != 49 {
		t.Fatalf("filter row wrong: %v", tp)
	}
}

func TestColBatchRelationConversions(t *testing.T) {
	r := mring.NewRelation(mring.Schema{"a", "b"})
	r.Add(tup(1, 2), 3)
	r.Add(tup(4, 5), -1)
	b := FromRelation(r)
	back := b.ToRelation()
	if !back.Equal(r) {
		t.Fatalf("round trip: %v vs %v", back, r)
	}
}

// Property: Encode/Decode round-trips arbitrary relations.
func TestQuickColBatchRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := mring.NewRelation(mring.Schema{"a", "b"})
		for i := 0; i < rng.Intn(50); i++ {
			r.Add(tup(rng.Intn(100), rng.Intn(100)), float64(rng.Intn(9)-4))
		}
		b := FromRelation(r)
		dec, err := Decode(b.Encode())
		if err != nil {
			return false
		}
		return dec.ToRelation().Equal(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRowFormatLargerForWideRows(t *testing.T) {
	// Columnar encoding should not be larger than row encoding for a
	// homogeneous integer batch (shared headers amortize).
	r := mring.NewRelation(mring.Schema{"a", "b", "c", "d"})
	for i := 0; i < 1000; i++ {
		r.Add(tup(i, i%10, i%5, i%2), 1)
	}
	colSize := len(FromRelation(r).Encode())
	rowSize := len(EncodeRowFormat(r))
	if colSize >= rowSize {
		t.Fatalf("columnar %dB not smaller than row %dB", colSize, rowSize)
	}
}
