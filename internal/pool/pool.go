// Package pool implements the specialized data structures of Sec. 5.2:
// record pools storing fixed-format records in main memory with free-list
// reuse, multi-indexed by one unique hash index (get/update/delete) and any
// number of non-unique hash indexes (slice). Records keep back references
// to their index buckets so updates and deletes avoid re-hashing, as in
// Fig. 6. The package also provides columnar batch layouts and the
// row/column transformers used for serialization (Sec. 5.2.2).
package pool

import (
	"fmt"

	"repro/internal/mring"
)

const (
	minBuckets    = 16
	maxLoadFactor = 0.75
	growthFactor  = 2
	tombstoneSlot = -2
	emptySlot     = -1
)

// Record is one pooled record: key fields (the view schema) and one value
// field (the generalized multiplicity).
type Record struct {
	Key mring.Tuple
	Val float64
	// hash caches the key hash (the "H" field of Fig. 6).
	hash uint64
	// next links records in the unique index bucket chain.
	next int32
	// idxNext links records in each secondary index bucket chain; one slot
	// per secondary index ("I1", "I2", ... of Fig. 6).
	idxNext []int32
	// live marks occupied pool slots (false = on the free list).
	live bool
}

// SecondaryIndex is a non-unique hash index over a subset of key columns.
// It clusters records sharing the same partial key to shorten slices.
type SecondaryIndex struct {
	name    string
	keyCols []int // positions into Record.Key
	buckets []int32
	mask    uint64
	size    int
}

// Pool is a record pool with a unique hash index over the full key.
type Pool struct {
	schema  mring.Schema
	recs    []Record
	free    []int32 // free slot list
	buckets []int32 // unique index buckets (head record per bucket)
	mask    uint64
	size    int
	second  []*SecondaryIndex
	// Accesses counts record touches for the cache-locality experiment.
	Accesses int64
}

// New creates an empty pool for the given schema.
func New(schema mring.Schema) *Pool {
	p := &Pool{
		schema:  schema.Clone(),
		buckets: newBuckets(minBuckets),
		mask:    minBuckets - 1,
	}
	return p
}

func newBuckets(n int) []int32 {
	b := make([]int32, n)
	for i := range b {
		b[i] = emptySlot
	}
	return b
}

// Schema returns the pool's key schema.
func (p *Pool) Schema() mring.Schema { return p.schema }

// Len returns the number of live records.
func (p *Pool) Len() int { return p.size }

// AddSecondaryIndex registers a non-unique index over the named columns.
// It must be called before records are inserted; the compiler's access
// pattern analysis decides which indexes exist (Sec. 5.2.1).
func (p *Pool) AddSecondaryIndex(name string, cols []string) *SecondaryIndex {
	if p.size > 0 {
		panic("pool: secondary indexes must be added before inserts")
	}
	idx := &SecondaryIndex{
		name:    name,
		keyCols: p.schema.Positions(cols),
		buckets: newBuckets(minBuckets),
		mask:    minBuckets - 1,
	}
	p.second = append(p.second, idx)
	return idx
}

// SecondaryIndexes returns the registered secondary indexes.
func (p *Pool) SecondaryIndexes() []*SecondaryIndex { return p.second }

// Get returns the value stored under key (0 when absent).
func (p *Pool) Get(key mring.Tuple) float64 {
	h := key.Hash()
	for i := p.buckets[h&p.mask]; i != emptySlot; i = p.recs[i].next {
		p.Accesses++
		r := &p.recs[i]
		if r.hash == h && r.Key.Equal(key) {
			return r.Val
		}
	}
	return 0
}

// Add adds delta to the value under key, inserting a record when absent
// and removing it when the value reaches zero (multiset semantics).
func (p *Pool) Add(key mring.Tuple, delta float64) {
	if delta == 0 {
		return
	}
	h := key.Hash()
	b := h & p.mask
	var prev int32 = emptySlot
	for i := p.buckets[b]; i != emptySlot; i = p.recs[i].next {
		p.Accesses++
		r := &p.recs[i]
		if r.hash == h && r.Key.Equal(key) {
			r.Val += delta
			if r.Val > -mring.Eps && r.Val < mring.Eps {
				p.removeRecord(i, prev, b)
			}
			return
		}
		prev = i
	}
	p.insert(key, delta, h)
}

// Set forces the value under key (removing on zero).
func (p *Pool) Set(key mring.Tuple, val float64) {
	h := key.Hash()
	b := h & p.mask
	var prev int32 = emptySlot
	for i := p.buckets[b]; i != emptySlot; i = p.recs[i].next {
		p.Accesses++
		r := &p.recs[i]
		if r.hash == h && r.Key.Equal(key) {
			if val > -mring.Eps && val < mring.Eps {
				p.removeRecord(i, prev, b)
				return
			}
			r.Val = val
			return
		}
		prev = i
	}
	if val > -mring.Eps && val < mring.Eps {
		return
	}
	p.insert(key, val, h)
}

func (p *Pool) insert(key mring.Tuple, val float64, h uint64) {
	var slot int32
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
		r := &p.recs[slot]
		r.Key = key.Clone()
		r.Val = val
		r.hash = h
		r.live = true
	} else {
		slot = int32(len(p.recs))
		p.recs = append(p.recs, Record{
			Key:     key.Clone(),
			Val:     val,
			hash:    h,
			live:    true,
			idxNext: make([]int32, len(p.second)),
		})
	}
	rec := &p.recs[slot]
	if rec.idxNext == nil || len(rec.idxNext) != len(p.second) {
		rec.idxNext = make([]int32, len(p.second))
	}
	b := h & p.mask
	rec.next = p.buckets[b]
	p.buckets[b] = slot
	for si, idx := range p.second {
		ih := rec.Key.HashCols(idx.keyCols)
		ib := ih & idx.mask
		rec.idxNext[si] = idx.buckets[ib]
		idx.buckets[ib] = slot
		idx.size++
	}
	p.size++
	if float64(p.size) > maxLoadFactor*float64(len(p.buckets)) {
		p.grow()
	}
}

func (p *Pool) removeRecord(i, prev int32, bucket uint64) {
	r := &p.recs[i]
	if prev == emptySlot {
		p.buckets[bucket] = r.next
	} else {
		p.recs[prev].next = r.next
	}
	// Unlink from secondary indexes (walk the bucket chain; back
	// references give us the bucket without re-hashing the full key).
	for si, idx := range p.second {
		ih := r.Key.HashCols(idx.keyCols)
		ib := ih & idx.mask
		if idx.buckets[ib] == i {
			idx.buckets[ib] = r.idxNext[si]
		} else {
			for j := idx.buckets[ib]; j != emptySlot; j = p.recs[j].idxNext[si] {
				if p.recs[j].idxNext[si] == i {
					p.recs[j].idxNext[si] = r.idxNext[si]
					break
				}
			}
		}
		idx.size--
	}
	r.live = false
	r.Key = nil
	p.free = append(p.free, i)
	p.size--
}

func (p *Pool) grow() {
	n := len(p.buckets) * growthFactor
	p.buckets = newBuckets(n)
	p.mask = uint64(n - 1)
	for _, idx := range p.second {
		idx.buckets = newBuckets(n)
		idx.mask = uint64(n - 1)
	}
	for i := range p.recs {
		r := &p.recs[i]
		if !r.live {
			continue
		}
		b := r.hash & p.mask
		r.next = p.buckets[b]
		p.buckets[b] = int32(i)
		for si, idx := range p.second {
			ih := r.Key.HashCols(idx.keyCols)
			ib := ih & idx.mask
			r.idxNext[si] = idx.buckets[ib]
			idx.buckets[ib] = int32(i)
		}
	}
}

// Foreach visits every live record.
func (p *Pool) Foreach(f func(key mring.Tuple, val float64)) {
	for i := range p.recs {
		r := &p.recs[i]
		if r.live {
			p.Accesses++
			f(r.Key, r.Val)
		}
	}
}

// Slice visits records whose projection onto the index columns equals
// partial. The index must have been registered with AddSecondaryIndex.
func (p *Pool) Slice(idx *SecondaryIndex, partial mring.Tuple, f func(key mring.Tuple, val float64)) {
	si := -1
	for i, s := range p.second {
		if s == idx {
			si = i
			break
		}
	}
	if si < 0 {
		panic(fmt.Sprintf("pool: index %q not registered on this pool", idx.name))
	}
	h := partial.Hash()
	for i := idx.buckets[h&idx.mask]; i != emptySlot; i = p.recs[i].idxNext[si] {
		p.Accesses++
		r := &p.recs[i]
		if r.Key.Project(idx.keyCols).Equal(partial) {
			f(r.Key, r.Val)
		}
	}
}

// Clear removes all records, retaining allocated capacity.
func (p *Pool) Clear() {
	p.recs = p.recs[:0]
	p.free = p.free[:0]
	p.buckets = newBuckets(minBuckets)
	p.mask = minBuckets - 1
	for _, idx := range p.second {
		idx.buckets = newBuckets(minBuckets)
		idx.mask = minBuckets - 1
		idx.size = 0
	}
	p.size = 0
}

// ToRelation copies the pool contents into a generalized multiset relation.
func (p *Pool) ToRelation() *mring.Relation {
	r := mring.NewRelation(p.schema)
	p.Foreach(func(k mring.Tuple, v float64) { r.Set(k, v) })
	return r
}

// FromRelation bulk-loads the pool from a relation (after Clear).
func (p *Pool) FromRelation(r *mring.Relation) {
	p.Clear()
	r.Foreach(func(t mring.Tuple, m float64) { p.Set(t, m) })
}
