package pool

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/mring"
)

// The kernel property tests pin every vectorized primitive to its
// row-wise oracle: FilterPred to expr.EvalCmp over materialized row
// values, HashSel to Tuple.HashCols, FloatsSel to Value.AsFloat, and
// FoldSel to a tuple-at-a-time group-table fold. Batches draw from the
// identity edge cases — NaN floats, integers beyond 2^53, negative
// zero, and strings that parse as numbers — and selections include
// empty and single-row vectors.

var predCmpOps = [...]expr.CmpOp{
	PEq: expr.CEq, PNe: expr.CNe, PLt: expr.CLt,
	PLe: expr.CLe, PGt: expr.CGt, PGe: expr.CGe,
}

// randomKernelBatch builds a batch with fixed column kinds
// (int, float, string) over adversarial values.
func randomKernelBatch(rng *rand.Rand, n int) *ColBatch {
	schema := mring.Schema{"i", "f", "s"}
	kinds := []mring.Kind{mring.KInt, mring.KFloat, mring.KString}
	b := NewColBatch(schema, kinds)
	for r := 0; r < n; r++ {
		var iv int64
		switch rng.Intn(4) {
		case 0:
			iv = int64(rng.Intn(7)) - 3
		case 1:
			iv = (int64(1) << 53) + int64(rng.Intn(3)) // beyond float64 exactness
		case 2:
			iv = -((int64(1) << 53) + int64(rng.Intn(3)))
		default:
			iv = int64(rng.Intn(100))
		}
		var fv float64
		switch rng.Intn(5) {
		case 0:
			fv = math.NaN()
		case 1:
			fv = math.Copysign(0, -1)
		case 2:
			fv = float64(rng.Intn(7)) - 3
		case 3:
			fv = math.Inf(1 - 2*rng.Intn(2))
		default:
			fv = float64(rng.Intn(9))/4 - 1
		}
		var sv string
		switch rng.Intn(3) {
		case 0:
			sv = fmt.Sprintf("k%d", rng.Intn(4))
		case 1:
			sv = fmt.Sprintf("%d", rng.Intn(5)) // parses as a number
		default:
			sv = ""
		}
		m := float64(rng.Intn(9) - 4)
		b.Append(mring.Tuple{mring.Int(iv), mring.Float(fv), mring.Str(sv)}, m)
	}
	return b
}

// randomLit draws a literal spanning all kinds, including NaN and
// beyond-2^53 values that sit on the int/float comparison edge.
func randomLit(rng *rand.Rand) mring.Value {
	switch rng.Intn(7) {
	case 0:
		return mring.Int(int64(rng.Intn(7)) - 3)
	case 1:
		return mring.Int((int64(1) << 53) + int64(rng.Intn(3)))
	case 2:
		return mring.Float(math.NaN())
	case 3:
		return mring.Float(float64(rng.Intn(9))/4 - 1)
	case 4:
		return mring.Float(float64((int64(1) << 53) + 1))
	case 5:
		return mring.Str(fmt.Sprintf("k%d", rng.Intn(4)))
	default:
		return mring.Str(fmt.Sprintf("%d", rng.Intn(5)))
	}
}

// randomSel draws nil (all rows), an empty selection, or a random
// ascending subset.
func randomSel(rng *rand.Rand, n int) Sel {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return Sel{}
	default:
		var s Sel
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				s = append(s, int32(i))
			}
		}
		return s
	}
}

func selRows(b *ColBatch, sel Sel) []int32 {
	if sel != nil {
		return sel
	}
	all := NewSel(b.Len())
	return all
}

func TestFilterPredMatchesRowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 300; round++ {
		b := randomKernelBatch(rng, rng.Intn(24))
		p := Pred{
			Col: rng.Intn(3),
			Op:  PredOp(rng.Intn(6)),
			Lit: randomLit(rng),
		}
		sel := randomSel(rng, b.Len())
		var want []int32
		for _, i := range selRows(b, sel) {
			row, _ := b.Row(int(i))
			if expr.EvalCmp(predCmpOps[p.Op], row[p.Col], p.Lit) {
				want = append(want, i)
			}
		}
		cp := sel
		if sel != nil { // copy, preserving nil-vs-empty
			cp = append(make(Sel, 0, len(sel)), sel...)
		}
		got := b.FilterPred(p, cp)
		if len(got) != len(want) {
			t.Fatalf("round %d pred=%+v sel=%v: %d survivors, oracle %d",
				round, p, sel, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("round %d pred=%+v: survivor %d is row %d, oracle row %d",
					round, p, k, got[k], want[k])
			}
		}
	}
}

// TestFilterPredRefinesInPlace pins the no-allocation contract: the
// survivors land in the prefix of the selection passed in.
func TestFilterPredRefinesInPlace(t *testing.T) {
	b := NewColBatch(mring.Schema{"x"}, []mring.Kind{mring.KInt})
	for i := 0; i < 10; i++ {
		b.Append(mring.Tuple{mring.Int(int64(i))}, 1)
	}
	sel := NewSel(10)
	out := b.FilterPred(Pred{Col: 0, Op: PGe, Lit: mring.Int(5)}, sel)
	if &out[0] != &sel[0] {
		t.Fatalf("FilterPred allocated a new selection")
	}
	if len(out) != 5 || out[0] != 5 || out[4] != 9 {
		t.Fatalf("survivors = %v, want [5..9]", out)
	}
}

func TestFloatsSelMatchesAsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for round := 0; round < 200; round++ {
		b := randomKernelBatch(rng, rng.Intn(20))
		col := rng.Intn(3)
		rows := selRows(b, nil)
		sel := randomSel(rng, b.Len())
		if sel == nil {
			sel = rows
		}
		var dst []float64
		if rng.Intn(2) == 0 {
			dst = make([]float64, rng.Intn(30)) // exercise reuse/regrow
		}
		got := b.FloatsSel(col, sel, dst)
		if len(got) != len(sel) {
			t.Fatalf("round %d: %d values for %d selected rows", round, len(got), len(sel))
		}
		for k, i := range sel {
			row, _ := b.Row(int(i))
			want := row[col].AsFloat()
			if got[k] != want && !(math.IsNaN(got[k]) && math.IsNaN(want)) {
				t.Fatalf("round %d col %d row %d: %v, AsFloat oracle %v",
					round, col, i, got[k], want)
			}
		}
	}
}

func TestMultsSelGathers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := randomKernelBatch(rng, 16)
	sel := Sel{1, 5, 11}
	got := b.MultsSel(sel, nil)
	for k, i := range sel {
		if got[k] != b.Mults[i] {
			t.Fatalf("MultsSel[%d] = %g, want %g", k, got[k], b.Mults[i])
		}
	}
	if got := b.MultsSel(Sel{}, nil); len(got) != 0 {
		t.Fatalf("empty selection gathered %v", got)
	}
}

func TestHashSelMatchesRowHashCols(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for round := 0; round < 200; round++ {
		b := randomKernelBatch(rng, rng.Intn(20))
		var pos []int
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				pos = append(pos, i)
			}
		}
		sel := randomSel(rng, b.Len())
		hs := b.HashSel(pos, sel)
		rows := selRows(b, sel)
		if len(hs) != len(rows) {
			t.Fatalf("round %d: %d hashes for %d rows", round, len(hs), len(rows))
		}
		for k, i := range rows {
			row, _ := b.Row(int(i))
			if want := row.HashCols(pos); hs[k] != want {
				t.Fatalf("round %d pos=%v row %d: hash %x, row-wise %x",
					round, pos, i, hs[k], want)
			}
		}
	}
}

// TestFoldSelMatchesRowFold pins the full kernel chain — hash, gather,
// fold — to a tuple-at-a-time fold of the same rows in the same order,
// bit for bit, including under forced hash collisions.
func TestFoldSelMatchesRowFold(t *testing.T) {
	for _, collide := range []bool{false, true} {
		t.Run(fmt.Sprintf("collide=%v", collide), func(t *testing.T) {
			rng := rand.New(rand.NewSource(15))
			for round := 0; round < 150; round++ {
				b := randomKernelBatch(rng, rng.Intn(24))
				var pos []int
				var cols []string
				for i, c := range b.Schema {
					if rng.Intn(2) == 0 {
						pos = append(pos, i)
						cols = append(cols, c)
					}
				}
				sel := randomSel(rng, b.Len())
				if sel == nil {
					sel = NewSel(b.Len())
				}
				ms := b.MultsSel(sel, nil)

				gt := mring.NewGroupTable(mring.Schema(cols))
				ref := mring.NewGroupTable(mring.Schema(cols))
				if collide {
					fn := func(tp mring.Tuple) uint64 { return tp.Hash() & 1 }
					gt.SetHashFnForTest(fn)
					ref.SetHashFnForTest(fn)
				}
				hs := b.HashSel(pos, sel)
				b.FoldSel(gt, pos, sel, hs, ms)
				for k, i := range sel {
					if ms[k] == 0 {
						continue
					}
					row, _ := b.Row(int(i))
					ref.Add(row.Project(pos), ms[k])
				}
				got, want := gt.ToRelation(), ref.ToRelation()
				if got.Len() != want.Len() {
					t.Fatalf("round %d cols=%v: %d groups, oracle %d",
						round, cols, got.Len(), want.Len())
				}
				want.Foreach(func(tp mring.Tuple, m float64) {
					if g := got.Get(tp); g != m {
						t.Fatalf("round %d cols=%v group %v: %v, oracle %v (bitwise)",
							round, cols, tp, g, m)
					}
				})
			}
		})
	}
}

// TestNewSelIdentity pins the trivial selection constructor.
func TestNewSelIdentity(t *testing.T) {
	s := NewSel(4)
	for i, v := range s {
		if int(v) != i {
			t.Fatalf("NewSel(4) = %v", s)
		}
	}
	if len(NewSel(0)) != 0 {
		t.Fatalf("NewSel(0) not empty")
	}
}
