package pool

import (
	"repro/internal/mring"
)

// This file holds the vectorized eval kernels (Sec. 5.2.2): filter a
// predicate over one typed column into a selection vector, gather/multiply
// value columns over a selection, hash selected group keys column-wise,
// and fold the result into a hash-native group table. Each kernel touches
// one contiguous array per pass; eval.Ctx routes covered statements here
// and falls back to the row-wise interpreter otherwise.
//
// Comparison semantics are pinned to the row-wise oracle
// (expr.EvalCmp via mring.Value.Equal/Less), including its edge cases:
// int/int compares exactly (values beyond 2^53 do not round), mixed
// numeric kinds compare as float64, strings compare only to strings
// (mixed string/numeric ordering is constant: numbers sort before
// strings), and <=/>= are the row path's !(r<l)/!(l<r) — which differs
// from a direct <=/>= when NaN is involved.

// Sel is a selection vector: row indices into a ColBatch, strictly
// ascending. A nil Sel means "all rows" where documented.
type Sel []int32

// NewSel returns the identity selection [0, n).
func NewSel(n int) Sel {
	s := make(Sel, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// PredOp enumerates the comparison operators of filter predicates.
type PredOp uint8

// Predicate operators, mirroring expr's comparison set.
const (
	PEq PredOp = iota
	PNe
	PLt
	PLe
	PGt
	PGe
)

// Pred is one static filter condition over a batch: column Op literal.
type Pred struct {
	Col int
	Op  PredOp
	Lit mring.Value
}

// FilterPred refines sel to the rows satisfying p, writing the survivors
// into sel's prefix and returning it (no allocation). A nil sel means all
// rows and allocates the result. The outcome row-for-row matches
// evaluating the comparison on materialized row values.
func (b *ColBatch) FilterPred(p Pred, sel Sel) Sel {
	if sel == nil {
		sel = NewSel(b.Len())
	}
	c := &b.Cols[p.Col]
	switch c.Kind {
	case mring.KInt:
		switch p.Lit.K {
		case mring.KInt:
			return filterInts(c.Ints, p.Lit.I, p.Op, sel)
		case mring.KFloat:
			return filterIntsFloat(c.Ints, p.Lit.F, p.Op, sel)
		default:
			return filterConst(numVsStr(p.Op), sel)
		}
	case mring.KFloat:
		switch p.Lit.K {
		case mring.KString:
			return filterConst(numVsStr(p.Op), sel)
		default:
			return filterFloats(c.Flts, p.Lit.AsFloat(), p.Op, sel)
		}
	default:
		if p.Lit.K != mring.KString {
			return filterConst(strVsNum(p.Op), sel)
		}
		return filterStrs(c.Strs, p.Lit.S, p.Op, sel)
	}
}

// numVsStr gives the constant outcome of (numeric value Op string
// literal): strings sort after all numbers and never equal them.
func numVsStr(op PredOp) bool {
	switch op {
	case PNe, PLt, PLe:
		return true
	default:
		return false
	}
}

// strVsNum gives the constant outcome of (string value Op numeric literal).
func strVsNum(op PredOp) bool {
	switch op {
	case PNe, PGt, PGe:
		return true
	default:
		return false
	}
}

func filterConst(keep bool, sel Sel) Sel {
	if keep {
		return sel
	}
	return sel[:0]
}

func filterInts(xs []int64, v int64, op PredOp, sel Sel) Sel {
	out := sel[:0]
	switch op {
	case PEq:
		for _, i := range sel {
			if xs[i] == v {
				out = append(out, i)
			}
		}
	case PNe:
		for _, i := range sel {
			if xs[i] != v {
				out = append(out, i)
			}
		}
	case PLt:
		for _, i := range sel {
			if xs[i] < v {
				out = append(out, i)
			}
		}
	case PLe:
		for _, i := range sel {
			if xs[i] <= v {
				out = append(out, i)
			}
		}
	case PGt:
		for _, i := range sel {
			if xs[i] > v {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if xs[i] >= v {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterIntsFloat(xs []int64, f float64, op PredOp, sel Sel) Sel {
	out := sel[:0]
	switch op {
	case PEq:
		for _, i := range sel {
			if float64(xs[i]) == f {
				out = append(out, i)
			}
		}
	case PNe:
		for _, i := range sel {
			if float64(xs[i]) != f {
				out = append(out, i)
			}
		}
	case PLt:
		for _, i := range sel {
			if float64(xs[i]) < f {
				out = append(out, i)
			}
		}
	case PLe:
		// The row path computes <= as !(lit < x); keep its NaN behavior.
		for _, i := range sel {
			if !(f < float64(xs[i])) {
				out = append(out, i)
			}
		}
	case PGt:
		for _, i := range sel {
			if float64(xs[i]) > f {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if !(float64(xs[i]) < f) {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterFloats(xs []float64, f float64, op PredOp, sel Sel) Sel {
	out := sel[:0]
	switch op {
	case PEq:
		for _, i := range sel {
			if xs[i] == f {
				out = append(out, i)
			}
		}
	case PNe:
		for _, i := range sel {
			if xs[i] != f {
				out = append(out, i)
			}
		}
	case PLt:
		for _, i := range sel {
			if xs[i] < f {
				out = append(out, i)
			}
		}
	case PLe:
		for _, i := range sel {
			if !(f < xs[i]) {
				out = append(out, i)
			}
		}
	case PGt:
		for _, i := range sel {
			if xs[i] > f {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if !(xs[i] < f) {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterStrs(xs []string, s string, op PredOp, sel Sel) Sel {
	out := sel[:0]
	switch op {
	case PEq:
		for _, i := range sel {
			if xs[i] == s {
				out = append(out, i)
			}
		}
	case PNe:
		for _, i := range sel {
			if xs[i] != s {
				out = append(out, i)
			}
		}
	case PLt:
		for _, i := range sel {
			if xs[i] < s {
				out = append(out, i)
			}
		}
	case PLe:
		for _, i := range sel {
			if xs[i] <= s {
				out = append(out, i)
			}
		}
	case PGt:
		for _, i := range sel {
			if xs[i] > s {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if xs[i] >= s {
				out = append(out, i)
			}
		}
	}
	return out
}

// FloatsSel gathers column col as float64 over sel (Value.AsFloat
// semantics — string columns parse, unparsable strings read as 0) into
// dst, which is grown as needed and returned.
func (b *ColBatch) FloatsSel(col int, sel Sel, dst []float64) []float64 {
	dst = growFloats(dst, len(sel))
	c := &b.Cols[col]
	switch c.Kind {
	case mring.KInt:
		for k, i := range sel {
			dst[k] = float64(c.Ints[i])
		}
	case mring.KFloat:
		for k, i := range sel {
			dst[k] = c.Flts[i]
		}
	default:
		for k, i := range sel {
			dst[k] = mring.Str(c.Strs[i]).AsFloat()
		}
	}
	return dst
}

// MultsSel gathers the multiplicity column over sel into dst, which is
// grown as needed and returned.
func (b *ColBatch) MultsSel(sel Sel, dst []float64) []float64 {
	dst = growFloats(dst, len(sel))
	for k, i := range sel {
		dst[k] = b.Mults[i]
	}
	return dst
}

func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// HashSel computes the canonical group-key hash of each selected row's
// projection onto pos — the column-wise hash kernel: every column folds
// into all selected row states in one pass over its contiguous value
// array. A nil sel hashes all rows. The result equals the row-wise
// mring.Tuple.HashCols of the same values exactly.
func (b *ColBatch) HashSel(pos []int, sel Sel) []uint64 {
	n := b.Len()
	if sel != nil {
		n = len(sel)
	}
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = mring.HashInit()
	}
	for _, j := range pos {
		c := &b.Cols[j]
		switch c.Kind {
		case mring.KInt:
			if sel == nil {
				for i, v := range c.Ints {
					hs[i] = mring.HashInt64(hs[i], v)
				}
			} else {
				for k, i := range sel {
					hs[k] = mring.HashInt64(hs[k], c.Ints[i])
				}
			}
		case mring.KFloat:
			if sel == nil {
				for i, v := range c.Flts {
					hs[i] = mring.HashFloat64(hs[i], v)
				}
			} else {
				for k, i := range sel {
					hs[k] = mring.HashFloat64(hs[k], c.Flts[i])
				}
			}
		default:
			if sel == nil {
				for i, s := range c.Strs {
					hs[i] = mring.HashStr(hs[i], s)
				}
			} else {
				for k, i := range sel {
					hs[k] = mring.HashStr(hs[k], c.Strs[i])
				}
			}
		}
	}
	for i := range hs {
		hs[i] = mring.HashFinish(hs[i])
	}
	return hs
}

// FoldSel folds the selected rows into gt: row sel[k] contributes its
// projection onto pos with multiplicity ms[k] under precomputed hash
// hs[k], in selection order through a reused key buffer. Zero
// multiplicities are skipped, matching the row path's refusal to emit
// zero-valued factors.
func (b *ColBatch) FoldSel(gt *mring.GroupTable, pos []int, sel Sel, hs []uint64, ms []float64) {
	key := make(mring.Tuple, len(pos))
	for k, i := range sel {
		m := ms[k]
		if m == 0 {
			continue
		}
		for j, p := range pos {
			key[j] = b.Cols[p].value(int(i))
		}
		gt.AddPrehashed(hs[k], key, m)
	}
}
