package pool

import (
	"repro/internal/mring"
)

// Overlay is columnar worker state: a frozen columnar base (unique rows,
// non-zero multiplicities) plus a row-format mring.Relation acting as a
// mutable delta on top. Scans read both parts column-wise through
// Segments without ever copying the base; point mutations land in the
// delta and are folded back into a fresh base when the delta grows past
// half the base (Compact). The logical contents are always base ⊎ delta
// with the data model's near-zero cancellation.
type Overlay struct {
	base  *ColBatch
	delta *mring.Relation
	// idx lazily indexes base rows by their canonical full-row hash for
	// point lookups (collisions resolved by KeyEqual on materialization).
	idx map[uint64][]int32
}

// NewOverlay wraps an existing columnar base. The base's rows should be
// unique (as produced by TryFromRelation or a decoded shuffle fragment);
// the overlay takes ownership and callers must not mutate it afterward.
func NewOverlay(base *ColBatch) *Overlay {
	return &Overlay{base: base, delta: mring.NewRelation(base.Schema)}
}

// Schema returns the overlay's column names.
func (o *Overlay) Schema() mring.Schema { return o.base.Schema }

// Delta returns the mutable row-format delta relation.
func (o *Overlay) Delta() *mring.Relation { return o.delta }

// Base returns the frozen columnar base. Callers must not mutate it.
func (o *Overlay) Base() *ColBatch { return o.base }

// Add adds m to tuple t's logical multiplicity (delta mutation).
func (o *Overlay) Add(t mring.Tuple, m float64) { o.delta.Add(t, m) }

// Merge adds every tuple of r into the delta (bag union in place).
func (o *Overlay) Merge(r *mring.Relation) { o.delta.Merge(r) }

func (o *Overlay) baseIndex() map[uint64][]int32 {
	if o.idx == nil {
		pos := make([]int, len(o.base.Schema))
		for i := range pos {
			pos[i] = i
		}
		hs := o.base.HashSel(pos, nil)
		o.idx = make(map[uint64][]int32, len(hs))
		for i, h := range hs {
			o.idx[h] = append(o.idx[h], int32(i))
		}
	}
	return o.idx
}

// baseGet sums the base multiplicity of t (0 when absent).
func (o *Overlay) baseGet(t mring.Tuple) float64 {
	var s float64
	for _, i := range o.baseIndex()[t.Hash()] {
		row, m := o.base.Row(int(i))
		if row.KeyEqual(t) {
			s += m
		}
	}
	return s
}

// Get returns the logical multiplicity of t: base plus delta, reading as
// zero when the sum cancels into (-Eps, Eps) — where a plain Relation
// would have removed the tuple.
func (o *Overlay) Get(t mring.Tuple) float64 {
	s := o.baseGet(t) + o.delta.Get(t)
	if s > -mring.Eps && s < mring.Eps {
		return 0
	}
	return s
}

// Foreach visits every logical tuple with a surviving multiplicity: base
// rows adjusted by the delta (in base order), then delta-only tuples.
func (o *Overlay) Foreach(f func(t mring.Tuple, m float64)) {
	idx := o.baseIndex()
	for i := 0; i < o.base.Len(); i++ {
		t, m := o.base.Row(i)
		m += o.delta.Get(t)
		if m > -mring.Eps && m < mring.Eps {
			continue
		}
		f(t, m)
	}
	o.delta.Foreach(func(t mring.Tuple, m float64) {
		for _, i := range idx[t.Hash()] {
			row, _ := o.base.Row(int(i))
			if row.KeyEqual(t) {
				return // already visited with the base row
			}
		}
		f(t, m)
	})
}

// Len returns the number of logical tuples.
func (o *Overlay) Len() int {
	n := 0
	o.Foreach(func(mring.Tuple, float64) { n++ })
	return n
}

// ToRelation materializes the logical contents in row format.
func (o *Overlay) ToRelation() *mring.Relation {
	r := mring.NewRelation(o.base.Schema)
	o.base.MergeInto(r)
	r.Merge(o.delta)
	return r
}

// Compact folds the delta into a rebuilt base, keeping the base's column
// kinds. It reports false (leaving the overlay unchanged) when a delta
// tuple's kinds do not fit the base columns.
func (o *Overlay) Compact() bool {
	if o.delta.Len() == 0 {
		return true
	}
	kinds := colKinds(o.base)
	if o.base.Len() == 0 {
		// An empty base's kinds are a placeholder guess (all-int for an
		// empty seed); let the delta's first tuple decide instead.
		kinds = nil
	}
	nb, ok := tryFromRelation(o.ToRelation(), kinds)
	if !ok {
		return false
	}
	o.base = nb
	o.delta = mring.NewRelation(o.base.Schema)
	o.idx = nil
	return true
}

// Segments returns the overlay's contents as columnar segments for a
// kernel scan: the shared base (never copied) and the columnarized delta
// (nil when the delta is empty). A delta past half the base size is
// compacted first. ok is false when the delta's value kinds do not fit
// the base columns; callers then fall back to the row path.
func (o *Overlay) Segments() (base, delta *ColBatch, ok bool) {
	if o.delta.Len()*2 > o.base.Len() {
		o.Compact()
	}
	if o.delta.Len() == 0 {
		return o.base, nil, true
	}
	db, ok := tryFromRelation(o.delta, colKinds(o.base))
	if !ok {
		return nil, nil, false
	}
	return o.base, db, true
}

func colKinds(b *ColBatch) []mring.Kind {
	kinds := make([]mring.Kind, len(b.Cols))
	for i := range b.Cols {
		kinds[i] = b.Cols[i].Kind
	}
	return kinds
}

// tryFromRelation converts r to columnar form without value coercion:
// every tuple's kinds must match the column kinds exactly (nil kinds:
// taken from the first tuple Foreach visits). Unlike FromRelation, which
// coerces mixed columns to the first tuple's kinds, a mismatch reports
// ok=false.
func tryFromRelation(r *mring.Relation, kinds []mring.Kind) (*ColBatch, bool) {
	derive := kinds == nil
	ok := true
	first := true
	r.Foreach(func(t mring.Tuple, _ float64) {
		if !ok {
			return
		}
		if first && derive {
			kinds = make([]mring.Kind, len(t))
			for i, v := range t {
				kinds[i] = v.K
			}
		}
		first = false
		for i, v := range t {
			if v.K != kinds[i] {
				ok = false
				return
			}
		}
	})
	if !ok {
		return nil, false
	}
	if kinds == nil {
		kinds = make([]mring.Kind, len(r.Schema()))
	}
	b := NewColBatch(r.Schema(), kinds)
	r.Foreach(func(t mring.Tuple, m float64) { b.Append(t, m) })
	return b, true
}

// TryFromRelation is the strict columnar conversion: it succeeds only
// when every column holds one value kind throughout, so the batch
// round-trips losslessly (the requirement for shipping real bytes).
func TryFromRelation(r *mring.Relation) (*ColBatch, bool) {
	return tryFromRelation(r, nil)
}

// mirrorState is the Relation.Scratch attachment: the columnar mirror (or
// the fact that none is possible) for one relation content version.
type mirrorState struct {
	ov  *Overlay
	ver uint64
	bad bool
}

// MirrorOf returns an up-to-date columnar mirror of r — an Overlay whose
// base holds exactly r's contents and whose delta is empty — building and
// attaching one (via Relation.Scratch) when the cached mirror is stale.
// It returns nil when r cannot be mirrored losslessly (mixed-kind
// columns); that outcome is cached per content version too. Mirrors are
// read-only: any mutation of r bumps its version and invalidates them.
func MirrorOf(r *mring.Relation) *Overlay {
	if s, ok := r.Scratch().(*mirrorState); ok && s.ver == r.Version() {
		if s.bad {
			return nil
		}
		return s.ov
	}
	b, ok := tryFromRelation(r, nil)
	if !ok {
		r.SetScratch(&mirrorState{ver: r.Version(), bad: true})
		return nil
	}
	ov := NewOverlay(b)
	r.SetScratch(&mirrorState{ov: ov, ver: r.Version()})
	return ov
}

// AttachMirror installs batch as r's columnar mirror for its current
// version. The caller guarantees batch holds exactly r's contents with
// one row per stored tuple — the shuffle receive path attaches the
// decoded fragment it just merged, making the next kernel scan free.
func AttachMirror(r *mring.Relation, batch *ColBatch) {
	r.SetScratch(&mirrorState{ov: NewOverlay(batch), ver: r.Version()})
}

// EncodeRelation serializes r in the columnar wire format, reusing (and
// attaching) its columnar mirror when the contents allow one. Mixed-kind
// relations fall back to FromRelation's first-tuple-kind coercion — fine
// for size accounting, lossy for real shipping, so byte-shipping callers
// must go through MirrorOf/TryFromRelation instead.
func EncodeRelation(r *mring.Relation) []byte {
	if ov := MirrorOf(r); ov != nil {
		return ov.base.Encode()
	}
	return FromRelation(r).Encode()
}
