package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

func tup(vs ...int) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		t[i] = mring.Int(int64(v))
	}
	return t
}

// applyBatch merges batch into base (post-state).
func applyBatch(base, batch *mring.Relation) *mring.Relation {
	out := base.Clone()
	out.Merge(batch)
	return out
}

// checkIncremental verifies the IVM equation M(D+ΔD) = M(D) + ΔQ(D, ΔD)
// for query q over the given base relations and a batch on rel.
func checkIncremental(t *testing.T, q expr.Expr, rels map[string]*mring.Relation, rel string, batch *mring.Relation, opts Options) {
	t.Helper()
	dq := Derive(q, rel, opts)

	// Pre-state evaluation of the delta.
	env := eval.NewEnv()
	for n, r := range rels {
		env.Bind(n, r)
	}
	env.Bind(eval.DeltaName(rel), batch)
	deltaResult := eval.NewCtx(env).Materialize(dq)

	// Old result + delta.
	oldResult := eval.NewCtx(env).Materialize(q)
	oldResult.Merge(deltaResult)

	// Recomputed post-state result.
	env2 := eval.NewEnv()
	for n, r := range rels {
		if n == rel {
			env2.Bind(n, applyBatch(r, batch))
		} else {
			env2.Bind(n, r)
		}
	}
	newResult := eval.NewCtx(env2).Materialize(q)

	if !oldResult.EqualApprox(newResult, 1e-6) {
		t.Fatalf("IVM equation violated for %s:\n delta: %s\n old+delta: %v\n recomputed: %v",
			dq, dq, oldResult, newResult)
	}
}

func relOf(schema mring.Schema, rows ...[]int) *mring.Relation {
	r := mring.NewRelation(schema)
	for _, row := range rows {
		r.Add(tup(row[1:]...), float64(row[0]))
	}
	return r
}

func TestDeriveFlatJoin(t *testing.T) {
	// Example 2.1: Sum_[B](R ⋈ S ⋈ T), delta for R.
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C"), expr.Base("T", "C", "D")))
	d := Derive(q, "R", Options{})
	// The delta must reference ΔR and not R.
	if !expr.HasRel(d, expr.RDelta, "R") || expr.HasRel(d, expr.RBase, "R") {
		t.Fatalf("bad delta: %s", d)
	}
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A", "B"}, []int{1, 1, 10}, []int{1, 2, 20}),
		"S": relOf(mring.Schema{"B", "C"}, []int{1, 10, 5}, []int{2, 20, 6}),
		"T": relOf(mring.Schema{"C", "D"}, []int{1, 5, 0}, []int{1, 6, 1}),
	}
	batch := relOf(mring.Schema{"A", "B"}, []int{1, 3, 10}, []int{-1, 1, 10})
	checkIncremental(t, q, rels, "R", batch, Options{})
}

func TestDeriveUpdateIndependent(t *testing.T) {
	q := expr.Sum(nil, expr.Base("S", "B"))
	if d := Derive(q, "R", Options{}); !expr.IsZero(d) {
		t.Fatalf("delta of update-independent query = %s, want 0", d)
	}
}

func TestDeriveSelfJoinSecondOrder(t *testing.T) {
	// Δ(R ⋈ R) includes the ΔR ⋈ ΔR term; verify numerically.
	q := expr.Sum(nil, expr.Join(expr.Base("R", "A"), expr.Base("R", "A")))
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A"}, []int{2, 1}, []int{1, 2}),
	}
	batch := relOf(mring.Schema{"A"}, []int{3, 1}, []int{-1, 2}, []int{1, 3})
	checkIncremental(t, q, rels, "R", batch, Options{})
}

func TestDeriveUnion(t *testing.T) {
	q := expr.Sum([]string{"A"}, expr.Add(expr.Base("R", "A"), expr.Base("S", "A")))
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A"}, []int{1, 1}),
		"S": relOf(mring.Schema{"A"}, []int{2, 1}, []int{1, 3}),
	}
	batch := relOf(mring.Schema{"A"}, []int{1, 3}, []int{-1, 1})
	checkIncremental(t, q, rels, "R", batch, Options{})
}

func TestDeriveWithComparison(t *testing.T) {
	q := expr.Sum([]string{"A"}, expr.Join(
		expr.Base("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("B"), expr.LitI(3))))
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A", "B"}, []int{1, 1, 5}, []int{1, 2, 2}),
	}
	batch := relOf(mring.Schema{"A", "B"}, []int{1, 1, 9}, []int{-1, 1, 5}, []int{1, 3, 1})
	checkIncremental(t, q, rels, "R", batch, Options{})
}

func nestedCountQuery() expr.Expr {
	// Example 3.1: COUNT(*) FROM R WHERE R.A < (SELECT COUNT(*) FROM S WHERE R.B = S.B)
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2", "C"), expr.Eq(expr.V("B"), expr.V("B2"))))
	return expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
}

func TestDeriveNestedAggregateBothRelations(t *testing.T) {
	q := nestedCountQuery()
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A", "B"}, []int{1, 0, 7}, []int{1, 1, 7}, []int{1, 5, 9}),
		"S": relOf(mring.Schema{"B2", "C"}, []int{1, 7, 1}, []int{1, 7, 2}, []int{1, 9, 3}),
	}
	for _, de := range []bool{false, true} {
		opts := Options{DomainExtraction: de}
		batchR := relOf(mring.Schema{"A", "B"}, []int{1, 0, 9}, []int{-1, 1, 7})
		checkIncremental(t, q, rels, "R", batchR, opts)
		batchS := relOf(mring.Schema{"B2", "C"}, []int{1, 7, 4}, []int{-1, 9, 3}, []int{2, 11, 5})
		checkIncremental(t, q, rels, "S", batchS, opts)
	}
}

func TestDeriveDistinct(t *testing.T) {
	// Example 3.2: SELECT DISTINCT A FROM R WHERE B > 3.
	q := expr.ExistsE(expr.Sum([]string{"A"}, expr.Join(
		expr.Base("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("B"), expr.LitI(3)))))
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A", "B"}, []int{1, 1, 5}, []int{1, 1, 9}, []int{1, 2, 1}),
	}
	for _, de := range []bool{false, true} {
		// Batch deletes the last supporting row of A=1's second witness and
		// inserts a new A value.
		batch := relOf(mring.Schema{"A", "B"}, []int{-1, 1, 5}, []int{1, 3, 8}, []int{1, 2, 9})
		checkIncremental(t, q, rels, "R", batch, Options{DomainExtraction: de})
	}
}

func TestDeriveDistinctDeleteAllWitnesses(t *testing.T) {
	q := expr.ExistsE(expr.Sum([]string{"A"}, expr.Base("R", "A", "B")))
	rels := map[string]*mring.Relation{
		"R": relOf(mring.Schema{"A", "B"}, []int{1, 1, 5}, []int{1, 1, 6}),
	}
	batch := relOf(mring.Schema{"A", "B"}, []int{-1, 1, 5}, []int{-1, 1, 6})
	checkIncremental(t, q, rels, "R", batch, Options{DomainExtraction: true})
}

func TestExtractDomDistinctShape(t *testing.T) {
	// For ΔQn = Sum_[A](ΔR(A,B) ⋈ (B>3)), the domain must bind exactly A
	// (the paper's Qdom := Exists(Sum_[A](Exists(ΔR(A,B)) ⋈ (B>3)))).
	dq := expr.Sum([]string{"A"}, expr.Join(
		expr.Delta("R", "A", "B"),
		expr.CmpE(expr.CGt, expr.V("B"), expr.LitI(3))))
	dom := ExtractDom(dq)
	if got := dom.Schema(); !got.Equal(mring.Schema{"A"}) {
		t.Fatalf("domain schema = %v, want [A]; dom = %s", got, dom)
	}
	if _, ok := dom.(*expr.Exists); !ok {
		t.Fatalf("domain should be Exists-wrapped: %s", dom)
	}
}

func TestExtractDomUncorrelatedIsOne(t *testing.T) {
	// Example 3.3: nested aggregate with no correlation — the delta domain
	// for updates to S bounds nothing, so extraction yields 1
	// (re-evaluation preferred).
	dq := expr.Sum(nil, expr.Delta("S", "B2", "C"))
	dom := ExtractDom(dq)
	if !isOne(dom) {
		t.Fatalf("uncorrelated domain = %s, want 1", dom)
	}
	if BindsEqualityCorrelatedVar(dom, []string{"B"}) {
		t.Fatal("uncorrelated domain should bind nothing")
	}
}

func TestExtractDomCorrelatedBindsVar(t *testing.T) {
	// Correlated nested delta: Sum_[](ΔS(B2,C) ⋈ (B=B2)) — the domain of
	// B2 values restricts B through the equality.
	dq := expr.Sum([]string{"B2"}, expr.Delta("S", "B2", "C"))
	dom := ExtractDom(dq)
	if !BindsEqualityCorrelatedVar(dom, []string{"B2"}) {
		t.Fatalf("domain %s should bind B2", dom)
	}
}

func TestInterUnionDoms(t *testing.T) {
	dr := expr.ExistsE(expr.Delta("R", "A", "B"))
	ds := expr.ExistsE(expr.Delta("S", "A", "C"))
	// Union branches: common column A.
	d := interDoms(dr, ds)
	if got := d.Schema(); !got.Equal(mring.Schema{"A"}) {
		t.Fatalf("interDoms schema = %v", got)
	}
	// If either side is unrestricted, result is unrestricted.
	if !isOne(interDoms(dr, &expr.Const{V: 1})) {
		t.Fatal("interDoms with 1 should be 1")
	}
	// Join combines bindings.
	u := unionDoms(dr, ds)
	if got := u.Schema(); !got.Equal(mring.Schema{"A", "B", "C"}) {
		t.Fatalf("unionDoms schema = %v", got)
	}
	if unionDoms(dr, &expr.Const{V: 1}) != dr {
		t.Fatal("unionDoms with 1 should be identity")
	}
}

// Property test: the IVM equation holds for a random family of queries
// (join + filter + optional nesting) under random batches including
// deletions, with and without domain extraction.
func TestQuickIVMEquation(t *testing.T) {
	queries := []expr.Expr{
		expr.Sum([]string{"B"}, expr.Join(expr.Base("R", "A", "B"), expr.Base("S", "B", "C"))),
		expr.Sum(nil, expr.Join(expr.Base("R", "A", "B"), expr.Base("S", "B", "C"),
			expr.CmpE(expr.CGe, expr.V("C"), expr.LitI(2)))),
		nestedCountQuery(),
		expr.ExistsE(expr.Sum([]string{"A"}, expr.Base("R", "A", "B"))),
		expr.Sum([]string{"A"}, expr.Join(expr.Base("R", "A", "B"), expr.ValE(expr.V("B")))),
	}
	prop := func(seed int64, qi uint8, de bool) bool {
		rng := rand.New(rand.NewSource(seed))
		q := queries[int(qi)%len(queries)]
		mk := func(schema mring.Schema, n int) *mring.Relation {
			r := mring.NewRelation(schema)
			for i := 0; i < n; i++ {
				r.Add(tup(rng.Intn(4), rng.Intn(4)), float64(1+rng.Intn(2)))
			}
			return r
		}
		rels := map[string]*mring.Relation{
			"R": mk(mring.Schema{"A", "B"}, rng.Intn(12)),
			"S": mk(mring.Schema{"B2", "C"}, rng.Intn(12)),
		}
		if qi%2 == 0 {
			rels["S"] = mk(mring.Schema{"B", "C"}, rng.Intn(12))
		}
		target := "R"
		if rng.Intn(2) == 0 && len(expr.Relations(q, expr.RBase)) > 1 {
			target = expr.Relations(q, expr.RBase)[1]
		}
		batch := mring.NewRelation(rels[target].Schema())
		for i := 0; i < rng.Intn(6); i++ {
			batch.Add(tup(rng.Intn(4), rng.Intn(4)), float64(rng.Intn(5)-2))
		}
		// Use the test helper inline (cannot call t.Fatalf in quick).
		dq := Derive(q, target, Options{DomainExtraction: de})
		env := eval.NewEnv()
		for n, r := range rels {
			env.Bind(n, r)
		}
		env.Bind(eval.DeltaName(target), batch)
		got := eval.NewCtx(env).Materialize(q)
		got.Merge(eval.NewCtx(env).Materialize(dq))
		env2 := eval.NewEnv()
		for n, r := range rels {
			if n == target {
				env2.Bind(n, applyBatch(r, batch))
			} else {
				env2.Bind(n, r)
			}
		}
		want := eval.NewCtx(env2).Materialize(q)
		return got.EqualApprox(want, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
