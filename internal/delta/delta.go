// Package delta derives delta queries — expressions capturing the change
// in a query result for a batch of updates to one base relation (Sec. 3.1)
// — and implements the paper's domain extraction technique (Sec. 3.2.2,
// Fig. 1) that makes deltas of queries with nested aggregates and
// existential quantification incremental.
package delta

import (
	"repro/internal/expr"
	"repro/internal/mring"
)

// Options control delta derivation.
type Options struct {
	// DomainExtraction enables the revised delta rule for variable
	// assignment and Exists: Δ(var:=Q) := Qdom ⋈ ((var:=Q+ΔQ)−(var:=Q))
	// with Qdom = extractDom(ΔQ). When false, the naïve rule re-evaluates
	// the full old and new results (what Example 3.2 warns about).
	DomainExtraction bool
}

// Derive returns the delta of q for updates ΔR to base relation rel.
// References to rel become delta-relation terms; the result is simplified,
// so an update-independent query yields the constant 0.
func Derive(q expr.Expr, rel string, opts Options) expr.Expr {
	return expr.Simplify(derive(q, rel, opts))
}

func derive(q expr.Expr, rel string, opts Options) expr.Expr {
	switch x := q.(type) {
	case *expr.Rel:
		if x.Kind == expr.RBase && x.Name == rel {
			d := *x
			d.Kind = expr.RDelta
			return &d
		}
		// Views, other bases, and existing delta terms do not change.
		return &expr.Const{V: 0}
	case *expr.Plus:
		terms := make([]expr.Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = derive(t, rel, opts)
		}
		return expr.Add(terms...)
	case *expr.Mul:
		return deriveMul(x.Factors, rel, opts)
	case *expr.Agg:
		d := derive(x.Body, rel, opts)
		if expr.IsZero(expr.Simplify(d)) {
			return &expr.Const{V: 0}
		}
		return expr.Sum(x.GroupBy, d)
	case *expr.Assign:
		if x.Q == nil {
			return &expr.Const{V: 0}
		}
		dq := expr.Simplify(derive(x.Q, rel, opts))
		if expr.IsZero(dq) {
			return &expr.Const{V: 0}
		}
		newQ := expr.Simplify(expr.Add(x.Q.Clone(), dq))
		diff := expr.Add(
			expr.LiftQ(x.Var, newQ),
			expr.Neg(expr.LiftQ(x.Var, x.Q.Clone())))
		if !opts.DomainExtraction {
			return diff
		}
		// The domain must also bind the equality-correlated outer
		// variables of the nested query (Sec. 3.2.3: "extracting the
		// domain of the inner query might restrict some of the
		// correlated variables").
		dom := ExtractDomKeep(dq, expr.FreeVars(dq))
		return expr.Join(dom, diff)
	case *expr.Exists:
		dq := expr.Simplify(derive(x.Body, rel, opts))
		if expr.IsZero(dq) {
			return &expr.Const{V: 0}
		}
		newQ := expr.Simplify(expr.Add(x.Body.Clone(), dq))
		diff := expr.Add(
			expr.ExistsE(newQ),
			expr.Neg(expr.ExistsE(x.Body.Clone())))
		if !opts.DomainExtraction {
			return diff
		}
		dom := ExtractDomKeep(dq, expr.FreeVars(dq))
		return expr.Join(dom, diff)
	default:
		// Constants, values, comparisons: Δ(·) = 0.
		return &expr.Const{V: 0}
	}
}

// deriveMul applies the binary product rule, folded over the n-ary join:
// Δ(Q1 ⋈ rest) = ΔQ1 ⋈ rest + Q1 ⋈ Δrest + ΔQ1 ⋈ Δrest.
// Factors whose delta is zero drop out, so the expansion stays small for
// single-relation updates.
func deriveMul(factors []expr.Expr, rel string, opts Options) expr.Expr {
	if len(factors) == 0 {
		return &expr.Const{V: 0}
	}
	if len(factors) == 1 {
		return derive(factors[0], rel, opts)
	}
	head := factors[0]
	rest := factors[1:]
	dHead := expr.Simplify(derive(head, rel, opts))
	dRest := expr.Simplify(deriveMul(rest, rel, opts))
	restJoin := make([]expr.Expr, len(rest))
	for i, f := range rest {
		restJoin[i] = f.Clone()
	}
	var terms []expr.Expr
	if !expr.IsZero(dHead) {
		terms = append(terms, expr.Join(append([]expr.Expr{dHead.Clone()}, cloneAll(restJoin)...)...))
	}
	if !expr.IsZero(dRest) {
		terms = append(terms, expr.Join(head.Clone(), dRest.Clone()))
	}
	if !expr.IsZero(dHead) && !expr.IsZero(dRest) {
		terms = append(terms, expr.Join(dHead.Clone(), dRest.Clone()))
	}
	return expr.Add(terms...)
}

func cloneAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone()
	}
	return out
}

// ExtractDom implements Fig. 1: it computes a domain expression for a
// delta query — an expression of multiplicity-1 tuples binding variables
// that cover every output tuple the delta can affect. Prepending the
// domain to a re-evaluating delta restricts iteration to affected tuples.
func ExtractDom(e expr.Expr) expr.Expr {
	return ExtractDomKeep(e, nil)
}

// ExtractDomKeep extracts a domain that additionally preserves the given
// variables through aggregate projections — the correlated variables of a
// nested subquery, which the domain binds so that only affected groups
// are re-evaluated (the Q17 pattern).
func ExtractDomKeep(e expr.Expr, keep mring.Schema) expr.Expr {
	return expr.Simplify(extractDomKeep(e, keep))
}

func extractDomKeep(e expr.Expr, keep mring.Schema) expr.Expr {
	if a, ok := e.(*expr.Agg); ok {
		// The aggregate's projection target widens by the variables the
		// enclosing lift correlates on.
		domA := extractDom(a.Body)
		if isOne(domA) {
			return &expr.Const{V: 1}
		}
		domSch := domA.Schema()
		target := a.GroupBy.Union(keep)
		domGb := domSch.Intersect(target)
		switch {
		case len(domGb) == 0:
			return &expr.Const{V: 1}
		case domSch.Equal(mring.Schema(domGb)):
			return domA
		default:
			return expr.ExistsE(expr.Sum(domGb, domA))
		}
	}
	return extractDom(e)
}

func extractDom(e expr.Expr) expr.Expr {
	one := expr.Expr(&expr.Const{V: 1})
	switch x := e.(type) {
	case *expr.Plus:
		if len(x.Terms) == 0 {
			return one
		}
		dom := extractDom(x.Terms[0])
		for _, t := range x.Terms[1:] {
			dom = interDoms(dom, extractDom(t))
		}
		return dom
	case *expr.Mul:
		// Combine factor domains; interpreted terms (comparisons, value
		// assignments) further restrict the domain but are attached only
		// when every variable they consume is bound by the domain built
		// so far — a correlation predicate like (ps_partkey = p_partkey)
		// must not leak an unbound variable into the domain.
		var dom expr.Expr = one
		var pending []expr.Expr
		for _, f := range x.Factors {
			d := extractDom(f)
			if isOne(d) {
				continue
			}
			switch d.(type) {
			case *expr.Cmp, *expr.Assign:
				pending = append(pending, d)
			default:
				dom = unionDoms(dom, d)
			}
		}
		bound := dom.Schema()
		for changed := true; changed; {
			changed = false
			var rest []expr.Expr
			for _, p := range pending {
				free := expr.FreeVars(p)
				covered := true
				for _, v := range free {
					if !bound.Contains(v) {
						covered = false
						break
					}
				}
				if covered {
					dom = unionDoms(dom, p)
					bound = bound.Union(p.Schema())
					changed = true
					continue
				}
				// An equality with exactly one side bound becomes a
				// binder in the domain: (B = B2) with B2 bound binds the
				// correlated variable B, giving the domain of affected
				// groups (Sec. 3.2.3's range restriction).
				if bind := equalityBinder(p, bound); bind != nil {
					dom = unionDoms(dom, bind)
					bound = bound.Union(bind.Schema())
					changed = true
					continue
				}
				rest = append(rest, p)
			}
			pending = rest
		}
		return dom
	case *expr.Agg:
		domA := extractDom(x.Body)
		if isOne(domA) {
			return one
		}
		domSch := domA.Schema()
		domGb := domSch.Intersect(x.GroupBy)
		switch {
		case len(domGb) == 0:
			// The extracted domain bounds no group-by column: useless.
			return one
		case domSch.Equal(mring.Schema(domGb)):
			// Domain already binds exactly (a prefix of) the group-by
			// columns; propagate as is.
			return domA
		default:
			// Reduce the domain schema to the group-by columns and wrap
			// in Exists to preserve multiplicity-1 domain semantics.
			return expr.ExistsE(expr.Sum(domGb, domA))
		}
	case *expr.Assign:
		if x.Q != nil && expr.HasBaseRelations(x.Q) {
			return extractDom(x.Q)
		}
		if x.Q != nil {
			// Delta-only nested query: its domain restricts.
			return extractDom(x.Q)
		}
		// var := value binds a variable deterministically; keep it.
		return x.Clone()
	case *expr.Exists:
		return extractDom(x.Body)
	case *expr.Rel:
		if x.Kind == expr.RDelta || x.LowCard {
			return expr.ExistsE(x.Clone())
		}
		return one
	case *expr.Cmp:
		// Comparisons further restrict the domain.
		return x.Clone()
	case *expr.Const:
		return one
	case *expr.Val:
		// A value term can zero out tuples but binds nothing; keeping it
		// would change domain multiplicities, so drop it.
		return one
	default:
		return one
	}
}

// equalityBinder converts a var=var comparison with exactly one side
// bound into a variable assignment that binds the other side, or returns
// nil when not applicable.
func equalityBinder(p expr.Expr, bound mring.Schema) expr.Expr {
	c, ok := p.(*expr.Cmp)
	if !ok || c.Op != expr.CEq {
		return nil
	}
	l, lok := c.L.(expr.VarRef)
	r, rok := c.R.(expr.VarRef)
	if !lok || !rok {
		return nil
	}
	lb, rb := bound.Contains(l.Name), bound.Contains(r.Name)
	switch {
	case lb && !rb:
		return expr.LiftV(r.Name, expr.V(l.Name))
	case rb && !lb:
		return expr.LiftV(l.Name, expr.V(r.Name))
	default:
		return nil
	}
}

func isOne(e expr.Expr) bool {
	c, ok := e.(*expr.Const)
	return ok && c.V == 1
}

// interDoms combines the domains of two union branches: a change can come
// from either branch, so the combined domain is the union of both,
// projected onto their common columns (the "maximum common domain" of
// Fig. 1). If either branch is unrestricted, the union is unrestricted.
func interDoms(a, b expr.Expr) expr.Expr {
	if isOne(a) || isOne(b) {
		return &expr.Const{V: 1}
	}
	common := a.Schema().Intersect(b.Schema())
	if len(common) == 0 {
		return &expr.Const{V: 1}
	}
	pa := expr.Expr(expr.Sum(common, a))
	pb := expr.Expr(expr.Sum(common, b))
	return expr.ExistsE(expr.Add(pa, pb))
}

// unionDoms combines the domains of two join operands: both restrict, so
// the combined domain is their join (binding the union of their columns).
func unionDoms(a, b expr.Expr) expr.Expr {
	if isOne(a) {
		return b
	}
	if isOne(b) {
		return a
	}
	return expr.Join(a, b)
}

// BindsEqualityCorrelatedVar reports whether dom binds at least one of the
// given correlation variables. The paper's policy (Sec. 3.2.3): maintain a
// nested query incrementally only when the extracted nested domain binds
// at least one equality-correlated variable; otherwise prefer
// re-evaluation.
func BindsEqualityCorrelatedVar(dom expr.Expr, correlated []string) bool {
	s := dom.Schema()
	for _, v := range correlated {
		if s.Contains(v) {
			return true
		}
	}
	return false
}
