package bench

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cachesim"
	"repro/internal/compile"
	"repro/internal/mring"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

// LocalConfig scales the single-node experiments.
type LocalConfig struct {
	// SF is the TPC-H/DS scale factor (1.0 = the micro unit of the
	// generators).
	SF float64
	// Seed fixes stream generation.
	Seed int64
	// Queries restricts the query set (nil = all).
	Queries []string
}

// DefaultLocalConfig is the quick-run configuration.
func DefaultLocalConfig() LocalConfig { return LocalConfig{SF: 0.5, Seed: 1} }

func (c LocalConfig) wants(name string) bool {
	if len(c.Queries) == 0 {
		return true
	}
	for _, q := range c.Queries {
		if q == name {
			return true
		}
	}
	return false
}

// runLocalStream streams a TPC-H query's workload through an executor
// and returns (tuples processed, wall time).
func runLocalStream(q tpch.Query, sf float64, seed int64, batchSize int, singleTuple bool, opts compile.Options) (int, time.Duration, error) {
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), opts)
	if err != nil {
		return 0, 0, err
	}
	ex := compile.NewExecutor(prog)
	ex.SingleTuple = singleTuple
	gen := tpch.NewGenerator(sf, seed)
	init := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			init[tbl] = gen.Static(tbl)
		} else {
			init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	ex.InitFromBases(init)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	start := time.Now()
	for {
		bs := stream.NextBatches(batchSize)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			n := b.Rel.Len()
			ex.ApplyBatch(b.Table, b.Rel)
			tuples += n
		}
	}
	return tuples, time.Since(start), nil
}

// Fig7 reproduces the normalized-throughput-vs-batch-size experiment for
// the TPC-H queries (single-tuple execution = 1.0).
func Fig7(cfg LocalConfig) (*Table, error) {
	t := &Table{
		Title:   "Figure 7: normalized throughput of TPC-H queries per batch size (baseline = single-tuple)",
		Columns: []string{"query"},
		Notes: "paper shape: ~half the queries peak at or below 1x (single-tuple wins); " +
			"batch pre-aggregation queries (Q1, Q20, Q22) gain large factors; peaks fall at 1k-10k",
	}
	for _, bs := range BatchSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("bs=%d", bs))
	}
	for _, q := range tpch.Queries() {
		if !cfg.wants(q.Name) {
			continue
		}
		n, base, err := runLocalStream(q, cfg.SF, cfg.Seed, 1, true, compile.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("%s single-tuple: %w", q.Name, err)
		}
		baseTput := float64(n) / base.Seconds()
		row := []string{q.Name}
		for _, bs := range BatchSizes {
			n2, dur, err := runLocalStream(q, cfg.SF, cfg.Seed, bs, false, compile.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("%s bs=%d: %w", q.Name, bs, err)
			}
			row = append(row, f2((float64(n2)/dur.Seconds())/baseTput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 is the TPC-DS variant of Fig7.
func Fig12(cfg LocalConfig) (*Table, error) {
	t := &Table{
		Title:   "Figure 12: normalized throughput of TPC-DS queries per batch size (baseline = single-tuple)",
		Columns: []string{"query"},
		Notes:   "paper shape: single-tuple often wins; filtering queries gain up to ~5x",
	}
	for _, bs := range BatchSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("bs=%d", bs))
	}
	for _, q := range tpcds.Queries() {
		if !cfg.wants(q.Name) {
			continue
		}
		run := func(batchSize int, single bool) (float64, error) {
			prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
			if err != nil {
				return 0, err
			}
			ex := compile.NewExecutor(prog)
			ex.SingleTuple = single
			gen := tpcds.NewGenerator(cfg.SF, cfg.Seed)
			init := map[string]*mring.Relation{}
			for _, tbl := range q.Tables {
				if tbl == tpcds.StoreSales {
					init[tbl] = mring.NewRelation(tpcds.Schemas[tbl])
				} else {
					init[tbl] = gen.Static(tbl)
				}
			}
			ex.InitFromBases(init)
			next := gen.FactBatches(batchSize)
			tuples := 0
			start := time.Now()
			for b := next(); b != nil; b = next() {
				tuples += b.Len()
				ex.ApplyBatch(tpcds.StoreSales, b)
			}
			return float64(tuples) / time.Since(start).Seconds(), nil
		}
		baseTput, err := run(1, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		row := []string{q.Name}
		for _, bs := range BatchSizes {
			tput, err := run(bs, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.Name, err)
			}
			row = append(row, f2(tput/baseTput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// warmDatabase materializes the full stream at sf into base-table
// contents (plus static dimensions) — the grown database against which
// refresh rates are measured.
func warmDatabase(q tpch.Query, sf float64, seed int64) map[string]*mring.Relation {
	gen := tpch.NewGenerator(sf, seed)
	out := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			out[tbl] = gen.Static(tbl)
		} else {
			out[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	stream := tpch.NewStream(gen, q.Tables)
	for {
		bs := stream.NextBatches(10000)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			out[b.Table].Merge(b.Rel)
		}
	}
	return out
}

// measureRefreshRate measures the steady-state view refresh throughput:
// the engine has already ingested the warm database, and each additional
// batch must refresh the view. Slow engines are capped at a few batches
// per cell — enough for a rate, cheap enough to terminate.
func measureRefreshRate(q tpch.Query, e baseline.Engine, seed int64, batchSize, maxBatches int) float64 {
	gen := tpch.NewGenerator(0.05, seed+1000)
	stream := tpch.NewStream(gen, q.Tables)
	tuples := 0
	batches := 0
	start := time.Now()
	for batches < maxBatches {
		bs := stream.NextBatches(batchSize)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			tuples += b.Rel.Len()
			e.ApplyBatch(b.Table, b.Rel)
		}
		batches++
	}
	if tuples == 0 {
		return 0
	}
	return float64(tuples) / time.Since(start).Seconds()
}

// recursiveEngine adapts the executor to the baseline.Engine interface.
type recursiveEngine struct{ ex *compile.Executor }

func (e recursiveEngine) ApplyBatch(rel string, b *mring.Relation) { e.ex.ApplyBatch(rel, b) }
func (e recursiveEngine) Result() *mring.Relation                  { return e.ex.Result() }
func (e recursiveEngine) Name() string                             { return "recursive-ivm" }

// Fig8 compares re-evaluation, classical IVM, and recursive IVM on
// TPC-H Q17 across batch sizes (the paper's PostgreSQL comparison).
func Fig8(cfg LocalConfig) (*Table, error) {
	return engineComparison(cfg, []string{"Q17"},
		"Figure 8: Q17 view refresh rate (tuples/sec): re-eval vs classical IVM vs recursive IVM",
		"paper shape: recursive IVM leads by 2-4 orders of magnitude at every batch size")
}

// Table1 is the full grid of Fig8 over the whole TPC-H suite.
func Table1(cfg LocalConfig) (*Table, error) {
	var names []string
	for _, q := range tpch.Queries() {
		names = append(names, q.Name)
	}
	return engineComparison(cfg, names,
		"Table 1: throughput (tuples/sec) of re-eval, classical IVM, recursive IVM per batch size",
		"paper shape: recursive IVM wins by orders of magnitude in all but the re-evaluation queries (Q11-style)")
}

func engineComparison(cfg LocalConfig, names []string, title, notes string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"query", "engine", "single"},
		Notes:   notes,
	}
	for _, bs := range BatchSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("bs=%d", bs))
	}
	for _, name := range names {
		if !cfg.wants(name) {
			continue
		}
		q, err := tpch.QueryByName(name)
		if err != nil {
			return nil, err
		}
		// All engines refresh the same grown database: the view refresh
		// rate is a steady-state property. The database must dwarf the
		// largest batch, as in the paper (10GB streams vs 100k batches),
		// for re-evaluation's recompute-everything cost to show.
		warmSF := cfg.SF * 8
		if warmSF < 0.8 {
			warmSF = 0.8
		}
		warm := warmDatabase(q, warmSF, cfg.Seed)
		prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		engines := []struct {
			label      string
			maxBatches int
			mk         func() baseline.Engine
		}{
			{"re-eval", 3, func() baseline.Engine {
				e := baseline.NewReEval(q.Def, q.BaseSchemas())
				for tbl, r := range warm {
					e.LoadBase(tbl, r.Clone())
				}
				return e
			}},
			{"classical", 5, func() baseline.Engine {
				e := baseline.NewClassicalIVM(q.Def, q.BaseSchemas())
				for tbl, r := range warm {
					e.LoadBase(tbl, r.Clone())
				}
				return e
			}},
			{"recursive", 50, func() baseline.Engine {
				ex := compile.NewExecutor(prog)
				ex.InitFromBases(warm)
				return recursiveEngine{ex}
			}},
		}
		for _, e := range engines {
			row := []string{name, e.label, ""}
			if e.label == "recursive" {
				ex := compile.NewExecutor(prog)
				ex.InitFromBases(warm)
				ex.SingleTuple = true
				row[2] = f0(measureRefreshRate(q, recursiveEngine{ex}, cfg.Seed, 1000, 2))
			}
			// One engine instance per row: warm initialization is the
			// dominant cost and refresh rates remain steady-state as the
			// measured batches accumulate.
			eng := e.mk()
			for i, bs := range BatchSizes {
				row = append(row, f0(measureRefreshRate(q, eng, cfg.Seed+int64(i), bs, e.maxBatches)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table2 reproduces the cache-locality experiment: TPC-H Q3 maintained
// at several batch sizes with every record touch fed through the cache
// simulator.
func Table2(cfg LocalConfig) (*Table, error) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table 2: simulated cache locality of TPC-H Q3 (per batch size)",
		Columns: []string{"batch", "ops (instr proxy)", "L1 refs", "L1 misses", "LLC refs", "LLC misses"},
		Notes: "paper shape: batch=1 executes ~10x more work than batch=1000; " +
			"LLC refs/misses bottom out at mid-size batches",
	}
	sizes := append([]int{}, BatchSizes...)
	for _, bs := range sizes {
		prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ex := compile.NewExecutor(prog)
		h := cachesim.NewHierarchy()
		ex.Tracer = func(rel string, hash uint64) { h.Access(hash) }
		gen := tpch.NewGenerator(cfg.SF, cfg.Seed)
		init := map[string]*mring.Relation{}
		for _, tbl := range q.Tables {
			init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
		ex.InitFromBases(init)
		stream := tpch.NewStream(gen, q.Tables)
		for {
			bsz := stream.NextBatches(bs)
			if len(bsz) == 0 {
				break
			}
			for _, b := range bsz {
				ex.ApplyBatch(b.Table, b.Rel)
			}
		}
		ops := ex.Stats.Lookups + ex.Stats.Scans + ex.Stats.Emits
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bs),
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", h.L1.Refs),
			fmt.Sprintf("%d", h.L1.Misses),
			fmt.Sprintf("%d", h.LLC.Refs),
			fmt.Sprintf("%d", h.LLC.Misses),
		})
	}
	return t, nil
}

// AblationPreAgg quantifies batch pre-aggregation (the Sec. 3.3 design
// choice): throughput with and without it, per query.
func AblationPreAgg(cfg LocalConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablation: batch pre-aggregation on/off (throughput ratio on/off, batch=1000)",
		Columns: []string{"query", "with", "without", "ratio"},
		Notes:   "paper: pre-aggregation brings up to 3 orders of magnitude (Q20/Q22-class)",
	}
	on := compile.DefaultOptions()
	off := on
	off.PreAggregate = false
	for _, q := range tpch.Queries() {
		if !cfg.wants(q.Name) {
			continue
		}
		n1, d1, err := runLocalStream(q, cfg.SF, cfg.Seed, 1000, false, on)
		if err != nil {
			return nil, err
		}
		n2, d2, err := runLocalStream(q, cfg.SF, cfg.Seed, 1000, false, off)
		if err != nil {
			return nil, err
		}
		tp1 := float64(n1) / d1.Seconds()
		tp2 := float64(n2) / d2.Seconds()
		t.Rows = append(t.Rows, []string{q.Name, f0(tp1), f0(tp2), f2(tp1 / tp2)})
	}
	return t, nil
}

// AblationDomainExtraction compares nested-query maintenance with and
// without the Fig. 1 rewrite.
func AblationDomainExtraction(cfg LocalConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablation: domain extraction on/off for nested TPC-H queries (batch=1000)",
		Columns: []string{"query", "with (tup/s)", "without (tup/s)", "speedup"},
		Notes:   "without domain extraction, deltas of nested queries re-evaluate the query twice per batch",
	}
	on := compile.DefaultOptions()
	off := on
	off.DomainExtraction = false
	off.ReEvalUncorrelated = false
	for _, q := range tpch.Queries() {
		if !q.Nested || !cfg.wants(q.Name) {
			continue
		}
		n1, d1, err := runLocalStream(q, cfg.SF, cfg.Seed, 1000, false, on)
		if err != nil {
			return nil, err
		}
		// The naive variant is drastically slower; run it at reduced scale.
		n2, d2, err := runLocalStream(q, cfg.SF/5, cfg.Seed, 1000, false, off)
		if err != nil {
			return nil, err
		}
		tp1 := float64(n1) / d1.Seconds()
		tp2 := float64(n2) / d2.Seconds()
		t.Rows = append(t.Rows, []string{q.Name, f0(tp1), f0(tp2), f2(tp1 / tp2)})
	}
	return t, nil
}

// MemoryReport shows the auxiliary-view footprint per query after the
// full stream (the Sec. 6.1 memory-requirements discussion).
func MemoryReport(cfg LocalConfig) (*Table, error) {
	t := &Table{
		Title:   "Memory: materialized tuples across all auxiliary views after the stream",
		Columns: []string{"query", "views", "tuples", "stream tuples"},
		Notes:   "auxiliary views stay below fact-table size (star schema integrity argument)",
	}
	for _, q := range tpch.Queries() {
		if !cfg.wants(q.Name) {
			continue
		}
		prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ex := compile.NewExecutor(prog)
		gen := tpch.NewGenerator(cfg.SF, cfg.Seed)
		init := map[string]*mring.Relation{}
		for _, tbl := range q.Tables {
			if tbl == tpch.Nation || tbl == tpch.Region {
				init[tbl] = gen.Static(tbl)
			} else {
				init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
			}
		}
		ex.InitFromBases(init)
		stream := tpch.NewStream(gen, q.Tables)
		streamed := 0
		for {
			bs := stream.NextBatches(1000)
			if len(bs) == 0 {
				break
			}
			for _, b := range bs {
				streamed += b.Rel.Len()
				ex.ApplyBatch(b.Table, b.Rel)
			}
		}
		t.Rows = append(t.Rows, []string{
			q.Name,
			fmt.Sprintf("%d", len(prog.Views)),
			fmt.Sprintf("%d", ex.MemoryFootprint()),
			fmt.Sprintf("%d", streamed),
		})
	}
	return t, nil
}
