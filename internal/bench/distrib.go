package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/mring"
	"repro/internal/pool"
	"repro/internal/tpch"
)

// DistConfig scales the distributed experiments. Worker counts and batch
// sizes are scaled down from the paper's 50–1000 workers / 50M–400M
// tuples; the virtual-time platform model keeps the latency shape.
type DistConfig struct {
	Seed int64
	// WeakWorkers are the worker counts of the weak-scaling sweep.
	WeakWorkers []int
	// PerWorkerBatch is the per-worker batch partition size (the paper
	// uses 100,000).
	PerWorkerBatch int
	// StrongWorkers and StrongBatches drive the strong-scaling sweep.
	StrongWorkers []int
	StrongBatches []int
	// BatchesPerPoint is how many batches each point averages over.
	BatchesPerPoint int
}

// DefaultDistConfig is the quick-run configuration.
func DefaultDistConfig() DistConfig {
	return DistConfig{
		Seed:            1,
		WeakWorkers:     []int{8, 16, 32, 64, 128, 256},
		PerWorkerBatch:  400,
		StrongWorkers:   []int{8, 16, 32, 64, 128},
		StrongBatches:   []int{25_000, 50_000, 100_000},
		BatchesPerPoint: 3,
	}
}

// WeakQueries are the queries of Fig. 9.
var WeakQueries = []string{"Q6", "Q17", "Q3", "Q7"}

// deployment bundles a compiled distributed query.
type deployment struct {
	query  tpch.Query
	prog   *compile.Program
	parts  dist.PartInfo
	dprogs map[string]*dist.DistProgram
}

func deploy(name string, level dist.OptLevel) (*deployment, error) {
	q, err := tpch.QueryByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	parts := dist.ChoosePartitioning(prog, tpch.PrimaryKeyRanks)
	return &deployment{
		query:  q,
		prog:   prog,
		parts:  parts,
		dprogs: dist.CompileProgram(prog, parts, level),
	}, nil
}

// newCluster builds a cluster preloaded with the query's static
// dimensions (ingested through the normal worker-side path).
func (d *deployment) newCluster(workers int, gen *tpch.Generator, seed int64) (*cluster.Cluster, error) {
	cl := cluster.New(cluster.DefaultConfig(workers), dist.ViewSchemas(d.prog), d.parts)
	for _, tbl := range d.query.Tables {
		if tbl != tpch.Nation && tbl != tpch.Region {
			continue
		}
		static := gen.Static(tbl)
		if _, err := cl.RunPartitioned(d.dprogs[tbl], splitBatch(static, workers, seed)); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// splitBatch spreads a batch roughly equally and randomly over the
// workers (each worker receives a fraction of the input stream,
// Sec. 6.2).
func splitBatch(batch *mring.Relation, workers int, seed int64) []*mring.Relation {
	out := make([]*mring.Relation, workers)
	for i := range out {
		out[i] = mring.NewRelation(batch.Schema())
	}
	i := int(seed)
	batch.Foreach(func(t mring.Tuple, m float64) {
		out[i%workers].Add(t, m)
		i++
	})
	return out
}

// lineitemBatch draws a batch of n lineitem rows.
func lineitemBatch(gen *tpch.Generator, table string, n int) *mring.Relation {
	out := mring.NewRelation(tpch.Schemas[table])
	for i := 0; i < n; i++ {
		out.Add(gen.Tuple(table), 1)
	}
	return out
}

// mixedBatch draws one stream chunk of n tuples across the query's
// stream tables and returns per-table batches.
func mixedBatch(s *tpch.Stream, n int) []tpch.Batch { return s.NextBatches(n) }

// runBatches pushes count batches of total size batchSize through the
// deployment at the given worker count and returns median-ish (mean)
// latency and throughput.
func (d *deployment) runBatches(workers, batchSize, count int, seed int64) (time.Duration, float64, cluster.Metrics, error) {
	gen := tpch.NewGenerator(4, seed)
	cl, err := d.newCluster(workers, gen, seed)
	if err != nil {
		return 0, 0, cluster.Metrics{}, err
	}
	stream := tpch.NewStream(gen, d.query.Tables)
	var total cluster.Metrics
	tuples := 0
	for b := 0; b < count; b++ {
		for _, batch := range mixedBatch(stream, batchSize) {
			n := batch.Rel.Len()
			m, err := cl.RunPartitioned(d.dprogs[batch.Table], splitBatch(batch.Rel, workers, seed))
			if err != nil {
				return 0, 0, total, err
			}
			total.Add(m)
			tuples += n
		}
	}
	if count == 0 || tuples == 0 {
		return 0, 0, total, fmt.Errorf("bench: empty run")
	}
	per := total.Latency / time.Duration(count)
	tput := float64(tuples) / total.Latency.Seconds()
	return per, tput, total, nil
}

// Fig9 is the weak-scaling experiment: per-worker batch partitions of
// fixed size, worker counts swept; latency and throughput reported.
func Fig9(cfg DistConfig) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 9: weak scaling (%d tuples/worker): latency and throughput vs workers",
			cfg.PerWorkerBatch),
		Columns: []string{"query", "workers", "latency", "tput (Mtup/s)", "shuffle/worker (KB)"},
		Notes: "paper shape: Q6 latency ≈ pure sync overhead growing with workers; " +
			"Q17/Q3 throughput rises then flattens; Q7 latency grows fastest (most shuffling)",
	}
	for _, name := range WeakQueries {
		dep, err := deploy(name, dist.O3)
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.WeakWorkers {
			batch := cfg.PerWorkerBatch * w
			per, tput, m, err := dep.runBatches(w, batch, cfg.BatchesPerPoint, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s w=%d: %w", name, w, err)
			}
			shufPerWorker := float64(m.ShuffledBytes) / float64(w) / float64(cfg.BatchesPerPoint) / 1024
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", w), d3(per),
				fmt.Sprintf("%.2f", tput/1e6), f2(shufPerWorker),
			})
		}
	}
	return t, nil
}

// Fig10 is the strong-scaling experiment: fixed total batch sizes,
// worker counts swept, with a distributed re-evaluation comparison
// (the paper's Spark SQL baseline) at the largest batch size.
func Fig10(cfg DistConfig) (*Table, error) {
	t := &Table{
		Title:   "Figures 10/11: strong scaling: batch processing latency vs workers per batch size",
		Columns: []string{"query", "workers"},
		Notes: "paper shape: latency declines with workers until sync overhead dominates; " +
			"re-evaluation (Spark-SQL stand-in) is 3-20x slower at the largest batch",
	}
	for _, bs := range cfg.StrongBatches {
		t.Columns = append(t.Columns, fmt.Sprintf("bs=%dk", bs/1000))
	}
	t.Columns = append(t.Columns, "reeval(max bs)")
	for _, name := range WeakQueries {
		dep, err := deploy(name, dist.O3)
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.StrongWorkers {
			row := []string{name, fmt.Sprintf("%d", w)}
			for _, bs := range cfg.StrongBatches {
				per, _, _, err := dep.runBatches(w, bs, cfg.BatchesPerPoint, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("%s w=%d bs=%d: %w", name, w, bs, err)
				}
				row = append(row, d3(per))
			}
			re, err := distributedReEval(dep, w, cfg.StrongBatches[len(cfg.StrongBatches)-1], cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, d3(re))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// distributedReEval models the paper's Spark SQL comparison: every batch
// triggers a full recomputation of the query over the accumulated base
// tables, executed as one distributed scan+aggregate whose per-worker
// compute is the re-evaluation work divided across workers, plus the
// platform costs. The accumulated table grows with each batch.
func distributedReEval(dep *deployment, workers, batchSize int, seed int64) (time.Duration, error) {
	gen := tpch.NewGenerator(4, seed)
	// Accumulate three batches and measure recomputation cost of the last.
	accum := map[string]*mring.Relation{}
	for _, tbl := range dep.query.Tables {
		if tbl == tpch.Nation || tbl == tpch.Region {
			accum[tbl] = gen.Static(tbl)
		} else {
			accum[tbl] = mring.NewRelation(tpch.Schemas[tbl])
		}
	}
	stream := tpch.NewStream(gen, dep.query.Tables)
	for b := 0; b < 3; b++ {
		for _, batch := range stream.NextBatches(batchSize) {
			accum[batch.Table].Merge(batch.Rel)
		}
	}
	env := eval.NewEnv()
	for n, r := range accum {
		env.Bind(n, r)
	}
	ctx := eval.NewCtx(env)
	start := time.Now()
	ctx.Materialize(dep.query.Def)
	sequential := time.Since(start)
	cfg := cluster.DefaultConfig(workers)
	// Perfectly parallelized scan work plus one scheduling round and one
	// shuffle of the full result — an optimistic stand-in.
	perWorker := time.Duration(int64(sequential) / int64(workers))
	sched := cfg.SchedBase + time.Duration(workers)*cfg.SchedPerWorker
	return perWorker + 2*sched + 2*cfg.NetLatency, nil
}

// Table3 reports the jobs/stages complexity of every TPC-H query: the
// fused block structure of one combined update batch (all stream
// relations), per the partitioning heuristic of Sec. 6.2.
func Table3() (*Table, error) {
	t := &Table{
		Title:   "Table 3: view maintenance complexity of TPC-H queries in the distributed runtime",
		Columns: []string{"query", "jobs", "stages", "blocks", "views"},
		Notes:   "paper shape: simple aggregates need 1 job/1 stage; multi-join queries up to 3 jobs/7 stages",
	}
	for _, q := range tpch.Queries() {
		dep, err := deploy(q.Name, dist.O3)
		if err != nil {
			return nil, err
		}
		jobs, stages, blocks := 0, 0, 0
		for _, tbl := range q.Tables {
			if tbl == tpch.Nation || tbl == tpch.Region {
				continue
			}
			dp := dep.dprogs[tbl]
			if dp.Jobs() > jobs {
				jobs = dp.Jobs()
			}
			stages += dp.Stages()
			blocks += len(dp.Blocks)
		}
		t.Rows = append(t.Rows, []string{
			q.Name, fmt.Sprintf("%d", jobs), fmt.Sprintf("%d", stages),
			fmt.Sprintf("%d", blocks), fmt.Sprintf("%d", len(dep.prog.Views)),
		})
	}
	return t, nil
}

// Fig5 shows the block-fusion effect on TPC-H Q3: statement blocks
// before and after running the App. C.3 algorithm, per trigger.
func Fig5() (*Table, error) {
	t := &Table{
		Title:   "Figure 5: block fusion effect on TPC-H Q3 (blocks before -> after, per trigger)",
		Columns: []string{"trigger", "local before", "dist before", "local after", "dist after"},
		Notes:   "paper: 10 local + 12 distributed blocks fuse into 2 local + 2 distributed",
	}
	before, err := deploy("Q3", dist.O1) // no fusion
	if err != nil {
		return nil, err
	}
	after, err := deploy("Q3", dist.O3)
	if err != nil {
		return nil, err
	}
	count := func(dp *dist.DistProgram) (local, distb int) {
		for _, b := range dp.Blocks {
			if b.Mode == dist.LDist {
				distb++
			} else {
				local++
			}
		}
		return
	}
	for _, tbl := range []string{tpch.Lineitem, tpch.Orders, tpch.Customer} {
		lb, db := count(before.dprogs[tbl])
		la, da := count(after.dprogs[tbl])
		t.Rows = append(t.Rows, []string{
			tbl,
			fmt.Sprintf("%d", lb), fmt.Sprintf("%d", db),
			fmt.Sprintf("%d", la), fmt.Sprintf("%d", da),
		})
	}
	return t, nil
}

// Fig13 is the optimization ablation on Q3: O0 through O3 latency at a
// sweep of worker counts.
func Fig13(cfg DistConfig) (*Table, error) {
	t := &Table{
		Title:   "Figure 13: optimization effects on distributed Q3 (latency per batch)",
		Columns: []string{"workers", "O0 naive", "O1 locality", "O2 +xform CSE", "O3 +fusion"},
		Notes:   "paper: block fusion brings the largest boost and enables scalable execution",
	}
	levels := []dist.OptLevel{dist.O0, dist.O1, dist.O2, dist.O3}
	deps := make([]*deployment, len(levels))
	for i, lv := range levels {
		d, err := deploy("Q3", lv)
		if err != nil {
			return nil, err
		}
		deps[i] = d
	}
	for _, w := range cfg.StrongWorkers {
		row := []string{fmt.Sprintf("%d", w)}
		for _, d := range deps {
			per, _, _, err := d.runBatches(w, cfg.StrongBatches[0], cfg.BatchesPerPoint, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig13 w=%d: %w", w, err)
			}
			row = append(row, d3(per))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// encodeColumnar / encodeRow serialize through the two wire formats.
func encodeColumnar(r *mring.Relation) []byte { return pool.FromRelation(r).Encode() }

func encodeRow(r *mring.Relation) []byte { return pool.EncodeRowFormat(r) }

// AblationColumnarShuffle compares columnar vs row wire formats on the
// shuffled payloads of a distributed Q3 run (Sec. 5.2.2).
func AblationColumnarShuffle(cfg DistConfig) (*Table, error) {
	dep, err := deploy("Q3", dist.O3)
	if err != nil {
		return nil, err
	}
	gen := tpch.NewGenerator(2, cfg.Seed)
	stream := tpch.NewStream(gen, dep.query.Tables)
	t := &Table{
		Title:   "Ablation: columnar vs row serialization of shuffle payloads (bytes)",
		Columns: []string{"batch", "columnar (KB)", "row (KB)", "ratio"},
		Notes:   "columnar encoding amortizes headers and packs typed columns (Sec. 5.2.2)",
	}
	for i := 0; i < 4; i++ {
		var colBytes, rowBytes int
		for _, b := range stream.NextBatches(20000) {
			colBytes += len(encodeColumnar(b.Rel))
			rowBytes += len(encodeRow(b.Rel))
		}
		if colBytes == 0 {
			break
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", colBytes/1024),
			fmt.Sprintf("%d", rowBytes/1024),
			f2(float64(rowBytes) / float64(colBytes)),
		})
	}
	return t, nil
}
