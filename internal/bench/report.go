// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. 6 and the appendices) on the scaled-down workloads.
// Each experiment returns structured rows plus a formatted text table;
// cmd/hotdog prints them and EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries interpretation guidance (what shape to expect).
	Notes string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func d3(d time.Duration) string {
	return fmt.Sprintf("%.3gs", d.Seconds())
}

// BatchSizes is the paper's local batch-size sweep.
var BatchSizes = []int{1, 10, 100, 1000, 10000}
