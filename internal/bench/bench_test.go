package bench

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/mring"
	"repro/internal/tpch"
)

// tiny configurations keep the harness smoke tests fast.
func tinyLocal() LocalConfig {
	return LocalConfig{SF: 0.05, Seed: 1, Queries: []string{"Q1", "Q3", "Q6", "Q17", "DS42"}}
}

func tinyDist() DistConfig {
	return DistConfig{
		Seed:            1,
		WeakWorkers:     []int{2, 4},
		PerWorkerBatch:  50,
		StrongWorkers:   []int{2, 4},
		StrongBatches:   []int{200, 400},
		BatchesPerPoint: 1,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	tab, err := Fig7(tinyLocal())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // Q1, Q3, Q6, Q17
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if len(tab.Columns) != 1+len(BatchSizes) {
		t.Fatalf("columns = %d", len(tab.Columns))
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warm-up is expensive")
	}
	tab, err := Fig8(LocalConfig{SF: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // three engines for Q17
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
}

func TestFig12Smoke(t *testing.T) {
	tab, err := Fig12(tinyLocal())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 { // DS42
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
}

func TestTable2Smoke(t *testing.T) {
	tab, err := Table2(LocalConfig{SF: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(BatchSizes) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable3Smoke(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 15 {
		t.Fatalf("expected a row per TPC-H query, got %d", len(tab.Rows))
	}
	// Q6 must be the simplest: 1 job, 1 stage.
	for _, r := range tab.Rows {
		if r[0] == "Q6" && (r[1] != "1" || r[2] != "1") {
			t.Fatalf("Q6 should be 1 job / 1 stage: %v", r)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	tab, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 triggers", len(tab.Rows))
	}
	// Fusion must not increase block counts.
	for _, r := range tab.Rows {
		if r[3] > r[1] && len(r[3]) >= len(r[1]) {
			t.Fatalf("local blocks grew after fusion: %v", r)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	tab, err := Fig9(tinyDist())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(WeakQueries)*2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig13Smoke(t *testing.T) {
	tab, err := Fig13(tinyDist())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationsSmoke(t *testing.T) {
	if _, err := AblationPreAgg(tinyLocal()); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationColumnarShuffle(tinyDist()); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAggGroupUpdate measures the grouped-aggregate maintenance hot
// path end to end: TPC-H Q1 (pricing summary, the Q1-style group-by) fed
// pre-generated lineitem batches through the compiled executor, so every
// iteration exercises the batch pre-aggregation and view-update group
// tables. Recorded as AggGroupUpdate in BENCH_<pr>.json alongside the
// microbenchmark in cmd/benchjson.
func BenchmarkAggGroupUpdate(b *testing.B) {
	q, err := tpch.QueryByName("Q1")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	gen := tpch.NewGenerator(0.5, 1)
	stream := tpch.NewStream(gen, q.Tables)
	var batches []*mring.Relation
	for {
		bs := stream.NextBatches(1000)
		if len(bs) == 0 {
			break
		}
		for _, bb := range bs {
			batches = append(batches, bb.Rel)
		}
	}
	ex := compile.NewExecutor(prog)
	init := map[string]*mring.Relation{}
	for _, tbl := range q.Tables {
		init[tbl] = mring.NewRelation(tpch.Schemas[tbl])
	}
	ex.InitFromBases(init)
	tuples := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := batches[i%len(batches)]
		tuples += batch.Len()
		ex.ApplyBatch(tpch.Lineitem, batch)
	}
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
}
