package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// WAL segment layout:
//
//	header:  "IVWL" | version byte | u64 BE generation     (13 bytes)
//	record:  u32 BE len(body) | body | u32 BE crc32(body)  (IEEE)
//
// Appends are fsync'd per the store's sync policy; the header is synced
// at creation so a segment is never observed without it.
const (
	walMagic     = "IVWL"
	walVersion   = 1
	walHeaderLen = len(walMagic) + 1 + 8
)

func walHeader(gen uint64) []byte {
	h := make([]byte, 0, walHeaderLen)
	h = append(h, walMagic...)
	h = append(h, walVersion)
	h = binary.BigEndian.AppendUint64(h, gen)
	return h
}

// AppendRecordFrame frames an encoded record body for the log: length
// prefix, body, trailing CRC over the body.
func AppendRecordFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}

// ScanResult is the outcome of scanning one WAL segment.
type ScanResult struct {
	Gen     uint64
	Records []Record
	// ValidLen is the byte offset of the end of the last valid record
	// (including the header); a torn tail is truncated back to it.
	ValidLen int
	// TornTail reports that the segment ended in an incomplete or
	// corrupt FINAL record, which was dropped. Only legal in the active
	// (newest) segment: an append was in flight when the process died.
	TornTail bool
}

// ScanSegment decodes a whole WAL segment. active marks the newest
// segment, the only place a torn tail is expected: there, a truncated or
// corrupt final record is dropped (reported via TornTail) because a
// crash mid-append legitimately leaves one. Everywhere else — sealed
// segments, or corruption that is FOLLOWED by more bytes — damage means
// the log is unusable and scanning errors instead, so recovery never
// silently skips interior history.
func ScanSegment(data []byte, active bool) (ScanResult, error) {
	var res ScanResult
	if len(data) < walHeaderLen {
		return res, fmt.Errorf("store: segment shorter than header (%d bytes)", len(data))
	}
	if string(data[:len(walMagic)]) != walMagic {
		return res, fmt.Errorf("store: bad segment magic %q", data[:len(walMagic)])
	}
	if v := data[len(walMagic)]; v != walVersion {
		return res, fmt.Errorf("store: unsupported segment version %d (have %d)", v, walVersion)
	}
	res.Gen = binary.BigEndian.Uint64(data[len(walMagic)+1 : walHeaderLen])
	off := walHeaderLen
	res.ValidLen = off

	torn := func(reason string) (ScanResult, error) {
		if !active {
			return res, fmt.Errorf("store: sealed segment gen %d: %s at offset %d", res.Gen, reason, off)
		}
		res.TornTail = true
		return res, nil
	}

	for off < len(data) {
		if len(data)-off < 4 {
			return torn("truncated length prefix")
		}
		l := int(binary.BigEndian.Uint32(data[off : off+4]))
		if l < 1 || l > MaxRecord {
			// A torn append cannot produce a garbage length (appends land
			// prefix-first and the file is never preallocated), so a bad
			// length is corruption even at the tail.
			return res, fmt.Errorf("store: corrupt record length %d at offset %d", l, off)
		}
		if len(data)-off < 4+l+4 {
			return torn("truncated record")
		}
		body := data[off+4 : off+4+l]
		crc := binary.BigEndian.Uint32(data[off+4+l : off+8+l])
		if crc32.ChecksumIEEE(body) != crc {
			if active && off+8+l == len(data) {
				// Corrupt FINAL record: dropped, like a torn one.
				res.TornTail = true
				return res, nil
			}
			return res, fmt.Errorf("store: corrupt interior record at offset %d (crc mismatch)", off)
		}
		rec, err := DecodeRecord(body)
		if err != nil {
			// The CRC passed, so these bytes were written whole: this is
			// not a torn write but a format error. Fail loudly.
			return res, fmt.Errorf("store: record at offset %d: %w", off, err)
		}
		res.Records = append(res.Records, rec)
		off += 8 + l
		res.ValidLen = off
	}
	return res, nil
}

// walWriter appends framed records to one segment file under a sync
// policy: syncEvery == 1 fsyncs each append (commit durability),
// syncEvery == n > 1 fsyncs every n-th append (group commit: up to n-1
// acked transactions can be lost on crash), syncEvery < 0 never fsyncs
// on append (benchmarking / OS-crash-only durability). Sync barriers
// (checkpoint, close) always flush regardless of policy.
type walWriter struct {
	f         *os.File
	syncEvery int
	pending   int
	buf       []byte

	records int64
	bytes   int64
	syncs   int64
}

// createSegment writes a fresh segment with a synced header.
func createSegment(path string, gen uint64, syncEvery int) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walHeader(gen)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, syncEvery: syncEvery}, nil
}

// openSegment opens an existing segment for appending at size (the
// validated length; anything past it was a torn tail, already truncated).
func openSegment(path string, syncEvery int) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, syncEvery: syncEvery}, nil
}

func (w *walWriter) append(body []byte) error {
	w.buf = AppendRecordFrame(w.buf[:0], body)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.records++
	w.bytes += int64(len(w.buf))
	w.pending++
	if w.syncEvery > 0 && w.pending >= w.syncEvery {
		return w.sync()
	}
	return nil
}

// sync flushes any unsynced appends to stable storage.
func (w *walWriter) sync() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.pending = 0
	w.syncs++
	return nil
}

func (w *walWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
