package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Options configures a Store.
type Options struct {
	// SyncEvery is the WAL fsync policy: 1 (default) syncs every append
	// before the transaction is acked; n > 1 is group commit, syncing
	// every n-th append (a crash can lose up to n-1 acked transactions);
	// negative disables append-time syncs entirely. Checkpoint and Close
	// always sync regardless.
	SyncEvery int
	// Retain is how many checkpoint generations to keep (default 2). The
	// newer ones are fallbacks if the newest file is damaged; WAL
	// segments are kept back to the oldest retained checkpoint.
	Retain int
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.Retain == 0 {
		o.Retain = 2
	}
	return o
}

// Recovery describes what Open found in an existing directory. The
// engine restores Checkpoint (if any) and replays Records in order.
type Recovery struct {
	// HasCheckpoint is false on a fresh (or checkpoint-less) directory.
	HasCheckpoint bool
	// Gen is the generation of the restored checkpoint (the store
	// continues appending to segment Gen).
	Gen uint64
	// Seq is the delta-stream sequence number stored in the checkpoint.
	Seq int64
	// Checkpoint is the opaque snapshot body (cluster.EncodeCheckpoint).
	Checkpoint []byte
	// Records is the WAL tail since the checkpoint, in append order.
	Records []Record
	// TornTail reports a dropped incomplete/corrupt final record.
	TornTail bool
	// SkippedCheckpoints counts newer checkpoint files that failed
	// validation and were passed over for an older one.
	SkippedCheckpoints int
	// Segments is how many WAL segments were scanned.
	Segments int
}

// Stats is a snapshot of the store's I/O counters.
type Stats struct {
	Gen                 uint64
	Records             int64
	Bytes               int64
	Syncs               int64
	Checkpoints         int64
	LastCheckpointBytes int64
}

// Store is an open durability directory: one active WAL segment plus the
// retained checkpoints. Not safe for concurrent use; the engine
// serializes access under its backend lock.
type Store struct {
	dir  string
	opt  Options
	gen  uint64
	w    *walWriter
	ckps int64
	last int64
	// Totals carried over from sealed segments' writers.
	recs, bytes, syncs int64
}

// Open opens (creating if needed) a durability directory and returns the
// recovery state found in it: the newest valid checkpoint and the WAL
// records appended since. A torn tail on the active segment is truncated
// so appends continue from the last valid record; corruption anywhere
// else fails Open. The caller must fully apply the recovery before
// appending new records.
func Open(dir string, opt Options) (*Store, *Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{}
	gen, seq, body, skipped, ok, err := latestCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	rec.SkippedCheckpoints = skipped
	if ok {
		rec.HasCheckpoint = true
		rec.Gen = gen
		rec.Seq = seq
		rec.Checkpoint = body
	}

	segs, err := listGens(dir, "wal-", ".log")
	if err != nil {
		return nil, nil, err
	}
	// Only segments at or after the restored checkpoint's generation
	// matter; older ones are fully covered by the checkpoint (they
	// survive GC only to serve OLDER retained checkpoints).
	live := segs[:0:0]
	for _, g := range segs {
		if g >= gen {
			live = append(live, g)
		}
	}
	cur := gen // segment to append to, created below if absent
	for i, g := range live {
		active := i == len(live)-1
		path := filepath.Join(dir, walName(g))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := ScanSegment(data, active)
		if err != nil {
			return nil, nil, err
		}
		if res.Gen != g {
			return nil, nil, fmt.Errorf("store: segment %s claims generation %d", walName(g), res.Gen)
		}
		rec.Records = append(rec.Records, res.Records...)
		rec.Segments++
		if res.TornTail {
			rec.TornTail = true
			if err := os.Truncate(path, int64(res.ValidLen)); err != nil {
				return nil, nil, err
			}
		}
		cur = g
	}

	s := &Store{dir: dir, opt: opt, gen: cur}
	exists := false
	for _, g := range live {
		if g == cur {
			exists = true
		}
	}
	path := filepath.Join(dir, walName(cur))
	if exists {
		s.w, err = openSegment(path, opt.SyncEvery)
	} else {
		s.w, err = createSegment(path, cur, opt.SyncEvery)
		if err == nil {
			err = syncDir(dir)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// Append logs one record under the sync policy. When it returns nil
// under SyncEvery == 1 the record is on stable storage.
func (s *Store) Append(r Record) error {
	return s.w.append(EncodeRecord(r))
}

// Sync forces any unsynced appends to stable storage (a barrier for
// group-commit mode).
func (s *Store) Sync() error { return s.w.sync() }

// Checkpoint durably installs a new snapshot and rolls the log: the
// current segment is synced and sealed, checkpoint-<gen+1>.ckpt lands
// atomically, a fresh wal-<gen+1>.log opens for subsequent appends, and
// generations beyond the retention window are garbage-collected.
func (s *Store) Checkpoint(seq int64, body []byte) error {
	if err := s.w.sync(); err != nil {
		return err
	}
	next := s.gen + 1
	if err := writeCheckpointFile(s.dir, next, seq, body); err != nil {
		return err
	}
	nw, err := createSegment(filepath.Join(s.dir, walName(next)), next, s.opt.SyncEvery)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		nw.close()
		return err
	}
	old := s.w
	s.recs += old.records
	s.bytes += old.bytes
	s.syncs += old.syncs
	s.w, s.gen = nw, next
	s.ckps++
	s.last = int64(len(body))
	if err := old.close(); err != nil {
		return err
	}
	return gc(s.dir, s.opt.Retain)
}

// Close syncs and closes the active segment. It does NOT write a
// checkpoint; the engine does that first on clean shutdown.
func (s *Store) Close() error { return s.w.close() }

// Gen returns the current checkpoint generation.
func (s *Store) Gen() uint64 { return s.gen }

// Stats returns a snapshot of the store's I/O counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gen:                 s.gen,
		Records:             s.recs + s.w.records,
		Bytes:               s.bytes + s.w.bytes,
		Syncs:               s.syncs + s.w.syncs,
		Checkpoints:         s.ckps,
		LastCheckpointBytes: s.last,
	}
}
