package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint file layout:
//
//	"IVCK" | version byte | u64 BE seq | u32 BE len(body) | body | u32 BE crc
//
// The CRC covers everything before it. body is opaque to the store — the
// engine passes cluster.EncodeCheckpoint output, which carries its own
// magic/format-version header. seq is the engine's delta-stream sequence
// number at snapshot time, so subscriber sequence numbering continues
// exactly after recovery. Files land via write-to-temp + fsync + rename
// + directory fsync, so a crash mid-write never leaves a half checkpoint
// under the final name.
const (
	ckptMagic   = "IVCK"
	ckptVersion = 1
)

func ckptName(gen uint64) string { return fmt.Sprintf("checkpoint-%d.ckpt", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }

// parseGen extracts <gen> from names like prefix-<gen>suffix.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	g, err := strconv.ParseUint(mid, 10, 64)
	return g, err == nil
}

func encodeCheckpointFile(seq int64, body []byte) []byte {
	buf := make([]byte, 0, len(ckptMagic)+1+8+4+len(body)+4)
	buf = append(buf, ckptMagic...)
	buf = append(buf, ckptVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeCheckpointFile(data []byte) (seq int64, body []byte, err error) {
	head := len(ckptMagic) + 1 + 8 + 4
	if len(data) < head+4 {
		return 0, nil, fmt.Errorf("store: checkpoint file too short (%d bytes)", len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, fmt.Errorf("store: bad checkpoint magic %q", data[:len(ckptMagic)])
	}
	if v := data[len(ckptMagic)]; v != ckptVersion {
		return 0, nil, fmt.Errorf("store: unsupported checkpoint version %d (have %d)", v, ckptVersion)
	}
	seq = int64(binary.BigEndian.Uint64(data[len(ckptMagic)+1:]))
	blen := int(binary.BigEndian.Uint32(data[len(ckptMagic)+9:]))
	if blen < 0 || len(data) != head+blen+4 {
		return 0, nil, fmt.Errorf("store: checkpoint body length %d does not match file size %d", blen, len(data))
	}
	crc := binary.BigEndian.Uint32(data[head+blen:])
	if crc32.ChecksumIEEE(data[:head+blen]) != crc {
		return 0, nil, fmt.Errorf("store: checkpoint crc mismatch")
	}
	return seq, data[head : head+blen : head+blen], nil
}

// writeCheckpointFile writes checkpoint-<gen>.ckpt atomically.
func writeCheckpointFile(dir string, gen uint64, seq int64, body []byte) error {
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeCheckpointFile(seq, body)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(gen))); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listGens returns the sorted generations present for the given file
// name pattern (checkpoints or WAL segments).
func listGens(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), prefix, suffix); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// latestCheckpoint finds the newest checkpoint file that validates,
// counting how many newer ones had to be skipped as corrupt. ok is false
// when no valid checkpoint exists.
func latestCheckpoint(dir string) (gen uint64, seq int64, body []byte, skipped int, ok bool, err error) {
	gens, err := listGens(dir, "checkpoint-", ".ckpt")
	if err != nil {
		return 0, 0, nil, 0, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(filepath.Join(dir, ckptName(gens[i])))
		if rerr == nil {
			if s, b, derr := decodeCheckpointFile(data); derr == nil {
				return gens[i], s, b, skipped, true, nil
			}
		}
		skipped++
	}
	return 0, 0, nil, skipped, false, nil
}

// gc removes checkpoint generations beyond the newest `retain` and any
// WAL segments older than the oldest retained checkpoint (a fallback
// restore from that checkpoint still needs its tail). Best-effort: a
// failed unlink is reported but the store stays usable.
func gc(dir string, retain int) error {
	if retain < 1 {
		retain = 1
	}
	ckpts, err := listGens(dir, "checkpoint-", ".ckpt")
	if err != nil {
		return err
	}
	var firstErr error
	keepFrom := uint64(0)
	if len(ckpts) > retain {
		for _, g := range ckpts[:len(ckpts)-retain] {
			if err := os.Remove(filepath.Join(dir, ckptName(g))); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		ckpts = ckpts[len(ckpts)-retain:]
	}
	if len(ckpts) > 0 {
		keepFrom = ckpts[0]
	}
	segs, err := listGens(dir, "wal-", ".log")
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	for _, g := range segs {
		if g < keepFrom {
			if err := os.Remove(filepath.Join(dir, walName(g))); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
