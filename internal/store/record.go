// Package store is the durability subsystem: a write-ahead log of
// committed transactions plus a versioned checkpoint store, both under
// one directory. The engine appends a WAL record per accepted
// transaction BEFORE acking it, periodically snapshots its full state
// into a checkpoint file, and on reopen restores the newest valid
// checkpoint and replays only the WAL tail written since — recovery cost
// is proportional to the log since the last checkpoint, never a full
// re-evaluation from base tables.
//
// Layout of a store directory:
//
//	checkpoint-<gen>.ckpt   snapshot closing generation <gen>
//	wal-<gen>.log           records accepted during generation <gen>
//
// A checkpoint at generation g captures every record in segments < g, so
// recovery = newest valid checkpoint g* + replay of segments >= g*.
// Records reuse the internal/net payload codec for table contents and
// the same frame-style bounds-guarded decoding discipline: every length
// is checked against the remaining bytes before use, and arbitrary input
// can never panic the decoder (FuzzWALDecode pins this).
package store

import (
	"encoding/binary"
	"fmt"

	inet "repro/internal/net"
)

// Record kinds. A tx record is one accepted transaction (the per-table
// delta batches in fold order); a warm record is a bulk Warm load (the
// full base-table contents). Replaying records in sequence through the
// engine's normal maintenance path reproduces its state bitwise.
const (
	RecTx   byte = 1
	RecWarm byte = 2
)

// MaxRecord bounds a WAL record body, mirroring the transport's frame
// cap so a corrupt length field cannot demand an arbitrary allocation.
const MaxRecord = inet.MaxFrame

// TableFrag is one table's contents inside a record: the batch (or base
// table, for warm records) encoded with inet.EncodeRelationPlain, plus
// the relation's bucket-table size so replay can rebuild the exact
// physical layout (see inet.RestoreIntoExact). An empty relation has a
// nil Payload; its schema is resolved from the program's base schemas.
type TableFrag struct {
	Table   string
	Buckets int
	Payload []byte
}

// Record is one WAL entry. Tables preserve the transaction's fold order.
type Record struct {
	Kind   byte
	Tables []TableFrag
}

// Tuples returns the total row count across the record's fragments (for
// recovery stats). Undecodable fragments count zero; replay will reject
// them properly.
func (r Record) Tuples() int {
	n := 0
	for _, tf := range r.Tables {
		if len(tf.Payload) == 0 {
			continue
		}
		if p, err := inet.DecodePayload(tf.Payload); err == nil {
			n += p.Len()
		}
	}
	return n
}

// EncodeRecord serializes a record body (framing is added by the WAL
// writer): kind byte, uvarint table count, then per table uvarint-length
// name, uvarint bucket count, uvarint-length payload.
func EncodeRecord(r Record) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, tf := range r.Tables {
		size += 3*binary.MaxVarintLen64 + len(tf.Table) + len(tf.Payload)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, r.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(r.Tables)))
	for _, tf := range r.Tables {
		buf = binary.AppendUvarint(buf, uint64(len(tf.Table)))
		buf = append(buf, tf.Table...)
		buf = binary.AppendUvarint(buf, uint64(tf.Buckets))
		buf = binary.AppendUvarint(buf, uint64(len(tf.Payload)))
		buf = append(buf, tf.Payload...)
	}
	return buf
}

// uvarint decodes a varint from b, rejecting values over the given cap.
func uvarint(b []byte, max uint64, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("store: truncated %s", what)
	}
	if v > max {
		return 0, nil, fmt.Errorf("store: %s %d exceeds cap %d", what, v, max)
	}
	return v, b[n:], nil
}

// DecodeRecord parses a record body. It is strict: unknown kinds, any
// out-of-bounds length, an invalid bucket count, or trailing bytes are
// errors. It never panics on arbitrary input.
func DecodeRecord(body []byte) (Record, error) {
	var rec Record
	if len(body) == 0 {
		return rec, fmt.Errorf("store: empty record body")
	}
	rec.Kind = body[0]
	if rec.Kind != RecTx && rec.Kind != RecWarm {
		return rec, fmt.Errorf("store: unknown record kind %d", rec.Kind)
	}
	b := body[1:]
	// Each table needs at least 3 bytes (empty name, zero buckets, empty
	// payload), so the count is bounded by the remaining length.
	ntab, b, err := uvarint(b, uint64(len(b)), "table count")
	if err != nil {
		return rec, err
	}
	rec.Tables = make([]TableFrag, 0, ntab)
	for i := uint64(0); i < ntab; i++ {
		var tf TableFrag
		nameLen, rest, err := uvarint(b, uint64(len(b)), "table name length")
		if err != nil {
			return rec, err
		}
		if uint64(len(rest)) < nameLen {
			return rec, fmt.Errorf("store: table name overruns record")
		}
		tf.Table, b = string(rest[:nameLen]), rest[nameLen:]
		buckets, rest2, err := uvarint(b, inet.MaxRestoreBuckets, "bucket count")
		if err != nil {
			return rec, err
		}
		if buckets != 0 && (buckets < 8 || buckets&(buckets-1) != 0) {
			return rec, fmt.Errorf("store: bucket count %d is not a power of two >= 8", buckets)
		}
		tf.Buckets, b = int(buckets), rest2
		plen, rest3, err := uvarint(b, uint64(len(rest2)), "payload length")
		if err != nil {
			return rec, err
		}
		if uint64(len(rest3)) < plen {
			return rec, fmt.Errorf("store: payload overruns record")
		}
		if plen > 0 {
			tf.Payload = rest3[:plen:plen]
		}
		b = rest3[plen:]
		rec.Tables = append(rec.Tables, tf)
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("store: %d trailing bytes after record", len(b))
	}
	return rec, nil
}
