package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mring"
	inet "repro/internal/net"
)

func testRecord(i int) Record {
	r := mring.NewRelation(mring.Schema{"k", "v"})
	r.Add(mring.Tuple{mring.Int(int64(i)), mring.Int(int64(i * 7))}, 2)
	r.Add(mring.Tuple{mring.Int(int64(i + 100)), mring.Int(3)}, -1)
	return Record{Kind: RecTx, Tables: []TableFrag{{
		Table:   "t",
		Buckets: r.TableSize(),
		Payload: inet.EncodeRelationPlain(r),
	}}}
}

func openAppend(t *testing.T, dir string, n int) {
	t.Helper()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	for i := 0; i < n; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, 5)
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if rec.HasCheckpoint || rec.TornTail {
		t.Fatalf("unexpected recovery flags: %+v", rec)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !reflect.DeepEqual(r, testRecord(i)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Appends continue after recovery.
	if err := s.Append(testRecord(5)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// walPath returns the single active segment.
func walPath(t *testing.T, dir string) string {
	t.Helper()
	gens, err := listGens(dir, "wal-", ".log")
	if err != nil || len(gens) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	return filepath.Join(dir, walName(gens[len(gens)-1]))
}

// TestTornTailTruncatedRecordDropped: a crash mid-append leaves a
// truncated final record; reopen drops it, keeps the prefix, truncates
// the file, and appending continues cleanly.
func TestTornTailTruncatedRecordDropped(t *testing.T) {
	for cut := 1; cut <= 9; cut += 2 {
		dir := t.TempDir()
		openAppend(t, dir, 3)
		p := walPath(t, dir)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if !rec.TornTail || len(rec.Records) != 2 {
			t.Fatalf("cut %d: torn=%v n=%d, want torn with 2 records", cut, rec.TornTail, len(rec.Records))
		}
		if err := s.Append(testRecord(9)); err != nil {
			t.Fatalf("cut %d: append after torn tail: %v", cut, err)
		}
		s.Close()
		// The re-appended record must be readable: the torn bytes are gone.
		_, rec2, err := Open(dir, Options{})
		if err != nil || len(rec2.Records) != 3 {
			t.Fatalf("cut %d: second reopen: n=%d err=%v", cut, len(rec2.Records), err)
		}
	}
}

// TestTornTailCorruptLastRecordDropped: a fully-written final record
// with a bad CRC (bit rot, torn sector) is dropped like a torn one.
func TestTornTailCorruptLastRecordDropped(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, 3)
	p := walPath(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff // inside the last record's body
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if !rec.TornTail || len(rec.Records) != 2 {
		t.Fatalf("torn=%v n=%d, want torn with 2 records", rec.TornTail, len(rec.Records))
	}
}

// TestCorruptInteriorRecordErrors: damage followed by more records means
// history would be silently skipped — that must be a hard error.
func TestCorruptInteriorRecordErrors(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, 3)
	p := walPath(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+6] ^= 0xff // first record's body
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("expected interior corruption error")
	}
}

func TestCheckpointRollAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(4, []byte("snap-a")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 4; i < 7; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !rec.HasCheckpoint || rec.Gen != 1 || rec.Seq != 4 || !bytes.Equal(rec.Checkpoint, []byte("snap-a")) {
		t.Fatalf("bad checkpoint recovery: %+v", rec)
	}
	// Only the tail since the checkpoint replays.
	if len(rec.Records) != 3 || !reflect.DeepEqual(rec.Records[0], testRecord(4)) {
		t.Fatalf("tail: %d records", len(rec.Records))
	}
}

// TestCorruptNewestCheckpointFallsBack: a damaged newest checkpoint is
// skipped; recovery restores the older one and replays BOTH segments'
// records since it.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s.Append(testRecord(i))
	}
	if err := s.Checkpoint(2, []byte("snap-1")); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		s.Append(testRecord(i))
	}
	if err := s.Checkpoint(5, []byte("snap-2")); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 6; i++ {
		s.Append(testRecord(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage checkpoint-2.
	p := filepath.Join(dir, ckptName(2))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{Retain: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !rec.HasCheckpoint || rec.Gen != 1 || rec.SkippedCheckpoints != 1 || !bytes.Equal(rec.Checkpoint, []byte("snap-1")) {
		t.Fatalf("fallback recovery: %+v", rec)
	}
	if len(rec.Records) != 4 || rec.Segments != 2 {
		t.Fatalf("want 4 records over 2 segments, got %d over %d", len(rec.Records), rec.Segments)
	}
}

func TestGCRetainsGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 5; g++ {
		s.Append(testRecord(g))
		if err := s.Checkpoint(int64(g+1), []byte("snap")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	ckpts, _ := listGens(dir, "checkpoint-", ".ckpt")
	segs, _ := listGens(dir, "wal-", ".log")
	if !reflect.DeepEqual(ckpts, []uint64{4, 5}) {
		t.Fatalf("retained checkpoints %v, want [4 5]", ckpts)
	}
	if len(segs) == 0 || segs[0] != 4 {
		t.Fatalf("retained segments %v, want starting at 4", segs)
	}
}

// TestGroupCommitSyncsLess pins the group-commit policy: syncEvery=8
// fsyncs at most 1/8th as often, and Sync() is the explicit barrier.
func TestGroupCommitSyncsLess(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 16; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Syncs; got != 2 {
		t.Fatalf("syncs=%d, want 2 for 16 appends at SyncEvery=8", got)
	}
	s.Append(testRecord(99))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs; got != 3 {
		t.Fatalf("syncs=%d after barrier, want 3", got)
	}
}

func TestSealedSegmentDamageErrors(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Append(testRecord(0))
	if err := s.Checkpoint(1, []byte("snap-1")); err != nil {
		t.Fatal(err)
	}
	s.Append(testRecord(1))
	if err := s.Checkpoint(2, []byte("snap-2")); err != nil {
		t.Fatal(err)
	}
	s.Append(testRecord(2))
	s.Close()
	// Damage checkpoint-2: recovery falls back to checkpoint-1 and must
	// replay segments 1 (now SEALED) and 2. A truncated tail on the
	// sealed segment 1 is FATAL — torn tails are only legal on the
	// active segment.
	ck := filepath.Join(dir, ckptName(2))
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	os.WriteFile(ck, data, 0o644)
	seg1 := filepath.Join(dir, walName(1))
	sdata, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(seg1, sdata[:len(sdata)-2], 0o644)
	if _, _, err := Open(dir, Options{Retain: 4}); err == nil {
		t.Fatalf("expected sealed-segment error")
	}
}
