package store

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mring"
	inet "repro/internal/net"
)

// FuzzWALDecode hammers the WAL attack surface with arbitrary bytes:
// neither the record decoder nor the segment scanner may ever panic, and
// every ACCEPTED record must survive a re-encode/re-decode round trip
// with identical structure (the encoding is canonical up to varint
// widths, so the property is value-level, not byte-level).
func FuzzWALDecode(f *testing.F) {
	// Seed with valid material so the fuzzer starts inside the format.
	rel := mring.NewRelation(mring.Schema{"a", "b"})
	rel.Add(mring.Tuple{mring.Int(1), mring.Str("x")}, 2)
	rel.Add(mring.Tuple{mring.Int(2), mring.Str("y")}, -1.5)
	rec := Record{Kind: RecTx, Tables: []TableFrag{
		{Table: "lineitem", Buckets: rel.TableSize(), Payload: inet.EncodeRelationPlain(rel)},
		{Table: "empty", Buckets: 0, Payload: nil},
	}}
	body := EncodeRecord(rec)
	f.Add(body)
	f.Add(EncodeRecord(Record{Kind: RecWarm}))
	seg := walHeader(7)
	seg = AppendRecordFrame(seg, body)
	seg = AppendRecordFrame(seg, EncodeRecord(Record{Kind: RecWarm}))
	f.Add(seg)
	f.Add(seg[:len(seg)-3]) // torn tail
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := DecodeRecord(data); err == nil {
			re := EncodeRecord(rec)
			rec2, err2 := DecodeRecord(re)
			if err2 != nil {
				t.Fatalf("re-encoded record does not decode: %v", err2)
			}
			if !reflect.DeepEqual(normalize(rec), normalize(rec2)) {
				t.Fatalf("round trip mismatch:\n%+v\n%+v", rec, rec2)
			}
		}
		for _, active := range []bool{true, false} {
			res, err := ScanSegment(data, active)
			if err != nil {
				continue
			}
			if res.ValidLen < walHeaderLen || res.ValidLen > len(data) {
				t.Fatalf("ValidLen %d out of range [%d,%d]", res.ValidLen, walHeaderLen, len(data))
			}
			// Everything accepted from a segment re-frames into a segment
			// that scans back identically with no torn tail.
			re := walHeader(res.Gen)
			for _, r := range res.Records {
				re = AppendRecordFrame(re, EncodeRecord(r))
			}
			res2, err := ScanSegment(re, false)
			if err != nil || res2.TornTail {
				t.Fatalf("re-encoded segment rejected: torn=%v err=%v", res2.TornTail, err)
			}
			if len(res2.Records) != len(res.Records) {
				t.Fatalf("re-encoded segment has %d records, want %d", len(res2.Records), len(res.Records))
			}
		}
	})
}

// normalize maps a record to a canonical shape for DeepEqual: a decoded
// empty payload may be nil or a zero-length slice depending on the
// varint bytes that produced it.
func normalize(r Record) Record {
	out := Record{Kind: r.Kind, Tables: make([]TableFrag, len(r.Tables))}
	for i, tf := range r.Tables {
		if len(tf.Payload) == 0 {
			tf.Payload = nil
		} else {
			tf.Payload = bytes.Clone(tf.Payload)
		}
		out.Tables[i] = tf
	}
	if len(out.Tables) == 0 {
		out.Tables = nil
	}
	return out
}
