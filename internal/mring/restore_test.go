package mring

import (
	"math/rand"
	"testing"
)

// snapshotRows captures the Foreach enumeration (the wire order every
// snapshot encoder uses) plus the bucket-table size.
func snapshotRows(r *Relation) (rows []Tuple, mults []float64, buckets int) {
	r.Foreach(func(t Tuple, m float64) {
		rows = append(rows, t.Clone())
		mults = append(mults, m)
	})
	return rows, mults, r.TableSize()
}

// restoreExact rebuilds a relation from a (rows-in-Foreach-order,
// buckets) snapshot the way the durability layer does: preseed to the
// recorded size, insert in reverse order.
func restoreExact(schema Schema, rows []Tuple, mults []float64, buckets int) *Relation {
	r := NewRelation(schema)
	if buckets > 0 {
		r.Preseed(buckets)
	}
	for i := len(rows) - 1; i >= 0; i-- {
		r.Add(rows[i], mults[i])
	}
	return r
}

// requireSameLayout asserts two relations have identical physical layout:
// same bucket-table size and the same Foreach sequence (order AND values).
func requireSameLayout(t *testing.T, got, want *Relation) {
	t.Helper()
	if got.TableSize() != want.TableSize() {
		t.Fatalf("TableSize: got %d want %d", got.TableSize(), want.TableSize())
	}
	var wr []Tuple
	var wm []float64
	want.Foreach(func(tp Tuple, m float64) { wr = append(wr, tp); wm = append(wm, m) })
	i := 0
	got.Foreach(func(tp Tuple, m float64) {
		if i >= len(wr) {
			t.Fatalf("got has more rows than want (%d)", len(wr))
		}
		if !tp.Equal(wr[i]) || wm[i] != m {
			t.Fatalf("row %d: got (%v,%v) want (%v,%v)", i, tp, m, wr[i], wm[i])
		}
		i++
	})
	if i != len(wr) {
		t.Fatalf("got %d rows, want %d", i, len(wr))
	}
}

// TestRestoreExactLayout is the property the whole durability design
// rests on: for ANY mutation history — including deletions, which leave
// the table larger than the row count, and growth, which reverses
// chains — rebuilding from (TableSize, Foreach order) by preseeding and
// inserting in reverse reproduces the exact physical layout, so every
// later Foreach (and therefore every later float fold) enumerates
// identically on both relations.
func TestRestoreExactLayout(t *testing.T) {
	schema := Schema{"k", "v"}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		r := NewRelation(schema)
		live := make(map[int64]bool)
		nOps := rng.Intn(300)
		for op := 0; op < nOps; op++ {
			k := int64(rng.Intn(64))
			switch {
			case rng.Intn(3) == 0 && live[k]:
				// Exact cancellation removes the tuple but keeps capacity.
				tp := Tuple{Int(k), Str("x")}
				r.Set(tp, 0)
				live[k] = false
			default:
				tp := Tuple{Int(k), Str("x")}
				r.Add(tp, float64(rng.Intn(5)+1))
				live[k] = true
			}
		}
		rows, mults, buckets := snapshotRows(r)
		got := restoreExact(schema, rows, mults, buckets)
		requireSameLayout(t, got, r)

		// The layout must stay aligned under FURTHER mutations: apply the
		// same suffix to both and re-compare (this is what recovery replay
		// does with the WAL tail).
		for op := 0; op < 50; op++ {
			k := int64(rng.Intn(64))
			tp := Tuple{Int(k), Str("x")}
			m := float64(rng.Intn(7) - 3)
			r.Add(tp, m)
			got.Add(tp, m)
		}
		requireSameLayout(t, got, r)
	}
}

// TestRestoreExactForcedCollisions repeats the layout property with a
// degenerate hash so every tuple chains into few buckets — chain order,
// not just bucket membership, is what reverse-insertion must reproduce.
func TestRestoreExactForcedCollisions(t *testing.T) {
	schema := Schema{"k"}
	r := NewRelation(schema)
	r.hashFn = func(t Tuple) uint64 { return uint64(len(t)) % 2 }
	for i := 0; i < 40; i++ {
		r.Add(Tuple{Int(int64(i))}, 1)
	}
	for i := 0; i < 40; i += 3 {
		r.Set(Tuple{Int(int64(i))}, 0)
	}
	rows, mults, buckets := snapshotRows(r)
	got := NewRelation(schema)
	got.hashFn = r.hashFn
	got.Preseed(buckets)
	for i := len(rows) - 1; i >= 0; i-- {
		got.Add(rows[i], mults[i])
	}
	requireSameLayout(t, got, r)
}

func TestPreseedPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"non-empty", func() {
			r := NewRelation(Schema{"k"})
			r.Add(Tuple{Int(1)}, 1)
			r.Preseed(8)
		}},
		{"not-power-of-two", func() { NewRelation(Schema{"k"}).Preseed(12) }},
		{"too-small", func() { NewRelation(Schema{"k"}).Preseed(4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.f()
		})
	}
}
