package mring

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refModel is the string-keyed reference implementation the hash-native
// Relation must behave identically to: a map from canonical tuple keys to
// multiplicities with the same Eps zero-crossing rule.
type refModel struct {
	schema Schema
	m      map[string]float64
	ts     map[string]Tuple
}

func newRefModel(schema Schema) *refModel {
	return &refModel{schema: schema, m: map[string]float64{}, ts: map[string]Tuple{}}
}

func (r *refModel) add(t Tuple, m float64) {
	if m == 0 {
		return
	}
	k := t.Key()
	v, ok := r.m[k]
	if !ok {
		r.m[k] = m
		r.ts[k] = t.Clone()
		return
	}
	v += m
	if v > -Eps && v < Eps {
		delete(r.m, k)
		delete(r.ts, k)
		return
	}
	r.m[k] = v
}

func (r *refModel) set(t Tuple, m float64) {
	k := t.Key()
	if m > -Eps && m < Eps {
		delete(r.m, k)
		delete(r.ts, k)
		return
	}
	r.m[k] = m
	r.ts[k] = t.Clone()
}

func (r *refModel) clear() {
	clear(r.m)
	clear(r.ts)
}

func (r *refModel) get(t Tuple) float64 { return r.m[t.Key()] }

// assertSame checks the relation against the model tuple by tuple in both
// directions.
func assertSame(t *testing.T, rel *Relation, ref *refModel, step int) {
	t.Helper()
	if rel.Len() != len(ref.m) {
		t.Fatalf("step %d: Len=%d, reference has %d tuples", step, rel.Len(), len(ref.m))
	}
	rel.Foreach(func(tp Tuple, m float64) {
		if want := ref.get(tp); want != m {
			t.Fatalf("step %d: tuple %v has mult %g, reference %g", step, tp, m, want)
		}
	})
	for k, want := range ref.m {
		if got := rel.Get(ref.ts[k]); got != want {
			t.Fatalf("step %d: reference tuple %v mult %g, relation returned %g", step, ref.ts[k], want, got)
		}
	}
}

// randomTuple draws from a small value domain so that Add/Set hit existing
// tuples often and multiplicities cross zero regularly.
func randomTuple(rng *rand.Rand) Tuple {
	switch rng.Intn(4) {
	case 0:
		return Tuple{Int(int64(rng.Intn(8))), Int(int64(rng.Intn(4)))}
	case 1:
		return Tuple{Float(float64(rng.Intn(8))), Int(int64(rng.Intn(4)))} // collides with Int encoding
	case 2:
		return Tuple{Int(int64(rng.Intn(8))), Str(fmt.Sprintf("s%d", rng.Intn(4)))}
	default:
		return Tuple{Float(float64(rng.Intn(8)) + 0.5), Str(fmt.Sprintf("s%d", rng.Intn(4)))}
	}
}

// runRelationModelProperty drives random Add/Set/Merge/Clear/Probe
// sequences against the reference model. hashFn, when non-nil, overrides
// the relation's tuple hash (to force collision buckets).
func runRelationModelProperty(t *testing.T, seed int64, hashFn func(Tuple) uint64) {
	rng := rand.New(rand.NewSource(seed))
	schema := Schema{"a", "b"}
	rel := NewRelation(schema)
	rel.hashFn = hashFn
	ref := newRefModel(schema)
	// Register an index up front so every mutation also exercises the
	// incremental index maintenance paths.
	idx, _ := rel.EnsureIndex([]int{0})
	for step := 0; step < 4000; step++ {
		if step%701 == 700 { // periodic Clear: indexes stay registered
			rel.Clear()
			ref.clear()
			assertSame(t, rel, ref, step)
			continue
		}
		switch op := rng.Intn(20); {
		case op < 10: // Add
			tp := randomTuple(rng)
			m := float64(rng.Intn(7) - 3)
			rel.Add(tp, m)
			ref.add(tp, m)
		case op < 14: // Set
			tp := randomTuple(rng)
			m := float64(rng.Intn(5) - 2)
			rel.Set(tp, m)
			ref.set(tp, m)
		case op < 17: // Merge a small random relation
			o := NewRelation(schema)
			o.hashFn = hashFn
			for i := 0; i < rng.Intn(6); i++ {
				tp := randomTuple(rng)
				m := float64(rng.Intn(5) - 2)
				o.Add(tp, m)
				ref.add(tp, m)
			}
			rel.Merge(o)
		default: // index probe: compare against a reference scan
			probe := Tuple{randomTuple(rng)[0]}
			got := map[string]float64{}
			idx.Probe(probe, func(tp Tuple, m float64) { got[tp.Key()] = m })
			want := map[string]float64{}
			for k, tp := range ref.ts {
				if tp[0].Equal(probe[0]) {
					want[k] = ref.m[k]
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: probe %v returned %d tuples, reference scan %d", step, probe, len(got), len(want))
			}
			for k, m := range want {
				if got[k] != m {
					t.Fatalf("step %d: probe %v tuple %v: got %g want %g", step, probe, ref.ts[k], got[k], m)
				}
			}
		}
		if step%97 == 0 {
			assertSame(t, rel, ref, step)
		}
	}
	assertSame(t, rel, ref, -1)
}

func TestRelationMatchesStringKeyedModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRelationModelProperty(t, seed, nil)
		})
	}
}

// TestRelationMatchesModelUnderForcedCollisions maps every tuple into two
// hash buckets, so nearly all entries share collision chains and index
// buckets hold mixed keys — the chain insert/unlink and bucket filter
// paths do all the work.
func TestRelationMatchesModelUnderForcedCollisions(t *testing.T) {
	collide := func(tp Tuple) uint64 { return tp.Hash() & 1 }
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRelationModelProperty(t, seed, collide)
		})
	}
}

// TestForcedCollisionChainsExercised sanity-checks that the forced hash
// actually produces chains longer than one.
func TestForcedCollisionChainsExercised(t *testing.T) {
	rel := NewRelation(Schema{"a"})
	rel.hashFn = func(Tuple) uint64 { return 7 }
	for i := 0; i < 10; i++ {
		rel.Add(Tuple{Int(int64(i))}, 1)
	}
	occupied := 0
	for _, e := range rel.tab {
		if e != nil {
			occupied++
		}
	}
	if rel.Len() != 10 || occupied != 1 {
		t.Fatalf("expected one bucket of 10 chained entries, got %d buckets / Len %d", occupied, rel.Len())
	}
	for i := 0; i < 10; i += 2 {
		rel.Add(Tuple{Int(int64(i))}, -1) // unlink from the middle of the chain
	}
	if rel.Len() != 5 {
		t.Fatalf("after deletions Len=%d, want 5", rel.Len())
	}
	for i := 0; i < 10; i++ {
		want := float64(i % 2)
		if got := rel.Get(Tuple{Int(int64(i))}); got != want {
			t.Fatalf("Get(%d)=%g, want %g", i, got, want)
		}
	}
}

// TestStorageIdentityMatchesCanonicalKey pins the relation's tuple
// identity to the canonical key encoding on the cases where Tuple.Equal
// diverges from it: NaN values (Equal is irreflexive, the key is not) and
// integers beyond 2^53 (Equal distinguishes, the float-canonical key
// collapses). Both must behave exactly as the string-keyed storage did.
func TestStorageIdentityMatchesCanonicalKey(t *testing.T) {
	nan := math.NaN()
	r := NewRelation(Schema{"a"})
	r.Add(Tuple{Float(nan)}, 1)
	r.Add(Tuple{Float(nan)}, 1)
	if r.Len() != 1 || r.Get(Tuple{Float(nan)}) != 2 {
		t.Fatalf("NaN tuples must accumulate in one entry: Len=%d Get=%g", r.Len(), r.Get(Tuple{Float(nan)}))
	}
	r.Add(Tuple{Float(nan)}, -2)
	if r.Len() != 0 {
		t.Fatalf("NaN tuple must cancel to empty, Len=%d", r.Len())
	}

	const big = int64(1) << 53
	r2 := NewRelation(Schema{"a"})
	r2.Add(Tuple{Int(big)}, 1)
	r2.Add(Tuple{Int(big + 1)}, -1) // same canonical key as big
	if r2.Len() != 0 {
		t.Fatalf("integers beyond 2^53 must collapse like their keys, Len=%d", r2.Len())
	}
	if (Tuple{Int(big)}).Key() != (Tuple{Int(big + 1)}).Key() {
		t.Fatal("test premise: keys should collapse")
	}
}

// BenchmarkRelationAddGet is the local hot path the hash-native storage
// targets: interleaved inserts, accumulations, and point lookups.
func BenchmarkRelationAddGet(b *testing.B) {
	const n = 4096
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Int(int64(i)), Str(fmt.Sprintf("cust#%06d", i%512)), Float(float64(i) * 1.5)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRelation(Schema{"k", "name", "v"})
		for _, t := range tuples {
			r.Add(t, 1)
		}
		var sink float64
		for _, t := range tuples {
			sink += r.Get(t)
		}
		if sink != n {
			b.Fatal("bad sum")
		}
	}
	b.ReportMetric(float64(b.N)*2*n/b.Elapsed().Seconds(), "ops/sec")
}
