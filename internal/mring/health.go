package mring

import "sort"

// idxHealth is the per-index admission record: probe/maintenance
// traffic counters plus the demotion flag. It lives on the Relation
// (keyed by bound-column mask) and survives the Index itself, so a
// demoted index keeps accumulating the scan-probe traffic that argues
// for its readmission.
type idxHealth struct {
	pos        []int
	probes     int64 // probes served by the index while admitted
	maintains  int64 // incremental insert/remove operations applied to the index
	scanProbes int64 // probes answered by the scan fallback while demoted
	demoted    bool
}

// IndexHealth is one secondary index's admission state, as reported by
// IndexHealthSnapshot. Counters reset on demotion and readmission, so
// they always describe the current admission episode.
type IndexHealth struct {
	Cols       []int // ascending bound-column positions
	Probes     int64 // probes served by the index
	Maintains  int64 // incremental maintenance ops applied to the index
	ScanProbes int64 // probes served by the scan fallback while demoted
	Demoted    bool
}

// healthFor returns (creating if needed) the admission record for the
// index over pos.
func (r *Relation) healthFor(mask uint64, pos []int) *idxHealth {
	if h, ok := r.health[mask]; ok {
		return h
	}
	if r.health == nil {
		r.health = make(map[uint64]*idxHealth)
	}
	h := &idxHealth{pos: append([]int(nil), pos...)}
	r.health[mask] = h
	return h
}

// SliceIndex is the admission gate for slice access paths: it returns
// the secondary index over pos unless the admission policy has demoted
// it, in which case it records the scan-probe and reports ok=false so
// the caller falls back to an on-demand scan. built reports whether the
// index was built from current contents on this call (for index-op
// stats). Callers must have checked Indexable(pos).
func (r *Relation) SliceIndex(pos []int) (idx *Index, built, ok bool) {
	mask := ColMask(pos)
	h := r.healthFor(mask, pos)
	if h.demoted {
		h.scanProbes++
		return nil, false, false
	}
	idx, built = r.EnsureIndex(pos)
	return idx, built, true
}

// DemoteIndex drops the secondary index over pos: the index is
// unregistered (no further maintenance cost) and subsequent SliceIndex
// calls fall back to scans until ReadmitIndex. Counters reset so the
// demotion episode is judged on fresh traffic.
func (r *Relation) DemoteIndex(pos []int) {
	mask := ColMask(pos)
	h := r.healthFor(mask, pos)
	h.demoted = true
	h.probes, h.maintains, h.scanProbes = 0, 0, 0
	delete(r.idxs, mask)
}

// ReadmitIndex re-admits a demoted index; the next SliceIndex rebuilds
// it from current contents. Counters reset, giving the index a fresh
// trial before it can be judged cold again — the hysteresis that
// bounds demote/readmit flapping.
func (r *Relation) ReadmitIndex(pos []int) {
	mask := ColMask(pos)
	h := r.healthFor(mask, pos)
	h.demoted = false
	h.probes, h.maintains, h.scanProbes = 0, 0, 0
}

// IndexHealthSnapshot returns the admission state of every secondary
// index that has ever been requested on this relation, ordered by
// bound-column mask (deterministic).
func (r *Relation) IndexHealthSnapshot() []IndexHealth {
	if len(r.health) == 0 {
		return nil
	}
	masks := make([]uint64, 0, len(r.health))
	for m := range r.health {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	out := make([]IndexHealth, 0, len(masks))
	for _, m := range masks {
		h := r.health[m]
		out = append(out, IndexHealth{
			Cols:       append([]int(nil), h.pos...),
			Probes:     h.probes,
			Maintains:  h.maintains,
			ScanProbes: h.scanProbes,
			Demoted:    h.demoted,
		})
	}
	return out
}
