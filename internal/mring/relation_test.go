package mring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tup(vs ...any) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = Int(int64(x))
		case int64:
			t[i] = Int(x)
		case float64:
			t[i] = Float(x)
		case string:
			t[i] = Str(x)
		default:
			panic("bad test value")
		}
	}
	return t
}

func TestValueEqualNumericCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Fatal("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Fatal("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(Str("3")) {
		t.Fatal("Int(3) should not equal Str(3)")
	}
	if !Str("a").Equal(Str("a")) {
		t.Fatal("string equality broken")
	}
}

func TestValueLessOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(2), true},
		{Int(2), Int(1), false},
		{Float(1.5), Int(2), true},
		{Int(2), Float(1.5), false},
		{Int(5), Str("a"), true}, // numbers before strings
		{Str("a"), Int(5), false},
		{Str("a"), Str("b"), true},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: %v < %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestTupleKeyCollision(t *testing.T) {
	// Int and integral Float must share a key (the data model treats them
	// as the same value).
	a := tup(3, "x")
	b := Tuple{Float(3), Str("x")}
	if a.Key() != b.Key() {
		t.Fatal("Int(3) and Float(3) keys differ")
	}
	// Distinct strings must not collide even with embedded separators.
	c := Tuple{Str("ab"), Str("c")}
	d := Tuple{Str("a"), Str("bc")}
	if c.Key() == d.Key() {
		t.Fatal("string tuple keys collide")
	}
}

func TestRelationAddRemove(t *testing.T) {
	r := NewRelation(Schema{"a", "b"})
	r.Add(tup(1, "x"), 2)
	r.Add(tup(1, "x"), 3)
	if got := r.Get(tup(1, "x")); got != 5 {
		t.Fatalf("Get = %g, want 5", got)
	}
	r.Add(tup(1, "x"), -5)
	if r.Len() != 0 {
		t.Fatal("tuple with zero multiplicity should be removed")
	}
	r.Add(tup(2, "y"), -1)
	if got := r.Get(tup(2, "y")); got != -1 {
		t.Fatalf("negative multiplicity lost: %g", got)
	}
}

func TestRelationSetAndClear(t *testing.T) {
	r := NewRelation(Schema{"a"})
	r.Set(tup(1), 7)
	r.Set(tup(2), 0) // no-op insert
	if r.Len() != 1 || r.Get(tup(1)) != 7 {
		t.Fatalf("Set failed: %v", r)
	}
	r.Set(tup(1), 0)
	if r.Len() != 0 {
		t.Fatal("Set to zero should delete")
	}
	r.Add(tup(3), 1)
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestRelationMergeEqual(t *testing.T) {
	a := NewRelation(Schema{"a"})
	b := NewRelation(Schema{"a"})
	a.Add(tup(1), 2)
	a.Add(tup(2), 3)
	b.Add(tup(2), 3)
	b.Add(tup(1), 2)
	if !a.Equal(b) {
		t.Fatal("relations with same content should be Equal")
	}
	b.Add(tup(3), 1)
	if a.Equal(b) {
		t.Fatal("different relations reported Equal")
	}
	a.Merge(b)
	if a.Get(tup(1)) != 4 || a.Get(tup(3)) != 1 {
		t.Fatalf("Merge wrong: %v", a)
	}
}

func TestMergeScaledNegation(t *testing.T) {
	a := NewRelation(Schema{"a"})
	a.Add(tup(1), 2)
	a.Add(tup(2), -3)
	b := a.Clone()
	a.MergeScaled(b, -1)
	if a.Len() != 0 {
		t.Fatalf("r + (-1)*r should be empty, got %v", a)
	}
}

func TestProjectSum(t *testing.T) {
	r := NewRelation(Schema{"a", "b"})
	r.Add(tup(1, "x"), 2)
	r.Add(tup(1, "y"), 3)
	r.Add(tup(2, "x"), 4)
	p := r.ProjectSum([]string{"a"})
	if p.Get(tup(1)) != 5 || p.Get(tup(2)) != 4 {
		t.Fatalf("ProjectSum wrong: %v", p)
	}
	// Projection onto nothing gives the grand total.
	g := r.ProjectSum(nil)
	if g.Get(Tuple{}) != 9 {
		t.Fatalf("grand total = %g, want 9", g.Get(Tuple{}))
	}
}

func TestSchemaOps(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if s.Index("b") != 1 || s.Index("z") != -1 {
		t.Fatal("Index broken")
	}
	if got := s.Intersect(Schema{"c", "a", "z"}); !got.Equal(Schema{"a", "c"}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := s.Union(Schema{"c", "d"}); !got.Equal(Schema{"a", "b", "c", "d"}) {
		t.Fatalf("Union = %v", got)
	}
	if !s.Contains("a") || s.Contains("d") {
		t.Fatal("Contains broken")
	}
}

// Property: bag union is commutative and associative; r ⊎ (-1)·r = ∅.
func TestQuickBagUnionProperties(t *testing.T) {
	gen := func(seed int64) *Relation {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation(Schema{"a", "b"})
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			r.Add(tup(rng.Intn(5), rng.Intn(5)), float64(rng.Intn(7)-3))
		}
		return r
	}
	prop := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		// commutative
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		// associative
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false
		}
		// inverse
		inv := a.Clone()
		inv.MergeScaled(a, -1)
		return inv.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: tuple Key is injective w.r.t. Equal on random tuples.
func TestQuickKeyInjective(t *testing.T) {
	mk := func(seed int64) Tuple {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		tp := make(Tuple, n)
		for i := range tp {
			switch rng.Intn(3) {
			case 0:
				tp[i] = Int(int64(rng.Intn(10)))
			case 1:
				tp[i] = Float(float64(rng.Intn(10)) + 0.5)
			default:
				tp[i] = Str(string(rune('a' + rng.Intn(5))))
			}
		}
		return tp
	}
	prop := func(s1, s2 int64) bool {
		a, b := mk(s1), mk(s2)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleProjectCloneHash(t *testing.T) {
	a := tup(1, "x", 2.5)
	c := a.Clone()
	c[0] = Int(9)
	if a[0].I != 1 {
		t.Fatal("Clone shares storage")
	}
	p := a.Project([]int{2, 0})
	if !p.Equal(Tuple{Float(2.5), Int(1)}) {
		t.Fatalf("Project = %v", p)
	}
	if a.Hash() == 0 {
		t.Fatal("suspicious zero hash")
	}
	if a.Hash() != tup(1, "x", 2.5).Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation(Schema{"a"})
	r.Add(tup(2), 1)
	r.Add(tup(1), 3)
	want := `[a]{(1)->3, (2)->1}`
	if got := r.String(); got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}
