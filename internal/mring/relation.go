package mring

import (
	"fmt"
	"sort"
	"strings"
)

// Eps is the threshold under which a multiplicity counts as zero; tuples
// whose multiplicity crosses zero are removed from the relation so that
// every stored tuple has a non-zero multiplicity, as the data model demands.
const Eps = 1e-9

// Schema is an ordered list of column names.
type Schema []string

// Index returns the position of col in the schema, or -1.
func (s Schema) Index(col string) int {
	for i, c := range s {
		if c == col {
			return i
		}
	}
	return -1
}

// Contains reports whether col is in the schema.
func (s Schema) Contains(col string) bool { return s.Index(col) >= 0 }

// Positions maps each column name in cols to its position in s.
// It panics if a column is missing; schema mismatches are programming
// errors in compiled trigger programs.
func (s Schema) Positions(cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.Index(c)
		if j < 0 {
			panic(fmt.Sprintf("mring: column %q not in schema %v", c, s))
		}
		idx[i] = j
	}
	return idx
}

// Equal reports whether two schemas have the same columns in the same order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone copies the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Intersect returns the columns of s also present in o, in s's order.
func (s Schema) Intersect(o Schema) Schema {
	var out Schema
	for _, c := range s {
		if o.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// Union returns s followed by the columns of o not in s.
func (s Schema) Union(o Schema) Schema {
	out := s.Clone()
	for _, c := range o {
		if !out.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// entry stores one unique tuple, its multiplicity, and its full 64-bit
// hash (kept for cheap rehashing and as an equality pre-filter). Entries
// are heap nodes shared between the primary hash table and any secondary
// indexes, so a multiplicity update is visible everywhere without index
// maintenance. next chains entries landing in the same bucket (nil in the
// overwhelming common case).
type entry struct {
	t    Tuple
	m    float64
	h    uint64
	next *entry
}

// Relation is a generalized multiset relation: a finite map from unique
// tuples to non-zero multiplicities. Storage is hash-native: an
// open-chained power-of-two bucket table keyed directly by the tuples'
// 64-bit canonical hash, so lookups and inserts never materialize string
// keys and never re-hash the key the way a built-in map would
// (Tuple.EncodeKey remains only for the wire format). The zero value is
// not ready to use; construct with NewRelation.
type Relation struct {
	schema Schema
	tab    []*entry // power-of-two bucket array, nil until first insert
	mask   uint64   // len(tab)-1
	n      int
	// idxs holds the registered secondary indexes, keyed by bound-column
	// bitmask; they are maintained incrementally on every mutation.
	idxs map[uint64]*Index
	// health holds per-index admission records (probe/maintenance
	// counters and the demotion flag), keyed like idxs. Records outlive
	// the indexes themselves so demoted indexes keep accumulating the
	// scan traffic that argues for readmission.
	health map[uint64]*idxHealth
	// hashFn overrides tuple hashing in tests (forcing collisions); nil
	// means Tuple.Hash. Set it before the first insert.
	hashFn func(Tuple) uint64
	// version counts content mutations (insert, remove, in-place Set,
	// Clear). Derived structures snapshot it to detect staleness.
	version uint64
	// scratch is an attachment point for derived state tied to this
	// relation's lifetime (the columnar mirror of internal/pool). It is
	// opaque to mring and validated by the owner against Version().
	scratch any
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(schema Schema) *Relation {
	return &Relation{schema: schema.Clone()}
}

// grow doubles the bucket table (or creates it) and relinks every entry
// under its stored hash — no per-entry allocation.
func (r *Relation) grow() {
	size := 8
	if len(r.tab) > 0 {
		size = len(r.tab) * 2
	}
	ntab := make([]*entry, size)
	nmask := uint64(size - 1)
	for _, e := range r.tab {
		for e != nil {
			next := e.next
			i := e.h & nmask
			e.next = ntab[i]
			ntab[i] = e
			e = next
		}
	}
	r.tab, r.mask = ntab, nmask
}

// Schema returns the relation's column names. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Version returns the content mutation counter. It changes whenever a
// tuple is inserted, removed, replaced in place, or the relation is
// cleared, so derived read-only structures (columnar mirrors) can verify
// they still reflect the contents without comparing them.
func (r *Relation) Version() uint64 { return r.version }

// SetScratch attaches owner-defined derived state to the relation.
// mring never reads it; Clone does not copy it.
func (r *Relation) SetScratch(v any) { r.scratch = v }

// Scratch returns the attachment set by SetScratch (nil if none).
func (r *Relation) Scratch() any { return r.scratch }

// Len returns the number of tuples with non-zero multiplicity.
func (r *Relation) Len() int { return r.n }

// TableSize returns the current bucket-table size: 0 before the first
// insert, otherwise a power of two >= 8 that only ever grows (Clear and
// deletions keep capacity). Together with the Foreach enumeration order
// it fully determines the physical layout, so a snapshot recording
// (TableSize, Foreach sequence) can be restored bitwise via Preseed plus
// reverse-order re-insertion — see Preseed.
func (r *Relation) TableSize() int { return len(r.tab) }

// Preseed sets the bucket table of an empty relation to the given size
// (a power of two >= 8, as produced by TableSize on a non-fresh
// relation). It exists for exact-layout restore: pre-sizing the table to
// the snapshot's TableSize means re-inserting the snapshot's rows never
// triggers grow (n never exceeds the table size the rows previously fit
// in), and inserting them in REVERSE Foreach order reproduces the
// original chains exactly — each insert pushes at the chain head, so the
// last-inserted (first-enumerated) row ends up back at the head.
// Misuse is a programming error and panics; validation of sizes read
// from disk belongs to the decode layers.
func (r *Relation) Preseed(buckets int) {
	if r.tab != nil || r.n != 0 {
		panic("mring: Preseed on non-empty relation")
	}
	if buckets < 8 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("mring: Preseed size %d not a power of two >= 8", buckets))
	}
	r.tab = make([]*entry, buckets)
	r.mask = uint64(buckets - 1)
}

func (r *Relation) hash(t Tuple) uint64 {
	if r.hashFn != nil {
		return r.hashFn(t)
	}
	return t.Hash()
}

// lookup returns the entry holding t, or nil.
func (r *Relation) lookup(t Tuple) *entry {
	if r.tab == nil {
		return nil
	}
	h := r.hash(t)
	for e := r.tab[h&r.mask]; e != nil; e = e.next {
		if e.h == h && e.t.KeyEqual(t) {
			return e
		}
	}
	return nil
}

// insertHashed adds a fresh entry for t (which must not be present) under
// its precomputed hash. t is stored as-is; callers clone when the tuple
// may be reused.
func (r *Relation) insertHashed(h uint64, t Tuple, m float64) {
	if r.n >= len(r.tab) { // covers the nil table: 0 >= 0
		r.grow()
	}
	i := h & r.mask
	e := &entry{t: t, m: m, h: h, next: r.tab[i]}
	r.tab[i] = e
	r.n++
	r.version++
	for _, ix := range r.idxs {
		ix.insert(e)
	}
}

// removeHashed unlinks target from its bucket chain and from all
// secondary indexes.
func (r *Relation) removeHashed(target *entry) {
	i := target.h & r.mask
	var prev *entry
	for e := r.tab[i]; e != nil; prev, e = e, e.next {
		if e != target {
			continue
		}
		if prev == nil {
			r.tab[i] = e.next
		} else {
			prev.next = e.next
		}
		e.next = nil
		r.n--
		r.version++
		for _, ix := range r.idxs {
			ix.remove(e)
		}
		return
	}
}

// insert adds a fresh entry for t (which must not be present).
func (r *Relation) insert(t Tuple, m float64) {
	r.insertHashed(r.hash(t), t, m)
}

// Add adds m to the multiplicity of tuple t, inserting or deleting as
// needed. The tuple is copied; callers may reuse t.
func (r *Relation) Add(t Tuple, m float64) {
	r.addHashed(r.hash(t), t, m)
}

// addHashed is Add under a precomputed hash (which must equal r.hash(t));
// group tables reuse their stored hashes through it.
func (r *Relation) addHashed(h uint64, t Tuple, m float64) {
	if m == 0 {
		return
	}
	if r.tab != nil {
		for e := r.tab[h&r.mask]; e != nil; e = e.next {
			if e.h == h && e.t.KeyEqual(t) {
				e.m += m
				r.version++
				if e.m > -Eps && e.m < Eps {
					r.removeHashed(e)
				}
				return
			}
		}
	}
	r.insertHashed(h, t.Clone(), m)
}

// Set forces the multiplicity of t to m (removing the tuple when m is zero).
func (r *Relation) Set(t Tuple, m float64) {
	h := r.hash(t)
	var e *entry
	if r.tab != nil {
		for e = r.tab[h&r.mask]; e != nil; e = e.next {
			if e.h == h && e.t.KeyEqual(t) {
				break
			}
		}
	}
	if m > -Eps && m < Eps {
		if e != nil {
			r.removeHashed(e)
		}
		return
	}
	if e != nil {
		// Replace the stored tuple too: t may be a key-equal but distinct
		// representation (Float(3) over Int(3)), and Set semantics store
		// the caller's tuple. Key-equal tuples hash identically, so the
		// primary and index bucket positions stay valid.
		e.t = t.Clone()
		e.m = m
		r.version++
		return
	}
	r.insertHashed(h, t.Clone(), m)
}

// Get returns the multiplicity of t (zero if absent).
func (r *Relation) Get(t Tuple) float64 {
	if e := r.lookup(t); e != nil {
		return e.m
	}
	return 0
}

// Foreach calls f for every tuple with non-zero multiplicity. Iteration
// order is unspecified. f must not mutate the relation.
func (r *Relation) Foreach(f func(t Tuple, m float64)) {
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			f(e.t, e.m)
		}
	}
}

// ForeachSorted iterates in the deterministic tuple order; it is intended
// for tests and report output, not hot paths.
func (r *Relation) ForeachSorted(f func(t Tuple, m float64)) {
	es := make([]*entry, 0, r.n)
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].t.Less(es[j].t) })
	for _, e := range es {
		f(e.t, e.m)
	}
}

// Clone returns a deep copy of the relation's contents. Secondary indexes
// are not cloned; they re-register on demand.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	c.hashFn = r.hashFn
	r.Foreach(func(t Tuple, m float64) {
		c.insert(t.Clone(), m)
	})
	return c
}

// Clear removes all tuples, keeping the bucket table's capacity.
// Registered secondary indexes stay registered (emptied) and keep being
// maintained on subsequent mutations.
func (r *Relation) Clear() {
	clear(r.tab)
	r.n = 0
	r.version++
	for _, ix := range r.idxs {
		clear(ix.m)
	}
}

// Merge adds every tuple of o (bag union in place).
func (r *Relation) Merge(o *Relation) {
	o.Foreach(func(t Tuple, m float64) { r.Add(t, m) })
}

// MergeScaled adds every tuple of o with multiplicity scaled by c.
func (r *Relation) MergeScaled(o *Relation, c float64) {
	o.Foreach(func(t Tuple, m float64) { r.Add(t, m*c) })
}

// Equal reports whether two relations hold the same tuples with
// multiplicities equal within Eps.
func (r *Relation) Equal(o *Relation) bool {
	if r.n != o.n {
		return false
	}
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			oe := o.lookup(e.t)
			if oe == nil {
				return false
			}
			d := e.m - oe.m
			if d < -Eps || d > Eps {
				return false
			}
		}
	}
	return true
}

// EqualApprox is Equal with a caller-chosen tolerance, for float-heavy
// aggregate comparisons.
func (r *Relation) EqualApprox(o *Relation, tol float64) bool {
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			oe := o.lookup(e.t)
			if oe == nil {
				if e.m < -tol || e.m > tol {
					return false
				}
				continue
			}
			d := e.m - oe.m
			if d < -tol || d > tol {
				return false
			}
		}
	}
	for _, e := range o.tab {
		for ; e != nil; e = e.next {
			if r.lookup(e.t) == nil && (e.m < -tol || e.m > tol) {
				return false
			}
		}
	}
	return true
}

// TotalMult returns the sum of all multiplicities (the COUNT(*)/SUM value
// of an aggregate relation with an empty schema).
func (r *Relation) TotalMult() float64 {
	var s float64
	r.Foreach(func(_ Tuple, m float64) { s += m })
	return s
}

// String renders the relation deterministically, for debugging and tests.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", []string(r.schema))
	first := true
	r.ForeachSorted(func(t Tuple, m float64) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%v->%g", t, m)
	})
	b.WriteString("}")
	return b.String()
}

// ProjectSum returns Sum_[cols](r): tuples projected onto cols with
// multiplicities summed per group.
func (r *Relation) ProjectSum(cols []string) *Relation {
	idx := r.schema.Positions(cols)
	out := NewRelation(Schema(cols))
	r.Foreach(func(t Tuple, m float64) {
		out.Add(t.Project(idx), m)
	})
	return out
}
