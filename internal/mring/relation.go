package mring

import (
	"fmt"
	"sort"
	"strings"
)

// Eps is the threshold under which a multiplicity counts as zero; tuples
// whose multiplicity crosses zero are removed from the relation so that
// every stored tuple has a non-zero multiplicity, as the data model demands.
const Eps = 1e-9

// Schema is an ordered list of column names.
type Schema []string

// Index returns the position of col in the schema, or -1.
func (s Schema) Index(col string) int {
	for i, c := range s {
		if c == col {
			return i
		}
	}
	return -1
}

// Contains reports whether col is in the schema.
func (s Schema) Contains(col string) bool { return s.Index(col) >= 0 }

// Positions maps each column name in cols to its position in s.
// It panics if a column is missing; schema mismatches are programming
// errors in compiled trigger programs.
func (s Schema) Positions(cols []string) []int {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.Index(c)
		if j < 0 {
			panic(fmt.Sprintf("mring: column %q not in schema %v", c, s))
		}
		idx[i] = j
	}
	return idx
}

// Equal reports whether two schemas have the same columns in the same order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone copies the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Intersect returns the columns of s also present in o, in s's order.
func (s Schema) Intersect(o Schema) Schema {
	var out Schema
	for _, c := range s {
		if o.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// Union returns s followed by the columns of o not in s.
func (s Schema) Union(o Schema) Schema {
	out := s.Clone()
	for _, c := range o {
		if !out.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// entry stores one unique tuple and its multiplicity.
type entry struct {
	t Tuple
	m float64
}

// Relation is a generalized multiset relation: a finite map from unique
// tuples to non-zero multiplicities. The zero value is not ready to use;
// construct with NewRelation.
type Relation struct {
	schema Schema
	m      map[string]entry
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(schema Schema) *Relation {
	return &Relation{schema: schema.Clone(), m: make(map[string]entry)}
}

// Schema returns the relation's column names. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples with non-zero multiplicity.
func (r *Relation) Len() int { return len(r.m) }

// Add adds m to the multiplicity of tuple t, inserting or deleting as
// needed. The tuple is copied; callers may reuse t.
func (r *Relation) Add(t Tuple, m float64) {
	if m == 0 {
		return
	}
	k := t.Key()
	e, ok := r.m[k]
	if !ok {
		r.m[k] = entry{t: t.Clone(), m: m}
		return
	}
	e.m += m
	if e.m > -Eps && e.m < Eps {
		delete(r.m, k)
		return
	}
	r.m[k] = e
}

// Set forces the multiplicity of t to m (removing the tuple when m is zero).
func (r *Relation) Set(t Tuple, m float64) {
	k := t.Key()
	if m > -Eps && m < Eps {
		delete(r.m, k)
		return
	}
	r.m[k] = entry{t: t.Clone(), m: m}
}

// Get returns the multiplicity of t (zero if absent).
func (r *Relation) Get(t Tuple) float64 { return r.m[t.Key()].m }

// GetKey returns the multiplicity stored under a pre-encoded key.
func (r *Relation) GetKey(k string) float64 { return r.m[k].m }

// Foreach calls f for every tuple with non-zero multiplicity. Iteration
// order is unspecified. f must not mutate the relation.
func (r *Relation) Foreach(f func(t Tuple, m float64)) {
	for _, e := range r.m {
		f(e.t, e.m)
	}
}

// ForeachSorted iterates in the deterministic tuple order; it is intended
// for tests and report output, not hot paths.
func (r *Relation) ForeachSorted(f func(t Tuple, m float64)) {
	es := make([]entry, 0, len(r.m))
	for _, e := range r.m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].t.Less(es[j].t) })
	for _, e := range es {
		f(e.t, e.m)
	}
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	for k, e := range r.m {
		c.m[k] = entry{t: e.t.Clone(), m: e.m}
	}
	return c
}

// Clear removes all tuples.
func (r *Relation) Clear() {
	clear(r.m)
}

// Merge adds every tuple of o (bag union in place).
func (r *Relation) Merge(o *Relation) {
	o.Foreach(func(t Tuple, m float64) { r.Add(t, m) })
}

// MergeScaled adds every tuple of o with multiplicity scaled by c.
func (r *Relation) MergeScaled(o *Relation, c float64) {
	o.Foreach(func(t Tuple, m float64) { r.Add(t, m*c) })
}

// Equal reports whether two relations hold the same tuples with
// multiplicities equal within Eps.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.m) != len(o.m) {
		return false
	}
	for k, e := range r.m {
		oe, ok := o.m[k]
		if !ok {
			return false
		}
		d := e.m - oe.m
		if d < -Eps || d > Eps {
			return false
		}
	}
	return true
}

// EqualApprox is Equal with a caller-chosen tolerance, for float-heavy
// aggregate comparisons.
func (r *Relation) EqualApprox(o *Relation, tol float64) bool {
	seen := 0
	for k, e := range r.m {
		oe, ok := o.m[k]
		if !ok {
			if e.m < -tol || e.m > tol {
				return false
			}
			continue
		}
		seen++
		d := e.m - oe.m
		if d < -tol || d > tol {
			return false
		}
	}
	for k, oe := range o.m {
		if _, ok := r.m[k]; !ok && (oe.m < -tol || oe.m > tol) {
			return false
		}
	}
	_ = seen
	return true
}

// TotalMult returns the sum of all multiplicities (the COUNT(*)/SUM value
// of an aggregate relation with an empty schema).
func (r *Relation) TotalMult() float64 {
	var s float64
	for _, e := range r.m {
		s += e.m
	}
	return s
}

// String renders the relation deterministically, for debugging and tests.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", []string(r.schema))
	first := true
	r.ForeachSorted(func(t Tuple, m float64) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%v->%g", t, m)
	})
	b.WriteString("}")
	return b.String()
}

// ProjectSum returns Sum_[cols](r): tuples projected onto cols with
// multiplicities summed per group.
func (r *Relation) ProjectSum(cols []string) *Relation {
	idx := r.schema.Positions(cols)
	out := NewRelation(Schema(cols))
	r.Foreach(func(t Tuple, m float64) {
		out.Add(t.Project(idx), m)
	})
	return out
}
