// Package mring implements generalized multiset relations — the data model
// of DBToaster-style incremental view maintenance. A relation maps each
// unique tuple to a non-zero multiplicity. Multiplicities generalize counts
// to aggregate values (SUM, AVG numerators, ...), so refreshing an aggregate
// means changing a multiplicity rather than deleting and re-inserting tuples.
package mring

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types supported in tuples.
type Kind uint8

// Supported value kinds.
const (
	KInt Kind = iota
	KFloat
	KString
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a tagged union holding one column value of a tuple.
// The zero Value is the integer 0.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{K: KFloat, F: f} }

// String returns a string Value.
func Str(s string) Value { return Value{K: KString, S: s} }

// AsFloat converts the value to float64 for arithmetic.
// Strings convert to their parse result, or 0 if unparsable.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KInt:
		return float64(v.I)
	case KFloat:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// AsInt converts the value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.K {
	case KInt:
		return v.I
	case KFloat:
		return int64(v.F)
	default:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
}

// Equal reports whether two values are equal. Numeric values compare by
// numeric value across KInt/KFloat; strings compare only to strings.
func (v Value) Equal(o Value) bool {
	if v.K == KString || o.K == KString {
		return v.K == KString && o.K == KString && v.S == o.S
	}
	if v.K == KInt && o.K == KInt {
		return v.I == o.I
	}
	return v.AsFloat() == o.AsFloat()
}

// keyEqual reports whether two values are identical under the canonical
// key encoding (EncodeKey): strings compare exactly; numerics compare
// through the same float canonicalization the encoder applies, so
// integers beyond 2^53 collapse to their float value and NaNs compare by
// bit pattern (reflexively). This is the storage identity of relations
// and indexes; it differs from Equal only on NaN (where Equal is
// irreflexive) and on integers Equal distinguishes but the encoding
// cannot.
func (v Value) keyEqual(o Value) bool {
	if v.K == KString || o.K == KString {
		return v.K == KString && o.K == KString && v.S == o.S
	}
	vf, of := v.AsFloat(), o.AsFloat()
	vi, vInt := int64(vf), false
	if float64(int64(vf)) == vf {
		vInt = true
	}
	oi, oInt := int64(of), false
	if float64(int64(of)) == of {
		oInt = true
	}
	if vInt || oInt {
		return vInt && oInt && vi == oi
	}
	return math.Float64bits(vf) == math.Float64bits(of)
}

// Less reports whether v sorts before o. Numbers sort before strings;
// mixed numeric kinds compare numerically.
func (v Value) Less(o Value) bool {
	if v.K == KString || o.K == KString {
		if v.K != KString {
			return true
		}
		if o.K != KString {
			return false
		}
		return v.S < o.S
	}
	if v.K == KInt && o.K == KInt {
		return v.I < o.I
	}
	return v.AsFloat() < o.AsFloat()
}

// Compare returns -1, 0, or +1 ordering v against o, consistent with Less.
func (v Value) Compare(o Value) int {
	if v.Equal(o) {
		return 0
	}
	if v.Less(o) {
		return -1
	}
	return 1
}

func (v Value) String() string {
	switch v.K {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return strconv.Quote(v.S)
	}
}

// Tuple is an ordered list of column values. Column names live in the
// relation's schema, not in the tuple.
type Tuple []Value

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Less imposes a total order used for deterministic iteration in tests
// and reports.
func (t Tuple) Less(o Tuple) bool {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c < 0
		}
	}
	return len(t) < len(o)
}

func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// EncodeKey appends a canonical byte encoding of the tuple to dst and
// returns the result. Two tuples encode equal iff they are Equal: integers
// and integral floats share an encoding so that Int(3) and Float(3) collide
// as the data model requires.
func (t Tuple) EncodeKey(dst []byte) []byte {
	var buf [9]byte
	for _, v := range t {
		switch v.K {
		case KString:
			dst = append(dst, 's')
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			f := v.AsFloat()
			if i := int64(f); float64(i) == f {
				buf[0] = 'i'
				binary.LittleEndian.PutUint64(buf[1:], uint64(i))
			} else {
				buf[0] = 'f'
				binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
			}
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// Key returns the canonical string key for the tuple, suitable as a map key.
// It allocates; hot paths use Hash/HashCols instead and keep EncodeKey for
// the wire format.
func (t Tuple) Key() string { return string(t.EncodeKey(nil)) }

// Tuple hashing is word-at-a-time multiplicative mixing with a murmur3
// finalizer: one multiply per numeric column instead of one per encoded
// byte. The only contract is that Equal tuples hash equal (numeric values
// are canonicalized exactly as EncodeKey canonicalizes them, so Int(3) and
// Float(3) agree) — hash-colliding unequal tuples are resolved by the
// relation's collision chains.
const (
	hashSeed     = 14695981039346656037
	hashMult     = 1099511628211
	hashTagInt   = 0x9E3779B97F4A7C15
	hashTagFloat = 0xC2B2AE3D27D4EB4F
	hashTagStr   = 0x165667B19E3779F9
)

func mixWord(h, v uint64) uint64 {
	return (h ^ v) * hashMult
}

// hashValue folds one value into the running state.
func hashValue(h uint64, v Value) uint64 {
	if v.K == KString {
		s := v.S
		h = mixWord(h, hashTagStr+uint64(len(s)))
		for len(s) >= 8 {
			w := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
				uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
			h = mixWord(h, w)
			s = s[8:]
		}
		if len(s) > 0 {
			var w uint64
			for i := len(s) - 1; i >= 0; i-- {
				w = w<<8 | uint64(s[i])
			}
			h = mixWord(h, w)
		}
		return h
	}
	f := v.AsFloat()
	if i := int64(f); float64(i) == f {
		return mixWord(h, hashTagInt^uint64(i))
	}
	return mixWord(h, hashTagFloat^math.Float64bits(f))
}

// hashFinish is murmur3's fmix64 avalanche, giving well-mixed bits for
// bucket selection and worker partitioning.
func hashFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}

// HashInit, HashInt64, HashFloat64, HashStr, and HashFinish expose the
// tuple hash as a streaming kernel: fold one column value at a time into
// the running state, then finalize. Columnar code hashes a batch
// column-wise with them — one pass per column over contiguous arrays —
// and the result equals the row-wise Hash/HashCols of the same values.
func HashInit() uint64 { return hashSeed }

// HashInt64 folds an integer column value into the running state.
func HashInt64(h uint64, i int64) uint64 { return hashValue(h, Value{K: KInt, I: i}) }

// HashFloat64 folds a float column value into the running state.
func HashFloat64(h uint64, f float64) uint64 { return hashValue(h, Value{K: KFloat, F: f}) }

// HashStr folds a string column value into the running state.
func HashStr(h uint64, s string) uint64 { return hashValue(h, Value{K: KString, S: s}) }

// HashFinish finalizes a streaming hash state.
func HashFinish(h uint64) uint64 { return hashFinish(h) }

// Hash returns a 64-bit hash of the tuple consistent with Equal. It never
// allocates.
func (t Tuple) Hash() uint64 {
	h := uint64(hashSeed)
	for _, v := range t {
		h = hashValue(h, v)
	}
	return hashFinish(h)
}

// HashCols hashes the projection of t onto the given positions without
// materializing the sub-tuple: HashCols(pos) == Project(pos).Hash().
func (t Tuple) HashCols(pos []int) uint64 {
	h := uint64(hashSeed)
	for _, j := range pos {
		h = hashValue(h, t[j])
	}
	return hashFinish(h)
}

// KeyEqual reports whether two tuples are identical under the canonical
// key encoding — the identity relations and indexes store tuples by.
// Equivalent to Key() == o.Key() without materializing either key.
func (t Tuple) KeyEqual(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].keyEqual(o[i]) {
			return false
		}
	}
	return true
}

// EqualAt reports whether the projection of t onto pos is
// canonical-key-identical to probe (one value per position, in pos
// order) — the match rule of index probes, consistent with HashCols.
func (t Tuple) EqualAt(pos []int, probe Tuple) bool {
	if len(pos) != len(probe) {
		return false
	}
	for i, j := range pos {
		if !t[j].keyEqual(probe[i]) {
			return false
		}
	}
	return true
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}
