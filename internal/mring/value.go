// Package mring implements generalized multiset relations — the data model
// of DBToaster-style incremental view maintenance. A relation maps each
// unique tuple to a non-zero multiplicity. Multiplicities generalize counts
// to aggregate values (SUM, AVG numerators, ...), so refreshing an aggregate
// means changing a multiplicity rather than deleting and re-inserting tuples.
package mring

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types supported in tuples.
type Kind uint8

// Supported value kinds.
const (
	KInt Kind = iota
	KFloat
	KString
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a tagged union holding one column value of a tuple.
// The zero Value is the integer 0.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{K: KFloat, F: f} }

// String returns a string Value.
func Str(s string) Value { return Value{K: KString, S: s} }

// AsFloat converts the value to float64 for arithmetic.
// Strings convert to their parse result, or 0 if unparsable.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KInt:
		return float64(v.I)
	case KFloat:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// AsInt converts the value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.K {
	case KInt:
		return v.I
	case KFloat:
		return int64(v.F)
	default:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
}

// Equal reports whether two values are equal. Numeric values compare by
// numeric value across KInt/KFloat; strings compare only to strings.
func (v Value) Equal(o Value) bool {
	if v.K == KString || o.K == KString {
		return v.K == KString && o.K == KString && v.S == o.S
	}
	if v.K == KInt && o.K == KInt {
		return v.I == o.I
	}
	return v.AsFloat() == o.AsFloat()
}

// Less reports whether v sorts before o. Numbers sort before strings;
// mixed numeric kinds compare numerically.
func (v Value) Less(o Value) bool {
	if v.K == KString || o.K == KString {
		if v.K != KString {
			return true
		}
		if o.K != KString {
			return false
		}
		return v.S < o.S
	}
	if v.K == KInt && o.K == KInt {
		return v.I < o.I
	}
	return v.AsFloat() < o.AsFloat()
}

// Compare returns -1, 0, or +1 ordering v against o, consistent with Less.
func (v Value) Compare(o Value) int {
	if v.Equal(o) {
		return 0
	}
	if v.Less(o) {
		return -1
	}
	return 1
}

func (v Value) String() string {
	switch v.K {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return strconv.Quote(v.S)
	}
}

// Tuple is an ordered list of column values. Column names live in the
// relation's schema, not in the tuple.
type Tuple []Value

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Less imposes a total order used for deterministic iteration in tests
// and reports.
func (t Tuple) Less(o Tuple) bool {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c < 0
		}
	}
	return len(t) < len(o)
}

func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// EncodeKey appends a canonical byte encoding of the tuple to dst and
// returns the result. Two tuples encode equal iff they are Equal: integers
// and integral floats share an encoding so that Int(3) and Float(3) collide
// as the data model requires.
func (t Tuple) EncodeKey(dst []byte) []byte {
	var buf [9]byte
	for _, v := range t {
		switch v.K {
		case KString:
			dst = append(dst, 's')
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			f := v.AsFloat()
			if i := int64(f); float64(i) == f {
				buf[0] = 'i'
				binary.LittleEndian.PutUint64(buf[1:], uint64(i))
			} else {
				buf[0] = 'f'
				binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
			}
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// Key returns the canonical string key for the tuple, suitable as a map key.
func (t Tuple) Key() string { return string(t.EncodeKey(nil)) }

// Hash returns a 64-bit FNV-1a hash of the tuple's canonical encoding.
func (t Tuple) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var scratch [64]byte
	b := t.EncodeKey(scratch[:0])
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}
