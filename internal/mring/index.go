package mring

import "fmt"

// Index is a secondary hash index over a relation, keyed by the projection
// of each tuple onto a fixed set of column positions (the bound-column mask
// of a slice access pattern, Sec. 5.1). Indexes are owned by the relation
// and maintained incrementally on every Add/Set/Clear, so they are always
// consistent with the primary storage — there is nothing to invalidate.
//
// Index buckets share the relation's entry nodes, so a pure multiplicity
// change needs no index work at all; only insertions and deletions of
// distinct tuples touch the buckets.
type Index struct {
	r   *Relation
	pos []int
	m   map[uint64][]*entry
	// h is the relation-owned admission record; nil only during the
	// initial bulk build (so the build is not counted as maintenance).
	h *idxHealth
}

// MaxIndexCol is the first column position a secondary index cannot
// cover (the bound-column bitmask is 64 bits wide). Callers probing wider
// relations must check Indexable and fall back to a scan.
const MaxIndexCol = 64

// Indexable reports whether every position fits in the index bitmask.
// Positions are ascending, so only the last needs checking.
func Indexable(pos []int) bool {
	return len(pos) == 0 || pos[len(pos)-1] < MaxIndexCol
}

// ColMask packs ascending column positions into a bitmask identifying an
// index. Callers guard with Indexable; out-of-range positions panic.
func ColMask(pos []int) uint64 {
	var mask uint64
	for _, p := range pos {
		if p < 0 || p >= MaxIndexCol {
			panic(fmt.Sprintf("mring: index column position %d out of range", p))
		}
		mask |= 1 << uint(p)
	}
	return mask
}

// MaskCols expands a bitmask back into ascending column positions.
func MaskCols(mask uint64) []int {
	var pos []int
	for p := 0; mask != 0; p, mask = p+1, mask>>1 {
		if mask&1 != 0 {
			pos = append(pos, p)
		}
	}
	return pos
}

// keyHash hashes the projection of t onto the index columns, honoring the
// relation's test-only hash override so forced collisions also exercise
// index buckets.
func (ix *Index) keyHash(t Tuple, pos []int) uint64 {
	if ix.r.hashFn != nil {
		return ix.r.hashFn(t.Project(pos))
	}
	return t.HashCols(pos)
}

func (ix *Index) insert(e *entry) {
	if ix.h != nil {
		ix.h.maintains++
	}
	h := ix.keyHash(e.t, ix.pos)
	ix.m[h] = append(ix.m[h], e)
}

func (ix *Index) remove(e *entry) {
	if ix.h != nil {
		ix.h.maintains++
	}
	h := ix.keyHash(e.t, ix.pos)
	b := ix.m[h]
	for i, x := range b {
		if x == e {
			b[i] = b[len(b)-1]
			b[len(b)-1] = nil
			b = b[:len(b)-1]
			if len(b) == 0 {
				delete(ix.m, h)
			} else {
				ix.m[h] = b
			}
			return
		}
	}
}

// EnsureIndex returns the secondary index over the given ascending column
// positions, building it from the current contents on first registration.
// The returned bool reports whether a build happened (for index-op stats).
// The positions slice is not retained if the index already exists.
func (r *Relation) EnsureIndex(pos []int) (*Index, bool) {
	mask := ColMask(pos)
	if ix, ok := r.idxs[mask]; ok {
		return ix, false
	}
	ix := &Index{r: r, pos: append([]int(nil), pos...), m: make(map[uint64][]*entry, r.n)}
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			ix.insert(e)
		}
	}
	// Attach the admission record only after the bulk build, so the
	// build itself is not counted as incremental maintenance.
	ix.h = r.healthFor(mask, ix.pos)
	if r.idxs == nil {
		r.idxs = make(map[uint64]*Index)
	}
	r.idxs[mask] = ix
	return ix, true
}

// Probe calls f for every tuple whose projection onto the index columns
// equals probe (one value per index column, in ascending position order).
// f must not mutate the relation.
func (ix *Index) Probe(probe Tuple, f func(t Tuple, m float64)) {
	if ix.h != nil {
		ix.h.probes++
	}
	var h uint64
	if ix.r.hashFn != nil {
		h = ix.r.hashFn(probe)
	} else {
		h = probe.Hash()
	}
	for _, e := range ix.m[h] {
		if e.t.EqualAt(ix.pos, probe) {
			f(e.t, e.m)
		}
	}
}

// Indexes returns the number of registered secondary indexes (for tests
// and memory reporting).
func (r *Relation) Indexes() int { return len(r.idxs) }
