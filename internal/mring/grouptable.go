package mring

// GroupTable is the hash-native aggregation table: a streaming map from
// group-key tuples to accumulated ring values, backed by the same
// open-chained power-of-two layout as Relation's primary storage. It is
// what evalAgg and the batch pre-aggregation statements build instead of
// string-keyed maps, so grouping never materializes Tuple.Key on the
// per-batch hot path.
//
// Identity and cancellation follow the relation data model exactly: keys
// compare by the canonical key encoding (KeyEqual), and a group whose
// accumulated value crosses into (-Eps, Eps) is removed from the table at
// accumulation time — empty groups never survive to emission, matching
// what Relation.Add does to multiplicities.
//
// Iteration (Foreach, AppendTo, FillRelation, Merge) visits live groups
// in first-insertion order. That makes every fold of a group table into
// downstream state deterministic: merging per-worker tables in
// worker-index order replays the same float additions in the same order
// on every run (see DESIGN.md §6).
type GroupTable struct {
	schema Schema
	tab    []*gentry // power-of-two bucket array, nil until first insert
	mask   uint64    // len(tab)-1
	n      int       // live groups
	order  []*gentry // every inserted entry in insertion order (dead ones skipped)
	// hashFn overrides key hashing in tests (forcing collision chains);
	// nil means Tuple.Hash. Set with SetHashFnForTest before the first Add.
	hashFn func(Tuple) uint64
}

// gentry is one group: its key tuple, accumulated value, full 64-bit key
// hash (kept for rehash-free growth and conversion to relations), and the
// bucket collision chain. dead marks groups canceled by accumulation;
// they stay in order (skipped on iteration) but leave the chains.
type gentry struct {
	t    Tuple
	v    float64
	h    uint64
	next *gentry
	dead bool
}

// NewGroupTable returns an empty group table whose keys have the given
// schema (the aggregate's group-by columns; empty for scalar aggregates).
func NewGroupTable(schema Schema) *GroupTable {
	return &GroupTable{schema: schema.Clone()}
}

// SetHashFnForTest overrides key hashing (tests force collision chains
// with it). It must be called before the first Add and disables the
// hash-reuse fast paths of AppendTo/FillRelation/MergeRelation.
func (g *GroupTable) SetHashFnForTest(fn func(Tuple) uint64) {
	if g.n != 0 || len(g.order) != 0 {
		panic("mring: SetHashFnForTest after first Add")
	}
	g.hashFn = fn
}

// Schema returns the group-key column names. Callers must not mutate it.
func (g *GroupTable) Schema() Schema { return g.schema }

// Len returns the number of live groups.
func (g *GroupTable) Len() int { return g.n }

func (g *GroupTable) hash(t Tuple) uint64 {
	if g.hashFn != nil {
		return g.hashFn(t)
	}
	return t.Hash()
}

// grow doubles the bucket table (or creates it) and relinks every live
// entry under its stored hash — no per-entry allocation.
func (g *GroupTable) grow() {
	size := 8
	if len(g.tab) > 0 {
		size = len(g.tab) * 2
	}
	ntab := make([]*gentry, size)
	nmask := uint64(size - 1)
	for _, e := range g.tab {
		for e != nil {
			next := e.next
			i := e.h & nmask
			e.next = ntab[i]
			ntab[i] = e
			e = next
		}
	}
	g.tab, g.mask = ntab, nmask
}

// addHashed accumulates v into the group keyed by key under its
// precomputed hash. key is only cloned when a new group is inserted, so
// callers stream through a reused buffer. A group whose value crosses
// into (-Eps, Eps) is unlinked immediately (in-table cancellation).
func (g *GroupTable) addHashed(h uint64, key Tuple, v float64) {
	if v == 0 {
		return
	}
	if g.tab != nil {
		var prev *gentry
		for e := g.tab[h&g.mask]; e != nil; prev, e = e, e.next {
			if e.h != h || !e.t.KeyEqual(key) {
				continue
			}
			e.v += v
			if e.v > -Eps && e.v < Eps {
				// Cancel in place: out of the chain, tombstoned in order.
				if prev == nil {
					g.tab[h&g.mask] = e.next
				} else {
					prev.next = e.next
				}
				e.next = nil
				e.dead = true
				g.n--
			}
			return
		}
	}
	if g.n >= len(g.tab) { // covers the nil table: 0 >= 0
		g.grow()
	}
	i := h & g.mask
	e := &gentry{t: key.Clone(), v: v, h: h, next: g.tab[i]}
	g.tab[i] = e
	g.order = append(g.order, e)
	g.n++
}

// Add accumulates v into the group keyed by key (len(key) must match the
// schema). key may be a reused buffer; it is cloned only on first insert.
func (g *GroupTable) Add(key Tuple, v float64) {
	g.addHashed(g.hash(key), key, v)
}

// AddPrehashed accumulates v under a caller-computed hash, which must
// equal key.Hash() (columnar kernels hash column-wise and feed rows here).
// A test hash override takes precedence over h.
func (g *GroupTable) AddPrehashed(h uint64, key Tuple, v float64) {
	if g.hashFn != nil {
		h = g.hashFn(key)
	}
	g.addHashed(h, key, v)
}

// Get returns the accumulated value of the group keyed by key (zero when
// absent or canceled).
func (g *GroupTable) Get(key Tuple) float64 {
	if g.tab == nil {
		return 0
	}
	h := g.hash(key)
	for e := g.tab[h&g.mask]; e != nil; e = e.next {
		if e.h == h && e.t.KeyEqual(key) {
			return e.v
		}
	}
	return 0
}

// Foreach visits every live group in first-insertion order. f must not
// mutate the table.
func (g *GroupTable) Foreach(f func(key Tuple, v float64)) {
	for _, e := range g.order {
		if !e.dead {
			f(e.t, e.v)
		}
	}
}

// MergeRelation accumulates every tuple of r as a group contribution
// (r's schema must match the group schema positionally). Entries reuse
// r's stored hashes when neither side overrides hashing; iteration
// follows r's storage order, so merging fragments in a fixed sequence is
// deterministic for a fixed partitioning.
func (g *GroupTable) MergeRelation(r *Relation) {
	reuse := g.hashFn == nil && r.hashFn == nil
	for _, e := range r.tab {
		for ; e != nil; e = e.next {
			if reuse {
				g.addHashed(e.h, e.t, e.m)
			} else {
				g.Add(e.t, e.m)
			}
		}
	}
}

// Merge accumulates every live group of o, in o's insertion order.
func (g *GroupTable) Merge(o *GroupTable) {
	reuse := g.hashFn == nil && o.hashFn == nil
	for _, e := range o.order {
		if e.dead {
			continue
		}
		if reuse {
			g.addHashed(e.h, e.t, e.v)
		} else {
			g.Add(e.t, e.v)
		}
	}
}

// AppendTo folds every live group into r as a multiplicity delta
// (r.Add semantics), reusing the stored hashes when neither side
// overrides hashing. Groups are applied in insertion order.
func (g *GroupTable) AppendTo(r *Relation) {
	reuse := g.hashFn == nil && r.hashFn == nil
	for _, e := range g.order {
		if e.dead {
			continue
		}
		if reuse {
			r.addHashed(e.h, e.t, e.v)
		} else {
			r.Add(e.t, e.v)
		}
	}
}

// FillRelation blind-inserts every live group into r, which must be
// empty (the OpSet fold: Clear then fill). Group keys are unique, so no
// lookups happen, and both the stored hashes and the key tuples carry
// over allocation-free; r's registered secondary indexes are maintained
// by the inserts. The fill transfers ownership of the group-key tuples
// (they were cloned on table insert and tuples are never mutated in
// place), so the table must be discarded afterward — every caller is
// single-use: the executor's and workers' OpSet folds, gather, and
// ToRelation.
func (g *GroupTable) FillRelation(r *Relation) {
	if r.Len() != 0 {
		panic("mring: FillRelation target not empty")
	}
	if g.hashFn != nil || r.hashFn != nil {
		g.AppendTo(r)
		return
	}
	for _, e := range g.order {
		if !e.dead {
			r.insertHashed(e.h, e.t, e.v)
		}
	}
}

// ToRelation converts the live groups into a fresh relation with the
// group schema, reusing stored hashes.
func (g *GroupTable) ToRelation() *Relation {
	r := NewRelation(g.schema)
	g.FillRelation(r)
	return r
}
