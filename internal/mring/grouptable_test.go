package mring

import (
	"fmt"
	"math/rand"
	"testing"
)

// groupRef is the string-keyed model GroupTable must match: canonical-key
// groups, in-table Eps cancellation, first-insertion iteration order.
type groupRef struct {
	vals  map[string]float64
	keys  map[string]Tuple
	order []string // every insertion, including ones later canceled
	dead  []bool   // tombstones aligned with order
	occ   map[string]int
}

func newGroupRef() *groupRef {
	return &groupRef{vals: map[string]float64{}, keys: map[string]Tuple{}, occ: map[string]int{}}
}

func (r *groupRef) add(key Tuple, v float64) {
	if v == 0 {
		return
	}
	k := key.Key()
	cur, ok := r.vals[k]
	if !ok {
		r.vals[k] = v
		r.keys[k] = key.Clone()
		r.order = append(r.order, k)
		r.dead = append(r.dead, false)
		r.occ[k] = len(r.order) - 1
		return
	}
	cur += v
	if cur > -Eps && cur < Eps {
		r.dead[r.occ[k]] = true
		delete(r.vals, k)
		delete(r.keys, k)
		delete(r.occ, k)
		return
	}
	r.vals[k] = cur
}

func assertGroupsSame(t *testing.T, gt *GroupTable, ref *groupRef, step int) {
	t.Helper()
	if gt.Len() != len(ref.vals) {
		t.Fatalf("step %d: Len=%d, reference has %d groups", step, gt.Len(), len(ref.vals))
	}
	gt.Foreach(func(key Tuple, v float64) {
		if want := ref.vals[key.Key()]; want != v {
			t.Fatalf("step %d: group %v = %g, reference %g", step, key, v, want)
		}
	})
	for k, want := range ref.vals {
		if got := gt.Get(ref.keys[k]); got != want {
			t.Fatalf("step %d: Get(%v) = %g, reference %g", step, ref.keys[k], got, want)
		}
	}
}

func runGroupTableProperty(t *testing.T, seed int64, hashFn func(Tuple) uint64) {
	rng := rand.New(rand.NewSource(seed))
	schema := Schema{"g", "h"}
	gt := NewGroupTable(schema)
	if hashFn != nil {
		gt.SetHashFnForTest(hashFn)
	}
	ref := newGroupRef()
	buf := make(Tuple, 2)
	for step := 0; step < 4000; step++ {
		key := randomTuple(rng) // the shared small-domain generator: frequent hits and cancels
		v := float64(rng.Intn(7) - 3)
		switch rng.Intn(3) {
		case 0: // streaming Add through the reused buffer
			copy(buf, key)
			gt.Add(buf, v)
		case 1: // AddPrehashed with a column-subset hash of a wider carrier
			carrier := Tuple{Str("pad"), key[0], key[1], Int(99)}
			gt.AddPrehashed(carrier.HashCols([]int{1, 2}), carrier.Project([]int{1, 2}), v)
		default: // AddPrehashed, as the columnar kernel feeds it
			gt.AddPrehashed(key.Hash(), key, v)
		}
		ref.add(key, v)
		if step%97 == 0 {
			assertGroupsSame(t, gt, ref, step)
		}
	}
	assertGroupsSame(t, gt, ref, -1)

	// Iteration order is first-insertion order: replaying Foreach against
	// the reference's live insertion sequence must line up key for key.
	i := 0
	gt.Foreach(func(key Tuple, _ float64) {
		for i < len(ref.order) && ref.dead[i] {
			i++
		}
		if i >= len(ref.order) || ref.order[i] != key.Key() {
			t.Fatalf("iteration order diverges at %v", key)
		}
		i++
	})

	// Folding into relations preserves contents through all three paths.
	rel := NewRelation(schema)
	gt.AppendTo(rel)
	if rel.Len() != gt.Len() {
		t.Fatalf("AppendTo: %d tuples, want %d", rel.Len(), gt.Len())
	}
	filled := gt.ToRelation()
	if !filled.Equal(rel) {
		t.Fatalf("ToRelation diverges from AppendTo:\n %v\n %v", filled, rel)
	}
	back := NewGroupTable(schema)
	back.MergeRelation(filled)
	assertGroupsSame(t, back, ref, -2)
}

func TestGroupTableMatchesStringKeyedModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runGroupTableProperty(t, seed, nil)
		})
	}
}

func TestGroupTableMatchesModelUnderForcedCollisions(t *testing.T) {
	collide := func(tp Tuple) uint64 { return tp.Hash() & 1 }
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runGroupTableProperty(t, seed, collide)
		})
	}
}

// TestGroupTableMergeOrder pins the determinism contract the distributed
// gather relies on: merging the same per-worker tables in worker-index
// order twice produces bitwise-identical float sums.
func TestGroupTableMergeOrder(t *testing.T) {
	schema := Schema{"g"}
	mk := func() []*GroupTable {
		ws := make([]*GroupTable, 3)
		for i := range ws {
			ws[i] = NewGroupTable(schema)
			// Values chosen so addition order changes the rounded sum.
			ws[i].Add(Tuple{Int(1)}, 0.1*float64(i+1))
			ws[i].Add(Tuple{Int(2)}, 1e16)
			ws[i].Add(Tuple{Int(2)}, float64(i)-1)
		}
		return ws
	}
	merge := func(ws []*GroupTable) *GroupTable {
		out := NewGroupTable(schema)
		for _, w := range ws {
			out.Merge(w)
		}
		return out
	}
	a, b := merge(mk()), merge(mk())
	if a.Len() != b.Len() {
		t.Fatalf("merge lengths differ: %d vs %d", a.Len(), b.Len())
	}
	a.Foreach(func(key Tuple, v float64) {
		if got := b.Get(key); got != v {
			t.Fatalf("merge not reproducible: %v -> %g vs %g", key, v, got)
		}
	})
}

// TestGroupTableFillRelationRequiresEmpty pins the blind-insert contract.
func TestGroupTableFillRelationRequiresEmpty(t *testing.T) {
	gt := NewGroupTable(Schema{"g"})
	gt.Add(Tuple{Int(1)}, 2)
	r := NewRelation(Schema{"g"})
	r.Add(Tuple{Int(9)}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("FillRelation into a non-empty relation must panic")
		}
	}()
	gt.FillRelation(r)
}
