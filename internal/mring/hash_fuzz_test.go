package mring

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// fuzzValue decodes one Value from the fuzz input: a kind selector byte
// followed by 8 raw bytes (ints and float bit patterns share the same 8
// bytes so the fuzzer can mutate one into the other; strings take a short
// prefix of them).
func fuzzValue(data []byte) (Value, []byte, bool) {
	if len(data) < 9 {
		return Value{}, nil, false
	}
	sel, raw := data[0], data[1:9]
	w := binary.LittleEndian.Uint64(raw)
	rest := data[9:]
	switch sel % 4 {
	case 0:
		return Int(int64(w)), rest, true
	case 1:
		return Float(math.Float64frombits(w)), rest, true
	case 2:
		// Small ints double as int/float cross-kind collision bait.
		return Float(float64(int64(w) % 1024)), rest, true
	default:
		return Str(string(raw[:int(sel)%9])), rest, true
	}
}

func fuzzTuple(data []byte, arity int) (Tuple, []byte, bool) {
	t := make(Tuple, arity)
	for i := range t {
		var ok bool
		t[i], data, ok = fuzzValue(data)
		if !ok {
			return nil, nil, false
		}
	}
	return t, data, true
}

// FuzzHashColsKeyEqual fuzzes the storage-identity contract between the
// canonical key encoding, KeyEqual/EqualAt, and Hash/HashCols: any two
// tuples with equal canonical keys must compare equal and hash equal,
// under the full tuple and under every column subset. Aggregation keys
// groups by exactly these operations, so a violation would split or merge
// groups relative to the string-keyed reference.
func FuzzHashColsKeyEqual(f *testing.F) {
	le := binary.LittleEndian
	b8 := func(w uint64) []byte {
		var b [8]byte
		le.PutUint64(b[:], w)
		return b[:]
	}
	// Seeds: identical int/float pairs, NaN, 2^53 neighbors, strings.
	f.Add(append([]byte{2, 0}, bytes.Repeat(append([]byte{0}, b8(7)...), 4)...))
	f.Add(append([]byte{1, 1}, append(append([]byte{1}, b8(math.Float64bits(math.NaN()))...),
		append([]byte{1}, b8(math.Float64bits(math.NaN()))...)...)...))
	f.Add(append([]byte{1, 1}, append(append([]byte{0}, b8(uint64(int64(1)<<53))...),
		append([]byte{0}, b8(uint64(int64(1)<<53+1))...)...)...))
	f.Add(append([]byte{2, 3}, bytes.Repeat(append([]byte{7}, []byte("grpkey00")...), 4)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		arity := int(data[0])%3 + 1
		subsetSel := data[1]
		t1, rest, ok := fuzzTuple(data[2:], arity)
		if !ok {
			return
		}
		t2, _, ok := fuzzTuple(rest, arity)
		if !ok {
			return
		}

		// Full-tuple contract: KeyEqual ⇔ canonical keys equal, and equal
		// keys hash equal.
		keysEq := string(t1.EncodeKey(nil)) == string(t2.EncodeKey(nil))
		if got := t1.KeyEqual(t2); got != keysEq {
			t.Fatalf("KeyEqual=%v but key-encoding equality=%v\n t1=%v\n t2=%v", got, keysEq, t1, t2)
		}
		if keysEq && t1.Hash() != t2.Hash() {
			t.Fatalf("equal canonical keys hash differently\n t1=%v (%#x)\n t2=%v (%#x)",
				t1, t1.Hash(), t2, t2.Hash())
		}

		// Column-subset contract, for the subset drawn from the selector:
		// HashCols must equal the projection's Hash, and EqualAt must
		// agree with the projections' key equality — the exact operations
		// group tables and secondary indexes key by.
		var pos []int
		for i := 0; i < arity; i++ {
			if subsetSel&(1<<i) != 0 {
				pos = append(pos, i)
			}
		}
		p1, p2 := t1.Project(pos), t2.Project(pos)
		if t1.HashCols(pos) != p1.Hash() {
			t.Fatalf("HashCols(%v) != Project(%v).Hash() for %v", pos, pos, t1)
		}
		projEq := string(p1.EncodeKey(nil)) == string(p2.EncodeKey(nil))
		if got := t1.EqualAt(pos, p2); got != projEq {
			t.Fatalf("EqualAt(%v)=%v but projected key equality=%v\n t1=%v\n t2=%v", pos, got, projEq, t1, t2)
		}
		if projEq && t1.HashCols(pos) != t2.HashCols(pos) {
			t.Fatalf("equal projected keys hash differently under HashCols(%v)\n t1=%v\n t2=%v", pos, t1, t2)
		}
	})
}
