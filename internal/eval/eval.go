// Package eval implements the paper's model of computation (Sec. 3.2.1):
// expressions are trees of operators evaluated left to right, bottom up,
// with information about bound variables flowing left to right through
// products. Relational terms dispatch on the bound-variable set to the
// three access paths the code generator specializes in Sec. 5.1:
//
//   - foreach (no variables bound): scan every stored tuple, binding all
//     columns — a hash-map traversal of the relation's primary storage.
//   - get (all variables bound): a single hash lookup of the probe tuple
//     in the primary storage; no iteration, no allocation.
//   - slice (some variables bound): probe a persistent secondary index
//     owned by the relation, keyed by the bound-column projection. The
//     indexes are registered per (relation, bound-column mask) — at
//     compile time from the access patterns the compiler extracts, or
//     lazily on first use — and are maintained incrementally by the
//     relation on every mutation, so per-update maintenance is constant
//     time and nothing is ever rebuilt or invalidated between batches.
package eval

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/mring"
)

// Env maps relation names (base tables, delta batches, materialized views)
// to their current contents. One Env backs one engine instance.
type Env struct {
	rels map[string]*mring.Relation
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{rels: make(map[string]*mring.Relation)} }

// Define registers (or replaces) relation name with the given schema and
// returns its empty contents.
func (e *Env) Define(name string, schema mring.Schema) *mring.Relation {
	r := mring.NewRelation(schema)
	e.rels[name] = r
	return r
}

// Bind registers an existing relation under name.
func (e *Env) Bind(name string, r *mring.Relation) { e.rels[name] = r }

// Rel returns the relation registered under name, or nil.
func (e *Env) Rel(name string) *mring.Relation { return e.rels[name] }

// MustRel returns the relation or panics; evaluation of compiled programs
// treats missing relations as programming errors.
func (e *Env) MustRel(name string) *mring.Relation {
	r := e.rels[name]
	if r == nil {
		panic(fmt.Sprintf("eval: relation %q not defined", name))
	}
	return r
}

// Names returns all registered relation names (unordered).
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.rels))
	for n := range e.rels {
		out = append(out, n)
	}
	return out
}

// Binding tracks the variables bound during evaluation. Binding an
// already-bound variable degrades to an equality check, which is exactly
// the natural-join semantics of repeated column names.
type Binding struct {
	vals map[string]mring.Value
}

// NewBinding returns an empty binding.
func NewBinding() *Binding { return &Binding{vals: make(map[string]mring.Value)} }

// Lookup returns the value bound to name; it panics when unbound, because
// compiled programs guarantee boundness of value-term variables.
func (b *Binding) Lookup(name string) mring.Value {
	v, ok := b.vals[name]
	if !ok {
		panic(fmt.Sprintf("eval: variable %q unbound", name))
	}
	return v
}

// Get returns the value and whether name is bound.
func (b *Binding) Get(name string) (mring.Value, bool) {
	v, ok := b.vals[name]
	return v, ok
}

// Set binds name to v unconditionally. Callers use the returned prior
// state to restore.
func (b *Binding) set(name string, v mring.Value) {
	b.vals[name] = v
}

func (b *Binding) unset(name string) { delete(b.vals, name) }

// Tuple projects the binding onto the schema.
func (b *Binding) Tuple(schema mring.Schema) mring.Tuple {
	t := make(mring.Tuple, len(schema))
	for i, c := range schema {
		t[i] = b.Lookup(c)
	}
	return t
}

// Stats accumulates operation counts during evaluation. They feed the
// distributed cost model and the cache-locality experiment.
type Stats struct {
	Lookups  int64 // get operations on relations
	Scans    int64 // tuples visited by foreach/slice
	Emits    int64 // tuples produced
	IndexOps int64 // secondary-index builds (first registration only)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Scans += o.Scans
	s.Emits += o.Emits
	s.IndexOps += o.IndexOps
}

// Ctx is one evaluation context. Slice access paths probe persistent
// secondary indexes owned by the relations themselves (maintained
// incrementally on mutation), so a Ctx carries no cached index state and
// may be reused across statements and batches freely.
type Ctx struct {
	Env   *Env
	Stats Stats
	// Tracer, when non-nil, observes every relation memory touch for the
	// cache-locality experiment.
	Tracer func(rel string, tupleHash uint64)
	// DisableKernels forces the row-wise path even for statements the
	// vectorized columnar kernels cover; the kernel-vs-row property tests
	// and benchmarks flip it.
	DisableKernels bool
	// KernelFolds counts aggregate folds served by the columnar kernels.
	KernelFolds int64
	// groupHash overrides group-table key hashing in tests (forcing
	// collision chains on the aggregation path); nil means Tuple.Hash.
	groupHash func(mring.Tuple) uint64
	// foldSinks maps watched fold targets to delta sinks (CaptureFolds);
	// nil when nothing is watched.
	foldSinks map[*mring.Relation]*mring.Relation
}

// NewCtx returns a fresh evaluation context over env.
func NewCtx(env *Env) *Ctx {
	return &Ctx{Env: env}
}

// Eval evaluates e under binding b, invoking emit once per produced tuple
// extension with its multiplicity. After each emit, the schema columns of
// e are bound in b; bindings are restored before Eval returns.
func (c *Ctx) Eval(e expr.Expr, b *Binding, emit func(m float64)) {
	switch x := e.(type) {
	case *expr.Const:
		if x.V != 0 {
			c.Stats.Emits++
			emit(x.V)
		}
	case *expr.Val:
		v := x.E.EvalV(b.Lookup).AsFloat()
		if v != 0 {
			c.Stats.Emits++
			emit(v)
		}
	case *expr.Cmp:
		if expr.EvalCmp(x.Op, x.L.EvalV(b.Lookup), x.R.EvalV(b.Lookup)) {
			c.Stats.Emits++
			emit(1)
		}
	case *expr.Rel:
		c.evalRel(x, b, emit)
	case *expr.Mul:
		c.evalMul(x.Factors, b, 1, emit)
	case *expr.Plus:
		// Downstream operators are linear in multiplicity, so streaming
		// each term is equivalent to materializing the union first.
		for _, t := range x.Terms {
			c.Eval(t, b, emit)
		}
	case *expr.Agg:
		c.evalAgg(x, b, emit)
	case *expr.Assign:
		c.evalAssign(x, b, emit)
	case *expr.Exists:
		c.evalExists(x, b, emit)
	default:
		panic(fmt.Sprintf("eval: unknown node %T", e))
	}
}

func (c *Ctx) evalMul(factors []expr.Expr, b *Binding, acc float64, emit func(m float64)) {
	if len(factors) == 0 {
		emit(acc)
		return
	}
	head, rest := factors[0], factors[1:]
	c.Eval(head, b, func(m float64) {
		c.evalMul(rest, b, acc*m, emit)
	})
}

// DeltaName returns the environment name under which the update batch of
// base relation name is registered ("ΔR" for base table "R").
func DeltaName(name string) string { return "Δ" + name }

// RelEnvName returns the environment key a relational term resolves to.
func RelEnvName(r *expr.Rel) string {
	if r.Kind == expr.RDelta {
		return DeltaName(r.Name)
	}
	return r.Name
}

// evalRel dispatches on which columns are already bound.
func (c *Ctx) evalRel(r *expr.Rel, b *Binding, emit func(m float64)) {
	rel := c.Env.MustRel(RelEnvName(r))
	var boundCols, freeCols []int
	for i, col := range r.Cols {
		if _, ok := b.Get(col); ok {
			boundCols = append(boundCols, i)
		} else {
			freeCols = append(freeCols, i)
		}
	}
	switch {
	case len(freeCols) == 0:
		// get: all columns bound — single lookup.
		key := make(mring.Tuple, len(r.Cols))
		for i, col := range r.Cols {
			key[i] = b.Lookup(col)
		}
		c.Stats.Lookups++
		if c.Tracer != nil {
			c.Tracer(r.Name, key.Hash())
		}
		if m := rel.Get(key); m != 0 {
			c.Stats.Emits++
			emit(m)
		}
	case len(boundCols) == 0:
		// foreach: scan the whole collection.
		rel.Foreach(func(t mring.Tuple, m float64) {
			c.Stats.Scans++
			if c.Tracer != nil {
				c.Tracer(r.Name, t.Hash())
			}
			if len(t) != len(r.Cols) {
				panic(fmt.Sprintf("eval: arity mismatch scanning %s", r.Name))
			}
			for i, col := range r.Cols {
				b.set(col, t[i])
			}
			c.Stats.Emits++
			emit(m)
		})
		for _, i := range freeCols {
			b.unset(r.Cols[i])
		}
	default:
		// slice: some bound — probe the relation's persistent secondary
		// index for the bound-column mask.
		c.evalSlice(r, rel, b, boundCols, freeCols, emit)
	}
}

func (c *Ctx) evalSlice(r *expr.Rel, rel *mring.Relation, b *Binding, boundCols, freeCols []int, emit func(m float64)) {
	if !mring.Indexable(boundCols) {
		// Bound columns beyond the index bitmask width (>64-column
		// relation): degrade to a filtered scan rather than failing.
		c.evalSliceScan(r, rel, b, boundCols, freeCols, emit)
		return
	}
	idx, built, ok := rel.SliceIndex(boundCols)
	if !ok {
		// The admission policy has demoted this index (probed ≪
		// maintained): answer from the scan fallback instead.
		c.evalSliceScan(r, rel, b, boundCols, freeCols, emit)
		return
	}
	if built {
		c.Stats.IndexOps++
	}
	probe := make(mring.Tuple, len(boundCols))
	for j, i := range boundCols {
		probe[j] = b.Lookup(r.Cols[i])
	}
	c.Stats.Lookups++
	idx.Probe(probe, func(t mring.Tuple, m float64) {
		c.Stats.Scans++
		if c.Tracer != nil {
			c.Tracer(r.Name, t.Hash())
		}
		for _, i := range freeCols {
			b.set(r.Cols[i], t[i])
		}
		c.Stats.Emits++
		emit(m)
	})
	for _, i := range freeCols {
		b.unset(r.Cols[i])
	}
}

// evalSliceScan is the unindexed slice path: scan everything, filter on
// the bound columns.
func (c *Ctx) evalSliceScan(r *expr.Rel, rel *mring.Relation, b *Binding, boundCols, freeCols []int, emit func(m float64)) {
	probe := make(mring.Tuple, len(boundCols))
	for j, i := range boundCols {
		probe[j] = b.Lookup(r.Cols[i])
	}
	c.Stats.Lookups++
	rel.Foreach(func(t mring.Tuple, m float64) {
		c.Stats.Scans++
		if !t.EqualAt(boundCols, probe) {
			return
		}
		if c.Tracer != nil {
			c.Tracer(r.Name, t.Hash())
		}
		for _, i := range freeCols {
			b.set(r.Cols[i], t[i])
		}
		c.Stats.Emits++
		emit(m)
	})
	for _, i := range freeCols {
		b.unset(r.Cols[i])
	}
}

// aggGroups evaluates Sum_[gb](body) under b into a hash-native group
// table: one streaming hash probe per produced tuple through a reused key
// buffer — no string keys, no per-emit tuple allocation. Groups whose
// ring value cancels to zero are removed inside the table (Relation.Add
// semantics), so canceled groups never reach emission or downstream
// views.
func (c *Ctx) aggGroups(a *expr.Agg, b *Binding) *mring.GroupTable {
	gt := mring.NewGroupTable(mring.Schema(a.GroupBy))
	if c.groupHash != nil {
		gt.SetHashFnForTest(c.groupHash)
	}
	if c.tryKernelAgg(a, b, gt) {
		return gt
	}
	key := make(mring.Tuple, len(a.GroupBy))
	c.Eval(a.Body, b, func(m float64) {
		for i, col := range a.GroupBy {
			key[i] = b.Lookup(col)
		}
		gt.Add(key, m)
	})
	return gt
}

// evalAgg materializes Sum_[gb](body): groups body results by the group-by
// columns in a hash-native group table and emits one tuple per live group
// with the accumulated multiplicity, in first-insertion order.
func (c *Ctx) evalAgg(a *expr.Agg, b *Binding, emit func(m float64)) {
	gt := c.aggGroups(a, b)
	var wasBound []int
	var savedVals []mring.Value
	for i, col := range a.GroupBy {
		if v, ok := b.Get(col); ok {
			wasBound = append(wasBound, i)
			savedVals = append(savedVals, v)
		}
	}
	gt.Foreach(func(t mring.Tuple, m float64) {
		for i, col := range a.GroupBy {
			b.set(col, t[i])
		}
		c.Stats.Emits++
		emit(m)
	})
	for _, col := range a.GroupBy {
		b.unset(col)
	}
	for j, i := range wasBound {
		b.set(a.GroupBy[i], savedVals[j])
	}
}

// evalAssign handles both assignment forms.
func (c *Ctx) evalAssign(a *expr.Assign, b *Binding, emit func(m float64)) {
	if a.Q == nil {
		// var := value.
		v := a.ValE.EvalV(b.Lookup)
		if prev, ok := b.Get(a.Var); ok {
			// Bound variable: acts as an equality filter.
			if prev.Equal(v) {
				c.Stats.Emits++
				emit(1)
			}
			return
		}
		b.set(a.Var, v)
		c.Stats.Emits++
		emit(1)
		b.unset(a.Var)
		return
	}
	// var := Q. Lifting is not linear in Q's multiplicities, so Q is
	// materialized under the current (correlated) bindings.
	qs := a.Q.Schema()
	if len(qs) == 0 {
		// Scalar nested aggregate: always defined, 0 when Q is empty
		// (COUNT over the empty set).
		var total float64
		c.Eval(a.Q, b, func(m float64) { total += m })
		c.bindLifted(a.Var, mring.Float(total), b, emit)
		return
	}
	rel := c.evalToRelation(a.Q, b)
	// Remember outer bindings of Q's schema columns so they are restored.
	var saved []struct {
		col string
		v   mring.Value
		ok  bool
	}
	for _, col := range qs {
		v, ok := b.Get(col)
		saved = append(saved, struct {
			col string
			v   mring.Value
			ok  bool
		}{col, v, ok})
	}
	rel.Foreach(func(t mring.Tuple, m float64) {
		for i, col := range qs {
			b.set(col, t[i])
		}
		c.bindLifted(a.Var, mring.Float(m), b, emit)
	})
	for _, s := range saved {
		if s.ok {
			b.set(s.col, s.v)
		} else {
			b.unset(s.col)
		}
	}
}

func (c *Ctx) bindLifted(v string, val mring.Value, b *Binding, emit func(m float64)) {
	if prev, ok := b.Get(v); ok {
		if prev.Equal(val) {
			c.Stats.Emits++
			emit(1)
		}
		return
	}
	b.set(v, val)
	c.Stats.Emits++
	emit(1)
	b.unset(v)
}

// evalExists materializes the body and emits each distinct tuple with
// multiplicity 1. Exists is not linear, so the body must be materialized
// (duplicate emissions for one tuple collapse to a single 1).
func (c *Ctx) evalExists(e *expr.Exists, b *Binding, emit func(m float64)) {
	s := e.Body.Schema()
	if len(s) == 0 {
		// Inline single-group accumulator with the group table's
		// in-table cancellation semantics, bit for bit: zero
		// contributions are skipped, a fresh contribution starts the
		// group (tiny values survive), and accumulating into
		// (-Eps, Eps) cancels it. Scalar Exists thereby agrees with
		// the grouped shape (TestExistsScalarMatchesGrouped pins the
		// agreement) without allocating a table on this per-binding
		// path.
		var total float64
		alive := false
		c.Eval(e.Body, b, func(m float64) {
			if m == 0 {
				return
			}
			if !alive {
				total, alive = m, true
				return
			}
			total += m
			if total > -mring.Eps && total < mring.Eps {
				alive = false
			}
		})
		if alive {
			c.Stats.Emits++
			emit(1)
		}
		return
	}
	rel := c.evalToRelation(e.Body, b)
	var saved []struct {
		v  mring.Value
		ok bool
	}
	for _, col := range s {
		v, ok := b.Get(col)
		saved = append(saved, struct {
			v  mring.Value
			ok bool
		}{v, ok})
	}
	rel.Foreach(func(t mring.Tuple, _ float64) {
		for i, col := range s {
			b.set(col, t[i])
		}
		c.Stats.Emits++
		emit(1)
	})
	for i, col := range s {
		if saved[i].ok {
			b.set(col, saved[i].v)
		} else {
			b.unset(col)
		}
	}
}

// evalToRelation materializes e under the current binding. Aggregates
// take the hash-native fast path: the group table converts straight into
// a relation with its stored hashes, skipping the bind/emit/re-hash round
// trip through the generic path.
func (c *Ctx) evalToRelation(e expr.Expr, b *Binding) *mring.Relation {
	if a, ok := e.(*expr.Agg); ok {
		gt := c.aggGroups(a, b)
		c.Stats.Emits += int64(gt.Len())
		return gt.ToRelation()
	}
	s := e.Schema()
	out := mring.NewRelation(s)
	c.Eval(e, b, func(m float64) {
		out.Add(b.Tuple(s), m)
	})
	return out
}

// Materialize evaluates e with no outer bindings into a fresh relation
// whose schema is e.Schema().
func (c *Ctx) Materialize(e expr.Expr) *mring.Relation {
	return c.evalToRelation(e, NewBinding())
}

// MaterializeGroups evaluates an aggregate with no outer bindings into a
// hash-native group table. Executors fold the table straight into target
// views (AppendTo/FillRelation), reusing its hashes instead of rebuilding
// a scratch relation.
func (c *Ctx) MaterializeGroups(a *expr.Agg) *mring.GroupTable {
	gt := c.aggGroups(a, NewBinding())
	c.Stats.Emits += int64(gt.Len())
	return gt
}

// CaptureFolds registers sink as the delta observer of target: every
// subsequent FoldStmt into target additionally folds the applied change
// into sink (the changefeed's delta emission hook). An OpAdd fold mirrors
// the folded groups exactly — the same float values, in the same order —
// so captured deltas are bitwise what the target received; an OpSet fold
// records new-minus-old contents. Sinks accumulate across statements
// (Relation.Add semantics), so contributions that cancel within one
// transaction never surface.
func (c *Ctx) CaptureFolds(target, sink *mring.Relation) {
	if c.foldSinks == nil {
		c.foldSinks = make(map[*mring.Relation]*mring.Relation, 1)
	}
	c.foldSinks[target] = sink
}

// FoldStmt evaluates rhs with no outer bindings and folds it into target
// under op — the one statement fold shared by the local executor and the
// cluster workers. A top-level aggregate (every pre-aggregation
// statement and most maintenance statements) evaluates into a
// hash-native group table and folds with its stored hashes: OpSet
// blind-fills the cleared target, OpAdd accumulates group deltas. Any
// other shape materializes a scratch relation and merges. The RHS is
// fully materialized before target mutates, so self-references observe a
// consistent pre-statement state.
func (c *Ctx) FoldStmt(target *mring.Relation, op AssignOp, rhs expr.Expr) {
	sink := c.foldSinks[target]
	var old *mring.Relation
	if sink != nil && op == OpSet {
		// Replacement folds (the re-evaluation policy) record the diff; the
		// pre-statement clone is paid only on watched targets.
		old = target.Clone()
	}
	if a, ok := rhs.(*expr.Agg); ok {
		gt := c.MaterializeGroups(a)
		if op == OpSet {
			target.Clear()
			gt.FillRelation(target)
		} else {
			gt.AppendTo(target)
			if sink != nil {
				gt.AppendTo(sink)
			}
		}
	} else {
		tmp := c.Materialize(rhs)
		if op == OpSet {
			target.Clear()
		}
		target.Merge(tmp)
		if sink != nil && op == OpAdd {
			sink.Merge(tmp)
		}
	}
	if old != nil {
		sink.Merge(target)
		sink.MergeScaled(old, -1)
	}
}

// EvalIntoOp applies op to target for every tuple produced by e.
type AssignOp uint8

// Statement operators.
const (
	OpAdd AssignOp = iota // target += e
	OpSet                 // target := e (replace contents)
)

func (op AssignOp) String() string {
	if op == OpAdd {
		return "+="
	}
	return ":="
}

// Apply evaluates e and folds it into target using op: an arity-checked
// wrapper over FoldStmt, so view initialization and the trigger
// statements share one fold (materialize-first, group-table fast path
// for aggregates). Target's schema must match e's output schema
// column-for-column (by position; names may differ for views).
func (c *Ctx) Apply(target *mring.Relation, op AssignOp, e expr.Expr) {
	if len(e.Schema()) != len(target.Schema()) {
		panic(fmt.Sprintf("eval: schema arity mismatch applying %v to %v", e.Schema(), target.Schema()))
	}
	c.FoldStmt(target, op, e)
}
