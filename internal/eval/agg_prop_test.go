package eval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/mring"
)

// refAggregator is the string-keyed reference the hash-native evalAgg must
// behave identically to: groups keyed by the canonical string key of the
// group-by projection, accumulated in body-emission order, with the data
// model's in-table zero cancellation (a group whose value crosses into
// (-Eps, Eps) is removed; a canceled key seen again starts a new group).
// It mirrors relation_prop_test.go's refModel, lifted to aggregation.
type refAggregator struct {
	vals  map[string]float64
	keys  map[string]mring.Tuple
	order []string
}

func newRefAggregator() *refAggregator {
	return &refAggregator{vals: map[string]float64{}, keys: map[string]mring.Tuple{}}
}

func (r *refAggregator) add(group mring.Tuple, m float64) {
	if m == 0 {
		return
	}
	k := group.Key()
	v, ok := r.vals[k]
	if !ok {
		r.vals[k] = m
		r.keys[k] = group.Clone()
		r.order = append(r.order, k)
		return
	}
	v += m
	if v > -mring.Eps && v < mring.Eps {
		delete(r.vals, k)
		delete(r.keys, k)
		return
	}
	r.vals[k] = v
}

// randomAggTuple draws tuples over the identity edge cases: NaN group
// keys (canonical key is reflexive on NaN), integers beyond 2^53 (the
// key encoding collapses them to their float value), int/float kind
// collisions, and plain strings. The small domain makes groups collide
// and cancel often.
func randomAggTuple(rng *rand.Rand) mring.Tuple {
	var key mring.Value
	switch rng.Intn(6) {
	case 0:
		key = mring.Int(int64(rng.Intn(5)))
	case 1:
		key = mring.Float(float64(rng.Intn(5))) // collides with the Int encoding
	case 2:
		key = mring.Str(fmt.Sprintf("g%d", rng.Intn(4)))
	case 3:
		key = mring.Float(math.NaN())
	case 4:
		key = mring.Int((int64(1) << 53) + int64(rng.Intn(3))) // beyond 2^53
	default:
		key = mring.Float(float64(rng.Intn(5)) + 0.25)
	}
	return mring.Tuple{key, mring.Int(int64(rng.Intn(3))), mring.Float(float64(rng.Intn(4)) + 0.5)}
}

// runAggModelProperty fills a relation with random tuples and random
// multiplicities, materializes Sum_[gb](R) through the hash-native
// group-table path, and compares against the string-keyed reference fed
// by an identical scan. Both consume the same emission sequence, so the
// accumulated floats must match bit for bit. hashFn, when non-nil, forces
// group-table hash collisions so the chain compare paths do all the work.
func runAggModelProperty(t *testing.T, seed int64, hashFn func(mring.Tuple) uint64) {
	rng := rand.New(rand.NewSource(seed))
	schema := mring.Schema{"g", "a", "v"}
	for round := 0; round < 40; round++ {
		env := NewEnv()
		rel := env.Define("R", schema)
		for i := 0; i < rng.Intn(200); i++ {
			rel.Add(randomAggTuple(rng), float64(rng.Intn(9)-4))
		}
		// Random group-by subset (possibly empty: scalar aggregate).
		var gb []string
		var pos []int
		for i, col := range schema {
			if rng.Intn(2) == 0 {
				gb = append(gb, col)
				pos = append(pos, i)
			}
		}
		ctx := NewCtx(env)
		ctx.groupHash = hashFn
		got := ctx.Materialize(expr.Sum(gb, expr.Base("R", schema...)))

		ref := newRefAggregator()
		rel.Foreach(func(tp mring.Tuple, m float64) {
			ref.add(tp.Project(pos), m)
		})
		if got.Len() != len(ref.vals) {
			t.Fatalf("seed %d round %d gb=%v: %d groups, reference has %d\n got: %v",
				seed, round, gb, got.Len(), len(ref.vals), got)
		}
		for k, want := range ref.vals {
			if g := got.Get(ref.keys[k]); g != want {
				t.Fatalf("seed %d round %d gb=%v: group %v = %g, reference %g",
					seed, round, gb, ref.keys[k], g, want)
			}
		}
	}
}

func TestAggMatchesStringKeyedReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runAggModelProperty(t, seed, nil)
		})
	}
}

// TestAggMatchesReferenceUnderForcedCollisions maps every group key into
// two hash buckets, so nearly all groups share collision chains and the
// KeyEqual compare path resolves every probe.
func TestAggMatchesReferenceUnderForcedCollisions(t *testing.T) {
	collide := func(tp mring.Tuple) uint64 { return tp.Hash() & 1 }
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runAggModelProperty(t, seed, collide)
		})
	}
}

// TestAggCancelsZeroGroupsInTable is the regression test for in-table
// cancellation: a group whose contributions cancel within one evaluation
// is removed inside the group table, so it never reaches a downstream
// view — and, unlike the old emit-time Eps skip, a group whose true value
// is tiny but never crossed zero by accumulation is preserved, exactly as
// the relation data model (and a from-scratch rebuild) would keep it.
func TestAggCancelsZeroGroupsInTable(t *testing.T) {
	schema := mring.Schema{"g", "x"}
	env := NewEnv()
	r := env.Define("R", schema)
	// Group 1 cancels (+2 then -2 from distinct tuples), group 2 cancels
	// and is re-contributed (+5, -5, +3), group 3 is a fresh tiny value
	// below Eps that never crossed zero.
	r.Add(tup(1, 10), 2)
	r.Add(tup(1, 20), -2)
	r.Add(tup(2, 10), 5)
	r.Add(tup(2, 20), -5)
	r.Add(tup(2, 30), 3)
	r.Add(tup(3, 10), 1e-12)

	target := mring.NewRelation(mring.Schema{"g"})
	ctx := NewCtx(env)
	ctx.Apply(target, OpAdd, expr.Sum([]string{"g"}, expr.Base("R", schema...)))

	if got := target.Get(tup(1)); got != 0 {
		t.Errorf("canceled group reached the view: g=1 -> %g", got)
	}
	if got := target.Get(tup(2)); got != 3 {
		t.Errorf("cancel-then-readd group: g=2 -> %g, want 3", got)
	}
	if got := target.Get(tup(3)); got != 1e-12 {
		t.Errorf("tiny fresh group must survive (rebuild keeps it): g=3 -> %g, want 1e-12", got)
	}
	if target.Len() != 2 {
		t.Errorf("view holds %d groups, want 2: %v", target.Len(), target)
	}

	// The maintained view must agree with a fresh rebuild of the same
	// aggregate — the oracle the old emit-time skip diverged from.
	oracle := NewCtx(env).Materialize(expr.Sum([]string{"g"}, expr.Base("R", schema...)))
	if !target.Equal(oracle) {
		t.Errorf("view %v diverges from rebuild oracle %v", target, oracle)
	}
}

// TestAggGroupTableStatsAndEmitOrder pins the emission contract: live
// groups emit in first-insertion order and count one Emit each.
func TestAggGroupTableStatsAndEmitOrder(t *testing.T) {
	schema := mring.Schema{"g"}
	env := NewEnv()
	r := env.Define("R", schema)
	r.Add(tup(7), 1)
	r.Add(tup(8), 1)
	r.Add(tup(9), 1)
	ctx := NewCtx(env)
	before := ctx.Stats.Emits
	out := ctx.Materialize(expr.Sum([]string{"g"}, expr.Base("R", schema...)))
	if out.Len() != 3 {
		t.Fatalf("got %d groups, want 3", out.Len())
	}
	// 3 scan emits from the body plus 3 group emits.
	if got := ctx.Stats.Emits - before; got != 6 {
		t.Errorf("Emits = %d, want 6", got)
	}
}
