package eval

import (
	"math"
	"sync"

	"repro/internal/expr"
	"repro/internal/mring"
	"repro/internal/pool"
)

// This file routes covered aggregate statements to the vectorized
// columnar kernels of internal/pool instead of the row-wise interpreter.
// A statement is covered when its RHS is Sum_[gb](R(...) * f1 * ... * fk)
// where R is the single scanned relation (all columns distinct), every fi
// is either a static comparison (column vs literal, either order), a
// value term over R's columns and literals, or a constant, and every
// group-by column is one of R's columns. Everything else — joins, slices,
// correlated aggregates (non-empty outer binding), lifted assignments,
// Exists — falls back to the row path, as do covered statements whose
// relation has mixed-kind columns (no columnar mirror) or is too small to
// be worth vectorizing.
//
// On a mirror whose delta is empty (the steady state), the kernel result
// is bit-for-bit the row path's: rows fold in the same scan order, value
// factors multiply in the same factor order (comparisons contribute the
// exact factor 1), zero-valued factors drop rows exactly where the row
// path refuses to emit them, and group hashes come from the same
// streaming hash kernel.

// kernelMinRows is the scan size below which the row path wins; tiny
// batches (single-tuple mode) skip mirror construction entirely.
const kernelMinRows = 8

// kstep is one post-scan factor: exactly one of pred/val is set.
type kstep struct {
	pred *pool.Pred
	val  vnode
}

// kernelPlan is the lowered form of a covered aggregate.
type kernelPlan struct {
	env      string   // environment name of the scanned relation
	cols     []string // its column variables, in schema order
	steps    []kstep  // post-scan factors, in factor order
	groupPos []int    // group-by positions into cols
}

// kernelPlans memoizes plan analysis per aggregate node. Expression trees
// are immutable after construction, so the node pointer is a sound key; a
// stored nil records "not covered".
var kernelPlans sync.Map // *expr.Agg -> *kernelPlan

func planFor(a *expr.Agg) *kernelPlan {
	if v, ok := kernelPlans.Load(a); ok {
		p, _ := v.(*kernelPlan)
		return p
	}
	p := analyzeAgg(a)
	if v, loaded := kernelPlans.LoadOrStore(a, p); loaded {
		p, _ = v.(*kernelPlan)
	}
	return p
}

// KernelEligible reports whether rhs is a shape the vectorized columnar
// path covers, and the environment name of the relation it scans. The
// compiler records covered statements next to its access-path analysis.
func KernelEligible(rhs expr.Expr) (string, bool) {
	a, ok := rhs.(*expr.Agg)
	if !ok {
		return "", false
	}
	p := planFor(a)
	if p == nil {
		return "", false
	}
	return p.env, true
}

func analyzeAgg(a *expr.Agg) *kernelPlan {
	var factors []expr.Expr
	switch b := a.Body.(type) {
	case *expr.Rel:
		factors = []expr.Expr{b}
	case *expr.Mul:
		factors = b.Factors
	default:
		return nil
	}
	if len(factors) == 0 {
		return nil
	}
	r0, ok := factors[0].(*expr.Rel)
	if !ok {
		return nil
	}
	colPos := make(map[string]int, len(r0.Cols))
	for i, c := range r0.Cols {
		if _, dup := colPos[c]; dup {
			// A repeated column variable is a self-equality constraint the
			// row path implements through rebinding; not covered.
			return nil
		}
		colPos[c] = i
	}
	plan := &kernelPlan{env: RelEnvName(r0), cols: r0.Cols}
	for _, f := range factors[1:] {
		switch x := f.(type) {
		case *expr.Cmp:
			p := lowerPred(x, colPos)
			if p == nil {
				return nil
			}
			plan.steps = append(plan.steps, kstep{pred: p})
		case *expr.Val:
			v := lowerVal(x.E, colPos)
			if v == nil {
				return nil
			}
			plan.steps = append(plan.steps, kstep{val: v})
		case *expr.Const:
			plan.steps = append(plan.steps, kstep{val: vlit{f: x.V}})
		default:
			return nil
		}
	}
	plan.groupPos = make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, ok := colPos[g]
		if !ok {
			return nil
		}
		plan.groupPos[i] = j
	}
	return plan
}

// lowerPred turns a static comparison into a column predicate. A literal
// on the left flips the operator; EvalCmp defines <= as !(r<l) and >= as
// !(l<r), so the flipped form calls the exact same Less the row path does.
func lowerPred(c *expr.Cmp, colPos map[string]int) *pool.Pred {
	if vr, ok := c.L.(expr.VarRef); ok {
		if lit, ok := c.R.(expr.Lit); ok {
			if j, ok := colPos[vr.Name]; ok {
				return &pool.Pred{Col: j, Op: predOp(c.Op), Lit: lit.V}
			}
		}
	}
	if lit, ok := c.L.(expr.Lit); ok {
		if vr, ok := c.R.(expr.VarRef); ok {
			if j, ok := colPos[vr.Name]; ok {
				return &pool.Pred{Col: j, Op: predOp(flipCmp(c.Op)), Lit: lit.V}
			}
		}
	}
	return nil
}

func predOp(op expr.CmpOp) pool.PredOp {
	switch op {
	case expr.CEq:
		return pool.PEq
	case expr.CNe:
		return pool.PNe
	case expr.CLt:
		return pool.PLt
	case expr.CLe:
		return pool.PLe
	case expr.CGt:
		return pool.PGt
	default:
		return pool.PGe
	}
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.CLt:
		return expr.CGt
	case expr.CLe:
		return expr.CGe
	case expr.CGt:
		return expr.CLt
	case expr.CGe:
		return expr.CLe
	default: // equality is symmetric
		return op
	}
}

// vnode is a vectorized value expression producing one float64 per
// selected row, with the row path's Value.AsFloat/Arith semantics.
type vnode interface {
	eval(b *pool.ColBatch, sel pool.Sel) []float64
}

type vcol struct{ pos int }

func (v vcol) eval(b *pool.ColBatch, sel pool.Sel) []float64 {
	return b.FloatsSel(v.pos, sel, nil)
}

type vlit struct{ f float64 }

func (v vlit) eval(_ *pool.ColBatch, sel pool.Sel) []float64 {
	out := make([]float64, len(sel))
	for i := range out {
		out[i] = v.f
	}
	return out
}

type vbin struct {
	op   expr.VOp
	l, r vnode
}

func (v vbin) eval(b *pool.ColBatch, sel pool.Sel) []float64 {
	ls := v.l.eval(b, sel)
	rs := v.r.eval(b, sel)
	switch v.op {
	case expr.VAdd:
		for i := range ls {
			ls[i] += rs[i]
		}
	case expr.VSub:
		for i := range ls {
			ls[i] -= rs[i]
		}
	case expr.VMul:
		for i := range ls {
			ls[i] *= rs[i]
		}
	case expr.VDiv:
		for i := range ls {
			if rs[i] == 0 {
				ls[i] = 0
			} else {
				ls[i] /= rs[i]
			}
		}
	default: // VFloorDiv: Arith.EvalV's Int(int64(math.Floor(l/r))) as float
		for i := range ls {
			if rs[i] == 0 {
				ls[i] = 0
			} else {
				ls[i] = float64(int64(math.Floor(ls[i] / rs[i])))
			}
		}
	}
	return ls
}

func lowerVal(e expr.VExpr, colPos map[string]int) vnode {
	switch x := e.(type) {
	case expr.VarRef:
		if j, ok := colPos[x.Name]; ok {
			return vcol{pos: j}
		}
		return nil
	case *expr.VarRef:
		return lowerVal(*x, colPos)
	case expr.Lit:
		return vlit{f: x.V.AsFloat()}
	case *expr.Lit:
		return lowerVal(*x, colPos)
	case expr.Arith:
		l := lowerVal(x.L, colPos)
		if l == nil {
			return nil
		}
		r := lowerVal(x.R, colPos)
		if r == nil {
			return nil
		}
		return vbin{op: x.Op, l: l, r: r}
	case *expr.Arith:
		return lowerVal(*x, colPos)
	default:
		return nil
	}
}

// tryKernelAgg attempts the vectorized fold of a into gt, returning false
// when the statement shape, the runtime relation, or the context state is
// not covered — the caller then runs the row-wise path. It requires an
// empty outer binding (correlated aggregates rebind per outer row) and no
// tracer (the kernels never materialize per-row tuples to hash for it).
func (c *Ctx) tryKernelAgg(a *expr.Agg, b *Binding, gt *mring.GroupTable) bool {
	if c.DisableKernels || c.Tracer != nil || len(b.vals) != 0 {
		return false
	}
	plan := planFor(a)
	if plan == nil {
		return false
	}
	rel := c.Env.Rel(plan.env)
	if rel == nil || rel.Len() < kernelMinRows || len(rel.Schema()) != len(plan.cols) {
		return false
	}
	ov := pool.MirrorOf(rel)
	if ov == nil {
		return false
	}
	base, delta, ok := ov.Segments()
	if !ok {
		return false
	}
	c.foldSegment(plan, base, gt)
	if delta != nil {
		c.foldSegment(plan, delta, gt)
	}
	c.KernelFolds++
	return true
}

// foldSegment runs the kernel pipeline over one columnar segment:
// predicates refine the selection vector in factor order, value factors
// multiply into the row weights (dropping rows whose factor value is
// exactly zero, as the row path does), then the surviving rows hash and
// fold into the group table in row order.
func (c *Ctx) foldSegment(plan *kernelPlan, batch *pool.ColBatch, gt *mring.GroupTable) {
	n := batch.Len()
	c.Stats.Scans += int64(n)
	c.Stats.Emits += int64(n)
	sel := pool.NewSel(n)
	for _, st := range plan.steps {
		if st.pred == nil {
			continue
		}
		sel = batch.FilterPred(*st.pred, sel)
		c.Stats.Emits += int64(len(sel))
		if len(sel) == 0 {
			return
		}
	}
	ms := batch.MultsSel(sel, nil)
	for _, st := range plan.steps {
		if st.val == nil {
			continue
		}
		if lit, ok := st.val.(vlit); ok {
			if lit.f == 0 {
				return
			}
			for k := range ms {
				ms[k] *= lit.f
			}
			c.Stats.Emits += int64(len(sel))
			continue
		}
		vec := st.val.eval(batch, sel)
		out := 0
		for k := range ms {
			if v := vec[k]; v != 0 {
				sel[out] = sel[k]
				ms[out] = ms[k] * v
				out++
			}
		}
		sel, ms = sel[:out], ms[:out]
		c.Stats.Emits += int64(out)
		if out == 0 {
			return
		}
	}
	hs := batch.HashSel(plan.groupPos, sel)
	batch.FoldSel(gt, plan.groupPos, sel, hs, ms)
}
