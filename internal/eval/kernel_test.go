package eval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/mring"
)

// The kernel dispatch tests pin the vectorized columnar path to the
// row-wise interpreter bit for bit: the same statement folded with
// kernels enabled and disabled must produce identical group relations —
// same groups, same first-insertion order, same float bits — across
// random covered statements over adversarial data (NaN floats, integers
// beyond 2^53, zero constants, division by zero), with and without
// forced group-hash collisions. Uncovered shapes and ineligible contexts
// must fall back without firing the kernel counter.

var kernelSchema = mring.Schema{"d", "q", "s"}

// fillKernelRel populates R with fixed-kind columns (int, float, string)
// so a lossless columnar mirror exists.
func fillKernelRel(rng *rand.Rand, rel *mring.Relation, n int) {
	for i := 0; i < n; i++ {
		var d int64
		if rng.Intn(8) == 0 {
			d = (int64(1) << 53) + int64(rng.Intn(3))
		} else {
			d = int64(rng.Intn(6))
		}
		var q float64
		switch rng.Intn(6) {
		case 0:
			q = math.NaN()
		case 1:
			q = 0
		default:
			q = float64(rng.Intn(9))/4 - 1
		}
		s := fmt.Sprintf("s%d", rng.Intn(3))
		rel.Add(mring.Tuple{mring.Int(d), mring.Float(q), mring.Str(s)},
			float64(rng.Intn(7)-3))
	}
}

func randomKernelLit(rng *rand.Rand) expr.VExpr {
	switch rng.Intn(5) {
	case 0:
		return expr.LitI(int64(rng.Intn(6)))
	case 1:
		return expr.LitF(math.NaN())
	case 2:
		return expr.LitF(float64(rng.Intn(9))/4 - 1)
	case 3:
		return expr.LitS(fmt.Sprintf("s%d", rng.Intn(3)))
	default:
		return expr.LitI((int64(1) << 53) + 1)
	}
}

func randomKernelVal(rng *rand.Rand, depth int) expr.VExpr {
	if depth > 0 && rng.Intn(2) == 0 {
		l := randomKernelVal(rng, depth-1)
		r := randomKernelVal(rng, depth-1)
		switch rng.Intn(5) {
		case 0:
			return expr.AddV(l, r)
		case 1:
			return expr.SubV(l, r)
		case 2:
			return expr.MulV(l, r)
		case 3:
			return expr.DivV(l, r) // divisor may be zero
		default:
			return expr.FloorDivV(l, r)
		}
	}
	switch rng.Intn(4) {
	case 0:
		return expr.V("d")
	case 1:
		return expr.V("q")
	case 2:
		return expr.V("s") // string column: AsFloat parse semantics
	default:
		return randomKernelLit(rng)
	}
}

// randomCoveredStmt builds Sum_[gb](R * f1 * ... * fk) from covered
// factor shapes only: static comparisons (both operand orders), value
// terms, and constants.
func randomCoveredStmt(rng *rand.Rand) expr.Expr {
	factors := []expr.Expr{expr.Base("R", kernelSchema...)}
	for i := rng.Intn(4); i > 0; i-- {
		switch rng.Intn(3) {
		case 0:
			op := expr.CmpOp(rng.Intn(6))
			col := expr.V(kernelSchema[rng.Intn(3)])
			lit := randomKernelLit(rng)
			if rng.Intn(2) == 0 {
				factors = append(factors, expr.CmpE(op, col, lit))
			} else {
				factors = append(factors, expr.CmpE(op, lit, col))
			}
		case 1:
			factors = append(factors, expr.ValE(randomKernelVal(rng, 2)))
		default:
			consts := []float64{0, 1, -1, 2.5, 0.25}
			factors = append(factors, &expr.Const{V: consts[rng.Intn(len(consts))]})
		}
	}
	var gb []string
	for _, c := range kernelSchema {
		if rng.Intn(2) == 0 {
			gb = append(gb, c)
		}
	}
	return expr.Sum(gb, expr.Join(factors...))
}

// foldBoth folds stmt into fresh targets through the kernel and row
// paths and requires bitwise-identical results, returning the kernel
// context for dispatch assertions.
func foldBoth(t *testing.T, env *Env, stmt expr.Expr, op AssignOp, hashFn func(mring.Tuple) uint64, label string) *Ctx {
	t.Helper()
	schema := stmt.Schema()
	kT := mring.NewRelation(schema)
	rT := mring.NewRelation(schema)
	kCtx, rCtx := NewCtx(env), NewCtx(env)
	kCtx.groupHash, rCtx.groupHash = hashFn, hashFn
	rCtx.DisableKernels = true
	kCtx.FoldStmt(kT, op, stmt)
	rCtx.FoldStmt(rT, op, stmt)

	if kCtx.KernelFolds == 0 && rCtx.KernelFolds != 0 {
		t.Fatalf("%s: DisableKernels did not disable the kernel path", label)
	}
	if kT.Len() != rT.Len() {
		t.Fatalf("%s: kernel path %d groups, row path %d\n kernel: %v\n row:    %v",
			label, kT.Len(), rT.Len(), kT, rT)
	}
	// Same groups, same accumulated bits, same first-insertion order.
	type ent struct {
		t mring.Tuple
		m float64
	}
	var kOrder, rOrder []ent
	kT.Foreach(func(tp mring.Tuple, m float64) { kOrder = append(kOrder, ent{tp.Clone(), m}) })
	rT.Foreach(func(tp mring.Tuple, m float64) { rOrder = append(rOrder, ent{tp.Clone(), m}) })
	for i := range rOrder {
		if !kOrder[i].t.KeyEqual(rOrder[i].t) ||
			math.Float64bits(kOrder[i].m) != math.Float64bits(rOrder[i].m) {
			t.Fatalf("%s: position %d diverges: kernel %v=%v, row %v=%v",
				label, i, kOrder[i].t, kOrder[i].m, rOrder[i].t, rOrder[i].m)
		}
	}
	return kCtx
}

func runKernelParity(t *testing.T, seed int64, hashFn func(mring.Tuple) uint64) {
	rng := rand.New(rand.NewSource(seed))
	fired, eligible := int64(0), int64(0)
	for round := 0; round < 120; round++ {
		env := NewEnv()
		rel := env.Define("R", kernelSchema)
		fillKernelRel(rng, rel, 8+rng.Intn(50))
		if rel.Len() >= kernelMinRows { // cancellation can shrink small fills
			eligible++
		}
		stmt := randomCoveredStmt(rng)
		op := OpAdd
		if rng.Intn(3) == 0 {
			op = OpSet
		}
		kCtx := foldBoth(t, env, stmt, op, hashFn, fmt.Sprintf("seed %d round %d %v", seed, round, stmt))
		fired += kCtx.KernelFolds
	}
	// Covered statements over mirrorable relations of >= kernelMinRows
	// rows must actually dispatch to the kernel (not silently fall back).
	if fired != eligible {
		t.Fatalf("kernel fired on %d statements, %d were eligible", fired, eligible)
	}
}

func TestKernelMatchesRowPathBitwise(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runKernelParity(t, seed, nil)
		})
	}
}

func TestKernelMatchesRowPathUnderForcedCollisions(t *testing.T) {
	collide := func(tp mring.Tuple) uint64 { return tp.Hash() & 1 }
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runKernelParity(t, seed, collide)
		})
	}
}

// TestKernelFallbacks pins every documented reason not to dispatch: the
// result must still be correct and KernelFolds must stay zero.
func TestKernelFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stmt := expr.Sum([]string{"d"}, expr.Join(
		expr.Base("R", kernelSchema...),
		expr.CmpE(expr.CLt, expr.V("d"), expr.LitI(4)),
		expr.ValE(expr.V("q")),
	))

	t.Run("small-relation", func(t *testing.T) {
		env := NewEnv()
		fillKernelRel(rng, env.Define("R", kernelSchema), kernelMinRows-1)
		if c := foldBoth(t, env, stmt, OpAdd, nil, "small"); c.KernelFolds != 0 {
			t.Fatalf("kernel fired on a %d-row relation", kernelMinRows-1)
		}
	})

	t.Run("mixed-kind-column", func(t *testing.T) {
		env := NewEnv()
		rel := env.Define("R", kernelSchema)
		fillKernelRel(rng, rel, 20)
		rel.Add(mring.Tuple{mring.Str("not-an-int"), mring.Float(1), mring.Str("x")}, 1)
		if c := foldBoth(t, env, stmt, OpAdd, nil, "mixed"); c.KernelFolds != 0 {
			t.Fatalf("kernel fired on a mixed-kind relation")
		}
	})

	t.Run("tracer", func(t *testing.T) {
		env := NewEnv()
		fillKernelRel(rng, env.Define("R", kernelSchema), 20)
		target := mring.NewRelation(mring.Schema{"d"})
		ctx := NewCtx(env)
		ctx.Tracer = func(string, uint64) {}
		ctx.FoldStmt(target, OpAdd, stmt)
		if ctx.KernelFolds != 0 {
			t.Fatalf("kernel fired under a tracer")
		}
	})

	t.Run("uncovered-shape", func(t *testing.T) {
		env := NewEnv()
		fillKernelRel(rng, env.Define("R", kernelSchema), 20)
		other := env.Define("S", mring.Schema{"d"})
		other.Add(mring.Tuple{mring.Int(1)}, 1)
		join := expr.Sum([]string{"d"}, expr.Join(
			expr.Base("R", kernelSchema...),
			expr.Base("S", "d"),
		))
		if c := foldBoth(t, env, join, OpAdd, nil, "join"); c.KernelFolds != 0 {
			t.Fatalf("kernel fired on a two-relation join")
		}
	})

	t.Run("repeated-column", func(t *testing.T) {
		if _, ok := KernelEligible(expr.Sum(nil, expr.Base("R", "d", "d"))); ok {
			t.Fatalf("repeated column variable reported eligible")
		}
	})
}

// TestKernelEligible pins the compiler-facing coverage check on the
// canonical shapes.
func TestKernelEligible(t *testing.T) {
	covered := expr.Sum([]string{"s"}, expr.Join(
		expr.Base("R", kernelSchema...),
		expr.CmpE(expr.CGe, expr.V("q"), expr.LitF(0.5)),
		expr.ValE(expr.MulV(expr.V("q"), expr.V("d"))),
	))
	if env, ok := KernelEligible(covered); !ok || env != "R" {
		t.Fatalf("covered statement reported (%q, %v)", env, ok)
	}
	if _, ok := KernelEligible(expr.Base("R", kernelSchema...)); ok {
		t.Fatalf("bare relation reported eligible")
	}
	// Group-by over a column the relation does not bind.
	if _, ok := KernelEligible(expr.Sum([]string{"z"}, expr.Base("R", kernelSchema...))); ok {
		t.Fatalf("foreign group-by reported eligible")
	}
}
