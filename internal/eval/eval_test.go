package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/mring"
)

func tup(vs ...any) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			t[i] = mring.Int(int64(x))
		case float64:
			t[i] = mring.Float(x)
		case string:
			t[i] = mring.Str(x)
		default:
			panic("bad test value")
		}
	}
	return t
}

// fill populates relation name in env with rows of (tuple, mult).
func fill(env *Env, name string, schema mring.Schema, rows ...struct {
	t mring.Tuple
	m float64
}) *mring.Relation {
	r := env.Define(name, schema)
	for _, row := range rows {
		r.Add(row.t, row.m)
	}
	return r
}

func row(m float64, vs ...any) struct {
	t mring.Tuple
	m float64
} {
	return struct {
		t mring.Tuple
		m float64
	}{tup(vs...), m}
}

func TestEvalRelForeach(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a", "b"}, row(2, 1, 10), row(3, 2, 20))
	ctx := NewCtx(env)
	got := ctx.Materialize(expr.Base("R", "a", "b"))
	if got.Get(tup(1, 10)) != 2 || got.Get(tup(2, 20)) != 3 {
		t.Fatalf("foreach wrong: %v", got)
	}
}

func TestEvalJoinAndAgg(t *testing.T) {
	// Example 2.1: Sum_[B](R(A,B) ⋈ S(B,C) ⋈ T(C,D))
	env := NewEnv()
	fill(env, "R", mring.Schema{"A", "B"}, row(1, 1, 10), row(1, 2, 10), row(1, 3, 20))
	fill(env, "S", mring.Schema{"B", "C"}, row(1, 10, 100), row(2, 20, 200))
	fill(env, "T", mring.Schema{"C", "D"}, row(1, 100, 7), row(1, 100, 8), row(1, 200, 9))
	q := expr.Sum([]string{"B"},
		expr.Join(expr.Base("R", "A", "B"), expr.Base("S", "B", "C"), expr.Base("T", "C", "D")))
	got := NewCtx(env).Materialize(q)
	// B=10: R(1,10)+R(2,10) each join S(10,100), T has two D rows -> mult 2*2=4
	if got.Get(tup(10)) != 4 {
		t.Errorf("B=10 mult = %g, want 4", got.Get(tup(10)))
	}
	// B=20: R(3,20) ⋈ S(20,200)×2 ⋈ T(200,9) -> 2
	if got.Get(tup(20)) != 2 {
		t.Errorf("B=20 mult = %g, want 2", got.Get(tup(20)))
	}
}

func TestEvalComparisonFilter(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a", "b"}, row(1, 1, 5), row(1, 2, 10), row(1, 3, 15))
	q := expr.Sum([]string{"a"},
		expr.Join(expr.Base("R", "a", "b"), expr.CmpE(expr.CGt, expr.V("b"), expr.LitI(7))))
	got := NewCtx(env).Materialize(q)
	if got.Len() != 2 || got.Get(tup(2)) != 1 || got.Get(tup(3)) != 1 {
		t.Fatalf("filter wrong: %v", got)
	}
}

func TestEvalGetAndSlice(t *testing.T) {
	// R(a) ⋈ S(a, b): per R-tuple, a is bound -> slice on S.
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 1), row(1, 2))
	fill(env, "S", mring.Schema{"a", "b"}, row(1, 1, 10), row(2, 1, 11), row(1, 2, 20))
	q := expr.Join(expr.Base("R", "a"), expr.Base("S", "a", "b"))
	ctx := NewCtx(env)
	got := ctx.Materialize(q)
	if got.Get(tup(1, 10)) != 1 || got.Get(tup(1, 11)) != 2 || got.Get(tup(2, 20)) != 1 {
		t.Fatalf("slice join wrong: %v", got)
	}
	if ctx.Stats.IndexOps != 1 {
		t.Fatalf("expected 1 ad-hoc index build, got %d", ctx.Stats.IndexOps)
	}
	// Full-key lookup: both columns bound -> get.
	q2 := expr.Join(expr.Base("S", "a", "b"), expr.Base("S", "a", "b"))
	got2 := NewCtx(env).Materialize(q2)
	if got2.Get(tup(1, 10)) != 1 || got2.Get(tup(1, 11)) != 4 || got2.Get(tup(2, 20)) != 1 {
		t.Fatalf("self join wrong: %v", got2)
	}
}

func TestEvalValueTerm(t *testing.T) {
	// SELECT a, b, SUM(a) ... : R(a,b) ⋈ [a]
	env := NewEnv()
	fill(env, "R", mring.Schema{"a", "b"}, row(2, 3, 1), row(1, 5, 2))
	q := expr.Sum([]string{"b"}, expr.Join(expr.Base("R", "a", "b"), expr.ValE(expr.V("a"))))
	got := NewCtx(env).Materialize(q)
	if got.Get(tup(1)) != 6 || got.Get(tup(2)) != 5 {
		t.Fatalf("value term wrong: %v", got)
	}
}

func TestEvalAssignValue(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 4))
	q := expr.Join(expr.Base("R", "a"), expr.LiftV("x", expr.MulV(expr.V("a"), expr.LitI(2))))
	got := NewCtx(env).Materialize(q)
	if got.Get(tup(4, 8)) != 1 {
		t.Fatalf("assign-value wrong: %v", got)
	}
}

func TestEvalNestedAggregate(t *testing.T) {
	// Example 3.1: COUNT(*) FROM R WHERE R.A < (SELECT COUNT(*) FROM S WHERE R.B = S.B)
	env := NewEnv()
	fill(env, "R", mring.Schema{"A", "B"}, row(1, 1, 7), row(1, 3, 7), row(1, 0, 9))
	fill(env, "S", mring.Schema{"B2", "C"}, row(1, 7, 1), row(1, 7, 2)) // two rows with B2=7
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2", "C"), expr.Eq(expr.V("B"), expr.V("B2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
	got := NewCtx(env).Materialize(q)
	// R(1,7): X=2, 1<2 ok. R(3,7): X=2, 3<2 no. R(0,9): X=0, 0<0 no.
	if got.Get(mring.Tuple{}) != 1 {
		t.Fatalf("nested agg count = %g, want 1", got.Get(mring.Tuple{}))
	}
}

func TestEvalExistsDistinct(t *testing.T) {
	// Example 3.2: SELECT DISTINCT A FROM R WHERE B > 3
	env := NewEnv()
	fill(env, "R", mring.Schema{"A", "B"}, row(5, 1, 4), row(2, 1, 9), row(1, 2, 1))
	q := expr.ExistsE(expr.Sum([]string{"A"},
		expr.Join(expr.Base("R", "A", "B"), expr.CmpE(expr.CGt, expr.V("B"), expr.LitI(3)))))
	got := NewCtx(env).Materialize(q)
	if got.Len() != 1 || got.Get(tup(1)) != 1 {
		t.Fatalf("distinct wrong: %v", got)
	}
}

// TestExistsScalarMatchesGrouped pins the Eps-semantics agreement
// between the two Exists shapes: a tiny never-canceled total (|v| < Eps
// but inserted fresh, which the group table preserves) must exist both
// when the aggregate is keyed by a group-by column and when it is
// scalar, and a total canceled by accumulation into (-Eps, Eps) must
// exist in neither.
func TestExistsScalarMatchesGrouped(t *testing.T) {
	env := NewEnv()
	r := mring.NewRelation(mring.Schema{"A"})
	r.Add(mring.Tuple{mring.Int(1)}, 1e-12)
	env.Bind("R", r)

	grouped := NewCtx(env).Materialize(
		expr.ExistsE(expr.Sum([]string{"A"}, expr.Base("R", "A"))))
	scalar := NewCtx(env).Materialize(
		expr.ExistsE(expr.Sum(nil, expr.Base("R", "A"))))
	if grouped.Len() != 1 {
		t.Fatalf("grouped Exists over tiny total: %d rows, want 1", grouped.Len())
	}
	if scalar.Len() != 1 {
		t.Fatalf("scalar Exists over tiny total: %d rows, want 1 (must match grouped)", scalar.Len())
	}

	// Scalar contributions that cancel inside the Exists accumulation —
	// two emissions from distinct relations whose sum lands in
	// (-Eps, Eps) — leave a float residue under plain summation (1e-15
	// here) but must cancel to nonexistence under the shared in-table
	// band semantics.
	pos := mring.NewRelation(mring.Schema{"A"})
	pos.Add(mring.Tuple{mring.Int(1)}, 1.0)
	env.Bind("P", pos)
	neg := mring.NewRelation(mring.Schema{"A"})
	neg.Add(mring.Tuple{mring.Int(1)}, -1.0+1e-15)
	env.Bind("N", neg)
	pair := NewCtx(env).Materialize(expr.ExistsE(expr.Add(
		expr.Sum(nil, expr.Base("P", "A")),
		expr.Sum(nil, expr.Base("N", "A")))))
	if pair.Len() != 0 {
		t.Fatalf("scalar Exists over band-canceled pair: %d rows, want 0", pair.Len())
	}
}

func TestEvalExistentialQuantification(t *testing.T) {
	// EXISTS variant: (X := Qn) ⋈ (X != 0)
	env := NewEnv()
	fill(env, "R", mring.Schema{"A", "B"}, row(1, 1, 7), row(1, 2, 8))
	fill(env, "S", mring.Schema{"B2"}, row(3, 7))
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2"), expr.Eq(expr.V("B"), expr.V("B2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CNe, expr.V("X"), expr.LitI(0))))
	got := NewCtx(env).Materialize(q)
	if got.Get(mring.Tuple{}) != 1 {
		t.Fatalf("exists count = %g, want 1", got.Get(mring.Tuple{}))
	}
}

func TestEvalPlusStreamsThroughJoin(t *testing.T) {
	// (R + R) ⋈ S must equal 2*(R ⋈ S).
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 1))
	fill(env, "S", mring.Schema{"a", "b"}, row(1, 1, 2))
	q := expr.Join(expr.Add(expr.Base("R", "a"), expr.Base("R", "a")), expr.Base("S", "a", "b"))
	got := NewCtx(env).Materialize(q)
	if got.Get(tup(1, 2)) != 2 {
		t.Fatalf("streamed union wrong: %v", got)
	}
}

func TestEvalNegation(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(2, 1))
	q := expr.Add(expr.Base("R", "a"), expr.Neg(expr.Base("R", "a")))
	got := NewCtx(env).Materialize(q)
	if got.Len() != 0 {
		t.Fatalf("R - R should be empty: %v", got)
	}
}

func TestApplyOps(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(2, 1))
	target := mring.NewRelation(mring.Schema{"a"})
	ctx := NewCtx(env)
	ctx.Apply(target, OpAdd, expr.Base("R", "a"))
	ctx.Apply(target, OpAdd, expr.Base("R", "a"))
	if target.Get(tup(1)) != 4 {
		t.Fatalf("OpAdd wrong: %v", target)
	}
	ctx.Apply(target, OpSet, expr.Base("R", "a"))
	if target.Get(tup(1)) != 2 {
		t.Fatalf("OpSet wrong: %v", target)
	}
}

func TestAggRestoresBindings(t *testing.T) {
	// Correlated aggregate inside a join must not leak bindings.
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 1), row(1, 2))
	fill(env, "S", mring.Schema{"a", "b"}, row(1, 1, 5), row(1, 2, 6))
	q := expr.Sum([]string{"a"},
		expr.Join(expr.Base("R", "a"), expr.LiftQ("X",
			expr.Sum(nil, expr.Base("S", "a", "b")))))
	got := NewCtx(env).Materialize(q)
	// For each R row the nested Q counts S rows with matching a (correlated): 1 each.
	if got.Get(tup(1)) != 1 || got.Get(tup(2)) != 1 {
		t.Fatalf("correlated agg wrong: %v", got)
	}
}

func TestScalarLiftEmptyInnerIsZero(t *testing.T) {
	// COUNT over empty correlated set must lift X := 0, not filter the row.
	env := NewEnv()
	fill(env, "R", mring.Schema{"A"}, row(1, 5))
	env.Define("S", mring.Schema{"A2"})
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "A2"), expr.Eq(expr.V("A"), expr.V("A2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CGe, expr.V("A"), expr.V("X"))))
	got := NewCtx(env).Materialize(q)
	if got.Get(mring.Tuple{}) != 1 {
		t.Fatalf("empty nested agg should bind 0; got %v", got)
	}
}

// Property: for random flat join-aggregate queries, evaluation distributes
// over bag union of one input: Q(R1 + R2) = Q(R1) + Q(R2) for linear Q.
func TestQuickLinearity(t *testing.T) {
	build := func(seed int64) (*mring.Relation, *mring.Relation, *mring.Relation) {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *mring.Relation {
			r := mring.NewRelation(mring.Schema{"a", "b"})
			for i := 0; i < rng.Intn(20); i++ {
				r.Add(tup(rng.Intn(4), rng.Intn(4)), float64(rng.Intn(5)-2))
			}
			return r
		}
		s := mring.NewRelation(mring.Schema{"b", "c"})
		for i := 0; i < 10; i++ {
			s.Add(tup(rng.Intn(4), rng.Intn(4)), float64(1+rng.Intn(3)))
		}
		return mk(), mk(), s
	}
	q := expr.Sum([]string{"b"}, expr.Join(expr.Base("R", "a", "b"), expr.Base("S", "b", "c")))
	prop := func(seed int64) bool {
		r1, r2, s := build(seed)
		run := func(r *mring.Relation) *mring.Relation {
			env := NewEnv()
			env.Bind("R", r)
			env.Bind("S", s)
			return NewCtx(env).Materialize(q)
		}
		sum := r1.Clone()
		sum.Merge(r2)
		lhs := run(sum)
		rhs := run(r1)
		rhs.Merge(run(r2))
		return lhs.EqualApprox(rhs, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulation(t *testing.T) {
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 1), row(1, 2))
	ctx := NewCtx(env)
	ctx.Materialize(expr.Base("R", "a"))
	if ctx.Stats.Scans != 2 || ctx.Stats.Emits != 2 {
		t.Fatalf("stats wrong: %+v", ctx.Stats)
	}
	var agg Stats
	agg.Add(ctx.Stats)
	agg.Add(ctx.Stats)
	if agg.Scans != 4 {
		t.Fatalf("Stats.Add wrong: %+v", agg)
	}
}

func TestEvalSliceIndexTracksMutations(t *testing.T) {
	// Slice indexes are owned by the relations and maintained
	// incrementally, so re-evaluating after a mutation sees fresh contents
	// with no invalidation step.
	env := NewEnv()
	r := fill(env, "R", mring.Schema{"a"}, row(1, 1))
	fill(env, "S", mring.Schema{"a", "b"}, row(1, 1, 10))
	ctx := NewCtx(env)
	q := expr.Join(expr.Base("R", "a"), expr.Base("S", "a", "b"))
	if got := ctx.Materialize(q); got.Len() != 1 {
		t.Fatalf("first eval wrong: %v", got)
	}
	if ctx.Stats.IndexOps != 1 {
		t.Fatalf("expected one index build, stats: %+v", ctx.Stats)
	}
	env.Rel("S").Add(tup(1, 11), 1)
	env.Rel("S").Add(tup(2, 12), 1)
	r.Add(tup(2), 1)
	got := ctx.Materialize(q)
	if got.Len() != 3 {
		t.Fatalf("post-mutation eval wrong: %v", got)
	}
	if ctx.Stats.IndexOps != 1 {
		t.Fatalf("index must not be rebuilt, stats: %+v", ctx.Stats)
	}
	env.Rel("S").Add(tup(1, 10), -1) // delete: index must drop the tuple
	if got := ctx.Materialize(q); got.Len() != 2 {
		t.Fatalf("post-delete eval wrong: %v", got)
	}
}

func TestEvalDeltaNameResolution(t *testing.T) {
	// Base R and ΔR coexist under distinct environment names.
	env := NewEnv()
	fill(env, "R", mring.Schema{"a"}, row(1, 1))
	fill(env, DeltaName("R"), mring.Schema{"a"}, row(1, 2))
	ctx := NewCtx(env)
	base := ctx.Materialize(expr.Base("R", "a"))
	delta := ctx.Materialize(expr.Delta("R", "a"))
	if base.Get(tup(1)) != 1 || delta.Get(tup(2)) != 1 || delta.Len() != 1 {
		t.Fatalf("delta name resolution broken: base=%v delta=%v", base, delta)
	}
}

func TestEnvNamesAndMustRel(t *testing.T) {
	env := NewEnv()
	env.Define("A", mring.Schema{"x"})
	env.Define("B", mring.Schema{"y"})
	if len(env.Names()) != 2 {
		t.Fatalf("Names = %v", env.Names())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRel should panic on missing relation")
		}
	}()
	env.MustRel("missing")
}

func TestBindingTuplePanicsOnUnbound(t *testing.T) {
	b := NewBinding()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound variable")
		}
	}()
	b.Tuple(mring.Schema{"nope"})
}
