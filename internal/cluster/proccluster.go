package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	inet "repro/internal/net"
)

// ProcCluster is the process cluster: the driver side of a deployment
// whose workers live in other processes behind a framed transport. It
// mirrors the simulated Cluster operation for operation — same driver
// state, same schema registration sequence, same worker-index merge
// order, and worker mutations replayed over the wire in the exact order
// the simulator applies them in-process — so results are bitwise-equal
// to the simulator at any worker count.
//
// Failure semantics: the first transport or worker error poisons the
// cluster (worker state may have partially advanced and cannot be
// trusted); every later operation returns the poisoning error, and
// ViewContents serves the last contents observed before the failure, so
// a mid-transaction disconnect leaves results at the pre-transaction
// state.
type ProcCluster struct {
	conns   []inet.Conn
	driver  *node
	schemas map[string]mring.Schema
	parts   dist.PartInfo
	watch   map[string]*mring.Relation
	stats   eval.Stats

	workerCompute []time.Duration
	workerStages  []int

	// err is the poison: set by the first failed operation, returned by
	// every operation after it.
	err error
	// committed caches each view's last healthily-observed contents, the
	// read path once the cluster is poisoned.
	committed map[string]*mring.Relation
}

// Connect dials the worker processes at addrs over tr and assigns each
// its index. The schemas map is shared with the caller and mutated by
// lazy registration, exactly like the simulated cluster's.
func Connect(tr inet.Transport, addrs []string, schemas map[string]mring.Schema, parts dist.PartInfo) (*ProcCluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	pc := &ProcCluster{
		driver:        newNode(),
		schemas:       schemas,
		parts:         parts,
		workerCompute: make([]time.Duration, len(addrs)),
		workerStages:  make([]int, len(addrs)),
		committed:     make(map[string]*mring.Relation),
	}
	for _, a := range addrs {
		c, err := tr.Dial(a)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("cluster: dial worker %s: %w", a, err)
		}
		pc.conns = append(pc.conns, c)
	}
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opSetup, &setupReq{Index: i, Workers: len(pc.conns)}, &setupResp{})
	}); err != nil {
		pc.Close()
		return nil, fmt.Errorf("cluster: worker setup: %w", err)
	}
	return pc, nil
}

// Workers returns the worker count.
func (pc *ProcCluster) Workers() int { return len(pc.conns) }

// EvalStats returns the evaluation statistics accumulated across the
// driver and (as reported per stage) all workers.
func (pc *ProcCluster) EvalStats() eval.Stats { return pc.stats }

// WorkerTimings returns each worker's accumulated distributed-stage
// compute, measured on the worker itself.
func (pc *ProcCluster) WorkerTimings() []WorkerTiming {
	out := make([]WorkerTiming, len(pc.conns))
	for i := range out {
		out[i] = WorkerTiming{Worker: i, Compute: pc.workerCompute[i], Stages: pc.workerStages[i]}
	}
	return out
}

// ForEachRelation visits the driver-resident fragments only (names
// sorted): worker fragments live in other processes, so per-fragment
// sweeps (index admission) cover just the driver side of a process
// cluster. DESIGN.md §11 records the limitation.
func (pc *ProcCluster) ForEachRelation(f func(name string, r *mring.Relation)) {
	names := make([]string, 0, len(pc.driver.rels))
	for name := range pc.driver.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f(name, pc.driver.rels[name])
	}
}

// Close severs every worker connection and poisons the cluster. Safe to
// call more than once.
func (pc *ProcCluster) Close() error {
	var first error
	for _, c := range pc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if pc.err == nil {
		pc.err = errors.New("cluster: process cluster closed")
	}
	return first
}

// CheckpointState snapshots the whole process cluster's state for a
// durability checkpoint: the driver's fragments locally, every worker's
// over opSnapshot, each with bucket-table sizes for layout-exact restore.
func (pc *ProcCluster) CheckpointState() (*Checkpoint, error) {
	if pc.err != nil {
		return nil, pc.err
	}
	cp := &Checkpoint{Driver: map[string]Frag{}}
	for name, r := range pc.driver.rels {
		if !worthSnapshot(r) {
			continue
		}
		f := snapFrag(r)
		cp.Driver[name] = f
		cp.Bytes += int64(len(f.Payload))
	}
	resps := make([]snapshotResp, len(pc.conns))
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opSnapshot, &snapshotReq{}, &resps[i])
	}); err != nil {
		return nil, pc.fail(err)
	}
	cp.Workers = make([]map[string]Frag, len(pc.conns))
	for i := range resps {
		cp.Workers[i] = resps[i].Frags
		if cp.Workers[i] == nil {
			cp.Workers[i] = map[string]Frag{}
		}
		for _, f := range cp.Workers[i] {
			cp.Bytes += int64(len(f.Payload))
		}
	}
	cp.Parts = pc.parts.Clone()
	return cp, nil
}

// RestoreState replaces the whole process cluster's state with a
// checkpoint: the driver's fragments rebuild locally and each worker
// re-warms from its recovered fragments over opRestore. The worker count
// must match the snapshot (recovery restarts the same deployment).
func (pc *ProcCluster) RestoreState(cp *Checkpoint) error {
	if pc.err != nil {
		return pc.err
	}
	if len(cp.Workers) != len(pc.conns) {
		return fmt.Errorf("cluster: checkpoint has %d workers, cluster has %d", len(cp.Workers), len(pc.conns))
	}
	// Validate and rebuild the driver side fully before touching state.
	driver := make(map[string]*mring.Relation, len(cp.Driver))
	for name, f := range cp.Driver {
		r, err := restoreFrag(name, f)
		if err != nil {
			return err
		}
		driver[name] = r
	}
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opRestore, &restoreReq{Frags: cp.Workers[i]}, &restoreResp{})
	}); err != nil {
		return pc.fail(err)
	}
	pc.driver.rels = driver
	for name, r := range driver {
		pc.schemas[name] = r.Schema()
	}
	if cp.Parts != nil {
		pc.parts = cp.Parts
	}
	pc.committed = map[string]*mring.Relation{}
	return nil
}

// fail poisons the cluster with the first error and returns the poison.
func (pc *ProcCluster) fail(err error) error {
	if pc.err == nil {
		pc.err = fmt.Errorf("cluster: process cluster failed, results frozen at last commit: %w", err)
	}
	return pc.err
}

// fanout runs f for every worker concurrently, waits for all, and
// returns the lowest-index error. Responses land in caller-provided
// per-index slots, so the caller then processes them in worker-index
// order — the merge-determinism invariant.
func (pc *ProcCluster) fanout(f func(i int, c inet.Conn) error) error {
	errs := make([]error, len(pc.conns))
	var wg sync.WaitGroup
	wg.Add(len(pc.conns))
	for i, c := range pc.conns {
		go func(i int, c inet.Conn) {
			defer wg.Done()
			errs[i] = f(i, c)
		}(i, c)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// WatchView, UnwatchView, TakeWatchDelta: identical capture surface to
// the simulated cluster (the accumulators live on the driver either way).

// WatchView starts capturing maintenance writes to the named view.
func (pc *ProcCluster) WatchView(name string) {
	s, ok := pc.schemas[name]
	if !ok {
		panic(fmt.Sprintf("cluster: cannot watch unknown view %q", name))
	}
	if pc.watch == nil {
		pc.watch = make(map[string]*mring.Relation, 1)
	}
	if pc.watch[name] == nil {
		pc.watch[name] = mring.NewRelation(s)
	}
}

// UnwatchView stops delta capture for one view.
func (pc *ProcCluster) UnwatchView(name string) {
	delete(pc.watch, name)
}

// TakeWatchDelta returns and resets the named view's accumulated delta.
func (pc *ProcCluster) TakeWatchDelta(name string) *mring.Relation {
	d := pc.watch[name]
	if d != nil {
		pc.watch[name] = mring.NewRelation(pc.schemas[name])
	}
	return d
}

// NoteDelta folds a committed per-batch delta into the cached contents
// of a view, keeping the poisoned-read fallback current without a full
// re-read per transaction.
func (pc *ProcCluster) NoteDelta(name string, delta *mring.Relation) {
	if pc.err != nil || delta == nil {
		return
	}
	if r := pc.committed[name]; r != nil {
		r.Merge(delta)
	}
}

func (pc *ProcCluster) watchDriverSide(name string) bool {
	loc, ok := pc.parts[name]
	return !ok || loc.Kind != dist.LDist
}

func (pc *ProcCluster) driverSinkFor(lhs string) *mring.Relation {
	d := pc.watch[lhs]
	if d == nil || !pc.watchDriverSide(lhs) {
		return nil
	}
	return d
}

func (pc *ProcCluster) captureReplace(name string, old, cur *mring.Relation) {
	d := pc.watch[name]
	d.Merge(cur)
	d.MergeScaled(old, -1)
}

// replayCapture folds one worker's replacement diff into the watched
// view's accumulator — the wire form of captureReplace, in the same
// order: current contents in, old contents out.
func (pc *ProcCluster) replayCapture(name string, r *installResp) error {
	d := pc.watch[name]
	if err := replayInto(d, r.Cur, 1); err != nil {
		return err
	}
	return replayInto(d, r.Old, -1)
}

// replayInto adds a payload's rows into dst in wire order, scaled.
func replayInto(dst *mring.Relation, payload []byte, scale float64) error {
	if len(payload) == 0 {
		return nil
	}
	p, err := inet.DecodePayload(payload)
	if err != nil {
		return err
	}
	p.Foreach(func(t mring.Tuple, m float64) { dst.Add(t, m*scale) })
	return nil
}

// WarmViews installs initial view contents by canonical location, like
// the simulated cluster: driver copy for local views, key-partitioned
// fragments for distributed views, a replica per worker plus the driver
// mirror for replicated views. Remote installs rebuild each fragment
// from its rows in Foreach order, which reproduces the exact relation
// layout the in-process cluster hands over by reference.
func (pc *ProcCluster) WarmViews(contents map[string]*mring.Relation) error {
	if pc.err != nil {
		return pc.err
	}
	for name, rel := range contents {
		if rel == nil {
			continue
		}
		schema := schemaOfIn(pc.schemas, name, rel.Schema())
		loc := pc.parts[name]
		switch {
		case loc.Kind == dist.LLocal:
			pc.driver.rels[name] = rel
		case loc.Kind == dist.LIndiff:
			pc.driver.rels[name] = rel
			payload := inet.EncodeRelationPlain(rel)
			if err := pc.fanout(func(i int, c inet.Conn) error {
				return call(c, opInstallDelta, &installDeltaReq{Name: name, Schema: schema, Payload: payload}, &installDeltaResp{})
			}); err != nil {
				return pc.fail(err)
			}
		case loc.Keyed():
			keyPos := make([]int, len(loc.Key))
			for i, k := range loc.Key {
				p := schema.Index(k)
				if p < 0 {
					return fmt.Errorf("cluster: warm load of %q: key column %q not in schema %v", name, k, schema)
				}
				keyPos[i] = p
			}
			frags := dist.SplitByKey(rel, keyPos, len(pc.conns))
			if err := pc.fanout(func(i int, c inet.Conn) error {
				return call(c, opInstallDelta, &installDeltaReq{Name: name, Schema: schema, Payload: inet.EncodeRelationPlain(frags[i])}, &installDeltaResp{})
			}); err != nil {
				return pc.fail(err)
			}
		default:
			return fmt.Errorf("cluster: cannot warm load view %q located %v", name, loc)
		}
	}
	return nil
}

// Run processes one driver-resident update batch (Fig. 5 shape).
func (pc *ProcCluster) Run(prog *dist.DistProgram, batch *mring.Relation) (Metrics, error) {
	if prog == nil {
		return Metrics{}, fmt.Errorf("cluster: nil distributed program (unknown relation?)")
	}
	if pc.err != nil {
		return Metrics{}, pc.err
	}
	dn := eval.DeltaName(prog.Relation)
	pc.driver.rels[dn] = batch
	pc.schemas[dn] = batch.Schema()
	return pc.runBlocks(prog)
}

// RunPartitionedBatch deals the batch round-robin across the workers and
// processes it. Each fragment ships in deal order and is rebuilt on its
// worker by the same insertion sequence the in-process cluster uses to
// build the fragment it hands over by reference.
func (pc *ProcCluster) RunPartitionedBatch(prog *dist.DistProgram, batch *mring.Relation) (Metrics, error) {
	if prog == nil {
		return Metrics{}, fmt.Errorf("cluster: nil distributed program (unknown relation?)")
	}
	if pc.err != nil {
		return Metrics{}, pc.err
	}
	dn := eval.DeltaName(prog.Relation)
	pc.schemas[dn] = batch.Schema()
	builders := make([]*inet.PayloadBuilder, len(pc.conns))
	for i := range builders {
		builders[i] = inet.NewPayloadBuilder(batch.Schema())
	}
	i := 0
	batch.Foreach(func(t mring.Tuple, m float64) {
		builders[i%len(builders)].Add(t, m)
		i++
	})
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opInstallDelta, &installDeltaReq{Name: dn, Schema: batch.Schema(), Payload: builders[i].Bytes()}, &installDeltaResp{})
	}); err != nil {
		return Metrics{}, pc.fail(err)
	}
	return pc.runBlocks(prog)
}

func (pc *ProcCluster) runBlocks(prog *dist.DistProgram) (Metrics, error) {
	var m Metrics
	m.Stages = prog.Stages()
	m.Jobs = prog.Jobs()
	for _, b := range prog.Blocks {
		if b.Mode == dist.LDist {
			if err := pc.runDistBlock(b, &m); err != nil {
				return m, pc.fail(err)
			}
			continue
		}
		if err := pc.runLocalBlock(b, &m); err != nil {
			// Any mid-batch failure poisons: installs may have landed on a
			// subset of workers, so remote state can no longer be trusted.
			return m, pc.fail(err)
		}
	}
	return m, nil
}

// runLocalBlock executes driver-side statements; transformer statements
// move real bytes. Metrics report measured wall time and real payload
// sizes (no virtual cost model — this is a real deployment).
func (pc *ProcCluster) runLocalBlock(b dist.Block, m *Metrics) error {
	prepareStmtsIn(pc.schemas, b.Stmts)
	rounds := 0
	var roundBytes, maxWorkerBytes int64
	start := time.Now()
	var st eval.Stats
	for _, s := range b.Stmts {
		if x, ok := s.RHS.(*dist.Xform); ok {
			bytes, maxPer, err := pc.applyXform(s.LHS, x)
			if err != nil {
				return err
			}
			rounds = 1
			roundBytes += bytes
			if maxPer > maxWorkerBytes {
				maxWorkerBytes = maxPer
			}
			continue
		}
		st.Add(runStmtOnNode(pc.driver, pc.schemas, s, pc.driverSinkFor(s.LHS)))
	}
	pc.stats.Add(st)
	elapsed := time.Since(start)
	m.Latency += elapsed
	m.ComputeMax += elapsed
	m.ComputeSum += elapsed
	if rounds > 0 {
		m.ShuffledBytes += roundBytes
		if maxWorkerBytes > m.MaxWorkerShuffleBytes {
			m.MaxWorkerShuffleBytes = maxWorkerBytes
		}
	}
	return nil
}

// runDistBlock ships one stage to every worker in parallel and merges
// the outcomes in worker-index order after all respond — the socket form
// of the simulator's goroutine fan-out and post-barrier merge.
func (pc *ProcCluster) runDistBlock(b dist.Block, m *Metrics) error {
	prepareStmtsIn(pc.schemas, b.Stmts)
	// Watched worker-maintained views this stage writes, sorted so the
	// wire shape is deterministic; per-name capture order is irrelevant
	// (distinct accumulators), per-worker order is index order below.
	var watchNames []string
	for name := range pc.watch {
		if pc.watchDriverSide(name) {
			continue
		}
		for _, s := range b.Stmts {
			if s.LHS == name {
				watchNames = append(watchNames, name)
				break
			}
		}
	}
	sort.Strings(watchNames)
	start := time.Now()
	req := &runBlockReq{Stmts: b.Stmts, Schemas: pc.schemas, Watch: watchNames}
	resps := make([]runBlockResp, len(pc.conns))
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opRunBlock, req, &resps[i])
	}); err != nil {
		return err
	}
	for _, name := range watchNames {
		dst := pc.watch[name]
		for i := range resps {
			if err := replayInto(dst, resps[i].Sinks[name], 1); err != nil {
				return err
			}
		}
	}
	var maxCompute, sumCompute time.Duration
	for i := range resps {
		pc.stats.Add(resps[i].Stats)
		d := time.Duration(resps[i].ComputeNs)
		pc.workerCompute[i] += d
		pc.workerStages[i]++
		sumCompute += d
		if d > maxCompute {
			maxCompute = d
		}
	}
	m.Latency += time.Since(start)
	m.ComputeMax += maxCompute
	m.ComputeSum += sumCompute
	return nil
}

// applyXform performs one transformer's data movement over the wire and
// returns (total bytes moved, max per-worker bytes).
func (pc *ProcCluster) applyXform(lhs string, x *dist.Xform) (int64, int64, error) {
	src, ok := x.Body.(*expr.Rel)
	if !ok {
		return 0, 0, fmt.Errorf("cluster: transformer body is not a view reference: %s", x)
	}
	srcName := eval.RelEnvName(src)
	srcSchema := schemaOfIn(pc.schemas, srcName, src.Cols)
	lhsSchema := schemaOfIn(pc.schemas, lhs, srcSchema)
	keyPos := make([]int, len(x.Key))
	for i, k := range x.Key {
		p := src.Cols.Index(k)
		if p < 0 {
			return 0, 0, fmt.Errorf("cluster: key column %q not in %s(%v)", k, srcName, src.Cols)
		}
		keyPos[i] = p
	}

	captureWorkers := pc.watch[lhs] != nil && !pc.watchDriverSide(lhs)
	var total, maxPer int64
	switch x.Kind {
	case dist.XScatter:
		srcRel := pc.driver.rel(srcName, srcSchema)
		if len(x.Key) == 0 {
			// Broadcast: encode once, every worker clears and installs the
			// same payload (columnar when the mirror allows, so the replica
			// lands columnar on the worker exactly as in-process).
			payload := inet.EncodePayload(srcRel, fragmentBatch(srcRel))
			if err := pc.fanout(func(i int, c inet.Conn) error {
				return call(c, opInstallScatter, &installScatterReq{Name: lhs, Schema: lhsSchema, Payload: payload, Broadcast: true}, &installResp{})
			}); err != nil {
				return 0, 0, err
			}
			sz := int64(len(payload))
			return sz * int64(len(pc.conns)), sz, nil
		}
		frags := dist.SplitByKey(srcRel, keyPos, len(pc.conns))
		payloads := make([][]byte, len(frags))
		for i, f := range frags {
			if f != nil {
				payloads[i] = inet.EncodePayload(f, fragmentBatch(f))
			}
		}
		resps := make([]installResp, len(pc.conns))
		if err := pc.fanout(func(i int, c inet.Conn) error {
			return call(c, opInstallScatter, &installScatterReq{Name: lhs, Schema: lhsSchema, Payload: payloads[i], Capture: captureWorkers}, &resps[i])
		}); err != nil {
			return 0, 0, err
		}
		for i := range payloads {
			sz := int64(len(payloads[i]))
			total += sz
			if sz > maxPer {
				maxPer = sz
			}
		}
		if captureWorkers {
			for i := range resps {
				if err := pc.replayCapture(lhs, &resps[i]); err != nil {
					return 0, 0, err
				}
			}
		}
		return total, maxPer, nil
	case dist.XRepart:
		// Exchange, two phases: every worker splits its fragment by key and
		// ships the pieces up; the driver routes them and every receiver
		// rebuilds its fragment from the senders in worker-index order.
		outs := make([]partitionOutResp, len(pc.conns))
		if err := pc.fanout(func(i int, c inet.Conn) error {
			return call(c, opPartitionOut, &partitionOutReq{Src: srcName, Schema: srcSchema, KeyPos: keyPos}, &outs[i])
		}); err != nil {
			return 0, 0, err
		}
		per := make([][][]byte, len(pc.conns)) // per[target][sender]
		for ti := range per {
			per[ti] = make([][]byte, len(pc.conns))
		}
		sent := make([]int64, len(pc.conns))
		for wi := range outs {
			if len(outs[wi].Frags) != len(pc.conns) {
				return 0, 0, fmt.Errorf("cluster: worker %d returned %d exchange fragments for %d workers", wi, len(outs[wi].Frags), len(pc.conns))
			}
			for ti, f := range outs[wi].Frags {
				per[ti][wi] = f
				if len(f) > 0 && ti != wi { // local data does not cross the network
					sz := int64(len(f))
					total += sz
					sent[wi] += sz
				}
			}
		}
		for _, s := range sent {
			if s > maxPer {
				maxPer = s
			}
		}
		resps := make([]installResp, len(pc.conns))
		if err := pc.fanout(func(i int, c inet.Conn) error {
			return call(c, opInstallRepart, &installRepartReq{Name: lhs, SrcSchema: srcSchema, LHSSchema: lhsSchema, Payloads: per[i], Capture: captureWorkers}, &resps[i])
		}); err != nil {
			return 0, 0, err
		}
		if captureWorkers {
			for i := range resps {
				if err := pc.replayCapture(lhs, &resps[i]); err != nil {
					return 0, 0, err
				}
			}
		}
		return total, maxPer, nil
	default: // Gather
		// Fetch every worker's pre-aggregated fragment and merge them into
		// one group table strictly in worker-index order; the stored row
		// hashes equal the recomputed ones, so AddPrehashed replays the
		// simulator's MergeRelation float additions exactly.
		resps := make([]fetchResp, len(pc.conns))
		if err := pc.fanout(func(i int, c inet.Conn) error {
			return call(c, opFetch, &fetchReq{Name: srcName, Schema: srcSchema}, &resps[i])
		}); err != nil {
			return 0, 0, err
		}
		gt := mring.NewGroupTable(srcSchema)
		for i := range resps {
			if !resps[i].Present || len(resps[i].Payload) == 0 {
				continue
			}
			p, err := inet.DecodePayload(resps[i].Payload)
			if err != nil {
				return 0, 0, err
			}
			sz := int64(len(resps[i].Payload))
			total += sz
			if sz > maxPer {
				maxPer = sz
			}
			p.Foreach(func(t mring.Tuple, m float64) { gt.AddPrehashed(t.Hash(), t, m) })
		}
		dst := pc.driver.rel(lhs, lhsSchema)
		var old *mring.Relation
		if pc.watch[lhs] != nil && pc.watchDriverSide(lhs) {
			old = dst.Clone()
		}
		dst.Clear()
		gt.FillRelation(dst)
		if old != nil {
			pc.captureReplace(lhs, old, dst)
		}
		return total, maxPer, nil
	}
}

// ViewContents reconstructs a view's full logical contents, merging the
// same copies in the same order as the simulated cluster. A healthy read
// refreshes the committed cache; a poisoned cluster serves the cached
// last-committed contents instead, so readers never observe a partially
// applied transaction.
func (pc *ProcCluster) ViewContents(name string) *mring.Relation {
	schema := pc.schemas[name]
	if pc.err != nil {
		if r := pc.committed[name]; r != nil {
			return r.Clone()
		}
		return mring.NewRelation(schema)
	}
	out, err := pc.viewContents(name, schema)
	if err != nil {
		pc.fail(err)
		if r := pc.committed[name]; r != nil {
			return r.Clone()
		}
		return mring.NewRelation(schema)
	}
	pc.committed[name] = out.Clone()
	return out
}

func (pc *ProcCluster) viewContents(name string, schema mring.Schema) (*mring.Relation, error) {
	out := mring.NewRelation(schema)
	loc, ok := pc.parts[name]
	if ok && loc.Kind == dist.LLocal {
		if r := pc.driver.rels[name]; r != nil {
			out.Merge(r)
		}
		return out, nil
	}
	resps := make([]fetchResp, len(pc.conns))
	if err := pc.fanout(func(i int, c inet.Conn) error {
		return call(c, opFetch, &fetchReq{Name: name, Schema: schema}, &resps[i])
	}); err != nil {
		return nil, err
	}
	if loc.Kind == dist.LIndiff {
		// Replicated: the first present replica, in worker-index order, is
		// the contents (same copy choice as in-process).
		for i := range resps {
			if !resps[i].Present {
				continue
			}
			if err := replayInto(out, resps[i].Payload, 1); err != nil {
				return nil, err
			}
			return out, nil
		}
		return out, nil
	}
	for i := range resps {
		if !resps[i].Present {
			continue
		}
		if err := replayInto(out, resps[i].Payload, 1); err != nil {
			return nil, err
		}
	}
	if !ok {
		if r := pc.driver.rels[name]; r != nil {
			out.Merge(r)
		}
	}
	return out, nil
}
