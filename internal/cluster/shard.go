package cluster

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/mring"
	inet "repro/internal/net"
	"repro/internal/pool"
)

// Shard is the worker side of the process cluster: one worker node's
// fragments plus the request handlers that mutate them. Each handler
// replays exactly the mutation sequence the simulated cluster's driver
// would have applied to the same worker in-process, so the shard's
// relation layouts — and therefore every downstream iteration order and
// float fold — stay bitwise-identical to the in-process oracle.
//
// A shard serves one driver connection at a time; requests on that
// connection are strictly sequential, so no handler needs locking.
type Shard struct {
	index   int
	workers int
	node    *node
	schemas map[string]mring.Schema
}

// NewShard returns an empty shard awaiting opSetup.
func NewShard() *Shard {
	return &Shard{index: -1, node: newNode(), schemas: make(map[string]mring.Schema)}
}

// Handle dispatches one protocol request and returns the response body.
// Malformed or hostile requests return errors — handlers never panic on
// bad input (payloads go through the hardened internal/net decoders).
func (sh *Shard) Handle(op byte, body []byte) (any, error) {
	switch op {
	case opSetup:
		var req setupReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		if req.Workers < 1 || req.Index < 0 || req.Index >= req.Workers {
			return nil, fmt.Errorf("cluster: bad setup index %d of %d workers", req.Index, req.Workers)
		}
		sh.index, sh.workers = req.Index, req.Workers
		return setupResp{}, nil
	case opRunBlock:
		var req runBlockReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.runBlock(&req)
	case opInstallScatter:
		var req installScatterReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.installScatter(&req)
	case opInstallRepart:
		var req installRepartReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.installRepart(&req)
	case opInstallDelta:
		var req installDeltaReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.installDelta(&req)
	case opPartitionOut:
		var req partitionOutReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.partitionOut(&req)
	case opFetch:
		var req fetchReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.fetch(&req)
	case opSnapshot:
		var req snapshotReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.snapshot()
	case opRestore:
		var req restoreReq
		if err := decodeMsg(body, &req); err != nil {
			return nil, err
		}
		return sh.restore(&req)
	default:
		return nil, fmt.Errorf("cluster: unknown op %d", op)
	}
}

func (sh *Shard) setup() error {
	if sh.workers < 1 {
		return fmt.Errorf("cluster: shard not set up")
	}
	return nil
}

// runBlock executes one distributed block's statements over the shard's
// fragments — the remote form of the per-worker goroutine body in
// runDistBlock, including the private change sinks for watched views.
func (sh *Shard) runBlock(req *runBlockReq) (*runBlockResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	// The driver ships its schema map after prepareStmts; adopting it
	// reproduces the oracle's invariant that workers only read schemas.
	for name, s := range req.Schemas {
		sh.schemas[name] = s
	}
	var sinks map[string]*mring.Relation
	for _, name := range req.Watch {
		s, ok := sh.schemas[name]
		if !ok {
			return nil, fmt.Errorf("cluster: watch of %q without schema", name)
		}
		if sinks == nil {
			sinks = make(map[string]*mring.Relation, len(req.Watch))
		}
		sinks[name] = mring.NewRelation(s)
	}
	for _, s := range req.Stmts {
		if _, ok := sh.schemas[s.LHS]; !ok {
			return nil, fmt.Errorf("cluster: statement target %q without schema", s.LHS)
		}
	}
	start := time.Now()
	var st eval.Stats
	for _, s := range req.Stmts {
		st.Add(runStmtOnNode(sh.node, sh.schemas, s, sinks[s.LHS]))
	}
	resp := &runBlockResp{Stats: st, ComputeNs: time.Since(start).Nanoseconds()}
	for name, sink := range sinks {
		if sink.Len() == 0 {
			continue // merging an empty sink is a no-op on the driver
		}
		if resp.Sinks == nil {
			resp.Sinks = make(map[string][]byte, len(sinks))
		}
		resp.Sinks[name] = inet.EncodeRelationPlain(sink)
	}
	return resp, nil
}

// installScatter is the worker half of a scatter: clear the target
// fragment, install the shipped payload, and (for watched keyed views)
// return the replacement diff the driver folds into the batch delta.
func (sh *Shard) installScatter(req *installScatterReq) (*installResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	sh.schemas[req.Name] = req.Schema
	dst := sh.node.rel(req.Name, req.Schema)
	var old *mring.Relation
	if req.Capture {
		old = dst.Clone()
	}
	dst.Clear()
	if len(req.Payload) > 0 {
		p, err := inet.DecodePayload(req.Payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: scatter payload for %q: %w", req.Name, err)
		}
		installPayload(dst, p)
	}
	resp := &installResp{}
	if req.Capture {
		resp.Cur = inet.EncodeRelationPlain(dst)
		resp.Old = inet.EncodeRelationPlain(old)
	}
	return resp, nil
}

// installRepart rebuilds the target fragment from the per-sender payloads
// of an exchange, replaying the oracle's build: incoming accumulates the
// senders' fragments in worker-index order, then replaces the target.
func (sh *Shard) installRepart(req *installRepartReq) (*installResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	sh.schemas[req.Name] = req.LHSSchema
	var incoming *mring.Relation
	for _, pb := range req.Payloads {
		if len(pb) == 0 {
			continue // empty sender fragments are skipped, as in-process
		}
		p, err := inet.DecodePayload(pb)
		if err != nil {
			return nil, fmt.Errorf("cluster: repart payload for %q: %w", req.Name, err)
		}
		if incoming == nil {
			incoming = mring.NewRelation(req.SrcSchema)
		}
		p.Foreach(incoming.Add)
	}
	dst := sh.node.rel(req.Name, req.LHSSchema)
	var old *mring.Relation
	if req.Capture {
		old = dst.Clone()
	}
	dst.Clear()
	if incoming != nil {
		dst.Merge(incoming)
	}
	resp := &installResp{}
	if req.Capture {
		resp.Cur = inet.EncodeRelationPlain(dst)
		resp.Old = inet.EncodeRelationPlain(old)
	}
	return resp, nil
}

// installDelta replaces a relation with a fresh one rebuilt from the
// payload rows in wire order — the remote form of handing a worker a
// driver-built fragment by reference (update-batch deals, warm loads).
func (sh *Shard) installDelta(req *installDeltaReq) (*installDeltaResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	sh.schemas[req.Name] = req.Schema
	fresh := mring.NewRelation(req.Schema)
	if len(req.Payload) > 0 {
		p, err := inet.DecodePayload(req.Payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: delta payload for %q: %w", req.Name, err)
		}
		p.Foreach(fresh.Add)
	}
	sh.node.rels[req.Name] = fresh
	return &installDeltaResp{}, nil
}

// partitionOut splits the shard's fragment of Src by key and returns the
// per-destination payloads — the sender half of an exchange.
func (sh *Shard) partitionOut(req *partitionOutReq) (*partitionOutResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	for _, p := range req.KeyPos {
		if p < 0 || p >= len(req.Schema) {
			return nil, fmt.Errorf("cluster: key position %d outside schema %v", p, req.Schema)
		}
	}
	if _, ok := sh.schemas[req.Src]; !ok {
		sh.schemas[req.Src] = req.Schema
	}
	src := sh.node.rel(req.Src, req.Schema)
	frags := dist.SplitByKey(src, req.KeyPos, sh.workers)
	resp := &partitionOutResp{Frags: make([][]byte, len(frags))}
	for i, f := range frags {
		if f == nil || f.Len() == 0 {
			continue
		}
		resp.Frags[i] = inet.EncodeRelationPlain(f)
	}
	return resp, nil
}

// fetch returns the shard's fragment of a relation without creating it —
// Present distinguishes an absent replica from an empty one.
func (sh *Shard) fetch(req *fetchReq) (*fetchResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	r := sh.node.rels[req.Name]
	if r == nil {
		return &fetchResp{}, nil
	}
	return &fetchResp{Present: true, Payload: inet.EncodeRelationPlain(r)}, nil
}

// snapshot returns every restorable fragment on the shard with its
// bucket-table size — the worker half of a durability checkpoint.
func (sh *Shard) snapshot() (*snapshotResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	resp := &snapshotResp{Frags: map[string]Frag{}}
	for name, r := range sh.node.rels {
		if !worthSnapshot(r) {
			continue
		}
		resp.Frags[name] = snapFrag(r)
	}
	return resp, nil
}

// restore replaces the shard's entire state with checkpoint fragments,
// rebuilt layout-exact (the worker re-warm step of crash recovery). Like
// the in-process Restore, every fragment validates before any state is
// touched, so a corrupt checkpoint never leaves the shard half-restored.
func (sh *Shard) restore(req *restoreReq) (*restoreResp, error) {
	if err := sh.setup(); err != nil {
		return nil, err
	}
	rels := make(map[string]*mring.Relation, len(req.Frags))
	for name, f := range req.Frags {
		r, err := restoreFrag(name, f)
		if err != nil {
			return nil, err
		}
		rels[name] = r
	}
	sh.node.rels = rels
	for name, r := range rels {
		sh.schemas[name] = r.Schema()
	}
	return &restoreResp{}, nil
}

// installPayload fills a just-cleared relation from a wire payload the
// way installFragment fills it from an in-process fragment: a columnar
// payload merges from the batch and becomes dst's mirror; a row payload
// replays in wire order. Row order is identical either way, so dst's
// storage is bitwise independent of which form shipped.
func installPayload(dst *mring.Relation, p *inet.Payload) {
	if p.Batch != nil {
		p.Batch.MergeInto(dst)
		if dst.Len() == p.Batch.Len() {
			pool.AttachMirror(dst, p.Batch)
		}
		return
	}
	p.Foreach(dst.Add)
}
