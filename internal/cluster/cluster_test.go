package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
)

func tup(vs ...int) mring.Tuple {
	t := make(mring.Tuple, len(vs))
	for i, v := range vs {
		t[i] = mring.Int(int64(v))
	}
	return t
}

// buildDeployment compiles a query locally and distributes it at the
// given level with the given partitioning.
func buildDeployment(t *testing.T, name string, q expr.Expr, bases map[string]mring.Schema,
	parts dist.PartInfo, level dist.OptLevel, workers int) (*compile.Program, map[string]*dist.DistProgram, *Cluster) {
	t.Helper()
	prog, err := compile.Compile(name, q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	dprogs := dist.CompileProgram(prog, parts, level)
	cfg := DefaultConfig(workers)
	cl := New(cfg, dist.ViewSchemas(prog), parts)
	return prog, dprogs, cl
}

// checkDistributedMatchesLocal streams random batches through both the
// local executor and the cluster and compares the top view after every
// batch.
func checkDistributedMatchesLocal(t *testing.T, name string, q expr.Expr,
	bases map[string]mring.Schema, parts dist.PartInfo, level dist.OptLevel,
	workers, nBatches, batchSize int, seed int64) {
	t.Helper()
	prog, dprogs, cl := buildDeployment(t, name, q, bases, parts, level, workers)
	local := compile.NewExecutor(prog)
	rng := rand.New(rand.NewSource(seed))
	var relNames []string
	for n := range bases {
		relNames = append(relNames, n)
	}
	for i := 1; i < len(relNames); i++ {
		for j := i; j > 0 && relNames[j] < relNames[j-1]; j-- {
			relNames[j], relNames[j-1] = relNames[j-1], relNames[j]
		}
	}
	for b := 0; b < nBatches; b++ {
		rel := relNames[rng.Intn(len(relNames))]
		batch := mring.NewRelation(bases[rel])
		for i := 0; i < batchSize; i++ {
			tp := make(mring.Tuple, len(bases[rel]))
			for j := range tp {
				tp[j] = mring.Int(int64(rng.Intn(5)))
			}
			batch.Add(tp, float64(1+rng.Intn(2)))
		}
		local.ApplyBatch(rel, batch.Clone())
		if _, err := cl.Run(dprogs[rel], batch.Clone()); err != nil {
			t.Fatalf("%s O%d batch %d: %v\nprogram:\n%s", name, level, b, err, dprogs[rel])
		}
		got := cl.ViewContents(name)
		want := local.Result()
		if !got.EqualApprox(want, 1e-6) {
			t.Fatalf("%s O%d batch %d on %s diverged\n got: %v\nwant: %v\nprogram:\n%s",
				name, level, b, rel, got, want, dprogs[rel])
		}
	}
}

func triJoinSetup() (expr.Expr, map[string]mring.Schema, dist.PartInfo) {
	q := expr.Sum([]string{"B"}, expr.Join(
		expr.Base("R", "A", "B"), expr.Base("S", "B", "C"), expr.Base("T", "C", "D")))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B", "C"}, "T": {"C", "D"}}
	return q, bases, nil
}

// partitionAll assigns every view a distributed location on its first
// schema column, keeps scalars local, and puts deltas on the driver.
func partitionAll(prog *compile.Program, topLocal bool) dist.PartInfo {
	parts := dist.PartInfo{}
	for _, v := range prog.Views {
		if v.Transient || len(v.Schema) == 0 {
			parts[v.Name] = dist.Local
			continue
		}
		parts[v.Name] = dist.Dist(v.Schema[0])
	}
	if topLocal {
		parts[prog.QueryName] = dist.Local
	}
	for rel := range prog.Bases {
		parts[eval.DeltaName(rel)] = dist.Local
	}
	return parts
}

func TestDistributedTriJoinAllLevels(t *testing.T) {
	q, bases, _ := triJoinSetup()
	prog, err := compile.Compile("Q", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, topLocal := range []bool{true, false} {
		parts := partitionAll(prog, topLocal)
		for _, level := range []dist.OptLevel{dist.O0, dist.O1, dist.O2, dist.O3} {
			checkDistributedMatchesLocal(t, "Q", q, bases, parts, level, 4, 8, 6, int64(10+int(level)))
		}
	}
}

func TestDistributedScalarAggregate(t *testing.T) {
	// Q6 shape: one scalar aggregate with a filter, result at the driver.
	q := expr.Sum(nil, expr.Join(
		expr.Base("L", "qty", "price"),
		expr.CmpE(expr.CLt, expr.V("qty"), expr.LitI(3)),
		expr.ValE(expr.V("price"))))
	bases := map[string]mring.Schema{"L": {"qty", "price"}}
	prog, err := compile.Compile("Q6", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, true)
	checkDistributedMatchesLocal(t, "Q6", q, bases, parts, dist.O3, 8, 6, 10, 99)
}

func TestDistributedNestedCorrelated(t *testing.T) {
	// Q17 shape: correlated nested aggregate; views partitioned on the
	// correlation key.
	inner := expr.Sum(nil, expr.Join(expr.Base("S", "B2", "C"), expr.Eq(expr.V("B"), expr.V("B2"))))
	q := expr.Sum(nil, expr.Join(
		expr.Base("R", "A", "B"),
		expr.LiftQ("X", inner),
		expr.CmpE(expr.CLt, expr.V("A"), expr.V("X"))))
	bases := map[string]mring.Schema{"R": {"A", "B"}, "S": {"B2", "C"}}
	prog, err := compile.Compile("Q17", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	// Partition the R-mirror on B (correlation var side) and the S-mirror
	// on B2 so lift groups are complete per node.
	parts := dist.PartInfo{"Q17": dist.Local}
	for _, v := range prog.Views {
		if v.Name == "Q17" {
			continue
		}
		switch {
		case v.Schema.Contains("B2"):
			parts[v.Name] = dist.Dist("B2")
		case v.Schema.Contains("B"):
			parts[v.Name] = dist.Dist("B")
		default:
			parts[v.Name] = dist.Local
		}
	}
	for rel := range bases {
		parts[eval.DeltaName(rel)] = dist.Local
	}
	for _, level := range []dist.OptLevel{dist.O0, dist.O3} {
		checkDistributedMatchesLocal(t, "Q17", q, bases, parts, level, 4, 8, 5, 7)
	}
}

func TestRunPartitionedIngest(t *testing.T) {
	// Workers ingest stream fragments directly (Random delta tag).
	q := expr.Sum(nil, expr.Join(expr.Base("L", "a", "v"), expr.ValE(expr.V("v"))))
	bases := map[string]mring.Schema{"L": {"a", "v"}}
	prog, err := compile.Compile("QP", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, true)
	parts[eval.DeltaName("L")] = dist.Random
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	workers := 4
	cl := New(DefaultConfig(workers), dist.ViewSchemas(prog), parts)
	local := compile.NewExecutor(prog)
	rng := rand.New(rand.NewSource(5))
	for b := 0; b < 5; b++ {
		full := mring.NewRelation(bases["L"])
		frags := make([]*mring.Relation, workers)
		for i := range frags {
			frags[i] = mring.NewRelation(bases["L"])
		}
		for i := 0; i < 40; i++ {
			tp := tup(rng.Intn(6), rng.Intn(10))
			full.Add(tp, 1)
			frags[rng.Intn(workers)].Add(tp, 1)
		}
		local.ApplyBatch("L", full)
		if _, err := cl.RunPartitioned(dprogs["L"], frags); err != nil {
			t.Fatalf("batch %d: %v\n%s", b, err, dprogs["L"])
		}
		if got, want := cl.ViewContents("QP"), local.Result(); !got.EqualApprox(want, 1e-6) {
			t.Fatalf("batch %d diverged: got %v want %v\n%s", b, got, want, dprogs["L"])
		}
	}
}

func TestMetricsShape(t *testing.T) {
	q, bases, _ := triJoinSetup()
	prog, err := compile.Compile("Q", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, true)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := New(DefaultConfig(8), dist.ViewSchemas(prog), parts)
	batch := mring.NewRelation(bases["R"])
	for i := 0; i < 50; i++ {
		batch.Add(tup(i, i%5), 1)
	}
	m, err := cl.Run(dprogs["R"], batch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency <= 0 {
		t.Fatal("latency must be positive")
	}
	if m.ShuffledBytes <= 0 {
		t.Fatal("a scatter must move bytes")
	}
	if m.Stages == 0 {
		t.Fatal("expected at least one stage")
	}
	// Scheduling overhead grows with workers: same batch on a bigger
	// cluster must cost more sync time for this tiny workload.
	clBig := New(DefaultConfig(512), dist.ViewSchemas(prog), parts)
	mBig, err := clBig.Run(dprogs["R"], batch.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if mBig.Latency <= m.Latency {
		t.Fatalf("512-worker sync latency (%v) should exceed 8-worker (%v) on a tiny batch",
			mBig.Latency, m.Latency)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Latency: 10, ShuffledBytes: 5, MaxWorkerShuffleBytes: 3, Stages: 1, Jobs: 1}
	b := Metrics{Latency: 7, ShuffledBytes: 2, MaxWorkerShuffleBytes: 9, Stages: 2, Jobs: 1}
	a.Add(b)
	if a.Latency != 17 || a.ShuffledBytes != 7 || a.MaxWorkerShuffleBytes != 9 || a.Stages != 3 || a.Jobs != 2 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestStateNotSharedAcrossWorkers(t *testing.T) {
	// A Dist view's fragments must be disjoint: total = sum of fragments,
	// and no tuple may appear on two workers.
	q := expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("QV", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, false) // top view distributed by B
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := New(DefaultConfig(4), dist.ViewSchemas(prog), parts)
	batch := mring.NewRelation(bases["R"])
	for i := 0; i < 60; i++ {
		batch.Add(tup(i, i%7), 1)
	}
	if _, err := cl.Run(dprogs["R"], batch); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for wi, w := range cl.workers {
		if r := w.rels["QV"]; r != nil {
			r.Foreach(func(tp mring.Tuple, _ float64) {
				if prev, ok := seen[tp.Key()]; ok {
					t.Fatalf("tuple %v on workers %d and %d", tp, prev, wi)
				}
				seen[tp.Key()] = wi
			})
		}
	}
	if len(seen) != 7 {
		t.Fatalf("expected 7 groups across workers, got %d", len(seen))
	}
}

func TestCheckpointRestoreAfterFailure(t *testing.T) {
	// Stream batches, checkpoint, lose a worker, restore, continue:
	// the final result must match an uninterrupted local execution.
	q := expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("QC", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, false)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	cl := New(DefaultConfig(4), dist.ViewSchemas(prog), parts)
	local := compile.NewExecutor(prog)

	mkBatch := func(lo int) *mring.Relation {
		b := mring.NewRelation(bases["R"])
		for i := 0; i < 30; i++ {
			b.Add(tup(lo+i, (lo+i)%5), 1)
		}
		return b
	}
	for i := 0; i < 3; i++ {
		b := mkBatch(i * 30)
		local.ApplyBatch("R", b.Clone())
		if _, err := cl.Run(dprogs["R"], b); err != nil {
			t.Fatal(err)
		}
	}
	cp := cl.Checkpoint()
	if cp.Bytes == 0 {
		t.Fatal("checkpoint should capture state")
	}
	if cl.CheckpointCost(cp) <= 0 {
		t.Fatal("checkpoint cost should be positive")
	}
	// Fail a worker that owns a fragment of the view: the distributed
	// contents are now missing it. (Which workers own fragments depends on
	// the tuple hash, so pick one that actually holds state.)
	victim := -1
	for i, w := range cl.workers {
		if r := w.rels["QC"]; r != nil && r.Len() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker holds a QC fragment")
	}
	cl.KillWorker(victim)
	if cl.ViewContents("QC").EqualApprox(local.Result(), 1e-9) {
		t.Fatal("state should be damaged after worker failure")
	}
	if err := cl.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if !cl.ViewContents("QC").EqualApprox(local.Result(), 1e-9) {
		t.Fatal("restore did not recover the pre-failure state")
	}
	// Processing continues correctly after recovery.
	b := mkBatch(90)
	local.ApplyBatch("R", b.Clone())
	if _, err := cl.Run(dprogs["R"], b); err != nil {
		t.Fatal(err)
	}
	if !cl.ViewContents("QC").EqualApprox(local.Result(), 1e-9) {
		t.Fatal("post-recovery processing diverged")
	}
}

func TestRestoreRejectsMismatchedWorkers(t *testing.T) {
	q := expr.Sum(nil, expr.Base("R", "A"))
	prog, _ := compile.Compile("QW", q, map[string]mring.Schema{"R": {"A"}}, compile.Options{})
	parts := partitionAll(prog, true)
	a := New(DefaultConfig(2), dist.ViewSchemas(prog), parts)
	b := New(DefaultConfig(3), dist.ViewSchemas(prog), parts)
	if err := b.Restore(a.Checkpoint()); err == nil {
		t.Fatal("expected worker-count mismatch error")
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	q := expr.Sum(nil, expr.Base("R", "A"))
	prog, _ := compile.Compile("QX", q, map[string]mring.Schema{"R": {"A"}}, compile.Options{})
	parts := partitionAll(prog, true)
	cl := New(DefaultConfig(2), dist.ViewSchemas(prog), parts)
	batch := mring.NewRelation(mring.Schema{"A"})
	batch.Add(tup(1), 1)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	if _, err := cl.Run(dprogs["R"], batch); err != nil {
		t.Fatal(err)
	}
	cp := cl.Checkpoint()
	for name, b := range cp.Driver {
		b.Payload = b.Payload[:len(b.Payload)/2] // truncate
		cp.Driver[name] = b
	}
	before := cl.ViewContents("QX").Get(mring.Tuple{})
	if err := cl.Restore(cp); err == nil {
		t.Fatal("expected corruption error")
	}
	// State must be untouched after a failed restore.
	if cl.ViewContents("QX").Get(mring.Tuple{}) != before {
		t.Fatal("failed restore mutated state")
	}
}

func TestStragglerInflation(t *testing.T) {
	// With straggler probability 1, stage latency must exceed the
	// deterministic run's.
	q := expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("QS2", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, false)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	batch := mring.NewRelation(bases["R"])
	for i := 0; i < 200; i++ {
		batch.Add(tup(i, i%9), 1)
	}
	run := func(prob float64) Metrics {
		cfg := DefaultConfig(4)
		cfg.StragglerProb = prob
		cfg.StragglerFactor = 3
		cl := New(cfg, dist.ViewSchemas(prog), parts)
		m, err := cl.Run(dprogs["R"], batch.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := run(0)
	slow := run(1)
	if slow.ComputeMax <= base.ComputeMax {
		t.Fatalf("straggler run (%v) should exceed baseline (%v)", slow.ComputeMax, base.ComputeMax)
	}
}

func TestConfigZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero workers")
		}
	}()
	New(Config{Workers: 0}, nil, nil)
}
