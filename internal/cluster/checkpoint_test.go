package cluster

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/dist"
	"repro/internal/expr"
	"repro/internal/mring"
)

// ckptFixture builds a 2-worker cluster with streamed state (including
// deletions, so bucket tables are larger than row counts) and returns it
// with a factory for identically-shaped fresh clusters.
func ckptFixture(t *testing.T) (*Cluster, func() *Cluster) {
	t.Helper()
	q := expr.Sum([]string{"B"}, expr.Base("R", "A", "B"))
	bases := map[string]mring.Schema{"R": {"A", "B"}}
	prog, err := compile.Compile("QV", q, bases, compile.Options{DomainExtraction: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := partitionAll(prog, false)
	dprogs := dist.CompileProgram(prog, parts, dist.O3)
	fresh := func() *Cluster { return New(DefaultConfig(2), dist.ViewSchemas(prog), parts) }
	cl := fresh()
	for step := 0; step < 4; step++ {
		b := mring.NewRelation(bases["R"])
		for i := 0; i < 25; i++ {
			b.Add(tup(step*25+i, i%7), 1)
		}
		if step == 3 {
			for i := 0; i < 20; i++ {
				b.Add(tup(i, i%7), -1) // deletions shrink rows, not tables
			}
		}
		if _, err := cl.Run(dprogs["R"], b); err != nil {
			t.Fatal(err)
		}
	}
	return cl, fresh
}

// requireSameNodes asserts two clusters hold identical fragments with
// identical physical layout (bucket sizes and Foreach order).
func requireSameNodes(t *testing.T, got, want *Cluster) {
	t.Helper()
	cmp := func(label string, g, w *node) {
		for name, wr := range w.rels {
			if !worthSnapshot(wr) {
				continue
			}
			gr := g.rels[name]
			if gr == nil {
				t.Fatalf("%s: missing relation %q", label, name)
			}
			if gr.TableSize() != wr.TableSize() {
				t.Fatalf("%s/%s: TableSize got %d want %d", label, name, gr.TableSize(), wr.TableSize())
			}
			var rows []mring.Tuple
			var mults []float64
			wr.Foreach(func(tp mring.Tuple, m float64) { rows = append(rows, tp); mults = append(mults, m) })
			i := 0
			gr.Foreach(func(tp mring.Tuple, m float64) {
				if i < len(rows) && (!tp.Equal(rows[i]) || mults[i] != m) {
					t.Fatalf("%s/%s: row %d diverges", label, name, i)
				}
				i++
			})
			if i != len(rows) {
				t.Fatalf("%s/%s: row count got %d want %d", label, name, i, len(rows))
			}
		}
	}
	cmp("driver", got.driver, want.driver)
	for i := range want.workers {
		cmp("worker", got.workers[i], want.workers[i])
	}
}

// TestCheckpointEncodeDecodeVersioned pins the versioned serialization:
// a round-tripped checkpoint restores a fresh cluster to the EXACT
// layout of the original, not just equal contents.
func TestCheckpointEncodeDecodeVersioned(t *testing.T) {
	cl, fresh := ckptFixture(t)
	enc, err := EncodeCheckpoint(cl.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if string(enc[:4]) != ckptMagic {
		t.Fatalf("missing magic: %q", enc[:8])
	}
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := fresh()
	if err := cl2.RestoreState(dec); err != nil {
		t.Fatal(err)
	}
	requireSameNodes(t, cl2, cl)
}

// TestDecodeCheckpointLegacy: a body without the magic decodes as the
// unversioned PR 9 format (bare payload bytes, no bucket sizes) and
// restores contents correctly, just without the layout guarantee.
func TestDecodeCheckpointLegacy(t *testing.T) {
	cl, fresh := ckptFixture(t)
	cp := cl.Checkpoint()
	legacy := legacyCheckpoint{Driver: map[string][]byte{}, Workers: make([]map[string][]byte, len(cp.Workers))}
	for name, f := range cp.Driver {
		if len(f.Payload) > 0 {
			legacy.Driver[name] = f.Payload
		}
	}
	for i, w := range cp.Workers {
		legacy.Workers[i] = map[string][]byte{}
		for name, f := range w {
			if len(f.Payload) > 0 {
				legacy.Workers[i][name] = f.Payload
			}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(buf.Bytes())
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	cl2 := fresh()
	if err := cl2.RestoreState(dec); err != nil {
		t.Fatal(err)
	}
	if !cl2.ViewContents("QV").Equal(cl.ViewContents("QV")) {
		t.Fatal("legacy restore lost contents")
	}
}

func TestDecodeCheckpointBadVersion(t *testing.T) {
	cl, _ := ckptFixture(t)
	enc, err := EncodeCheckpoint(cl.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	enc[4] = 99 // version byte
	if _, err := DecodeCheckpoint(enc); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want descriptive version error, got %v", err)
	}
	if _, err := DecodeCheckpoint([]byte("garbage that is neither format")); err == nil {
		t.Fatal("garbage should not decode")
	}
}
