package cluster

import (
	"fmt"
	"io"
	"sync"

	inet "repro/internal/net"
)

// ServeConn runs one driver session over a framed connection: a fresh
// shard per connection (driver sessions own their worker state), request
// frames dispatched sequentially until the peer closes. Handler panics
// are converted to opErr responses — a hostile or buggy driver must not
// take the worker process down.
func ServeConn(conn inet.Conn) error {
	defer conn.Close()
	sh := NewShard()
	for {
		op, body, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp, herr := handleSafely(sh, op, body)
		if herr != nil {
			if err := conn.Send(opErr, []byte(herr.Error())); err != nil {
				return err
			}
			continue
		}
		rbody, err := encodeMsg(resp)
		if err != nil {
			herr = fmt.Errorf("cluster: encode response to op %d: %w", op, err)
			if err := conn.Send(opErr, []byte(herr.Error())); err != nil {
				return err
			}
			continue
		}
		if err := conn.Send(opOK, rbody); err != nil {
			return err
		}
	}
}

func handleSafely(sh *Shard, op byte, body []byte) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("cluster: op %d panicked: %v", op, r)
		}
	}()
	return sh.Handle(op, body)
}

// WorkerServer accepts driver connections on a listener and serves each
// on its own goroutine. Close stops accepting and severs every active
// connection — the kill-a-worker tests use it to drop a worker
// mid-transaction.
type WorkerServer struct {
	l inet.Listener

	mu     sync.Mutex
	conns  map[inet.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// ListenAndServeWorker starts a worker server on addr (port 0 picks a
// free port; read it back with Addr).
func ListenAndServeWorker(tr inet.Transport, addr string) (*WorkerServer, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &WorkerServer{l: l, conns: make(map[inet.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *WorkerServer) Addr() string { return s.l.Addr() }

func (s *WorkerServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server: no new connections are accepted and every
// active driver connection is severed. Safe to call more than once.
func (s *WorkerServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]inet.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
