package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	inet "repro/internal/net"
)

// The driver/worker protocol: one frame type byte per operation, gob
// request/response bodies, relation data as internal/net payloads (never
// gob — row order is load-bearing, see proccluster.go). Each worker
// connection carries strictly sequential request/response pairs; the
// driver fans out across workers concurrently.
//
// DESIGN.md §11 documents the protocol; change both together.
const (
	// opSetup assigns the worker its index and the worker count. Sent
	// once, first, per driver session.
	opSetup byte = 1
	// opRunBlock executes one distributed block's statements over the
	// shard's fragments, optionally capturing per-view change sinks.
	opRunBlock byte = 2
	// opInstallScatter clears the target fragment and installs a shipped
	// payload (keyed scatter fragment, or a broadcast replica).
	opInstallScatter byte = 3
	// opInstallRepart rebuilds the target fragment from per-sender
	// payloads merged in worker-index order.
	opInstallRepart byte = 4
	// opInstallDelta replaces a relation with a fresh one built from the
	// payload rows in wire order (update-batch fragments, warm loads).
	opInstallDelta byte = 5
	// opPartitionOut splits a shard fragment by key and returns the
	// per-destination payloads.
	opPartitionOut byte = 6
	// opFetch returns a shard fragment's contents (gather, view reads).
	opFetch byte = 7
	// opSnapshot returns every fragment the shard holds, with bucket-table
	// sizes, for a durability checkpoint.
	opSnapshot byte = 8
	// opRestore replaces the shard's entire state with checkpoint
	// fragments, rebuilt layout-exact (worker re-warm during recovery).
	opRestore byte = 9

	// opOK carries a gob response body; opErr carries an error string.
	opOK  byte = 64
	opErr byte = 65
)

type setupReq struct {
	Index   int
	Workers int
}

type setupResp struct{}

type runBlockReq struct {
	// Stmts is the block's statement sequence; the shard executes it in
	// order against its own fragments.
	Stmts []dist.Stmt
	// Schemas is the driver's schema map after prepareStmts — every
	// schema the statements may bind, resolved on the driver so shards
	// never register schemas themselves.
	Schemas map[string]mring.Schema
	// Watch names the watched worker-maintained views this block writes;
	// the shard folds its changes to them into per-view sinks and returns
	// the sinks as payloads.
	Watch []string
}

type runBlockResp struct {
	Stats     eval.Stats
	ComputeNs int64
	// Sinks holds each watched view's change sink in the shard's fold
	// order (empty sinks are omitted — merging them is a no-op).
	Sinks map[string][]byte
}

type installScatterReq struct {
	Name   string
	Schema mring.Schema
	// Payload is the fragment to install (nil for an empty fragment: the
	// target is still cleared and the replacement still captured).
	Payload []byte
	// Broadcast marks a replica install: no capture (the driver mirror
	// fold already recorded the identical delta).
	Broadcast bool
	// Capture requests the replacement diff: the shard returns the old
	// and new contents so the driver can fold old out of and new into the
	// watched view's batch delta in worker-index order.
	Capture bool
}

// installResp carries the capture payloads of a replacement install:
// the fragment contents after (Cur) and before (Old) the install, each
// in its relation's Foreach order. Nil without capture.
type installResp struct {
	Cur []byte
	Old []byte
}

type installRepartReq struct {
	Name      string
	SrcSchema mring.Schema
	LHSSchema mring.Schema
	// Payloads holds one payload per sending worker, in worker-index
	// order; nil entries mark senders with no data for this shard.
	Payloads [][]byte
	Capture  bool
}

type installDeltaReq struct {
	Name   string
	Schema mring.Schema
	// Payload's rows rebuild the relation in wire order; nil installs a
	// fresh empty relation.
	Payload []byte
}

type installDeltaResp struct{}

type partitionOutReq struct {
	Src    string
	Schema mring.Schema
	KeyPos []int
}

type partitionOutResp struct {
	// Frags holds one payload per destination worker; nil entries mark
	// empty fragments.
	Frags [][]byte
}

type fetchReq struct {
	Name   string
	Schema mring.Schema
}

type fetchResp struct {
	// Present reports whether the shard holds the relation at all (view
	// reads distinguish an absent replica from an empty one).
	Present bool
	Payload []byte
}

type snapshotReq struct{}

type snapshotResp struct {
	// Frags holds every restorable fragment on the shard (contents plus
	// bucket-table size; empty-but-sized relations included, since
	// retained capacity shapes future layout).
	Frags map[string]Frag
}

type restoreReq struct {
	Frags map[string]Frag
}

type restoreResp struct{}

func init() {
	// The statement AST crosses the wire inside runBlockReq; register
	// every concrete node behind the expr.Expr / expr.VExpr interfaces.
	gob.Register(&expr.Rel{})
	gob.Register(&expr.Plus{})
	gob.Register(&expr.Mul{})
	gob.Register(&expr.Agg{})
	gob.Register(&expr.Const{})
	gob.Register(&expr.Val{})
	gob.Register(&expr.Cmp{})
	gob.Register(&expr.Assign{})
	gob.Register(&expr.Exists{})
	gob.Register(&dist.Xform{})
	gob.Register(expr.VarRef{})
	gob.Register(expr.Lit{})
	gob.Register(expr.Arith{})
}

// encodeMsg gob-encodes one protocol message body. Each message is a
// self-contained gob stream, so decoding needs no per-connection state.
func encodeMsg(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeMsg(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// call runs one request/response round trip on a worker connection.
func call(c inet.Conn, op byte, req, resp any) error {
	body, err := encodeMsg(req)
	if err != nil {
		return fmt.Errorf("cluster: encode op %d: %w", op, err)
	}
	if err := c.Send(op, body); err != nil {
		return err
	}
	typ, rbody, err := c.Recv()
	if err != nil {
		return err
	}
	switch typ {
	case opOK:
		if resp == nil {
			return nil
		}
		if err := decodeMsg(rbody, resp); err != nil {
			return fmt.Errorf("cluster: decode response to op %d: %w", op, err)
		}
		return nil
	case opErr:
		return fmt.Errorf("cluster: worker error: %s", rbody)
	default:
		return fmt.Errorf("cluster: unexpected response frame type %d", typ)
	}
}
