// Package cluster simulates the synchronous large-scale processing
// platform of Sec. 4 and 6.2 (the paper ran Spark 1.6.1 on 100 servers):
// one driver orchestrates N stateful workers; processing a batch runs a
// sequence of statement blocks, each distributed block being one stage
// executed by all workers in parallel.
//
// The simulator really executes the compiled distributed programs over
// really-partitioned state and really-serialized shuffles (bytes are
// counted through the columnar wire format), and combines the measured
// per-worker work with a virtual-time cost model for the platform terms
// the paper measures: per-stage scheduling/synchronization overhead that
// grows with the worker count, shuffle time proportional to the maximum
// per-worker payload, and optional straggler inflation. DESIGN.md §3
// documents this substitution.
package cluster

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/mring"
	"repro/internal/pool"
)

// Config holds the platform cost-model parameters. The defaults are
// calibrated so that an empty-work stage reproduces the paper's Q6
// synchronization latencies (65 ms at 50 workers to ~390 ms at 1000).
type Config struct {
	Workers int
	// SchedBase is the fixed per-stage scheduling cost.
	SchedBase time.Duration
	// SchedPerWorker is the per-worker closure-shipping/sync cost added
	// to every stage.
	SchedPerWorker time.Duration
	// NetLatency is charged once per communication round (transformer).
	NetLatency time.Duration
	// BandwidthBytesPerSec is the effective per-worker shuffle bandwidth
	// (serialize + transfer + deserialize).
	BandwidthBytesPerSec float64
	// ComputeNsPerOp converts evaluation operation counts into virtual
	// compute time. Zero disables modeled compute (real measured time is
	// used instead).
	ComputeNsPerOp float64
	// StragglerProb is the per-stage probability that the slowest worker
	// is inflated by StragglerFactor (Sec. 6.2.1 observes 1.5–3x).
	StragglerProb   float64
	StragglerFactor float64
	// Seed drives straggler sampling and nothing else.
	Seed int64
}

// DefaultConfig returns the calibrated platform model.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:              workers,
		SchedBase:            30 * time.Millisecond,
		SchedPerWorker:       350 * time.Microsecond,
		NetLatency:           5 * time.Millisecond,
		BandwidthBytesPerSec: 100 << 20, // 100 MB/s effective per worker
		ComputeNsPerOp:       25,
		StragglerProb:        0,
		StragglerFactor:      2,
		Seed:                 1,
	}
}

// node holds the relation fragments of one worker (or the driver).
type node struct {
	rels map[string]*mring.Relation
}

func newNode() *node { return &node{rels: make(map[string]*mring.Relation)} }

func (n *node) rel(name string, schema mring.Schema) *mring.Relation {
	r := n.rels[name]
	if r == nil {
		r = mring.NewRelation(schema)
		n.rels[name] = r
	}
	return r
}

// Metrics reports the virtual cost of processing one batch.
type Metrics struct {
	// Latency is the virtual end-to-end batch processing time.
	Latency time.Duration
	// ComputeMax accumulates, per stage, the slowest worker's compute.
	ComputeMax time.Duration
	// ComputeSum is total compute across all workers (CPU-seconds).
	ComputeSum time.Duration
	// ShuffledBytes is the total serialized payload moved over the
	// network.
	ShuffledBytes int64
	// MaxWorkerShuffleBytes is the largest per-worker payload in any one
	// round (the term that bounds shuffle time).
	MaxWorkerShuffleBytes int64
	// Stages and Jobs echo the executed program structure.
	Stages int
	Jobs   int
}

// Add accumulates other into m (Latency and counters sum; the max field
// takes the max).
func (m *Metrics) Add(o Metrics) {
	m.Latency += o.Latency
	m.ComputeMax += o.ComputeMax
	m.ComputeSum += o.ComputeSum
	m.ShuffledBytes += o.ShuffledBytes
	if o.MaxWorkerShuffleBytes > m.MaxWorkerShuffleBytes {
		m.MaxWorkerShuffleBytes = o.MaxWorkerShuffleBytes
	}
	m.Stages += o.Stages
	m.Jobs += o.Jobs
}

// Cluster is one simulated deployment: schemas and partitioning are fixed
// at construction; state persists across batches (workers are stateful).
type Cluster struct {
	cfg     Config
	driver  *node
	workers []*node
	schemas map[string]mring.Schema
	parts   dist.PartInfo
	rng     *rand.Rand
	// Stats accumulates evaluation statistics across all nodes and
	// batches. Per-worker contributions are merged in worker-index order
	// after each stage barrier, so the totals are deterministic even
	// though the workers run concurrently.
	Stats eval.Stats
	// watch maps each watched view (WatchView) to the delta accumulated
	// since its last TakeWatchDelta, gathered deterministically:
	// driver-side folds for local/replicated views, per-worker folds
	// merged strictly in worker-index order for distributed views.
	// Several views can be watched at once (multi-view serving); an
	// empty map disables all capture.
	watch map[string]*mring.Relation
	// workerCompute and workerStages accumulate, per worker, the virtual
	// stage compute and the number of distributed stages executed — the
	// skew signal WorkerTimings exports (merged-away maxima alone cannot
	// show which worker is hot).
	workerCompute []time.Duration
	workerStages  []int
}

// WorkerTiming is one worker's accumulated share of distributed-stage
// work, as reported by WorkerTimings. Compute is the sum over stages of
// this worker's virtual compute (the same per-worker term whose maximum
// feeds Metrics.ComputeMax); Stages counts the distributed stages the
// worker participated in. A max/mean ratio over Compute far above 1 is
// partition skew.
type WorkerTiming struct {
	Worker  int
	Compute time.Duration
	Stages  int
}

// New creates a cluster with empty state.
func New(cfg Config, schemas map[string]mring.Schema, parts dist.PartInfo) *Cluster {
	if cfg.Workers <= 0 {
		panic("cluster: need at least one worker")
	}
	c := &Cluster{
		cfg:           cfg,
		driver:        newNode(),
		workers:       make([]*node, cfg.Workers),
		schemas:       schemas,
		parts:         parts,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		workerCompute: make([]time.Duration, cfg.Workers),
		workerStages:  make([]int, cfg.Workers),
	}
	for i := range c.workers {
		c.workers[i] = newNode()
	}
	return c
}

// Workers returns the configured worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// EvalStats returns the evaluation statistics accumulated across all
// nodes and batches (the Stats field behind a method, so the simulated
// and process clusters expose the counters uniformly).
func (c *Cluster) EvalStats() eval.Stats { return c.Stats }

// Close releases the cluster's resources. The simulated cluster holds
// none; the method exists so every cluster runtime closes uniformly.
func (c *Cluster) Close() error { return nil }

// RunPartitionedBatch deals a driver-resident batch round-robin over the
// workers and processes it as RunPartitioned. The split happens here, in
// the runtime, because the process cluster must serialize each fragment
// in deal order — splitting before the runtime boundary would force the
// caller to know the wire format.
func (c *Cluster) RunPartitionedBatch(prog *dist.DistProgram, batch *mring.Relation) (Metrics, error) {
	frags := make([]*mring.Relation, len(c.workers))
	for i := range frags {
		frags[i] = mring.NewRelation(batch.Schema())
	}
	i := 0
	batch.Foreach(func(t mring.Tuple, m float64) {
		frags[i%len(frags)].Add(t, m)
		i++
	})
	return c.RunPartitioned(prog, frags)
}

// WorkerTimings returns each worker's accumulated distributed-stage
// compute since the cluster started, in worker-index order. Callers
// diff consecutive snapshots to get per-transaction skew.
func (c *Cluster) WorkerTimings() []WorkerTiming {
	out := make([]WorkerTiming, len(c.workers))
	for i := range c.workers {
		out[i] = WorkerTiming{Worker: i, Compute: c.workerCompute[i], Stages: c.workerStages[i]}
	}
	return out
}

// ForEachRelation visits every named relation fragment on every node —
// driver first, then workers in index order, names sorted within each
// node — so per-fragment state (index admission records) can be swept
// and aggregated deterministically.
func (c *Cluster) ForEachRelation(f func(name string, r *mring.Relation)) {
	visit := func(n *node) {
		names := make([]string, 0, len(n.rels))
		for name := range n.rels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f(name, n.rels[name])
		}
	}
	visit(c.driver)
	for _, w := range c.workers {
		visit(w)
	}
}

// Repartition swaps the cluster's placement map between transactions:
// every relation not named in keep (moved views, temp/transient state,
// and stale delta fragments — anything a program compiled against the
// old placement may have left behind) is dropped from the driver and
// all workers, the new placement takes effect, and the moved views'
// gathered contents are re-installed under their new locations via
// WarmViews. The caller must not run a program compiled against the old
// placement afterwards.
func (c *Cluster) Repartition(parts dist.PartInfo, contents map[string]*mring.Relation, keep map[string]bool) error {
	drop := func(n *node) {
		for name := range n.rels {
			if !keep[name] {
				delete(n.rels, name)
			}
		}
	}
	drop(c.driver)
	for _, w := range c.workers {
		drop(w)
	}
	c.parts = parts
	return c.WarmViews(contents)
}

// WatchView starts capturing every maintenance write to the named view
// as a per-batch delta. Several views can be watched at once; watching
// an already-watched view keeps its accumulator. The view must be one of
// the schemas the cluster was constructed with.
func (c *Cluster) WatchView(name string) {
	s, ok := c.schemas[name]
	if !ok {
		panic(fmt.Sprintf("cluster: cannot watch unknown view %q", name))
	}
	if c.watch == nil {
		c.watch = make(map[string]*mring.Relation, 1)
	}
	if c.watch[name] == nil {
		c.watch[name] = mring.NewRelation(s)
	}
}

// UnwatchView stops delta capture for one view; once the last watched
// view is removed, batches run with zero capture overhead again.
func (c *Cluster) UnwatchView(name string) {
	delete(c.watch, name)
}

// TakeWatchDelta returns the delta accumulated for the named view since
// the last call (its per-group change) and resets the accumulator. Nil
// when the view is not watched.
func (c *Cluster) TakeWatchDelta(name string) *mring.Relation {
	d := c.watch[name]
	if d != nil {
		c.watch[name] = mring.NewRelation(c.schemas[name])
	}
	return d
}

// watchDriverSide reports whether a view's canonical maintenance writes
// happen at the driver (local and replicated views; for a replicated
// view only the driver mirror is captured — every worker replays the
// identical delta) rather than on the workers (distributed views,
// captured per worker and merged in index order).
func (c *Cluster) watchDriverSide(name string) bool {
	loc, ok := c.parts[name]
	return !ok || loc.Kind != dist.LDist
}

// driverSinkFor returns the capture sink for a driver-side fold into
// lhs, nil when lhs is unwatched or worker-maintained.
func (c *Cluster) driverSinkFor(lhs string) *mring.Relation {
	d := c.watch[lhs]
	if d == nil || !c.watchDriverSide(lhs) {
		return nil
	}
	return d
}

// WarmViews installs initial contents for materialized views before
// streaming (the distributed warm start): each view's relation is placed
// according to its canonical location — driver copy for local views,
// key-partitioned worker fragments (via the platform placement function,
// dist.SplitByKey) for distributed views, and a full replica per worker
// plus the driver mirror for replicated views. Call before the first
// batch; the relations are owned by the cluster afterwards.
func (c *Cluster) WarmViews(contents map[string]*mring.Relation) error {
	for name, rel := range contents {
		if rel == nil {
			continue
		}
		schema := c.schemaOf(name, rel.Schema())
		loc := c.parts[name]
		switch {
		case loc.Kind == dist.LLocal:
			c.driver.rels[name] = rel
		case loc.Kind == dist.LIndiff:
			c.driver.rels[name] = rel
			for _, w := range c.workers {
				w.rels[name] = rel.Clone()
			}
		case loc.Keyed():
			keyPos := make([]int, len(loc.Key))
			for i, k := range loc.Key {
				p := schema.Index(k)
				if p < 0 {
					return fmt.Errorf("cluster: warm load of %q: key column %q not in schema %v", name, k, schema)
				}
				keyPos[i] = p
			}
			frags := dist.SplitByKey(rel, keyPos, len(c.workers))
			for i, w := range c.workers {
				if frags[i] == nil {
					frags[i] = mring.NewRelation(schema)
				}
				w.rels[name] = frags[i]
			}
		default:
			return fmt.Errorf("cluster: cannot warm load view %q located %v", name, loc)
		}
	}
	return nil
}

// schemaOf returns the schema for a view/delta name, falling back to the
// partitioning key when unknown (temp views register lazily on first
// write).
func (c *Cluster) schemaOf(name string, fallback mring.Schema) mring.Schema {
	return schemaOfIn(c.schemas, name, fallback)
}

func schemaOfIn(schemas map[string]mring.Schema, name string, fallback mring.Schema) mring.Schema {
	if s, ok := schemas[name]; ok {
		return s
	}
	schemas[name] = fallback.Clone()
	return schemas[name]
}

// partIndex returns the worker index owning a tuple under the key columns
// at the given positions (the shared platform placement function, so
// shuffles and warm-start loads agree).
func (c *Cluster) partIndex(t mring.Tuple, keyPos []int) int {
	return dist.PlaceIndex(t, keyPos, len(c.workers))
}

// Run processes one update batch for the program's relation: the batch
// starts at the driver (the paper's Fig. 5 shape: LOCAL DELTA := {...}
// then SCATTER). Returns the virtual metrics of this batch.
func (c *Cluster) Run(prog *dist.DistProgram, batch *mring.Relation) (Metrics, error) {
	if prog == nil {
		return Metrics{}, fmt.Errorf("cluster: nil distributed program (unknown relation?)")
	}
	dn := eval.DeltaName(prog.Relation)
	c.driver.rels[dn] = batch
	c.schemas[dn] = batch.Schema()
	return c.runBlocks(prog)
}

// RunPartitioned processes a batch already spread over workers (the
// weak/strong scaling experiments simulate workers ingesting stream
// fragments directly, Sec. 6.2). partsOfBatch must have one relation per
// worker. The program must have been compiled with the delta tagged
// Random.
func (c *Cluster) RunPartitioned(prog *dist.DistProgram, partsOfBatch []*mring.Relation) (Metrics, error) {
	if prog == nil {
		return Metrics{}, fmt.Errorf("cluster: nil distributed program (unknown relation?)")
	}
	if len(partsOfBatch) != len(c.workers) {
		return Metrics{}, fmt.Errorf("cluster: got %d batch partitions for %d workers", len(partsOfBatch), len(c.workers))
	}
	dn := eval.DeltaName(prog.Relation)
	for i, w := range c.workers {
		w.rels[dn] = partsOfBatch[i]
		if partsOfBatch[i] != nil {
			c.schemas[dn] = partsOfBatch[i].Schema()
		}
	}
	return c.runBlocks(prog)
}

func (c *Cluster) runBlocks(prog *dist.DistProgram) (Metrics, error) {
	var m Metrics
	m.Stages = prog.Stages()
	m.Jobs = prog.Jobs()
	for _, b := range prog.Blocks {
		if b.Mode == dist.LDist {
			c.runDistBlock(b, &m)
			continue
		}
		if err := c.runLocalBlock(b, prog, &m); err != nil {
			return m, err
		}
	}
	return m, nil
}

// prepareStmts resolves every schema a block's statements may register, in
// statement order, before any worker runs. Workers executing concurrently
// then only read c.schemas; all lazy registration happens here, on the
// driver thread.
func (c *Cluster) prepareStmts(stmts []dist.Stmt) {
	prepareStmtsIn(c.schemas, stmts)
}

// prepareStmtsIn is prepareStmts over an explicit schema map — shared by
// the simulated cluster and the process-cluster driver, which must run
// the identical lazy registration sequence for its shards to agree on
// schemas.
func prepareStmtsIn(schemas map[string]mring.Schema, stmts []dist.Stmt) {
	for _, s := range stmts {
		walkRefs(s.RHS, func(r *expr.Rel) {
			name := eval.RelEnvName(r)
			if _, ok := schemas[name]; !ok {
				schemas[name] = r.Cols.Clone()
			}
		})
		if x, ok := s.RHS.(*dist.Xform); ok {
			if src, ok := x.Body.(*expr.Rel); ok {
				schemaOfIn(schemas, s.LHS, schemaOfIn(schemas, eval.RelEnvName(src), src.Cols))
			}
			continue
		}
		schemaOfIn(schemas, s.LHS, s.RHS.Schema())
	}
}

// runLocalBlock executes driver-side statements; transformer statements
// trigger data movement. All transformers of a block share one
// communication round (the code-generation batching of Sec. 4.4).
func (c *Cluster) runLocalBlock(b dist.Block, prog *dist.DistProgram, m *Metrics) error {
	c.prepareStmts(b.Stmts)
	rounds := 0
	var roundBytes int64
	var maxWorkerBytes int64
	computeStart := time.Now()
	var st eval.Stats
	for _, s := range b.Stmts {
		if x, ok := s.RHS.(*dist.Xform); ok {
			bytes, maxPer, err := c.applyXform(s.LHS, x)
			if err != nil {
				return err
			}
			rounds = 1
			roundBytes += bytes
			if maxPer > maxWorkerBytes {
				maxWorkerBytes = maxPer
			}
			continue
		}
		st.Add(c.runStmtOn(c.driver, s, c.driverSinkFor(s.LHS)))
	}
	c.Stats.Add(st)
	compute := c.computeTime(st.Lookups+st.Scans+st.Emits, time.Since(computeStart))
	m.Latency += compute
	m.ComputeMax += compute
	m.ComputeSum += compute
	if rounds > 0 {
		shuffle := c.cfg.NetLatency +
			time.Duration(float64(maxWorkerBytes)/c.cfg.BandwidthBytesPerSec*float64(time.Second))
		m.Latency += shuffle
		m.ShuffledBytes += roundBytes
		if maxWorkerBytes > m.MaxWorkerShuffleBytes {
			m.MaxWorkerShuffleBytes = maxWorkerBytes
		}
	}
	return nil
}

// runDistBlock executes one stage: every worker runs the block's
// statements over its fragments on its own goroutine, with a WaitGroup
// barrier closing the stage (the platform's synchronous-round model).
// Worker state is shared-nothing, and all schema registration happens in
// prepareStmts before the fan-out, so the workers race on nothing; results
// are bit-identical to sequential execution because each worker's own
// statement order is unchanged and per-worker outcomes are merged in
// worker-index order after the barrier. Stage latency is the scheduling
// overhead plus the slowest worker's compute (with optional straggler
// inflation); the per-worker measured wall time feeds the virtual cost
// model when modeled compute is disabled.
func (c *Cluster) runDistBlock(b dist.Block, m *Metrics) {
	c.prepareStmts(b.Stmts)
	computes := make([]time.Duration, len(c.workers))
	stats := make([]eval.Stats, len(c.workers))
	// Worker-side delta capture: for every watched view maintained on
	// the workers that this stage writes, every worker folds its own
	// changes into a private per-view sink; the sinks merge into the
	// batch delta strictly in worker-index order after the barrier, so
	// each view's gathered delta is deterministic despite concurrent
	// workers. The map is read-only once the fan-out starts.
	var sinks map[string][]*mring.Relation
	for name := range c.watch {
		if c.watchDriverSide(name) {
			continue
		}
		for _, s := range b.Stmts {
			if s.LHS == name {
				if sinks == nil {
					sinks = make(map[string][]*mring.Relation, 1)
				}
				ws := make([]*mring.Relation, len(c.workers))
				for i := range ws {
					ws[i] = mring.NewRelation(c.schemas[name])
				}
				sinks[name] = ws
				break
			}
		}
	}
	// In measured-time mode (ComputeNsPerOp == 0) bound the in-flight
	// workers to the CPU count, with the clock started only once a slot is
	// held: each worker's wall time then approximates its own compute
	// rather than scheduler queueing behind the other simulated workers.
	var sem chan struct{}
	if c.cfg.ComputeNsPerOp <= 0 {
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	var wg sync.WaitGroup
	wg.Add(len(c.workers))
	for i, w := range c.workers {
		go func(i int, w *node) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			start := time.Now()
			var st eval.Stats
			for _, s := range b.Stmts {
				var sink *mring.Relation
				if ws := sinks[s.LHS]; ws != nil {
					sink = ws[i]
				}
				st.Add(c.runStmtOn(w, s, sink))
			}
			stats[i] = st
			computes[i] = c.computeTime(st.Lookups+st.Scans+st.Emits, time.Since(start))
		}(i, w)
	}
	wg.Wait()
	for name, ws := range sinks {
		dst := c.watch[name]
		for i := range c.workers {
			dst.Merge(ws[i])
		}
	}
	var maxCompute, sumCompute time.Duration
	for i := range c.workers {
		c.Stats.Add(stats[i])
		c.workerCompute[i] += computes[i]
		c.workerStages[i]++
		sumCompute += computes[i]
		if computes[i] > maxCompute {
			maxCompute = computes[i]
		}
	}
	if c.cfg.StragglerProb > 0 && c.rng.Float64() < c.cfg.StragglerProb {
		maxCompute = time.Duration(float64(maxCompute) * c.cfg.StragglerFactor)
	}
	sched := c.cfg.SchedBase + time.Duration(c.cfg.Workers)*c.cfg.SchedPerWorker
	m.Latency += sched + maxCompute
	m.ComputeMax += maxCompute
	m.ComputeSum += sumCompute
}

func (c *Cluster) computeTime(ops int64, measured time.Duration) time.Duration {
	if c.cfg.ComputeNsPerOp > 0 {
		return time.Duration(float64(ops) * c.cfg.ComputeNsPerOp)
	}
	return measured
}

// runStmtOn evaluates a compute statement against one node's state and
// returns the evaluation statistics. It only reads shared cluster state
// (prepareStmts resolved all schemas beforehand) and mutates nothing but
// the node's own fragments (and the caller-private sink), so concurrent
// calls on distinct nodes are race-free.
func (c *Cluster) runStmtOn(n *node, s dist.Stmt, sink *mring.Relation) eval.Stats {
	return runStmtOnNode(n, c.schemas, s, sink)
}

// runStmtOnNode is runStmtOn over explicit node and schema state — the
// same evaluation a process-cluster shard runs remotely, so both cluster
// forms mutate fragments through one code path.
func runStmtOnNode(n *node, schemas map[string]mring.Schema, s dist.Stmt, sink *mring.Relation) eval.Stats {
	env := eval.NewEnv()
	// Bind every relation the statement reads; lazily create fragments.
	walkRefs(s.RHS, func(r *expr.Rel) {
		name := eval.RelEnvName(r)
		env.Bind(name, n.rel(name, schemas[name]))
	})
	target := n.rel(s.LHS, schemas[s.LHS])
	ctx := eval.NewCtx(env)
	if sink != nil {
		ctx.CaptureFolds(target, sink)
	}
	// FoldStmt runs aggregate statements (pre-aggregations and view
	// maintenance) through a per-worker hash-native group table over the
	// node's own fragments; the tables stay worker-local here and meet
	// only in applyXform's gather, in worker-index order.
	ctx.FoldStmt(target, s.Op, s.RHS)
	return ctx.Stats
}

// captureReplace folds an OpSet-style replacement of a watched view copy
// (old contents swapped for cur) into that view's batch delta.
func (c *Cluster) captureReplace(name string, old, cur *mring.Relation) {
	d := c.watch[name]
	d.Merge(cur)
	d.MergeScaled(old, -1)
}

// applyXform performs the data movement of one transformer statement and
// returns (total bytes moved, max per-worker bytes). A transformer whose
// target is the watched view (the re-evaluation policy's `Q := ...`
// installs) contributes its replacement diff to the batch delta: at the
// driver for a gathered local view, per worker — iterated in index
// order — for scattered/repartitioned distributed views. Broadcast
// installs of replicated views are not captured here: the driver mirror
// fold already recorded the identical delta.
func (c *Cluster) applyXform(lhs string, x *dist.Xform) (int64, int64, error) {
	src, ok := x.Body.(*expr.Rel)
	if !ok {
		return 0, 0, fmt.Errorf("cluster: transformer body is not a view reference: %s", x)
	}
	srcName := eval.RelEnvName(src)
	srcSchema := c.schemaOf(srcName, src.Cols)
	lhsSchema := c.schemaOf(lhs, srcSchema)
	keyPos := make([]int, len(x.Key))
	for i, k := range x.Key {
		p := src.Cols.Index(k)
		if p < 0 {
			return 0, 0, fmt.Errorf("cluster: key column %q not in %s(%v)", k, srcName, src.Cols)
		}
		keyPos[i] = p
	}

	captureWorkers := c.watch[lhs] != nil && !c.watchDriverSide(lhs)
	var total, maxPer int64
	switch x.Kind {
	case dist.XScatter:
		srcRel := c.driver.rel(srcName, srcSchema)
		if len(x.Key) == 0 {
			// Broadcast: encode once, install the columnar payload on every
			// worker. The decoded batch IS the replica's mirror, so the
			// workers hold the fragment columnar from the start — kernel
			// scans and later re-encodes reuse it with no conversion.
			payload := encodeSize(srcRel)
			fb := fragmentBatch(srcRel)
			for _, w := range c.workers {
				dst := w.rel(lhs, lhsSchema)
				dst.Clear()
				installFragment(dst, srcRel, fb)
				total += payload
			}
			maxPer = payload
			return total, maxPer, nil
		}
		frags := c.partition(srcRel, keyPos)
		for i, w := range c.workers {
			dst := w.rel(lhs, lhsSchema)
			var old *mring.Relation
			if captureWorkers {
				old = dst.Clone()
			}
			dst.Clear()
			if frags[i] != nil {
				sz := encodeSize(frags[i])
				installFragment(dst, frags[i], fragmentBatch(frags[i]))
				total += sz
				if sz > maxPer {
					maxPer = sz
				}
			}
			if captureWorkers {
				c.captureReplace(lhs, old, dst)
			}
		}
		return total, maxPer, nil
	case dist.XRepart:
		// Exchange: each worker partitions its fragment; receivers merge.
		incoming := make([]*mring.Relation, len(c.workers))
		var sent = make([]int64, len(c.workers))
		for wi, w := range c.workers {
			frag := w.rel(srcName, srcSchema)
			frags := c.partition(frag, keyPos)
			for ti, f := range frags {
				if f == nil || f.Len() == 0 {
					continue
				}
				if ti != wi { // local data does not cross the network
					sz := encodeSize(f)
					total += sz
					sent[wi] += sz
				}
				if incoming[ti] == nil {
					incoming[ti] = mring.NewRelation(srcSchema)
				}
				incoming[ti].Merge(f)
			}
		}
		for _, s := range sent {
			if s > maxPer {
				maxPer = s
			}
		}
		for i, w := range c.workers {
			dst := w.rel(lhs, lhsSchema)
			var old *mring.Relation
			if captureWorkers {
				old = dst.Clone()
			}
			dst.Clear()
			if incoming[i] != nil {
				dst.Merge(incoming[i])
			}
			if captureWorkers {
				c.captureReplace(lhs, old, dst)
			}
		}
		return total, maxPer, nil
	default: // Gather
		// The workers' pre-aggregated fragments merge into one group
		// table strictly in worker-index order, so the driver replays the
		// same float additions in the same sequence on every run — the
		// gathered result is deterministic despite the workers having
		// computed their fragments concurrently. The table then
		// blind-fills the driver view with its stored hashes.
		gt := mring.NewGroupTable(srcSchema)
		for _, w := range c.workers {
			frag := w.rel(srcName, srcSchema)
			if frag.Len() == 0 {
				continue
			}
			sz := encodeSize(frag)
			total += sz
			if sz > maxPer {
				maxPer = sz
			}
			gt.MergeRelation(frag)
		}
		dst := c.driver.rel(lhs, lhsSchema)
		var old *mring.Relation
		if c.watch[lhs] != nil && c.watchDriverSide(lhs) {
			old = dst.Clone()
		}
		dst.Clear()
		gt.FillRelation(dst)
		if old != nil {
			c.captureReplace(lhs, old, dst)
		}
		return total, maxPer, nil
	}
}

// partition splits a relation into per-worker fragments by key hash.
func (c *Cluster) partition(r *mring.Relation, keyPos []int) []*mring.Relation {
	return dist.SplitByKey(r, keyPos, len(c.workers))
}

// encodeSize serializes through the columnar wire format and returns the
// payload size — the measured network traffic. The encode attaches (and
// reuses) the relation's columnar mirror, so fragmentBatch right after it
// is free.
func encodeSize(r *mring.Relation) int64 {
	if r.Len() == 0 {
		return 0
	}
	return int64(len(pool.EncodeRelation(r)))
}

// fragmentBatch returns the columnar form a shuffle ships for r, or nil
// when r cannot be represented losslessly (mixed-kind columns) and the
// fragment must move by row-format reference instead.
func fragmentBatch(r *mring.Relation) *pool.ColBatch {
	if r.Len() == 0 {
		return nil
	}
	if ov := pool.MirrorOf(r); ov != nil {
		return ov.Base()
	}
	return nil
}

// installFragment fills the just-cleared dst with the shipped fragment.
// With a columnar payload the rows merge straight from the batch and the
// batch becomes dst's mirror (the receiver keeps the fragment columnar);
// otherwise the rows merge from the source relation as before. Either way
// rows land in the source's Foreach order, so dst's storage is bitwise
// independent of which path ran.
func installFragment(dst, src *mring.Relation, batch *pool.ColBatch) {
	if batch == nil {
		dst.Merge(src)
		return
	}
	batch.MergeInto(dst)
	if dst.Len() == batch.Len() {
		pool.AttachMirror(dst, batch)
	}
}

// walkRefs visits every relational reference in an expression (descending
// into transformer bodies, though compute statements carry none).
func walkRefs(e expr.Expr, f func(*expr.Rel)) {
	switch x := e.(type) {
	case *dist.Xform:
		walkRefs(x.Body, f)
	case *expr.Rel:
		f(x)
	case *expr.Plus:
		for _, t := range x.Terms {
			walkRefs(t, f)
		}
	case *expr.Mul:
		for _, t := range x.Factors {
			walkRefs(t, f)
		}
	case *expr.Agg:
		walkRefs(x.Body, f)
	case *expr.Assign:
		if x.Q != nil {
			walkRefs(x.Q, f)
		}
	case *expr.Exists:
		walkRefs(x.Body, f)
	}
}

// ViewContents reconstructs the full logical contents of a view by
// merging the driver copy and all worker fragments (for verification and
// result reads).
func (c *Cluster) ViewContents(name string) *mring.Relation {
	schema := c.schemas[name]
	out := mring.NewRelation(schema)
	loc, ok := c.parts[name]
	if ok && loc.Kind == dist.LLocal {
		if r := c.driver.rels[name]; r != nil {
			out.Merge(r)
		}
		return out
	}
	if loc.Kind == dist.LIndiff {
		// Replicated: any single copy is the contents.
		for _, w := range c.workers {
			if r := w.rels[name]; r != nil {
				out.Merge(r)
				return out
			}
		}
		return out
	}
	for _, w := range c.workers {
		if r := w.rels[name]; r != nil {
			out.Merge(r)
		}
	}
	if !ok {
		if r := c.driver.rels[name]; r != nil {
			out.Merge(r)
		}
	}
	return out
}
