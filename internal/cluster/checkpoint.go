package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/mring"
	inet "repro/internal/net"
)

// Checkpoint is a serialized snapshot of the cluster's materialized state
// (Sec. 4: "Using data checkpointing, we can periodically save
// intermediate state to reliable storage (HDFS) in order to shorten
// recovery time"). The snapshot stores every node's relation fragments
// in the lossless wire payload format (columnar when a relation's
// columns are kind-pure, tagged rows otherwise — the earlier
// columnar-only encoding silently dropped mixed-kind columns, so a
// restore of such a view produced garbage); its size approximates the
// HDFS write.
//
// Each fragment also records the relation's bucket-table size, so
// Restore rebuilds the exact physical layout (same chains, same Foreach
// enumeration order) via inet.RestoreIntoExact. Layout exactness is what
// lets a recovered engine keep producing bitwise-identical float folds:
// every later maintenance statement enumerates restored state in the
// same order the never-crashed engine would have.
type Checkpoint struct {
	// Workers holds, per worker, the encoded fragments by name.
	Workers []map[string]Frag
	// Driver holds the driver's relations.
	Driver map[string]Frag
	// Parts records the placement the fragments were captured under, so
	// a restore re-deploys against the same partitioning even when a
	// skew-feedback repartition had moved it off the compile-time
	// default. Nil on legacy checkpoints (which predate repartitioning
	// surviving recovery) and on single-node snapshots.
	Parts dist.PartInfo
	// Bytes is the total snapshot size.
	Bytes int64
}

// Frag is one relation's snapshot: its schema (payloads of empty
// relations are nil and carry none), its bucket-table size (0 when the
// relation never allocated one), and its rows in Foreach order.
type Frag struct {
	Schema  mring.Schema
	Buckets int
	Payload []byte
}

// snapFrag encodes one relation. Empty relations with allocated tables
// still snapshot (capacity shapes future layout); nil/never-touched ones
// are skipped by callers.
func snapFrag(r *mring.Relation) Frag {
	return Frag{Schema: r.Schema().Clone(), Buckets: r.TableSize(), Payload: inet.EncodeRelationPlain(r)}
}

// worthSnapshot reports whether a relation carries restorable state.
func worthSnapshot(r *mring.Relation) bool {
	return r != nil && (r.Len() > 0 || r.TableSize() > 0)
}

// restoreFrag rebuilds a relation exactly. Legacy fragments (Buckets 0
// with rows, from pre-versioned checkpoints) rebuild contents in wire
// order without the layout guarantee.
func restoreFrag(name string, f Frag) (*mring.Relation, error) {
	if f.Buckets == 0 && len(f.Payload) > 0 {
		p, err := inet.DecodePayload(f.Payload)
		if err != nil {
			return nil, fmt.Errorf("cluster: corrupt checkpoint for %q: %w", name, err)
		}
		r := mring.NewRelation(p.Schema)
		p.Foreach(r.Add)
		return r, nil
	}
	r, err := inet.RestoreRelationExact(f.Payload, f.Buckets, f.Schema)
	if err != nil {
		return nil, fmt.Errorf("cluster: corrupt checkpoint for %q: %w", name, err)
	}
	return r, nil
}

// CheckpointCost models the virtual time to write the snapshot, charged
// against the same bandwidth as shuffles (the paper notes checkpointing
// "may have detrimental effects on the latency of processing").
func (c *Cluster) CheckpointCost(cp *Checkpoint) time.Duration {
	perWorker := int64(0)
	for _, w := range cp.Workers {
		var n int64
		for _, b := range w {
			n += int64(len(b.Payload))
		}
		if n > perWorker {
			perWorker = n
		}
	}
	return c.cfg.NetLatency +
		time.Duration(float64(perWorker)/c.cfg.BandwidthBytesPerSec*float64(time.Second))
}

// Checkpoint snapshots all materialized state — every node's fragments,
// including empty-but-sized ones, so Restore reproduces each node's
// physical layout exactly.
func (c *Cluster) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Driver: map[string]Frag{}}
	encode := func(n *node) map[string]Frag {
		out := map[string]Frag{}
		for name, r := range n.rels {
			if !worthSnapshot(r) {
				continue
			}
			f := snapFrag(r)
			out[name] = f
			cp.Bytes += int64(len(f.Payload))
		}
		return out
	}
	cp.Driver = encode(c.driver)
	cp.Workers = make([]map[string]Frag, len(c.workers))
	for i, w := range c.workers {
		cp.Workers[i] = encode(w)
	}
	cp.Parts = c.parts.Clone()
	return cp
}

// Restore replaces all cluster state with the checkpoint's. The worker
// count must match the snapshot (the paper's recovery model restarts the
// same deployment).
func (c *Cluster) Restore(cp *Checkpoint) error {
	if len(cp.Workers) != len(c.workers) {
		return fmt.Errorf("cluster: checkpoint has %d workers, cluster has %d",
			len(cp.Workers), len(c.workers))
	}
	// Checkpoints may come from unreliable storage, so decoding goes
	// through the bounds-guarded payload decoder: a corrupt or hostile
	// snapshot returns an error here, it never panics mid-restore.
	decode := func(enc map[string]Frag) (map[string]*mring.Relation, error) {
		out := map[string]*mring.Relation{}
		for name, f := range enc {
			r, err := restoreFrag(name, f)
			if err != nil {
				return nil, err
			}
			out[name] = r
		}
		return out, nil
	}
	driver, err := decode(cp.Driver)
	if err != nil {
		return err
	}
	workers := make([]map[string]*mring.Relation, len(cp.Workers))
	for i, enc := range cp.Workers {
		w, err := decode(enc)
		if err != nil {
			return err
		}
		workers[i] = w
	}
	// Apply only after full validation so a corrupt snapshot cannot leave
	// the cluster half-restored.
	c.driver.rels = driver
	for i := range c.workers {
		c.workers[i].rels = workers[i]
	}
	if cp.Parts != nil {
		c.parts = cp.Parts
	}
	return nil
}

// CheckpointState and RestoreState adapt the simulated cluster to the
// runtime snapshot seam the durable engine uses (the process cluster
// implements the same pair over the wire).
func (c *Cluster) CheckpointState() (*Checkpoint, error) { return c.Checkpoint(), nil }

// RestoreState installs a checkpoint into the cluster.
func (c *Cluster) RestoreState(cp *Checkpoint) error { return c.Restore(cp) }

// KillWorker simulates a worker failure by discarding its state. A
// subsequent Restore recovers the deployment from the last checkpoint.
func (c *Cluster) KillWorker(i int) {
	if i < 0 || i >= len(c.workers) {
		panic("cluster: no such worker")
	}
	c.workers[i] = newNode()
}

// Checkpoint serialization. The encoding carries a magic + format
// version so drift is detected as a descriptive error, never a garbage
// decode. Version 1 is the Frag-based body above; a body WITHOUT the
// magic is decoded as the pre-versioned PR 9 format (bare fragment
// payloads, no bucket sizes), whose restores are contents-exact but not
// layout-exact.
const (
	ckptMagic   = "IVCP"
	ckptVersion = 1
)

// legacyCheckpoint is the unversioned PR 9 in-memory shape.
type legacyCheckpoint struct {
	Workers []map[string][]byte
	Driver  map[string][]byte
	Bytes   int64
}

// EncodeCheckpoint serializes a checkpoint with the versioned header.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	buf.WriteByte(ckptVersion)
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("cluster: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a serialized checkpoint. Bodies carrying the
// magic must name a known version; bodies without it fall back to the
// legacy unversioned decode.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) > len(ckptMagic) && string(b[:len(ckptMagic)]) == ckptMagic {
		if v := b[len(ckptMagic)]; v != ckptVersion {
			return nil, fmt.Errorf("cluster: unsupported checkpoint format version %d (have %d)", v, ckptVersion)
		}
		var cp Checkpoint
		if err := gob.NewDecoder(bytes.NewReader(b[len(ckptMagic)+1:])).Decode(&cp); err != nil {
			return nil, fmt.Errorf("cluster: corrupt checkpoint body: %w", err)
		}
		return &cp, nil
	}
	var legacy legacyCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&legacy); err != nil {
		return nil, fmt.Errorf("cluster: not a checkpoint (no magic, and legacy decode failed): %w", err)
	}
	cp := &Checkpoint{Driver: map[string]Frag{}, Bytes: legacy.Bytes}
	for name, p := range legacy.Driver {
		cp.Driver[name] = Frag{Payload: p}
	}
	cp.Workers = make([]map[string]Frag, len(legacy.Workers))
	for i, w := range legacy.Workers {
		cp.Workers[i] = map[string]Frag{}
		for name, p := range w {
			cp.Workers[i][name] = Frag{Payload: p}
		}
	}
	return cp, nil
}
