package cluster

import (
	"fmt"
	"time"

	"repro/internal/mring"
	inet "repro/internal/net"
)

// Checkpoint is a serialized snapshot of the cluster's materialized state
// (Sec. 4: "Using data checkpointing, we can periodically save
// intermediate state to reliable storage (HDFS) in order to shorten
// recovery time"). The snapshot stores every node's relation fragments
// in the lossless wire payload format (columnar when a relation's
// columns are kind-pure, tagged rows otherwise — the earlier
// columnar-only encoding silently dropped mixed-kind columns, so a
// restore of such a view produced garbage); its size approximates the
// HDFS write.
type Checkpoint struct {
	// Workers holds, per worker, the encoded fragments by name.
	Workers []map[string][]byte
	// Driver holds the driver's relations.
	Driver map[string][]byte
	// Bytes is the total snapshot size.
	Bytes int64
}

// CheckpointCost models the virtual time to write the snapshot, charged
// against the same bandwidth as shuffles (the paper notes checkpointing
// "may have detrimental effects on the latency of processing").
func (c *Cluster) CheckpointCost(cp *Checkpoint) time.Duration {
	perWorker := int64(0)
	for _, w := range cp.Workers {
		var n int64
		for _, b := range w {
			n += int64(len(b))
		}
		if n > perWorker {
			perWorker = n
		}
	}
	return c.cfg.NetLatency +
		time.Duration(float64(perWorker)/c.cfg.BandwidthBytesPerSec*float64(time.Second))
}

// Checkpoint snapshots all materialized state.
func (c *Cluster) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Driver: map[string][]byte{}}
	encode := func(n *node) map[string][]byte {
		out := map[string][]byte{}
		for name, r := range n.rels {
			if r == nil || r.Len() == 0 {
				continue
			}
			b := inet.EncodeRelationPlain(r)
			out[name] = b
			cp.Bytes += int64(len(b))
		}
		return out
	}
	cp.Driver = encode(c.driver)
	cp.Workers = make([]map[string][]byte, len(c.workers))
	for i, w := range c.workers {
		cp.Workers[i] = encode(w)
	}
	return cp
}

// Restore replaces all cluster state with the checkpoint's. The worker
// count must match the snapshot (the paper's recovery model restarts the
// same deployment).
func (c *Cluster) Restore(cp *Checkpoint) error {
	if len(cp.Workers) != len(c.workers) {
		return fmt.Errorf("cluster: checkpoint has %d workers, cluster has %d",
			len(cp.Workers), len(c.workers))
	}
	// Checkpoints may come from unreliable storage, so decoding goes
	// through the bounds-guarded payload decoder: a corrupt or hostile
	// snapshot returns an error here, it never panics mid-restore.
	decode := func(enc map[string][]byte) (map[string]*mring.Relation, error) {
		out := map[string]*mring.Relation{}
		for name, b := range enc {
			p, err := inet.DecodePayload(b)
			if err != nil {
				return nil, fmt.Errorf("cluster: corrupt checkpoint for %q: %w", name, err)
			}
			r := mring.NewRelation(p.Schema)
			p.Foreach(r.Add)
			out[name] = r
		}
		return out, nil
	}
	driver, err := decode(cp.Driver)
	if err != nil {
		return err
	}
	workers := make([]map[string]*mring.Relation, len(cp.Workers))
	for i, enc := range cp.Workers {
		w, err := decode(enc)
		if err != nil {
			return err
		}
		workers[i] = w
	}
	// Apply only after full validation so a corrupt snapshot cannot leave
	// the cluster half-restored.
	c.driver.rels = driver
	for i := range c.workers {
		c.workers[i].rels = workers[i]
	}
	return nil
}

// KillWorker simulates a worker failure by discarding its state. A
// subsequent Restore recovers the deployment from the last checkpoint.
func (c *Cluster) KillWorker(i int) {
	if i < 0 || i >= len(c.workers) {
		panic("cluster: no such worker")
	}
	c.workers[i] = newNode()
}
