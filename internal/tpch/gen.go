package tpch

import (
	"math/rand"

	"repro/internal/mring"
)

// Generator produces deterministic TPC-H-shaped tuples. Foreign keys
// reference the key ranges of the related tables at the same scale, so
// joins have realistic fan-outs.
type Generator struct {
	sf  float64
	rng *rand.Rand
	// next sequential primary key per table
	next map[string]int64
}

// NewGenerator creates a generator at scale sf with a fixed seed.
func NewGenerator(sf float64, seed int64) *Generator {
	return &Generator{
		sf:   sf,
		rng:  rand.New(rand.NewSource(seed)),
		next: make(map[string]int64),
	}
}

func (g *Generator) seq(table string) int64 {
	g.next[table]++
	return g.next[table]
}

func (g *Generator) date() int64 {
	y := 1992 + g.rng.Intn(7)
	m := 1 + g.rng.Intn(12)
	d := 1 + g.rng.Intn(28)
	return int64(y*10000 + m*100 + d)
}

// fkRange picks a foreign key uniformly from the related table's key
// space at this scale.
func (g *Generator) fkRange(table string) int64 {
	return 1 + int64(g.rng.Intn(Cardinality(table, g.sf)))
}

// Tuple generates the next tuple for the given table.
func (g *Generator) Tuple(table string) mring.Tuple {
	r := g.rng
	switch table {
	case Lineitem:
		ship := g.date()
		commit := ship + int64(r.Intn(60)) - 30
		receipt := ship + int64(r.Intn(30))
		return mring.Tuple{
			mring.Int(g.fkRange(Orders)),           // l_orderkey
			mring.Int(g.fkRange(Part)),             // l_partkey
			mring.Int(g.fkRange(Supplier)),         // l_suppkey
			mring.Float(float64(1 + r.Intn(50))),   // l_quantity
			mring.Float(900 + r.Float64()*104000),  // l_extendedprice
			mring.Float(float64(r.Intn(11)) / 100), // l_discount
			mring.Int(ship),                        // l_shipdate
			mring.Int(commit),                      // l_commitdate
			mring.Int(receipt),                     // l_receiptdate
			mring.Int(int64(r.Intn(3))),            // l_returnflag (0=A,1=N,2=R)
			mring.Int(int64(r.Intn(2))),            // l_linestatus
			mring.Int(int64(r.Intn(NumShipmodes))), // l_shipmode
		}
	case Orders:
		return mring.Tuple{
			mring.Int(g.seq(Orders)),               // o_orderkey
			mring.Int(g.fkRange(Customer)),         // o_custkey
			mring.Int(g.date()),                    // o_orderdate
			mring.Int(int64(r.Intn(NumPriority))),  // o_orderpriority
			mring.Int(int64(r.Intn(2))),            // o_shippriority
			mring.Float(1000 + r.Float64()*450000), // o_totalprice
		}
	case Customer:
		return mring.Tuple{
			mring.Int(g.seq(Customer)),            // c_custkey
			mring.Int(int64(r.Intn(NumSegments))), // c_mktsegment
			mring.Int(int64(r.Intn(NumNations))),  // c_nationkey
			mring.Float(-999 + r.Float64()*10999), // c_acctbal
			mring.Int(10 + int64(r.Intn(25))),     // c_phone (country code)
		}
	case Part:
		return mring.Tuple{
			mring.Int(g.seq(Part)),                 // p_partkey
			mring.Int(int64(r.Intn(NumBrands))),    // p_brand
			mring.Int(int64(r.Intn(NumTypes))),     // p_type
			mring.Int(1 + int64(r.Intn(50))),       // p_size
			mring.Int(int64(r.Intn(NumContainer))), // p_container
		}
	case Supplier:
		return mring.Tuple{
			mring.Int(g.seq(Supplier)),            // s_suppkey
			mring.Int(int64(r.Intn(NumNations))),  // s_nationkey
			mring.Float(-999 + r.Float64()*10999), // s_acctbal
		}
	case Partsupp:
		return mring.Tuple{
			mring.Int(g.fkRange(Part)),         // ps_partkey
			mring.Int(g.fkRange(Supplier)),     // ps_suppkey
			mring.Int(1 + int64(r.Intn(9999))), // ps_availqty
			mring.Float(1 + r.Float64()*1000),  // ps_supplycost
		}
	case Nation:
		k := g.seq(Nation) - 1
		return mring.Tuple{
			mring.Int(k),              // n_nationkey
			mring.Int(k % NumRegions), // n_regionkey
			mring.Int(k),              // n_name (coded)
		}
	case Region:
		k := g.seq(Region) - 1
		return mring.Tuple{mring.Int(k), mring.Int(k)}
	}
	panic("tpch: unknown table " + table)
}

// Static returns the preloaded contents of a static dimension table.
func (g *Generator) Static(table string) *mring.Relation {
	rel := mring.NewRelation(Schemas[table])
	for i := 0; i < Cardinality(table, g.sf); i++ {
		rel.Add(g.Tuple(table), 1)
	}
	return rel
}

// Event is one stream element: an insertion into a base table.
type Event struct {
	Table string
	Tuple mring.Tuple
}

// Stream synthesizes an insert stream by interleaving insertions to the
// base relations in round-robin fashion weighted by table cardinality
// (Sec. 6: "data streams synthesized from TPC-H databases by
// interleaving insertions to the base relations in a round-robin
// fashion").
type Stream struct {
	gen    *Generator
	tables []string
	quota  []int // remaining rows per table
	pos    int
}

// NewStream creates the full insert stream for the generator's scale,
// restricted to the tables a query references (plus their stream deps).
func NewStream(gen *Generator, tables []string) *Stream {
	s := &Stream{gen: gen}
	for _, t := range tables {
		if t == Nation || t == Region {
			continue // static dimensions are preloaded, not streamed
		}
		s.tables = append(s.tables, t)
		s.quota = append(s.quota, Cardinality(t, gen.sf))
	}
	return s
}

// Next returns the next event, or ok=false at end of stream. Round-robin
// proceeds proportionally: each pass emits one tuple from every table
// that still has quota, visiting larger tables more often by repeating
// them within a pass proportional to their share.
func (s *Stream) Next() (Event, bool) {
	total := 0
	for _, q := range s.quota {
		total += q
	}
	if total == 0 {
		return Event{}, false
	}
	// Weighted round-robin: walk tables cyclically, skipping exhausted
	// ones; tables with larger remaining quota are picked proportionally
	// by a deterministic stride.
	for i := 0; i < len(s.tables)*2; i++ {
		idx := s.pos % len(s.tables)
		s.pos++
		if s.quota[idx] == 0 {
			continue
		}
		// Emit from this table with probability proportional to its share
		// of the remaining stream, deterministically via the generator's
		// RNG (the stream itself is part of the workload definition).
		share := float64(s.quota[idx]) / float64(total)
		if s.gen.rng.Float64() < share*float64(len(s.tables)) || allOthersEmpty(s.quota, idx) {
			s.quota[idx]--
			return Event{Table: s.tables[idx], Tuple: s.gen.Tuple(s.tables[idx])}, true
		}
	}
	// Fallback: first non-empty table.
	for idx, q := range s.quota {
		if q > 0 {
			s.quota[idx]--
			return Event{Table: s.tables[idx], Tuple: s.gen.Tuple(s.tables[idx])}, true
		}
	}
	return Event{}, false
}

func allOthersEmpty(quota []int, idx int) bool {
	for i, q := range quota {
		if i != idx && q > 0 {
			return false
		}
	}
	return true
}

// Batches consumes the stream into per-relation batches: each chunk of
// batchSize consecutive events is split by relation (one trigger call per
// relation per chunk, as in Sec. 6.2: "we chunk the input stream into
// batches of a given size").
type Batch struct {
	Table string
	Rel   *mring.Relation
}

// NextBatches returns the batches of the next stream chunk (empty at end).
func (s *Stream) NextBatches(batchSize int) []Batch {
	byTable := map[string]*mring.Relation{}
	var order []string
	for i := 0; i < batchSize; i++ {
		ev, ok := s.Next()
		if !ok {
			break
		}
		r := byTable[ev.Table]
		if r == nil {
			r = mring.NewRelation(Schemas[ev.Table])
			byTable[ev.Table] = r
			order = append(order, ev.Table)
		}
		r.Add(ev.Tuple, 1)
	}
	out := make([]Batch, 0, len(order))
	for _, t := range order {
		out = append(out, Batch{Table: t, Rel: byTable[t]})
	}
	return out
}

// Remaining returns the number of events left in the stream.
func (s *Stream) Remaining() int {
	total := 0
	for _, q := range s.quota {
		total += q
	}
	return total
}
