// Package tpch provides the TPC-H-shaped workload of the paper's
// evaluation (Sec. 6): a deterministic synthetic data generator with the
// TPC-H schema and key distributions, round-robin insert streams, and the
// streaming-modified queries expressed in the query algebra.
//
// DESIGN.md §3 records the substitution: the paper used dbgen-generated
// 10GB/500GB streams; this generator preserves schema, key relationships,
// and selectivities at laptop scale.
package tpch

import (
	"repro/internal/mring"
)

// Table names.
const (
	Lineitem = "lineitem"
	Orders   = "orders"
	Customer = "customer"
	Part     = "part"
	Supplier = "supplier"
	Partsupp = "partsupp"
	Nation   = "nation"
	Region   = "region"
)

// Schemas maps each base table to its column names. Columns carry the
// standard TPC-H prefixes, trimmed to what the query workload touches.
var Schemas = map[string]mring.Schema{
	Lineitem: {
		"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
		"l_extendedprice", "l_discount", "l_shipdate", "l_commitdate",
		"l_receiptdate", "l_returnflag", "l_linestatus", "l_shipmode",
	},
	Orders: {
		"o_orderkey", "o_custkey", "o_orderdate", "o_orderpriority",
		"o_shippriority", "o_totalprice",
	},
	Customer: {
		"c_custkey", "c_mktsegment", "c_nationkey", "c_acctbal", "c_phone",
	},
	Part: {
		"p_partkey", "p_brand", "p_type", "p_size", "p_container",
	},
	Supplier: {
		"s_suppkey", "s_nationkey", "s_acctbal",
	},
	Partsupp: {
		"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
	},
	Nation: {
		"n_nationkey", "n_regionkey", "n_name",
	},
	Region: {
		"r_regionkey", "r_name",
	},
}

// Kinds maps each table to its column value kinds, aligned with Schemas.
var Kinds = map[string][]mring.Kind{
	Lineitem: {
		mring.KInt, mring.KInt, mring.KInt, mring.KFloat,
		mring.KFloat, mring.KFloat, mring.KInt, mring.KInt,
		mring.KInt, mring.KInt, mring.KInt, mring.KInt,
	},
	Orders:   {mring.KInt, mring.KInt, mring.KInt, mring.KInt, mring.KInt, mring.KFloat},
	Customer: {mring.KInt, mring.KInt, mring.KInt, mring.KFloat, mring.KInt},
	Part:     {mring.KInt, mring.KInt, mring.KInt, mring.KInt, mring.KInt},
	Supplier: {mring.KInt, mring.KInt, mring.KFloat},
	Partsupp: {mring.KInt, mring.KInt, mring.KInt, mring.KFloat},
	Nation:   {mring.KInt, mring.KInt, mring.KInt},
	Region:   {mring.KInt, mring.KInt},
}

// StreamTables is the set of tables that receive stream insertions; the
// small dimension tables (nation, region) are static and preloaded.
var StreamTables = []string{Lineitem, Orders, Customer, Part, Supplier, Partsupp}

// Relative cardinalities per TPC-H scale unit (rows per unit of scale).
// TPC-H's real ratios are preserved: 6000 lineitems per 1500 orders per
// 150 customers, 200 parts, 800 partsupps, 10 suppliers.
var cardPerScale = map[string]int{
	Lineitem: 6000,
	Orders:   1500,
	Customer: 150,
	Part:     200,
	Supplier: 10,
	Partsupp: 800,
	Nation:   25,
	Region:   5,
}

// Cardinality returns the generated row count of a table at scale sf
// (sf=1.0 is the micro-scale unit above; dimension tables stay fixed).
func Cardinality(table string, sf float64) int {
	n := cardPerScale[table]
	switch table {
	case Nation, Region:
		return n
	}
	c := int(float64(n) * sf)
	if c < 1 {
		c = 1
	}
	return c
}

// PrimaryKeyRanks ranks the partitionable key columns by table
// cardinality, feeding the partitioning heuristic of Sec. 6.2 (partition
// on the primary key of the largest base table in the view schema).
var PrimaryKeyRanks = map[string]int{
	"l_orderkey":  6, // lineitem / orders join key — highest cardinality
	"o_orderkey":  6,
	"ps_partkey":  4,
	"p_partkey":   4,
	"l_partkey":   4,
	"o_custkey":   3,
	"c_custkey":   3,
	"l_suppkey":   2,
	"s_suppkey":   2,
	"ps_suppkey":  2,
	"n_nationkey": 1,
}

// Date constants (yyyymmdd integers; comparisons order correctly).
const (
	DateLo     = 19920101
	DateHi     = 19981231
	DateMid    = 19950315 // the cut used by Q3-style predicates
	DateShipLo = 19940101
	DateShipHi = 19950101
)

// Market segments, priorities, etc. are small integer domains.
const (
	SegBuilding  = 1
	NumSegments  = 5
	NumBrands    = 25
	NumTypes     = 15
	NumContainer = 8
	NumShipmodes = 7
	NumPriority  = 5
	NumNations   = 25
	NumRegions   = 5
)
