package tpch

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/mring"
)

// Query bundles one benchmark query: its algebra definition and the base
// relations it references. The queries are the streaming-modified TPC-H
// queries of the paper's workload (Sec. 6): no ordering or limits, one
// maintained aggregate per view, nested aggregates kept.
type Query struct {
	Name   string
	Def    expr.Expr
	Tables []string
	// Nested marks queries with nested aggregates / existential
	// quantification (the domain-extraction class).
	Nested bool
}

// li/or/cu/pa/su/ps/na build relation terms with their full schemas.
func li() *expr.Rel { return expr.Base(Lineitem, Schemas[Lineitem]...) }
func or() *expr.Rel { return expr.Base(Orders, Schemas[Orders]...) }
func cu() *expr.Rel { return expr.Base(Customer, Schemas[Customer]...) }
func pa() *expr.Rel { return expr.Base(Part, Schemas[Part]...) }
func su() *expr.Rel { return expr.Base(Supplier, Schemas[Supplier]...) }
func ps() *expr.Rel { return expr.Base(Partsupp, Schemas[Partsupp]...) }
func na(alias string) *expr.Rel {
	if alias == "" {
		return expr.Base(Nation, Schemas[Nation]...)
	}
	cols := make(mring.Schema, len(Schemas[Nation]))
	for i, c := range Schemas[Nation] {
		cols[i] = c + alias
	}
	return expr.Base(Nation, cols...)
}

// renamed returns a second reference to a table with suffixed column
// names (for self-joins and correlated nested subqueries).
func renamed(table, suffix string) *expr.Rel {
	cols := make(mring.Schema, len(Schemas[table]))
	for i, c := range Schemas[table] {
		cols[i] = c + suffix
	}
	return expr.Base(table, cols...)
}

func lt(v string, c int64) expr.Expr  { return expr.CmpE(expr.CLt, expr.V(v), expr.LitI(c)) }
func ge(v string, c int64) expr.Expr  { return expr.CmpE(expr.CGe, expr.V(v), expr.LitI(c)) }
func gt(v string, c int64) expr.Expr  { return expr.CmpE(expr.CGt, expr.V(v), expr.LitI(c)) }
func le(v string, c int64) expr.Expr  { return expr.CmpE(expr.CLe, expr.V(v), expr.LitI(c)) }
func eqi(v string, c int64) expr.Expr { return expr.CmpE(expr.CEq, expr.V(v), expr.LitI(c)) }
func eqv(a, b string) expr.Expr       { return expr.CmpE(expr.CEq, expr.V(a), expr.V(b)) }

// revenue is l_extendedprice * (1 - l_discount).
func revenue() expr.Expr {
	return expr.ValE(expr.MulV(expr.V("l_extendedprice"),
		expr.SubV(expr.LitF(1), expr.V("l_discount"))))
}

// Queries returns the benchmark query suite, keyed by name.
func Queries() []Query {
	qs := []Query{
		{ // Q1: pricing summary — tiny group domain, heavy pre-aggregation win.
			Name: "Q1",
			Def: expr.Sum([]string{"l_returnflag", "l_linestatus"},
				expr.Join(li(), le("l_shipdate", 19980902),
					expr.ValE(expr.V("l_quantity")))),
			Tables: []string{Lineitem},
		},
		{ // Q2: minimum cost supplier — join through part/supplier/nation
			// with a correlated nested minimum approximated as "no cheaper
			// offer exists" (anti-join via a nested count).
			Name: "Q2",
			Def: expr.Sum([]string{"s_suppkey", "p_partkey"},
				expr.Join(
					pa(), eqi("p_size", 15),
					ps(), eqv("ps_partkey", "p_partkey"),
					su(), eqv("s_suppkey", "ps_suppkey"),
					na(""), eqv("n_nationkey", "s_nationkey"),
					expr.LiftQ("q2cheaper", expr.Sum(nil, expr.Join(
						renamed(Partsupp, "2"),
						eqv("ps_partkey2", "p_partkey"),
						expr.CmpE(expr.CLt, expr.V("ps_supplycost2"), expr.V("ps_supplycost"))))),
					eqi("q2cheaper", 0))),
			Tables: []string{Part, Partsupp, Supplier, Nation},
			Nested: true,
		},
		{ // Q3: shipping priority — 3-way join with date filters.
			Name: "Q3",
			Def: expr.Sum([]string{"o_orderkey", "o_orderdate", "o_shippriority"},
				expr.Join(
					cu(), eqi("c_mktsegment", SegBuilding),
					or(), eqv("o_custkey", "c_custkey"), lt("o_orderdate", DateMid),
					li(), eqv("l_orderkey", "o_orderkey"), gt("l_shipdate", DateMid),
					revenue())),
			Tables: []string{Customer, Orders, Lineitem},
		},
		{ // Q4: order priority check — correlated EXISTS.
			Name: "Q4",
			Def: expr.Sum([]string{"o_orderpriority"},
				expr.Join(
					or(), ge("o_orderdate", 19930701), lt("o_orderdate", 19931001),
					expr.LiftQ("q4x", expr.Sum(nil, expr.Join(
						renamed(Lineitem, "2"),
						eqv("l_orderkey2", "o_orderkey"),
						expr.CmpE(expr.CLt, expr.V("l_commitdate2"), expr.V("l_receiptdate2"))))),
					expr.CmpE(expr.CNe, expr.V("q4x"), expr.LitI(0)))),
			Tables: []string{Orders, Lineitem},
			Nested: true,
		},
		{ // Q5: local supplier volume — 6-way join through nation/region.
			Name: "Q5",
			Def: expr.Sum([]string{"n_name"},
				expr.Join(
					cu(), or(), eqv("o_custkey", "c_custkey"),
					ge("o_orderdate", 19940101), lt("o_orderdate", 19950101),
					li(), eqv("l_orderkey", "o_orderkey"),
					su(), eqv("l_suppkey", "s_suppkey"), eqv("s_nationkey", "c_nationkey"),
					na(""), eqv("n_nationkey", "s_nationkey"),
					expr.Base(Region, "r_regionkey", "r_name"),
					eqv("r_regionkey", "n_regionkey"), eqi("r_name", 2),
					revenue())),
			Tables: []string{Customer, Orders, Lineitem, Supplier, Nation, Region},
		},
		{ // Q6: forecasting revenue change — single scalar aggregate.
			Name: "Q6",
			Def: expr.Sum(nil,
				expr.Join(li(),
					ge("l_shipdate", DateShipLo), lt("l_shipdate", DateShipHi),
					expr.CmpE(expr.CGe, expr.V("l_discount"), expr.LitF(0.05)),
					expr.CmpE(expr.CLe, expr.V("l_discount"), expr.LitF(0.07)),
					expr.CmpE(expr.CLt, expr.V("l_quantity"), expr.LitF(24)),
					expr.ValE(expr.MulV(expr.V("l_extendedprice"), expr.V("l_discount"))))),
			Tables: []string{Lineitem},
		},
		{ // Q7: volume shipping — nation pair join with computed ship year.
			Name: "Q7",
			Def: expr.Sum([]string{"n_names", "n_namec", "l_shipyear"},
				expr.Join(
					su(), li(), eqv("l_suppkey", "s_suppkey"),
					ge("l_shipdate", 19950101), le("l_shipdate", 19961231),
					or(), eqv("o_orderkey", "l_orderkey"),
					cu(), eqv("c_custkey", "o_custkey"),
					na("s"), eqv("n_nationkeys", "s_nationkey"), le("n_nationkeys", 1),
					na("c"), eqv("n_nationkeyc", "c_nationkey"), le("n_nationkeyc", 1),
					expr.LiftV("l_shipyear", expr.FloorDivV(expr.V("l_shipdate"), expr.LitI(10000))),
					revenue())),
			Tables: []string{Supplier, Lineitem, Orders, Customer, Nation},
		},
		{ // Q8: national market share numerator — 7-relation join with a
			// computed order year.
			Name: "Q8",
			Def: expr.Sum([]string{"o_orderyear"},
				expr.Join(
					pa(), eqi("p_type", 5),
					li(), eqv("l_partkey", "p_partkey"),
					su(), eqv("s_suppkey", "l_suppkey"),
					or(), eqv("o_orderkey", "l_orderkey"),
					ge("o_orderdate", 19950101), le("o_orderdate", 19961231),
					cu(), eqv("c_custkey", "o_custkey"),
					na("c"), eqv("n_nationkeyc", "c_nationkey"),
					expr.Base(Region, "r_regionkey", "r_name"),
					eqv("r_regionkey", "n_regionkeyc"), eqi("r_name", 1),
					na("s"), eqv("n_nationkeys", "s_nationkey"), eqi("n_nationkeys", 8),
					expr.LiftV("o_orderyear", expr.FloorDivV(expr.V("o_orderdate"), expr.LitI(10000))),
					revenue())),
			Tables: []string{Part, Lineitem, Supplier, Orders, Customer, Nation, Region},
		},
		{ // Q9: product type profit measure — 5-way join.
			Name: "Q9",
			Def: expr.Sum([]string{"n_name"},
				expr.Join(
					pa(), eqi("p_type", 3),
					li(), eqv("l_partkey", "p_partkey"),
					su(), eqv("l_suppkey", "s_suppkey"),
					ps(), eqv("ps_partkey", "l_partkey"), eqv("ps_suppkey", "l_suppkey"),
					or(), eqv("o_orderkey", "l_orderkey"),
					na(""), eqv("n_nationkey", "s_nationkey"),
					expr.ValE(expr.SubV(
						expr.MulV(expr.V("l_extendedprice"), expr.SubV(expr.LitF(1), expr.V("l_discount"))),
						expr.MulV(expr.V("ps_supplycost"), expr.V("l_quantity")))))),
			Tables: []string{Part, Lineitem, Supplier, Partsupp, Orders, Nation},
		},
		{ // Q10: returned item reporting.
			Name: "Q10",
			Def: expr.Sum([]string{"c_custkey", "c_nationkey"},
				expr.Join(
					cu(), or(), eqv("o_custkey", "c_custkey"),
					ge("o_orderdate", 19931001), lt("o_orderdate", 19940101),
					li(), eqv("l_orderkey", "o_orderkey"), eqi("l_returnflag", 2),
					revenue())),
			Tables: []string{Customer, Orders, Lineitem},
		},
		{ // Q11: important stock — uncorrelated inequality nesting:
			// re-evaluation beats incremental maintenance (Sec. 6.1.1).
			Name: "Q11",
			Def: expr.Sum([]string{"ps_partkey"},
				expr.Join(
					ps(), su(), eqv("ps_suppkey", "s_suppkey"), eqi("s_nationkey", 7),
					expr.LiftQ("q11grp", expr.Sum(nil, expr.Join(
						renamed(Partsupp, "2"), renamed(Supplier, "2"),
						eqv("ps_suppkey2", "s_suppkey2"), eqi("s_nationkey2", 7),
						eqv("ps_partkey2", "ps_partkey"),
						expr.ValE(expr.MulV(expr.V("ps_supplycost2"), expr.V("ps_availqty2")))))),
					expr.LiftQ("q11tot", expr.Sum(nil, expr.Join(
						renamed(Partsupp, "3"), renamed(Supplier, "3"),
						eqv("ps_suppkey3", "s_suppkey3"), eqi("s_nationkey3", 7),
						expr.ValE(expr.MulV(expr.V("ps_supplycost3"), expr.V("ps_availqty3")))))),
					expr.CmpE(expr.CGt, expr.V("q11grp"),
						expr.MulV(expr.LitF(0.001), expr.V("q11tot"))))),
			Tables: []string{Partsupp, Supplier},
			Nested: true,
		},
		{ // Q12: shipping modes — two-way join, disjunctive mode filter.
			Name: "Q12",
			Def: expr.Sum([]string{"l_shipmode", "o_orderpriority"},
				expr.Join(
					or(), li(), eqv("l_orderkey", "o_orderkey"),
					expr.Add(eqi("l_shipmode", 1), eqi("l_shipmode", 4)),
					expr.CmpE(expr.CLt, expr.V("l_commitdate"), expr.V("l_receiptdate")),
					ge("l_receiptdate", 19940101), lt("l_receiptdate", 19950101))),
			Tables: []string{Orders, Lineitem},
		},
		{ // Q13: customer distribution — group by a lifted nested count.
			Name: "Q13",
			Def: expr.Sum([]string{"q13cnt"},
				expr.Join(cu(),
					expr.LiftQ("q13cnt", expr.Sum(nil, expr.Join(
						renamed(Orders, "2"), eqv("o_custkey2", "c_custkey")))))),
			Tables: []string{Customer, Orders},
			Nested: true,
		},
		{ // Q14: promotion effect.
			Name: "Q14",
			Def: expr.Sum(nil,
				expr.Join(
					li(), ge("l_shipdate", 19950901), lt("l_shipdate", 19951001),
					pa(), eqv("p_partkey", "l_partkey"), le("p_type", 2),
					revenue())),
			Tables: []string{Lineitem, Part},
		},
		{ // Q16: parts/supplier relationship — COUNT(DISTINCT) via Exists.
			Name: "Q16",
			Def: expr.Sum([]string{"p_brand", "p_size"},
				expr.ExistsE(expr.Sum([]string{"p_brand", "p_size", "ps_suppkey"},
					expr.Join(
						pa(), gt("p_size", 20),
						expr.CmpE(expr.CNe, expr.V("p_brand"), expr.LitI(5)),
						ps(), eqv("ps_partkey", "p_partkey"))))),
			Tables: []string{Part, Partsupp},
			Nested: true,
		},
		{ // Q17: small-quantity-order revenue — the paper's flagship
			// correlated nested aggregate (domain extraction, Fig. 8/9b/10b).
			Name: "Q17",
			Def: expr.Sum(nil,
				expr.Join(
					pa(), eqi("p_brand", 3), eqi("p_container", 2),
					li(), eqv("l_partkey", "p_partkey"),
					expr.LiftQ("q17sum", expr.Sum(nil, expr.Join(
						renamed(Lineitem, "2"), eqv("l_partkey2", "l_partkey"),
						expr.ValE(expr.V("l_quantity2"))))),
					expr.LiftQ("q17cnt", expr.Sum(nil, expr.Join(
						renamed(Lineitem, "3"), eqv("l_partkey3", "l_partkey")))),
					expr.CmpE(expr.CLt, expr.V("l_quantity"),
						expr.MulV(expr.LitF(0.2), expr.DivV(expr.V("q17sum"), expr.V("q17cnt")))),
					expr.ValE(expr.V("l_extendedprice")))),
			Tables: []string{Part, Lineitem},
			Nested: true,
		},
		{ // Q18: large volume customers — correlated HAVING-style nesting.
			Name: "Q18",
			Def: expr.Sum([]string{"c_custkey", "o_orderkey", "o_orderdate"},
				expr.Join(
					cu(), or(), eqv("o_custkey", "c_custkey"),
					li(), eqv("l_orderkey", "o_orderkey"),
					expr.LiftQ("q18qty", expr.Sum(nil, expr.Join(
						renamed(Lineitem, "2"), eqv("l_orderkey2", "o_orderkey"),
						expr.ValE(expr.V("l_quantity2"))))),
					expr.CmpE(expr.CGt, expr.V("q18qty"), expr.LitF(300)),
					expr.ValE(expr.V("l_quantity")))),
			Tables: []string{Customer, Orders, Lineitem},
			Nested: true,
		},
		{ // Q19: discounted revenue — disjunction of three conjunctive branches.
			Name: "Q19",
			Def: expr.Sum(nil,
				expr.Join(
					li(), pa(), eqv("p_partkey", "l_partkey"),
					expr.Add(
						expr.Join(eqi("p_brand", 1), lt("p_size", 6),
							expr.CmpE(expr.CLe, expr.V("l_quantity"), expr.LitF(11))),
						expr.Join(eqi("p_brand", 2), lt("p_size", 11),
							expr.CmpE(expr.CLe, expr.V("l_quantity"), expr.LitF(20))),
						expr.Join(eqi("p_brand", 3), lt("p_size", 16),
							expr.CmpE(expr.CLe, expr.V("l_quantity"), expr.LitF(30)))),
					revenue())),
			Tables: []string{Lineitem, Part},
		},
		{ // Q20: potential part promotion — nested per (partkey, suppkey),
			// large pre-aggregation win (the paper reports 2,243x).
			Name: "Q20",
			Def: expr.Sum([]string{"s_suppkey"},
				expr.Join(
					su(), eqi("s_nationkey", 3),
					ps(), eqv("ps_suppkey", "s_suppkey"),
					expr.LiftQ("q20qty", expr.Sum(nil, expr.Join(
						renamed(Lineitem, "2"),
						eqv("l_partkey2", "ps_partkey"), eqv("l_suppkey2", "ps_suppkey"),
						ge("l_shipdate2", 19940101), lt("l_shipdate2", 19950101),
						expr.ValE(expr.V("l_quantity2"))))),
					expr.CmpE(expr.CGt, expr.V("ps_availqty"),
						expr.MulV(expr.LitF(0.5), expr.V("q20qty"))))),
			Tables: []string{Supplier, Partsupp, Lineitem},
			Nested: true,
		},
		{ // Q22: global sales opportunity — customers above the average
			// balance with no orders; the paper reports 4,319x from
			// pre-aggregating the ORDERS batch on custkey.
			Name: "Q22",
			Def: expr.Sum([]string{"c_phone"},
				expr.Join(
					cu(), ge("c_phone", 13), le("c_phone", 31),
					expr.CmpE(expr.CGt, expr.V("c_acctbal"), expr.LitF(5000)),
					expr.LiftQ("q22ord", expr.Sum(nil, expr.Join(
						renamed(Orders, "2"), eqv("o_custkey2", "c_custkey")))),
					eqi("q22ord", 0),
					expr.ValE(expr.V("c_acctbal")))),
			Tables: []string{Customer, Orders},
			Nested: true,
		},
	}
	return qs
}

// QueryByName returns the named query.
func QueryByName(name string) (Query, error) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: unknown query %q", name)
}

// BaseSchemas returns the base-relation schema map for a query, with the
// schemas a compiler needs (references use per-query column aliases, but
// bases are declared once under their canonical schemas).
func (q Query) BaseSchemas() map[string]mring.Schema {
	out := map[string]mring.Schema{}
	for _, t := range q.Tables {
		out[t] = Schemas[t]
	}
	return out
}
