package tpch

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/eval"
	"repro/internal/mring"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(0.1, 7)
	g2 := NewGenerator(0.1, 7)
	for i := 0; i < 100; i++ {
		a := g1.Tuple(Lineitem)
		b := g2.Tuple(Lineitem)
		if !a.Equal(b) {
			t.Fatalf("tuple %d differs: %v vs %v", i, a, b)
		}
	}
	// Different seeds differ.
	g3 := NewGenerator(0.1, 8)
	same := 0
	g1b := NewGenerator(0.1, 7)
	for i := 0; i < 50; i++ {
		if g1b.Tuple(Orders).Equal(g3.Tuple(Orders)) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorArities(t *testing.T) {
	g := NewGenerator(0.05, 1)
	for table, schema := range Schemas {
		tp := g.Tuple(table)
		if len(tp) != len(schema) {
			t.Errorf("%s: tuple arity %d != schema arity %d", table, len(tp), len(schema))
		}
		kinds := Kinds[table]
		if len(kinds) != len(schema) {
			t.Errorf("%s: kinds arity mismatch", table)
		}
		for i, v := range tp {
			if v.K != kinds[i] {
				t.Errorf("%s col %s: kind %v != declared %v", table, schema[i], v.K, kinds[i])
			}
		}
	}
}

func TestForeignKeysInRange(t *testing.T) {
	g := NewGenerator(0.1, 3)
	maxOrder := int64(Cardinality(Orders, 0.1))
	maxPart := int64(Cardinality(Part, 0.1))
	for i := 0; i < 500; i++ {
		tp := g.Tuple(Lineitem)
		if tp[0].I < 1 || tp[0].I > maxOrder {
			t.Fatalf("l_orderkey %d out of range [1,%d]", tp[0].I, maxOrder)
		}
		if tp[1].I < 1 || tp[1].I > maxPart {
			t.Fatalf("l_partkey %d out of range", tp[1].I)
		}
	}
}

func TestStreamCoversAllTables(t *testing.T) {
	g := NewGenerator(0.05, 2)
	s := NewStream(g, StreamTables)
	counts := map[string]int{}
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		counts[ev.Table]++
	}
	for _, tbl := range StreamTables {
		want := Cardinality(tbl, 0.05)
		if counts[tbl] != want {
			t.Errorf("%s: streamed %d rows, want %d", tbl, counts[tbl], want)
		}
	}
}

func TestStreamBatches(t *testing.T) {
	g := NewGenerator(0.05, 2)
	s := NewStream(g, []string{Lineitem, Orders})
	total := 0
	for {
		bs := s.NextBatches(64)
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			total += countRows(b.Rel)
			if !b.Rel.Schema().Equal(Schemas[b.Table]) {
				t.Fatalf("batch schema mismatch for %s", b.Table)
			}
		}
	}
	want := Cardinality(Lineitem, 0.05) + Cardinality(Orders, 0.05)
	if total != want {
		t.Fatalf("batched %d rows, want %d", total, want)
	}
}

func countRows(r *mring.Relation) int {
	n := 0
	r.Foreach(func(_ mring.Tuple, m float64) { n += int(m) })
	return n
}

func TestAllQueriesCompile(t *testing.T) {
	for _, q := range Queries() {
		for _, opts := range []compile.Options{
			{},
			compile.DefaultOptions(),
		} {
			if _, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), opts); err != nil {
				t.Errorf("%s (opts %+v): %v", q.Name, opts, err)
			}
		}
	}
}

// TestQueriesIncrementalMatchesRecompute is the workload-level
// correctness gate: every query, streamed at tiny scale through the
// compiled executor, must match recomputation from the accumulated base
// tables at the end of the stream.
func TestQueriesIncrementalMatchesRecompute(t *testing.T) {
	const sf = 0.02
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			prog, err := compile.Compile(q.Name, q.Def, q.BaseSchemas(), compile.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ex := compile.NewExecutor(prog)

			gen := NewGenerator(sf, 11)
			// Preload static dimensions and empty stream tables.
			accum := map[string]*mring.Relation{}
			init := map[string]*mring.Relation{}
			for _, tbl := range q.Tables {
				if tbl == Nation || tbl == Region {
					r := gen.Static(tbl)
					accum[tbl] = r
					init[tbl] = r
				} else {
					accum[tbl] = mring.NewRelation(Schemas[tbl])
					init[tbl] = mring.NewRelation(Schemas[tbl])
				}
			}
			ex.InitFromBases(init)

			stream := NewStream(gen, q.Tables)
			for {
				bs := stream.NextBatches(50)
				if len(bs) == 0 {
					break
				}
				for _, b := range bs {
					ex.ApplyBatch(b.Table, b.Rel)
					accum[b.Table].Merge(b.Rel)
				}
			}
			env := eval.NewEnv()
			for n, r := range accum {
				env.Bind(n, r)
			}
			want := eval.NewCtx(env).Materialize(q.Def)
			got := ex.Result()
			if !got.EqualApprox(want, 1e-4) {
				t.Fatalf("%s diverged after stream\n got (%d tuples)\nwant (%d tuples)\nprogram:\n%s",
					q.Name, got.Len(), want.Len(), prog)
			}
		})
	}
}

func TestQueryByName(t *testing.T) {
	if _, err := QueryByName("Q17"); err != nil {
		t.Fatal(err)
	}
	if _, err := QueryByName("Q99"); err == nil {
		t.Fatal("expected error for unknown query")
	}
}

func TestCardinalityScaling(t *testing.T) {
	if Cardinality(Lineitem, 1) != 6000 || Cardinality(Lineitem, 0.5) != 3000 {
		t.Fatal("lineitem scaling wrong")
	}
	if Cardinality(Nation, 10) != 25 {
		t.Fatal("dimension tables must not scale")
	}
	if Cardinality(Supplier, 0.001) != 1 {
		t.Fatal("cardinality must be at least 1")
	}
}
