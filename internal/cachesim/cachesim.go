// Package cachesim provides a set-associative LRU cache simulator. It
// substitutes for the hardware performance counters of the paper's
// cache-locality experiment (App. B.2, Table 2): view-maintenance code is
// instrumented to report every record touch, and the simulator reports
// reference and miss counts whose shape across batch sizes mirrors the
// paper's LLC measurements.
package cachesim

// Config describes a cache level.
type Config struct {
	// Sets is the number of cache sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// BlockBits is log2 of the cache line size used to map addresses to
	// lines (record hashes stand in for addresses).
	BlockBits uint
}

// LLCConfig models a 15 MB 20-way last-level cache with 64-byte lines,
// matching the paper's Xeon E5-2630L.
func LLCConfig() Config { return Config{Sets: 1 << 12, Ways: 20, BlockBits: 6} }

// L1Config models a 32 KB 8-way L1 cache.
func L1Config() Config { return Config{Sets: 64, Ways: 8, BlockBits: 6} }

// Cache is one set-associative LRU cache.
type Cache struct {
	cfg  Config
	sets [][]uint64 // per-set tag stacks, most recent first
	// Refs and Misses count accesses.
	Refs   int64
	Misses int64
}

// New creates an empty cache.
func New(cfg Config) *Cache {
	return &Cache{cfg: cfg, sets: make([][]uint64, cfg.Sets)}
}

// Access touches the line containing addr, updating LRU state.
func (c *Cache) Access(addr uint64) {
	c.Refs++
	line := addr >> c.cfg.BlockBits
	si := int(line % uint64(c.cfg.Sets))
	set := c.sets[si]
	for i, tag := range set {
		if tag == line {
			// Hit: move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	c.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[si] = set
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.sets = make([][]uint64, c.cfg.Sets)
	c.Refs = 0
	c.Misses = 0
}

// Hierarchy couples an L1 and an LLC: every reference touches L1; L1
// misses reach the LLC (a simplification of inclusive hierarchies that
// preserves the reported counters' meaning).
type Hierarchy struct {
	L1  *Cache
	LLC *Cache
	// Instructions approximates retired instructions: callers add their
	// operation counts scaled by a per-op factor.
	Instructions int64
}

// NewHierarchy builds the paper's two-level configuration.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{L1: New(L1Config()), LLC: New(LLCConfig())}
}

// Access simulates one memory reference through the hierarchy.
func (h *Hierarchy) Access(addr uint64) {
	before := h.L1.Misses
	h.L1.Access(addr)
	if h.L1.Misses > before {
		h.LLC.Access(addr)
	}
}
