package cachesim

import "testing"

func TestHitAfterMiss(t *testing.T) {
	c := New(Config{Sets: 4, Ways: 2, BlockBits: 6})
	c.Access(0x1000)
	if c.Refs != 1 || c.Misses != 1 {
		t.Fatalf("cold access: refs=%d misses=%d", c.Refs, c.Misses)
	}
	c.Access(0x1000)
	if c.Refs != 2 || c.Misses != 1 {
		t.Fatalf("warm access should hit: misses=%d", c.Misses)
	}
	// Same cache line (within 64 bytes) also hits.
	c.Access(0x1010)
	if c.Misses != 1 {
		t.Fatal("same-line access should hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: third distinct line evicts the least recent.
	c := New(Config{Sets: 1, Ways: 2, BlockBits: 6})
	c.Access(0x0)  // miss, set=[0]
	c.Access(0x40) // miss, set=[1,0]
	c.Access(0x0)  // hit, set=[0,1]
	c.Access(0x80) // miss, evicts 1
	c.Access(0x0)  // hit (still resident)
	c.Access(0x40) // miss (was evicted)
	if c.Misses != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses)
	}
}

func TestWorkingSetFitsThenThrashes(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 4, BlockBits: 6})
	capacity := 16 * 4 // 64 lines
	// A working set within capacity: second pass all hits.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < capacity; i++ {
			c.Access(uint64(i) << 6)
		}
	}
	if c.Misses != int64(capacity) {
		t.Fatalf("in-capacity working set: misses=%d want %d", c.Misses, capacity)
	}
	// A working set 4x capacity thrashes: every access misses.
	c.Reset()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4*capacity; i++ {
			c.Access(uint64(i) << 6)
		}
	}
	if c.Misses != c.Refs {
		t.Fatalf("thrash should miss always: misses=%d refs=%d", c.Misses, c.Refs)
	}
}

func TestHierarchyFiltersLLC(t *testing.T) {
	h := NewHierarchy()
	// A tight loop over few lines: only cold misses reach the LLC.
	for pass := 0; pass < 100; pass++ {
		for i := 0; i < 8; i++ {
			h.Access(uint64(i) << 6)
		}
	}
	if h.LLC.Refs != 8 || h.LLC.Misses != 8 {
		t.Fatalf("LLC should see only cold misses: refs=%d misses=%d", h.LLC.Refs, h.LLC.Misses)
	}
	if h.L1.Refs != 800 {
		t.Fatalf("L1 refs = %d, want 800", h.L1.Refs)
	}
}
