# Local targets mirror .github/workflows/ci.yml exactly.

GO ?= go
# PR number stamped into the benchmark report filename (BENCH_<PR>.json):
# one past the newest committed report, so a fresh `make bench-json`
# never overwrites history by default. Override with PR=<n>. The newest
# report is picked numerically (shell sort -n), not lexicographically —
# $(sort) would rank BENCH_10.json before BENCH_2.json.
LATEST_PR := $(shell printf '%s\n' $(patsubst BENCH_%.json,%,$(wildcard BENCH_*.json)) | sort -n | tail -1)
PR ?= $(if $(LATEST_PR),$(shell expr $(LATEST_PR) + 1),1)
# Baseline report the new measurements are diffed against; a >15% drop
# of a tracked speedup ratio (native over reference, both measured in
# the same run, so the ratio is hardware-independent) fails the target.
# Defaults to the newest committed report; benchjson loads it before
# overwriting the output file, so self-diffing a report against its
# committed copy is sound. Skipped when no report exists yet.
BENCH_BASELINE ?= $(if $(LATEST_PR),BENCH_$(LATEST_PR).json,)
BENCH_BASELINE_FLAG := $(if $(wildcard $(BENCH_BASELINE)),-baseline $(BENCH_BASELINE),)

# staticcheck runs from a pinned version so local and CI findings agree.
# `go run` resolves it from the module proxy; offline environments skip
# it with a warning unless STATICCHECK_STRICT=1 (what CI sets).
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
STATICCHECK_STRICT ?= 0

.PHONY: build test lint fuzz bench bench-json api check-api soak proc-smoke crash-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	elif [ "$(STATICCHECK_STRICT)" = "1" ]; then \
		echo "staticcheck $(STATICCHECK) could not be resolved" >&2; exit 1; \
	else \
		echo "warning: staticcheck unavailable (offline?); skipping" >&2; \
	fi

# fuzz exercises the decode/hash attack surfaces for 30s each, same as
# the CI fuzz job: the wire decoders (columnar, row payload, and the
# transport frame layer) must never panic on arbitrary bytes, and the
# columnar hash kernels must agree with the row-wise hashes.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzHashColsKeyEqual$$' -fuzztime=30s ./internal/mring
	$(GO) test -run='^$$' -fuzz='^FuzzColBatchDecode$$' -fuzztime=30s ./internal/pool
	$(GO) test -run='^$$' -fuzz='^FuzzFrameDecode$$' -fuzztime=30s ./internal/net
	$(GO) test -run='^$$' -fuzz='^FuzzWALDecode$$' -fuzztime=30s ./internal/store

# proc-smoke runs the process-cluster smoke gate: builds the real worker
# binary, spawns 4 worker processes plus a driver on localhost, and
# asserts the result is bitwise-equal to the in-process simulated
# cluster at the same worker count (same step as the CI job).
proc-smoke:
	$(GO) build -o bin/ivmworker ./cmd/ivmworker
	IVM_WORKER_BIN=$(CURDIR)/bin/ivmworker $(GO) test -race -run '^TestProcessClusterSmoke$$' -v .

# crash-smoke runs the durability crash gate: builds the real victim
# binary (cmd/ivmcrash), SIGKILLs it at a randomized committed
# transaction, reopens its durable directory in-process, and asserts
# the recovered Result and the continued changefeed are bitwise-equal
# to an uninterrupted oracle (same step as the CI job; the kill point's
# RNG seed is logged for reproduction).
crash-smoke:
	$(GO) build -o bin/ivmcrash ./cmd/ivmcrash
	IVM_CRASH_BIN=$(CURDIR)/bin/ivmcrash $(GO) test -race -run '^TestCrashSmoke$$' -v .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . ./internal/bench/

# api regenerates the golden public-API surface file. Run it whenever
# the exported surface of the root package changes on purpose.
api:
	$(GO) doc -all . > API.txt

# check-api fails when the exported surface drifted without the golden
# being regenerated, so API changes are always deliberate.
check-api:
	@$(GO) doc -all . | diff -u API.txt - || { \
		echo "exported API surface changed: run 'make api' and commit API.txt" >&2; exit 1; }

# bench-json runs the representative tier-2 measurements, records them in
# BENCH_$(PR).json (query, batch size, tuples/sec, shuffled bytes), and
# diffs the tracked microbenchmark speedup ratios against
# $(BENCH_BASELINE): the target (and the CI job) fails when the
# RelationAddGet, AggGroupUpdate, ColFilter, ColFold, MultiView,
# AdaptiveBatch, or SkewRebalance ratio drops more than 15%, when
# AggGroupUpdate falls below its 1.5x acceptance floor, when neither
# columnar kernel ratio clears its 1.5x floor, when MultiView falls
# below its 2x shared/independent floor, when the adaptive batch
# controller lands below 0.9x of the best fixed transaction size, or
# when skew-feedback repartitioning gains less than 1.2x virtual
# critical-path compute on the hot-key stream.
bench-json:
	$(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_$(PR).json $(BENCH_BASELINE_FLAG)

# soak runs the self-tuning controller against a skewed stream for
# SOAK_TIME of wall time under the race detector and asserts that the
# batch target does not oscillate past the hysteresis bounds and that
# repartitioning settles (same step as CI). SOAK_TIME=2s by default for
# a quick local check; CI uses 30s.
SOAK_TIME ?= 2s
soak:
	TUNE_SOAK=$(SOAK_TIME) $(GO) test -race -run '^TestTuningSoak$$' -v .

ci: lint build test check-api
	@$(MAKE) bench || echo "warning: benchmark smoke pass failed"
	@$(MAKE) bench-json
