# Local targets mirror .github/workflows/ci.yml exactly.

GO ?= go
# PR number stamped into the benchmark report filename (BENCH_<PR>.json).
PR ?= 2

.PHONY: build test lint bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . ./internal/bench/

# bench-json runs the representative tier-2 measurements and records them
# in BENCH_$(PR).json (query, batch size, tuples/sec, shuffled bytes), so
# the perf trajectory is tracked in-repo from PR 2 onward.
bench-json:
	$(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_$(PR).json

ci: lint build test
	@$(MAKE) bench || echo "warning: benchmark smoke pass failed"
	@$(MAKE) bench-json || echo "warning: bench-json pass failed"
