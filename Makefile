# Local targets mirror .github/workflows/ci.yml exactly.

GO ?= go
# PR number stamped into the benchmark report filename (BENCH_<PR>.json).
PR ?= 4
# Baseline report the new measurements are diffed against; a >15% drop
# of the RelationAddGet or AggGroupUpdate speedup ratio (native over
# string-keyed reference, both measured in the same run, so the ratio is
# hardware-independent) fails the target. Points at the newest committed
# report — the one recording both ratios (BENCH_2.json predates
# AggGroupUpdate); benchjson loads it before overwriting the output
# file, so self-diffing BENCH_4 against its committed copy is sound.
BENCH_BASELINE ?= BENCH_4.json

.PHONY: build test lint bench bench-json api check-api ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . ./internal/bench/

# api regenerates the golden public-API surface file. Run it whenever
# the exported surface of the root package changes on purpose.
api:
	$(GO) doc -all . > API.txt

# check-api fails when the exported surface drifted without the golden
# being regenerated, so API changes are always deliberate.
check-api:
	@$(GO) doc -all . | diff -u API.txt - || { \
		echo "exported API surface changed: run 'make api' and commit API.txt" >&2; exit 1; }

# bench-json runs the representative tier-2 measurements, records them in
# BENCH_$(PR).json (query, batch size, tuples/sec, shuffled bytes), and
# diffs the tracked microbenchmark speedup ratios against
# $(BENCH_BASELINE): the target (and the CI job) fails when the
# RelationAddGet or AggGroupUpdate ratio drops more than 15%, or when
# AggGroupUpdate falls below its 1.5x acceptance floor.
bench-json:
	$(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_$(PR).json -baseline $(BENCH_BASELINE)

ci: lint build test check-api
	@$(MAKE) bench || echo "warning: benchmark smoke pass failed"
	@$(MAKE) bench-json
