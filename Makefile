# Local targets mirror .github/workflows/ci.yml exactly.

GO ?= go

.PHONY: build test lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . ./internal/bench/

ci: lint build test
	@$(MAKE) bench || echo "warning: benchmark smoke pass failed"
