package ivm

// Self-tuning runtime gates: AutoTune must never change maintained
// results, only cost. The goldens here stream dyadic-quantized TPC-H
// updates (values chosen so every aggregate is exact in float64, making
// sums independent of how the tuner re-chunks transactions) and require
// bitwise-identical results with tuning on and off, on both backends.
// The remaining tests pin the three feedback loops end to end — skew
// repartitioning, index admission, concurrent Stats snapshots — and a
// soak run (TUNE_SOAK) checks the controller does not oscillate.

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/mring"
	"repro/internal/tpch"
)

// virtualClock is a deterministic TuneConfig.Now: every call advances
// virtual time by one millisecond, so controller measurements (and
// therefore every tuning decision) are identical across runs.
func virtualClock() func() time.Time {
	var tick int64
	return func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}
}

// Lineitem column positions resolved by name, so the quantizer does not
// silently corrupt a different column if the schema evolves.
var liPriceCol, liDiscCol = func() (int, int) {
	p, d := -1, -1
	for i, c := range tpch.Schemas[tpch.Lineitem] {
		switch c {
		case "l_extendedprice":
			p = i
		case "l_discount":
			d = i
		}
	}
	return p, d
}()

// quantizeDyadic snaps lineitem's two continuous columns onto dyadic
// grids: extendedprice to whole units, discount (k/100 from the
// generator) to k/128. Every product the Q1/Q3/Q6 aggregates form is
// then exactly representable in float64 and sums are associative, so
// results must be bitwise identical no matter how folds are chunked.
// (k=7,8 still land inside Q6's [0.05, 0.07] discount band.)
func quantizeDyadic(table string, r *mring.Relation) *mring.Relation {
	if table != tpch.Lineitem {
		return r
	}
	out := mring.NewRelation(r.Schema())
	r.Foreach(func(t mring.Tuple, m float64) {
		q := t.Clone()
		q[liPriceCol] = mring.Float(math.Floor(t[liPriceCol].AsFloat()))
		q[liDiscCol] = mring.Float(math.Round(t[liDiscCol].AsFloat()*100) / 128)
		out.Add(q, m)
	})
	return out
}

// aggressiveTune makes the controller act often on short test streams:
// small initial target, short windows, frequent sweeps, virtual clock.
func aggressiveTune() TuneConfig {
	return TuneConfig{
		MinBatch: 32, MaxBatch: 4096, InitialBatch: 96,
		Window: 2, SweepEvery: 4,
		Now: virtualClock(),
	}
}

// TestGoldenTuningEquivalence is the tuning-equivalence golden: for Q1,
// Q3, and Q6, an AutoTune engine and an untuned engine fed the identical
// quantized stream must end bitwise identical — on the local backend and
// at 1, 8, and 16 workers. The batch size (137) is deliberately coprime
// to the tuner's targets so coalescing and splitting both trigger.
func TestGoldenTuningEquivalence(t *testing.T) {
	for _, name := range []string{"Q1", "Q3", "Q6"} {
		t.Run(name, func(t *testing.T) {
			q, err := tpch.QueryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			bases := q.BaseSchemas()
			type pair struct {
				name        string
				base, tuned *Engine
			}
			mk := func(label string, opts ...Option) pair {
				base, err := New(q.Name, q.Def, bases, opts...)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				tuned, err := New(q.Name, q.Def, bases,
					append(append([]Option{}, opts...), AutoTune(aggressiveTune()))...)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return pair{label, base, tuned}
			}
			pairs := []pair{
				mk("local"),
				mk("dist1", Distributed(1), KeyRanks(tpch.PrimaryKeyRanks)),
				mk("dist8", Distributed(8), KeyRanks(tpch.PrimaryKeyRanks)),
				mk("dist16", Distributed(16), KeyRanks(tpch.PrimaryKeyRanks)),
			}

			gen := tpch.NewGenerator(0.03, 5)
			stream := tpch.NewStream(gen, q.Tables)
			for {
				bs := stream.NextBatches(137)
				if len(bs) == 0 {
					break
				}
				for _, b := range bs {
					rel := quantizeDyadic(b.Table, b.Rel)
					for _, p := range pairs {
						if err := p.base.ApplyBatch(b.Table, &Batch{rel: rel.Clone()}); err != nil {
							t.Fatalf("%s base: %v", p.name, err)
						}
						if err := p.tuned.ApplyBatch(b.Table, &Batch{rel: rel.Clone()}); err != nil {
							t.Fatalf("%s tuned: %v", p.name, err)
						}
					}
				}
			}

			for _, p := range pairs {
				want := p.base.Result().rel
				got := p.tuned.Result().rel
				if got.Len() != want.Len() {
					t.Fatalf("%s: tuned has %d groups, untuned %d", p.name, got.Len(), want.Len())
				}
				want.Foreach(func(tp mring.Tuple, m float64) {
					if g := got.Get(tp); g != m {
						t.Fatalf("%s: group %v = %g tuned vs %g untuned (must be bitwise identical)",
							p.name, tp, g, m)
					}
				})
				ts := p.tuned.Stats().Tuning
				if !ts.Enabled {
					t.Fatalf("%s: AutoTune engine reports Enabled=false", p.name)
				}
				if ts.Coalesced == 0 || ts.Flushes == 0 || ts.Splits == 0 {
					t.Fatalf("%s: tuner never exercised re-chunking: %+v", p.name, ts)
				}
			}
		})
	}
}

// TestTuningEquivalenceApprox repeats the on/off comparison on the raw
// (unquantized) generator stream: there re-chunking may legitimately
// reassociate float sums, so the gate is 1e-6 relative, plus the
// rebuild oracle.
func TestTuningEquivalenceApprox(t *testing.T) {
	q, err := tpch.QueryByName("Q3")
	if err != nil {
		t.Fatal(err)
	}
	bases := q.BaseSchemas()
	base, err := New(q.Name, q.Def, bases)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := New(q.Name, q.Def, bases,
		Distributed(8), KeyRanks(tpch.PrimaryKeyRanks), AutoTune(aggressiveTune()))
	if err != nil {
		t.Fatal(err)
	}
	accum := goldenStream(t, q, func(table string, b *Batch) {
		if err := base.ApplyBatch(table, &Batch{rel: b.rel.Clone()}); err != nil {
			t.Fatal(err)
		}
		if err := tuned.ApplyBatch(table, &Batch{rel: b.rel.Clone()}); err != nil {
			t.Fatal(err)
		}
	})
	got, want := tuned.Result().rel, base.Result().rel
	if !got.EqualApprox(want, 1e-6) {
		t.Fatalf("AutoTune result diverged from untuned engine\n got %v\nwant %v", got, want)
	}
	oracle := rebuildOracle(q, accum)
	if !got.EqualApprox(oracle, 1e-6) {
		t.Fatalf("AutoTune result diverged from rebuild oracle\n got %v\nwant %v", got, oracle)
	}
}

// TestStatsApplyRace is the regression test for the snapshot race:
// Stats, Result, and Metrics hammered concurrently with Apply must be
// clean under -race (make test) and must not perturb results. Covered
// with tuning off, tuning on, and on the distributed backend.
func TestStatsApplyRace(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	q := Sum([]string{"a"}, Join(Table("R", "a", "b"), Table("S", "b", "c")))
	const rounds = 250
	feed := func(e *Engine) error {
		for i := 0; i < rounds; i++ {
			tx := e.NewTx()
			if err := tx.Insert("R", Row(i%17, i%13)); err != nil {
				return err
			}
			if err := tx.Insert("S", Row(i%13, i%29)); err != nil {
				return err
			}
			if err := e.Apply(tx); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"untuned", nil},
		{"autotune", []Option{AutoTune(aggressiveTune())}},
		{"distributed", []Option{Distributed(4),
			KeyRanks(map[string]int{"a": 3, "b": 2}), AutoTune(aggressiveTune())}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New("Q", q, bases, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						s := e.Stats()
						_ = s.Tuning.BatchTarget
						_ = e.Result().Len()
						_ = e.Metrics()
					}
				}()
			}
			err = feed(e)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New("Q", q, bases)
			if err != nil {
				t.Fatal(err)
			}
			if err := feed(ref); err != nil {
				t.Fatal(err)
			}
			if got, want := e.Result().rel, ref.Result().rel; !got.Equal(want) {
				t.Fatalf("concurrent observation perturbed the result\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestRegistryStatsApplyRace repeats the snapshot hammer on a Registry:
// its Stats/Result paths share the serving core but build lazily, so the
// first concurrent use is its own race candidate.
func TestRegistryStatsApplyRace(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "b"}}
	r, err := NewRegistry(bases, AutoTune(aggressiveTune()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("bySum", Sum([]string{"a"}, Table("R", "a", "b"))); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("all", Sum([]string{"a", "b"}, Table("R", "a", "b"))); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Stats(); err != nil {
					return
				}
				if _, err := r.Result("bySum"); err != nil {
					return
				}
			}
		}()
	}
	var feedErr error
	for i := 0; i < 250; i++ {
		tx := r.NewTx()
		if feedErr = tx.Insert("R", Row(i%11, i%7)); feedErr != nil {
			break
		}
		if feedErr = r.Apply(tx); feedErr != nil {
			break
		}
	}
	close(stop)
	wg.Wait()
	if feedErr != nil {
		t.Fatal(feedErr)
	}
	res, err := r.Result("bySum")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 11 {
		t.Fatalf("bySum has %d groups, want 11", res.Len())
	}
}

// skewedRow draws from the skewed workload both the repartition test and
// the soak use: 90% of rows hit one hot partitioning key h=0 (spread
// over many u), the rest spread over cold h values with few u. id keeps
// every row distinct so coalescing cannot collapse the stream.
func skewedRow(rng *rand.Rand, id int) Tuple {
	var u, h int
	if rng.Intn(10) < 9 {
		h = 0
		u = rng.Intn(1000)
	} else {
		h = 1 + rng.Intn(7)
		u = rng.Intn(10)
	}
	return Row(id, u, h, float64(1+rng.Intn(5)))
}

// TestSkewRebalanceRepartitions pins the skew feedback loop end to end:
// a stream 90%-hot on the initially chosen partitioning column must
// trigger at least one measured-skew repartition (and, with cooldown,
// not thrash), and the repartitioned engine must still match an untuned
// local engine bitwise (all values integral, so sums are exact).
func TestSkewRebalanceRepartitions(t *testing.T) {
	bases := map[string]Schema{"R": {"id", "u", "h", "v"}}
	q := Sum([]string{"u", "h"}, Join(Table("R", "id", "u", "h", "v"), Val(Col("v"))))
	// h outranks u, so the unweighted heuristic partitions on the hot
	// column; the measured-skew weights must overturn that.
	ranks := map[string]int{"h": 5, "u": 4}
	cfg := TuneConfig{
		MinBatch: 64, MaxBatch: 512, InitialBatch: 256,
		Window: 2, SkewPatience: 2, SkewCooldown: 4,
		Now: virtualClock(),
	}
	tuned, err := New("Q", q, bases, Distributed(8), KeyRanks(ranks), AutoTune(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New("Q", q, bases)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	id := 0
	for round := 0; round < 40; round++ {
		bt, br := NewBatch(bases["R"]), NewBatch(bases["R"])
		for i := 0; i < 400; i++ {
			row := skewedRow(rng, id)
			id++
			if err := bt.Insert(row); err != nil {
				t.Fatal(err)
			}
			if err := br.Insert(row.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		if err := tuned.ApplyBatch("R", bt); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch("R", br); err != nil {
			t.Fatal(err)
		}
	}

	st := tuned.Stats()
	if st.Tuning.Repartitions < 1 {
		t.Fatalf("skewed stream never triggered a repartition: %+v (imbalance %.2f)",
			st.Tuning, st.Tuning.Imbalance)
	}
	if st.Tuning.Repartitions > 4 {
		t.Fatalf("repartitioning thrashed: %d placements deployed", st.Tuning.Repartitions)
	}
	if len(st.Workers) != 8 {
		t.Fatalf("Stats.Workers has %d entries, want 8", len(st.Workers))
	}
	got, want := tuned.Result().rel, ref.Result().rel
	if !got.Equal(want) {
		t.Fatalf("repartitioned engine diverged from untuned local engine\n got %v\nwant %v", got, want)
	}
}

// TestIndexAdmissionLifecycle drives the cold-index loop through a full
// episode on a live engine. The compiled program for S ⋈ R keeps an
// auxiliary view over R whose slice index (bound on b) is maintained by
// R updates and probed by S updates: R-only traffic leaves it
// maintained but unprobed (demote), a later S-only phase probes it via
// the scan fallback until it readmits, and results stay bitwise equal
// to an untuned engine throughout.
func TestIndexAdmissionLifecycle(t *testing.T) {
	bases := map[string]Schema{"R": {"a", "b"}, "S": {"b", "c"}}
	q := Sum([]string{"a"}, Join(Table("S", "b", "c"), Table("R", "a", "b")))
	cfg := TuneConfig{
		MinBatch: 64, MaxBatch: 64, InitialBatch: 64, // pin fold size
		Window: 2, DemoteAfter: 64, ColdRatio: 2, ReadmitProbes: 4, SweepEvery: 2,
		Now: virtualClock(),
	}
	e, err := New("Q", q, bases, AutoTune(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New("Q", q, bases)
	if err != nil {
		t.Fatal(err)
	}
	both := func(table string, rows [][2]int) {
		bt, br := NewBatch(bases[table]), NewBatch(bases[table])
		for _, r := range rows {
			if err := bt.Insert(Row(r[0], r[1])); err != nil {
				t.Fatal(err)
			}
			if err := br.Insert(Row(r[0], r[1])); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.ApplyBatch(table, bt); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyBatch(table, br); err != nil {
			t.Fatal(err)
		}
	}
	chunks := func(table string, n, base int) {
		rows := make([][2]int, 0, 64)
		for i := 0; i < n; i++ {
			rows = append(rows, [2]int{base + i, (base + i) % 37})
			if len(rows) == 64 {
				both(table, rows)
				rows = rows[:0]
			}
		}
		if len(rows) > 0 {
			both(table, rows)
		}
	}

	// Phase 1: light two-sided traffic builds the slice index (S probes
	// lazily build it over the R-side view).
	chunks("R", 64, 0)
	chunks("S", 64, 0)
	// Phase 2: heavy R-only traffic — the index is maintained hundreds
	// of times without a probe and must demote.
	chunks("R", 768, 1000)
	demoted := e.Stats()
	if demoted.Tuning.Demotions < 1 {
		t.Fatalf("R-only phase produced no demotion: %+v\nindexes: %+v",
			demoted.Tuning, demoted.Indexes)
	}
	anyDemoted := false
	for _, ix := range demoted.Indexes {
		if ix.Demoted {
			anyDemoted = true
		}
	}
	if !anyDemoted {
		t.Fatalf("Demotions=%d but no IndexStat reports Demoted: %+v",
			demoted.Tuning.Demotions, demoted.Indexes)
	}
	// Phase 3: S-only traffic probes the demoted index through the scan
	// fallback until the policy readmits it.
	chunks("S", 512, 1000)
	readmitted := e.Stats()
	if readmitted.Tuning.Readmissions < 1 {
		t.Fatalf("probe traffic never readmitted a demoted index: %+v\nindexes: %+v",
			readmitted.Tuning, readmitted.Indexes)
	}
	if got, want := e.Result().rel, ref.Result().rel; !got.Equal(want) {
		t.Fatalf("index admission changed results\n got %v\nwant %v", got, want)
	}
}

// TestTuningSoak runs the full loop — skewed stream, real clock, all
// three controllers live — for TUNE_SOAK (default 2s; CI runs 30s under
// -race) and asserts the tuner reaches a stable operating point: in the
// second half of the run the batch target must not oscillate beyond the
// hysteresis regime and repartitioning must stay bounded.
func TestTuningSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped with -short")
	}
	d := 2 * time.Second
	if s := os.Getenv("TUNE_SOAK"); s != "" {
		p, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad TUNE_SOAK %q: %v", s, err)
		}
		d = p
	}
	bases := map[string]Schema{"R": {"id", "u", "h", "v"}}
	q := Sum([]string{"u", "h"}, Join(Table("R", "id", "u", "h", "v"), Val(Col("v"))))
	// Long windows and a wide dead band: wall-clock throughput on a
	// shared CI host jitters well past the 5% default, and the soak is
	// asserting the hysteresis mechanism absorbs exactly that noise.
	e, err := New("Q", q, bases, Distributed(8),
		KeyRanks(map[string]int{"h": 5, "u": 4}),
		AutoTune(TuneConfig{Window: 8, Hysteresis: 0.12, SkewPatience: 2, SkewCooldown: 8}))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	start := time.Now()
	deadline := start.Add(d)
	half := start.Add(d / 2)
	id := 0
	minTarget, maxTarget := 0, 0
	for time.Now().Before(deadline) {
		b := NewBatch(bases["R"])
		for i := 0; i < 512; i++ {
			if err := b.Insert(skewedRow(rng, id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := e.ApplyBatch("R", b); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(half) {
			ts := e.Stats().Tuning
			if minTarget == 0 || ts.BatchTarget < minTarget {
				minTarget = ts.BatchTarget
			}
			if ts.BatchTarget > maxTarget {
				maxTarget = ts.BatchTarget
			}
		}
	}
	st := e.Stats()
	if minTarget == 0 {
		t.Fatalf("soak too short to sample a settled target (applied %d rows in %v)", id, d)
	}
	// A settled controller only moves the target again on a sustained
	// >Hysteresis×Reexplore throughput shift; on a steady workload the
	// second-half span must stay well inside one re-exploration leg.
	if float64(maxTarget) > 4*float64(minTarget) {
		t.Fatalf("batch target oscillated in steady state: [%d, %d] over the second half (stats %+v)",
			minTarget, maxTarget, st.Tuning)
	}
	if st.Tuning.Repartitions > 5 {
		t.Fatalf("repartitioning did not settle: %d placements in %v", st.Tuning.Repartitions, d)
	}
	if st.Tuning.Flushes == 0 {
		t.Fatal("soak never folded a coalesced batch")
	}
}
